// LU scaling study: blocked LU factorization (the third SPLASH-2-style
// workload) across protocols and processor counts, with per-phase barrier
// structure — a different sharing pattern from Ocean (producer/consumer
// along block rows/columns rather than nearest-neighbour halos).

#include <cstdio>

#include "apps/lu.hpp"
#include "core/system.hpp"
#include "snoop/system.hpp"

using namespace ccnoc;

int main() {
  apps::Lu::Config lc;
  lc.matrix_dim = 24;
  lc.block_dim = 4;

  std::printf("Blocked LU, %ux%u matrix in %ux%u blocks — bit-exact on every run\n\n",
              lc.matrix_dim, lc.matrix_dim, lc.block_dim, lc.block_dim);
  std::printf("%-28s %6s %12s %14s %10s\n", "platform", "n", "cycles", "NoC bytes",
              "verified");

  for (unsigned n : {2u, 4u, 8u}) {
    for (mem::Protocol p :
         {mem::Protocol::kWti, mem::Protocol::kWtu, mem::Protocol::kWbMesi}) {
      core::System sys(core::SystemConfig::architecture2(n, p));
      apps::Lu w(lc);
      auto r = sys.run(w);
      std::printf("%-28s %6u %12llu %14llu %10s\n",
                  (std::string("dir/NoC ") + to_string(p)).c_str(), n,
                  static_cast<unsigned long long>(r.exec_cycles),
                  static_cast<unsigned long long>(r.noc_bytes),
                  r.verified ? "yes" : "NO");
    }
    for (snoop::SnoopProtocol p :
         {snoop::SnoopProtocol::kWti, snoop::SnoopProtocol::kMesi}) {
      snoop::SnoopSystemConfig cfg;
      cfg.num_cpus = n;
      cfg.protocol = p;
      snoop::SnoopSystem sys(cfg);
      apps::Lu w(lc);
      auto r = sys.run(w);
      std::printf("%-28s %6u %12llu %14llu %10s\n",
                  (std::string("bus ") + to_string(p)).c_str(), n,
                  static_cast<unsigned long long>(r.exec_cycles),
                  static_cast<unsigned long long>(r.noc_bytes),
                  r.verified ? "yes" : "NO");
    }
    std::printf("\n");
  }
  return 0;
}
