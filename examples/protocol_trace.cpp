// Protocol trace: a two-processor platform with full tracing enabled,
// replaying the paper's protocol walkthroughs transaction by transaction:
//
//   1. WTI write with a foreign sharer (4-hop invalidate round, §4.2),
//   2. the MESI Figure 2 six-hop write-allocate with victim write-back.
//
// Events come from the sim::Tracer (the same structured log the Perfetto
// export uses): BEGIN/END bracket a coherence transaction, indented lines
// are NoC deliveries and bank/directory activity inside it.

#include <cstdio>
#include <string>

#include "cache/cache_node.hpp"
#include "mem/bank.hpp"
#include "noc/gmn.hpp"

using namespace ccnoc;

namespace {

struct Rig {
  explicit Rig(mem::Protocol proto)
      : map(2, 1),
        net(make_net(sim, map)),
        bank(sim, net, map, 0, proto) {
    for (unsigned c = 0; c < 2; ++c) {
      nodes.push_back(std::make_unique<cache::CacheNode>(
          sim, net, map, c, proto, cache::CacheConfig{}, cache::CacheConfig{}));
    }
  }

  // Trace mode must be on before the components build so their telemetry
  // registration happens against an enabled tracer; sneak it in before the
  // network member initializes.
  static noc::GmnNetwork make_net(sim::Simulator& s, const mem::AddressMap& m) {
    s.tracer().set_mode(sim::TraceMode::kFull);
    return noc::GmnNetwork(s, m.num_nodes(),
                           noc::GmnConfig{.min_latency = 4, .fifo_depth = 16});
  }

  void access(unsigned c, bool is_store, sim::Addr a, std::uint64_t v = 0) {
    cache::MemAccess m;
    m.is_store = is_store;
    m.addr = a;
    m.size = 4;
    m.value = v;
    std::uint64_t hv = 0;
    nodes[c]->dcache().access(m, &hv, [](std::uint64_t) {});
    sim.run_to_completion();
  }

  /// Print every trace event recorded since \p from (an index into the
  /// tracer's event log), one line per event, nested inside its span.
  void print_flow(std::size_t from) const {
    const auto& ev = sim.tracer().events();
    for (std::size_t i = from; i < ev.size(); ++i) {
      const sim::Tracer::Event& e = ev[i];
      switch (e.ph) {
        case 'b':
          std::printf("    [%4llu] txn %llu BEGIN %s addr=0x%llx\n",
                      static_cast<unsigned long long>(e.ts),
                      static_cast<unsigned long long>(e.id), e.name,
                      static_cast<unsigned long long>(e.args[0]));
          break;
        case 'e':
          std::printf("    [%4llu] txn %llu END   %s (%llu hops)\n",
                      static_cast<unsigned long long>(e.ts),
                      static_cast<unsigned long long>(e.id), e.name,
                      static_cast<unsigned long long>(e.args[0]));
          break;
        case 'n':
          if (e.arg_names[0] != nullptr && std::string(e.arg_names[0]) == "src") {
            std::printf("    [%4llu] txn %llu   | %s %llu->%llu\n",
                        static_cast<unsigned long long>(e.ts),
                        static_cast<unsigned long long>(e.id), e.name,
                        static_cast<unsigned long long>(e.args[0]),
                        static_cast<unsigned long long>(e.args[1]));
          } else {
            std::printf("    [%4llu] txn %llu   | %s", static_cast<unsigned long long>(e.ts),
                        static_cast<unsigned long long>(e.id), e.name);
            for (int a = 0; a < 2; ++a) {
              if (e.arg_names[a] != nullptr) {
                std::printf(" %s=%llu", e.arg_names[a],
                            static_cast<unsigned long long>(e.args[a]));
              }
            }
            std::printf("\n");
          }
          break;
        case 'X':
          std::printf("    [%4llu] bank      | service %s (%llu cycles)\n",
                      static_cast<unsigned long long>(e.ts), e.name,
                      static_cast<unsigned long long>(e.dur));
          break;
        case 'i':
          std::printf("    [%4llu]           | %s\n",
                      static_cast<unsigned long long>(e.ts), e.name);
          break;
        default:
          break;  // counter samples are uninteresting here
      }
    }
  }

  [[nodiscard]] std::size_t mark() const { return sim.tracer().events().size(); }

  sim::Simulator sim;
  mem::AddressMap map;
  noc::GmnNetwork net;
  mem::Bank bank;
  std::vector<std::unique_ptr<cache::CacheNode>> nodes;
};

}  // namespace

int main() {
  std::printf("Node map: 0, 1 = processor caches; 2 = memory bank + directory.\n");

  {
    std::printf("\n=== WTI: store hitting a block another cache shares ===\n");
    Rig rig(mem::Protocol::kWti);
    rig.access(0, false, 0x100);  // cache 0 reads (Valid copy)
    rig.access(1, false, 0x100);  // cache 1 reads (Valid copy)
    std::size_t mark = rig.mark();
    std::printf("  cache 0 stores to 0x100 — watch the 4-hop invalidate round:\n");
    rig.access(0, true, 0x100, 42);
    rig.print_flow(mark);
  }

  {
    std::printf("\n=== WB-MESI: the Figure 2 six-hop write-allocate ===\n");
    Rig rig(mem::Protocol::kWbMesi);
    rig.access(1, true, 0x100, 0xaa);   // cache 1 holds 0x100 Modified
    rig.access(0, true, 0x1100, 0xbb);  // cache 0's victim line is Modified
    std::size_t mark = rig.mark();
    std::printf("  cache 0 stores to 0x100 — write-back (5,6) + allocate (1-4):\n");
    rig.access(0, true, 0x100, 0xcc);
    rig.print_flow(mark);
  }

  std::printf("\nDone. Compare the message sequences with the paper's §4.2.\n");
  return 0;
}
