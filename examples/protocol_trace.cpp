// Protocol trace: a two-processor platform with message tracing enabled,
// replaying the paper's protocol walkthroughs message by message:
//
//   1. WTI write with a foreign sharer (4-hop invalidate round, §4.2),
//   2. the MESI Figure 2 six-hop write-allocate with victim write-back.
//
// Every line is one NoC delivery: [cycle] noc: <type> src->dst addr.

#include <cstdio>
#include <string>

#include "cache/cache_node.hpp"
#include "mem/bank.hpp"
#include "noc/gmn.hpp"

using namespace ccnoc;

namespace {

struct Rig {
  explicit Rig(mem::Protocol proto)
      : map(2, 1),
        net(sim, map.num_nodes(), noc::GmnConfig{.min_latency = 4, .fifo_depth = 16}),
        bank(sim, net, map, 0, proto) {
    for (unsigned c = 0; c < 2; ++c) {
      nodes.push_back(std::make_unique<cache::CacheNode>(
          sim, net, map, c, proto, cache::CacheConfig{}, cache::CacheConfig{}));
    }
    sim.logger().set_level(sim::LogLevel::Trace);
    sim.logger().set_sink([](const std::string& line) {
      std::printf("    %s\n", line.c_str());
    });
  }

  void access(unsigned c, bool is_store, sim::Addr a, std::uint64_t v = 0) {
    cache::MemAccess m;
    m.is_store = is_store;
    m.addr = a;
    m.size = 4;
    m.value = v;
    std::uint64_t hv = 0;
    nodes[c]->dcache().access(m, &hv, [](std::uint64_t) {});
    sim.run_to_completion();
  }

  void quiet() { sim.logger().set_level(sim::LogLevel::None); }
  void loud() { sim.logger().set_level(sim::LogLevel::Trace); }

  sim::Simulator sim;
  mem::AddressMap map;
  noc::GmnNetwork net;
  mem::Bank bank;
  std::vector<std::unique_ptr<cache::CacheNode>> nodes;
};

}  // namespace

int main() {
  std::printf("Node map: 0, 1 = processor caches; 2 = memory bank + directory.\n");

  {
    std::printf("\n=== WTI: store hitting a block another cache shares ===\n");
    Rig rig(mem::Protocol::kWti);
    rig.quiet();
    rig.access(0, false, 0x100);  // cache 0 reads (Valid copy)
    rig.access(1, false, 0x100);  // cache 1 reads (Valid copy)
    rig.loud();
    std::printf("  cache 0 stores to 0x100 — watch the 4-hop invalidate round:\n");
    rig.access(0, true, 0x100, 42);
  }

  {
    std::printf("\n=== WB-MESI: the Figure 2 six-hop write-allocate ===\n");
    Rig rig(mem::Protocol::kWbMesi);
    rig.quiet();
    rig.access(1, true, 0x100, 0xaa);   // cache 1 holds 0x100 Modified
    rig.access(0, true, 0x1100, 0xbb);  // cache 0's victim line is Modified
    rig.loud();
    std::printf("  cache 0 stores to 0x100 — write-back (5,6) + allocate (1-4):\n");
    rig.access(0, true, 0x100, 0xcc);
  }

  std::printf("\nDone. Compare the message sequences with the paper's §4.2.\n");
  return 0;
}
