// Water sharing study: runs the Water workload and reports the coherence
// actions each protocol performs — invalidations, upgrades, fetches of
// dirty blocks, write-backs, and write-through words — making the two
// protocols' §4 behaviour visible on a lock-heavy N-body workload.

#include <cstdio>
#include <string>

#include "apps/water.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

std::uint64_t sum_over_cpus(core::System& sys, unsigned n, const std::string& suffix) {
  std::uint64_t total = 0;
  for (unsigned c = 0; c < n; ++c) {
    total += sys.simulator().stats().counter_value("cpu" + std::to_string(c) +
                                                   ".dcache." + suffix);
  }
  return total;
}

}  // namespace

int main() {
  const unsigned n = 8;
  std::printf("Water (N-body, striped molecule locks) on architecture 2, n=%u\n\n", n);

  for (mem::Protocol p : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
    core::SystemConfig cfg = core::SystemConfig::architecture2(n, p);
    core::System sys(cfg);
    apps::Water::Config wc;
    wc.molecules = 24;
    wc.steps = 3;
    apps::Water w(wc);
    auto r = sys.run(w);
    auto& st = sys.simulator().stats();

    std::printf("--- %s ---\n", to_string(p));
    std::printf("  execution          %10.3f Mcycles (%s)\n", r.exec_megacycles(),
                r.verified ? "verified bit-exact" : "VERIFICATION FAILED");
    std::printf("  NoC traffic        %10llu bytes in %llu packets\n",
                static_cast<unsigned long long>(r.noc_bytes),
                static_cast<unsigned long long>(r.noc_packets));
    std::printf("  invalidations rx   %10llu\n",
                static_cast<unsigned long long>(sum_over_cpus(sys, n, "invalidations")));
    if (p == mem::Protocol::kWti) {
      std::printf("  write-through words%10llu\n",
                  static_cast<unsigned long long>(
                      st.counter_value("noc.pkt.WriteWord")));
      std::printf("  bank atomics       %10llu\n",
                  static_cast<unsigned long long>(
                      st.counter_value("noc.pkt.AtomicSwap") +
                      st.counter_value("noc.pkt.AtomicAdd")));
    } else {
      std::printf("  upgrades (S->M)    %10llu\n",
                  static_cast<unsigned long long>(st.counter_value("noc.pkt.Upgrade")));
      std::printf("  dirty fetches      %10llu\n",
                  static_cast<unsigned long long>(
                      st.counter_value("noc.pkt.Fetch") +
                      st.counter_value("noc.pkt.FetchInv")));
      std::printf("  write-backs        %10llu\n",
                  static_cast<unsigned long long>(
                      st.counter_value("noc.pkt.WriteBack")));
      std::printf("  silent E->M        %10llu\n",
                  static_cast<unsigned long long>(sum_over_cpus(sys, n, "silent_e_to_m")));
    }
    std::printf("  d-cache stalls     %9.1f%% of execution\n\n", r.d_stall_pct(n));
  }
  return 0;
}
