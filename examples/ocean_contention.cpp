// Ocean memory-bank contention study (the paper's architecture 1 vs 2
// comparison, §6.1): runs the Ocean workload on both architectures at
// several platform sizes and reports execution time, the average queueing
// delay at the hottest memory bank, and the stall breakdown — showing why
// the distributed layout wins and where write-through starts to hurt on
// centralized memory.

#include <cstdio>
#include <string>

#include "apps/ocean.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

struct Row {
  double exec_mcyc;
  double bank_queue;  // worst average queue delay over banks, cycles
  double d_stall_pct;
  bool verified;
};

Row run(unsigned arch, mem::Protocol proto, unsigned n) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, proto)
                                     : core::SystemConfig::architecture2(n, proto);
  core::System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  auto r = sys.run(w);

  double worst_queue = 0.0;
  for (unsigned b = 0; b < cfg.num_banks; ++b) {
    const auto& s = sys.simulator().stats().sample("bank" + std::to_string(b) +
                                                   ".queue_delay");
    worst_queue = std::max(worst_queue, s.mean());
  }
  return Row{r.exec_megacycles(), worst_queue, r.d_stall_pct(n), r.verified};
}

}  // namespace

int main() {
  std::printf("Ocean under memory-bank contention (grid rows spread per layout)\n");
  std::printf("%5s %-8s | %12s %12s | %14s %14s | %10s\n", "n", "proto",
              "arch1 [Mcyc]", "arch2 [Mcyc]", "arch1 bankQ", "arch2 bankQ",
              "speedup");
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    for (mem::Protocol p : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
      Row a1 = run(1, p, n);
      Row a2 = run(2, p, n);
      std::printf("%5u %-8s | %12.3f %12.3f | %11.1f cyc %11.1f cyc | %9.2fx%s\n",
                  n, to_string(p), a1.exec_mcyc, a2.exec_mcyc, a1.bank_queue,
                  a2.bank_queue, a1.exec_mcyc / a2.exec_mcyc,
                  (a1.verified && a2.verified) ? "" : "  [UNVERIFIED]");
    }
  }
  std::printf(
      "\nbankQ = mean queueing delay at the hottest bank. Architecture 1 funnels\n"
      "every access into one bank; its queue explodes with n, which is the\n"
      "contention the paper identifies on centralized-memory platforms.\n");
  return 0;
}
