// Sharing & contention profile of 4-CPU Ocean under both write policies
// (the paper's §4 sharing discussion, made visible): runs the same workload
// with WTI and WB-MESI, prints each run's sharing-pattern breakdown and the
// top-5 falsely-shared lines, and writes the full artifacts — per-protocol
// profile.json plus the side-by-side HTML heatmap report.
//
// False sharing is the case the paper's write policies disagree on most:
// write-through invalidates the whole block on every store even though the
// readers use disjoint words, while write-back additionally ping-pongs the
// block's ownership. The profiler separates it from true sharing by
// tracking per-word access masks within each 32-byte block.

#include <cstdio>

#include "apps/ocean.hpp"
#include "core/system.hpp"
#include "sim/profile.hpp"

using namespace ccnoc;

namespace {

sim::ProfileSnapshot profile_run(mem::Protocol proto) {
  core::SystemConfig cfg = core::SystemConfig::architecture1(4, proto);
  cfg.profile = sim::ProfileMode::kOn;
  core::System sys(cfg);

  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  oc.compute_per_cell = 8;
  apps::Ocean w(oc);

  auto r = sys.run(w);
  std::printf("%s: %llu cycles, %llu NoC bytes, verified=%s\n", to_string(proto),
              static_cast<unsigned long long>(r.exec_cycles),
              static_cast<unsigned long long>(r.noc_bytes),
              r.verified ? "yes" : "NO");
  return sys.simulator().profiler().snapshot(
      std::string("ocean ") + to_string(proto) + " arch1 n=4");
}

void print_breakdown(const sim::ProfileSnapshot& s) {
  std::printf("\n%s — sharing patterns across %zu touched lines:\n",
              s.label.c_str(), s.lines.size());
  std::printf("  %-18s %6s %10s %12s %10s\n", "pattern", "lines", "accesses",
              "traffic [B]", "stalls");
  for (std::size_t p = 0; p < sim::kNumSharingPatterns; ++p) {
    const auto& t = s.patterns[p];
    if (t.lines == 0) continue;
    std::printf("  %-18s %6llu %10llu %12llu %10llu\n",
                to_string(sim::SharingPattern(p)),
                static_cast<unsigned long long>(t.lines),
                static_cast<unsigned long long>(t.accesses),
                static_cast<unsigned long long>(t.traffic_bytes),
                static_cast<unsigned long long>(t.stall_cycles));
  }

  auto fs = s.top_false_shared(5);
  if (fs.empty()) {
    std::printf("  no falsely-shared lines detected\n");
    return;
  }
  std::printf("\n  top-%zu falsely-shared lines (disjoint words, shared block):\n",
              fs.size());
  std::printf("  %-12s %8s %8s %10s %12s %10s\n", "block", "readers", "writers",
              "ping-pong", "traffic [B]", "invals");
  for (const auto* l : fs) {
    std::printf("  0x%-10llx %8u %8u %10llu %12llu %10llu\n",
                static_cast<unsigned long long>(l->block), l->num_readers(),
                l->num_writers(), static_cast<unsigned long long>(l->ping_pongs),
                static_cast<unsigned long long>(l->traffic_bytes),
                static_cast<unsigned long long>(l->invalidations));
  }
}

}  // namespace

int main() {
  std::printf("Ocean 4-CPU sharing profile, architecture 1, WTI vs WB-MESI\n\n");

  sim::ProfileSnapshot wti = profile_run(mem::Protocol::kWti);
  sim::ProfileSnapshot mesi = profile_run(mem::Protocol::kWbMesi);

  print_breakdown(wti);
  print_breakdown(mesi);

  bool ok = sim::write_profile_json("profile_wti.json", wti) &&
            sim::write_profile_json("profile_mesi.json", mesi) &&
            sim::write_profile_html("sharing_profile.html",
                                    wti.label + " vs " + mesi.label, wti, &mesi);
  if (!ok) {
    std::fprintf(stderr, "failed to write profile artifacts\n");
    return 1;
  }
  std::printf("\nwrote profile_wti.json, profile_mesi.json, sharing_profile.html\n");
  return 0;
}
