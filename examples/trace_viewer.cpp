// Trace viewer flow: run the paper's 4-processor Ocean workload under both
// write policies with full tracing, and dump a Perfetto-loadable trace pair
// plus the machine-readable run reports.
//
//   trace_wti.json  / trace_mesi.json   — open in https://ui.perfetto.dev
//                                         or chrome://tracing
//   report_wti.json / report_mesi.json  — latency percentiles per
//                                         transaction kind, per-epoch link
//                                         flits, bank queue depths, stall
//                                         attribution (schema in
//                                         EXPERIMENTS.md)
//
// In the Perfetto UI each coherence transaction is an async span: select
// one to follow a miss request -> hop -> directory -> invalidation fan-out
// -> ack across the cpu/cache/bank/noc process tracks.

#include <cstdio>

#include "apps/ocean.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

void run_one(mem::Protocol proto, const char* trace_path, const char* report_path) {
  core::SystemConfig cfg = core::SystemConfig::architecture1(4, proto);
  cfg.trace = sim::TraceMode::kFull;
  core::System sys(cfg);

  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  oc.compute_per_cell = 8;
  apps::Ocean workload(oc);
  core::RunResult r = sys.run(workload);

  const sim::Tracer& tr = sys.simulator().tracer();
  std::printf("\n%s: %llu cycles, %zu trace events, verified=%s\n",
              to_string(proto), static_cast<unsigned long long>(r.exec_cycles),
              tr.events().size(), r.verified ? "yes" : "NO");
  std::printf("  %-20s %8s %10s %8s %8s %8s\n", "transaction kind", "count",
              "hops", "p50", "p90", "p99");
  for (const auto& [kind, k] : tr.txn_stats()) {
    std::printf("  %-20s %8llu %10llu %8.0f %8.0f %8.0f\n", kind.c_str(),
                static_cast<unsigned long long>(k.count),
                static_cast<unsigned long long>(k.hops_total),
                k.latency.percentile(0.50), k.latency.percentile(0.90),
                k.latency.percentile(0.99));
  }

  if (tr.write_chrome_json(trace_path)) {
    std::printf("  wrote %s (load in Perfetto / chrome://tracing)\n", trace_path);
  }
  if (tr.write_report(report_path)) {
    std::printf("  wrote %s (run-report schema v1)\n", report_path);
  }
}

}  // namespace

int main() {
  std::printf("Tracing a 4-CPU Ocean run on architecture 1 (WTI vs WB-MESI)...\n");
  run_one(mem::Protocol::kWti, "trace_wti.json", "report_wti.json");
  run_one(mem::Protocol::kWbMesi, "trace_mesi.json", "report_mesi.json");
  std::printf("\nDone. Open a trace JSON in https://ui.perfetto.dev to explore.\n");
  return 0;
}
