// Quickstart: build the paper's 4-processor platform in both architectures,
// run a lock-protected shared counter under both write policies, and print
// the headline metrics. A ~40-line tour of the public API.

#include <cstdio>

#include "apps/micro.hpp"
#include "core/system.hpp"

int main() {
  using namespace ccnoc;

  std::printf("%-10s %-20s %12s %14s %10s %9s\n", "protocol", "platform",
              "cycles", "NoC bytes", "d-stall%", "verified");

  for (unsigned arch : {1u, 2u}) {
    for (mem::Protocol proto : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
      // One System per run: 4 CPUs, 4 KB direct-mapped caches, 32 B blocks,
      // GMN interconnect — the paper's Table 2 configuration.
      core::SystemConfig cfg = arch == 1
                                   ? core::SystemConfig::architecture1(4, proto)
                                   : core::SystemConfig::architecture2(4, proto);
      core::System sys(cfg);

      // Each of the 4 threads increments one shared counter 200 times
      // under a spin lock; the run verifies counter == 800 afterwards.
      apps::HotCounter workload(200);
      core::RunResult r = sys.run(workload);

      std::printf("%-10s %-20s %12llu %14llu %9.1f%% %9s\n",
                  to_string(proto), to_string(cfg.arch),
                  static_cast<unsigned long long>(r.exec_cycles),
                  static_cast<unsigned long long>(r.noc_bytes),
                  r.d_stall_pct(cfg.num_cpus), r.verified ? "yes" : "NO");
    }
  }
  return 0;
}
