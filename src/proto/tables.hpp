#pragma once

#include <span>
#include <string>

#include "mem/protocol.hpp"
#include "proto/coverage.hpp"
#include "proto/fsm.hpp"
#include "sim/types.hpp"

/// \file tables.hpp
/// Declarative transition tables: one table per protocol, each holding the
/// complete set of legal cache-line transitions and directory-entry
/// transitions. The cycle simulator's controllers and the bank apply their
/// state changes THROUGH these tables (apply_cache dictates the next state,
/// apply_dir validates a mutation cluster), and the exhaustive model checker
/// (verify/) drives its abstract machines off the same rows — so an
/// undeclared transition is a hard error in either engine, and a declared
/// row neither engine can reach is reported as dead by `ccnoc_model`.
///
/// Rows carry process-global ids (stable across protocols, assigned at
/// static-init time), so one CoverageSet bitmap spans every table.

namespace ccnoc::proto {

/// One legal cache-line transition: in protocol `table`, event `ev` moves a
/// line from `from` to `to`. (from, ev) is unique within a table — the
/// table dictates the outcome.
struct CacheRule {
  LineState from;
  CacheEvent ev;
  LineState to;
};

/// One legal directory-entry transition. (from, ev) may map to several
/// outcomes (e.g. dropping a sharer may or may not empty the entry), so
/// directory rules are validated as (from, ev, to) triples.
struct DirRule {
  DirState from;
  DirEvent ev;
  DirState to;
};

class ProtocolTable {
 public:
  /// \p tag overrides the protocol name in row_name() output (the two-level
  /// extension tables use "<proto>-L2" so their rows are distinguishable
  /// from the flat rows in coverage reports); nullptr = the protocol name.
  ProtocolTable(mem::Protocol proto, std::span<const CacheRule> cache_rules,
                std::span<const DirRule> dir_rules, int base_id,
                const char* tag = nullptr);

  [[nodiscard]] mem::Protocol protocol() const { return proto_; }

  /// Global row id for (from, ev), or -1 if undeclared.
  [[nodiscard]] int find_cache(LineState from, CacheEvent ev) const;
  /// Global row id for (from, ev, to), or -1 if undeclared.
  [[nodiscard]] int find_dir(DirState from, DirEvent ev, DirState to) const;

  /// Target state of a cache row (id must be a cache row of this table).
  [[nodiscard]] LineState cache_to(int id) const;

  [[nodiscard]] int base_id() const { return base_; }
  [[nodiscard]] int row_count() const {
    return int(cache_rules_.size() + dir_rules_.size());
  }
  [[nodiscard]] bool owns_row(int id) const {
    return id >= base_ && id < base_ + row_count();
  }
  [[nodiscard]] bool is_cache_row(int id) const {
    return id >= base_ && id < base_ + int(cache_rules_.size());
  }

  /// Human-readable row description, e.g. "WTI cache: S --Invalidate--> I".
  [[nodiscard]] std::string row_name(int id) const;

  // Raw rule access for the static table lint (verify/tablelint.hpp), which
  // analyzes rows the lookups can never resolve — duplicates, extension rows
  // shadowed by the flat-first fallback, unreachable from-states.
  [[nodiscard]] std::span<const CacheRule> cache_rules() const { return cache_rules_; }
  [[nodiscard]] std::span<const DirRule> dir_rules() const { return dir_rules_; }
  /// row_name() prefix: the protocol name, or "<proto>-L2" for extensions.
  [[nodiscard]] const std::string& tag() const { return tag_; }

 private:
  mem::Protocol proto_;
  std::string tag_;  ///< row_name() prefix (protocol name, or "<proto>-L2")
  std::span<const CacheRule> cache_rules_;
  std::span<const DirRule> dir_rules_;
  int base_;
};

/// The table for one protocol (static lifetime).
[[nodiscard]] const ProtocolTable& table_for(mem::Protocol p);

/// The two-level-hierarchy extension table for one protocol (static
/// lifetime): the transitions that only exist when private L1s sit in front
/// of banked shared L2s. Cache-side rows cover the L2 bank's own line FSM
/// (fill in E, dirtying at the L2, clean/dirty eviction) plus — for WTU —
/// the L1 facet of a back-invalidation (a flat WTU platform never sends
/// invalidations, so {S, Invalidate, I} lives here, not in the flat table).
/// Dir-side rows cover the recall completion events at the L2's L1-facing
/// directory. Extension tables are registered after the flat tables, so
/// every flat row id is unchanged.
[[nodiscard]] const ProtocolTable& l2_table_for(mem::Protocol p);

/// Total declared rows across all protocol tables (flat + L2 extensions).
[[nodiscard]] int total_rows();

/// Row name by global id (any table).
[[nodiscard]] std::string row_name(int id);

/// Abstract directory state of a full-map entry.
[[nodiscard]] inline DirState dir_state(bool any_presence, bool dirty) {
  if (dirty) return DirState::kOwned;
  return any_presence ? DirState::kShared : DirState::kUncached;
}

/// Apply a cache-line event: the table dictates the successor state.
/// Undeclared (state, event) pairs are protocol bugs and abort.
inline LineState apply_cache(const ProtocolTable& t, CoverageSet& cov,
                             LineState from, CacheEvent ev) {
  int id = t.find_cache(from, ev);
  CCNOC_ASSERT(id >= 0, std::string("undeclared cache transition: ") +
                            mem::to_string(t.protocol()) + " " + to_string(from) +
                            " --" + to_string(ev) + "-->");
  cov.record(id);
  return t.cache_to(id);
}

/// Validate a directory mutation the caller already performed: the observed
/// (before, event, after) triple must be a declared row.
inline void apply_dir(const ProtocolTable& t, CoverageSet& cov, DirState from,
                      DirEvent ev, DirState to) {
  int id = t.find_dir(from, ev, to);
  CCNOC_ASSERT(id >= 0, std::string("undeclared directory transition: ") +
                            mem::to_string(t.protocol()) + " " + to_string(from) +
                            " --" + to_string(ev) + "--> " + to_string(to));
  cov.record(id);
}

/// apply_cache with an optional extension-table fallback: the flat table is
/// consulted first (so flat row ids keep their coverage), then \p ext. Used
/// by two-level platforms, where e.g. a WTU L1 handles a back-invalidation
/// whose row only exists in the hierarchy extension table.
inline LineState apply_cache(const ProtocolTable& t, const ProtocolTable* ext,
                             CoverageSet& cov, LineState from, CacheEvent ev) {
  int id = t.find_cache(from, ev);
  const ProtocolTable* hit = &t;
  if (id < 0 && ext != nullptr) {
    id = ext->find_cache(from, ev);
    hit = ext;
  }
  CCNOC_ASSERT(id >= 0, std::string("undeclared cache transition: ") +
                            mem::to_string(t.protocol()) + " " + to_string(from) +
                            " --" + to_string(ev) + "-->");
  cov.record(id);
  return hit->cache_to(id);
}

/// apply_dir with the same extension-table fallback.
inline void apply_dir(const ProtocolTable& t, const ProtocolTable* ext,
                      CoverageSet& cov, DirState from, DirEvent ev, DirState to) {
  int id = t.find_dir(from, ev, to);
  if (id < 0 && ext != nullptr) id = ext->find_dir(from, ev, to);
  CCNOC_ASSERT(id >= 0, std::string("undeclared directory transition: ") +
                            mem::to_string(t.protocol()) + " " + to_string(from) +
                            " --" + to_string(ev) + "--> " + to_string(to));
  cov.record(id);
}

}  // namespace ccnoc::proto
