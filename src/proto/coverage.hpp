#pragma once

#include <array>
#include <cstdint>
#include <vector>

/// \file coverage.hpp
/// Transition-coverage bitmap over the global row ids of proto/tables.hpp.
/// Each Simulator owns one (so parallel sweeps never share state); the
/// model checker keeps its own per-run instance. Header-only and
/// dependency-free so sim/ can embed it without a link cycle.

namespace ccnoc::proto {

/// Upper bound on declared rows across every protocol table (checked at
/// table-registration time).
inline constexpr std::size_t kMaxRows = 256;

class CoverageSet {
 public:
  void record(int row) {
    if (row < 0) return;
    words_[std::size_t(row) / 64] |= std::uint64_t(1) << (std::size_t(row) % 64);
  }

  [[nodiscard]] bool covered(int row) const {
    if (row < 0) return false;
    return (words_[std::size_t(row) / 64] >> (std::size_t(row) % 64)) & 1;
  }

  void merge(const CoverageSet& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  void clear() { words_.fill(0); }

  [[nodiscard]] unsigned count() const {
    unsigned n = 0;
    for (std::uint64_t w : words_) n += unsigned(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] std::vector<int> rows() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        out.push_back(int(i * 64 + std::size_t(__builtin_ctzll(w))));
        w &= w - 1;
      }
    }
    return out;
  }

  /// Rows set in \p this but not in \p other (e.g. exercised-but-unexplored).
  [[nodiscard]] std::vector<int> missing_from(const CoverageSet& other) const {
    std::vector<int> out;
    for (int r : rows()) {
      if (!other.covered(r)) out.push_back(r);
    }
    return out;
  }

 private:
  std::array<std::uint64_t, kMaxRows / 64> words_{};
};

}  // namespace ccnoc::proto
