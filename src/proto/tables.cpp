#include "proto/tables.hpp"

namespace ccnoc::proto {

const char* to_string(CacheEvent e) {
  switch (e) {
    case CacheEvent::kStoreHit: return "StoreHit";
    case CacheEvent::kStoreUpgrade: return "StoreUpgrade";
    case CacheEvent::kAtomicIssue: return "AtomicIssue";
    case CacheEvent::kEvict: return "Evict";
    case CacheEvent::kEvictDirty: return "EvictDirty";
    case CacheEvent::kFillShared: return "FillShared";
    case CacheEvent::kFillExclusive: return "FillExclusive";
    case CacheEvent::kFillModified: return "FillModified";
    case CacheEvent::kInvalidate: return "Invalidate";
    case CacheEvent::kUpdate: return "Update";
    case CacheEvent::kFetch: return "Fetch";
    case CacheEvent::kFetchInv: return "FetchInv";
  }
  return "?";
}

const char* to_string(DirEvent e) {
  switch (e) {
    case DirEvent::kReadShared: return "ReadShared";
    case DirEvent::kReadUntracked: return "ReadUntracked";
    case DirEvent::kReadExclusive: return "ReadExclusive";
    case DirEvent::kUpgrade: return "Upgrade";
    case DirEvent::kWriteThrough: return "WriteThrough";
    case DirEvent::kWriteUpdate: return "WriteUpdate";
    case DirEvent::kAtomic: return "Atomic";
    case DirEvent::kWriteBack: return "WriteBack";
    case DirEvent::kSharerDrop: return "SharerDrop";
    case DirEvent::kRecall: return "Recall";
  }
  return "?";
}

namespace {

constexpr LineState I = LineState::kInvalid;
constexpr LineState S = LineState::kShared;
constexpr LineState E = LineState::kExclusive;
constexpr LineState M = LineState::kModified;
constexpr DirState DU = DirState::kUncached;
constexpr DirState DS = DirState::kShared;
constexpr DirState DO = DirState::kOwned;

using CE = CacheEvent;
using DE = DirEvent;

// --- WTI: write-through + write-invalidate (paper §4.1, Figure 1 left) ----
// Lines are Valid (S) or Invalid; memory is always clean; foreign copies
// are destroyed before a write is acknowledged.
constexpr CacheRule kWtiCache[] = {
    {I, CE::kFillShared, S},   // read miss fill ("Valid")
    {S, CE::kStoreHit, S},     // write-through patches the local copy in place
    {S, CE::kAtomicIssue, I},  // atomics execute at the bank; drop own copy
    {S, CE::kInvalidate, I},   // foreign write destroys the copy
    {S, CE::kEvict, I},        // clean replacement (always silent: never dirty)
};
constexpr DirRule kWtiDir[] = {
    {DU, DE::kReadShared, DS},    // first reader registered
    {DS, DE::kReadShared, DS},    // additional reader registered
    {DU, DE::kReadUntracked, DU},  // instruction fetch: served, not registered
    {DS, DE::kReadUntracked, DS},
    {DS, DE::kWriteThrough, DS},  // writer's own presence bit survives
    {DU, DE::kWriteThrough, DU},  // writer held no copy; foreign bits dropped
    {DU, DE::kAtomic, DU},        // every copy (incl. requester's) invalidated
    {DS, DE::kSharerDrop, DS},    // invalidation ack clears one bit of several
    {DS, DE::kSharerDrop, DU},    // ...or the last one
};

// --- WTU: write-through + write-update (paper §2's other category) --------
// Same cache FSM as WTI except foreign writes PATCH the copy in place
// (kUpdate) instead of destroying it; invalidations are never sent.
constexpr CacheRule kWtuCache[] = {
    {I, CE::kFillShared, S},
    {S, CE::kStoreHit, S},
    {S, CE::kUpdate, S},       // foreign write patched into the copy
    {S, CE::kAtomicIssue, I},
    {S, CE::kEvict, I},
};
constexpr DirRule kWtuDir[] = {
    {DU, DE::kReadShared, DS},
    {DS, DE::kReadShared, DS},
    {DU, DE::kReadUntracked, DU},
    {DS, DE::kReadUntracked, DS},
    {DS, DE::kWriteUpdate, DS},  // sharers were patched and stay registered
    {DU, DE::kWriteUpdate, DU},
    {DS, DE::kAtomic, DS},       // sharers patched with the post-RMW value
    {DU, DE::kAtomic, DU},
    {DS, DE::kSharerDrop, DS},   // stale update target (silent evict) dropped
    {DS, DE::kSharerDrop, DU},
};

// --- WB-MESI: write-back Illinois MESI (paper §4.1, Figure 1 right) -------
constexpr CacheRule kMesiCache[] = {
    {I, CE::kFillShared, S},
    {I, CE::kFillExclusive, E},   // sole reader
    {I, CE::kFillModified, M},    // write-allocate / upgrade-with-data
    {S, CE::kStoreUpgrade, M},    // store hit in S, exclusivity granted
    {E, CE::kStoreHit, M},        // silent E->M
    {M, CE::kStoreHit, M},
    {S, CE::kInvalidate, I},      // foreign write-allocate/upgrade
    {M, CE::kFetch, S},           // foreign read: supply data, downgrade
    {E, CE::kFetch, S},
    {M, CE::kFetchInv, I},        // foreign write: supply data, invalidate
    {E, CE::kFetchInv, I},
    {M, CE::kEvictDirty, I},      // replacement write-back
    {E, CE::kEvict, I},           // silent clean replacement
    {S, CE::kEvict, I},
};
constexpr DirRule kMesiDir[] = {
    {DU, DE::kReadShared, DO},    // sole reader granted Exclusive
    {DS, DE::kReadShared, DS},
    {DO, DE::kReadShared, DS},    // owner fetched and downgraded
    {DU, DE::kReadShared, DS},    // owner's write-back crossed the fetch
    {DU, DE::kReadUntracked, DU},
    {DS, DE::kReadUntracked, DS},
    {DO, DE::kReadUntracked, DS},  // untracked read of a dirty block
    {DU, DE::kReadExclusive, DO},
    {DS, DE::kReadExclusive, DO},  // requester's stale bit survived the round
    {DO, DE::kReadExclusive, DO},  // ownership transfer / self re-grant
    {DU, DE::kUpgrade, DO},        // requester's copy was lost to a race
    {DS, DE::kUpgrade, DO},
    {DO, DE::kUpgrade, DO},        // upgrade raced a foreign write-allocate
    {DO, DE::kWriteBack, DU},
    {DS, DE::kSharerDrop, DS},
    {DS, DE::kSharerDrop, DU},
    {DO, DE::kSharerDrop, DU},     // self-owner correction (silent E eviction)
};

// --- Two-level hierarchy extension tables ---------------------------------
// Transitions that only exist when private L1s sit in front of banked
// shared L2s (mem/l2_bank.hpp). Cache-side rows describe the L2 bank's OWN
// line FSM against the memory tier: a fill installs clean-exclusive (the
// home L2 is the memory directory's only client for its blocks, so the
// MESI memory tier always grants E), any serialized write dirties the line
// at the L2 (write-through stops at the shared level; DRAM is updated on
// eviction), and evictions are silent when clean / write back when dirty.
// Dir-side rows are the recall completion events at the L2's L1-facing
// directory: the per-sharer invalidation acks fire the flat kSharerDrop
// rows, so by completion the entry is Uncached (or was Owned when a MESI
// owner supplied data). MESI's L2-line rows all coincide with flat MESI
// cache rows, so its extension is dir-only.
constexpr CacheRule kL2CommonCache[] = {
    {I, CE::kFillExclusive, E},  // memory-tier fill (sole client ⇒ grant E)
    {E, CE::kStoreHit, M},       // first serialized write dirties the L2 copy
    {M, CE::kStoreHit, M},
    {E, CE::kEvict, I},          // clean eviction: silent towards memory
    {M, CE::kEvictDirty, I},     // dirty eviction: write back to DRAM
};
constexpr CacheRule kWtuL2Cache[] = {
    {I, CE::kFillExclusive, E},
    {E, CE::kStoreHit, M},
    {M, CE::kStoreHit, M},
    {E, CE::kEvict, I},
    {M, CE::kEvictDirty, I},
    // L1 facet of a back-invalidation: a flat WTU platform never sends
    // invalidations (foreign writes PATCH copies), but an L2 eviction must
    // destroy the L1 copies it recalls.
    {S, CE::kInvalidate, I},
};
constexpr DirRule kL2CommonDir[] = {
    {DU, DE::kRecall, DU},  // recall completed; sharers (if any) already
                            // dropped by their acks' kSharerDrop rows
};
constexpr DirRule kMesiL2Dir[] = {
    {DU, DE::kRecall, DU},
    {DO, DE::kRecall, DU},  // recalled from a (possibly silent-E) owner:
                            // the FetchInv data/ack drops the owner here
};

int g_total_rows = 0;

}  // namespace

ProtocolTable::ProtocolTable(mem::Protocol proto, std::span<const CacheRule> cache_rules,
                             std::span<const DirRule> dir_rules, int base_id,
                             const char* tag)
    : proto_(proto),
      tag_(tag != nullptr ? tag : mem::to_string(proto)),
      cache_rules_(cache_rules),
      dir_rules_(dir_rules),
      base_(base_id) {
  // (from, ev) must dictate a unique outcome on the cache side.
  for (std::size_t a = 0; a < cache_rules_.size(); ++a) {
    for (std::size_t b = a + 1; b < cache_rules_.size(); ++b) {
      CCNOC_ASSERT(cache_rules_[a].from != cache_rules_[b].from ||
                       cache_rules_[a].ev != cache_rules_[b].ev,
                   "ambiguous cache transition table");
    }
  }
  CCNOC_ASSERT(std::size_t(base_) + cache_rules_.size() + dir_rules_.size() <= kMaxRows,
               "transition tables exceed the coverage bitmap");
}

int ProtocolTable::find_cache(LineState from, CacheEvent ev) const {
  for (std::size_t i = 0; i < cache_rules_.size(); ++i) {
    if (cache_rules_[i].from == from && cache_rules_[i].ev == ev) {
      return base_ + int(i);
    }
  }
  return -1;
}

int ProtocolTable::find_dir(DirState from, DirEvent ev, DirState to) const {
  for (std::size_t i = 0; i < dir_rules_.size(); ++i) {
    if (dir_rules_[i].from == from && dir_rules_[i].ev == ev &&
        dir_rules_[i].to == to) {
      return base_ + int(cache_rules_.size() + i);
    }
  }
  return -1;
}

LineState ProtocolTable::cache_to(int id) const {
  CCNOC_ASSERT(is_cache_row(id), "not a cache row of this table");
  return cache_rules_[std::size_t(id - base_)].to;
}

std::string ProtocolTable::row_name(int id) const {
  CCNOC_ASSERT(owns_row(id), "row id outside this table");
  std::string name = tag_;
  if (is_cache_row(id)) {
    const CacheRule& r = cache_rules_[std::size_t(id - base_)];
    name += std::string(" cache: ") + to_string(r.from) + " --" + to_string(r.ev) +
            "--> " + to_string(r.to);
  } else {
    const DirRule& r = dir_rules_[std::size_t(id - base_) - cache_rules_.size()];
    name += std::string(" dir: ") + to_string(r.from) + " --" + to_string(r.ev) +
            "--> " + to_string(r.to);
  }
  return name;
}

const ProtocolTable& table_for(mem::Protocol p) {
  // Bases are assigned in declaration order; ids are stable process-wide.
  // The L2 extension tables register AFTER every flat table (see
  // l2_table_for), so flat row ids are identical with or without them.
  static const ProtocolTable wti(mem::Protocol::kWti, kWtiCache, kWtiDir, 0);
  static const ProtocolTable wtu(mem::Protocol::kWtu, kWtuCache, kWtuDir,
                                 wti.base_id() + wti.row_count());
  static const ProtocolTable mesi(mem::Protocol::kWbMesi, kMesiCache, kMesiDir,
                                  wtu.base_id() + wtu.row_count());
  switch (p) {
    case mem::Protocol::kWti: return wti;
    case mem::Protocol::kWtu: return wtu;
    case mem::Protocol::kWbMesi: return mesi;
  }
  return wti;
}

const ProtocolTable& l2_table_for(mem::Protocol p) {
  const int flat_end = table_for(mem::Protocol::kWbMesi).base_id() +
                       table_for(mem::Protocol::kWbMesi).row_count();
  static const ProtocolTable wti_l2(mem::Protocol::kWti, kL2CommonCache,
                                    kL2CommonDir, flat_end, "WTI-L2");
  static const ProtocolTable wtu_l2(mem::Protocol::kWtu, kWtuL2Cache, kL2CommonDir,
                                    wti_l2.base_id() + wti_l2.row_count(),
                                    "WTU-L2");
  static const ProtocolTable mesi_l2(mem::Protocol::kWbMesi,
                                     std::span<const CacheRule>{}, kMesiL2Dir,
                                     wtu_l2.base_id() + wtu_l2.row_count(),
                                     "MESI-L2");
  if (g_total_rows == 0) g_total_rows = mesi_l2.base_id() + mesi_l2.row_count();
  switch (p) {
    case mem::Protocol::kWti: return wti_l2;
    case mem::Protocol::kWtu: return wtu_l2;
    case mem::Protocol::kWbMesi: return mesi_l2;
  }
  return wti_l2;
}

int total_rows() {
  (void)l2_table_for(mem::Protocol::kWbMesi);  // force registration
  return g_total_rows;
}

std::string row_name(int id) {
  for (mem::Protocol p :
       {mem::Protocol::kWti, mem::Protocol::kWtu, mem::Protocol::kWbMesi}) {
    const ProtocolTable& t = table_for(p);
    if (t.owns_row(id)) return t.row_name(id);
    const ProtocolTable& t2 = l2_table_for(p);
    if (t2.owns_row(id)) return t2.row_name(id);
  }
  return "row#" + std::to_string(id);
}

}  // namespace ccnoc::proto
