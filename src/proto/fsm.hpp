#pragma once

#include <cstdint>

/// \file fsm.hpp
/// The protocol state machines' shared vocabulary: cache-line states,
/// cache-side events, abstract directory states and directory-side events.
/// Both the cycle simulator (cache/, mem/) and the exhaustive model checker
/// (verify/) express their transitions in these terms, against the one set
/// of declarative tables in proto/tables.hpp — so the two cannot silently
/// diverge: a transition either exists in the table or is a hard error in
/// whichever engine tried to take it.

namespace ccnoc::proto {

/// Cache-line states. WTI/WTU use only kInvalid and kShared ("Valid");
/// MESI uses all four (paper §4.1 Figure 1). `cache::LineState` is an
/// alias of this enum, so the tables and the tag array agree by
/// construction.
enum class LineState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

[[nodiscard]] inline const char* to_string(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
  }
  return "?";
}

/// Events observed by a cache-line FSM. Each (state, event) pair with a
/// defined outcome is one row of the protocol's cache table.
enum class CacheEvent : std::uint8_t {
  // Processor-side.
  kStoreHit,      ///< store to a valid copy (WT: patch in place; MESI: E/M)
  kStoreUpgrade,  ///< MESI store hit in S: exclusivity granted (UpgradeAck)
  kAtomicIssue,   ///< WT: atomic drops the local copy before going to the bank
  kEvict,         ///< replacement of a clean copy (silent)
  kEvictDirty,    ///< MESI replacement of a Modified copy (write-back)
  // Memory responses.
  kFillShared,     ///< ReadResponse grant=S
  kFillExclusive,  ///< ReadResponse grant=E (MESI sole reader)
  kFillModified,   ///< ReadResponse/UpgradeAck grant=M (MESI write-allocate)
  // Directory commands.
  kInvalidate,  ///< Invalidate received for a valid copy
  kUpdate,      ///< UpdateWord received for a valid copy (WTU)
  kFetch,       ///< Fetch: supply data, downgrade to S
  kFetchInv,    ///< FetchInv: supply data, invalidate
};

inline constexpr std::size_t kNumCacheEvents = std::size_t(CacheEvent::kFetchInv) + 1;

[[nodiscard]] const char* to_string(CacheEvent e);

/// Abstract directory-entry state, derived from a full-map entry:
/// no presence bits and clean -> kUncached; dirty -> kOwned (one E/M owner);
/// otherwise kShared. One block is always in exactly one of these.
enum class DirState : std::uint8_t { kUncached, kShared, kOwned };

[[nodiscard]] inline const char* to_string(DirState s) {
  switch (s) {
    case DirState::kUncached: return "U";
    case DirState::kShared: return "Sh";
    case DirState::kOwned: return "O";
  }
  return "?";
}

/// Events observed by a directory entry. Request-shaped events are applied
/// at the bank's transaction completion points; kSharerDrop at each
/// presence-bit removal (invalidation acks, stale-sharer discoveries,
/// self-owner corrections).
enum class DirEvent : std::uint8_t {
  kReadShared,     ///< tracked read satisfied (grant S or E)
  kReadUntracked,  ///< instruction fetch: served, not registered
  kReadExclusive,  ///< MESI write-allocate granted
  kUpgrade,        ///< MESI upgrade granted
  kWriteThrough,   ///< WTI word write performed (foreign copies invalidated)
  kWriteUpdate,    ///< WTU word write performed (foreign copies patched)
  kAtomic,         ///< bank-side atomic performed (WT protocols)
  kWriteBack,      ///< MESI owner wrote the block back
  kSharerDrop,     ///< one presence bit removed
  kRecall,         ///< L2 eviction recalled the block from its L1 sharers
                   ///< (two-level hierarchy back-invalidation; fired at the
                   ///< recall's completion point, after every ack returned)
};

inline constexpr std::size_t kNumDirEvents = std::size_t(DirEvent::kRecall) + 1;

[[nodiscard]] const char* to_string(DirEvent e);

}  // namespace ccnoc::proto
