#pragma once

#include <map>
#include <string>
#include <vector>

#include "apps/workload.hpp"

/// \file trace.hpp
/// Trace-driven workload: replays per-thread memory-reference traces
/// through the simulated hierarchy — the classical methodology of the
/// paper's related work ([4, 18] are trace-driven studies) and a useful
/// substrate for downstream users who have address traces rather than
/// programs.
///
/// Trace text format, one record per line (`#` comments allowed):
///
///     <tid> L <addr-hex> <size>            load
///     <tid> S <addr-hex> <size> <value>    store
///     <tid> C <cycles>                     compute gap
///     <tid> B                              global barrier
///
/// Addresses are offsets into one shared region the player allocates.
/// Stores record a last-writer oracle per word; after the run every traced
/// word must hold the value of its last store in trace order **per
/// location with a single writer**; multi-writer words are skipped by the
/// oracle (their final value depends on interleaving).

namespace ccnoc::apps {

struct TraceRecord {
  enum class Kind : std::uint8_t { kLoad, kStore, kCompute, kBarrier };
  Kind kind = Kind::kLoad;
  sim::Addr offset = 0;  ///< offset into the shared region
  std::uint8_t size = 4;
  std::uint64_t value = 0;  ///< store value / compute cycles
};

class TracePlayer final : public Workload {
 public:
  /// Build from parsed per-thread traces.
  explicit TracePlayer(std::vector<std::vector<TraceRecord>> per_thread);

  /// Parse the text format above. Throws std::logic_error on bad input.
  static TracePlayer parse(const std::string& text, unsigned nthreads);

  /// Deterministic synthetic trace generator (uniform-random references at
  /// a given store fraction with barrier epochs), for tests and benches.
  static TracePlayer synthetic(unsigned nthreads, unsigned ops_per_thread,
                               unsigned region_words, double store_fraction,
                               std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "trace-player"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

  [[nodiscard]] std::size_t records(unsigned tid) const {
    return traces_.at(tid).size();
  }

 private:
  std::vector<std::vector<TraceRecord>> traces_;
  sim::Addr region_ = 0;
  std::uint64_t region_bytes_ = 0;
  sim::Addr barrier_ = 0;
  sim::Addr code_ = 0;
  /// Last-writer oracle: word offset → (value, single_writer).
  std::map<sim::Addr, std::pair<std::uint64_t, bool>> oracle_;
  std::map<sim::Addr, std::uint8_t> verify_sizes_;
};

}  // namespace ccnoc::apps
