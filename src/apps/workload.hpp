#pragma once

#include <string>

#include "cpu/thread.hpp"
#include "mem/direct_memory.hpp"
#include "os/kernel.hpp"

/// \file workload.hpp
/// Execution-driven workload interface. A workload allocates its data
/// through the OS layout (so placement follows the architecture under
/// study), writes initial values through the untimed memory backdoor, and
/// provides one coroutine per thread that issues every load/store/sync op
/// through the simulated hierarchy. After the run, `verify` replays the
/// computation host-side and checks the simulated memory bit-for-bit —
/// the platform's end-to-end coherence oracle.

namespace ccnoc::apps {

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocate and initialize memory, locks and barriers. Called once,
  /// after the kernel created `nthreads` thread contexts.
  virtual void setup(os::Kernel& kernel, unsigned nthreads) = 0;

  /// Build the body of thread `ctx.tid`.
  virtual cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) = 0;

  /// Check the final simulated memory against a host-side golden
  /// execution. Returns true when the run is correct.
  [[nodiscard]] virtual bool verify(const mem::DirectMemoryIf& dm) const = 0;
};

}  // namespace ccnoc::apps
