#include "apps/water.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <vector>

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

double Water::initial_pos(unsigned m, unsigned axis) {
  // Deterministic pseudo-lattice with a per-molecule perturbation.
  const double base = double((m * 7 + axis * 3) % 11);
  return base + 0.125 * double((m * 2654435761u + axis) % 64) / 64.0;
}

void Water::pair_force(const double* pi, const double* pj, std::int64_t* out) {
  const double dx = pj[0] - pi[0];
  const double dy = pj[1] - pi[1];
  const double dz = pj[2] - pi[2];
  const double r2 = dx * dx + dy * dy + dz * dz + 1.0;  // softened
  const double f = 1.0 / r2;
  out[0] = std::llround(f * dx * kScale);
  out[1] = std::llround(f * dy * kScale);
  out[2] = std::llround(f * dz * kScale);
}

void Water::setup(os::Kernel& kernel, unsigned nthreads) {
  nthreads_ = nthreads;
  mols_ = cfg_.molecules;
  if (mols_ == 0) mols_ = nthreads <= 16 ? 27 : 64;  // paper's Figure 4 note
  if (mols_ < nthreads) mols_ = nthreads;

  pos_.clear();
  force_.clear();
  locks_.clear();
  for (unsigned m = 0; m < mols_; ++m) {
    pos_.push_back(kernel.layout().alloc_shared(48, 32));
    force_.push_back(kernel.layout().alloc_shared(24, 32));
    for (unsigned a = 0; a < 3; ++a) {
      kernel.memory().write_f64(pos_addr(m, a), initial_pos(m, a));
      kernel.memory().write_f64(vel_addr(m, a), 0.0);
      kernel.memory().write_u64(force_addr(m, a), 0);
    }
  }
  for (unsigned l = 0; l < cfg_.num_locks; ++l) locks_.push_back(kernel.create_lock());
  barrier_ = kernel.create_barrier(nthreads);
  code_ = kernel.layout().alloc_code(cfg_.code_bytes);
}

ThreadProgram Water::make_program(ThreadContext& ctx) {
  return [](ThreadContext& c, const Water* wp, unsigned tid,
            unsigned nthreads) -> ThreadProgram {
    const Water& w = *wp;
    c.set_code_region(w.code_, w.cfg_.code_bytes);
    // Private force accumulator, as in SPLASH-2 Water-nsquared: pair
    // contributions land in a per-process array (thread-local memory) and
    // are flushed to the shared array once per molecule per step under the
    // molecule's stripe lock.
    std::vector<std::int64_t> acc(std::size_t(w.mols_) * 3, 0);
    std::vector<bool> touched(w.mols_, false);

    for (unsigned step = 0; step < w.cfg_.steps; ++step) {
      // ---- force phase: each (i, j) pair computed once, by i's owner ----
      for (unsigned i = tid; i < w.mols_; i += nthreads) {
        double pi[3];
        for (unsigned a = 0; a < 3; ++a) {
          co_yield ThreadOp::load(w.pos_addr(i, a), 8);
          pi[a] = std::bit_cast<double>(c.last_load_value);
        }
        touched[i] = true;
        for (unsigned j = i + 1; j < w.mols_; ++j) {
          double pj[3];
          for (unsigned a = 0; a < 3; ++a) {
            co_yield ThreadOp::load(w.pos_addr(j, a), 8);
            pj[a] = std::bit_cast<double>(c.last_load_value);
          }
          std::int64_t f[3];
          pair_force(pi, pj, f);
          co_yield ThreadOp::compute(w.cfg_.force_compute);
          for (unsigned a = 0; a < 3; ++a) {
            acc[std::size_t(i) * 3 + a] += f[a];
            acc[std::size_t(j) * 3 + a] -= f[a];
          }
          touched[j] = true;
          // The private accumulator lives in thread-local memory: one
          // read-modify-write per pair (cache-hot, no sharing).
          const sim::Addr la = c.local_base + 8 * (j % 64);
          co_yield ThreadOp::load(la, 8);
          co_yield ThreadOp::store(la, c.last_load_value + 1, 8);
        }
      }
      // ---- flush phase: one locked update per touched molecule ----
      for (unsigned j = 0; j < w.mols_; ++j) {
        if (!touched[j]) continue;
        const sim::Addr jlock = w.locks_[j % w.cfg_.num_locks];
        co_yield ThreadOp::lock_acquire(jlock);
        for (unsigned a = 0; a < 3; ++a) {
          co_yield ThreadOp::load(w.force_addr(j, a), 8);
          const std::int64_t cur = std::int64_t(c.last_load_value);
          co_yield ThreadOp::store(
              w.force_addr(j, a), std::uint64_t(cur + acc[std::size_t(j) * 3 + a]), 8);
          acc[std::size_t(j) * 3 + a] = 0;
        }
        co_yield ThreadOp::lock_release(jlock);
        touched[j] = false;
      }
      co_yield ThreadOp::barrier(w.barrier_);

      // ---- update phase: integrate owned molecules, clear accumulators ----
      for (unsigned i = tid; i < w.mols_; i += nthreads) {
        for (unsigned a = 0; a < 3; ++a) {
          co_yield ThreadOp::load(w.force_addr(i, a), 8);
          const double f = double(std::int64_t(c.last_load_value)) / kScale;
          co_yield ThreadOp::load(w.vel_addr(i, a), 8);
          double v = std::bit_cast<double>(c.last_load_value);
          v += f * kDt;
          co_yield ThreadOp::store(w.vel_addr(i, a), std::bit_cast<std::uint64_t>(v), 8);
          co_yield ThreadOp::load(w.pos_addr(i, a), 8);
          double p = std::bit_cast<double>(c.last_load_value);
          p += v * kDt;
          co_yield ThreadOp::compute(6);
          co_yield ThreadOp::store(w.pos_addr(i, a), std::bit_cast<std::uint64_t>(p), 8);
          co_yield ThreadOp::store(w.force_addr(i, a), 0, 8);
        }
      }
      co_yield ThreadOp::barrier(w.barrier_);
    }
  }(ctx, this, ctx.tid, nthreads_);
}

bool Water::verify(const mem::DirectMemoryIf& dm) const {
  // Golden replay: fixed-point force accumulation commutes, so a sequential
  // replay produces the exact bits of any legal parallel interleaving.
  std::vector<std::array<double, 3>> pos(mols_), vel(mols_);
  std::vector<std::array<std::int64_t, 3>> force(mols_);
  for (unsigned m = 0; m < mols_; ++m) {
    for (unsigned a = 0; a < 3; ++a) {
      pos[m][a] = initial_pos(m, a);
      vel[m][a] = 0.0;
      force[m][a] = 0;
    }
  }
  for (unsigned step = 0; step < cfg_.steps; ++step) {
    for (unsigned i = 0; i < mols_; ++i) {
      for (unsigned j = i + 1; j < mols_; ++j) {
        std::int64_t f[3];
        pair_force(pos[i].data(), pos[j].data(), f);
        for (unsigned a = 0; a < 3; ++a) {
          force[i][a] += f[a];
          force[j][a] -= f[a];
        }
      }
    }
    for (unsigned i = 0; i < mols_; ++i) {
      for (unsigned a = 0; a < 3; ++a) {
        const double f = double(force[i][a]) / kScale;
        vel[i][a] += f * kDt;
        pos[i][a] += vel[i][a] * kDt;
        force[i][a] = 0;
      }
    }
  }
  for (unsigned m = 0; m < mols_; ++m) {
    for (unsigned a = 0; a < 3; ++a) {
      if (dm.read_f64(pos_addr(m, a)) != pos[m][a]) return false;
      if (dm.read_f64(vel_addr(m, a)) != vel[m][a]) return false;
    }
  }
  return true;
}

}  // namespace ccnoc::apps
