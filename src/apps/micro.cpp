#include "apps/micro.hpp"

#include "sim/rng.hpp"

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

// ---------------------------------------------------------------- HotCounter

void HotCounter::setup(os::Kernel& kernel, unsigned nthreads) {
  nthreads_ = nthreads;
  lock_ = kernel.create_lock();
  counter_ = kernel.layout().alloc_shared(4, 4);
  kernel.memory().write_u32(counter_, 0);
  code_ = kernel.layout().alloc_code(512);
}

ThreadProgram HotCounter::make_program(ThreadContext& ctx) {
  const unsigned n = increments_;
  const sim::Addr lock = lock_;
  const sim::Addr counter = counter_;
  const sim::Addr code = code_;
  return [](ThreadContext& c, unsigned reps, sim::Addr lk, sim::Addr cnt,
            sim::Addr cd) -> ThreadProgram {
    c.set_code_region(cd, 512);
    for (unsigned i = 0; i < reps; ++i) {
      co_yield ThreadOp::lock_acquire(lk);
      co_yield ThreadOp::load(cnt);
      co_yield ThreadOp::store(cnt, c.last_load_value + 1);
      co_yield ThreadOp::lock_release(lk);
      co_yield ThreadOp::compute(5);
    }
  }(ctx, n, lock, counter, code);
}

bool HotCounter::verify(const mem::DirectMemoryIf& dm) const {
  return dm.read_u32(counter_) == nthreads_ * increments_;
}

// ---------------------------------------------------------- ProducerConsumer

void ProducerConsumer::setup(os::Kernel& kernel, unsigned nthreads) {
  CCNOC_ASSERT(nthreads % 2 == 0, "producer-consumer needs an even thread count");
  pairs_ = nthreads / 2;
  mailboxes_.clear();
  error_cells_.clear();
  for (unsigned p = 0; p < pairs_; ++p) {
    sim::Addr mb = kernel.layout().alloc_shared(4 * (payload_words_ + 1), 32);
    for (unsigned w = 0; w <= payload_words_; ++w) kernel.memory().write_u32(mb + 4 * w, 0);
    mailboxes_.push_back(mb);
    sim::Addr err = kernel.layout().alloc_shared(4, 4);
    kernel.memory().write_u32(err, 0);
    error_cells_.push_back(err);
  }
  code_ = kernel.layout().alloc_code(1024);
}

ThreadProgram ProducerConsumer::make_program(ThreadContext& ctx) {
  const unsigned pair = ctx.tid / 2;
  const bool is_producer = (ctx.tid % 2) == 0;
  const sim::Addr mb = mailboxes_[pair];
  const sim::Addr err = error_cells_[pair];
  const unsigned rounds = rounds_;
  const unsigned words = payload_words_;
  const sim::Addr code = code_;

  if (is_producer) {
    return [](ThreadContext& c, sim::Addr mbox, unsigned r, unsigned w,
              sim::Addr cd) -> ThreadProgram {
      c.set_code_region(cd, 1024);
      for (unsigned round = 1; round <= r; ++round) {
        // Wait until the consumer drained the previous round.
        do {
          co_yield ThreadOp::load(mbox);
          if (c.last_load_value != 0) co_yield ThreadOp::compute(10);
        } while (c.last_load_value != 0);
        // Payload first, then the flag: a consumer that observes the flag
        // must observe the payload (sequential consistency).
        for (unsigned i = 1; i <= w; ++i) {
          co_yield ThreadOp::store(mbox + 4 * i, round * 1000 + i);
        }
        co_yield ThreadOp::store(mbox, round);
      }
    }(ctx, mb, rounds, words, code);
  }
  return [](ThreadContext& c, sim::Addr mbox, sim::Addr ecell, unsigned r, unsigned w,
            sim::Addr cd) -> ThreadProgram {
    c.set_code_region(cd, 1024);
    std::uint32_t errors = 0;
    for (unsigned round = 1; round <= r; ++round) {
      do {
        co_yield ThreadOp::load(mbox);
        if (c.last_load_value != round) co_yield ThreadOp::compute(10);
      } while (c.last_load_value != round);
      for (unsigned i = 1; i <= w; ++i) {
        co_yield ThreadOp::load(mbox + 4 * i);
        if (c.last_load_value != round * 1000 + i) ++errors;
      }
      co_yield ThreadOp::store(mbox, 0);  // hand the mailbox back
    }
    co_yield ThreadOp::store(ecell, errors);
  }(ctx, mb, err, rounds, words, code);
}

bool ProducerConsumer::verify(const mem::DirectMemoryIf& dm) const {
  for (sim::Addr e : error_cells_) {
    if (dm.read_u32(e) != 0) return false;
  }
  return true;
}

// -------------------------------------------------------------- UniformRandom

void UniformRandom::setup(os::Kernel& kernel, unsigned nthreads) {
  nthreads_ = nthreads;
  shared_ = kernel.layout().alloc_shared(4 * std::uint64_t(cfg_.shared_words), 32);
  for (unsigned w = 0; w < cfg_.shared_words; ++w) {
    kernel.memory().write_u32(shared_ + 4 * w, w);
  }
  done_cells_.clear();
  for (unsigned t = 0; t < nthreads; ++t) {
    sim::Addr d = kernel.layout().alloc_shared(4, 4);
    kernel.memory().write_u32(d, 0);
    done_cells_.push_back(d);
  }
  code_ = kernel.layout().alloc_code(2048);
}

ThreadProgram UniformRandom::make_program(ThreadContext& ctx) {
  const Config cfg = cfg_;
  const sim::Addr shared = shared_;
  const sim::Addr done = done_cells_[ctx.tid];
  const sim::Addr code = code_;
  return [](ThreadContext& c, Config cf, sim::Addr sh, sim::Addr dn,
            sim::Addr cd) -> ThreadProgram {
    c.set_code_region(cd, 2048);
    sim::Rng rng(cf.seed * 1315423911u + c.tid + 1);
    std::uint64_t checksum = 0;
    const unsigned local_words = 256;
    for (unsigned i = 0; i < cf.ops_per_thread; ++i) {
      const bool local = rng.next_double() < cf.local_fraction;
      const bool store = rng.next_double() < cf.store_fraction;
      sim::Addr a = local ? c.local_base + 4 * rng.next_below(local_words)
                          : sh + 4 * rng.next_below(cf.shared_words);
      if (store) {
        co_yield ThreadOp::store(a, std::uint32_t(checksum + i));
      } else {
        co_yield ThreadOp::load(a);
        checksum += c.last_load_value;
      }
      if (cf.compute_between > 0) co_yield ThreadOp::compute(cf.compute_between);
    }
    co_yield ThreadOp::store(dn, 1);
  }(ctx, cfg, shared, done, code);
}

bool UniformRandom::verify(const mem::DirectMemoryIf& dm) const {
  for (sim::Addr d : done_cells_) {
    if (dm.read_u32(d) != 1) return false;
  }
  return true;
}

// ------------------------------------------------------------------ PingPong

void PingPong::setup(os::Kernel& kernel, unsigned nthreads) {
  CCNOC_ASSERT(nthreads >= 2, "ping-pong needs two threads");
  data_ = kernel.layout().alloc_shared(32, 32);
  flags_ = kernel.layout().alloc_shared(32, 32);  // separate block from data
  kernel.memory().write_u32(data_, 0);
  kernel.memory().write_u32(flags_, 0);
  code_ = kernel.layout().alloc_code(512);
}

ThreadProgram PingPong::make_program(ThreadContext& ctx) {
  const unsigned role = ctx.tid;  // 0 = A, 1 = B, others idle
  const unsigned rounds = rounds_;
  const sim::Addr data = data_;
  const sim::Addr turn = flags_;
  const sim::Addr code = code_;

  if (role > 1) {
    return [](ThreadContext& c, sim::Addr cd) -> ThreadProgram {
      c.set_code_region(cd, 512);
      co_yield ThreadOp::compute(1);
    }(ctx, code);
  }
  return [](ThreadContext& c, unsigned me, unsigned r, sim::Addr d, sim::Addr t,
            sim::Addr cd) -> ThreadProgram {
    c.set_code_region(cd, 512);
    for (unsigned round = 0; round < r; ++round) {
      do {
        co_yield ThreadOp::load(t);
        if (c.last_load_value % 2 != me) co_yield ThreadOp::compute(8);
      } while (c.last_load_value % 2 != me);
      co_yield ThreadOp::load(d);
      co_yield ThreadOp::store(d, c.last_load_value + 1);
      co_yield ThreadOp::load(t);
      co_yield ThreadOp::store(t, c.last_load_value + 1);
    }
  }(ctx, role, rounds, data, turn, code);
}

bool PingPong::verify(const mem::DirectMemoryIf& dm) const {
  return dm.read_u32(data_) == 2 * rounds_ && dm.read_u32(flags_) == 2 * rounds_;
}

}  // namespace ccnoc::apps
