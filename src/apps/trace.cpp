#include "apps/trace.hpp"

#include <algorithm>
#include <sstream>

#include "sim/rng.hpp"

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

namespace {

struct WriterInfo {
  std::uint64_t value = 0;
  std::uint8_t size = 4;
  unsigned tid = 0;
  bool multi = false;
};

}  // namespace

TracePlayer::TracePlayer(std::vector<std::vector<TraceRecord>> per_thread)
    : traces_(std::move(per_thread)) {
  CCNOC_ASSERT(!traces_.empty(), "trace player needs at least one thread");
  std::map<sim::Addr, WriterInfo> writers;
  for (unsigned tid = 0; tid < traces_.size(); ++tid) {
    for (const TraceRecord& r : traces_[tid]) {
      if (r.kind == TraceRecord::Kind::kLoad || r.kind == TraceRecord::Kind::kStore) {
        CCNOC_ASSERT(r.size == 1 || r.size == 2 || r.size == 4 || r.size == 8,
                     "bad trace access size");
        region_bytes_ = std::max<std::uint64_t>(region_bytes_, r.offset + r.size);
      }
      if (r.kind == TraceRecord::Kind::kStore) {
        auto [it, fresh] = writers.emplace(r.offset, WriterInfo{});
        if (!fresh && it->second.tid != tid) it->second.multi = true;
        if (fresh) it->second.tid = tid;
        if (it->second.tid == tid) {
          it->second.value = r.value;
          it->second.size = r.size;
        }
      }
    }
  }
  region_bytes_ = (region_bytes_ + 31) & ~std::uint64_t(31);
  for (const auto& [off, w] : writers) {
    oracle_[off] = {w.value, !w.multi};
    if (w.multi) continue;
    // store size alongside value: reuse the pair's value slot; sizes are
    // re-derived at verify time from the oracle map built below.
  }
  // Rebuild with sizes (value packed with size in the high byte is fragile;
  // keep a parallel map via encoding: value in pair.first, size embedded in
  // the verify loop by re-walking writers).
  verify_sizes_.clear();
  for (const auto& [off, w] : writers) verify_sizes_[off] = w.size;
}

TracePlayer TracePlayer::parse(const std::string& text, unsigned nthreads) {
  std::vector<std::vector<TraceRecord>> per(nthreads);
  std::istringstream in(text);
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') continue;
    unsigned tid = unsigned(std::stoul(tok));
    CCNOC_ASSERT(tid < nthreads, "trace line " + std::to_string(lineno) +
                                     ": thread id out of range");
    std::string op;
    CCNOC_ASSERT(bool(ls >> op), "trace line " + std::to_string(lineno) + ": no op");
    TraceRecord r;
    if (op == "L" || op == "S") {
      std::string addr;
      unsigned size = 4;
      CCNOC_ASSERT(bool(ls >> addr >> size),
                   "trace line " + std::to_string(lineno) + ": bad access");
      r.kind = op == "L" ? TraceRecord::Kind::kLoad : TraceRecord::Kind::kStore;
      r.offset = sim::Addr(std::stoull(addr, nullptr, 16));
      r.size = std::uint8_t(size);
      if (op == "S") {
        std::uint64_t v = 0;
        CCNOC_ASSERT(bool(ls >> v),
                     "trace line " + std::to_string(lineno) + ": store without value");
        r.value = v;
      }
    } else if (op == "C") {
      std::uint64_t cycles = 0;
      CCNOC_ASSERT(bool(ls >> cycles),
                   "trace line " + std::to_string(lineno) + ": bad compute");
      r.kind = TraceRecord::Kind::kCompute;
      r.value = cycles;
    } else if (op == "B") {
      r.kind = TraceRecord::Kind::kBarrier;
    } else {
      CCNOC_ASSERT(false, "trace line " + std::to_string(lineno) + ": unknown op " + op);
    }
    per[tid].push_back(r);
  }
  return TracePlayer(std::move(per));
}

TracePlayer TracePlayer::synthetic(unsigned nthreads, unsigned ops_per_thread,
                                   unsigned region_words, double store_fraction,
                                   std::uint64_t seed) {
  std::vector<std::vector<TraceRecord>> per(nthreads);
  sim::Rng rng(seed);
  // Partition the region so each word has one writer (exact oracle), while
  // loads roam the whole region (real sharing traffic).
  for (unsigned tid = 0; tid < nthreads; ++tid) {
    for (unsigned i = 0; i < ops_per_thread; ++i) {
      TraceRecord r;
      if (rng.next_double() < store_fraction) {
        unsigned own = unsigned(rng.next_below(region_words / nthreads));
        r.kind = TraceRecord::Kind::kStore;
        r.offset = 4 * sim::Addr(tid + own * nthreads);
        r.value = (std::uint64_t(tid) << 32) | i;
      } else {
        r.kind = TraceRecord::Kind::kLoad;
        r.offset = 4 * rng.next_below(region_words);
      }
      per[tid].push_back(r);
      if (i % 64 == 63) {
        per[tid].push_back(TraceRecord{TraceRecord::Kind::kBarrier, 0, 4, 0});
      }
    }
    // Equalize barrier counts across threads.
    per[tid].push_back(TraceRecord{TraceRecord::Kind::kBarrier, 0, 4, 0});
  }
  return TracePlayer(std::move(per));
}

void TracePlayer::setup(os::Kernel& kernel, unsigned nthreads) {
  CCNOC_ASSERT(nthreads == traces_.size(), "trace thread count mismatch");
  region_ = kernel.layout().alloc_shared(region_bytes_ ? region_bytes_ : 32, 32);
  barrier_ = kernel.create_barrier(nthreads);
  code_ = kernel.layout().alloc_code(2048);
}

ThreadProgram TracePlayer::make_program(ThreadContext& ctx) {
  return [](ThreadContext& c, const TracePlayer* self, unsigned tid) -> ThreadProgram {
    c.set_code_region(self->code_, 2048);
    for (const TraceRecord& r : self->traces_[tid]) {
      switch (r.kind) {
        case TraceRecord::Kind::kLoad:
          co_yield ThreadOp::load(self->region_ + r.offset, r.size);
          break;
        case TraceRecord::Kind::kStore:
          co_yield ThreadOp::store(self->region_ + r.offset, r.value, r.size);
          break;
        case TraceRecord::Kind::kCompute:
          co_yield ThreadOp::compute(r.value);
          break;
        case TraceRecord::Kind::kBarrier:
          co_yield ThreadOp::barrier(self->barrier_);
          break;
      }
    }
  }(ctx, this, ctx.tid);
}

bool TracePlayer::verify(const mem::DirectMemoryIf& dm) const {
  for (const auto& [off, entry] : oracle_) {
    const auto& [value, single_writer] = entry;
    if (!single_writer) continue;  // racy word: any interleaving is legal
    std::uint8_t size = verify_sizes_.at(off);
    std::uint64_t got = 0;
    dm.read(region_ + off, &got, size);
    std::uint64_t want = value & (size == 8 ? ~0ull : ((1ull << (8 * size)) - 1));
    if (got != want) return false;
  }
  return true;
}

}  // namespace ccnoc::apps
