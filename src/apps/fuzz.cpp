#include "apps/fuzz.hpp"

#include "sim/rng.hpp"

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

namespace {

/// Per-thread stream seed: splitmix-style finalizer over (seed, tid) so
/// neighbouring seeds / tids do not produce correlated streams.
std::uint64_t thread_seed(std::uint64_t seed, unsigned tid) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (tid + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint32_t kDoneToken = 0x600DF00Du;

/// Is op index i a barrier (checked first) or a lock-section op?
bool is_barrier_op(const FuzzWorkload::Config& c, unsigned i) {
  return c.barrier_every != 0 && (i + 1) % c.barrier_every == 0;
}
bool is_lock_op(const FuzzWorkload::Config& c, unsigned i) {
  return !is_barrier_op(c, i) && c.lock_every != 0 && (i + 1) % c.lock_every == 0;
}

}  // namespace

void FuzzWorkload::setup(os::Kernel& kernel, unsigned nthreads) {
  CCNOC_ASSERT(cfg_.hot_words >= 2 && cfg_.hot_words % 2 == 0,
               "hot arena must fit aligned 8-byte accesses");
  CCNOC_ASSERT(cfg_.arena_words >= 2 && cfg_.arena_words % 2 == 0,
               "arena must fit aligned 8-byte accesses");
  nthreads_ = nthreads;

  hot_ = kernel.layout().alloc_shared(4 * std::uint64_t(cfg_.hot_words), 32);
  for (unsigned w = 0; w < cfg_.hot_words; ++w) {
    kernel.memory().write_u32(hot_ + 4 * w, 0x40400000u + w);
  }
  arena_ = kernel.layout().alloc_shared(4 * std::uint64_t(cfg_.arena_words), 32);
  for (unsigned w = 0; w < cfg_.arena_words; ++w) {
    kernel.memory().write_u32(arena_ + 4 * w, 0xA0E00000u + w);
  }
  counter_ = kernel.layout().alloc_shared(4, 4);
  kernel.memory().write_u32(counter_, 0);
  if (cfg_.lock_every != 0) lock_ = kernel.create_lock();
  if (cfg_.barrier_every != 0) barrier_ = kernel.create_barrier(nthreads);
  done_cells_.clear();
  for (unsigned t = 0; t < nthreads; ++t) {
    sim::Addr d = kernel.layout().alloc_shared(4, 4);
    kernel.memory().write_u32(d, 0);
    done_cells_.push_back(d);
  }
  code_ = kernel.layout().alloc_code(4096);
}

ThreadProgram FuzzWorkload::make_program(ThreadContext& ctx) {
  const Config cfg = cfg_;
  const sim::Addr hot = hot_;
  const sim::Addr arena = arena_;
  const sim::Addr counter = counter_;
  const sim::Addr lock = lock_;
  const sim::Addr bar = barrier_;
  const sim::Addr done = done_cells_[ctx.tid];
  const sim::Addr code = code_;

  return [](ThreadContext& c, Config cf, sim::Addr hot_a, sim::Addr arena_a,
            sim::Addr cnt, sim::Addr lk, sim::Addr br, sim::Addr dn,
            sim::Addr cd) -> ThreadProgram {
    c.set_code_region(cd, 4096);
    sim::Rng rng(thread_seed(cf.seed, c.tid));
    std::uint64_t checksum = 0;  // keeps load results live, like real code
    for (unsigned i = 0; i < cf.ops_per_thread; ++i) {
      if (is_barrier_op(cf, i)) {
        co_yield ThreadOp::barrier(br);
        continue;
      }
      if (is_lock_op(cf, i)) {
        co_yield ThreadOp::lock_acquire(lk);
        co_yield ThreadOp::load(cnt);
        co_yield ThreadOp::store(cnt, c.last_load_value + 1);
        co_yield ThreadOp::lock_release(lk);
        continue;
      }

      const double kind = rng.next_double();
      const bool atomic = kind < cf.atomic_fraction;
      const bool store = !atomic && kind < cf.atomic_fraction + cf.store_fraction;
      const bool in_hot = rng.next_double() < cf.hot_fraction;
      const sim::Addr base = in_hot ? hot_a : arena_a;
      const unsigned region = 4 * (in_hot ? cf.hot_words : cf.arena_words);
      // Atomics are word/double-word; plain accesses use every size. All
      // accesses are size-aligned, so none straddles a block boundary.
      const std::uint8_t size =
          atomic ? std::uint8_t(4u << rng.next_below(2))
                 : std::uint8_t(1u << rng.next_below(4));
      const sim::Addr a = base + rng.next_below(region / size) * size;
      const std::uint64_t v = rng.next_u64();

      if (atomic) {
        co_yield (rng.next_bool(0.5) ? ThreadOp::atomic_add(a, v, size)
                                     : ThreadOp::atomic_swap(a, v, size));
        checksum += c.last_load_value;  // atomics return the old value
      } else if (store) {
        co_yield ThreadOp::store(a, v, size);
      } else {
        co_yield ThreadOp::load(a, size);
        checksum += c.last_load_value;
      }
      if (cf.max_compute != 0 && rng.next_below(4) == 0) {
        co_yield ThreadOp::compute(1 + rng.next_below(unsigned(cf.max_compute)));
      }
    }
    (void)checksum;
    co_yield ThreadOp::store(dn, kDoneToken);
  }(ctx, cfg, hot, arena, counter, lock, bar, done, code);
}

unsigned FuzzWorkload::lock_increments_per_thread() const {
  unsigned n = 0;
  for (unsigned i = 0; i < cfg_.ops_per_thread; ++i) {
    if (is_lock_op(cfg_, i)) ++n;
  }
  return n;
}

bool FuzzWorkload::verify(const mem::DirectMemoryIf& dm) const {
  for (sim::Addr d : done_cells_) {
    if (dm.read_u32(d) != kDoneToken) return false;
  }
  return dm.read_u32(counter_) == nthreads_ * lock_increments_per_thread();
}

}  // namespace ccnoc::apps
