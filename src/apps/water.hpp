#pragma once

#include <vector>

#include "apps/workload.hpp"

/// \file water.hpp
/// Water-like workload (SPLASH-2 Water-nsquared): N-body molecular-dynamics
/// steps over M molecules. Each step:
///
///   1. force phase — the owner of the lower-indexed molecule computes each
///      (i, j) pair once, accumulating its own contribution locally and
///      adding the partner's through a lock-protected read-modify-write
///      (striped molecule locks), as Water's inter-molecular phase does;
///   2. barrier;
///   3. update phase — each owner integrates velocity/position of its
///      molecules from the accumulated force and clears the accumulator;
///   4. barrier.
///
/// Forces accumulate in *fixed point* (int64), so the result is independent
/// of accumulation order and `verify` can replay the run host-side and
/// compare positions bit-for-bit despite thread interleaving.

namespace ccnoc::apps {

class Water final : public Workload {
 public:
  struct Config {
    /// 0 = the paper's rule: 27 molecules for small platforms (≤16 CPUs),
    /// 64 for large ones, but never fewer than the thread count.
    unsigned molecules = 0;
    unsigned steps = 2;
    sim::Cycle force_compute = 12;  ///< cycles per pair interaction
    unsigned num_locks = 16;        ///< striped molecule locks
    std::uint64_t code_bytes = 3072;
  };

  explicit Water(Config cfg) : cfg_(cfg) {}
  Water();

  [[nodiscard]] std::string name() const override { return "water"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

  [[nodiscard]] unsigned molecule_count() const { return mols_; }

  /// Fixed-point scale for force accumulation.
  static constexpr double kScale = double(1 << 20);
  static constexpr double kDt = 1.0 / 64.0;

  /// Pairwise force kernel, shared with the golden replay: soft inverse-
  /// square attraction along each axis, returned in fixed point.
  static void pair_force(const double* pi, const double* pj, std::int64_t* out);

 private:
  [[nodiscard]] sim::Addr pos_addr(unsigned m, unsigned axis) const {
    return pos_[m] + 8 * axis;
  }
  [[nodiscard]] sim::Addr vel_addr(unsigned m, unsigned axis) const {
    return pos_[m] + 24 + 8 * axis;
  }
  [[nodiscard]] sim::Addr force_addr(unsigned m, unsigned axis) const {
    return force_[m] + 8 * axis;
  }
  [[nodiscard]] static double initial_pos(unsigned m, unsigned axis);

  Config cfg_;
  unsigned nthreads_ = 0;
  unsigned mols_ = 0;
  std::vector<sim::Addr> pos_;    ///< per molecule: pos xyz + vel xyz (48 B)
  std::vector<sim::Addr> force_;  ///< per molecule: 3 × int64 accumulators
  std::vector<sim::Addr> locks_;
  sim::Addr barrier_ = 0;
  sim::Addr code_ = 0;
};

// Out-of-class so the nested Config's default member initializers are
// complete (GCC 12 rejects `Config cfg = {}` default arguments in-class).
inline Water::Water() : Water(Config{}) {}

}  // namespace ccnoc::apps
