#pragma once

#include <vector>

#include "apps/workload.hpp"

/// \file micro.hpp
/// Directed microworkloads used by the integration tests, the Table-1 hop
/// study and the ablations. Each stresses one coherence behaviour and has
/// an exact functional oracle.

namespace ccnoc::apps {

/// Every thread increments one lock-protected shared counter `increments`
/// times. Oracle: counter == nthreads * increments. Stresses lock
/// migration, upgrades (MESI) and invalidation storms (WTI).
class HotCounter final : public Workload {
 public:
  explicit HotCounter(unsigned increments = 200) : increments_(increments) {}

  [[nodiscard]] std::string name() const override { return "hot-counter"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

 private:
  unsigned increments_;
  unsigned nthreads_ = 0;
  sim::Addr counter_ = 0;
  sim::Addr lock_ = 0;
  sim::Addr code_ = 0;
};

/// Pairs of threads hand values through a flag-protected mailbox:
/// the producer writes `rounds` payload words then sets the flag; the
/// consumer spins on the flag, checks the payload, records mismatches, and
/// clears the flag. Oracle: zero mismatches — a direct sequential-
/// consistency / write-visibility check.
class ProducerConsumer final : public Workload {
 public:
  explicit ProducerConsumer(unsigned rounds = 50, unsigned payload_words = 6)
      : rounds_(rounds), payload_words_(payload_words) {}

  [[nodiscard]] std::string name() const override { return "producer-consumer"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

 private:
  unsigned rounds_;
  unsigned payload_words_;
  unsigned pairs_ = 0;
  std::vector<sim::Addr> mailboxes_;   // per pair: [flag][payload...]
  std::vector<sim::Addr> error_cells_; // per pair: consumer-recorded mismatches
  sim::Addr code_ = 0;
};

/// Threads read and write a shared array with uniformly random indices,
/// mixed with thread-local accesses and compute, at a configurable
/// store fraction. Each thread also accumulates a checksum of its loads
/// into its local region. No sharing-order oracle (data races are part of
/// the workload); verify only checks that every thread recorded its
/// completion token. Used for traffic/ablation sweeps.
class UniformRandom final : public Workload {
 public:
  struct Config {
    unsigned ops_per_thread = 2000;
    unsigned shared_words = 4096;
    double store_fraction = 0.3;
    double local_fraction = 0.4;  ///< fraction of accesses going to local data
    std::uint64_t seed = 7;
    sim::Cycle compute_between = 4;
  };

  explicit UniformRandom(Config cfg) : cfg_(cfg) {}
  UniformRandom();

  [[nodiscard]] std::string name() const override { return "uniform-random"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

 private:
  Config cfg_;
  unsigned nthreads_ = 0;
  sim::Addr shared_ = 0;
  std::vector<sim::Addr> done_cells_;
  sim::Addr code_ = 0;
};

/// Two threads bounce one block: A writes it, B reads+writes it, in strict
/// alternation via two flags. Oracle: final generation counter. Maximal
/// coherence ping-pong; the Table-1 hop-count study uses it.
class PingPong final : public Workload {
 public:
  explicit PingPong(unsigned rounds = 100) : rounds_(rounds) {}

  [[nodiscard]] std::string name() const override { return "ping-pong"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

 private:
  unsigned rounds_;
  sim::Addr data_ = 0;   // the bounced word
  sim::Addr flags_ = 0;  // [turn] word: 0 = A's turn, 1 = B's turn
  sim::Addr code_ = 0;
};

// Out-of-class so the nested Config's default member initializers are
// complete (GCC 12 rejects `Config cfg = {}` default arguments in-class).
inline UniformRandom::UniformRandom() : UniformRandom(Config{}) {}

}  // namespace ccnoc::apps
