#pragma once

#include <vector>

#include "apps/workload.hpp"

/// \file lu.hpp
/// LU-like workload (SPLASH-2 LU, contiguous blocks): blocked dense LU
/// factorization without pivoting. The matrix is partitioned into B×B
/// blocks, each a separate shared allocation (so architecture 2 spreads
/// them across banks); blocks are owned by threads in a 2-D scatter. Every
/// outer step runs three barrier-separated phases — diagonal factorization,
/// perimeter solves, interior updates — whose writes are disjoint per
/// phase, so the result is bit-identical for every interleaving and
/// `verify` replays the factorization host-side.

namespace ccnoc::apps {

class Lu final : public Workload {
 public:
  struct Config {
    unsigned matrix_dim = 16;  ///< N: the matrix is N×N doubles
    unsigned block_dim = 4;    ///< B: blocks are B×B
    sim::Cycle compute_per_flop = 4;
    std::uint64_t code_bytes = 3072;
  };

  explicit Lu(Config cfg) : cfg_(cfg) {
    CCNOC_ASSERT(cfg_.matrix_dim % cfg_.block_dim == 0,
                 "matrix dimension must be a multiple of the block dimension");
  }
  Lu();

  [[nodiscard]] std::string name() const override { return "lu"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

  [[nodiscard]] unsigned num_blocks() const { return nb_; }

 private:
  [[nodiscard]] static double initial_value(unsigned r, unsigned c, unsigned n);
  [[nodiscard]] sim::Addr elem(unsigned bi, unsigned bj, unsigned r, unsigned c) const {
    return blocks_[std::size_t(bi) * nb_ + bj] + 8 * (sim::Addr(r) * cfg_.block_dim + c);
  }
  [[nodiscard]] unsigned owner(unsigned bi, unsigned bj) const {
    return (bi + bj * nb_) % nthreads_;
  }

  Config cfg_;
  unsigned nthreads_ = 0;
  unsigned nb_ = 0;  ///< blocks per dimension
  std::vector<sim::Addr> blocks_;
  sim::Addr barrier_ = 0;
  sim::Addr code_ = 0;
};

inline Lu::Lu() : Lu(Config{}) {}

}  // namespace ccnoc::apps
