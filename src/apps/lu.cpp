#include "apps/lu.hpp"

#include <bit>
#include <cmath>

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

double Lu::initial_value(unsigned r, unsigned c, unsigned n) {
  // Diagonally dominant (no pivoting needed), deterministic.
  if (r == c) return double(n) + 2.0;
  return 1.0 / (1.0 + double((r * 31 + c * 17) % 13));
}

void Lu::setup(os::Kernel& kernel, unsigned nthreads) {
  nthreads_ = nthreads;
  nb_ = cfg_.matrix_dim / cfg_.block_dim;
  const unsigned B = cfg_.block_dim;
  blocks_.clear();
  for (unsigned bi = 0; bi < nb_; ++bi) {
    for (unsigned bj = 0; bj < nb_; ++bj) {
      blocks_.push_back(kernel.layout().alloc_shared(8 * std::uint64_t(B) * B, 32));
    }
  }
  for (unsigned bi = 0; bi < nb_; ++bi) {
    for (unsigned bj = 0; bj < nb_; ++bj) {
      for (unsigned r = 0; r < B; ++r) {
        for (unsigned c = 0; c < B; ++c) {
          kernel.memory().write_f64(elem(bi, bj, r, c),
                                    initial_value(bi * B + r, bj * B + c,
                                                  cfg_.matrix_dim));
        }
      }
    }
  }
  barrier_ = kernel.create_barrier(nthreads);
  code_ = kernel.layout().alloc_code(cfg_.code_bytes);
}

ThreadProgram Lu::make_program(ThreadContext& ctx) {
  return [](ThreadContext& c, const Lu* self, unsigned tid) -> ThreadProgram {
    const Lu& lu = *self;
    const unsigned B = lu.cfg_.block_dim;
    const sim::Cycle flop = lu.cfg_.compute_per_flop;
    c.set_code_region(lu.code_, lu.cfg_.code_bytes);

    // Element helpers cannot co_yield from a lambda; the access pattern is
    // written out long-hand: every matrix element travels through the
    // simulated hierarchy.
    for (unsigned k = 0; k < lu.nb_; ++k) {
      // ---- phase 1: factor the diagonal block A[k][k] ----
      if (lu.owner(k, k) == tid) {
        for (unsigned p = 0; p < B; ++p) {
          co_yield ThreadOp::load(lu.elem(k, k, p, p), 8);
          const double d = std::bit_cast<double>(c.last_load_value);
          for (unsigned r = p + 1; r < B; ++r) {
            co_yield ThreadOp::load(lu.elem(k, k, r, p), 8);
            const double l = std::bit_cast<double>(c.last_load_value) / d;
            co_yield ThreadOp::compute(flop);
            co_yield ThreadOp::store(lu.elem(k, k, r, p),
                                     std::bit_cast<std::uint64_t>(l), 8);
            for (unsigned cc = p + 1; cc < B; ++cc) {
              co_yield ThreadOp::load(lu.elem(k, k, p, cc), 8);
              const double u = std::bit_cast<double>(c.last_load_value);
              co_yield ThreadOp::load(lu.elem(k, k, r, cc), 8);
              const double v = std::bit_cast<double>(c.last_load_value) - l * u;
              co_yield ThreadOp::compute(flop);
              co_yield ThreadOp::store(lu.elem(k, k, r, cc),
                                       std::bit_cast<std::uint64_t>(v), 8);
            }
          }
        }
      }
      co_yield ThreadOp::barrier(lu.barrier_);

      // ---- phase 2: perimeter blocks ----
      // Row blocks A[k][j], j > k: solve L_kk · X = A[k][j].
      for (unsigned j = k + 1; j < lu.nb_; ++j) {
        if (lu.owner(k, j) != tid) continue;
        for (unsigned p = 0; p < B; ++p) {
          for (unsigned r = p + 1; r < B; ++r) {
            co_yield ThreadOp::load(lu.elem(k, k, r, p), 8);
            const double l = std::bit_cast<double>(c.last_load_value);
            for (unsigned cc = 0; cc < B; ++cc) {
              co_yield ThreadOp::load(lu.elem(k, j, p, cc), 8);
              const double x = std::bit_cast<double>(c.last_load_value);
              co_yield ThreadOp::load(lu.elem(k, j, r, cc), 8);
              const double v = std::bit_cast<double>(c.last_load_value) - l * x;
              co_yield ThreadOp::compute(flop);
              co_yield ThreadOp::store(lu.elem(k, j, r, cc),
                                       std::bit_cast<std::uint64_t>(v), 8);
            }
          }
        }
      }
      // Column blocks A[i][k], i > k: solve X · U_kk = A[i][k].
      for (unsigned i = k + 1; i < lu.nb_; ++i) {
        if (lu.owner(i, k) != tid) continue;
        for (unsigned p = 0; p < B; ++p) {
          co_yield ThreadOp::load(lu.elem(k, k, p, p), 8);
          const double d = std::bit_cast<double>(c.last_load_value);
          for (unsigned r = 0; r < B; ++r) {
            co_yield ThreadOp::load(lu.elem(i, k, r, p), 8);
            const double x = std::bit_cast<double>(c.last_load_value) / d;
            co_yield ThreadOp::compute(flop);
            co_yield ThreadOp::store(lu.elem(i, k, r, p),
                                     std::bit_cast<std::uint64_t>(x), 8);
            for (unsigned cc = p + 1; cc < B; ++cc) {
              co_yield ThreadOp::load(lu.elem(k, k, p, cc), 8);
              const double u = std::bit_cast<double>(c.last_load_value);
              co_yield ThreadOp::load(lu.elem(i, k, r, cc), 8);
              const double v = std::bit_cast<double>(c.last_load_value) - x * u;
              co_yield ThreadOp::compute(flop);
              co_yield ThreadOp::store(lu.elem(i, k, r, cc),
                                       std::bit_cast<std::uint64_t>(v), 8);
            }
          }
        }
      }
      co_yield ThreadOp::barrier(lu.barrier_);

      // ---- phase 3: interior updates A[i][j] -= A[i][k] · A[k][j] ----
      for (unsigned i = k + 1; i < lu.nb_; ++i) {
        for (unsigned j = k + 1; j < lu.nb_; ++j) {
          if (lu.owner(i, j) != tid) continue;
          for (unsigned r = 0; r < B; ++r) {
            for (unsigned cc = 0; cc < B; ++cc) {
              co_yield ThreadOp::load(lu.elem(i, j, r, cc), 8);
              double acc = std::bit_cast<double>(c.last_load_value);
              for (unsigned p = 0; p < B; ++p) {
                co_yield ThreadOp::load(lu.elem(i, k, r, p), 8);
                const double l = std::bit_cast<double>(c.last_load_value);
                co_yield ThreadOp::load(lu.elem(k, j, p, cc), 8);
                const double u = std::bit_cast<double>(c.last_load_value);
                acc -= l * u;
                co_yield ThreadOp::compute(flop);
              }
              co_yield ThreadOp::store(lu.elem(i, j, r, cc),
                                       std::bit_cast<std::uint64_t>(acc), 8);
            }
          }
        }
      }
      co_yield ThreadOp::barrier(lu.barrier_);
    }
  }(ctx, this, ctx.tid);
}

bool Lu::verify(const mem::DirectMemoryIf& dm) const {
  const unsigned n = cfg_.matrix_dim;
  const unsigned B = cfg_.block_dim;
  std::vector<double> a(std::size_t(n) * n);
  for (unsigned r = 0; r < n; ++r) {
    for (unsigned c = 0; c < n; ++c) a[std::size_t(r) * n + c] = initial_value(r, c, n);
  }
  auto at = [&](unsigned r, unsigned c) -> double& { return a[std::size_t(r) * n + c]; };

  // Golden replay: the same blocked algorithm, sequential. Within each
  // phase writes are disjoint and reads come from the previous phase, so
  // the parallel run must match bit for bit.
  for (unsigned k = 0; k < nb_; ++k) {
    const unsigned k0 = k * B;
    for (unsigned p = 0; p < B; ++p) {
      const double d = at(k0 + p, k0 + p);
      for (unsigned r = p + 1; r < B; ++r) {
        const double l = at(k0 + r, k0 + p) / d;
        at(k0 + r, k0 + p) = l;
        for (unsigned cc = p + 1; cc < B; ++cc) {
          at(k0 + r, k0 + cc) = at(k0 + r, k0 + cc) - l * at(k0 + p, k0 + cc);
        }
      }
    }
    for (unsigned j = k + 1; j < nb_; ++j) {
      const unsigned j0 = j * B;
      for (unsigned p = 0; p < B; ++p) {
        for (unsigned r = p + 1; r < B; ++r) {
          const double l = at(k0 + r, k0 + p);
          for (unsigned cc = 0; cc < B; ++cc) {
            at(k0 + r, j0 + cc) = at(k0 + r, j0 + cc) - l * at(k0 + p, j0 + cc);
          }
        }
      }
    }
    for (unsigned i = k + 1; i < nb_; ++i) {
      const unsigned i0 = i * B;
      for (unsigned p = 0; p < B; ++p) {
        const double d = at(k0 + p, k0 + p);
        for (unsigned r = 0; r < B; ++r) {
          const double x = at(i0 + r, k0 + p) / d;
          at(i0 + r, k0 + p) = x;
          for (unsigned cc = p + 1; cc < B; ++cc) {
            at(i0 + r, k0 + cc) = at(i0 + r, k0 + cc) - x * at(k0 + p, k0 + cc);
          }
        }
      }
    }
    for (unsigned i = k + 1; i < nb_; ++i) {
      for (unsigned j = k + 1; j < nb_; ++j) {
        const unsigned i0 = i * B, j0 = j * B;
        for (unsigned r = 0; r < B; ++r) {
          for (unsigned cc = 0; cc < B; ++cc) {
            double acc = at(i0 + r, j0 + cc);
            for (unsigned p = 0; p < B; ++p) {
              acc -= at(i0 + r, k0 + p) * at(k0 + p, j0 + cc);
            }
            at(i0 + r, j0 + cc) = acc;
          }
        }
      }
    }
  }

  for (unsigned bi = 0; bi < nb_; ++bi) {
    for (unsigned bj = 0; bj < nb_; ++bj) {
      for (unsigned r = 0; r < B; ++r) {
        for (unsigned c = 0; c < B; ++c) {
          if (dm.read_f64(elem(bi, bj, r, c)) != at(bi * B + r, bj * B + c)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

}  // namespace ccnoc::apps
