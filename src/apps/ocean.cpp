#include "apps/ocean.hpp"

#include <bit>
#include <cmath>

namespace ccnoc::apps {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

double Ocean::initial_value(unsigned r, unsigned c, unsigned dim) {
  // Smooth deterministic field with a hot boundary, reminiscent of Ocean's
  // stream function: boundary rows/columns are fixed, interior starts flat.
  if (r == 0 || c == 0 || r == dim - 1 || c == dim - 1) {
    return 4.0 + std::sin(0.37 * double(r)) + std::cos(0.23 * double(c));
  }
  return 1.0;
}

void Ocean::setup(os::Kernel& kernel, unsigned nthreads) {
  nthreads_ = nthreads;
  dim_ = cfg_.rows_per_thread * nthreads + 2;
  rows_.clear();
  rows_.reserve(dim_);
  for (unsigned r = 0; r < dim_; ++r) {
    rows_.push_back(kernel.layout().alloc_shared(8 * std::uint64_t(dim_), 32));
  }
  for (unsigned r = 0; r < dim_; ++r) {
    for (unsigned c = 0; c < dim_; ++c) {
      kernel.memory().write_f64(cell_addr(r, c), initial_value(r, c, dim_));
    }
  }
  barrier_ = kernel.create_barrier(nthreads);
  code_ = kernel.layout().alloc_code(cfg_.code_bytes);
}

ThreadProgram Ocean::make_program(ThreadContext& ctx) {
  struct Params {
    const Ocean* self;
    unsigned first_row;
    unsigned last_row;  // exclusive
  };
  Params p{this, 1 + ctx.tid * cfg_.rows_per_thread,
           1 + (ctx.tid + 1) * cfg_.rows_per_thread};

  return [](ThreadContext& c, Params prm) -> ThreadProgram {
    const Ocean& oc = *prm.self;
    c.set_code_region(oc.code_, oc.cfg_.code_bytes);
    for (unsigned iter = 0; iter < oc.cfg_.iterations; ++iter) {
      for (unsigned color = 0; color < 2; ++color) {
        double residual = 0.0;
        for (unsigned r = prm.first_row; r < prm.last_row; ++r) {
          for (unsigned col = 1; col < oc.dim_ - 1; ++col) {
            if (((r + col) & 1u) != color) continue;
            co_yield ThreadOp::load(oc.cell_addr(r - 1, col), 8);
            const double up = std::bit_cast<double>(c.last_load_value);
            co_yield ThreadOp::load(oc.cell_addr(r + 1, col), 8);
            const double down = std::bit_cast<double>(c.last_load_value);
            co_yield ThreadOp::load(oc.cell_addr(r, col - 1), 8);
            const double left = std::bit_cast<double>(c.last_load_value);
            co_yield ThreadOp::load(oc.cell_addr(r, col + 1), 8);
            const double right = std::bit_cast<double>(c.last_load_value);
            co_yield ThreadOp::load(oc.cell_addr(r, col), 8);
            const double old = std::bit_cast<double>(c.last_load_value);

            const double next = 0.25 * (up + down + left + right);
            residual += std::fabs(next - old);
            co_yield ThreadOp::compute(oc.cfg_.compute_per_cell);
            co_yield ThreadOp::store(oc.cell_addr(r, col),
                                     std::bit_cast<std::uint64_t>(next), 8);
          }
          // Per-row residual bookkeeping in the thread-local region
          // (stack traffic, as in the real benchmark).
          co_yield ThreadOp::store(
              c.local_base + 8 * ((r - prm.first_row) % 64),
              std::bit_cast<std::uint64_t>(residual), 8);
        }
        co_yield ThreadOp::barrier(oc.barrier_);
      }
    }
  }(ctx, p);
}

bool Ocean::verify(const mem::DirectMemoryIf& dm) const {
  // Golden host-side replay: red-black sweeps are interleaving-independent,
  // so the sequential result must match the simulated memory bit for bit.
  std::vector<double> g(std::size_t(dim_) * dim_);
  for (unsigned r = 0; r < dim_; ++r) {
    for (unsigned c = 0; c < dim_; ++c) {
      g[std::size_t(r) * dim_ + c] = initial_value(r, c, dim_);
    }
  }
  auto at = [&](unsigned r, unsigned c) -> double& {
    return g[std::size_t(r) * dim_ + c];
  };
  for (unsigned iter = 0; iter < cfg_.iterations; ++iter) {
    for (unsigned color = 0; color < 2; ++color) {
      for (unsigned r = 1; r < dim_ - 1; ++r) {
        for (unsigned c = 1; c < dim_ - 1; ++c) {
          if (((r + c) & 1u) != color) continue;
          at(r, c) = 0.25 * (at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1));
        }
      }
    }
  }
  for (unsigned r = 0; r < dim_; ++r) {
    for (unsigned c = 0; c < dim_; ++c) {
      if (dm.read_f64(cell_addr(r, c)) != at(r, c)) return false;
    }
  }
  return true;
}

}  // namespace ccnoc::apps
