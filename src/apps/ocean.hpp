#pragma once

#include <vector>

#include "apps/workload.hpp"

/// \file ocean.hpp
/// Ocean-like workload (SPLASH-2 Ocean, contiguous partitions): red-black
/// Gauss–Seidel relaxation of a square grid. Rows are partitioned
/// contiguously across threads; a sense-reversing barrier separates the red
/// and black half-sweeps of every iteration, and each thread writes a
/// per-row residual into its thread-local region (stack traffic). Each grid
/// row is a separate shared allocation, so architecture 2 spreads rows over
/// the shared banks as the paper's layout does.
///
/// Red cells read only black neighbours and vice versa, so the result is
/// bit-identical for every legal interleaving — `verify` replays the sweeps
/// host-side and compares all cells bitwise: the end-to-end coherence
/// oracle for the big Figure 4/5/6 runs.

namespace ccnoc::apps {

class Ocean final : public Workload {
 public:
  struct Config {
    unsigned rows_per_thread = 4;  ///< grid dim = rows_per_thread * T + 2
    unsigned iterations = 3;       ///< full red+black sweeps
    sim::Cycle compute_per_cell = 8;
    std::uint64_t code_bytes = 2048;
  };

  explicit Ocean(Config cfg) : cfg_(cfg) {}
  Ocean();

  [[nodiscard]] std::string name() const override { return "ocean"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

  [[nodiscard]] unsigned dim() const { return dim_; }

 private:
  [[nodiscard]] sim::Addr cell_addr(unsigned r, unsigned c) const {
    return rows_[r] + 8 * sim::Addr(c);
  }
  [[nodiscard]] static double initial_value(unsigned r, unsigned c, unsigned dim);

  Config cfg_;
  unsigned nthreads_ = 0;
  unsigned dim_ = 0;
  std::vector<sim::Addr> rows_;
  sim::Addr barrier_ = 0;
  sim::Addr code_ = 0;
};

// Out-of-class so the nested Config's default member initializers are
// complete (GCC 12 rejects `Config cfg = {}` default arguments in-class).
inline Ocean::Ocean() : Ocean(Config{}) {}

}  // namespace ccnoc::apps
