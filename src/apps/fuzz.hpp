#pragma once

#include <vector>

#include "apps/workload.hpp"

/// \file fuzz.hpp
/// Seeded random coherence stress workload for the protocol fuzzer
/// (core/fuzz.hpp). Unlike UniformRandom, which models application traffic,
/// FuzzWorkload is engineered to maximize protocol-level race windows:
///
///  - a tiny "hot" arena a few blocks wide, so many CPUs false-share the
///    same lines and invalidation rounds constantly overlap;
///  - an "arena" region larger than one cache, so direct-mapped evictions
///    interleave with in-flight invalidations (eviction storms);
///  - mixed access sizes (1/2/4/8 bytes, size-aligned) against the same
///    blocks, exercising partial-word merging in write buffers and banks;
///  - fetch-and-add / swap atomics racing plain stores to the same words;
///  - optional lock-protected critical sections and global barriers at
///    fixed op indices, forcing drains and lock migration mid-storm.
///
/// The op stream of every thread is a pure function of (Config, tid):
/// replaying a seed reproduces the exact same program, which is what makes
/// fuzzer failures minimizable. Data-race outcomes carry no functional
/// oracle — correctness is judged by the coherence checker riding along
/// (check/checker.hpp) — but the lock-protected counter and the per-thread
/// completion tokens still give `verify()` real teeth.

namespace ccnoc::apps {

class FuzzWorkload final : public Workload {
 public:
  struct Config {
    std::uint64_t seed = 1;
    unsigned ops_per_thread = 400;
    /// Hot false-sharing arena, in 4-byte words (16 words = two blocks).
    unsigned hot_words = 16;
    /// Eviction-storm arena, in words; 2048 words = 8 KB > the 4 KB cache.
    unsigned arena_words = 2048;
    double store_fraction = 0.35;
    double atomic_fraction = 0.05;
    /// Probability an access targets the hot arena rather than the big one.
    double hot_fraction = 0.5;
    /// Every lock_every-th op becomes a lock-protected counter increment
    /// (0 disables locking).
    unsigned lock_every = 64;
    /// Every barrier_every-th op becomes a global barrier (0 disables).
    /// All threads run the same op count, so barriers always pair up.
    unsigned barrier_every = 128;
    /// Upper bound for the occasional compute op between accesses.
    sim::Cycle max_compute = 4;
  };

  explicit FuzzWorkload(Config cfg) : cfg_(cfg) {}
  FuzzWorkload();

  [[nodiscard]] std::string name() const override { return "fuzz"; }
  void setup(os::Kernel& kernel, unsigned nthreads) override;
  cpu::ThreadProgram make_program(cpu::ThreadContext& ctx) override;
  [[nodiscard]] bool verify(const mem::DirectMemoryIf& dm) const override;

  [[nodiscard]] const Config& config() const { return cfg_; }
  /// Lock-protected increments each thread performs (index arithmetic
  /// only — no RNG involved), used by verify().
  [[nodiscard]] unsigned lock_increments_per_thread() const;

 private:
  Config cfg_;
  unsigned nthreads_ = 0;
  sim::Addr hot_ = 0;
  sim::Addr arena_ = 0;
  sim::Addr counter_ = 0;  ///< lock-protected; oracle: nthreads * increments
  sim::Addr lock_ = 0;
  sim::Addr barrier_ = 0;
  std::vector<sim::Addr> done_cells_;
  sim::Addr code_ = 0;
};

inline FuzzWorkload::FuzzWorkload() : FuzzWorkload(Config{}) {}

}  // namespace ccnoc::apps
