#pragma once

#include <deque>
#include <optional>

#include "cache/controller.hpp"

/// \file wti_controller.hpp
/// Write-through invalidate data cache (paper §4.1, Figure 1 left): lines
/// are Valid or Invalid and always clean. Stores go to the memory bank
/// through an 8-word write buffer and are non-blocking until the buffer
/// fills; the bank's directory invalidates all foreign copies before the
/// write acknowledgement. Store hits also update the local copy. Loads that
/// miss drain the write buffer first, preserving sequential consistency.

namespace ccnoc::cache {

class WtiController final : public CacheController {
 public:
  WtiController(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
                sim::NodeId node, std::uint8_t port, CacheConfig cfg, std::string name);

  AccessResult access(const MemAccess& a, std::uint64_t* hit_value,
                      CompleteFn on_complete) override;
  void on_packet(const noc::Packet& pkt) override;
  AccessResult drain(CompleteFn on_drained) override;

  [[nodiscard]] bool idle() const override {
    return pending_ == Pending::kNone && wbuf_.empty() && !drain_in_flight_;
  }

  [[nodiscard]] std::size_t write_buffer_occupancy() const { return wbuf_.size(); }

  /// Visit each buffered (not yet acknowledged) store as (addr, size,
  /// value), oldest first. The invariant walker exempts these bytes from
  /// its cache-vs-memory data comparison: a store hit patched the local
  /// line immediately while the bank copy updates at the write-through.
  template <typename Fn>
  void for_each_buffered_store(Fn&& fn) const {
    for (const auto& e : wbuf_) fn(e.addr, unsigned(e.size), e.value);
  }

 private:
  enum class Pending {
    kNone,
    kLoadDrain,     ///< load miss waiting for the write buffer to empty
    kLoadResponse,  ///< load miss waiting for the block
    kStoreBuffer,   ///< store waiting for a write-buffer slot
    kSwapDrain,     ///< atomic swap waiting for the write buffer to empty
    kSwapResponse,  ///< atomic swap in flight to the bank
    kDrainWait,     ///< explicit drain (context-switch barrier)
  };

  struct BufEntry {
    sim::Addr addr = 0;
    std::uint8_t size = 0;
    std::uint64_t value = 0;
  };

  void perform_store(const MemAccess& a);
  void start_drain();
  void issue_read();
  void issue_swap();

  void handle_read_response(const noc::Packet& pkt);
  void handle_write_ack(const noc::Packet& pkt);
  void handle_swap_response(const noc::Packet& pkt);
  void handle_invalidate(const noc::Packet& pkt);
  void handle_update(const noc::Packet& pkt);

  std::deque<BufEntry> wbuf_;
  bool drain_in_flight_ = false;

  Pending pending_ = Pending::kNone;
  MemAccess pending_access_{};
  CompleteFn pending_cb_;

  // Direct-ack mode (paper §4.2 optimization): the in-flight write-through
  // completes when the memory response AND all sharers' direct acks have
  // arrived; the bank's block lock is then released with a TxnDone.
  bool have_write_ack_ = false;
  unsigned direct_acks_needed_ = 0;
  unsigned direct_acks_got_ = 0;
  std::uint8_t saved_ack_hops_ = 0;
  void maybe_finish_direct_write();

  // Tracer transaction ids: the pending CPU access (load miss / atomic) and
  // the in-flight write-through drain. Spans open when the access starts
  // waiting, so drain/buffer waits are inside the measured latency.
  std::uint64_t pending_txn_ = 0;
  std::uint64_t drain_txn_ = 0;

  /// Typed stat handles, resolved once at construction (see CacheController).
  struct Stats {
    sim::Counter* load_hits;
    sim::Counter* load_misses;
    sim::Counter* load_drain_waits;
    sim::Counter* atomic_swaps;
    sim::Counter* wbuf_full_stalls;
    sim::Counter* store_hits;
    sim::Counter* store_misses;
    sim::Counter* direct_ack_writes;
    sim::Counter* explicit_drains;
    sim::Counter* updates;
    sim::Counter* invalidations;
    sim::Sample* wbuf_occupancy;
    sim::Histogram* hops_read_miss;
    sim::Histogram* hops_write_through;
    sim::Histogram* hops_atomic_swap;
  };
  Stats st_;
};

}  // namespace ccnoc::cache
