#pragma once

#include "mem/protocol.hpp"
#include "sim/types.hpp"

/// \file config.hpp
/// Cache geometry and policy knobs. Defaults mirror the paper's Table 2:
/// 4 KB direct-mapped caches with 32-byte blocks and an 8-word write buffer.

namespace ccnoc::cache {

struct CacheConfig {
  /// Deliberate protocol bug, injectable for checker validation (see
  /// check/checker.hpp): the affected controller behaves normally except
  /// for the injected fault. One-shot per controller.
  enum class FaultKind : std::uint8_t {
    kNone,
    /// Acknowledge an incoming invalidation WITHOUT invalidating the local
    /// copy — the classic lost-invalidation bug. The stale copy later
    /// serves a hit the oracle can prove impossible, and the invariant
    /// walker sees a valid copy whose presence bit is clear.
    kSkipInvalidate,
  };

  unsigned size_bytes = 4096;
  unsigned block_bytes = 32;
  unsigned ways = 1;  ///< 1 = direct-mapped (the paper's configuration)

  /// Which declarative transition table (proto/tables.hpp) governs this
  /// controller. CacheNode stamps the platform protocol in; the default
  /// covers directly-constructed WtiControllers in unit tests.
  mem::Protocol protocol = mem::Protocol::kWti;

  FaultKind fault = FaultKind::kNone;
  /// Invalidations handled correctly before the fault fires (per controller).
  unsigned fault_after = 0;

  /// WTI only: write-buffer capacity in entries (one buffered store each;
  /// the paper's buffer is 8 words / 32 bytes).
  unsigned write_buffer_entries = 8;

  /// WB-MESI only: eviction (write-back) buffer entries held until the
  /// bank acknowledges.
  unsigned writeback_buffer_entries = 4;

  /// WTI only: drain the write buffer before servicing a load miss. Keeps
  /// the platform sequentially consistent (DESIGN.md §5); switchable for
  /// the relaxed-ordering ablation.
  bool drain_on_load_miss = true;

  /// True when this L1 fronts a banked shared L2 (hierarchy_levels=2): the
  /// controller then resolves transitions that only exist in the two-level
  /// extension tables (a WTU L1 acknowledging a back-invalidation) through
  /// proto::l2_table_for(). Flat platforms leave this false and are
  /// bit-identical to before.
  bool hierarchy = false;

  [[nodiscard]] unsigned num_lines() const { return size_bytes / block_bytes; }
  [[nodiscard]] unsigned num_sets() const { return num_lines() / ways; }
};

}  // namespace ccnoc::cache
