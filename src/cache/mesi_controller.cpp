#include "cache/mesi_controller.hpp"

#include <cstring>

namespace ccnoc::cache {

using noc::Grant;
using noc::Message;
using noc::MsgType;
using proto::CacheEvent;

namespace {
/// This engine implements the write-back MESI FSM; bind it to that
/// transition table regardless of the tag the caller left in the config.
CacheConfig mesi_cfg(CacheConfig cfg) {
  cfg.protocol = mem::Protocol::kWbMesi;
  return cfg;
}
}  // namespace

MesiController::MesiController(sim::Simulator& sim, noc::Network& net,
                               const mem::AddressMap& map, sim::NodeId node,
                               std::uint8_t port, CacheConfig cfg, std::string name)
    : CacheController(sim, net, map, node, port, mesi_cfg(cfg), std::move(name)) {
  st_.load_hits = stat("load_hits");
  st_.load_misses = stat("load_misses");
  st_.silent_e_to_m = stat("silent_e_to_m");
  st_.store_hits_em = stat("store_hits_em");
  st_.store_hits_s = stat("store_hits_s");
  st_.store_misses = stat("store_misses");
  st_.wb_buffer_stalls = stat("wb_buffer_stalls");
  st_.writebacks = stat("writebacks");
  st_.upgrade_data_refills = stat("upgrade_data_refills");
  st_.direct_ack_upgrades = stat("direct_ack_upgrades");
  st_.invalidations = stat("invalidations");
  st_.fetches = stat("fetches");
  st_.fetch_invs = stat("fetch_invs");
  st_.fetch_misses = stat("fetch_misses");
  st_.hops_read_miss = stat_histogram("hops.read_miss", 16);
  st_.hops_write_miss = stat_histogram("hops.write_miss", 16);
  st_.hops_write_hit_s = stat_histogram("hops.write_hit_s", 16);
}

AccessResult MesiController::access(const MemAccess& a, std::uint64_t* hit_value,
                                    CompleteFn on_complete) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "MESI controller already has a pending access");
  const sim::Addr block = tags_.block_of(a.addr);
  CacheLine* l = tags_.find(block);
  pf_->access(sim_.now(), node_, a.addr, a.size,
              !a.is_store        ? sim::AccessClass::kLoad
              : a.is_atomic()    ? sim::AccessClass::kAtomic
                                 : sim::AccessClass::kStore);

  if (!a.is_store) {
    if (l != nullptr) {
      st_.load_hits->inc();
      tags_.touch(*l);
      *hit_value = read_line(*l, a.addr, a.size);
      return AccessResult::kHit;
    }
    st_.load_misses->inc();
    start_miss(a, std::move(on_complete));
    return AccessResult::kPending;
  }

  if (l != nullptr) {
    if (l->state == LineState::kModified || l->state == LineState::kExclusive) {
      // Figure 1: store hit in M costs nothing; store hit in E silently
      // transitions to M (the directory already records us as owner).
      if (l->state == LineState::kExclusive) st_.silent_e_to_m->inc();
      st_.store_hits_em->inc();
      fsm(*l, CacheEvent::kStoreHit);
      std::uint64_t old = 0;
      if (a.is_atomic()) {
        old = read_line(*l, a.addr, a.size);
        *hit_value = old;
      }
      std::uint64_t next = a.atomic == AtomicKind::kAdd ? old + a.value : a.value;
      write_line(*l, a.addr, a.size, next);
      tags_.touch(*l);
      return AccessResult::kHit;
    }
    // Store hit in Shared: blocking upgrade (2 or 4 hops).
    st_.store_hits_s->inc();
    pending_ = Pending::kResponse;
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    pending_line_ = l;
    pending_is_upgrade_ = true;
    pending_txn_ = next_txn();
    tr_->txn_begin(sim_.now(), pending_txn_, "mesi.upgrade", node_, track_tid(), block);
    lat_->txn_begin(sim_.now(), pending_txn_, "mesi.upgrade", node_);
    // Upgrades launch synchronously; the zero-width mark anchors the phase
    // chain at the send cycle.
    lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kWbufWait, sim_.now());
    Message m;
    m.type = MsgType::kUpgrade;
    m.addr = block;
    m.txn = pending_txn_;
    send_to_bank(block, std::move(m));
    return AccessResult::kPending;
  }

  // Store miss: write-allocate with ReadExclusive (up to the paper's
  // Figure 2 six-hop sequence).
  st_.store_misses->inc();
  start_miss(a, std::move(on_complete));
  return AccessResult::kPending;
}

void MesiController::start_miss(const MemAccess& a, CompleteFn cb) {
  pending_access_ = a;
  pending_cb_ = std::move(cb);
  pending_is_upgrade_ = false;

  const sim::Addr block = tags_.block_of(a.addr);
  pf_->miss(sim_.now(), node_, block);
  pending_txn_ = next_txn();
  tr_->txn_begin(sim_.now(), pending_txn_,
                 a.is_store ? "mesi.write_miss" : "mesi.read_miss", node_,
                 track_tid(), block);
  lat_->txn_begin(sim_.now(), pending_txn_,
                  a.is_store ? "mesi.write_miss" : "mesi.read_miss", node_);
  CacheLine& victim = tags_.victim(block);
  if (victim.state == LineState::kModified &&
      wb_buffer_.size() >= cfg_.writeback_buffer_entries) {
    // All write-back buffer entries are awaiting acknowledgement; the miss
    // launches once one frees.
    st_.wb_buffer_stalls->inc();
    pf_->wbuf_stall(sim_.now(), node_, victim.block);
    tr_->txn_note(sim_.now(), pending_txn_, node_, "wb_slot_wait", "wb_buffer",
                  wb_buffer_.size());
    pending_ = Pending::kWbSlot;
    pending_line_ = &victim;
    return;
  }
  if (victim.state == LineState::kModified) {
    do_writeback(victim);
  } else if (victim.state != LineState::kInvalid) {
    fsm(victim, CacheEvent::kEvict);  // silent clean eviction
  }
  pending_line_ = &victim;
  pending_ = Pending::kResponse;
  launch_miss();
}

void MesiController::launch_miss() {
  // Time between txn_begin and this send was write-back-slot wait (zero
  // when the miss launched immediately).
  lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kWbufWait, sim_.now());
  const sim::Addr block = tags_.block_of(pending_access_.addr);
  Message m;
  m.type = pending_access_.is_store ? MsgType::kReadExclusive : MsgType::kReadShared;
  m.addr = block;
  m.txn = pending_txn_;
  send_to_bank(block, std::move(m));
}

void MesiController::do_writeback(CacheLine& victim) {
  CCNOC_ASSERT(victim.state == LineState::kModified, "write-back of a clean line");
  st_.writebacks->inc();
  WbEntry& e = wb_buffer_[victim.block];
  e.data = victim.data;

  Message m;
  m.type = MsgType::kWriteBack;
  m.addr = victim.block;
  m.txn = next_txn();
  tr_->txn_begin(sim_.now(), m.txn, "mesi.writeback", node_, track_tid(), victim.block);
  lat_->txn_begin(sim_.now(), m.txn, "mesi.writeback", node_);
  lat_->mark(sim_.now(), m.txn, node_, sim::Phase::kWbufWait, sim_.now());
  m.data_len = std::uint8_t(cfg_.block_bytes);
  std::memcpy(m.data.data(), victim.data.data(), cfg_.block_bytes);
  send_to_bank(victim.block, std::move(m));

  fsm(victim, CacheEvent::kEvictDirty);
}

void MesiController::on_packet(const noc::Packet& pkt) {
  switch (pkt.msg.type) {
    case MsgType::kReadResponse: handle_read_response(pkt); break;
    case MsgType::kUpgradeAck: handle_upgrade_ack(pkt); break;
    case MsgType::kInvalidate: handle_invalidate(pkt); break;
    case MsgType::kFetch: handle_fetch(pkt, /*invalidate=*/false); break;
    case MsgType::kFetchInv: handle_fetch(pkt, /*invalidate=*/true); break;
    case MsgType::kWriteBackAck: handle_writeback_ack(pkt); break;
    case MsgType::kInvalidateAck:
      // A sharer's direct acknowledgement for our in-flight upgrade.
      CCNOC_ASSERT(pending_ == Pending::kResponse && pending_is_upgrade_,
                   "direct ack without an outstanding upgrade");
      ++direct_acks_got_;
      maybe_finish_direct_upgrade();
      break;
    default:
      CCNOC_ASSERT(false, std::string("MESI cache received ") + to_string(pkt.msg.type));
  }
}

void MesiController::handle_read_response(const noc::Packet& pkt) {
  CCNOC_ASSERT(pending_ == Pending::kResponse && !pending_is_upgrade_,
               "unexpected read response");
  CCNOC_ASSERT(pkt.msg.data_len == cfg_.block_bytes, "short read response");
  CacheLine& l = *pending_line_;
  l.block = pkt.msg.addr;
  std::memcpy(l.data.data(), pkt.msg.data.data(), cfg_.block_bytes);
  switch (pkt.msg.grant) {
    case Grant::kShared: fsm(l, CacheEvent::kFillShared); break;
    case Grant::kExclusive: fsm(l, CacheEvent::kFillExclusive); break;
    case Grant::kModified: fsm(l, CacheEvent::kFillModified); break;
  }
  (pending_access_.is_store ? st_.hops_write_miss : st_.hops_read_miss)
      ->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pending_txn_, node_);
  finish_pending(l);
}

void MesiController::handle_upgrade_ack(const noc::Packet& pkt) {
  CCNOC_ASSERT(pending_ == Pending::kResponse && pending_is_upgrade_,
               "unexpected upgrade ack");
  if (pkt.msg.ack_count > 0) {
    have_upgrade_ack_ = true;
    direct_acks_needed_ = pkt.msg.ack_count;
    saved_upgrade_msg_ = pkt.msg;
    maybe_finish_direct_upgrade();
    return;
  }
  CacheLine& l = *pending_line_;
  if (pkt.msg.carries_data()) {
    // Our Shared copy was invalidated while the upgrade was in flight; the
    // directory re-supplied the block.
    st_.upgrade_data_refills->inc();
    l.block = pkt.msg.addr;
    std::memcpy(l.data.data(), pkt.msg.data.data(), cfg_.block_bytes);
  } else {
    CCNOC_ASSERT(l.state == LineState::kShared && l.block == pkt.msg.addr,
                 "upgrade ack without data for a lost line");
  }
  st_.hops_write_hit_s->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pending_txn_, node_);
  finish_pending(l);
}

void MesiController::maybe_finish_direct_upgrade() {
  if (!have_upgrade_ack_ || direct_acks_got_ < direct_acks_needed_) return;
  st_.direct_ack_upgrades->inc();
  const noc::Message msg = saved_upgrade_msg_;
  have_upgrade_ack_ = false;
  direct_acks_needed_ = 0;
  direct_acks_got_ = 0;

  // Release the bank's per-block transaction lock, then complete locally.
  // Carrying the finishing transaction's id lets the trace tie the unlock
  // to its upgrade.
  Message done;
  done.type = MsgType::kTxnDone;
  done.addr = msg.addr;
  done.txn = msg.txn;
  send_to_bank(msg.addr, std::move(done));

  CacheLine& l = *pending_line_;
  if (msg.carries_data()) {
    st_.upgrade_data_refills->inc();
    l.block = msg.addr;
    std::memcpy(l.data.data(), msg.data.data(), cfg_.block_bytes);
  } else {
    CCNOC_ASSERT(l.state == LineState::kShared && l.block == msg.addr,
                 "direct upgrade ack without data for a lost line");
  }
  st_.hops_write_hit_s->add(msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, msg.path_hops);
  // Direct-ack round: the sharers' acks converge here, not at the bank.
  lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kFanoutAcks, sim_.now());
  lat_->txn_end(sim_.now(), pending_txn_, node_);
  finish_pending(l);
}

void MesiController::finish_pending(CacheLine& l) {
  std::uint64_t value = 0;
  if (pending_access_.is_store) {
    // MESI atomics are cache-side: exclusivity is held when the local
    // read-modify-write executes, so the operation is globally atomic.
    std::uint64_t old = 0;
    if (pending_access_.is_atomic()) {
      old = read_line(l, pending_access_.addr, pending_access_.size);
      value = old;
    }
    if (l.state == LineState::kInvalid) {
      // The upgrade lost its Shared copy to a race; the ack re-supplied
      // the block, so this is a write-allocate fill.
      fsm(l, CacheEvent::kFillModified);
    } else if (l.state == LineState::kShared) {
      fsm(l, CacheEvent::kStoreUpgrade);
    } else {
      fsm(l, CacheEvent::kStoreHit);  // E/M granted by the response
    }
    std::uint64_t next = pending_access_.atomic == AtomicKind::kAdd
                             ? old + pending_access_.value
                             : pending_access_.value;
    write_line(l, pending_access_.addr, pending_access_.size, next);
  } else {
    value = read_line(l, pending_access_.addr, pending_access_.size);
  }
  tags_.touch(l);
  pending_ = Pending::kNone;
  pending_line_ = nullptr;
  pending_is_upgrade_ = false;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  cb(value);
}

void MesiController::handle_invalidate(const noc::Packet& pkt) {
  st_.invalidations->inc();
  if (tr_->full()) {
    tr_->instant(sim_.now(), node_, "mesi.invalidate_recv", sim::Tracer::kPidCache,
                 track_tid(), "addr", pkt.msg.addr);
    tr_->txn_note(sim_.now(), pkt.msg.txn, node_, "invalidate", "sharer", node_);
  }
  CacheLine* l = tags_.find(pkt.msg.addr);
  pf_->invalidate_recv(sim_.now(), node_, pkt.msg.addr, l != nullptr);
  if (l != nullptr) {
    CCNOC_ASSERT(l->state == LineState::kShared, "invalidate hit a non-Shared line");
    if (!inject_skip_invalidate()) fsm(*l, CacheEvent::kInvalidate);
  }
  Message ack;
  ack.type = MsgType::kInvalidateAck;
  ack.addr = pkt.msg.addr;
  ack.txn = pkt.msg.txn;
  // Direct-ack rounds (paper §4.2) acknowledge straight to the requester.
  send_to_node(pkt.msg.direct_ack ? pkt.msg.requester : pkt.src, std::move(ack));
}

void MesiController::handle_fetch(const noc::Packet& pkt, bool invalidate) {
  (invalidate ? st_.fetch_invs : st_.fetches)->inc();
  if (tr_->full()) {
    tr_->instant(sim_.now(), node_,
                 invalidate ? "mesi.fetchinv_recv" : "mesi.fetch_recv",
                 sim::Tracer::kPidCache, track_tid(), "addr", pkt.msg.addr);
    tr_->txn_note(sim_.now(), pkt.msg.txn, node_, invalidate ? "fetch_inv" : "fetch",
                  "owner", node_);
  }
  Message resp;
  resp.type = MsgType::kFetchResponse;
  resp.addr = pkt.msg.addr;
  resp.txn = pkt.msg.txn;

  CacheLine* l = tags_.find(pkt.msg.addr);
  if (invalidate) {
    // Losing an owned copy to a FetchInv is an invalidation for sharing
    // analysis: the next miss by this CPU closes a ping-pong.
    pf_->invalidate_recv(sim_.now(), node_, pkt.msg.addr, l != nullptr);
  }
  if (l != nullptr) {
    CCNOC_ASSERT(l->state == LineState::kModified || l->state == LineState::kExclusive,
                 "fetch hit a non-owned line");
    resp.data_len = std::uint8_t(cfg_.block_bytes);
    std::memcpy(resp.data.data(), l->data.data(), cfg_.block_bytes);
    fsm(*l, invalidate ? CacheEvent::kFetchInv : CacheEvent::kFetch);
  } else if (auto it = wb_buffer_.find(pkt.msg.addr); it != wb_buffer_.end()) {
    // The block is in flight to memory; serve the fetch from the write-back
    // buffer (the bank reconciles the duplicate data).
    resp.data_len = std::uint8_t(cfg_.block_bytes);
    std::memcpy(resp.data.data(), it->second.data.data(), cfg_.block_bytes);
  } else {
    // Silently evicted clean Exclusive copy: the memory copy is current;
    // an empty response tells the bank to use its own data.
    st_.fetch_misses->inc();
  }
  send_to_node(pkt.src, std::move(resp));
}

void MesiController::handle_writeback_ack(const noc::Packet& pkt) {
  auto erased = wb_buffer_.erase(tags_.block_of(pkt.msg.addr));
  CCNOC_ASSERT(erased == 1, "write-back ack for unknown block");
  if (tr_->on()) tr_->txn_end(sim_.now(), pkt.msg.txn, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pkt.msg.txn, node_);
  if (pending_ == Pending::kWbSlot) {
    CacheLine& victim = *pending_line_;
    if (victim.state == LineState::kModified) {
      do_writeback(victim);
    } else if (victim.state != LineState::kInvalid) {
      // A Fetch/FetchInv downgraded the victim while the miss waited for a
      // write-back slot; what remains is a clean eviction.
      fsm(victim, CacheEvent::kEvict);
    }
    pending_ = Pending::kResponse;
    launch_miss();
  }
}

}  // namespace ccnoc::cache
