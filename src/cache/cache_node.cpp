#include "cache/cache_node.hpp"

namespace ccnoc::cache {

CacheNode::CacheNode(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
                     unsigned cpu_index, mem::Protocol proto, CacheConfig dcfg,
                     CacheConfig icfg)
    : node_(map.cache_node(cpu_index)), proto_(proto) {
  std::string base = "cpu" + std::to_string(cpu_index);
  dcfg.protocol = proto;
  // The I-cache is protocol-independent in behaviour (untracked reads),
  // but its refills drive the line FSM through the platform's own table so
  // the coverage bitmap and the model checker reconcile per platform.
  icfg.protocol = proto;
  if (is_write_through(proto)) {
    dcache_ = std::make_unique<WtiController>(sim, net, map, node_, /*port=*/0, dcfg,
                                              base + ".dcache");
  } else {
    dcache_ = std::make_unique<MesiController>(sim, net, map, node_, /*port=*/0, dcfg,
                                               base + ".dcache");
  }
  icache_ = std::make_unique<ICacheController>(sim, net, map, node_, icfg,
                                               base + ".icache");
  net.attach(node_, *this);
}

void CacheNode::deliver(const noc::Packet& pkt) {
  // Responses echo the requesting sub-port; directory commands carry the
  // default port 0 and always concern the (coherent) data cache.
  if (pkt.msg.port == 1) {
    icache_->on_packet(pkt);
  } else {
    dcache_->on_packet(pkt);
  }
}

}  // namespace ccnoc::cache
