#include "cache/icache_controller.hpp"

#include <cstring>

namespace ccnoc::cache {

using noc::Message;
using noc::MsgType;

AccessResult ICacheController::access(const MemAccess& a, std::uint64_t* hit_value,
                                      CompleteFn on_complete) {
  CCNOC_ASSERT(!a.is_store, "store issued to the instruction cache");
  CCNOC_ASSERT(!pending_, "I-cache already has a pending fetch");
  const sim::Addr block = tags_.block_of(a.addr);
  if (CacheLine* l = tags_.find(block)) {
    hits_->inc();
    tags_.touch(*l);
    *hit_value = read_line(*l, a.addr, a.size);
    return AccessResult::kHit;
  }
  misses_->inc();
  // Code lines are profiled at refill granularity: one access per miss is
  // enough to mark the line as instruction-only for classification.
  pf_->access(sim_.now(), node_, a.addr, a.size, sim::AccessClass::kIfetch);
  pending_ = true;
  pending_access_ = a;
  pending_cb_ = std::move(on_complete);
  pending_txn_ = next_txn();
  tr_->txn_begin(sim_.now(), pending_txn_, "ifetch_miss", node_, track_tid(), block);
  lat_->txn_begin(sim_.now(), pending_txn_, "ifetch_miss", node_);
  lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kWbufWait, sim_.now());
  Message m;
  m.type = MsgType::kReadShared;
  m.addr = block;
  m.txn = pending_txn_;
  m.track = false;  // read-only code: not registered in the directory
  send_to_bank(block, std::move(m));
  return AccessResult::kPending;
}

void ICacheController::on_packet(const noc::Packet& pkt) {
  CCNOC_ASSERT(pkt.msg.type == MsgType::kReadResponse,
               std::string("I-cache received ") + to_string(pkt.msg.type));
  CCNOC_ASSERT(pending_, "unexpected I-cache refill");
  CacheLine& l = tags_.victim(pkt.msg.addr);
  // The refill is a real protocol transition: evict the victim and fill
  // through the table so coverage and the model checker see the I-cache's
  // line FSM (caught by ccnoc_lint proto-table-discipline).
  if (l.state != LineState::kInvalid) fsm(l, proto::CacheEvent::kEvict);
  l.block = pkt.msg.addr;
  fsm(l, proto::CacheEvent::kFillShared);
  std::memcpy(l.data.data(), pkt.msg.data.data(), cfg_.block_bytes);
  tags_.touch(l);
  hops_fetch_miss_->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pending_txn_, node_);

  std::uint64_t v = read_line(l, pending_access_.addr, pending_access_.size);
  pending_ = false;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  cb(v);
}

}  // namespace ccnoc::cache
