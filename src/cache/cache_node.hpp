#pragma once

#include <memory>

#include "cache/icache_controller.hpp"
#include "cache/mesi_controller.hpp"
#include "cache/wti_controller.hpp"
#include "mem/protocol.hpp"

/// \file cache_node.hpp
/// One processor node on the NoC: a protocol-specific data cache plus a
/// read-only instruction cache sharing a single interconnect port (the
/// paper minimizes NoC area this way). The node demultiplexes incoming
/// packets to the right controller using the message sub-port field;
/// directory commands (invalidate/fetch) always target the data cache.

namespace ccnoc::cache {

class CacheNode final : public noc::Endpoint {
 public:
  CacheNode(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
            unsigned cpu_index, mem::Protocol proto, CacheConfig dcfg, CacheConfig icfg);

  void deliver(const noc::Packet& pkt) override;

  [[nodiscard]] CacheController& dcache() { return *dcache_; }
  [[nodiscard]] CacheController& icache() { return *icache_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_; }
  [[nodiscard]] mem::Protocol protocol() const { return proto_; }

  [[nodiscard]] bool idle() const { return dcache_->idle() && icache_->idle(); }

 private:
  sim::NodeId node_;
  mem::Protocol proto_;
  std::unique_ptr<CacheController> dcache_;
  std::unique_ptr<ICacheController> icache_;
};

}  // namespace ccnoc::cache
