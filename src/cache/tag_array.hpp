#pragma once

#include <array>
#include <vector>

#include "cache/config.hpp"
#include "noc/message.hpp"
#include "proto/fsm.hpp"
#include "sim/types.hpp"

/// \file tag_array.hpp
/// Set-associative tag + data array with LRU replacement. The paper's
/// caches are direct-mapped (ways = 1); associativity is kept general for
/// the cache-geometry ablation. Lines store full block addresses as tags
/// and carry bit-accurate block data.

namespace ccnoc::cache {

/// MESI line states; WTI uses only kInvalid and kShared ("Valid").
/// Aliased from proto:: so the declarative transition tables and the tag
/// array agree on the state vocabulary by construction.
using LineState = proto::LineState;
using proto::to_string;

struct CacheLine {
  sim::Addr block = 0;  ///< block-aligned address (valid when state != I)
  LineState state = LineState::kInvalid;
  std::uint64_t lru = 0;
  std::array<std::uint8_t, noc::kMaxBlockBytes> data{};
};

class TagArray {
 public:
  explicit TagArray(const CacheConfig& cfg) : cfg_(cfg), lines_(cfg.num_lines()) {
    CCNOC_ASSERT(cfg.num_lines() % cfg.ways == 0, "lines not divisible by ways");
    CCNOC_ASSERT((cfg.block_bytes & (cfg.block_bytes - 1)) == 0, "block size not pow2");
    CCNOC_ASSERT(cfg.block_bytes <= noc::kMaxBlockBytes, "block too large");
  }

  [[nodiscard]] sim::Addr block_of(sim::Addr a) const {
    return a & ~sim::Addr(cfg_.block_bytes - 1);
  }

  /// Returns the line holding \p block, or nullptr on miss.
  [[nodiscard]] CacheLine* find(sim::Addr block) {
    auto [base, ways] = set_range(block);
    for (unsigned w = 0; w < ways; ++w) {
      CacheLine& l = lines_[base + w];
      if (l.state != LineState::kInvalid && l.block == block) return &l;
    }
    return nullptr;
  }

  /// Replacement victim for \p block: an invalid way if any, else LRU.
  [[nodiscard]] CacheLine& victim(sim::Addr block) {
    auto [base, ways] = set_range(block);
    CacheLine* best = &lines_[base];
    for (unsigned w = 0; w < ways; ++w) {
      CacheLine& l = lines_[base + w];
      if (l.state == LineState::kInvalid) return l;
      if (l.lru < best->lru) best = &l;
    }
    return *best;
  }

  void touch(CacheLine& l) { l.lru = ++lru_clock_; }

  /// Count of non-invalid lines (tests / occupancy stats).
  [[nodiscard]] unsigned valid_lines() const {
    unsigned n = 0;
    for (const auto& l : lines_) n += (l.state != LineState::kInvalid);
    return n;
  }

  void invalidate_all() {
    for (auto& l : lines_) l.state = LineState::kInvalid;
  }

  /// Visit every line (post-run flush, occupancy checks in tests).
  template <typename F>
  void for_each_line(F&& fn) const {
    for (const auto& l : lines_) fn(l);
  }

 private:
  [[nodiscard]] std::pair<std::size_t, unsigned> set_range(sim::Addr block) const {
    std::size_t set = std::size_t(block / cfg_.block_bytes) % cfg_.num_sets();
    return {set * cfg_.ways, cfg_.ways};
  }

  CacheConfig cfg_;
  std::vector<CacheLine> lines_;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace ccnoc::cache
