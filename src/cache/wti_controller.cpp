#include "cache/wti_controller.hpp"

#include <cstring>

namespace ccnoc::cache {

using noc::Message;
using noc::MsgType;
using proto::CacheEvent;

namespace {
/// This engine implements the write-through FSMs; a stray write-back
/// protocol tag would bind it to the wrong transition table.
CacheConfig write_through_cfg(CacheConfig cfg) {
  if (!mem::is_write_through(cfg.protocol)) cfg.protocol = mem::Protocol::kWti;
  return cfg;
}
}  // namespace

WtiController::WtiController(sim::Simulator& sim, noc::Network& net,
                             const mem::AddressMap& map, sim::NodeId node,
                             std::uint8_t port, CacheConfig cfg, std::string name)
    : CacheController(sim, net, map, node, port, write_through_cfg(cfg), std::move(name)) {
  st_.load_hits = stat("load_hits");
  st_.load_misses = stat("load_misses");
  st_.load_drain_waits = stat("load_drain_waits");
  st_.atomic_swaps = stat("atomic_swaps");
  st_.wbuf_full_stalls = stat("wbuf_full_stalls");
  st_.store_hits = stat("store_hits");
  st_.store_misses = stat("store_misses");
  st_.direct_ack_writes = stat("direct_ack_writes");
  st_.explicit_drains = stat("explicit_drains");
  st_.updates = stat("updates");
  st_.invalidations = stat("invalidations");
  st_.wbuf_occupancy = stat_sample("wbuf_occupancy");
  st_.hops_read_miss = stat_histogram("hops.read_miss", 16);
  st_.hops_write_through = stat_histogram("hops.write_through", 16);
  st_.hops_atomic_swap = stat_histogram("hops.atomic_swap", 16);
}

AccessResult WtiController::access(const MemAccess& a, std::uint64_t* hit_value,
                                   CompleteFn on_complete) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "WTI controller already has a pending access");
  const sim::Addr block = tags_.block_of(a.addr);
  pf_->access(sim_.now(), node_, a.addr, a.size,
              !a.is_store        ? sim::AccessClass::kLoad
              : a.is_atomic()    ? sim::AccessClass::kAtomic
                                 : sim::AccessClass::kStore);

  if (!a.is_store) {
    if (CacheLine* l = tags_.find(block)) {
      st_.load_hits->inc();
      tags_.touch(*l);
      *hit_value = read_line(*l, a.addr, a.size);
      return AccessResult::kHit;
    }
    st_.load_misses->inc();
    pf_->miss(sim_.now(), node_, block);
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    pending_txn_ = next_txn();
    tr_->txn_begin(sim_.now(), pending_txn_, "wti.load_miss", node_, track_tid(),
                   block);
    lat_->txn_begin(sim_.now(), pending_txn_, "wti.load_miss", node_);
    if (cfg_.drain_on_load_miss && !wbuf_.empty()) {
      // Sequential consistency: older buffered writes become globally
      // visible before this read is ordered.
      pending_ = Pending::kLoadDrain;
      st_.load_drain_waits->inc();
      pf_->wbuf_stall(sim_.now(), node_, a.addr);
      tr_->txn_note(sim_.now(), pending_txn_, node_, "drain_wait", "wbuf",
                    wbuf_.size());
    } else {
      pending_ = Pending::kLoadResponse;
      issue_read();
    }
    return AccessResult::kPending;
  }

  if (a.is_atomic()) {
    // Atomics execute at the bank (blocking). The local copy is dropped —
    // the bank treats the requester like any other sharer — and ordering
    // with older buffered writes is preserved by draining first.
    st_.atomic_swaps->inc();
    if (CacheLine* l = tags_.find(block)) fsm(*l, CacheEvent::kAtomicIssue);
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    pending_txn_ = next_txn();
    tr_->txn_begin(sim_.now(), pending_txn_, "wti.atomic", node_, track_tid(), block);
    lat_->txn_begin(sim_.now(), pending_txn_, "wti.atomic", node_);
    if (!wbuf_.empty()) {
      pending_ = Pending::kSwapDrain;
      tr_->txn_note(sim_.now(), pending_txn_, node_, "drain_wait", "wbuf",
                    wbuf_.size());
    } else {
      pending_ = Pending::kSwapResponse;
      issue_swap();
    }
    return AccessResult::kPending;
  }

  // Store: non-blocking through the write buffer unless it is full.
  if (wbuf_.size() >= cfg_.write_buffer_entries) {
    st_.wbuf_full_stalls->inc();
    pf_->wbuf_stall(sim_.now(), node_, a.addr);
    tr_->instant(sim_.now(), node_, "wti.wbuf_full", sim::Tracer::kPidCache,
                 track_tid(), "addr", a.addr);
    pending_ = Pending::kStoreBuffer;
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    return AccessResult::kPending;
  }
  perform_store(a);
  return AccessResult::kHit;
}

void WtiController::perform_store(const MemAccess& a) {
  const sim::Addr block = tags_.block_of(a.addr);
  if (CacheLine* l = tags_.find(block)) {
    // Write-through with local update on hit: the copy stays Valid and the
    // directory will not invalidate the writer.
    st_.store_hits->inc();
    fsm(*l, CacheEvent::kStoreHit);
    write_line(*l, a.addr, a.size, a.value);
    tags_.touch(*l);
  } else {
    st_.store_misses->inc();  // no-allocate
  }
  wbuf_.push_back(BufEntry{a.addr, a.size, a.value});
  st_.wbuf_occupancy->add(double(wbuf_.size()));
  start_drain();
}

void WtiController::start_drain() {
  if (drain_in_flight_ || wbuf_.empty()) return;
  const BufEntry& e = wbuf_.front();
  Message m;
  m.type = MsgType::kWriteWord;
  m.addr = e.addr;
  m.access_size = e.size;
  m.data_len = e.size;
  m.txn = drain_txn_ = next_txn();
  tr_->txn_begin(sim_.now(), drain_txn_, "wti.write_through", node_, track_tid(),
                 e.addr);
  lat_->txn_begin(sim_.now(), drain_txn_, "wti.write_through", node_);
  // Buffered stores launch the moment the port frees, so their wbuf wait is
  // structurally zero; the mark anchors the phase chain at the send cycle.
  lat_->mark(sim_.now(), drain_txn_, node_, sim::Phase::kWbufWait, sim_.now());
  std::memcpy(m.data.data(), &e.value, e.size);
  drain_in_flight_ = true;
  send_to_bank(e.addr, std::move(m));
}

void WtiController::issue_read() {
  // Everything between txn_begin and this send was write-buffer drain wait
  // (zero when the miss issued immediately).
  lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kWbufWait, sim_.now());
  Message m;
  m.type = MsgType::kReadShared;
  m.addr = tags_.block_of(pending_access_.addr);
  m.txn = pending_txn_;
  send_to_bank(m.addr, std::move(m));
}

void WtiController::issue_swap() {
  lat_->mark(sim_.now(), pending_txn_, node_, sim::Phase::kWbufWait, sim_.now());
  Message m;
  m.type = pending_access_.atomic == AtomicKind::kAdd ? MsgType::kAtomicAdd
                                                      : MsgType::kAtomicSwap;
  m.addr = pending_access_.addr;
  m.access_size = pending_access_.size;
  m.data_len = pending_access_.size;
  m.txn = pending_txn_;
  std::memcpy(m.data.data(), &pending_access_.value, pending_access_.size);
  send_to_bank(m.addr, std::move(m));
}

void WtiController::on_packet(const noc::Packet& pkt) {
  switch (pkt.msg.type) {
    case MsgType::kReadResponse: handle_read_response(pkt); break;
    case MsgType::kWriteAck: handle_write_ack(pkt); break;
    case MsgType::kSwapResponse: handle_swap_response(pkt); break;
    case MsgType::kInvalidate: handle_invalidate(pkt); break;
    case MsgType::kUpdateWord: handle_update(pkt); break;
    case MsgType::kInvalidateAck:
      // A sharer's direct acknowledgement for our in-flight write.
      CCNOC_ASSERT(drain_in_flight_, "direct ack without an outstanding write");
      ++direct_acks_got_;
      maybe_finish_direct_write();
      break;
    default:
      CCNOC_ASSERT(false, std::string("WTI cache received ") + to_string(pkt.msg.type));
  }
}

void WtiController::handle_read_response(const noc::Packet& pkt) {
  CCNOC_ASSERT(pending_ == Pending::kLoadResponse, "unexpected read response");
  CCNOC_ASSERT(pkt.msg.data_len == cfg_.block_bytes, "short read response");
  CacheLine& l = tags_.victim(pkt.msg.addr);
  if (l.state != LineState::kInvalid) fsm(l, CacheEvent::kEvict);
  l.block = pkt.msg.addr;
  fsm(l, CacheEvent::kFillShared);  // "Valid"
  std::memcpy(l.data.data(), pkt.msg.data.data(), cfg_.block_bytes);
  tags_.touch(l);

  st_.hops_read_miss->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pending_txn_, node_);
  std::uint64_t v = read_line(l, pending_access_.addr, pending_access_.size);
  pending_ = Pending::kNone;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  cb(v);
}

void WtiController::handle_write_ack(const noc::Packet& pkt) {
  CCNOC_ASSERT(drain_in_flight_ && !wbuf_.empty(), "stray write ack");
  if (pkt.msg.ack_count > 0) {
    // Direct-ack round: sharers acknowledge straight to us; the write is
    // performed once response + all acks have arrived.
    have_write_ack_ = true;
    direct_acks_needed_ = pkt.msg.ack_count;
    saved_ack_hops_ = pkt.msg.path_hops;
    maybe_finish_direct_write();
    return;
  }
  st_.hops_write_through->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pkt.msg.txn, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pkt.msg.txn, node_);
  wbuf_.pop_front();
  drain_in_flight_ = false;
  start_drain();

  if (pending_ == Pending::kStoreBuffer) {
    // A slot is free: the stalled store executes now.
    MemAccess a = pending_access_;
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    perform_store(a);
    cb(0);
  } else if (pending_ == Pending::kLoadDrain && wbuf_.empty()) {
    pending_ = Pending::kLoadResponse;
    issue_read();
  } else if (pending_ == Pending::kSwapDrain && wbuf_.empty()) {
    pending_ = Pending::kSwapResponse;
    issue_swap();
  } else if (pending_ == Pending::kDrainWait && wbuf_.empty()) {
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    cb(0);
  }
}

void WtiController::maybe_finish_direct_write() {
  if (!have_write_ack_ || direct_acks_got_ < direct_acks_needed_) return;
  st_.direct_ack_writes->inc();
  st_.hops_write_through->add(saved_ack_hops_);
  tr_->txn_end(sim_.now(), drain_txn_, node_, saved_ack_hops_);
  // Direct-ack round: the sharers' acks converge here, not at the bank, so
  // the fan-out phase is attributed requester-side.
  lat_->mark(sim_.now(), drain_txn_, node_, sim::Phase::kFanoutAcks, sim_.now());
  lat_->txn_end(sim_.now(), drain_txn_, node_);
  // Release the bank's per-block transaction lock. Carrying the finishing
  // transaction's id lets the trace tie the unlock to its write.
  Message done;
  done.type = MsgType::kTxnDone;
  done.addr = wbuf_.front().addr;
  done.txn = drain_txn_;
  send_to_bank(done.addr, std::move(done));

  have_write_ack_ = false;
  direct_acks_needed_ = 0;
  direct_acks_got_ = 0;
  wbuf_.pop_front();
  drain_in_flight_ = false;
  start_drain();

  if (pending_ == Pending::kStoreBuffer) {
    MemAccess a = pending_access_;
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    perform_store(a);
    cb(0);
  } else if (pending_ == Pending::kLoadDrain && wbuf_.empty()) {
    pending_ = Pending::kLoadResponse;
    issue_read();
  } else if (pending_ == Pending::kSwapDrain && wbuf_.empty()) {
    pending_ = Pending::kSwapResponse;
    issue_swap();
  } else if (pending_ == Pending::kDrainWait && wbuf_.empty()) {
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    cb(0);
  }
}

AccessResult WtiController::drain(CompleteFn on_drained) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "drain during a pending access");
  if (wbuf_.empty()) return AccessResult::kHit;
  st_.explicit_drains->inc();
  pending_ = Pending::kDrainWait;
  pending_cb_ = std::move(on_drained);
  return AccessResult::kPending;
}

void WtiController::handle_swap_response(const noc::Packet& pkt) {
  CCNOC_ASSERT(pending_ == Pending::kSwapResponse, "unexpected swap response");
  st_.hops_atomic_swap->add(pkt.msg.path_hops);
  tr_->txn_end(sim_.now(), pending_txn_, node_, pkt.msg.path_hops);
  lat_->txn_end(sim_.now(), pending_txn_, node_);
  std::uint64_t old = 0;
  std::memcpy(&old, pkt.msg.data.data(), pkt.msg.data_len);
  pending_ = Pending::kNone;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  cb(old);
}

void WtiController::handle_update(const noc::Packet& pkt) {
  // Write-update flavour: a foreign store patches our copy in place. A
  // stale-sharer ack tells the directory to stop updating us.
  st_.updates->inc();
  pf_->update_recv(sim_.now(), node_, pkt.msg.addr);
  tr_->instant(sim_.now(), node_, "wti.update_recv", sim::Tracer::kPidCache,
               track_tid(), "addr", pkt.msg.addr);
  Message ack;
  ack.type = MsgType::kUpdateAck;
  ack.addr = pkt.msg.addr;
  ack.txn = pkt.msg.txn;
  if (CacheLine* l = tags_.find(tags_.block_of(pkt.msg.addr))) {
    // Apply byte-wise, skipping bytes covered by our own still-buffered
    // stores. Our store hit already patched those bytes locally, and the
    // bank serializes our buffered store AFTER the foreign write that
    // produced this update: if ours had serialized first, its WriteAck
    // would precede this update in the (FIFO) bank->cache channel and the
    // buffer entry would already be gone. Clobbering them would leave this
    // copy permanently stale once our own write lands in memory.
    for (unsigned i = 0; i < pkt.msg.access_size; ++i) {
      const sim::Addr byte = pkt.msg.addr + i;
      bool ours = false;
      for (const BufEntry& e : wbuf_) {
        if (byte >= e.addr && byte < e.addr + e.size) {
          ours = true;
          break;
        }
      }
      if (!ours) {
        l->data[unsigned(byte - l->block)] = pkt.msg.data[i];
      }
    }
    fsm(*l, CacheEvent::kUpdate);
    tags_.touch(*l);
    ack.had_copy = true;
  } else {
    ack.had_copy = false;
  }
  send_to_node(pkt.src, std::move(ack));
}

void WtiController::handle_invalidate(const noc::Packet& pkt) {
  st_.invalidations->inc();
  tr_->instant(sim_.now(), node_, "wti.invalidate_recv", sim::Tracer::kPidCache,
               track_tid(), "addr", pkt.msg.addr);
  CacheLine* l = tags_.find(pkt.msg.addr);
  pf_->invalidate_recv(sim_.now(), node_, pkt.msg.addr, l != nullptr);
  if (l) {
    if (!inject_skip_invalidate()) fsm(*l, CacheEvent::kInvalidate);
  }
  // Always acknowledge: the directory may hold a stale presence bit. In a
  // direct-ack round the acknowledgement goes straight to the requesting
  // cache (paper §4.2), otherwise to the memory node.
  Message ack;
  ack.type = MsgType::kInvalidateAck;
  ack.addr = pkt.msg.addr;
  ack.txn = pkt.msg.txn;
  send_to_node(pkt.msg.direct_ack ? pkt.msg.requester : pkt.src, std::move(ack));
}

}  // namespace ccnoc::cache
