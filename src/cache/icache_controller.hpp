#pragma once

#include "cache/controller.hpp"

/// \file icache_controller.hpp
/// Instruction cache: read-only, protocol-independent. Code is never
/// written (no self-modifying code in the modelled software stack), so
/// instruction fetches are served as untracked reads — the directory does
/// not record the I-cache as a sharer and never invalidates it. The I-cache
/// shares its node's single NoC port with the D-cache (paper §5.1), so
/// heavy data traffic delays instruction miss refills through port
/// serialization in the interconnect model.

namespace ccnoc::cache {

class ICacheController final : public CacheController {
 public:
  ICacheController(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
                   sim::NodeId node, CacheConfig cfg, std::string name)
      : CacheController(sim, net, map, node, /*port=*/1, cfg, std::move(name)),
        hits_(stat("hits")),
        misses_(stat("misses")),
        hops_fetch_miss_(stat_histogram("hops.fetch_miss", 16)) {}

  AccessResult access(const MemAccess& a, std::uint64_t* hit_value,
                      CompleteFn on_complete) override;
  void on_packet(const noc::Packet& pkt) override;

  [[nodiscard]] bool idle() const override { return !pending_; }

 private:
  bool pending_ = false;
  MemAccess pending_access_{};
  CompleteFn pending_cb_;
  std::uint64_t pending_txn_ = 0;  ///< tracer id of the in-flight fetch miss

  // Typed stat handles, resolved once at construction (see CacheController).
  sim::Counter* hits_;
  sim::Counter* misses_;
  sim::Histogram* hops_fetch_miss_;
};

}  // namespace ccnoc::cache
