#pragma once

#include <functional>
#include <string>

#include "cache/config.hpp"
#include "cache/tag_array.hpp"
#include "mem/address_map.hpp"
#include "noc/network.hpp"
#include "proto/tables.hpp"
#include "sim/simulator.hpp"

/// \file controller.hpp
/// Common machinery of the cache-side protocol engines. A controller
/// serves one in-order processor port (at most one outstanding CPU access,
/// as the paper requires: "uniform access and in-order request issues") and
/// reacts to directory commands arriving from the NoC at any time.

namespace ccnoc::cache {

/// Atomic read-modify-write flavour of a store-class access.
enum class AtomicKind : std::uint8_t {
  kNone,  ///< plain store
  kSwap,  ///< write \p value, return the old value
  kAdd,   ///< add \p value, return the old value (fetch-and-add)
};

/// One processor memory access.
struct MemAccess {
  bool is_store = false;
  AtomicKind atomic = AtomicKind::kNone;
  sim::Addr addr = 0;
  std::uint8_t size = sim::kWordBytes;  ///< 1, 2, 4 or 8 bytes
  std::uint64_t value = 0;              ///< store data / atomic operand

  [[nodiscard]] bool is_atomic() const { return atomic != AtomicKind::kNone; }
};

enum class AccessResult {
  kHit,      ///< completed synchronously; load value returned via out-param
  kPending,  ///< completion callback will fire later
};

/// The processor-facing cache interface: what `cpu::Processor` needs from
/// a data or instruction cache, independent of the coherence organization
/// (directory controllers here; the snoopy-bus controllers in
/// `ccnoc::snoop` implement the same contract).
class CacheIface {
 public:
  /// Completion callback: receives the load value (0 for stores).
  using CompleteFn = std::function<void(std::uint64_t)>;

  virtual ~CacheIface() = default;

  /// Issue a processor access. The caller must not issue another access for
  /// this cache until a kHit return or the completion callback.
  virtual AccessResult access(const MemAccess& a, std::uint64_t* hit_value,
                              CompleteFn on_complete) = 0;

  /// Context-switch memory barrier (see CacheController::drain).
  virtual AccessResult drain(CompleteFn on_drained) {
    (void)on_drained;
    return AccessResult::kHit;
  }

  [[nodiscard]] virtual const CacheConfig& config() const = 0;
  [[nodiscard]] virtual bool idle() const = 0;
};

class CacheController : public CacheIface {
 public:
  CacheController(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
                  sim::NodeId node, std::uint8_t port, CacheConfig cfg, std::string name);
  CacheController(const CacheController&) = delete;
  CacheController& operator=(const CacheController&) = delete;

  /// A NoC packet addressed to this controller's port.
  virtual void on_packet(const noc::Packet& pkt) = 0;

  // `drain` (the context-switch memory barrier: a migrating thread's
  // buffered stores must complete in program order before it resumes
  // elsewhere) keeps CacheIface's immediate default; the write-through
  // controller overrides it.

  [[nodiscard]] const CacheConfig& config() const override { return cfg_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TagArray& tags() { return tags_; }

  /// Untimed post-run flush: copy Modified lines back into \p write so the
  /// final memory image is complete for verification. Write-back caches may
  /// legitimately end a run with dirty lines; write-through caches never do.
  template <typename WriteFn>
  void flush_dirty(WriteFn&& write) const {
    tags_.for_each_line([&](const CacheLine& l) {
      if (l.state == LineState::kModified) {
        write(l.block, l.data.data(), cfg_.block_bytes);
      }
    });
  }

 protected:
  void send_to_bank(sim::Addr addr, noc::Message m);
  void send_to_node(sim::NodeId dst, noc::Message m);

  [[nodiscard]] std::uint64_t read_line(const CacheLine& l, sim::Addr a,
                                        unsigned size) const;
  void write_line(CacheLine& l, sim::Addr a, unsigned size, std::uint64_t v);

  // Construction-time resolvers for "<name>.<suffix>" statistics. Registry
  // references are stable for its lifetime, so derived controllers resolve
  // their handles once in their constructor and bump raw pointers on the
  // per-access paths instead of re-concatenating names and searching maps.
  [[nodiscard]] sim::Counter* stat(const std::string& suffix) {
    return &sim_.stats().counter(name_ + "." + suffix);
  }
  [[nodiscard]] sim::Sample* stat_sample(const std::string& suffix) {
    return &sim_.stats().sample(name_ + "." + suffix);
  }
  [[nodiscard]] sim::Histogram* stat_histogram(const std::string& suffix,
                                               std::size_t buckets) {
    return &sim_.stats().histogram(name_ + "." + suffix, buckets);
  }

  /// Transaction id for following a miss end-to-end across components.
  /// Composed from (node, port, local sequence) rather than drawn from a
  /// global counter, so ids are unique across the platform yet allocation
  /// touches only this controller's state — the order controllers start
  /// transactions in (which varies with the domain partition mid-cycle)
  /// can't leak into the ids. Consumers treat ids as opaque.
  [[nodiscard]] std::uint64_t next_txn() {
    return (std::uint64_t(node_) * 2 + port_ + 1) << 40 | ++txn_seq_;
  }

  /// Tracer thread id on the "cache" track. A node hosts two sub-ports
  /// (0 = dcache, 1 = icache) that must not share a track.
  [[nodiscard]] std::uint32_t track_tid() const {
    return std::uint32_t(node_) * 2 + port_;
  }

  /// Route a line-state change through the protocol's declarative
  /// transition table (proto/tables.hpp): the table dictates the successor
  /// state and the transition is recorded in the platform's coverage
  /// bitmap. An undeclared (state, event) pair aborts — the table is the
  /// single source of truth shared with the exhaustive model checker.
  void fsm(CacheLine& l, proto::CacheEvent ev) {
    l.state = proto::apply_cache(tbl_, tbl2_, *cov_, l.state, ev);
  }

  /// Fault injection (CacheConfig::fault): true when the current incoming
  /// invalidation must be acknowledged but NOT applied. One-shot.
  [[nodiscard]] bool inject_skip_invalidate() {
    if (cfg_.fault != CacheConfig::FaultKind::kSkipInvalidate || fault_fired_) {
      return false;
    }
    if (fault_seen_++ < cfg_.fault_after) return false;
    fault_fired_ = true;
    return true;
  }

  sim::Simulator& sim_;
  noc::Network& net_;
  const mem::AddressMap& map_;
  sim::NodeId node_;
  std::uint8_t port_;
  CacheConfig cfg_;
  std::string name_;
  TagArray tags_;
  sim::Tracer* tr_;    ///< cached; hot paths guard on tr_->on() / tr_->full()
  sim::Profiler* pf_;  ///< cached; every hook is one predicted branch when off
  sim::LatencyObservatory* lat_;  ///< cached; same one-branch-when-off discipline
  const proto::ProtocolTable& tbl_;  ///< this protocol's transition table
  /// Hierarchy extension table, installed only when this L1 fronts a shared
  /// L2 (CacheConfig::hierarchy): a WTU L1's back-invalidation row exists
  /// only there. Null on flat platforms — fsm() behaves exactly as before.
  const proto::ProtocolTable* tbl2_ = nullptr;
  proto::CoverageSet* cov_;          ///< this node's domain coverage shard

 private:
  std::uint64_t txn_seq_ = 0;
  bool fault_fired_ = false;
  unsigned fault_seen_ = 0;
};

}  // namespace ccnoc::cache
