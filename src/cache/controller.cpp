#include "cache/controller.hpp"

#include <cstring>

namespace ccnoc::cache {

CacheController::CacheController(sim::Simulator& sim, noc::Network& net,
                                 const mem::AddressMap& map, sim::NodeId node,
                                 std::uint8_t port, CacheConfig cfg, std::string name)
    : sim_(sim),
      net_(net),
      map_(map),
      node_(node),
      port_(port),
      cfg_(cfg),
      name_(std::move(name)),
      tags_(cfg),
      tr_(&sim.tracer()),
      pf_(&sim.profiler()),
      lat_(&sim.latency()),
      tbl_(proto::table_for(cfg.protocol)),
      tbl2_(cfg.hierarchy ? &proto::l2_table_for(cfg.protocol) : nullptr),
      cov_(&sim.proto_coverage_shard(node)) {
  // Controller spans land on the "cache" process track, one thread per
  // (node, sub-port) so a node's dcache and icache stay distinct.
  tr_->set_track_name(sim::Tracer::kPidCache, track_tid(), name_);
}

void CacheController::send_to_bank(sim::Addr addr, noc::Message m) {
  m.requester = node_;
  m.port = port_;
  // The home node serializes this block: its memory bank on a flat
  // platform, its address-interleaved shared L2 bank on a two-level one.
  net_.send(node_, map_.home_node_of(addr), m);
}

void CacheController::send_to_node(sim::NodeId dst, noc::Message m) {
  m.port = port_;
  net_.send(node_, dst, m);
}

std::uint64_t CacheController::read_line(const CacheLine& l, sim::Addr a,
                                         unsigned size) const {
  unsigned off = unsigned(a & (cfg_.block_bytes - 1));
  CCNOC_ASSERT(off + size <= cfg_.block_bytes, "access crosses a block boundary");
  std::uint64_t v = 0;
  std::memcpy(&v, l.data.data() + off, size);
  return v;
}

void CacheController::write_line(CacheLine& l, sim::Addr a, unsigned size,
                                 std::uint64_t v) {
  unsigned off = unsigned(a & (cfg_.block_bytes - 1));
  CCNOC_ASSERT(off + size <= cfg_.block_bytes, "access crosses a block boundary");
  std::memcpy(l.data.data() + off, &v, size);
}

}  // namespace ccnoc::cache
