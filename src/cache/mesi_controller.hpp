#pragma once

#include <unordered_map>

#include "cache/controller.hpp"

/// \file mesi_controller.hpp
/// Write-back MESI data cache (paper §4.1, Figure 1 right; Illinois [13]).
/// Stores require exclusivity: a hit in Shared issues an Upgrade (blocking,
/// 2 or 4 hops), a miss write-allocates with ReadExclusive (blocking, up to
/// 4 hops plus a non-blocking 2-hop victim write-back — the paper's Figure 2
/// six-hop sequence). Dirty blocks are written back on eviction through a
/// write-back buffer held until the bank acknowledges, which also serves
/// crossing Fetch requests.

namespace ccnoc::cache {

class MesiController final : public CacheController {
 public:
  MesiController(sim::Simulator& sim, noc::Network& net, const mem::AddressMap& map,
                 sim::NodeId node, std::uint8_t port, CacheConfig cfg, std::string name);

  AccessResult access(const MemAccess& a, std::uint64_t* hit_value,
                      CompleteFn on_complete) override;
  void on_packet(const noc::Packet& pkt) override;

  [[nodiscard]] bool idle() const override {
    return pending_ == Pending::kNone && wb_buffer_.empty();
  }

  /// State of the line holding \p addr's block (kInvalid if absent); for
  /// tests asserting Figure 1 transitions.
  [[nodiscard]] LineState line_state(sim::Addr addr) {
    CacheLine* l = tags_.find(tags_.block_of(addr));
    return l ? l->state : LineState::kInvalid;
  }

  /// Visit each block sitting in the write-back buffer (evicted dirty data
  /// in flight to its bank). The invariant walker exempts such blocks from
  /// its memory-vs-cache data comparison: bank storage is stale until the
  /// write-back lands.
  template <typename Fn>
  void for_each_writeback(Fn&& fn) const {
    for (const auto& [block, e] : wb_buffer_) fn(block);
  }

 private:
  enum class Pending {
    kNone,
    kWbSlot,    ///< miss deferred until a write-back buffer entry frees
    kResponse,  ///< waiting for ReadResponse / UpgradeAck
  };

  struct WbEntry {
    std::array<std::uint8_t, noc::kMaxBlockBytes> data{};
  };

  void start_miss(const MemAccess& a, CompleteFn cb);
  void launch_miss();
  void do_writeback(CacheLine& victim);

  void handle_read_response(const noc::Packet& pkt);
  void handle_upgrade_ack(const noc::Packet& pkt);
  void handle_invalidate(const noc::Packet& pkt);
  void handle_fetch(const noc::Packet& pkt, bool invalidate);
  void handle_writeback_ack(const noc::Packet& pkt);

  void finish_pending(CacheLine& l);

  std::unordered_map<sim::Addr, WbEntry> wb_buffer_;

  Pending pending_ = Pending::kNone;
  MemAccess pending_access_{};
  CompleteFn pending_cb_;
  CacheLine* pending_line_ = nullptr;  ///< victim (miss) or held S line (upgrade)
  bool pending_is_upgrade_ = false;

  // Direct-ack upgrades (paper §4.2 optimization): the upgrade is granted
  // once the memory response AND all sharers' direct acks have arrived.
  bool have_upgrade_ack_ = false;
  unsigned direct_acks_needed_ = 0;
  unsigned direct_acks_got_ = 0;
  noc::Message saved_upgrade_msg_{};
  void maybe_finish_direct_upgrade();

  /// Tracer transaction id of the pending miss/upgrade. The span opens when
  /// the access starts waiting, so write-back-slot waits are inside the
  /// measured latency. Write-backs carry their own id in the message.
  std::uint64_t pending_txn_ = 0;

  /// Typed stat handles, resolved once at construction (see CacheController).
  struct Stats {
    sim::Counter* load_hits;
    sim::Counter* load_misses;
    sim::Counter* silent_e_to_m;
    sim::Counter* store_hits_em;
    sim::Counter* store_hits_s;
    sim::Counter* store_misses;
    sim::Counter* wb_buffer_stalls;
    sim::Counter* writebacks;
    sim::Counter* upgrade_data_refills;
    sim::Counter* direct_ack_upgrades;
    sim::Counter* invalidations;
    sim::Counter* fetches;
    sim::Counter* fetch_invs;
    sim::Counter* fetch_misses;
    sim::Histogram* hops_read_miss;
    sim::Histogram* hops_write_miss;
    sim::Histogram* hops_write_hit_s;
  };
  Stats st_;
};

}  // namespace ccnoc::cache
