#include "verify/model.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "noc/message.hpp"

/// \file model.cpp
/// The abstract machine: one coherent block, N cache-line FSMs, a full-map
/// directory entry, the bank's transaction engine and per-(src,dst) FIFO
/// channels. Timing is erased — any in-flight message may be delivered
/// next — but message-level structure is kept exactly as bank.cpp and the
/// controllers implement it, including the races that structure creates
/// (write-backs crossing fetches, upgrade losers, stale presence bits,
/// §4.2 direct-acknowledgement rounds).
///
/// Data values are abstracted to write version numbers: every store is
/// assigned the next version at its serialization point, copies and memory
/// remember the version they hold, and versions are renormalized to a
/// canonical dense range after every step so the reachable set stays
/// finite while the "reads see the last write" ordering is preserved.

namespace ccnoc::verify {

using noc::Grant;
using noc::MsgType;
using proto::CacheEvent;
using proto::DirEvent;
using proto::DirState;
using proto::LineState;

namespace {

constexpr unsigned kMaxCaches = 4;
constexpr unsigned kMaxNodes = kMaxCaches + 1;  // + the bank
constexpr unsigned kChanDepth = 5;              // per-(src,dst) FIFO bound
constexpr unsigned kQCap = 8;                   // bank waiting-queue bound
constexpr std::uint8_t kNoOwner = 0xFE;
/// A write-through copy patched by the local store hit, waiting for its own
/// buffered write to serialize: its version is "my next write's", unknown
/// until the WriteAck returns.
constexpr std::uint8_t kOwnPending = 0xFF;

/// Cache-side pending-access states (the controllers' Pending enums).
enum class Pend : std::uint8_t {
  kNone,
  kLoadDrain,  // WT: load miss waiting for the write buffer to empty
  kLoadFill,   // read request in flight
  kStoreFill,  // MESI write-allocate (ReadExclusive) in flight
  kUpgrade,    // MESI upgrade in flight
  kSwapDrain,  // WT: atomic waiting for the write buffer to empty
  kSwap,       // WT: atomic in flight at the bank
};

const char* to_string(Pend p) {
  switch (p) {
    case Pend::kNone: return "-";
    case Pend::kLoadDrain: return "LoadDrain";
    case Pend::kLoadFill: return "LoadFill";
    case Pend::kStoreFill: return "StoreFill";
    case Pend::kUpgrade: return "Upgrade";
    case Pend::kSwapDrain: return "SwapDrain";
    case Pend::kSwap: return "Swap";
  }
  return "?";
}

/// One in-flight message (the model's noc::Message).
struct MMsg {
  MsgType type = MsgType::kReadShared;
  std::uint8_t ver = 0;        ///< data version carried (data-bearing types)
  std::uint8_t track = 0;      ///< kReadShared/kReadResponse: tracked read?
  std::uint8_t direct = 0;     ///< kInvalidate: ack straight to requester
  std::uint8_t had_copy = 0;   ///< kUpdateAck
  std::uint8_t has_data = 0;   ///< kFetchResponse/kUpgradeAck/kWriteBack
  std::uint8_t ack_count = 0;  ///< kWriteAck/kUpgradeAck: direct acks to collect
  std::uint8_t requester = 0;  ///< kInvalidate: direct-ack target
  Grant grant = Grant::kShared;
};

struct Chan {
  std::uint8_t n = 0;
  MMsg m[kChanDepth];
};

struct CacheSt {
  LineState line = LineState::kInvalid;
  std::uint8_t cv = 0;  ///< version held by the copy (kOwnPending: see above)
  Pend pend = Pend::kNone;
  // Write-through engine.
  std::uint8_t wbuf = 0;   ///< buffered stores
  std::uint8_t wsent = 0;  ///< head entry's WriteWord is in flight
  // MESI write-back buffer (one entry suffices for one block).
  std::uint8_t wb_entry = 0;
  std::uint8_t wb_ver = 0;
  // Direct-ack collection (requester side of a §4.2 round).
  std::uint8_t have_resp = 0;  ///< WriteAck/UpgradeAck with ack_count arrived
  std::uint8_t dneed = 0;
  std::uint8_t dgot = 0;
  std::uint8_t saved_ver = 0;       ///< WT: version of the completed write
  std::uint8_t saved_has_data = 0;  ///< MESI: UpgradeAck re-supplied the block
  std::uint8_t inv_seen = 0;        ///< fault injection: invalidations applied
};

struct QEnt {
  MsgType type = MsgType::kReadShared;
  std::uint8_t src = 0;
  std::uint8_t track = 0;
};

struct BankSt {
  std::uint8_t active = 0;
  MsgType req = MsgType::kReadShared;
  std::uint8_t src = 0;
  std::uint8_t rtrack = 0;
  std::uint8_t pending_acks = 0;
  std::uint8_t direct_mode = 0;
  std::uint8_t direct_acks = 0;
  std::uint8_t waiting_data = 0;
  std::uint8_t data_from = 0;
  std::uint8_t txn_ver = 0;  ///< version assigned to an active WriteWord/atomic
  /// Dangling FetchResponses to discard, per cache: when a WriteBack crosses
  /// a Fetch/FetchInv and is accepted as the fetch data, the cache's answer
  /// to the fetch itself is still on the wire. The sim drops it by txn-id
  /// mismatch; the model (which abstracts txn ids away) counts it instead —
  /// equivalent under per-flow FIFO, which delivers every dangling response
  /// before any genuine response to a newer fetch from the same cache.
  std::uint8_t stale_fetch[kMaxCaches] = {};
  std::uint8_t qlen = 0;
  QEnt q[kQCap];
};

struct DirSt {
  std::uint8_t presence = 0;
  std::uint8_t dirty = 0;
  std::uint8_t owner = kNoOwner;
};

struct State {
  CacheSt c[kMaxCaches];
  BankSt bank;
  DirSt dir;
  std::uint8_t mem_ver = 0;
  std::uint8_t latest = 0;      ///< version of the last serialized write
  std::uint8_t untracked = 0;   ///< untracked (icache-style) reads in flight
  std::uint8_t fault_fired = 0;
  Chan ch[kMaxNodes][kMaxNodes];
};

std::string node_name(unsigned n, unsigned num_caches) {
  if (n < num_caches) return "cache" + std::to_string(n);
  return "bank";
}

/// Zero the fields a message's type does not use, so states differing only
/// in dead payload bits hash equal.
void canon_msg(MMsg& m) {
  MMsg out;
  out.type = m.type;
  switch (m.type) {
    case MsgType::kReadShared:
      out.track = m.track;
      break;
    case MsgType::kWriteBack:
      out.ver = m.ver;
      out.has_data = 1;
      break;
    case MsgType::kReadResponse:
      out.grant = m.grant;
      out.track = m.track;
      // grant=M responses feed a store whose value supersedes the fill.
      out.ver = m.grant == Grant::kModified ? std::uint8_t(0) : m.ver;
      out.has_data = 1;
      break;
    case MsgType::kUpgradeAck:
      out.ack_count = m.ack_count;
      out.has_data = m.has_data;
      break;
    case MsgType::kWriteAck:
      out.ver = m.ver;
      out.ack_count = m.ack_count;
      break;
    case MsgType::kInvalidate:
      out.direct = m.direct;
      out.requester = m.direct ? m.requester : std::uint8_t(0);
      break;
    case MsgType::kUpdateWord:
      out.ver = m.ver;
      break;
    case MsgType::kUpdateAck:
      out.had_copy = m.had_copy;
      break;
    case MsgType::kFetchResponse:
      out.has_data = m.has_data;
      out.ver = m.has_data ? m.ver : std::uint8_t(0);
      break;
    default:  // kReadExclusive, kUpgrade, kWriteWord, atomics, acks, TxnDone
      break;
  }
  m = out;
}

/// Canonicalize: zero dead fields, then remap every live version through an
/// order-preserving dense renumbering (kOwnPending is a sentinel, kept).
void canonicalize(State& s, const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  const unsigned nodes = nc + 1;

  for (unsigned i = nc; i < kMaxCaches; ++i) s.c[i] = CacheSt{};
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    if (c.line == LineState::kInvalid) c.cv = 0;
    if (c.wb_entry == 0) c.wb_ver = 0;
    if (c.have_resp == 0) {
      c.saved_ver = 0;
      c.saved_has_data = 0;
      c.dneed = 0;
    }
  }
  BankSt& b = s.bank;
  if (b.active == 0) {
    MsgType t0 = MsgType::kReadShared;
    b.req = t0;
    b.src = b.rtrack = b.pending_acks = 0;
    b.direct_mode = b.direct_acks = 0;
    b.waiting_data = b.data_from = b.txn_ver = 0;
  } else {
    if (b.waiting_data == 0) b.data_from = 0;
    if (b.req != MsgType::kWriteWord && b.req != MsgType::kAtomicSwap) {
      b.txn_ver = 0;
    }
  }
  for (unsigned i = b.qlen; i < kQCap; ++i) b.q[i] = QEnt{};
  if (s.dir.dirty == 0) s.dir.owner = kNoOwner;

  for (unsigned a = 0; a < kMaxNodes; ++a) {
    for (unsigned d = 0; d < kMaxNodes; ++d) {
      Chan& ch = s.ch[a][d];
      if (a >= nodes || d >= nodes) ch = Chan{};
      for (unsigned k = 0; k < kChanDepth; ++k) {
        if (k < ch.n) {
          canon_msg(ch.m[k]);
        } else {
          ch.m[k] = MMsg{};
        }
      }
    }
  }

  // Version renormalization. Collect every live version field, remap the
  // distinct values (minus the sentinel) to 0..k-1 preserving order.
  std::uint8_t* fields[64];
  unsigned nf = 0;
  auto live = [&](std::uint8_t& v) { fields[nf++] = &v; };
  live(s.mem_ver);
  live(s.latest);
  if (b.active != 0 &&
      (b.req == MsgType::kWriteWord || b.req == MsgType::kAtomicSwap)) {
    live(b.txn_ver);
  }
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    if (c.line != LineState::kInvalid && c.cv != kOwnPending) live(c.cv);
    if (c.wb_entry != 0) live(c.wb_ver);
    if (c.have_resp != 0) live(c.saved_ver);
  }
  for (unsigned a = 0; a < nodes; ++a) {
    for (unsigned d = 0; d < nodes; ++d) {
      Chan& ch = s.ch[a][d];
      for (unsigned k = 0; k < ch.n; ++k) {
        MMsg& m = ch.m[k];
        switch (m.type) {
          case MsgType::kWriteBack:
          case MsgType::kWriteAck:
          case MsgType::kUpdateWord:
            live(m.ver);
            break;
          case MsgType::kReadResponse:
            if (m.grant != Grant::kModified) live(m.ver);
            break;
          case MsgType::kFetchResponse:
            if (m.has_data != 0) live(m.ver);
            break;
          default:
            break;
        }
      }
    }
  }

  std::uint8_t vals[64];
  unsigned nv = 0;
  for (unsigned i = 0; i < nf; ++i) vals[nv++] = *fields[i];
  std::sort(vals, vals + nv);
  nv = unsigned(std::unique(vals, vals + nv) - vals);
  for (unsigned i = 0; i < nf; ++i) {
    *fields[i] = std::uint8_t(std::lower_bound(vals, vals + nv, *fields[i]) - vals);
  }
}

void put(std::string& out, std::uint8_t v) { out.push_back(char(v)); }

std::string encode(const State& s, const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  const unsigned nodes = nc + 1;
  std::string out;
  out.reserve(64);
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    put(out, std::uint8_t(c.line));
    put(out, c.cv);
    put(out, std::uint8_t(c.pend));
    put(out, c.wbuf);
    put(out, c.wsent);
    put(out, c.wb_entry);
    put(out, c.wb_ver);
    put(out, c.have_resp);
    put(out, c.dneed);
    put(out, c.dgot);
    put(out, c.saved_ver);
    put(out, c.saved_has_data);
    put(out, c.inv_seen);
  }
  const BankSt& b = s.bank;
  put(out, b.active);
  put(out, std::uint8_t(b.req));
  put(out, b.src);
  put(out, b.rtrack);
  put(out, b.pending_acks);
  put(out, b.direct_mode);
  put(out, b.direct_acks);
  put(out, b.waiting_data);
  put(out, b.data_from);
  put(out, b.txn_ver);
  for (unsigned i = 0; i < nc; ++i) put(out, b.stale_fetch[i]);
  put(out, b.qlen);
  for (unsigned i = 0; i < b.qlen; ++i) {
    put(out, std::uint8_t(b.q[i].type));
    put(out, b.q[i].src);
    put(out, b.q[i].track);
  }
  put(out, s.dir.presence);
  put(out, s.dir.dirty);
  put(out, s.dir.owner);
  put(out, s.mem_ver);
  put(out, s.latest);
  put(out, s.untracked);
  put(out, s.fault_fired);
  for (unsigned a = 0; a < nodes; ++a) {
    for (unsigned d = 0; d < nodes; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      put(out, std::uint8_t(a));
      put(out, std::uint8_t(d));
      put(out, ch.n);
      for (unsigned k = 0; k < ch.n; ++k) {
        const MMsg& m = ch.m[k];
        put(out, std::uint8_t(m.type));
        put(out, m.ver);
        put(out, m.track);
        put(out, m.direct);
        put(out, m.had_copy);
        put(out, m.has_data);
        put(out, m.ack_count);
        put(out, m.requester);
        put(out, std::uint8_t(m.grant));
      }
    }
  }
  return out;
}

State decode(const std::string& k, const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  State s;
  std::size_t p = 0;
  auto get = [&]() { return std::uint8_t(k[p++]); };
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    c.line = LineState(get());
    c.cv = get();
    c.pend = Pend(get());
    c.wbuf = get();
    c.wsent = get();
    c.wb_entry = get();
    c.wb_ver = get();
    c.have_resp = get();
    c.dneed = get();
    c.dgot = get();
    c.saved_ver = get();
    c.saved_has_data = get();
    c.inv_seen = get();
  }
  BankSt& b = s.bank;
  b.active = get();
  b.req = MsgType(get());
  b.src = get();
  b.rtrack = get();
  b.pending_acks = get();
  b.direct_mode = get();
  b.direct_acks = get();
  b.waiting_data = get();
  b.data_from = get();
  b.txn_ver = get();
  for (unsigned i = 0; i < nc; ++i) b.stale_fetch[i] = get();
  b.qlen = get();
  for (unsigned i = 0; i < b.qlen; ++i) {
    b.q[i].type = MsgType(get());
    b.q[i].src = get();
    b.q[i].track = get();
  }
  s.dir.presence = get();
  s.dir.dirty = get();
  s.dir.owner = get();
  s.mem_ver = get();
  s.latest = get();
  s.untracked = get();
  s.fault_fired = get();
  while (p < k.size()) {
    unsigned a = get();
    unsigned d = get();
    Chan& ch = s.ch[a][d];
    ch.n = get();
    for (unsigned q = 0; q < ch.n; ++q) {
      MMsg& m = ch.m[q];
      m.type = MsgType(get());
      m.ver = get();
      m.track = get();
      m.direct = get();
      m.had_copy = get();
      m.has_data = get();
      m.ack_count = get();
      m.requester = get();
      m.grant = Grant(get());
    }
  }
  return s;
}

std::string ver_name(std::uint8_t v) {
  if (v == kOwnPending) return "own-pending";
  return "v" + std::to_string(v);
}

/// Pretty-print a state for counterexample reports.
std::string dump_state(const State& s, const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  std::ostringstream os;
  os << "  mem=" << ver_name(s.mem_ver) << " latest=" << ver_name(s.latest);
  os << " dir={presence=";
  for (unsigned i = 0; i < nc; ++i) os << ((s.dir.presence >> i) & 1u);
  os << (s.dir.dirty != 0 ? " dirty" : " clean");
  if (s.dir.owner != kNoOwner) os << " owner=cache" << unsigned(s.dir.owner);
  os << "}\n";
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    os << "  cache" << i << ": " << proto::to_string(c.line);
    if (c.line != LineState::kInvalid) os << "(" << ver_name(c.cv) << ")";
    if (c.pend != Pend::kNone) os << " pend=" << to_string(c.pend);
    if (c.wbuf != 0) {
      os << " wbuf=" << unsigned(c.wbuf) << (c.wsent != 0 ? "*" : "");
    }
    if (c.wb_entry != 0) os << " wb(" << ver_name(c.wb_ver) << ")";
    if (c.have_resp != 0 || c.dgot != 0) {
      os << " direct-acks=" << unsigned(c.dgot) << "/" << unsigned(c.dneed)
         << (c.have_resp != 0 ? "+resp" : "");
    }
    os << "\n";
  }
  const BankSt& b = s.bank;
  if (b.active != 0) {
    os << "  bank: " << noc::to_string(b.req) << " from cache"
       << unsigned(b.src);
    if (b.pending_acks != 0) os << " acks=" << unsigned(b.pending_acks);
    if (b.waiting_data != 0) os << " fetching<-cache" << unsigned(b.data_from);
    if (b.direct_mode != 0) os << " direct-held";
    if (b.qlen != 0) os << " queued=" << unsigned(b.qlen);
    os << "\n";
  }
  for (unsigned a = 0; a <= nc; ++a) {
    for (unsigned d = 0; d <= nc; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      os << "  " << node_name(a, nc) << "->" << node_name(d, nc) << ":";
      for (unsigned k = 0; k < ch.n; ++k) {
        os << " " << noc::to_string(ch.m[k].type);
      }
      os << "\n";
    }
  }
  return os.str();
}

/// Quiescent: no message, request, pending access or buffered write in
/// flight anywhere. Deadlock-freedom asks that every reachable state can
/// still reach one of these.
bool is_quiescent(const State& s, const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  if (s.bank.active != 0 || s.bank.qlen != 0 || s.untracked != 0) return false;
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    if (c.pend != Pend::kNone || c.wbuf != 0 || c.wsent != 0 ||
        c.wb_entry != 0 || c.have_resp != 0 || c.dgot != 0 ||
        s.bank.stale_fetch[i] != 0) {
      return false;
    }
  }
  for (unsigned a = 0; a <= nc; ++a) {
    for (unsigned d = 0; d <= nc; ++d) {
      if (s.ch[a][d].n != 0) return false;
    }
  }
  return true;
}

/// Applies one action to a copy of a state, mirroring bank.cpp /
/// wti_controller.cpp / mesi_controller.cpp decision-for-decision. Every
/// FSM move goes through the shared declarative tables; an undeclared move
/// is recorded as a divergence failure instead of a successor.
struct Stepper {
  const ModelConfig& cfg;
  const proto::ProtocolTable& tbl;
  proto::CoverageSet& cov;
  State st;
  bool failed = false;
  std::string frule;
  std::string fdetail;

  unsigned nc;
  std::uint8_t bank_id;
  bool mesi;
  bool wtu;

  Stepper(const ModelConfig& c, const proto::ProtocolTable& t,
          proto::CoverageSet& cv, const State& s)
      : cfg(c), tbl(t), cov(cv), st(s), nc(c.num_caches),
        bank_id(std::uint8_t(c.num_caches)),
        mesi(c.protocol == mem::Protocol::kWbMesi),
        wtu(c.protocol == mem::Protocol::kWtu) {}

  void fail(const char* rule, std::string detail) {
    if (!failed) {
      failed = true;
      frule = rule;
      fdetail = std::move(detail);
    }
  }

  void send(unsigned src, unsigned dst, const MMsg& m) {
    Chan& ch = st.ch[src][dst];
    if (ch.n >= kChanDepth) {
      fail("model-bound", "channel " + node_name(src, nc) + "->" +
                              node_name(dst, nc) + " exceeded depth " +
                              std::to_string(kChanDepth));
      return;
    }
    ch.m[ch.n++] = m;
  }

  /// Route a cache-line event through the protocol table.
  void cfsm(unsigned c, CacheEvent ev) {
    int id = tbl.find_cache(st.c[c].line, ev);
    if (id < 0) {
      fail("undeclared-transition",
           std::string(mem::to_string(cfg.protocol)) + " cache: " +
               proto::to_string(st.c[c].line) + " --" + proto::to_string(ev) +
               "--> has no declared row (cache" + std::to_string(c) + ")");
      return;
    }
    cov.record(id);
    st.c[c].line = tbl.cache_to(id);
  }

  // ---- directory (full-map entry, Directory's exact semantics) ----

  [[nodiscard]] DirState dstate() const {
    return proto::dir_state(st.dir.presence != 0, st.dir.dirty != 0);
  }

  void devent(DirState before, DirEvent ev) {
    int id = tbl.find_dir(before, ev, dstate());
    if (id < 0) {
      fail("undeclared-transition",
           std::string(mem::to_string(cfg.protocol)) + " directory: " +
               proto::to_string(before) + " --" + proto::to_string(ev) +
               "--> " + proto::to_string(dstate()) + " has no declared row");
      return;
    }
    cov.record(id);
  }

  void dir_remove(unsigned c) {
    st.dir.presence &= std::uint8_t(~(1u << c));
    if (st.dir.dirty != 0 && st.dir.owner == c) {
      st.dir.dirty = 0;
      st.dir.owner = kNoOwner;
    }
  }
  void dir_add(unsigned c) { st.dir.presence |= std::uint8_t(1u << c); }
  void dir_set_exclusive(unsigned c) {
    st.dir.presence = std::uint8_t(1u << c);
    st.dir.dirty = 1;
    st.dir.owner = std::uint8_t(c);
  }
  void dir_clear_dirty() {
    st.dir.dirty = 0;
    st.dir.owner = kNoOwner;
  }
  /// Directory::clear_all_except(keep): drop every bit but keep's.
  void dir_clear_all_except(unsigned keep) {
    std::uint8_t mask = std::uint8_t(st.dir.presence & (1u << keep));
    st.dir.presence = mask;
    if (mask == 0 || st.dir.owner != keep) {
      st.dir.dirty = 0;
      st.dir.owner = kNoOwner;
    }
  }
  void dir_clear_all() {
    st.dir = DirSt{};
  }
  [[nodiscard]] bool dir_is_sharer(unsigned c) const {
    return (st.dir.presence >> c) & 1u;
  }
  /// Presence bits excluding \p except (kMaxCaches = none).
  [[nodiscard]] std::uint8_t dir_targets(unsigned except) const {
    std::uint8_t m = st.dir.presence;
    if (except < kMaxCaches) m &= std::uint8_t(~(1u << except));
    return m;
  }

  std::uint8_t new_version() {
    if (st.latest >= 200) {
      fail("model-bound", "version counter overflow (renormalization bug)");
      return st.latest;
    }
    return ++st.latest;
  }

  // ---- CPU-side actions (the nondeterministic environment) ----

  void do_load_miss(unsigned c) {
    CacheSt& cc = st.c[c];
    if (!mesi && cc.wbuf != 0) {
      cc.pend = Pend::kLoadDrain;  // drain-on-load-miss (SC ordering)
      return;
    }
    cc.pend = Pend::kLoadFill;
    MMsg m;
    m.type = MsgType::kReadShared;
    m.track = 1;
    send(c, bank_id, m);
  }

  void do_store(unsigned c) {
    CacheSt& cc = st.c[c];
    if (!mesi) {
      // Write-through: non-blocking store through the write buffer.
      if (cc.line != LineState::kInvalid) {
        cfsm(c, CacheEvent::kStoreHit);
        cc.cv = kOwnPending;  // patched locally; version known at WriteAck
      }
      ++cc.wbuf;
      if (cc.wsent == 0) {
        cc.wsent = 1;
        MMsg m;
        m.type = MsgType::kWriteWord;
        send(c, bank_id, m);
      }
      return;
    }
    if (cc.line == LineState::kExclusive || cc.line == LineState::kModified) {
      cfsm(c, CacheEvent::kStoreHit);  // silent E->M / M store hit
      cc.cv = new_version();
      return;
    }
    if (cc.line == LineState::kShared) {
      cc.pend = Pend::kUpgrade;
      MMsg m;
      m.type = MsgType::kUpgrade;
      send(c, bank_id, m);
      return;
    }
    cc.pend = Pend::kStoreFill;  // write-allocate
    MMsg m;
    m.type = MsgType::kReadExclusive;
    send(c, bank_id, m);
  }

  void do_atomic(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.line != LineState::kInvalid) cfsm(c, CacheEvent::kAtomicIssue);
    if (cc.wbuf != 0) {
      cc.pend = Pend::kSwapDrain;
      return;
    }
    cc.pend = Pend::kSwap;
    MMsg m;
    m.type = MsgType::kAtomicSwap;
    send(c, bank_id, m);
  }

  void do_evict(unsigned c) {
    cfsm(c, CacheEvent::kEvict);  // silent clean eviction
  }

  void do_evict_dirty(unsigned c) {
    CacheSt& cc = st.c[c];
    cfsm(c, CacheEvent::kEvictDirty);
    cc.wb_entry = 1;
    cc.wb_ver = cc.cv;
    MMsg m;
    m.type = MsgType::kWriteBack;
    m.ver = cc.cv;
    m.has_data = 1;
    send(c, bank_id, m);
  }

  void do_untracked_read() {
    ++st.untracked;
    MMsg m;
    m.type = MsgType::kReadShared;
    m.track = 0;
    send(0, bank_id, m);
  }

  // ---- bank side (bank.cpp) ----

  void bank_request(MsgType type, unsigned src, bool track) {
    if (st.bank.active != 0) {
      if (st.bank.qlen >= kQCap) {
        fail("model-bound", "bank waiting queue exceeded " + std::to_string(kQCap));
        return;
      }
      QEnt& q = st.bank.q[st.bank.qlen++];
      q.type = type;
      q.src = std::uint8_t(src);
      q.track = track ? 1 : 0;
      return;
    }
    start_service(type, src, track);
  }

  void start_service(MsgType type, unsigned src, bool track) {
    BankSt& b = st.bank;
    b.active = 1;
    b.req = type;
    b.src = std::uint8_t(src);
    b.rtrack = track ? 1 : 0;
    switch (type) {
      case MsgType::kReadShared: process_read_shared(); break;
      case MsgType::kReadExclusive: process_read_exclusive(); break;
      case MsgType::kUpgrade: process_upgrade(); break;
      case MsgType::kWriteWord:
      case MsgType::kAtomicSwap: process_write_word(); break;
      default:
        fail("model-internal", "bad queued request");
    }
  }

  void respond(MsgType type, MMsg m) {
    m.type = type;
    m.ack_count = st.bank.direct_acks;
    send(bank_id, st.bank.src, m);
  }

  void complete_txn() {
    BankSt& b = st.bank;
    b.active = 0;
    b.pending_acks = 0;
    b.direct_mode = 0;
    b.direct_acks = 0;
    b.waiting_data = 0;
    b.txn_ver = 0;
    if (b.qlen == 0 || failed) return;
    QEnt next = b.q[0];
    for (unsigned i = 1; i < b.qlen; ++i) b.q[i - 1] = b.q[i];
    --b.qlen;
    start_service(next.type, next.src, next.track != 0);
  }

  void process_read_shared() {
    BankSt& b = st.bank;
    if (b.rtrack != 0 && st.dir.dirty != 0 && st.dir.owner == b.src) {
      // Recorded owner misses: it silently evicted a clean Exclusive copy
      // (a Modified one's write-back precedes this read in FIFO order).
      // Untracked reads say nothing about the owner's dcache copy and must
      // fetch from it instead (mirrors the track guard in bank.cpp).
      DirState before = dstate();
      dir_remove(b.src);
      devent(before, DirEvent::kSharerDrop);
    }
    if (st.dir.dirty != 0) {
      request_fetch(MsgType::kFetch);
      return;
    }
    MMsg resp;
    resp.ver = st.mem_ver;
    resp.track = b.rtrack;
    resp.has_data = 1;
    DirState before = dstate();
    if (b.rtrack == 0) {
      resp.grant = Grant::kShared;  // untracked instruction fetch
    } else if (mesi && st.dir.presence == 0) {
      resp.grant = Grant::kExclusive;
      dir_set_exclusive(b.src);
    } else {
      resp.grant = Grant::kShared;
      dir_add(b.src);
    }
    devent(before, b.rtrack != 0 ? DirEvent::kReadShared : DirEvent::kReadUntracked);
    respond(MsgType::kReadResponse, resp);
    complete_txn();
  }

  void process_read_exclusive() {
    BankSt& b = st.bank;
    if (st.dir.dirty != 0 && st.dir.owner != b.src) {
      request_fetch(MsgType::kFetchInv);
      return;
    }
    if (dir_targets(b.src) != 0) {
      send_invalidations(b.src);
      return;
    }
    on_acks_complete();
  }

  void process_upgrade() {
    BankSt& b = st.bank;
    if (!dir_is_sharer(b.src) && st.dir.dirty != 0 && st.dir.owner != b.src) {
      // The requester lost its copy to a racing owner: full write-allocate.
      request_fetch(MsgType::kFetchInv);
      return;
    }
    if (dir_targets(b.src) != 0) {
      send_invalidations(b.src);
      return;
    }
    on_acks_complete();
  }

  void process_write_word() {
    BankSt& b = st.bank;
    b.txn_ver = new_version();  // this write's serialization slot
    // An atomic invalidates/updates the requester's own copy too (it was
    // dropped locally at issue).
    unsigned except = b.req == MsgType::kWriteWord ? b.src : kMaxCaches;
    if (dir_targets(except) != 0) {
      if (wtu) {
        send_updates(except);
      } else {
        send_invalidations(except);
      }
      return;
    }
    on_acks_complete();
  }

  void send_updates(unsigned except) {
    BankSt& b = st.bank;
    std::uint8_t targets = dir_targets(except);
    b.pending_acks = std::uint8_t(__builtin_popcount(targets));
    for (unsigned c = 0; c < nc; ++c) {
      if (((targets >> c) & 1u) == 0) continue;
      MMsg u;
      u.type = MsgType::kUpdateWord;
      u.ver = b.txn_ver;
      send(bank_id, c, u);
    }
  }

  void send_invalidations(unsigned except) {
    BankSt& b = st.bank;
    std::uint8_t targets = dir_targets(except);
    const bool direct = cfg.direct_ack && (b.req == MsgType::kWriteWord ||
                                           b.req == MsgType::kUpgrade);
    if (direct) {
      b.direct_mode = 1;
      b.direct_acks = std::uint8_t(__builtin_popcount(targets));
    } else {
      b.pending_acks = std::uint8_t(__builtin_popcount(targets));
    }
    for (unsigned c = 0; c < nc; ++c) {
      if (((targets >> c) & 1u) == 0) continue;
      MMsg inv;
      inv.type = MsgType::kInvalidate;
      inv.direct = direct ? 1 : 0;
      inv.requester = b.src;
      send(bank_id, c, inv);
      if (direct) {
        // The ack will bypass the bank: unregister the sharer at send time.
        DirState before = dstate();
        dir_remove(c);
        devent(before, DirEvent::kSharerDrop);
      }
    }
    if (direct) on_acks_complete();  // respond now; block held until TxnDone
  }

  void request_fetch(MsgType fetch_type) {
    BankSt& b = st.bank;
    b.waiting_data = 1;
    b.data_from = st.dir.owner;
    MMsg f;
    f.type = fetch_type;
    send(bank_id, st.dir.owner, f);
  }

  void bank_invalidate_ack(unsigned src) {
    BankSt& b = st.bank;
    if (b.active == 0 || b.pending_acks == 0) {
      fail("model-internal", "stray InvalidateAck at the bank");
      return;
    }
    DirState before = dstate();
    dir_remove(src);
    devent(before, DirEvent::kSharerDrop);
    if (--b.pending_acks == 0) on_acks_complete();
  }

  void bank_update_ack(unsigned src, const MMsg& m) {
    BankSt& b = st.bank;
    if (b.active == 0 || b.pending_acks == 0) {
      fail("model-internal", "stray UpdateAck at the bank");
      return;
    }
    if (m.had_copy == 0) {
      // Stale presence bit: the sharer silently evicted.
      DirState before = dstate();
      dir_remove(src);
      devent(before, DirEvent::kSharerDrop);
    }
    if (--b.pending_acks == 0) on_acks_complete();
  }

  void bank_fetch_response(unsigned src, const MMsg& m) {
    BankSt& b = st.bank;
    if (b.stale_fetch[src] != 0) {
      // Answer to a fetch whose transaction a crossed WriteBack already
      // satisfied (the sim drops this by txn-id mismatch). FIFO delivers it
      // ahead of any genuine response to a newer fetch from this cache.
      --b.stale_fetch[src];
      return;
    }
    if (b.active == 0 || b.waiting_data == 0 || b.data_from != src) {
      return;  // the owner's WriteBack raced ahead; duplicate data dropped
    }
    on_data_arrived(m);
  }

  void bank_write_back(unsigned src, const MMsg& m) {
    BankSt& b = st.bank;
    MMsg ack;
    ack.type = MsgType::kWriteBackAck;
    if (b.active != 0 && b.waiting_data != 0 && b.data_from == src) {
      // The write-back crossed our fetch: accept it as the fetch data. The
      // cache will still answer the fetch itself — expect and discard it.
      ++b.stale_fetch[src];
      send(bank_id, src, ack);
      DirState before = dstate();
      dir_remove(src);
      devent(before, DirEvent::kWriteBack);
      on_data_arrived(m);
      return;
    }
    st.mem_ver = m.ver;
    DirState before = dstate();
    dir_remove(src);
    devent(before, DirEvent::kWriteBack);
    send(bank_id, src, ack);
  }

  void bank_txn_done(unsigned src) {
    if (st.bank.active == 0 || st.bank.direct_mode == 0 || st.bank.src != src) {
      fail("model-internal", "stray TxnDone at the bank");
      return;
    }
    complete_txn();
  }

  void on_data_arrived(const MMsg& data) {
    BankSt& b = st.bank;
    if (data.has_data != 0) st.mem_ver = data.ver;
    // has_data == 0: silently evicted clean Exclusive; memory already current.
    b.waiting_data = 0;
    DirState before = dstate();
    DirEvent ev = DirEvent::kReadShared;
    switch (b.req) {
      case MsgType::kReadShared: {
        dir_clear_dirty();
        if (b.rtrack != 0) dir_add(b.src);
        if (b.rtrack == 0) ev = DirEvent::kReadUntracked;
        MMsg resp;
        resp.grant = Grant::kShared;
        resp.ver = st.mem_ver;
        resp.track = b.rtrack;
        resp.has_data = 1;
        respond(MsgType::kReadResponse, resp);
        break;
      }
      case MsgType::kReadExclusive:
      case MsgType::kUpgrade: {
        dir_clear_all();
        dir_set_exclusive(b.src);
        ev = b.req == MsgType::kReadExclusive ? DirEvent::kReadExclusive
                                              : DirEvent::kUpgrade;
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.track = 1;
        resp.has_data = 1;
        respond(b.req == MsgType::kReadExclusive ? MsgType::kReadResponse
                                                 : MsgType::kUpgradeAck,
                resp);
        break;
      }
      default:
        fail("model-internal", "data arrived for a non-fetching transaction");
        return;
    }
    devent(before, ev);
    complete_txn();
  }

  void on_acks_complete() {
    BankSt& b = st.bank;
    DirState before = dstate();
    DirEvent ev = DirEvent::kReadExclusive;
    switch (b.req) {
      case MsgType::kWriteWord: {
        st.mem_ver = b.txn_ver;
        if (!wtu) dir_clear_all_except(b.src);
        ev = wtu ? DirEvent::kWriteUpdate : DirEvent::kWriteThrough;
        MMsg ack;
        ack.ver = b.txn_ver;
        respond(MsgType::kWriteAck, ack);
        break;
      }
      case MsgType::kAtomicSwap: {
        st.mem_ver = b.txn_ver;
        if (wtu) {
          dir_remove(b.src);
        } else {
          dir_clear_all();
        }
        ev = DirEvent::kAtomic;
        respond(MsgType::kSwapResponse, MMsg{});
        break;
      }
      case MsgType::kReadExclusive: {
        dir_clear_all();
        dir_set_exclusive(b.src);
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.track = 1;
        resp.has_data = 1;
        respond(MsgType::kReadResponse, resp);
        break;
      }
      case MsgType::kUpgrade: {
        const bool lost_copy = !dir_is_sharer(b.src);
        dir_clear_all();
        dir_set_exclusive(b.src);
        ev = DirEvent::kUpgrade;
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.has_data = lost_copy ? 1 : 0;  // re-supply the lost block
        respond(MsgType::kUpgradeAck, resp);
        break;
      }
      default:
        fail("model-internal", "acks completed for a bad transaction");
        return;
    }
    devent(before, ev);
    if (b.direct_mode != 0) return;  // held until the requester's TxnDone
    complete_txn();
  }

  // ---- cache side (wti_controller.cpp / mesi_controller.cpp) ----

  void cache_read_response(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (m.track == 0) {
      // Untracked (icache-style) read: consumed without installing.
      if (st.untracked == 0) {
        fail("model-internal", "untracked response with no read in flight");
        return;
      }
      --st.untracked;
      return;
    }
    if (!mesi) {
      if (cc.pend != Pend::kLoadFill) {
        fail("model-internal", "unexpected ReadResponse");
        return;
      }
      cfsm(c, CacheEvent::kFillShared);
      cc.cv = m.ver;
      cc.pend = Pend::kNone;
      return;
    }
    if (cc.pend != Pend::kLoadFill && cc.pend != Pend::kStoreFill) {
      fail("model-internal", "unexpected ReadResponse");
      return;
    }
    switch (m.grant) {
      case Grant::kShared: cfsm(c, CacheEvent::kFillShared); break;
      case Grant::kExclusive: cfsm(c, CacheEvent::kFillExclusive); break;
      case Grant::kModified: cfsm(c, CacheEvent::kFillModified); break;
    }
    cc.cv = m.ver;
    finish_pending(c);
  }

  /// MesiController::finish_pending — the store half (loads finished above).
  void finish_pending(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.pend == Pend::kStoreFill || cc.pend == Pend::kUpgrade) {
      if (cc.line == LineState::kInvalid) {
        cfsm(c, CacheEvent::kFillModified);  // upgrade lost its copy; re-filled
      } else if (cc.line == LineState::kShared) {
        cfsm(c, CacheEvent::kStoreUpgrade);
      } else {
        cfsm(c, CacheEvent::kStoreHit);  // E/M granted by the response
      }
      cc.cv = new_version();
    }
    cc.pend = Pend::kNone;
  }

  void cache_upgrade_ack(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (cc.pend != Pend::kUpgrade) {
      fail("model-internal", "unexpected UpgradeAck");
      return;
    }
    if (m.ack_count > 0) {
      cc.have_resp = 1;
      cc.dneed = m.ack_count;
      cc.saved_has_data = m.has_data;
      maybe_finish_direct_upgrade(c);
      return;
    }
    if (m.has_data == 0 && cc.line != LineState::kShared) {
      fail("undeclared-transition",
           "UpgradeAck without data reached a non-Shared line");
      return;
    }
    finish_pending(c);
  }

  void maybe_finish_direct_upgrade(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.have_resp == 0 || cc.dgot < cc.dneed) return;
    MMsg done;
    done.type = MsgType::kTxnDone;
    send(c, bank_id, done);
    if (cc.saved_has_data == 0 && cc.line != LineState::kShared) {
      fail("undeclared-transition",
           "direct UpgradeAck without data reached a non-Shared line");
      return;
    }
    cc.have_resp = 0;
    cc.dneed = 0;
    cc.dgot = 0;
    cc.saved_has_data = 0;
    finish_pending(c);
  }

  void cache_write_ack(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (cc.wsent == 0 || cc.wbuf == 0) {
      fail("model-internal", "stray WriteAck");
      return;
    }
    if (m.ack_count > 0) {
      cc.have_resp = 1;
      cc.dneed = m.ack_count;
      cc.saved_ver = m.ver;
      maybe_finish_direct_write(c);
      return;
    }
    pop_write_buffer(c, m.ver);
  }

  void maybe_finish_direct_write(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.have_resp == 0 || cc.dgot < cc.dneed) return;
    MMsg done;
    done.type = MsgType::kTxnDone;
    send(c, bank_id, done);
    std::uint8_t ver = cc.saved_ver;
    cc.have_resp = 0;
    cc.dneed = 0;
    cc.dgot = 0;
    cc.saved_ver = 0;
    pop_write_buffer(c, ver);
  }

  /// WriteAck bookkeeping shared by the plain and §4.2 direct paths: pop
  /// the acknowledged entry, resolve an own-pending copy version once the
  /// buffer empties, then restart the drain or a drained-blocked access.
  void pop_write_buffer(unsigned c, std::uint8_t ver) {
    CacheSt& cc = st.c[c];
    --cc.wbuf;
    cc.wsent = 0;
    if (cc.wbuf == 0 && cc.line != LineState::kInvalid &&
        cc.cv == kOwnPending) {
      cc.cv = ver;  // the copy now holds exactly this write's value
    }
    if (cc.wbuf > 0) {
      cc.wsent = 1;
      MMsg m;
      m.type = MsgType::kWriteWord;
      send(c, bank_id, m);
    } else if (cc.pend == Pend::kLoadDrain) {
      cc.pend = Pend::kLoadFill;
      MMsg m;
      m.type = MsgType::kReadShared;
      m.track = 1;
      send(c, bank_id, m);
    } else if (cc.pend == Pend::kSwapDrain) {
      cc.pend = Pend::kSwap;
      MMsg m;
      m.type = MsgType::kAtomicSwap;
      send(c, bank_id, m);
    }
  }

  void cache_swap_response(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.pend != Pend::kSwap) {
      fail("model-internal", "unexpected SwapResponse");
      return;
    }
    cc.pend = Pend::kNone;
  }

  void cache_invalidate(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (cc.line != LineState::kInvalid) {
      if (mesi && cc.line != LineState::kShared) {
        fail("undeclared-transition", "Invalidate reached a non-Shared line");
        return;
      }
      const bool skip = cfg.fault_skip_invalidate && c == cfg.fault_cache &&
                        cc.inv_seen == cfg.fault_after;
      if (cfg.fault_skip_invalidate && c == cfg.fault_cache) ++cc.inv_seen;
      if (skip) {
        st.fault_fired = 1;  // the copy survives; the ack still goes out
      } else {
        cfsm(c, CacheEvent::kInvalidate);
      }
    }
    // Always acknowledge (the directory may hold a stale presence bit);
    // §4.2 rounds acknowledge straight to the requester.
    MMsg ack;
    ack.type = MsgType::kInvalidateAck;
    send(c, m.direct != 0 ? m.requester : bank_id, ack);
  }

  void cache_update(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    MMsg ack;
    ack.type = MsgType::kUpdateAck;
    if (cc.line != LineState::kInvalid) {
      // Patch in place — unless our own still-buffered store covers the
      // word, in which case the bank will serialize ours after this write
      // and patching would go backwards.
      if (cc.wbuf == 0) cc.cv = m.ver;
      cfsm(c, CacheEvent::kUpdate);
      ack.had_copy = 1;
    } else {
      ack.had_copy = 0;  // stale presence bit
    }
    send(c, bank_id, ack);
  }

  void cache_fetch(unsigned c, bool invalidate) {
    CacheSt& cc = st.c[c];
    MMsg resp;
    resp.type = MsgType::kFetchResponse;
    if (cc.line != LineState::kInvalid) {
      if (cc.line != LineState::kModified && cc.line != LineState::kExclusive) {
        fail("undeclared-transition", "Fetch reached a non-owned line");
        return;
      }
      resp.has_data = 1;
      resp.ver = cc.cv;
      cfsm(c, invalidate ? CacheEvent::kFetchInv : CacheEvent::kFetch);
    } else if (cc.wb_entry != 0) {
      // Serve from the write-back buffer; the bank reconciles duplicates.
      resp.has_data = 1;
      resp.ver = cc.wb_ver;
    } else {
      resp.has_data = 0;  // silently evicted clean E; memory is current
    }
    send(c, bank_id, resp);
  }

  void cache_writeback_ack(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.wb_entry == 0) {
      fail("model-internal", "WriteBackAck without a write-back in flight");
      return;
    }
    cc.wb_entry = 0;
    cc.wb_ver = 0;
  }

  void cache_direct_inval_ack(unsigned c) {
    CacheSt& cc = st.c[c];
    const bool wt_round = !mesi && cc.wsent != 0;
    const bool mesi_round = mesi && cc.pend == Pend::kUpgrade;
    if (!wt_round && !mesi_round) {
      fail("model-internal", "direct InvalidateAck with no round open");
      return;
    }
    ++cc.dgot;
    if (mesi_round) {
      maybe_finish_direct_upgrade(c);
    } else {
      maybe_finish_direct_write(c);
    }
  }

  // ---- dispatch ----

  void deliver(unsigned src, unsigned dst) {
    Chan& ch = st.ch[src][dst];
    MMsg m = ch.m[0];
    for (unsigned i = 1; i < ch.n; ++i) ch.m[i - 1] = ch.m[i];
    ch.m[--ch.n] = MMsg{};
    if (dst == bank_id) {
      switch (m.type) {
        case MsgType::kReadShared:
        case MsgType::kReadExclusive:
        case MsgType::kUpgrade:
        case MsgType::kWriteWord:
        case MsgType::kAtomicSwap:
          bank_request(m.type, src, m.track != 0);
          break;
        case MsgType::kWriteBack: bank_write_back(src, m); break;
        case MsgType::kInvalidateAck: bank_invalidate_ack(src); break;
        case MsgType::kUpdateAck: bank_update_ack(src, m); break;
        case MsgType::kFetchResponse: bank_fetch_response(src, m); break;
        case MsgType::kTxnDone: bank_txn_done(src); break;
        default:
          fail("model-internal", std::string("bank received ") +
                                     noc::to_string(m.type));
      }
      return;
    }
    switch (m.type) {
      case MsgType::kReadResponse: cache_read_response(dst, m); break;
      case MsgType::kUpgradeAck: cache_upgrade_ack(dst, m); break;
      case MsgType::kWriteAck: cache_write_ack(dst, m); break;
      case MsgType::kSwapResponse: cache_swap_response(dst); break;
      case MsgType::kInvalidate: cache_invalidate(dst, m); break;
      case MsgType::kUpdateWord: cache_update(dst, m); break;
      case MsgType::kFetch: cache_fetch(dst, false); break;
      case MsgType::kFetchInv: cache_fetch(dst, true); break;
      case MsgType::kWriteBackAck: cache_writeback_ack(dst); break;
      case MsgType::kInvalidateAck: cache_direct_inval_ack(dst); break;
      default:
        fail("model-internal", std::string("cache received ") +
                                   noc::to_string(m.type));
    }
  }

  void apply(const Action& a) {
    switch (a.kind) {
      case Action::Kind::kLoadMiss: do_load_miss(a.cache); break;
      case Action::Kind::kStore: do_store(a.cache); break;
      case Action::Kind::kAtomic: do_atomic(a.cache); break;
      case Action::Kind::kEvict: do_evict(a.cache); break;
      case Action::Kind::kEvictDirty: do_evict_dirty(a.cache); break;
      case Action::Kind::kUntrackedRead: do_untracked_read(); break;
      case Action::Kind::kDeliver: deliver(a.src, a.dst); break;
    }
  }
};

/// Enumerate the actions enabled in \p s (the CPU nondeterminism plus every
/// deliverable channel head).
void enabled_actions(const State& s, const ModelConfig& cfg,
                     std::vector<Action>& out) {
  out.clear();
  const unsigned nc = cfg.num_caches;
  const bool mesi = cfg.protocol == mem::Protocol::kWbMesi;
  for (unsigned c = 0; c < nc; ++c) {
    const CacheSt& cc = s.c[c];
    if (cc.pend == Pend::kNone) {
      if (cc.line == LineState::kInvalid) {
        out.push_back({Action::Kind::kLoadMiss, std::uint8_t(c), 0, 0, 0, 0});
      }
      const bool wbuf_room = mesi || cc.wbuf < cfg.wbuf_depth;
      if (wbuf_room) {
        out.push_back({Action::Kind::kStore, std::uint8_t(c), 0, 0, 0, 0});
      }
      if (!mesi) {
        out.push_back({Action::Kind::kAtomic, std::uint8_t(c), 0, 0, 0, 0});
      }
      if (cc.line == LineState::kShared || cc.line == LineState::kExclusive) {
        out.push_back({Action::Kind::kEvict, std::uint8_t(c), 0, 0, 0, 0});
      }
      if (cc.line == LineState::kModified && cc.wb_entry == 0) {
        out.push_back({Action::Kind::kEvictDirty, std::uint8_t(c), 0, 0, 0, 0});
      }
    }
  }
  if (cfg.untracked_reads && s.untracked == 0) {
    out.push_back({Action::Kind::kUntrackedRead, 0, 0, 0, 0, 0});
  }
  for (unsigned a = 0; a <= nc; ++a) {
    for (unsigned d = 0; d <= nc; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      out.push_back({Action::Kind::kDeliver, 0, std::uint8_t(ch.m[0].type),
                     std::uint8_t(a), std::uint8_t(d), ch.m[0].ver});
    }
  }
}

/// True if a message of type \p t is in flight from the bank to cache \p c.
bool in_flight_to(const State& s, unsigned bank, unsigned c, MsgType t) {
  const Chan& ch = s.ch[bank][c];
  for (unsigned k = 0; k < ch.n; ++k) {
    if (ch.m[k].type == t) return true;
  }
  return false;
}

/// Point-in-time safety invariants. Returns {rule, detail} or {nullptr, ""}.
std::pair<const char*, std::string> check_invariants(const State& s,
                                                     const ModelConfig& cfg) {
  const unsigned nc = cfg.num_caches;
  const unsigned bank = nc;
  const bool mesi = cfg.protocol == mem::Protocol::kWbMesi;

  if (mesi) {
    // Structural SWMR: an owned copy never coexists with any other copy.
    for (unsigned c = 0; c < nc; ++c) {
      if (s.c[c].line != LineState::kExclusive &&
          s.c[c].line != LineState::kModified) {
        continue;
      }
      for (unsigned o = 0; o < nc; ++o) {
        if (o != c && s.c[o].line != LineState::kInvalid) {
          return {"swmr", "cache" + std::to_string(c) + " holds " +
                              proto::to_string(s.c[c].line) + " while cache" +
                              std::to_string(o) + " holds a valid copy"};
        }
      }
      // Directory agreement: an owned line is recorded dirty with the right
      // owner and no foreign presence bit.
      if (s.dir.dirty == 0 || s.dir.owner != c ||
          s.dir.presence != (1u << c)) {
        return {"dir-agreement",
                "cache" + std::to_string(c) + " holds " +
                    proto::to_string(s.c[c].line) +
                    " but the directory does not record it as sole owner"};
      }
      // Data value: the owner's copy carries the last serialized write.
      if (s.c[c].cv != s.latest) {
        return {"data-value", "owner cache" + std::to_string(c) +
                                  " holds " + ver_name(s.c[c].cv) +
                                  " but the latest write is " +
                                  ver_name(s.latest)};
      }
    }
  }

  for (unsigned c = 0; c < nc; ++c) {
    const CacheSt& cc = s.c[c];
    if (cc.line != LineState::kShared) continue;
    // A write-through copy awaiting its own buffered store must still have
    // that store buffered.
    if (cc.cv == kOwnPending) {
      if (cc.wbuf == 0) {
        return {"data-value", "cache" + std::to_string(c) +
                                  " is own-pending with an empty write buffer"};
      }
      continue;
    }
    // SWMR / staleness: a stale copy is only legal while the transaction
    // that wrote is still open (bank busy) or its repair command
    // (Invalidate / UpdateWord) is still on the wire to this cache.
    if (cc.cv < s.latest && s.bank.active == 0 &&
        !in_flight_to(s, bank, c, MsgType::kInvalidate) &&
        !in_flight_to(s, bank, c, MsgType::kUpdateWord)) {
      return {"swmr", "cache" + std::to_string(c) + " holds stale " +
                          ver_name(cc.cv) + " (latest is " +
                          ver_name(s.latest) +
                          ") with no repair in flight — a lost invalidation"};
    }
    // Directory agreement: a valid copy keeps its presence bit unless an
    // invalidation is on the wire (or the open transaction will deliver one).
    if (((s.dir.presence >> c) & 1u) == 0 && s.bank.active == 0 &&
        !in_flight_to(s, bank, c, MsgType::kInvalidate) &&
        !in_flight_to(s, bank, c, MsgType::kFetchInv)) {
      return {"dir-agreement",
              "cache" + std::to_string(c) +
                  " holds a valid copy but its presence bit is clear and no "
                  "invalidation is in flight"};
    }
  }

  // Convergence: at quiescence the system agrees on the last write.
  if (is_quiescent(s, cfg)) {
    if (s.dir.dirty != 0) {
      unsigned o = s.dir.owner;
      if (o >= nc || (s.c[o].line != LineState::kExclusive &&
                      s.c[o].line != LineState::kModified)) {
        // Legal only as a silently-evicted clean Exclusive: memory current.
        if (s.mem_ver != s.latest) {
          return {"data-value",
                  "quiescent with a dirty directory entry, no owner copy and "
                  "stale memory (" + ver_name(s.mem_ver) + " vs " +
                      ver_name(s.latest) + ")"};
        }
      }
    } else if (s.mem_ver != s.latest) {
      return {"data-value", "quiescent but memory holds " +
                                ver_name(s.mem_ver) + " and the last write is " +
                                ver_name(s.latest)};
    }
  }
  return {nullptr, std::string()};
}

const char* protocol_flag(mem::Protocol p) {
  switch (p) {
    case mem::Protocol::kWti: return "wti";
    case mem::Protocol::kWbMesi: return "mesi";
    case mem::Protocol::kWtu: return "wtu";
  }
  return "?";
}

std::string make_fuzz_hint(const ModelConfig& cfg) {
  std::string h = "tools/ccnoc_fuzz --protocol ";
  h += protocol_flag(cfg.protocol);
  h += " --cpus " + std::to_string(cfg.num_caches);
  if (cfg.direct_ack) h += " --direct-ack";
  if (cfg.fault_skip_invalidate) {
    h += " --fault skip-invalidate --fault-after " +
         std::to_string(cfg.fault_after);
  }
  h += " --seeds 200 --minimize";
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (std::uint8_t(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(std::uint8_t(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace

std::string Action::to_string(unsigned num_caches) const {
  switch (kind) {
    case Kind::kLoadMiss:
      return "cache" + std::to_string(cache) + ": load miss";
    case Kind::kStore:
      return "cache" + std::to_string(cache) + ": store";
    case Kind::kAtomic:
      return "cache" + std::to_string(cache) + ": atomic";
    case Kind::kEvict:
      return "cache" + std::to_string(cache) + ": evict clean copy";
    case Kind::kEvictDirty:
      return "cache" + std::to_string(cache) + ": evict dirty copy";
    case Kind::kUntrackedRead:
      return "cache0: untracked read";
    case Kind::kDeliver:
      return std::string("deliver ") + noc::to_string(MsgType(msg_type)) +
             " " + node_name(src, num_caches) + " -> " +
             node_name(dst, num_caches);
  }
  return "?";
}

struct ModelChecker::Impl {
  ModelConfig cfg;
  const proto::ProtocolTable& tbl;
  ModelResult result;
  bool ran = false;

  // Explored graph. Keys live in the node-based map, so the pointers in
  // `keys` stay valid as it grows; ids are BFS discovery order.
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<const std::string*> keys;
  std::vector<std::uint32_t> parent;
  std::vector<Action> pact;
  std::vector<std::uint8_t> quies;
  std::vector<std::uint32_t> efrom;
  std::vector<std::uint32_t> eto;
  std::vector<Action> eact;

  explicit Impl(ModelConfig c) : cfg(c), tbl(proto::table_for(c.protocol)) {
    cfg.num_caches = std::clamp(cfg.num_caches, 2u, kMaxCaches);
    cfg.wbuf_depth = std::clamp(cfg.wbuf_depth, 1u, 3u);
    cfg.fault_cache = std::min(cfg.fault_cache, cfg.num_caches - 1);
  }

  std::uint32_t intern(const std::string& key, bool* fresh) {
    auto [it, inserted] = ids.emplace(key, std::uint32_t(keys.size()));
    *fresh = inserted;
    if (inserted) keys.push_back(&it->first);
    return it->second;
  }

  std::vector<std::string> trace_to(std::uint32_t id) const {
    std::vector<std::string> out;
    for (std::uint32_t at = id; at != 0; at = parent[at]) {
      out.push_back(pact[at].to_string(cfg.num_caches));
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void add_violation(const char* rule, std::string detail,
                     std::vector<std::string> trace, const State& where) {
    Violation v;
    v.rule = rule;
    v.detail = std::move(detail);
    v.trace = std::move(trace);
    v.state_dump = dump_state(where, cfg);
    v.fuzz_hint = make_fuzz_hint(cfg);
    result.violations.push_back(std::move(v));
  }

  void run() {
    if (ran) return;
    ran = true;
    const auto t0 = std::chrono::steady_clock::now();

    State init;
    init.dir.owner = kNoOwner;
    canonicalize(init, cfg);
    bool fresh = false;
    intern(encode(init, cfg), &fresh);
    parent.push_back(0);
    pact.push_back(Action{});
    quies.push_back(1);

    std::vector<Action> actions;
    bool capped = false;
    bool stopped = false;
    for (std::uint32_t cur = 0; cur < keys.size() && !stopped; ++cur) {
      const State s = decode(*keys[cur], cfg);
      enabled_actions(s, cfg, actions);
      for (const Action& a : actions) {
        Stepper stp(cfg, tbl, result.covered, s);
        stp.apply(a);
        ++result.edges;
        if (stp.failed) {
          auto trace = trace_to(cur);
          trace.push_back(a.to_string(cfg.num_caches) + "  <-- fails here");
          add_violation(stp.frule.c_str(), stp.fdetail, std::move(trace), s);
          stopped = true;
          break;
        }
        canonicalize(stp.st, cfg);
        bool is_new = false;
        std::uint32_t id = intern(encode(stp.st, cfg), &is_new);
        efrom.push_back(cur);
        eto.push_back(id);
        eact.push_back(a);
        if (!is_new) continue;
        parent.push_back(cur);
        pact.push_back(a);
        quies.push_back(is_quiescent(stp.st, cfg) ? 1 : 0);
        auto [rule, detail] = check_invariants(stp.st, cfg);
        if (rule != nullptr) {
          add_violation(rule, std::move(detail), trace_to(id), stp.st);
          stopped = true;
          break;
        }
        if (keys.size() >= cfg.max_states) {
          capped = true;
          stopped = true;
          break;
        }
      }
    }

    result.states = keys.size();
    result.closed = !capped && result.violations.empty();
    for (int id = tbl.base_id(); id < tbl.base_id() + tbl.row_count(); ++id) {
      if (!result.covered.covered(id)) result.dead_rows.push_back(id);
    }
    if (result.closed) check_deadlock();
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  }

  /// Deadlock freedom: every reachable state must be able to reach a
  /// quiescent state. Reverse BFS from the quiescent set; a state it never
  /// reaches can only move away from completion forever.
  void check_deadlock() {
    const std::size_t n = keys.size();
    std::vector<std::uint32_t> off(n + 1, 0);
    for (std::uint32_t to : eto) ++off[to + 1];
    for (std::size_t i = 1; i <= n; ++i) off[i] += off[i - 1];
    std::vector<std::uint32_t> radj(eto.size());
    {
      std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
      for (std::size_t e = 0; e < eto.size(); ++e) {
        radj[cursor[eto[e]]++] = efrom[e];
      }
    }
    std::vector<std::uint8_t> can_finish(n, 0);
    std::vector<std::uint32_t> stack;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (quies[i] != 0) {
        can_finish[i] = 1;
        stack.push_back(i);
      }
    }
    while (!stack.empty()) {
      std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
        std::uint32_t u = radj[e];
        if (can_finish[u] == 0) {
          can_finish[u] = 1;
          stack.push_back(u);
        }
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (can_finish[i] != 0) continue;
      add_violation("deadlock",
                    "state s" + std::to_string(i) +
                        " can never reach a quiescent state again",
                    trace_to(i), decode(*keys[i], cfg));
      return;  // one witness suffices
    }
  }

  [[nodiscard]] std::string to_dot(std::size_t node_limit) const {
    std::ostringstream os;
    os << "// ccnoc_model: " << mem::to_string(cfg.protocol) << ", "
       << cfg.num_caches << " caches, " << keys.size() << " states, "
       << efrom.size() << " edges\n";
    os << "digraph protocol {\n  rankdir=LR;\n"
       << "  node [shape=circle, fontsize=9, width=0.35];\n";
    const std::size_t shown = std::min(node_limit, keys.size());
    if (shown < keys.size()) {
      os << "  // truncated to the first " << shown
         << " states in BFS order\n";
    }
    for (std::size_t i = 0; i < shown; ++i) {
      os << "  s" << i;
      if (quies[i] != 0) os << " [peripheries=2]";
      if (i == 0) os << " [style=filled, fillcolor=lightgrey]";
      os << ";\n";
    }
    for (std::size_t e = 0; e < efrom.size(); ++e) {
      if (efrom[e] >= shown || eto[e] >= shown) continue;
      os << "  s" << efrom[e] << " -> s" << eto[e] << " [label=\""
         << json_escape(eact[e].to_string(cfg.num_caches)) << "\", fontsize=8];\n";
    }
    os << "}\n";
    return os.str();
  }
};

ModelChecker::ModelChecker(ModelConfig cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}
ModelChecker::~ModelChecker() = default;
ModelChecker::ModelChecker(ModelChecker&&) noexcept = default;
ModelChecker& ModelChecker::operator=(ModelChecker&&) noexcept = default;

ModelResult ModelChecker::run() {
  impl_->run();
  return impl_->result;
}

std::string ModelChecker::to_dot(std::size_t node_limit) const {
  return impl_->to_dot(node_limit);
}

std::string to_json(const ModelConfig& cfg, const ModelResult& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"protocol\": \"" << protocol_flag(cfg.protocol) << "\",\n";
  os << "  \"num_caches\": " << cfg.num_caches << ",\n";
  os << "  \"wbuf_depth\": " << cfg.wbuf_depth << ",\n";
  os << "  \"direct_ack\": " << (cfg.direct_ack ? "true" : "false") << ",\n";
  os << "  \"untracked_reads\": " << (cfg.untracked_reads ? "true" : "false")
     << ",\n";
  os << "  \"fault_skip_invalidate\": "
     << (cfg.fault_skip_invalidate ? "true" : "false") << ",\n";
  os << "  \"closed\": " << (r.closed ? "true" : "false") << ",\n";
  os << "  \"states\": " << r.states << ",\n";
  os << "  \"edges\": " << r.edges << ",\n";
  os << "  \"wall_ms\": " << r.wall_ms << ",\n";
  os << "  \"ok\": " << (r.ok() ? "true" : "false") << ",\n";
  os << "  \"covered_rows\": [";
  bool first = true;
  for (int id : r.covered.rows()) {
    os << (first ? "" : ", ") << id;
    first = false;
  }
  os << "],\n";
  os << "  \"dead_rows\": [";
  first = true;
  for (int id : r.dead_rows) {
    os << (first ? "" : ",") << "\n    {\"id\": " << id << ", \"name\": \""
       << json_escape(proto::row_name(id)) << "\"}";
    first = false;
  }
  os << (r.dead_rows.empty() ? "" : "\n  ") << "],\n";
  os << "  \"violations\": [";
  first = true;
  for (const Violation& v : r.violations) {
    os << (first ? "" : ",") << "\n    {\n";
    os << "      \"rule\": \"" << json_escape(v.rule) << "\",\n";
    os << "      \"detail\": \"" << json_escape(v.detail) << "\",\n";
    os << "      \"trace\": [";
    bool tf = true;
    for (const std::string& step : v.trace) {
      os << (tf ? "" : ", ") << "\"" << json_escape(step) << "\"";
      tf = false;
    }
    os << "],\n";
    os << "      \"state\": \"" << json_escape(v.state_dump) << "\",\n";
    os << "      \"fuzz_hint\": \"" << json_escape(v.fuzz_hint) << "\"\n";
    os << "    }";
    first = false;
  }
  os << (r.violations.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace ccnoc::verify
