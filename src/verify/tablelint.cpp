#include "verify/tablelint.hpp"

#include <array>
#include <cstddef>

namespace ccnoc::verify {

namespace {

using proto::CacheRule;
using proto::DirRule;
using proto::DirState;
using proto::LineState;

std::string cache_row_str(const std::string& tag, const CacheRule& r) {
  return tag + " cache: " + to_string(r.from) + " --" + to_string(r.ev) +
         "--> " + to_string(r.to);
}

std::string dir_row_str(const std::string& tag, const DirRule& r) {
  return tag + " dir: " + to_string(r.from) + " --" + to_string(r.ev) +
         "--> " + to_string(r.to);
}

bool flat_has_cache(std::span<const CacheRule> flat, const CacheRule& r) {
  for (const CacheRule& f : flat) {
    if (f.from == r.from && f.ev == r.ev) return true;
  }
  return false;
}

bool flat_has_dir(std::span<const DirRule> flat, const DirRule& r) {
  for (const DirRule& f : flat) {
    if (f.from == r.from && f.ev == r.ev && f.to == r.to) return true;
  }
  return false;
}

/// Fixed-point closure of reachable from-states, starting at \p init, over
/// every rule the flat-first/ext-fallback lookup can resolve. Rules are
/// edges from-state -> to-state; the event is the row's trigger, not a
/// reachability constraint (whether the event can be *delivered* is the
/// dynamic coverage check's judgement — the lint only proves state-level
/// feasibility, which is what makes an unreachable from-state a guard that
/// can never be true under ANY event schedule).
template <typename Rule, typename State>
std::array<bool, 4> reach_closure(State init, std::span<const Rule> flat,
                                  std::span<const Rule> ext) {
  std::array<bool, 4> reach{};
  reach[std::size_t(init)] = true;
  bool grew = true;
  while (grew) {
    grew = false;
    auto visit = [&](std::span<const Rule> rules) {
      for (const Rule& r : rules) {
        if (reach[std::size_t(r.from)] && !reach[std::size_t(r.to)]) {
          reach[std::size_t(r.to)] = true;
          grew = true;
        }
      }
    };
    visit(flat);
    visit(ext);
  }
  return reach;
}

}  // namespace

TableLintResult lint_rules(std::span<const CacheRule> flat_cache,
                           std::span<const DirRule> flat_dir,
                           const std::string& flat_tag,
                           std::span<const CacheRule> ext_cache,
                           std::span<const DirRule> ext_dir,
                           const std::string& ext_tag) {
  TableLintResult res;
  auto add = [&res](const char* check, const std::string& table,
                    const std::string& row, const std::string& detail) {
    res.findings.push_back(TableFinding{check, table, row, detail});
  };

  // Intra-table duplicates: the second of two same-key rows can never be
  // the one the first-match lookup resolves.
  auto dup_cache = [&](std::span<const CacheRule> rules, const std::string& tag) {
    for (std::size_t a = 0; a < rules.size(); ++a) {
      for (std::size_t b = a + 1; b < rules.size(); ++b) {
        if (rules[a].from == rules[b].from && rules[a].ev == rules[b].ev) {
          add("duplicate-cache-row", tag, cache_row_str(tag, rules[b]),
              "same (from, event) as row " + cache_row_str(tag, rules[a]) +
                  "; find_cache() resolves the first, this row never fires");
        }
      }
    }
  };
  auto dup_dir = [&](std::span<const DirRule> rules, const std::string& tag) {
    for (std::size_t a = 0; a < rules.size(); ++a) {
      for (std::size_t b = a + 1; b < rules.size(); ++b) {
        if (rules[a].from == rules[b].from && rules[a].ev == rules[b].ev &&
            rules[a].to == rules[b].to) {
          add("duplicate-dir-row", tag, dir_row_str(tag, rules[b]),
              "identical to an earlier row; find_dir() resolves the first, "
              "this row's coverage id is dead on arrival");
        }
      }
    }
  };
  dup_cache(flat_cache, flat_tag);
  dup_dir(flat_dir, flat_tag);
  dup_cache(ext_cache, ext_tag);
  dup_dir(ext_dir, ext_tag);

  // Extension rows shadowed by the flat-first lookup.
  std::vector<bool> ext_cache_shadowed(ext_cache.size(), false);
  std::vector<bool> ext_dir_shadowed(ext_dir.size(), false);
  for (std::size_t i = 0; i < ext_cache.size(); ++i) {
    if (flat_has_cache(flat_cache, ext_cache[i])) {
      ext_cache_shadowed[i] = true;
      add("shadowed-ext-row", ext_tag, cache_row_str(ext_tag, ext_cache[i]),
          "flat table " + flat_tag + " declares the same (from, event); the "
          "flat-first/ext-fallback lookup can never reach this row");
    }
  }
  for (std::size_t i = 0; i < ext_dir.size(); ++i) {
    if (flat_has_dir(flat_dir, ext_dir[i])) {
      ext_dir_shadowed[i] = true;
      add("shadowed-ext-row", ext_tag, dir_row_str(ext_tag, ext_dir[i]),
          "flat table " + flat_tag + " declares the same (from, event, to); "
          "the flat-first/ext-fallback lookup can never reach this row");
    }
  }

  // Guard feasibility: a row whose from-state the machine can never occupy
  // can never fire. Closure over flat + ext: the widest context the lookup
  // serves (a flat-only platform reaches a subset, but a row unreachable
  // even WITH the extension is dead everywhere).
  const auto cache_reach = reach_closure<CacheRule, LineState>(
      LineState::kInvalid, flat_cache, ext_cache);
  const auto dir_reach = reach_closure<DirRule, DirState>(DirState::kUncached,
                                                          flat_dir, ext_dir);
  auto dead_cache = [&](std::span<const CacheRule> rules, const std::string& tag,
                        const std::vector<bool>* shadowed) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (shadowed != nullptr && (*shadowed)[i]) continue;  // already reported
      if (!cache_reach[std::size_t(rules[i].from)]) {
        add("unreachable-row", tag, cache_row_str(tag, rules[i]),
            std::string("from-state ") + to_string(rules[i].from) +
                " is outside the reachable closure from I; this guard can "
                "never be true");
      }
    }
  };
  auto dead_dir = [&](std::span<const DirRule> rules, const std::string& tag,
                      const std::vector<bool>* shadowed) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (shadowed != nullptr && (*shadowed)[i]) continue;
      if (!dir_reach[std::size_t(rules[i].from)]) {
        add("unreachable-row", tag, dir_row_str(tag, rules[i]),
            std::string("from-state ") + to_string(rules[i].from) +
                " is outside the reachable closure from U; this guard can "
                "never be true");
      }
    }
  };
  dead_cache(flat_cache, flat_tag, nullptr);
  dead_dir(flat_dir, flat_tag, nullptr);
  dead_cache(ext_cache, ext_tag, &ext_cache_shadowed);
  dead_dir(ext_dir, ext_tag, &ext_dir_shadowed);

  return res;
}

TableLintResult lint_all_tables() {
  TableLintResult all;
  for (mem::Protocol p :
       {mem::Protocol::kWti, mem::Protocol::kWtu, mem::Protocol::kWbMesi}) {
    const proto::ProtocolTable& flat = proto::table_for(p);
    const proto::ProtocolTable& ext = proto::l2_table_for(p);
    TableLintResult one =
        lint_rules(flat.cache_rules(), flat.dir_rules(), flat.tag(),
                   ext.cache_rules(), ext.dir_rules(), ext.tag());
    all.findings.insert(all.findings.end(), one.findings.begin(),
                        one.findings.end());
  }
  return all;
}

std::string to_string(const TableLintResult& r) {
  std::string out;
  for (const TableFinding& f : r.findings) {
    out += "tablelint: [" + f.check + "] " + f.row + ": " + f.detail + "\n";
  }
  return out;
}

}  // namespace ccnoc::verify
