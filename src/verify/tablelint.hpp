#pragma once

#include <span>
#include <string>
#include <vector>

#include "proto/tables.hpp"

/// \file tablelint.hpp
/// Static lint over the declarative protocol tables (proto/tables.hpp):
/// finds the defects the *dynamic* coverage check cannot see, because they
/// are not "a row that never ran" but "a row that can never run" — or two
/// rows competing for the same transition.
///
/// Checks, per protocol (flat table, and flat+extension when a two-level
/// extension exists):
///  * duplicate-cache-row      two cache rows with the same (from, event):
///                             find_cache() returns the first, the second is
///                             nondeterministically shadowed. (The table
///                             constructor also hard-asserts this; the lint
///                             reports it as a diagnostic so fixtures and
///                             CI see a message, not an abort.)
///  * duplicate-dir-row        two identical (from, event, to) directory
///                             rows: the second can never be the one
///                             find_dir() resolves, so its coverage id is
///                             dead on arrival.
///  * shadowed-ext-row         an extension-table row whose key also exists
///                             in the flat table. apply_cache/apply_dir
///                             consult the flat table FIRST (PR 8's
///                             flat-first/ext-fallback lookup), so the
///                             extension row can never fire.
///  * unreachable-row          a row whose from-state is outside the
///                             reachable-state closure of its own machine:
///                             cache closure from kInvalid, directory
///                             closure from kUncached, over the union of
///                             rows the lookup can actually resolve (flat
///                             alone for flat platforms; flat+ext for
///                             two-level ones). The row's from-state is its
///                             guard predicate — an unreachable from-state
///                             is a guard that can never be true.
///
/// lint_rules() works on raw rule spans so known-bad fixtures can be
/// checked without constructing a ProtocolTable (whose constructor aborts
/// on ambiguous cache rows); lint_tables()/lint_all_tables() run the same
/// analysis over the registered tables.

namespace ccnoc::verify {

struct TableFinding {
  std::string check;   ///< duplicate-cache-row | duplicate-dir-row |
                       ///< shadowed-ext-row | unreachable-row
  std::string table;   ///< e.g. "WTI", "WTU-L2"
  std::string row;     ///< human-readable row, proto::row_name() style
  std::string detail;  ///< why the row can never fire / what shadows it
};

struct TableLintResult {
  std::vector<TableFinding> findings;
  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Lint one protocol's rule set. \p flat_cache / \p flat_dir are the flat
/// table's rows; \p ext_cache / \p ext_dir the two-level extension's (empty
/// spans when the protocol has none). \p flat_tag / \p ext_tag name the
/// tables in findings.
[[nodiscard]] TableLintResult lint_rules(
    std::span<const proto::CacheRule> flat_cache,
    std::span<const proto::DirRule> flat_dir, const std::string& flat_tag,
    std::span<const proto::CacheRule> ext_cache = {},
    std::span<const proto::DirRule> ext_dir = {},
    const std::string& ext_tag = {});

/// Lint every registered protocol table (flat + L2 extension for each of
/// WTI/WTU/MESI), concatenating findings.
[[nodiscard]] TableLintResult lint_all_tables();

/// Render findings one per line ("tablelint: [check] table row: detail").
[[nodiscard]] std::string to_string(const TableLintResult& r);

}  // namespace ccnoc::verify
