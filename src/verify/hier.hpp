#pragma once

#include <memory>
#include <string>

#include "verify/model.hpp"

/// \file hier.hpp
/// Exhaustive model checker for the two-level hierarchy (mem/l2_bank.hpp):
/// the (N private L1 x 1 shared L2 bank x 1 memory bank) product for one
/// coherent block. The L2 is modeled exactly as the sim builds it — the
/// flat home-bank transaction engine with its L1-facing full-map directory,
/// plus the finite-data-array machinery layered on top: fills from the
/// memory tier (always granted Exclusive: the block-granularity interleave
/// makes the L2 the memory's only client), an L2 line state dirtied by any
/// serialized write, and victim recalls that back-invalidate L1 sharers or
/// pull the data from a MESI L1 owner before the line is evicted. The
/// memory tier runs the flat write-back MESI engine over its single L2
/// client, exactly as core::System configures it.
///
/// Capacity pressure is abstracted into a nondeterministic "l2 capacity
/// eviction" action, enabled whenever the resident line is idle: it stands
/// for a fill of a DIFFERENT block forcing this block out of a full set,
/// which is the only way l2_bank.cpp ever starts a recall. Every FSM move
/// (both tiers) routes through the shared declarative tables with the same
/// flat-first/extension-fallback lookup the sim uses, so the run reports
/// dead extension rows and an undeclared transition fails the check.
///
/// Invariants, on every reachable state:
///  - the flat model's SWMR / staleness / directory-agreement rules at the
///    L1 tier (against the L2's L1-facing directory);
///  - inclusion: a valid L1 copy implies the L2 line is resident or its
///    recall is still in flight; a non-resident line implies an empty
///    L1-facing directory;
///  - two-tier tracking: a resident line is recorded at the memory
///    directory as the L2's exclusive grant;
///  - freshness: a clean (Exclusive) L2 line carries exactly DRAM's
///    version; at quiescence the owner copy / L2 line / DRAM (in that
///    priority) holds the last serialized write;
///  - deadlock freedom: a quiescent state stays reachable from every state.
///
/// The §4.2 direct-acknowledgement rounds are an L1<->home interaction the
/// flat model already verifies exhaustively; the hierarchy does not alter
/// that machinery, so this model keeps recall acks (which always return to
/// the L2) and omits the direct mode.

namespace ccnoc::verify {

struct HierConfig {
  mem::Protocol protocol = mem::Protocol::kWti;
  unsigned num_l1 = 2;      ///< 2..3 private L1 caches in front of the L2
  unsigned wbuf_depth = 1;  ///< WT write-buffer entries per L1
  bool untracked_reads = false;  ///< model one icache-style untracked reader

  std::size_t max_states = 4'000'000;  ///< explosion guard
};

/// Runs BFS reachability over the two-tier product machine. The result's
/// dead-row accounting covers the protocol's L2 extension table (flat rows
/// the hierarchy exercises are credited to the flat table ids and unioned
/// by `ccnoc_model --all`).
class HierChecker {
 public:
  explicit HierChecker(HierConfig cfg);
  ~HierChecker();
  HierChecker(HierChecker&&) noexcept;
  HierChecker& operator=(HierChecker&&) noexcept;

  /// Run to fixpoint (or first violation / state cap).
  ModelResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// JSON rendering of a hierarchical verdict (tools/ccnoc_model, CI).
[[nodiscard]] std::string to_json(const HierConfig& cfg, const ModelResult& r);

}  // namespace ccnoc::verify
