#include "verify/hier.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "noc/message.hpp"

/// \file hier.cpp
/// The two-tier abstract machine (see hier.hpp). Node ids: L1 caches
/// 0..n-1, the L2 bank at n, the memory bank at n+1. Timing is erased but
/// message-level structure mirrors l2_bank.cpp / bank.cpp / the controllers
/// decision-for-decision, including the recall races (an owner's WriteBack
/// crossing the recall's FetchInv, requests queuing behind a fill or recall
/// and forcing a refill once the victim is gone). Data values are abstract
/// write versions renormalized after every step, exactly as model.cpp does.

namespace ccnoc::verify {

using noc::Grant;
using noc::MsgType;
using proto::CacheEvent;
using proto::DirEvent;
using proto::DirState;
using proto::LineState;

namespace {

constexpr unsigned kMaxL1 = 3;
constexpr unsigned kMaxNodes = kMaxL1 + 2;  // + the L2 bank + the memory bank
constexpr unsigned kChanDepth = 5;          // per-(src,dst) FIFO bound
constexpr unsigned kQCap = 8;               // L2 waiting-queue bound
constexpr std::uint8_t kNoOwner = 0xFE;
/// See model.cpp: a write-through copy patched in place, its version unknown
/// until its own buffered write serializes.
constexpr std::uint8_t kOwnPending = 0xFF;

/// L1-side pending-access states (the controllers' Pending enums).
enum class Pend : std::uint8_t {
  kNone,
  kLoadDrain,
  kLoadFill,
  kStoreFill,
  kUpgrade,
  kSwapDrain,
  kSwap,
};

const char* to_string(Pend p) {
  switch (p) {
    case Pend::kNone: return "-";
    case Pend::kLoadDrain: return "LoadDrain";
    case Pend::kLoadFill: return "LoadFill";
    case Pend::kStoreFill: return "StoreFill";
    case Pend::kUpgrade: return "Upgrade";
    case Pend::kSwapDrain: return "SwapDrain";
    case Pend::kSwap: return "Swap";
  }
  return "?";
}

struct MMsg {
  MsgType type = MsgType::kReadShared;
  std::uint8_t ver = 0;       ///< data version carried (data-bearing types)
  std::uint8_t track = 0;     ///< kReadShared/kReadResponse
  std::uint8_t had_copy = 0;  ///< kUpdateAck
  std::uint8_t has_data = 0;  ///< kFetchResponse/kUpgradeAck/kWriteBack
  Grant grant = Grant::kShared;
};

struct Chan {
  std::uint8_t n = 0;
  MMsg m[kChanDepth];
};

struct CacheSt {
  LineState line = LineState::kInvalid;
  std::uint8_t cv = 0;
  Pend pend = Pend::kNone;
  std::uint8_t wbuf = 0;   ///< WT: buffered stores
  std::uint8_t wsent = 0;  ///< WT: head entry's WriteWord in flight
  std::uint8_t wb_entry = 0;  ///< MESI write-back buffer
  std::uint8_t wb_ver = 0;
};

struct QEnt {
  MsgType type = MsgType::kReadShared;
  std::uint8_t src = 0;
  std::uint8_t track = 0;
};

/// The L2 bank: the flat home engine (service state, L1-facing directory)
/// plus the data-array machinery (line state, fill, recall).
struct L2St {
  // Transaction engine (mem::Bank), minus the unmodeled direct-ack mode.
  std::uint8_t active = 0;
  MsgType req = MsgType::kReadShared;
  std::uint8_t src = 0;
  std::uint8_t rtrack = 0;
  std::uint8_t pending_acks = 0;
  std::uint8_t waiting_data = 0;
  std::uint8_t data_from = 0;
  std::uint8_t txn_ver = 0;
  /// Dangling FetchResponses to discard per L1 (WriteBack crossed a Fetch /
  /// the recall's FetchInv; the sim drops them by txn-id mismatch).
  std::uint8_t stale_fetch[kMaxL1] = {};
  std::uint8_t qlen = 0;
  QEnt q[kQCap];
  // L1-facing full-map directory entry.
  std::uint8_t presence = 0;
  std::uint8_t ddirty = 0;
  std::uint8_t downer = kNoOwner;
  // Data array: the line's own FSM (kInvalid = not resident) and the
  // version its storage holds.
  LineState line = LineState::kInvalid;
  std::uint8_t ver = 0;
  // Fill / recall in flight (each holds the block's txn slot in the sim).
  std::uint8_t fill = 0;     ///< ReadShared sent to memory, response pending
  std::uint8_t r_active = 0;
  std::uint8_t r_acks = 0;   ///< recall Invalidate flavour: acks outstanding
  std::uint8_t r_fetch = 0;  ///< recall FetchInv flavour: data outstanding
  std::uint8_t r_owner = 0;
};

/// The memory tier: a flat MESI engine whose only client is the L2, so its
/// directory entry degenerates to "is the L2 registered as dirty owner".
/// Requests never queue or fetch (the owner IS the requester; a stale
/// registration self-corrects through the kSharerDrop track guard).
struct MemSt {
  std::uint8_t dirty_owner = 0;
  std::uint8_t ver = 0;
};

struct State {
  CacheSt c[kMaxL1];
  L2St l2;
  MemSt mem;
  std::uint8_t latest = 0;     ///< version of the last serialized write
  std::uint8_t untracked = 0;  ///< untracked (icache-style) reads in flight
  Chan ch[kMaxNodes][kMaxNodes];
};

std::string node_name(unsigned n, unsigned num_l1) {
  if (n < num_l1) return "cache" + std::to_string(n);
  return n == num_l1 ? "l2" : "mem";
}

/// One edge label (local to the hier model: the flat Action enum has no
/// L2-eviction kind and its node naming has no memory tier).
struct HAct {
  enum class Kind : std::uint8_t {
    kLoadMiss,
    kStore,
    kAtomic,
    kEvict,
    kEvictDirty,
    kUntrackedRead,
    kL2Evict,  ///< capacity pressure: a foreign fill recalls this block
    kDeliver,
  };
  Kind kind = Kind::kDeliver;
  std::uint8_t cache = 0;
  std::uint8_t msg_type = 0;
  std::uint8_t src = 0;
  std::uint8_t dst = 0;

  [[nodiscard]] std::string to_string(unsigned num_l1) const {
    switch (kind) {
      case Kind::kLoadMiss:
        return "cache" + std::to_string(cache) + ": load miss";
      case Kind::kStore:
        return "cache" + std::to_string(cache) + ": store";
      case Kind::kAtomic:
        return "cache" + std::to_string(cache) + ": atomic";
      case Kind::kEvict:
        return "cache" + std::to_string(cache) + ": evict clean copy";
      case Kind::kEvictDirty:
        return "cache" + std::to_string(cache) + ": evict dirty copy";
      case Kind::kUntrackedRead:
        return "cache0: untracked read";
      case Kind::kL2Evict:
        return "l2: capacity eviction (recall)";
      case Kind::kDeliver:
        return std::string("deliver ") + noc::to_string(MsgType(msg_type)) +
               " " + node_name(src, num_l1) + " -> " + node_name(dst, num_l1);
    }
    return "?";
  }
};

/// Zero the fields a message's type does not use (model.cpp's canon_msg,
/// minus the unmodeled direct-ack payload).
void canon_msg(MMsg& m) {
  MMsg out;
  out.type = m.type;
  switch (m.type) {
    case MsgType::kReadShared:
      out.track = m.track;
      break;
    case MsgType::kWriteBack:
      out.ver = m.ver;
      out.has_data = 1;
      break;
    case MsgType::kReadResponse:
      out.grant = m.grant;
      out.track = m.track;
      out.ver = m.grant == Grant::kModified ? std::uint8_t(0) : m.ver;
      out.has_data = 1;
      break;
    case MsgType::kUpgradeAck:
      out.has_data = m.has_data;
      break;
    case MsgType::kWriteAck:
      out.ver = m.ver;
      break;
    case MsgType::kUpdateWord:
      out.ver = m.ver;
      break;
    case MsgType::kUpdateAck:
      out.had_copy = m.had_copy;
      break;
    case MsgType::kFetchResponse:
      out.has_data = m.has_data;
      out.ver = m.has_data ? m.ver : std::uint8_t(0);
      break;
    default:  // requests, Invalidate, Fetch/FetchInv, acks
      break;
  }
  m = out;
}

/// Canonicalize: zero dead fields, then remap every live version through an
/// order-preserving dense renumbering (kOwnPending is a sentinel, kept).
void canonicalize(State& s, const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  const unsigned nodes = nc + 2;

  for (unsigned i = nc; i < kMaxL1; ++i) s.c[i] = CacheSt{};
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    if (c.line == LineState::kInvalid) c.cv = 0;
    if (c.wb_entry == 0) c.wb_ver = 0;
  }
  L2St& b = s.l2;
  if (b.active == 0) {
    b.req = MsgType::kReadShared;
    b.src = b.rtrack = b.pending_acks = 0;
    b.waiting_data = b.data_from = b.txn_ver = 0;
  } else {
    if (b.waiting_data == 0) b.data_from = 0;
    if (b.req != MsgType::kWriteWord && b.req != MsgType::kAtomicSwap) {
      b.txn_ver = 0;
    }
  }
  for (unsigned i = b.qlen; i < kQCap; ++i) b.q[i] = QEnt{};
  if (b.ddirty == 0) b.downer = kNoOwner;
  if (b.line == LineState::kInvalid) b.ver = 0;
  if (b.r_active == 0) {
    b.r_acks = b.r_fetch = 0;
    b.r_owner = 0;
  } else if (b.r_fetch == 0) {
    b.r_owner = 0;
  }

  for (unsigned a = 0; a < kMaxNodes; ++a) {
    for (unsigned d = 0; d < kMaxNodes; ++d) {
      Chan& ch = s.ch[a][d];
      if (a >= nodes || d >= nodes) ch = Chan{};
      for (unsigned k = 0; k < kChanDepth; ++k) {
        if (k < ch.n) {
          canon_msg(ch.m[k]);
        } else {
          ch.m[k] = MMsg{};
        }
      }
    }
  }

  // Version renormalization (model.cpp's scheme, plus the L2 storage slot).
  std::uint8_t* fields[64];
  unsigned nf = 0;
  auto live = [&](std::uint8_t& v) { fields[nf++] = &v; };
  live(s.mem.ver);
  live(s.latest);
  if (b.line != LineState::kInvalid) live(b.ver);
  if (b.active != 0 &&
      (b.req == MsgType::kWriteWord || b.req == MsgType::kAtomicSwap)) {
    live(b.txn_ver);
  }
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    if (c.line != LineState::kInvalid && c.cv != kOwnPending) live(c.cv);
    if (c.wb_entry != 0) live(c.wb_ver);
  }
  for (unsigned a = 0; a < nodes; ++a) {
    for (unsigned d = 0; d < nodes; ++d) {
      Chan& ch = s.ch[a][d];
      for (unsigned k = 0; k < ch.n; ++k) {
        MMsg& m = ch.m[k];
        switch (m.type) {
          case MsgType::kWriteBack:
          case MsgType::kWriteAck:
          case MsgType::kUpdateWord:
            live(m.ver);
            break;
          case MsgType::kReadResponse:
            if (m.grant != Grant::kModified) live(m.ver);
            break;
          case MsgType::kFetchResponse:
            if (m.has_data != 0) live(m.ver);
            break;
          default:
            break;
        }
      }
    }
  }

  std::uint8_t vals[64];
  unsigned nv = 0;
  for (unsigned i = 0; i < nf; ++i) vals[nv++] = *fields[i];
  std::sort(vals, vals + nv);
  nv = unsigned(std::unique(vals, vals + nv) - vals);
  for (unsigned i = 0; i < nf; ++i) {
    *fields[i] =
        std::uint8_t(std::lower_bound(vals, vals + nv, *fields[i]) - vals);
  }
}

void put(std::string& out, std::uint8_t v) { out.push_back(char(v)); }

std::string encode(const State& s, const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  const unsigned nodes = nc + 2;
  std::string out;
  out.reserve(80);
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    put(out, std::uint8_t(c.line));
    put(out, c.cv);
    put(out, std::uint8_t(c.pend));
    put(out, c.wbuf);
    put(out, c.wsent);
    put(out, c.wb_entry);
    put(out, c.wb_ver);
  }
  const L2St& b = s.l2;
  put(out, b.active);
  put(out, std::uint8_t(b.req));
  put(out, b.src);
  put(out, b.rtrack);
  put(out, b.pending_acks);
  put(out, b.waiting_data);
  put(out, b.data_from);
  put(out, b.txn_ver);
  for (unsigned i = 0; i < nc; ++i) put(out, b.stale_fetch[i]);
  put(out, b.qlen);
  for (unsigned i = 0; i < b.qlen; ++i) {
    put(out, std::uint8_t(b.q[i].type));
    put(out, b.q[i].src);
    put(out, b.q[i].track);
  }
  put(out, b.presence);
  put(out, b.ddirty);
  put(out, b.downer);
  put(out, std::uint8_t(b.line));
  put(out, b.ver);
  put(out, b.fill);
  put(out, b.r_active);
  put(out, b.r_acks);
  put(out, b.r_fetch);
  put(out, b.r_owner);
  put(out, s.mem.dirty_owner);
  put(out, s.mem.ver);
  put(out, s.latest);
  put(out, s.untracked);
  for (unsigned a = 0; a < nodes; ++a) {
    for (unsigned d = 0; d < nodes; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      put(out, std::uint8_t(a));
      put(out, std::uint8_t(d));
      put(out, ch.n);
      for (unsigned k = 0; k < ch.n; ++k) {
        const MMsg& m = ch.m[k];
        put(out, std::uint8_t(m.type));
        put(out, m.ver);
        put(out, m.track);
        put(out, m.had_copy);
        put(out, m.has_data);
        put(out, std::uint8_t(m.grant));
      }
    }
  }
  return out;
}

State decode(const std::string& k, const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  State s;
  std::size_t p = 0;
  auto get = [&]() { return std::uint8_t(k[p++]); };
  for (unsigned i = 0; i < nc; ++i) {
    CacheSt& c = s.c[i];
    c.line = LineState(get());
    c.cv = get();
    c.pend = Pend(get());
    c.wbuf = get();
    c.wsent = get();
    c.wb_entry = get();
    c.wb_ver = get();
  }
  L2St& b = s.l2;
  b.active = get();
  b.req = MsgType(get());
  b.src = get();
  b.rtrack = get();
  b.pending_acks = get();
  b.waiting_data = get();
  b.data_from = get();
  b.txn_ver = get();
  for (unsigned i = 0; i < nc; ++i) b.stale_fetch[i] = get();
  b.qlen = get();
  for (unsigned i = 0; i < b.qlen; ++i) {
    b.q[i].type = MsgType(get());
    b.q[i].src = get();
    b.q[i].track = get();
  }
  b.presence = get();
  b.ddirty = get();
  b.downer = get();
  b.line = LineState(get());
  b.ver = get();
  b.fill = get();
  b.r_active = get();
  b.r_acks = get();
  b.r_fetch = get();
  b.r_owner = get();
  s.mem.dirty_owner = get();
  s.mem.ver = get();
  s.latest = get();
  s.untracked = get();
  while (p < k.size()) {
    unsigned a = get();
    unsigned d = get();
    Chan& ch = s.ch[a][d];
    ch.n = get();
    for (unsigned q = 0; q < ch.n; ++q) {
      MMsg& m = ch.m[q];
      m.type = MsgType(get());
      m.ver = get();
      m.track = get();
      m.had_copy = get();
      m.has_data = get();
      m.grant = Grant(get());
    }
  }
  return s;
}

std::string ver_name(std::uint8_t v) {
  if (v == kOwnPending) return "own-pending";
  return "v" + std::to_string(v);
}

std::string dump_state(const State& s, const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  std::ostringstream os;
  os << "  mem=" << ver_name(s.mem.ver)
     << (s.mem.dirty_owner != 0 ? " (l2 registered owner)" : "")
     << " latest=" << ver_name(s.latest) << "\n";
  const L2St& b = s.l2;
  os << "  l2: line=" << proto::to_string(b.line);
  if (b.line != LineState::kInvalid) os << "(" << ver_name(b.ver) << ")";
  os << " dir={presence=";
  for (unsigned i = 0; i < nc; ++i) os << ((b.presence >> i) & 1u);
  os << (b.ddirty != 0 ? " dirty" : " clean");
  if (b.downer != kNoOwner) os << " owner=cache" << unsigned(b.downer);
  os << "}";
  if (b.fill != 0) os << " filling";
  if (b.r_active != 0) {
    os << " recall(";
    if (b.r_fetch != 0) {
      os << "fetching<-cache" << unsigned(b.r_owner);
    } else {
      os << "acks=" << unsigned(b.r_acks);
    }
    os << ")";
  }
  if (b.active != 0) {
    os << " serving " << noc::to_string(b.req) << " from cache"
       << unsigned(b.src);
    if (b.pending_acks != 0) os << " acks=" << unsigned(b.pending_acks);
    if (b.waiting_data != 0) os << " fetching<-cache" << unsigned(b.data_from);
  }
  if (b.qlen != 0) os << " queued=" << unsigned(b.qlen);
  os << "\n";
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    os << "  cache" << i << ": " << proto::to_string(c.line);
    if (c.line != LineState::kInvalid) os << "(" << ver_name(c.cv) << ")";
    if (c.pend != Pend::kNone) os << " pend=" << to_string(c.pend);
    if (c.wbuf != 0) {
      os << " wbuf=" << unsigned(c.wbuf) << (c.wsent != 0 ? "*" : "");
    }
    if (c.wb_entry != 0) os << " wb(" << ver_name(c.wb_ver) << ")";
    os << "\n";
  }
  for (unsigned a = 0; a < nc + 2; ++a) {
    for (unsigned d = 0; d < nc + 2; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      os << "  " << node_name(a, nc) << "->" << node_name(d, nc) << ":";
      for (unsigned k = 0; k < ch.n; ++k) {
        os << " " << noc::to_string(ch.m[k].type);
      }
      os << "\n";
    }
  }
  return os.str();
}

/// Quiescent: nothing in flight at either tier.
bool is_quiescent(const State& s, const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  const L2St& b = s.l2;
  if (b.active != 0 || b.qlen != 0 || b.fill != 0 || b.r_active != 0 ||
      s.untracked != 0) {
    return false;
  }
  for (unsigned i = 0; i < nc; ++i) {
    const CacheSt& c = s.c[i];
    if (c.pend != Pend::kNone || c.wbuf != 0 || c.wsent != 0 ||
        c.wb_entry != 0 || b.stale_fetch[i] != 0) {
      return false;
    }
  }
  for (unsigned a = 0; a < nc + 2; ++a) {
    for (unsigned d = 0; d < nc + 2; ++d) {
      if (s.ch[a][d].n != 0) return false;
    }
  }
  return true;
}

/// Applies one action to a copy of a state, mirroring l2_bank.cpp /
/// bank.cpp / the L1 controllers. Every FSM move resolves through the flat
/// table with the L2 extension table as fallback — the sim's exact lookup —
/// and an undeclared move is a divergence failure.
struct Stepper {
  const HierConfig& cfg;
  const proto::ProtocolTable& tbl;   ///< flat table of the platform protocol
  const proto::ProtocolTable& xtbl;  ///< its L2 extension table
  const proto::ProtocolTable& mtbl;  ///< flat MESI (the memory tier's engine)
  proto::CoverageSet& cov;
  State st;
  bool failed = false;
  std::string frule;
  std::string fdetail;

  unsigned nc;
  std::uint8_t l2_id;
  std::uint8_t mem_id;
  bool mesi;
  bool wtu;

  Stepper(const HierConfig& c, proto::CoverageSet& cv, const State& s)
      : cfg(c),
        tbl(proto::table_for(c.protocol)),
        xtbl(proto::l2_table_for(c.protocol)),
        mtbl(proto::table_for(mem::Protocol::kWbMesi)),
        cov(cv),
        st(s),
        nc(c.num_l1),
        l2_id(std::uint8_t(c.num_l1)),
        mem_id(std::uint8_t(c.num_l1 + 1)),
        mesi(c.protocol == mem::Protocol::kWbMesi),
        wtu(c.protocol == mem::Protocol::kWtu) {}

  void fail(const char* rule, std::string detail) {
    if (!failed) {
      failed = true;
      frule = rule;
      fdetail = std::move(detail);
    }
  }

  void send(unsigned src, unsigned dst, const MMsg& m) {
    Chan& ch = st.ch[src][dst];
    if (ch.n >= kChanDepth) {
      fail("model-bound", "channel " + node_name(src, nc) + "->" +
                              node_name(dst, nc) + " exceeded depth " +
                              std::to_string(kChanDepth));
      return;
    }
    ch.m[ch.n++] = m;
  }

  /// L1 cache-line event: flat table first, extension fallback (the WTU L1
  /// facet of a back-invalidation lives only in the extension table).
  void cfsm(unsigned c, CacheEvent ev) {
    int id = tbl.find_cache(st.c[c].line, ev);
    const proto::ProtocolTable* hit = &tbl;
    if (id < 0) {
      id = xtbl.find_cache(st.c[c].line, ev);
      hit = &xtbl;
    }
    if (id < 0) {
      fail("undeclared-transition",
           std::string(mem::to_string(cfg.protocol)) + " cache: " +
               proto::to_string(st.c[c].line) + " --" + proto::to_string(ev) +
               "--> has no declared row (cache" + std::to_string(c) + ")");
      return;
    }
    cov.record(id);
    st.c[c].line = hit->cache_to(id);
  }

  /// L2 line event (the bank's own FSM against the memory tier): same
  /// flat-first lookup l2_bank.cpp uses, so MESI's L2 rows credit the flat
  /// MESI table and WTI/WTU's credit their extension tables.
  void l2fsm(CacheEvent ev) {
    int id = tbl.find_cache(st.l2.line, ev);
    const proto::ProtocolTable* hit = &tbl;
    if (id < 0) {
      id = xtbl.find_cache(st.l2.line, ev);
      hit = &xtbl;
    }
    if (id < 0) {
      fail("undeclared-transition",
           std::string(mem::to_string(cfg.protocol)) + " L2 line: " +
               proto::to_string(st.l2.line) + " --" + proto::to_string(ev) +
               "--> has no declared row");
      return;
    }
    cov.record(id);
    st.l2.line = hit->cache_to(id);
  }

  /// Any transaction-path write into L2 storage leaves the copy newer than
  /// DRAM (L2Bank::on_storage_write): the line dirties to Modified.
  void l2_storage_write(std::uint8_t ver) {
    st.l2.ver = ver;
    l2fsm(CacheEvent::kStoreHit);
  }

  // ---- the L2's L1-facing directory (Directory's exact semantics) ----

  [[nodiscard]] DirState dstate() const {
    return proto::dir_state(st.l2.presence != 0, st.l2.ddirty != 0);
  }

  void devent(DirState before, DirEvent ev) {
    int id = tbl.find_dir(before, ev, dstate());
    if (id < 0) id = xtbl.find_dir(before, ev, dstate());
    if (id < 0) {
      fail("undeclared-transition",
           std::string(mem::to_string(cfg.protocol)) + " directory: " +
               proto::to_string(before) + " --" + proto::to_string(ev) +
               "--> " + proto::to_string(dstate()) + " has no declared row");
      return;
    }
    cov.record(id);
  }

  void dir_remove(unsigned c) {
    st.l2.presence &= std::uint8_t(~(1u << c));
    if (st.l2.ddirty != 0 && st.l2.downer == c) {
      st.l2.ddirty = 0;
      st.l2.downer = kNoOwner;
    }
  }
  void dir_add(unsigned c) { st.l2.presence |= std::uint8_t(1u << c); }
  void dir_set_exclusive(unsigned c) {
    st.l2.presence = std::uint8_t(1u << c);
    st.l2.ddirty = 1;
    st.l2.downer = std::uint8_t(c);
  }
  void dir_clear_dirty() {
    st.l2.ddirty = 0;
    st.l2.downer = kNoOwner;
  }
  void dir_clear_all() {
    st.l2.presence = 0;
    st.l2.ddirty = 0;
    st.l2.downer = kNoOwner;
  }
  [[nodiscard]] bool dir_is_sharer(unsigned c) const {
    return (st.l2.presence >> c) & 1u;
  }
  [[nodiscard]] std::uint8_t dir_targets(unsigned except) const {
    std::uint8_t m = st.l2.presence;
    if (except < kMaxL1) m &= std::uint8_t(~(1u << except));
    return m;
  }

  std::uint8_t new_version() {
    if (st.latest >= 200) {
      fail("model-bound", "version counter overflow (renormalization bug)");
      return st.latest;
    }
    return ++st.latest;
  }

  // ---- CPU-side actions (the flat model's environment, aimed at the L2) --

  void do_load_miss(unsigned c) {
    CacheSt& cc = st.c[c];
    if (!mesi && cc.wbuf != 0) {
      cc.pend = Pend::kLoadDrain;
      return;
    }
    cc.pend = Pend::kLoadFill;
    MMsg m;
    m.type = MsgType::kReadShared;
    m.track = 1;
    send(c, l2_id, m);
  }

  void do_store(unsigned c) {
    CacheSt& cc = st.c[c];
    if (!mesi) {
      if (cc.line != LineState::kInvalid) {
        cfsm(c, CacheEvent::kStoreHit);
        cc.cv = kOwnPending;
      }
      ++cc.wbuf;
      if (cc.wsent == 0) {
        cc.wsent = 1;
        MMsg m;
        m.type = MsgType::kWriteWord;
        send(c, l2_id, m);
      }
      return;
    }
    if (cc.line == LineState::kExclusive || cc.line == LineState::kModified) {
      cfsm(c, CacheEvent::kStoreHit);
      cc.cv = new_version();
      return;
    }
    if (cc.line == LineState::kShared) {
      cc.pend = Pend::kUpgrade;
      MMsg m;
      m.type = MsgType::kUpgrade;
      send(c, l2_id, m);
      return;
    }
    cc.pend = Pend::kStoreFill;
    MMsg m;
    m.type = MsgType::kReadExclusive;
    send(c, l2_id, m);
  }

  void do_atomic(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.line != LineState::kInvalid) cfsm(c, CacheEvent::kAtomicIssue);
    if (cc.wbuf != 0) {
      cc.pend = Pend::kSwapDrain;
      return;
    }
    cc.pend = Pend::kSwap;
    MMsg m;
    m.type = MsgType::kAtomicSwap;
    send(c, l2_id, m);
  }

  void do_evict(unsigned c) { cfsm(c, CacheEvent::kEvict); }

  void do_evict_dirty(unsigned c) {
    CacheSt& cc = st.c[c];
    cfsm(c, CacheEvent::kEvictDirty);
    cc.wb_entry = 1;
    cc.wb_ver = cc.cv;
    MMsg m;
    m.type = MsgType::kWriteBack;
    m.ver = cc.cv;
    m.has_data = 1;
    send(c, l2_id, m);
  }

  void do_untracked_read() {
    ++st.untracked;
    MMsg m;
    m.type = MsgType::kReadShared;
    m.track = 0;
    send(0, l2_id, m);
  }

  // ---- L2 bank: the flat home engine over a finite data array ----

  [[nodiscard]] bool l2_busy() const {
    return st.l2.active != 0 || st.l2.fill != 0 || st.l2.r_active != 0;
  }

  /// L2Bank::deliver for requests: a non-resident, unlocked block opens a
  /// fill; the request then queues behind the fill's (or any open) txn slot.
  void bank_request(MsgType type, unsigned src, bool track) {
    if (l2_busy()) {
      enqueue(type, src, track);
      return;
    }
    if (st.l2.line == LineState::kInvalid) {
      start_fill();
      enqueue(type, src, track);
      return;
    }
    start_service(type, src, track);
  }

  void enqueue(MsgType type, unsigned src, bool track) {
    L2St& b = st.l2;
    if (b.qlen >= kQCap) {
      fail("model-bound",
           "L2 waiting queue exceeded " + std::to_string(kQCap));
      return;
    }
    QEnt& q = b.q[b.qlen++];
    q.type = type;
    q.src = std::uint8_t(src);
    q.track = track ? 1 : 0;
  }

  void start_service(MsgType type, unsigned src, bool track) {
    L2St& b = st.l2;
    if (b.line == LineState::kInvalid) {
      fail("model-internal", "L2 service started on a non-resident line");
      return;
    }
    b.active = 1;
    b.req = type;
    b.src = std::uint8_t(src);
    b.rtrack = track ? 1 : 0;
    switch (type) {
      case MsgType::kReadShared: process_read_shared(); break;
      case MsgType::kReadExclusive: process_read_exclusive(); break;
      case MsgType::kUpgrade: process_upgrade(); break;
      case MsgType::kWriteWord:
      case MsgType::kAtomicSwap: process_write_word(); break;
      default:
        fail("model-internal", "bad queued request");
    }
  }

  void respond(MsgType type, MMsg m) {
    m.type = type;
    send(l2_id, st.l2.src, m);
  }

  /// L2Bank::complete_txn: if the line is gone (a recall evicted it) while
  /// requests are queued, refill before serving them; otherwise dequeue.
  void complete_txn() {
    L2St& b = st.l2;
    b.active = 0;
    b.pending_acks = 0;
    b.waiting_data = 0;
    b.txn_ver = 0;
    if (failed) return;
    if (b.line == LineState::kInvalid && b.qlen != 0) {
      start_fill();
      return;
    }
    if (b.qlen == 0) return;
    QEnt next = b.q[0];
    for (unsigned i = 1; i < b.qlen; ++i) b.q[i - 1] = b.q[i];
    --b.qlen;
    start_service(next.type, next.src, next.track != 0);
  }

  void process_read_shared() {
    L2St& b = st.l2;
    if (b.rtrack != 0 && b.ddirty != 0 && b.downer == b.src) {
      DirState before = dstate();
      dir_remove(b.src);
      devent(before, DirEvent::kSharerDrop);
    }
    if (b.ddirty != 0) {
      request_fetch(MsgType::kFetch);
      return;
    }
    MMsg resp;
    resp.ver = b.ver;
    resp.track = b.rtrack;
    resp.has_data = 1;
    DirState before = dstate();
    if (b.rtrack == 0) {
      resp.grant = Grant::kShared;
    } else if (mesi && b.presence == 0) {
      resp.grant = Grant::kExclusive;
      dir_set_exclusive(b.src);
    } else {
      resp.grant = Grant::kShared;
      dir_add(b.src);
    }
    devent(before,
           b.rtrack != 0 ? DirEvent::kReadShared : DirEvent::kReadUntracked);
    respond(MsgType::kReadResponse, resp);
    complete_txn();
  }

  void process_read_exclusive() {
    L2St& b = st.l2;
    if (b.ddirty != 0 && b.downer != b.src) {
      request_fetch(MsgType::kFetchInv);
      return;
    }
    if (dir_targets(b.src) != 0) {
      send_invalidations(b.src);
      return;
    }
    on_acks_complete();
  }

  void process_upgrade() {
    L2St& b = st.l2;
    if (!dir_is_sharer(b.src) && b.ddirty != 0 && b.downer != b.src) {
      request_fetch(MsgType::kFetchInv);
      return;
    }
    if (dir_targets(b.src) != 0) {
      send_invalidations(b.src);
      return;
    }
    on_acks_complete();
  }

  void process_write_word() {
    L2St& b = st.l2;
    b.txn_ver = new_version();
    unsigned except = b.req == MsgType::kWriteWord ? b.src : kMaxL1;
    if (dir_targets(except) != 0) {
      if (wtu) {
        send_updates(except);
      } else {
        send_invalidations(except);
      }
      return;
    }
    on_acks_complete();
  }

  void send_updates(unsigned except) {
    L2St& b = st.l2;
    std::uint8_t targets = dir_targets(except);
    b.pending_acks = std::uint8_t(__builtin_popcount(targets));
    for (unsigned c = 0; c < nc; ++c) {
      if (((targets >> c) & 1u) == 0) continue;
      MMsg u;
      u.type = MsgType::kUpdateWord;
      u.ver = b.txn_ver;
      send(l2_id, c, u);
    }
  }

  void send_invalidations(unsigned except) {
    L2St& b = st.l2;
    std::uint8_t targets = dir_targets(except);
    b.pending_acks = std::uint8_t(__builtin_popcount(targets));
    for (unsigned c = 0; c < nc; ++c) {
      if (((targets >> c) & 1u) == 0) continue;
      MMsg inv;
      inv.type = MsgType::kInvalidate;
      send(l2_id, c, inv);
    }
  }

  void request_fetch(MsgType fetch_type) {
    L2St& b = st.l2;
    b.waiting_data = 1;
    b.data_from = b.downer;
    MMsg f;
    f.type = fetch_type;
    send(l2_id, b.downer, f);
  }

  void bank_invalidate_ack(unsigned src) {
    L2St& b = st.l2;
    if (b.active == 0 || b.pending_acks == 0) {
      fail("model-internal", "stray InvalidateAck at the L2");
      return;
    }
    DirState before = dstate();
    dir_remove(src);
    devent(before, DirEvent::kSharerDrop);
    if (--b.pending_acks == 0) on_acks_complete();
  }

  void bank_update_ack(unsigned src, const MMsg& m) {
    L2St& b = st.l2;
    if (b.active == 0 || b.pending_acks == 0) {
      fail("model-internal", "stray UpdateAck at the L2");
      return;
    }
    if (m.had_copy == 0) {
      DirState before = dstate();
      dir_remove(src);
      devent(before, DirEvent::kSharerDrop);
    }
    if (--b.pending_acks == 0) on_acks_complete();
  }

  void bank_write_back(unsigned src, const MMsg& m) {
    L2St& b = st.l2;
    MMsg ack;
    ack.type = MsgType::kWriteBackAck;
    if (b.active != 0 && b.waiting_data != 0 && b.data_from == src) {
      // The write-back crossed our fetch: accept it as the fetch data and
      // expect the cache's own (now dangling) FetchResponse.
      ++b.stale_fetch[src];
      send(l2_id, src, ack);
      DirState before = dstate();
      dir_remove(src);
      devent(before, DirEvent::kWriteBack);
      on_data_arrived(m);
      return;
    }
    l2_storage_write(m.ver);
    DirState before = dstate();
    dir_remove(src);
    devent(before, DirEvent::kWriteBack);
    send(l2_id, src, ack);
  }

  void on_data_arrived(const MMsg& data) {
    L2St& b = st.l2;
    if (data.has_data != 0) l2_storage_write(data.ver);
    // has_data == 0: silently evicted clean Exclusive; the L2 copy is
    // already current.
    b.waiting_data = 0;
    DirState before = dstate();
    DirEvent ev = DirEvent::kReadShared;
    switch (b.req) {
      case MsgType::kReadShared: {
        dir_clear_dirty();
        if (b.rtrack != 0) dir_add(b.src);
        if (b.rtrack == 0) ev = DirEvent::kReadUntracked;
        MMsg resp;
        resp.grant = Grant::kShared;
        resp.ver = b.ver;
        resp.track = b.rtrack;
        resp.has_data = 1;
        respond(MsgType::kReadResponse, resp);
        break;
      }
      case MsgType::kReadExclusive:
      case MsgType::kUpgrade: {
        dir_clear_all();
        dir_set_exclusive(b.src);
        ev = b.req == MsgType::kReadExclusive ? DirEvent::kReadExclusive
                                              : DirEvent::kUpgrade;
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.track = 1;
        resp.has_data = 1;
        respond(b.req == MsgType::kReadExclusive ? MsgType::kReadResponse
                                                 : MsgType::kUpgradeAck,
                resp);
        break;
      }
      default:
        fail("model-internal", "data arrived for a non-fetching transaction");
        return;
    }
    devent(before, ev);
    complete_txn();
  }

  void on_acks_complete() {
    L2St& b = st.l2;
    DirState before = dstate();
    DirEvent ev = DirEvent::kReadExclusive;
    switch (b.req) {
      case MsgType::kWriteWord: {
        l2_storage_write(b.txn_ver);  // the write lands in L2 storage
        if (!wtu) {
          // Directory::clear_all_except(src): foreign bits dropped, the
          // writer's own (clean) registration survives.
          std::uint8_t keep = std::uint8_t(b.presence & (1u << b.src));
          b.presence = keep;
          b.ddirty = 0;
          b.downer = kNoOwner;
        }
        ev = wtu ? DirEvent::kWriteUpdate : DirEvent::kWriteThrough;
        MMsg ack;
        ack.ver = b.txn_ver;
        respond(MsgType::kWriteAck, ack);
        break;
      }
      case MsgType::kAtomicSwap: {
        l2_storage_write(b.txn_ver);
        if (wtu) {
          dir_remove(b.src);
        } else {
          dir_clear_all();
        }
        ev = DirEvent::kAtomic;
        respond(MsgType::kSwapResponse, MMsg{});
        break;
      }
      case MsgType::kReadExclusive: {
        dir_clear_all();
        dir_set_exclusive(b.src);
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.track = 1;
        resp.has_data = 1;
        respond(MsgType::kReadResponse, resp);
        break;
      }
      case MsgType::kUpgrade: {
        const bool lost_copy = !dir_is_sharer(b.src);
        dir_clear_all();
        dir_set_exclusive(b.src);
        ev = DirEvent::kUpgrade;
        MMsg resp;
        resp.grant = Grant::kModified;
        resp.has_data = lost_copy ? 1 : 0;
        respond(MsgType::kUpgradeAck, resp);
        break;
      }
      default:
        fail("model-internal", "acks completed for a bad transaction");
        return;
    }
    devent(before, ev);
    complete_txn();
  }

  // ---- fills (L2Bank::start_fill / handle_fill_response) ----

  void start_fill() {
    st.l2.fill = 1;
    MMsg m;
    m.type = MsgType::kReadShared;
    m.track = 1;  // the memory directory must record us (grants E)
    send(l2_id, mem_id, m);
  }

  void handle_fill_response(const MMsg& m) {
    L2St& b = st.l2;
    if (b.fill == 0) {
      fail("model-internal", "stray fill response at the L2");
      return;
    }
    if (m.grant != Grant::kExclusive) {
      fail("model-internal", "fill granted non-exclusive");
      return;
    }
    b.fill = 0;
    b.ver = m.ver;
    l2fsm(CacheEvent::kFillExclusive);  // I -> E
    complete_txn();  // queued L1 requests now run against the line
  }

  // ---- recalls (L2Bank::start_recall / finish_recall / evict_line) ----

  /// The spontaneous capacity-pressure action: a fill of a different block
  /// found the set full and this (idle) line is the victim.
  void do_l2_evict() {
    L2St& b = st.l2;
    b.r_active = 1;
    if (b.ddirty != 0) {
      b.r_fetch = 1;
      b.r_owner = b.downer;
      MMsg f;
      f.type = MsgType::kFetchInv;
      send(l2_id, b.downer, f);
      return;
    }
    if (b.presence != 0) {
      b.r_acks = std::uint8_t(__builtin_popcount(b.presence));
      for (unsigned c = 0; c < nc; ++c) {
        if (((b.presence >> c) & 1u) == 0) continue;
        MMsg inv;
        inv.type = MsgType::kInvalidate;
        send(l2_id, c, inv);
      }
      return;
    }
    finish_recall();
  }

  void recall_invalidate_ack(unsigned src) {
    L2St& b = st.l2;
    if (b.r_acks == 0) {
      fail("model-internal", "unexpected recall InvalidateAck");
      return;
    }
    DirState before = dstate();
    dir_remove(src);
    devent(before, DirEvent::kSharerDrop);
    if (--b.r_acks == 0) finish_recall();
  }

  void recall_fetch_response(unsigned src, const MMsg& m) {
    L2St& b = st.l2;
    if (b.r_fetch == 0 || src != b.r_owner) {
      fail("model-internal", "stray recall FetchResponse");
      return;
    }
    absorb_recall_data(m);
  }

  void recall_write_back(unsigned src, const MMsg& m) {
    L2St& b = st.l2;
    if (b.r_fetch == 0 || src != b.r_owner) {
      fail("model-internal", "write-back from a non-owner during a recall");
      return;
    }
    // The owner evicted on its own while our FetchInv was in flight: accept
    // the write-back as the recall data; its own FetchResponse will dangle.
    ++b.stale_fetch[src];
    MMsg ack;
    ack.type = MsgType::kWriteBackAck;
    send(l2_id, src, ack);
    absorb_recall_data(m);
  }

  void absorb_recall_data(const MMsg& m) {
    L2St& b = st.l2;
    if (m.has_data != 0) l2_storage_write(m.ver);
    // has_data == 0: the owner silently evicted a clean Exclusive copy.
    b.r_fetch = 0;
    finish_recall();
  }

  void finish_recall() {
    // Sharers (if any) already dropped by their acks' kSharerDrop rows; a
    // lingering owner registration collapses here so the Owned->Uncached
    // recall row is the one that fires.
    DirState before = dstate();
    dir_clear_all();
    devent(before, DirEvent::kRecall);
    evict_line();
  }

  void evict_line() {
    L2St& b = st.l2;
    const bool dirty = b.line == LineState::kModified;
    const std::uint8_t ver = b.ver;
    l2fsm(dirty ? CacheEvent::kEvictDirty : CacheEvent::kEvict);  // -> I
    b.ver = 0;
    b.r_active = 0;
    if (dirty) {
      MMsg wb;
      wb.type = MsgType::kWriteBack;
      wb.ver = ver;
      wb.has_data = 1;
      send(l2_id, mem_id, wb);
    }
    complete_txn();
  }

  // ---- memory tier (a flat MESI bank whose only client is the L2) ----

  void mem_devent(DirState before, DirEvent ev, DirState after) {
    int id = mtbl.find_dir(before, ev, after);
    if (id < 0) {
      fail("undeclared-transition",
           std::string("memory directory: ") + proto::to_string(before) +
               " --" + proto::to_string(ev) + "--> " + proto::to_string(after) +
               " has no declared row");
      return;
    }
    cov.record(id);
  }

  void mem_read_shared() {
    MemSt& m = st.mem;
    if (m.dirty_owner != 0) {
      // The recorded owner (us) misses: it silently evicted a clean line (a
      // dirty one's WriteBack precedes this read in FIFO order). The track
      // guard drops the stale self-registration (bank.cpp's exact path).
      m.dirty_owner = 0;
      mem_devent(DirState::kOwned, DirEvent::kSharerDrop, DirState::kUncached);
    }
    // Sole client, nothing cached: the MESI memory tier grants Exclusive.
    m.dirty_owner = 1;
    mem_devent(DirState::kUncached, DirEvent::kReadShared, DirState::kOwned);
    MMsg resp;
    resp.type = MsgType::kReadResponse;
    resp.grant = Grant::kExclusive;
    resp.ver = m.ver;
    resp.track = 1;
    resp.has_data = 1;
    send(mem_id, l2_id, resp);
  }

  void mem_write_back(const MMsg& m) {
    MemSt& mm = st.mem;
    if (mm.dirty_owner == 0) {
      fail("model-internal", "memory write-back from an unregistered L2");
      return;
    }
    mm.ver = m.ver;
    mm.dirty_owner = 0;
    mem_devent(DirState::kOwned, DirEvent::kWriteBack, DirState::kUncached);
    MMsg ack;
    ack.type = MsgType::kWriteBackAck;
    send(mem_id, l2_id, ack);
  }

  // ---- L1 side (the flat model's cache handlers, home = the L2) ----

  void cache_read_response(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (m.track == 0) {
      if (st.untracked == 0) {
        fail("model-internal", "untracked response with no read in flight");
        return;
      }
      --st.untracked;
      return;
    }
    if (!mesi) {
      if (cc.pend != Pend::kLoadFill) {
        fail("model-internal", "unexpected ReadResponse");
        return;
      }
      cfsm(c, CacheEvent::kFillShared);
      cc.cv = m.ver;
      cc.pend = Pend::kNone;
      return;
    }
    if (cc.pend != Pend::kLoadFill && cc.pend != Pend::kStoreFill) {
      fail("model-internal", "unexpected ReadResponse");
      return;
    }
    switch (m.grant) {
      case Grant::kShared: cfsm(c, CacheEvent::kFillShared); break;
      case Grant::kExclusive: cfsm(c, CacheEvent::kFillExclusive); break;
      case Grant::kModified: cfsm(c, CacheEvent::kFillModified); break;
    }
    cc.cv = m.ver;
    finish_pending(c);
  }

  void finish_pending(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.pend == Pend::kStoreFill || cc.pend == Pend::kUpgrade) {
      if (cc.line == LineState::kInvalid) {
        cfsm(c, CacheEvent::kFillModified);
      } else if (cc.line == LineState::kShared) {
        cfsm(c, CacheEvent::kStoreUpgrade);
      } else {
        cfsm(c, CacheEvent::kStoreHit);
      }
      cc.cv = new_version();
    }
    cc.pend = Pend::kNone;
  }

  void cache_upgrade_ack(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (cc.pend != Pend::kUpgrade) {
      fail("model-internal", "unexpected UpgradeAck");
      return;
    }
    if (m.has_data == 0 && cc.line != LineState::kShared) {
      fail("undeclared-transition",
           "UpgradeAck without data reached a non-Shared line");
      return;
    }
    finish_pending(c);
  }

  void cache_write_ack(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    if (cc.wsent == 0 || cc.wbuf == 0) {
      fail("model-internal", "stray WriteAck");
      return;
    }
    pop_write_buffer(c, m.ver);
  }

  void pop_write_buffer(unsigned c, std::uint8_t ver) {
    CacheSt& cc = st.c[c];
    --cc.wbuf;
    cc.wsent = 0;
    if (cc.wbuf == 0 && cc.line != LineState::kInvalid &&
        cc.cv == kOwnPending) {
      cc.cv = ver;
    }
    if (cc.wbuf > 0) {
      cc.wsent = 1;
      MMsg m;
      m.type = MsgType::kWriteWord;
      send(c, l2_id, m);
    } else if (cc.pend == Pend::kLoadDrain) {
      cc.pend = Pend::kLoadFill;
      MMsg m;
      m.type = MsgType::kReadShared;
      m.track = 1;
      send(c, l2_id, m);
    } else if (cc.pend == Pend::kSwapDrain) {
      cc.pend = Pend::kSwap;
      MMsg m;
      m.type = MsgType::kAtomicSwap;
      send(c, l2_id, m);
    }
  }

  void cache_swap_response(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.pend != Pend::kSwap) {
      fail("model-internal", "unexpected SwapResponse");
      return;
    }
    cc.pend = Pend::kNone;
  }

  void cache_invalidate(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.line != LineState::kInvalid) {
      if (mesi && cc.line != LineState::kShared) {
        fail("undeclared-transition", "Invalidate reached a non-Shared line");
        return;
      }
      // WTU's {S, Invalidate, I} lives only in the extension table (a flat
      // WTU platform never sends invalidations); cfsm's fallback finds it.
      cfsm(c, CacheEvent::kInvalidate);
    }
    // Always acknowledge (the directory may hold a stale presence bit).
    MMsg ack;
    ack.type = MsgType::kInvalidateAck;
    send(c, l2_id, ack);
  }

  void cache_update(unsigned c, const MMsg& m) {
    CacheSt& cc = st.c[c];
    MMsg ack;
    ack.type = MsgType::kUpdateAck;
    if (cc.line != LineState::kInvalid) {
      if (cc.wbuf == 0) cc.cv = m.ver;
      cfsm(c, CacheEvent::kUpdate);
      ack.had_copy = 1;
    } else {
      ack.had_copy = 0;
    }
    send(c, l2_id, ack);
  }

  void cache_fetch(unsigned c, bool invalidate) {
    CacheSt& cc = st.c[c];
    MMsg resp;
    resp.type = MsgType::kFetchResponse;
    if (cc.line != LineState::kInvalid) {
      if (cc.line != LineState::kModified && cc.line != LineState::kExclusive) {
        fail("undeclared-transition", "Fetch reached a non-owned line");
        return;
      }
      resp.has_data = 1;
      resp.ver = cc.cv;
      cfsm(c, invalidate ? CacheEvent::kFetchInv : CacheEvent::kFetch);
    } else if (cc.wb_entry != 0) {
      resp.has_data = 1;
      resp.ver = cc.wb_ver;
    } else {
      resp.has_data = 0;  // silently evicted clean E
    }
    send(c, l2_id, resp);
  }

  void cache_writeback_ack(unsigned c) {
    CacheSt& cc = st.c[c];
    if (cc.wb_entry == 0) {
      fail("model-internal", "WriteBackAck without a write-back in flight");
      return;
    }
    cc.wb_entry = 0;
    cc.wb_ver = 0;
  }

  // ---- dispatch ----

  void deliver_to_l2(unsigned src, const MMsg& m) {
    L2St& b = st.l2;
    if (src == mem_id) {
      switch (m.type) {
        case MsgType::kReadResponse: handle_fill_response(m); break;
        case MsgType::kWriteBackAck:
          break;  // eviction write-back acknowledged; nothing held on it
        default:
          fail("model-internal",
               std::string("L2 received ") + noc::to_string(m.type) +
                   " from the memory tier");
      }
      return;
    }
    switch (m.type) {
      case MsgType::kReadShared:
      case MsgType::kReadExclusive:
      case MsgType::kUpgrade:
      case MsgType::kWriteWord:
      case MsgType::kAtomicSwap:
        bank_request(m.type, src, m.track != 0);
        break;
      case MsgType::kWriteBack:
        if (b.r_active != 0) {
          recall_write_back(src, m);
        } else {
          bank_write_back(src, m);
        }
        break;
      case MsgType::kInvalidateAck:
        if (b.r_active != 0) {
          recall_invalidate_ack(src);
        } else {
          bank_invalidate_ack(src);
        }
        break;
      case MsgType::kUpdateAck: bank_update_ack(src, m); break;
      case MsgType::kFetchResponse:
        // Dangling responses (a WriteBack crossed the fetch) arrive ahead
        // of any genuine response from the same cache under per-flow FIFO.
        if (b.stale_fetch[src] != 0) {
          --b.stale_fetch[src];
          return;
        }
        if (b.r_active != 0) {
          recall_fetch_response(src, m);
        } else if (b.active != 0 && b.waiting_data != 0 &&
                   b.data_from == src) {
          on_data_arrived(m);
        }
        // else: the owner's WriteBack raced ahead; duplicate data dropped.
        break;
      default:
        fail("model-internal",
             std::string("L2 received ") + noc::to_string(m.type));
    }
  }

  void deliver(unsigned src, unsigned dst) {
    Chan& ch = st.ch[src][dst];
    MMsg m = ch.m[0];
    for (unsigned i = 1; i < ch.n; ++i) ch.m[i - 1] = ch.m[i];
    ch.m[--ch.n] = MMsg{};
    if (dst == mem_id) {
      switch (m.type) {
        case MsgType::kReadShared: mem_read_shared(); break;
        case MsgType::kWriteBack: mem_write_back(m); break;
        default:
          fail("model-internal",
               std::string("memory received ") + noc::to_string(m.type));
      }
      return;
    }
    if (dst == l2_id) {
      deliver_to_l2(src, m);
      return;
    }
    switch (m.type) {
      case MsgType::kReadResponse: cache_read_response(dst, m); break;
      case MsgType::kUpgradeAck: cache_upgrade_ack(dst, m); break;
      case MsgType::kWriteAck: cache_write_ack(dst, m); break;
      case MsgType::kSwapResponse: cache_swap_response(dst); break;
      case MsgType::kInvalidate: cache_invalidate(dst); break;
      case MsgType::kUpdateWord: cache_update(dst, m); break;
      case MsgType::kFetch: cache_fetch(dst, false); break;
      case MsgType::kFetchInv: cache_fetch(dst, true); break;
      case MsgType::kWriteBackAck: cache_writeback_ack(dst); break;
      default:
        fail("model-internal",
             std::string("cache received ") + noc::to_string(m.type));
    }
  }

  void apply(const HAct& a) {
    switch (a.kind) {
      case HAct::Kind::kLoadMiss: do_load_miss(a.cache); break;
      case HAct::Kind::kStore: do_store(a.cache); break;
      case HAct::Kind::kAtomic: do_atomic(a.cache); break;
      case HAct::Kind::kEvict: do_evict(a.cache); break;
      case HAct::Kind::kEvictDirty: do_evict_dirty(a.cache); break;
      case HAct::Kind::kUntrackedRead: do_untracked_read(); break;
      case HAct::Kind::kL2Evict: do_l2_evict(); break;
      case HAct::Kind::kDeliver: deliver(a.src, a.dst); break;
    }
  }
};

/// Enumerate the actions enabled in \p s.
void enabled_actions(const State& s, const HierConfig& cfg,
                     std::vector<HAct>& out) {
  out.clear();
  const unsigned nc = cfg.num_l1;
  const bool mesi = cfg.protocol == mem::Protocol::kWbMesi;
  for (unsigned c = 0; c < nc; ++c) {
    const CacheSt& cc = s.c[c];
    if (cc.pend != Pend::kNone) continue;
    if (cc.line == LineState::kInvalid) {
      out.push_back({HAct::Kind::kLoadMiss, std::uint8_t(c), 0, 0, 0});
    }
    if (mesi || cc.wbuf < cfg.wbuf_depth) {
      out.push_back({HAct::Kind::kStore, std::uint8_t(c), 0, 0, 0});
    }
    if (!mesi) {
      out.push_back({HAct::Kind::kAtomic, std::uint8_t(c), 0, 0, 0});
    }
    if (cc.line == LineState::kShared || cc.line == LineState::kExclusive) {
      out.push_back({HAct::Kind::kEvict, std::uint8_t(c), 0, 0, 0});
    }
    if (cc.line == LineState::kModified && cc.wb_entry == 0) {
      out.push_back({HAct::Kind::kEvictDirty, std::uint8_t(c), 0, 0, 0});
    }
  }
  if (cfg.untracked_reads && s.untracked == 0) {
    out.push_back({HAct::Kind::kUntrackedRead, 0, 0, 0, 0});
  }
  // Capacity pressure: an idle resident line can always be the victim of a
  // foreign fill (l2_bank.cpp recalls only transaction-free lines).
  if (s.l2.line != LineState::kInvalid && s.l2.active == 0 &&
      s.l2.fill == 0 && s.l2.r_active == 0) {
    out.push_back({HAct::Kind::kL2Evict, 0, 0, 0, 0});
  }
  for (unsigned a = 0; a < nc + 2; ++a) {
    for (unsigned d = 0; d < nc + 2; ++d) {
      const Chan& ch = s.ch[a][d];
      if (ch.n == 0) continue;
      out.push_back({HAct::Kind::kDeliver, 0, std::uint8_t(ch.m[0].type),
                     std::uint8_t(a), std::uint8_t(d)});
    }
  }
}

/// True if a message of type \p t is in flight from the L2 to cache \p c.
bool in_flight_to(const State& s, unsigned l2, unsigned c, MsgType t) {
  const Chan& ch = s.ch[l2][c];
  for (unsigned k = 0; k < ch.n; ++k) {
    if (ch.m[k].type == t) return true;
  }
  return false;
}

/// Point-in-time safety invariants. Returns {rule, detail} or {nullptr, ""}.
std::pair<const char*, std::string> check_invariants(const State& s,
                                                     const HierConfig& cfg) {
  const unsigned nc = cfg.num_l1;
  const unsigned l2 = nc;
  const bool mesi = cfg.protocol == mem::Protocol::kWbMesi;
  const L2St& b = s.l2;
  const bool resident = b.line != LineState::kInvalid;

  // Inclusion, L1 side: a valid L1 copy needs its L2 line resident (or the
  // recall that is tearing it down still in flight).
  for (unsigned c = 0; c < nc; ++c) {
    if (s.c[c].line == LineState::kInvalid) continue;
    if (!resident && b.r_active == 0) {
      return {"inclusion", "cache" + std::to_string(c) + " holds " +
                               proto::to_string(s.c[c].line) +
                               " but the L2 line is not resident"};
    }
  }
  // Inclusion, L2 side: a non-resident line tracks no sharers.
  if (!resident && b.r_active == 0 && (b.presence != 0 || b.ddirty != 0)) {
    return {"inclusion",
            "the L2 line is not resident but its L1-facing directory still "
            "tracks sharers"};
  }
  // Two-tier tracking: a resident line is the L2's exclusive memory grant.
  if (resident && s.mem.dirty_owner == 0) {
    return {"l2-tracking",
            "the L2 line is resident but the memory directory does not "
            "record the L2 as owner"};
  }
  // Freshness: a clean (Exclusive) L2 line carries exactly DRAM's version.
  if (b.line == LineState::kExclusive && b.ver != s.mem.ver) {
    return {"freshness", "clean L2 line holds " + ver_name(b.ver) +
                             " but memory holds " + ver_name(s.mem.ver)};
  }

  if (mesi) {
    for (unsigned c = 0; c < nc; ++c) {
      if (s.c[c].line != LineState::kExclusive &&
          s.c[c].line != LineState::kModified) {
        continue;
      }
      for (unsigned o = 0; o < nc; ++o) {
        if (o != c && s.c[o].line != LineState::kInvalid) {
          return {"swmr", "cache" + std::to_string(c) + " holds " +
                              proto::to_string(s.c[c].line) + " while cache" +
                              std::to_string(o) + " holds a valid copy"};
        }
      }
      if (b.ddirty == 0 || b.downer != c || b.presence != (1u << c)) {
        return {"dir-agreement",
                "cache" + std::to_string(c) + " holds " +
                    proto::to_string(s.c[c].line) +
                    " but the L2 directory does not record it as sole owner"};
      }
      if (s.c[c].cv != s.latest) {
        return {"data-value", "owner cache" + std::to_string(c) + " holds " +
                                  ver_name(s.c[c].cv) +
                                  " but the latest write is " +
                                  ver_name(s.latest)};
      }
    }
  }

  for (unsigned c = 0; c < nc; ++c) {
    const CacheSt& cc = s.c[c];
    if (cc.line != LineState::kShared) continue;
    if (cc.cv == kOwnPending) {
      if (cc.wbuf == 0) {
        return {"data-value",
                "cache" + std::to_string(c) +
                    " is own-pending with an empty write buffer"};
      }
      continue;
    }
    if (cc.cv < s.latest && b.active == 0 &&
        !in_flight_to(s, l2, c, MsgType::kInvalidate) &&
        !in_flight_to(s, l2, c, MsgType::kUpdateWord)) {
      return {"swmr", "cache" + std::to_string(c) + " holds stale " +
                          ver_name(cc.cv) + " (latest is " +
                          ver_name(s.latest) +
                          ") with no repair in flight — a lost invalidation"};
    }
    if (((b.presence >> c) & 1u) == 0 && b.active == 0 &&
        !in_flight_to(s, l2, c, MsgType::kInvalidate) &&
        !in_flight_to(s, l2, c, MsgType::kFetchInv)) {
      return {"dir-agreement",
              "cache" + std::to_string(c) +
                  " holds a valid copy but its presence bit is clear and no "
                  "invalidation is in flight"};
    }
  }

  // Convergence: at quiescence the last serialized write is held by the L1
  // owner, else the resident L2 line, else DRAM.
  if (is_quiescent(s, cfg)) {
    if (b.ddirty != 0) {
      unsigned o = b.downer;
      if (o < nc && (s.c[o].line == LineState::kExclusive ||
                     s.c[o].line == LineState::kModified)) {
        if (s.c[o].cv != s.latest) {
          return {"data-value", "quiescent owner cache" + std::to_string(o) +
                                    " holds " + ver_name(s.c[o].cv) +
                                    " but the latest write is " +
                                    ver_name(s.latest)};
        }
      } else if (b.ver != s.latest) {
        // Legal only as a silently-evicted clean Exclusive at the L1.
        return {"data-value",
                "quiescent with a dirty L2 directory entry, no owner copy "
                "and a stale L2 line (" + ver_name(b.ver) + " vs " +
                    ver_name(s.latest) + ")"};
      }
    } else if (resident) {
      if (b.ver != s.latest) {
        return {"data-value", "quiescent but the L2 line holds " +
                                  ver_name(b.ver) +
                                  " and the last write is " +
                                  ver_name(s.latest)};
      }
    } else if (s.mem.ver != s.latest) {
      return {"data-value", "quiescent, line evicted, but memory holds " +
                                ver_name(s.mem.ver) +
                                " and the last write is " +
                                ver_name(s.latest)};
    }
  }
  return {nullptr, std::string()};
}

const char* protocol_flag(mem::Protocol p) {
  switch (p) {
    case mem::Protocol::kWti: return "wti";
    case mem::Protocol::kWbMesi: return "mesi";
    case mem::Protocol::kWtu: return "wtu";
  }
  return "?";
}

std::string make_fuzz_hint(const HierConfig& cfg) {
  std::string h = "tools/ccnoc_fuzz --protocol ";
  h += protocol_flag(cfg.protocol);
  h += " --cpus " + std::to_string(std::max(4u, cfg.num_l1));
  h += " --l2-banks 2 --seeds 200 --minimize";
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (std::uint8_t(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        unsigned(std::uint8_t(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace

struct HierChecker::Impl {
  HierConfig cfg;
  ModelResult result;
  bool ran = false;

  // Explored graph (model.cpp's layout): keys live in the node-based map so
  // the pointers stay valid; ids are BFS discovery order.
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<const std::string*> keys;
  std::vector<std::uint32_t> parent;
  std::vector<HAct> pact;
  std::vector<std::uint8_t> quies;
  std::vector<std::uint32_t> efrom;
  std::vector<std::uint32_t> eto;

  explicit Impl(HierConfig c) : cfg(c) {
    cfg.num_l1 = std::clamp(cfg.num_l1, 2u, kMaxL1);
    cfg.wbuf_depth = std::clamp(cfg.wbuf_depth, 1u, 3u);
  }

  std::uint32_t intern(const std::string& key, bool* fresh) {
    auto [it, inserted] = ids.emplace(key, std::uint32_t(keys.size()));
    *fresh = inserted;
    if (inserted) keys.push_back(&it->first);
    return it->second;
  }

  std::vector<std::string> trace_to(std::uint32_t id) const {
    std::vector<std::string> out;
    for (std::uint32_t at = id; at != 0; at = parent[at]) {
      out.push_back(pact[at].to_string(cfg.num_l1));
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void add_violation(const char* rule, std::string detail,
                     std::vector<std::string> trace, const State& where) {
    Violation v;
    v.rule = rule;
    v.detail = std::move(detail);
    v.trace = std::move(trace);
    v.state_dump = dump_state(where, cfg);
    v.fuzz_hint = make_fuzz_hint(cfg);
    result.violations.push_back(std::move(v));
  }

  void run() {
    if (ran) return;
    ran = true;
    const auto t0 = std::chrono::steady_clock::now();

    State init;
    canonicalize(init, cfg);
    bool fresh = false;
    intern(encode(init, cfg), &fresh);
    parent.push_back(0);
    pact.push_back(HAct{});
    quies.push_back(1);

    std::vector<HAct> actions;
    bool capped = false;
    bool stopped = false;
    for (std::uint32_t cur = 0; cur < keys.size() && !stopped; ++cur) {
      const State s = decode(*keys[cur], cfg);
      enabled_actions(s, cfg, actions);
      for (const HAct& a : actions) {
        Stepper stp(cfg, result.covered, s);
        stp.apply(a);
        ++result.edges;
        if (stp.failed) {
          auto trace = trace_to(cur);
          trace.push_back(a.to_string(cfg.num_l1) + "  <-- fails here");
          add_violation(stp.frule.c_str(), stp.fdetail, std::move(trace), s);
          stopped = true;
          break;
        }
        canonicalize(stp.st, cfg);
        bool is_new = false;
        std::uint32_t id = intern(encode(stp.st, cfg), &is_new);
        efrom.push_back(cur);
        eto.push_back(id);
        if (!is_new) continue;
        parent.push_back(cur);
        pact.push_back(a);
        quies.push_back(is_quiescent(stp.st, cfg) ? 1 : 0);
        auto [rule, detail] = check_invariants(stp.st, cfg);
        if (rule != nullptr) {
          add_violation(rule, std::move(detail), trace_to(id), stp.st);
          stopped = true;
          break;
        }
        if (keys.size() >= cfg.max_states) {
          capped = true;
          stopped = true;
          break;
        }
      }
    }

    result.states = keys.size();
    result.closed = !capped && result.violations.empty();
    // Dead-row accounting covers the extension table: the flat rows a
    // hierarchy run exercises keep their flat ids, which `--all` unions
    // with the flat sweeps.
    const auto& xt = proto::l2_table_for(cfg.protocol);
    for (int id = xt.base_id(); id < xt.base_id() + xt.row_count(); ++id) {
      if (!result.covered.covered(id)) result.dead_rows.push_back(id);
    }
    if (result.closed) check_deadlock();
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  }

  /// Deadlock freedom: reverse BFS from the quiescent set (model.cpp).
  void check_deadlock() {
    const std::size_t n = keys.size();
    std::vector<std::uint32_t> off(n + 1, 0);
    for (std::uint32_t to : eto) ++off[to + 1];
    for (std::size_t i = 1; i <= n; ++i) off[i] += off[i - 1];
    std::vector<std::uint32_t> radj(eto.size());
    {
      std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
      for (std::size_t e = 0; e < eto.size(); ++e) {
        radj[cursor[eto[e]]++] = efrom[e];
      }
    }
    std::vector<std::uint8_t> can_finish(n, 0);
    std::vector<std::uint32_t> stack;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (quies[i] != 0) {
        can_finish[i] = 1;
        stack.push_back(i);
      }
    }
    while (!stack.empty()) {
      std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
        std::uint32_t u = radj[e];
        if (can_finish[u] == 0) {
          can_finish[u] = 1;
          stack.push_back(u);
        }
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (can_finish[i] != 0) continue;
      add_violation("deadlock",
                    "state s" + std::to_string(i) +
                        " can never reach a quiescent state again",
                    trace_to(i), decode(*keys[i], cfg));
      return;
    }
  }
};

HierChecker::HierChecker(HierConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}
HierChecker::~HierChecker() = default;
HierChecker::HierChecker(HierChecker&&) noexcept = default;
HierChecker& HierChecker::operator=(HierChecker&&) noexcept = default;

ModelResult HierChecker::run() {
  impl_->run();
  return impl_->result;
}

std::string to_json(const HierConfig& cfg, const ModelResult& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"hier\": true,\n";
  os << "  \"protocol\": \"" << protocol_flag(cfg.protocol) << "\",\n";
  os << "  \"num_l1\": " << cfg.num_l1 << ",\n";
  os << "  \"wbuf_depth\": " << cfg.wbuf_depth << ",\n";
  os << "  \"untracked_reads\": " << (cfg.untracked_reads ? "true" : "false")
     << ",\n";
  os << "  \"closed\": " << (r.closed ? "true" : "false") << ",\n";
  os << "  \"states\": " << r.states << ",\n";
  os << "  \"edges\": " << r.edges << ",\n";
  os << "  \"wall_ms\": " << r.wall_ms << ",\n";
  os << "  \"ok\": " << (r.ok() ? "true" : "false") << ",\n";
  os << "  \"covered_rows\": [";
  bool first = true;
  for (int id : r.covered.rows()) {
    os << (first ? "" : ", ") << id;
    first = false;
  }
  os << "],\n";
  os << "  \"dead_rows\": [";
  first = true;
  for (int id : r.dead_rows) {
    os << (first ? "" : ",") << "\n    {\"id\": " << id << ", \"name\": \""
       << json_escape(proto::row_name(id)) << "\"}";
    first = false;
  }
  os << (r.dead_rows.empty() ? "" : "\n  ") << "],\n";
  os << "  \"violations\": [";
  first = true;
  for (const Violation& v : r.violations) {
    os << (first ? "" : ",") << "\n    {\n";
    os << "      \"rule\": \"" << json_escape(v.rule) << "\",\n";
    os << "      \"detail\": \"" << json_escape(v.detail) << "\",\n";
    os << "      \"trace\": [";
    bool tf = true;
    for (const std::string& step : v.trace) {
      os << (tf ? "" : ", ") << "\"" << json_escape(step) << "\"";
      tf = false;
    }
    os << "],\n";
    os << "      \"state\": \"" << json_escape(v.state_dump) << "\",\n";
    os << "      \"fuzz_hint\": \"" << json_escape(v.fuzz_hint) << "\"\n";
    os << "    }";
    first = false;
  }
  os << (r.violations.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace ccnoc::verify
