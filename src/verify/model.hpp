#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/protocol.hpp"
#include "proto/coverage.hpp"
#include "proto/fsm.hpp"
#include "proto/tables.hpp"

/// \file model.hpp
/// Exhaustive protocol model checker. An abstract, untimed but
/// message-level-faithful model of one coherent block — N cache-line FSMs,
/// one full-map directory entry, one bank transaction engine and bounded
/// FIFO channels — is explored by breadth-first reachability until the
/// state space closes. Every transition the model takes is routed through
/// the SAME declarative tables (proto/tables.hpp) the cycle simulator's
/// controllers use, so sim and checker cannot silently diverge: a move one
/// engine makes that the other's table does not declare is an error.
///
/// Invariants checked at every reachable state:
///  - SWMR / staleness: a valid copy left behind by a completed write with
///    nothing in flight to repair it (the lost-invalidation shape);
///    structurally for MESI, at most one owned copy and no copy beside it.
///  - Data value: copies and memory carry abstract write versions; the
///    version algebra proves reads return the last serialized write.
///  - Directory agreement: owned lines are recorded dirty with the right
///    owner; valid copies keep their presence bit unless an invalidation
///    is on the wire.
///  - Deadlock freedom: a quiescent state is reachable from every state.
///  - Coverage: every declared table row is taken somewhere (dead rows are
///    reported), and bounded resources (channels, queues) never overflow.
///
/// BFS order makes the first counterexample minimal in protocol actions.

namespace ccnoc::verify {

struct ModelConfig {
  mem::Protocol protocol = mem::Protocol::kWti;
  unsigned num_caches = 2;  ///< 2..4 abstract caches
  unsigned wbuf_depth = 2;  ///< WT write-buffer entries per cache
  bool direct_ack = false;  ///< paper §4.2 direct-acknowledgement mode
  bool untracked_reads = true;  ///< model one icache-style untracked reader

  /// Inject the PR-3 lost-invalidation fault: cache \p fault_cache skips
  /// applying its (fault_after+1)-th incoming invalidation but still acks.
  bool fault_skip_invalidate = false;
  unsigned fault_cache = 1;
  unsigned fault_after = 0;

  std::size_t max_states = 4'000'000;  ///< explosion guard (fixpoint fails above)
};

/// One edge label of the explored graph, printable as a message-level step.
struct Action {
  enum class Kind : std::uint8_t {
    kLoadMiss,       ///< CPU load miss issued (read request leaves the cache)
    kStore,          ///< CPU store issued
    kAtomic,         ///< CPU atomic issued
    kEvict,          ///< capacity eviction of a clean copy
    kEvictDirty,     ///< capacity eviction of a Modified copy (write-back)
    kUntrackedRead,  ///< icache-style untracked read issued
    kDeliver,        ///< head-of-channel message delivered
  };
  Kind kind = Kind::kDeliver;
  std::uint8_t cache = 0;  ///< acting cache (CPU kinds)
  // kDeliver payload:
  std::uint8_t msg_type = 0;  ///< noc::MsgType
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
  std::uint8_t ver = 0;

  [[nodiscard]] std::string to_string(unsigned num_caches) const;
};

struct Violation {
  std::string rule;    ///< e.g. "swmr", "data-value", "dir-agreement", ...
  std::string detail;  ///< human-readable description at the failing state
  std::vector<std::string> trace;  ///< message-level scenario from reset
  std::string state_dump;          ///< the failing state, pretty-printed
  /// Replayable hint: a ccnoc_fuzz command line exercising the same shape.
  std::string fuzz_hint;
};

struct ModelResult {
  bool closed = false;       ///< fixpoint reached below max_states
  std::size_t states = 0;    ///< distinct reachable states
  std::size_t edges = 0;     ///< explored transitions
  std::vector<Violation> violations;
  proto::CoverageSet covered;       ///< table rows the model exercised
  std::vector<int> dead_rows;       ///< declared rows never taken
  double wall_ms = 0.0;

  [[nodiscard]] bool ok() const { return closed && violations.empty(); }
};

class ModelChecker {
 public:
  explicit ModelChecker(ModelConfig cfg);
  ~ModelChecker();
  ModelChecker(ModelChecker&&) noexcept;
  ModelChecker& operator=(ModelChecker&&) noexcept;

  /// Run BFS reachability to fixpoint (or first violation / state cap).
  ModelResult run();

  /// DOT rendering of the explored graph (call after run()). Graphs larger
  /// than \p node_limit are truncated to the BFS prefix, noted in a comment.
  [[nodiscard]] std::string to_dot(std::size_t node_limit = 2000) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// JSON rendering of a result (tools/ccnoc_model, CI artifacts).
[[nodiscard]] std::string to_json(const ModelConfig& cfg, const ModelResult& r);

}  // namespace ccnoc::verify
