#pragma once

#include <cstring>

#include "mem/direct_memory.hpp"
#include "mem/storage.hpp"
#include "snoop/bus.hpp"

/// \file memory.hpp
/// The snooping platform's single main memory: services every bus
/// transaction (block reads, write-through words, write-backs, atomics)
/// and absorbs dirty flushes. Also exposes the untimed DirectMemoryIf
/// backdoor for program loading and verification.

namespace ccnoc::snoop {

class SnoopMemory final : public MemorySlaveIf, public mem::DirectMemoryIf {
 public:
  explicit SnoopMemory(unsigned block_bytes = 32) : block_bytes_(block_bytes) {}

  SnoopReply service(const BusTxn& txn, const SnoopReply* flush) override {
    SnoopReply out;
    const sim::Addr block = txn.addr & ~sim::Addr(block_bytes_ - 1);
    // A dirty owner's flush reaches memory in the same transaction
    // (Illinois-style: flush to both requester and memory).
    if (flush != nullptr && flush->data_len == block_bytes_) {
      storage_.write(block, flush->data.data(), block_bytes_);
    }
    switch (txn.op) {
      case BusOp::kBusRead:
      case BusOp::kBusReadX:
        out.data_len = std::uint8_t(block_bytes_);
        storage_.read(block, out.data.data(), block_bytes_);
        break;
      case BusOp::kBusUpgr:
        break;
      case BusOp::kBusWriteWord:
        storage_.write(txn.addr, txn.data.data(), txn.size);
        break;
      case BusOp::kBusWriteBack:
        CCNOC_ASSERT(txn.data_len == block_bytes_, "short bus write-back");
        storage_.write(block, txn.data.data(), block_bytes_);
        break;
      case BusOp::kBusSwap:
      case BusOp::kBusAdd: {
        out.data_len = txn.size;
        storage_.read(txn.addr, out.data.data(), txn.size);
        std::uint64_t operand = 0;
        std::memcpy(&operand, txn.data.data(), txn.size);
        if (txn.op == BusOp::kBusAdd) {
          storage_.write_uint(txn.addr, storage_.read_uint(txn.addr, txn.size) + operand,
                              txn.size);
        } else {
          storage_.write(txn.addr, txn.data.data(), txn.size);
        }
        break;
      }
    }
    return out;
  }

  // Untimed backdoor (loading / verification).
  void write(sim::Addr a, const void* data, unsigned len) override {
    storage_.write(a, data, len);
  }
  void read(sim::Addr a, void* out, unsigned len) const override {
    storage_.read(a, out, len);
  }

  [[nodiscard]] mem::PagedStorage& storage() { return storage_; }

 private:
  unsigned block_bytes_;
  mem::PagedStorage storage_;
};

}  // namespace ccnoc::snoop
