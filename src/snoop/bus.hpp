#pragma once

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

/// \file bus.hpp
/// Snooping bus substrate (extension): the organization the paper's
/// related work ([4, 11, 18]) evaluated write policies on. One shared
/// medium carries atomic transactions; every cache observes every
/// transaction's address phase and reacts in place (invalidate, supply
/// dirty data, assert "shared"). This is the platform on which
/// write-through was historically measured to lose — `bench_ext_snoop`
/// reproduces that classic result next to the paper's directory/NoC one.

namespace ccnoc::snoop {

enum class BusOp : std::uint8_t {
  kBusRead,       ///< read miss: fetch a block, sharable
  kBusReadX,      ///< write miss: fetch a block exclusively (others invalidate)
  kBusUpgr,       ///< S→M upgrade: invalidate others, no data transfer
  kBusWriteWord,  ///< write-through word to memory (others invalidate)
  kBusWriteBack,  ///< dirty-block eviction to memory
  kBusSwap,       ///< atomic swap performed at memory
  kBusAdd,        ///< atomic fetch-and-add performed at memory
};

/// Number of BusOp values; keeps per-op counter tables in sync with the
/// enum (kBusAdd must stay the last enumerator).
inline constexpr std::size_t kNumBusOps = std::size_t(BusOp::kBusAdd) + 1;

[[nodiscard]] const char* to_string(BusOp op);

inline constexpr unsigned kMaxBusData = 64;

struct BusTxn {
  BusOp op = BusOp::kBusRead;
  sim::Addr addr = 0;
  unsigned initiator = 0;  ///< cache index (memory never initiates)
  std::uint8_t size = 4;   ///< word ops: access size
  std::uint8_t data_len = 0;
  std::array<std::uint8_t, kMaxBusData> data{};
};

/// What a snooper reports during the address phase.
struct SnoopReply {
  bool has_copy = false;       ///< asserts the bus "shared" line
  bool supplies_data = false;  ///< dirty owner flushes the block
  std::uint8_t data_len = 0;
  std::array<std::uint8_t, kMaxBusData> data{};
};

class SnoopAgent {
 public:
  virtual ~SnoopAgent() = default;
  /// Observe \p txn (initiated by another agent) atomically at grant time.
  virtual SnoopReply snoop(const BusTxn& txn) = 0;
};

/// The memory slave: the default data source/sink of every transaction.
class MemorySlaveIf {
 public:
  virtual ~MemorySlaveIf() = default;
  /// Service \p txn; \p flush holds a dirty owner's block when one
  /// supplied data (memory absorbs it). Returns response data (block image
  /// for reads, old value for atomics).
  virtual SnoopReply service(const BusTxn& txn, const SnoopReply* flush) = 0;
};

struct SnoopBusConfig {
  sim::Cycle arbitration = 2;    ///< request → grant
  sim::Cycle address_phase = 1;  ///< address + snoop window
  sim::Cycle beat = 1;           ///< cycles per 4-byte data beat
  sim::Cycle memory_latency = 6; ///< added when memory sources the data
  unsigned block_bytes = 32;
};

class SnoopBus {
 public:
  /// Completion: aggregated snoop result + response data for the initiator.
  using CompleteFn = std::function<void(const SnoopReply&)>;

  SnoopBus(sim::Simulator& sim, SnoopBusConfig cfg);
  SnoopBus(const SnoopBus&) = delete;
  SnoopBus& operator=(const SnoopBus&) = delete;

  /// Register a snooping cache; its index is its initiator id.
  unsigned attach_cache(SnoopAgent& agent) {
    agents_.push_back(&agent);
    return unsigned(agents_.size() - 1);
  }

  void attach_memory(MemorySlaveIf& mem) { memory_ = &mem; }

  /// Queue a transaction; grants are strictly FIFO (a fair bus arbiter),
  /// each transaction is atomic, and the completion fires at the end of
  /// its data phase.
  void request(BusTxn txn, CompleteFn on_complete);

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_transactions() const { return total_txns_; }
  [[nodiscard]] const SnoopBusConfig& config() const { return cfg_; }

 private:
  void grant(const BusTxn& txn, const CompleteFn& on_complete);

  sim::Simulator& sim_;
  SnoopBusConfig cfg_;
  std::vector<SnoopAgent*> agents_;
  MemorySlaveIf* memory_ = nullptr;
  sim::Cycle busy_until_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_txns_ = 0;
  // Typed stat handles, resolved once at construction: request() runs once
  // per bus transaction and must not rebuild names or search the registry.
  sim::Sample* grant_delay_sample_ = nullptr;
  sim::Counter* txns_ctr_ = nullptr;
  sim::Counter* bytes_ctr_ = nullptr;
  std::array<sim::Counter*, kNumBusOps> op_ctr_{};
};

}  // namespace ccnoc::snoop
