#include "snoop/bus.hpp"

#include <algorithm>

namespace ccnoc::snoop {

const char* to_string(BusOp op) {
  switch (op) {
    case BusOp::kBusRead: return "BusRead";
    case BusOp::kBusReadX: return "BusReadX";
    case BusOp::kBusUpgr: return "BusUpgr";
    case BusOp::kBusWriteWord: return "BusWriteWord";
    case BusOp::kBusWriteBack: return "BusWriteBack";
    case BusOp::kBusSwap: return "BusSwap";
    case BusOp::kBusAdd: return "BusAdd";
  }
  return "?";
}

SnoopBus::SnoopBus(sim::Simulator& sim, SnoopBusConfig cfg) : sim_(sim), cfg_(cfg) {
  auto& st = sim_.stats();
  grant_delay_sample_ = &st.sample("snoopbus.grant_delay");
  txns_ctr_ = &st.counter("snoopbus.transactions");
  bytes_ctr_ = &st.counter("snoopbus.bytes");
  for (std::size_t op = 0; op < kNumBusOps; ++op) {
    op_ctr_[op] = &st.counter(std::string("snoopbus.op.") + to_string(BusOp(op)));
  }
}

void SnoopBus::request(BusTxn txn, CompleteFn on_complete) {
  CCNOC_ASSERT(memory_ != nullptr, "bus has no memory slave");
  CCNOC_ASSERT(txn.initiator < agents_.size(), "unknown initiator");

  // Bus occupancy: arbitration + address/snoop phase + data beats, plus the
  // memory access when memory sources or absorbs data.
  sim::Cycle grant_at = std::max(sim_.now(), busy_until_);
  grant_delay_sample_->add(double(grant_at - sim_.now()));

  unsigned request_beats = (txn.data_len + 3) / 4;
  unsigned response_beats = 0;
  bool memory_involved = true;
  switch (txn.op) {
    case BusOp::kBusRead:
    case BusOp::kBusReadX:
      response_beats = cfg_.block_bytes / 4;
      break;
    case BusOp::kBusUpgr:
      memory_involved = false;
      break;
    case BusOp::kBusWriteWord:
    case BusOp::kBusWriteBack:
      break;
    case BusOp::kBusSwap:
    case BusOp::kBusAdd:
      response_beats = (txn.size + 3) / 4;
      break;
  }
  sim::Cycle busy = cfg_.arbitration + cfg_.address_phase +
                    cfg_.beat * (request_beats + response_beats) +
                    (memory_involved ? cfg_.memory_latency : 0);
  sim::Cycle done = grant_at + busy;
  busy_until_ = done;

  ++total_txns_;
  std::uint64_t bytes = 4u /*address cell*/ + txn.data_len + response_beats * 4u;
  total_bytes_ += bytes;
  txns_ctr_->inc();
  bytes_ctr_->inc(bytes);
  op_ctr_[std::size_t(txn.op)]->inc();

  // The address phase (snoop + memory service) is atomic at grant time;
  // the completion is delivered at the end of the data phase.
  sim_.queue().schedule_at(done, [this, txn = std::move(txn),
                                  cb = std::move(on_complete)]() mutable {
    grant(txn, cb);
  });
}

void SnoopBus::grant(const BusTxn& txn, const CompleteFn& on_complete) {
  SnoopReply merged;
  SnoopReply flush;
  bool have_flush = false;
  for (unsigned i = 0; i < agents_.size(); ++i) {
    if (i == txn.initiator) continue;
    SnoopReply r = agents_[i]->snoop(txn);
    merged.has_copy |= r.has_copy;
    if (r.supplies_data) {
      CCNOC_ASSERT(!have_flush, "two owners flushed the same block");
      flush = r;
      have_flush = true;
    }
  }
  SnoopReply mem = memory_->service(txn, have_flush ? &flush : nullptr);

  SnoopReply result;
  result.has_copy = merged.has_copy;
  result.supplies_data = have_flush;
  if (have_flush && (txn.op == BusOp::kBusRead || txn.op == BusOp::kBusReadX)) {
    result.data = flush.data;
    result.data_len = flush.data_len;
  } else {
    result.data = mem.data;
    result.data_len = mem.data_len;
  }
  on_complete(result);
}

}  // namespace ccnoc::snoop
