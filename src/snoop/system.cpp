#include "snoop/system.hpp"

namespace ccnoc::snoop {

SnoopSystem::SnoopSystem(SnoopSystemConfig cfg)
    : cfg_(cfg),
      sim_(cfg.seed),
      map_(cfg.num_cpus, 2),  // bank 0 = data, bank 1 = code (layout only)
      bus_(sim_, [&] {
        SnoopBusConfig b = cfg.bus;
        b.block_bytes = cfg.dcache.block_bytes;
        return b;
      }()),
      memory_(cfg.dcache.block_bytes) {
  CCNOC_ASSERT(cfg_.dcache.block_bytes == cfg_.icache.block_bytes,
               "I/D caches must share one block size");
  bus_.attach_memory(memory_);
  for (unsigned c = 0; c < cfg_.num_cpus; ++c) {
    std::string base = "cpu" + std::to_string(c);
    if (cfg_.protocol == SnoopProtocol::kWti) {
      dcaches_.push_back(std::make_unique<SnoopWtiCache>(sim_, bus_, cfg_.dcache,
                                                         base + ".dcache"));
    } else {
      dcaches_.push_back(std::make_unique<SnoopMesiCache>(sim_, bus_, cfg_.dcache,
                                                          base + ".dcache"));
    }
    // The I-cache is read-only: the write-through controller with no stores
    // is exactly a snooping read cache.
    icaches_.push_back(
        std::make_unique<SnoopWtiCache>(sim_, bus_, cfg_.icache, base + ".icache"));
    cpus_.push_back(std::make_unique<cpu::Processor>(sim_, *dcaches_.back(),
                                                     *icaches_.back(), c, cfg_.cpu));
  }
  kernel_ = std::make_unique<os::Kernel>(map_, memory_, os::ArchKind::kCentralized,
                                         cfg_.kernel);
}

core::RunResult SnoopSystem::run(apps::Workload& workload, unsigned nthreads,
                                 sim::Cycle max_cycles) {
  if (nthreads == 0) nthreads = cfg_.num_cpus;
  for (unsigned t = 0; t < nthreads; ++t) {
    kernel_->create_thread(t % cfg_.num_cpus);
  }
  workload.setup(*kernel_, nthreads);
  for (const auto& tptr : kernel_->threads()) {
    kernel_->set_program(*tptr, workload.make_program(*tptr));
  }
  std::vector<cpu::Processor*> cpu_ptrs;
  for (auto& p : cpus_) cpu_ptrs.push_back(p.get());
  kernel_->launch(cpu_ptrs);

  core::RunResult r;
  r.events = sim_.run_to_completion(max_cycles);
  r.completed = kernel_->all_finished();

  sim::Cycle end = 0;
  for (auto& p : cpus_) {
    end = std::max(end, p->last_active_cycle());
    r.d_stall_cycles += p->d_stall_cycles();
    r.i_stall_cycles += p->i_stall_cycles();
    r.instructions += p->instructions();
  }
  r.exec_cycles = end;
  r.noc_bytes = bus_.total_bytes();
  r.noc_packets = bus_.total_transactions();

  for (auto& d : dcaches_) {
    d->flush_dirty([this](sim::Addr a, const void* data, unsigned len) {
      memory_.write(a, data, len);
    });
  }
  r.verified = r.completed && workload.verify(memory_);
  return r;
}

}  // namespace ccnoc::snoop
