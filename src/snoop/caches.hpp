#pragma once

#include <deque>
#include <string>

#include "cache/controller.hpp"
#include "cache/tag_array.hpp"
#include "snoop/bus.hpp"

/// \file caches.hpp
/// Snooping cache controllers (extension): the classic bus-based versions
/// of the paper's two write policies, as studied by the related work
/// ([4, 11, 18]). Both implement the processor-facing `cache::CacheIface`
/// (so they plug into `cpu::Processor` unchanged) and `SnoopAgent` (they
/// observe every bus transaction).
///
/// * `SnoopWtiCache` — write-through invalidate: every store is a bus
///   transaction; snoopers invalidate on observed writes.
/// * `SnoopMesiCache` — Illinois MESI: stores to E/M lines cost ZERO bus
///   transactions (the property that historically made write-back win on
///   buses); dirty owners flush on observed reads.

namespace ccnoc::snoop {

class SnoopCacheBase : public cache::CacheIface, public SnoopAgent {
 public:
  SnoopCacheBase(sim::Simulator& sim, SnoopBus& bus, cache::CacheConfig cfg,
                 std::string name)
      : sim_(sim), bus_(bus), cfg_(cfg), name_(std::move(name)), tags_(cfg) {
    my_id_ = bus_.attach_cache(*this);
  }
  SnoopCacheBase(const SnoopCacheBase&) = delete;
  SnoopCacheBase& operator=(const SnoopCacheBase&) = delete;

  [[nodiscard]] const cache::CacheConfig& config() const override { return cfg_; }
  [[nodiscard]] cache::TagArray& tags() { return tags_; }
  [[nodiscard]] unsigned bus_id() const { return my_id_; }

  /// Untimed post-run flush of Modified lines (verification).
  template <typename WriteFn>
  void flush_dirty(WriteFn&& write) const {
    tags_.for_each_line([&](const cache::CacheLine& l) {
      if (l.state == cache::LineState::kModified) {
        write(l.block, l.data.data(), cfg_.block_bytes);
      }
    });
  }

 protected:
  [[nodiscard]] std::uint64_t read_line(const cache::CacheLine& l, sim::Addr a,
                                        unsigned size) const;
  void write_line(cache::CacheLine& l, sim::Addr a, unsigned size, std::uint64_t v);

  // Construction-time resolver: derived caches resolve their counters once
  // and bump raw pointers on the per-access paths (registry references are
  // stable for its lifetime).
  [[nodiscard]] sim::Counter* stat(const std::string& suffix) {
    return &sim_.stats().counter(name_ + "." + suffix);
  }

  sim::Simulator& sim_;
  SnoopBus& bus_;
  cache::CacheConfig cfg_;
  std::string name_;
  cache::TagArray tags_;
  unsigned my_id_ = 0;
};

class SnoopWtiCache final : public SnoopCacheBase {
 public:
  SnoopWtiCache(sim::Simulator& sim, SnoopBus& bus, cache::CacheConfig cfg,
                std::string name)
      : SnoopCacheBase(sim, bus, cfg, std::move(name)) {
    st_.load_hits = stat("load_hits");
    st_.load_misses = stat("load_misses");
    st_.atomics = stat("atomics");
    st_.wbuf_full_stalls = stat("wbuf_full_stalls");
    st_.store_hits = stat("store_hits");
    st_.store_misses = stat("store_misses");
    st_.snoop_invalidations = stat("snoop_invalidations");
  }

  cache::AccessResult access(const cache::MemAccess& a, std::uint64_t* hit_value,
                             CompleteFn on_complete) override;
  cache::AccessResult drain(CompleteFn on_drained) override;
  SnoopReply snoop(const BusTxn& txn) override;

  [[nodiscard]] bool idle() const override {
    return pending_ == Pending::kNone && wbuf_.empty() && !drain_in_flight_;
  }

 private:
  enum class Pending { kNone, kLoadDrain, kLoadBus, kStoreBuffer, kSwapDrain, kSwapBus,
                       kDrainWait };
  struct BufEntry {
    sim::Addr addr;
    std::uint8_t size;
    std::uint64_t value;
  };

  void perform_store(const cache::MemAccess& a);
  void start_drain();
  void issue_read();
  void issue_atomic();
  void on_write_done();

  std::deque<BufEntry> wbuf_;
  bool drain_in_flight_ = false;
  Pending pending_ = Pending::kNone;
  cache::MemAccess pending_access_{};
  CompleteFn pending_cb_;

  /// Typed stat handles, resolved once at construction (see SnoopCacheBase).
  struct Stats {
    sim::Counter* load_hits;
    sim::Counter* load_misses;
    sim::Counter* atomics;
    sim::Counter* wbuf_full_stalls;
    sim::Counter* store_hits;
    sim::Counter* store_misses;
    sim::Counter* snoop_invalidations;
  };
  Stats st_;
};

class SnoopMesiCache final : public SnoopCacheBase {
 public:
  SnoopMesiCache(sim::Simulator& sim, SnoopBus& bus, cache::CacheConfig cfg,
                 std::string name)
      : SnoopCacheBase(sim, bus, cfg, std::move(name)) {
    st_.load_hits = stat("load_hits");
    st_.load_misses = stat("load_misses");
    st_.store_hits_em = stat("store_hits_em");
    st_.store_hits_s = stat("store_hits_s");
    st_.upgrade_retries = stat("upgrade_retries");
    st_.store_misses = stat("store_misses");
    st_.writebacks = stat("writebacks");
    st_.snoop_flushes = stat("snoop_flushes");
    st_.snoop_invalidations = stat("snoop_invalidations");
  }

  cache::AccessResult access(const cache::MemAccess& a, std::uint64_t* hit_value,
                             CompleteFn on_complete) override;
  SnoopReply snoop(const BusTxn& txn) override;

  [[nodiscard]] bool idle() const override { return pending_ == Pending::kNone; }

  [[nodiscard]] cache::LineState line_state(sim::Addr a) {
    cache::CacheLine* l = tags_.find(tags_.block_of(a));
    return l ? l->state : cache::LineState::kInvalid;
  }

 private:
  enum class Pending { kNone, kMiss, kUpgrade };

  void start_miss(const cache::MemAccess& a, CompleteFn cb);
  void issue_fill();
  void finish(cache::CacheLine& l);

  Pending pending_ = Pending::kNone;
  cache::MemAccess pending_access_{};
  CompleteFn pending_cb_;
  cache::CacheLine* pending_line_ = nullptr;

  /// Typed stat handles, resolved once at construction (see SnoopCacheBase).
  struct Stats {
    sim::Counter* load_hits;
    sim::Counter* load_misses;
    sim::Counter* store_hits_em;
    sim::Counter* store_hits_s;
    sim::Counter* upgrade_retries;
    sim::Counter* store_misses;
    sim::Counter* writebacks;
    sim::Counter* snoop_flushes;
    sim::Counter* snoop_invalidations;
  };
  Stats st_;
};

}  // namespace ccnoc::snoop
