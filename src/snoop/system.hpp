#pragma once

#include <memory>
#include <vector>

#include "core/system.hpp"
#include "snoop/caches.hpp"
#include "snoop/memory.hpp"

/// \file system.hpp
/// Snooping-bus platform builder (extension): n processors, each with a
/// snooping D-cache and a read-only I-cache, one bus, one memory — the
/// classic SMP organization of the paper's related work. Runs the same
/// workloads, OS and processor model as the directory/NoC platform, so
/// `bench_ext_snoop` can compare the two organizations like-for-like.

namespace ccnoc::snoop {

enum class SnoopProtocol { kWti, kMesi };

[[nodiscard]] inline const char* to_string(SnoopProtocol p) {
  return p == SnoopProtocol::kWti ? "snoop-WTI" : "snoop-MESI";
}

struct SnoopSystemConfig {
  unsigned num_cpus = 4;
  SnoopProtocol protocol = SnoopProtocol::kWti;
  cache::CacheConfig dcache{};
  cache::CacheConfig icache{};
  SnoopBusConfig bus{};
  os::KernelConfig kernel{};  ///< SMP by default, like a classic bus SMP
  cpu::CpuConfig cpu{};
  std::uint64_t seed = 1;
};

class SnoopSystem {
 public:
  explicit SnoopSystem(SnoopSystemConfig cfg);
  SnoopSystem(const SnoopSystem&) = delete;
  SnoopSystem& operator=(const SnoopSystem&) = delete;

  /// Run one workload to completion (same contract as core::System::run).
  core::RunResult run(apps::Workload& workload, unsigned nthreads = 0,
                      sim::Cycle max_cycles = 4'000'000'000ull);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] SnoopBus& bus() { return bus_; }
  [[nodiscard]] SnoopMemory& memory() { return memory_; }
  [[nodiscard]] SnoopCacheBase& dcache(unsigned i) { return *dcaches_.at(i); }
  [[nodiscard]] cpu::Processor& processor(unsigned i) { return *cpus_.at(i); }
  [[nodiscard]] os::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] const SnoopSystemConfig& config() const { return cfg_; }

 private:
  SnoopSystemConfig cfg_;
  sim::Simulator sim_;
  mem::AddressMap map_;  ///< partitions the address space for the OS layout
  SnoopBus bus_;
  SnoopMemory memory_;
  std::vector<std::unique_ptr<SnoopCacheBase>> dcaches_;
  std::vector<std::unique_ptr<SnoopWtiCache>> icaches_;
  std::vector<std::unique_ptr<cpu::Processor>> cpus_;
  std::unique_ptr<os::Kernel> kernel_;
};

}  // namespace ccnoc::snoop
