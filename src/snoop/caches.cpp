#include "snoop/caches.hpp"

#include <cstring>

namespace ccnoc::snoop {

using cache::AccessResult;
using cache::AtomicKind;
using cache::CacheLine;
using cache::LineState;
using cache::MemAccess;

std::uint64_t SnoopCacheBase::read_line(const CacheLine& l, sim::Addr a,
                                        unsigned size) const {
  unsigned off = unsigned(a & (cfg_.block_bytes - 1));
  CCNOC_ASSERT(off + size <= cfg_.block_bytes, "access crosses a block boundary");
  std::uint64_t v = 0;
  std::memcpy(&v, l.data.data() + off, size);
  return v;
}

void SnoopCacheBase::write_line(CacheLine& l, sim::Addr a, unsigned size,
                                std::uint64_t v) {
  unsigned off = unsigned(a & (cfg_.block_bytes - 1));
  CCNOC_ASSERT(off + size <= cfg_.block_bytes, "access crosses a block boundary");
  std::memcpy(l.data.data() + off, &v, size);
}

// ------------------------------------------------------------ SnoopWtiCache

AccessResult SnoopWtiCache::access(const MemAccess& a, std::uint64_t* hit_value,
                                   CompleteFn on_complete) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "snoop-WTI cache already busy");
  const sim::Addr block = tags_.block_of(a.addr);

  if (!a.is_store) {
    if (CacheLine* l = tags_.find(block)) {
      st_.load_hits->inc();
      tags_.touch(*l);
      *hit_value = read_line(*l, a.addr, a.size);
      return AccessResult::kHit;
    }
    st_.load_misses->inc();
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    if (cfg_.drain_on_load_miss && !wbuf_.empty()) {
      pending_ = Pending::kLoadDrain;
    } else {
      pending_ = Pending::kLoadBus;
      issue_read();
    }
    return AccessResult::kPending;
  }

  if (a.is_atomic()) {
    st_.atomics->inc();
    if (CacheLine* l = tags_.find(block)) l->state = LineState::kInvalid;
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    if (!wbuf_.empty()) {
      pending_ = Pending::kSwapDrain;
    } else {
      pending_ = Pending::kSwapBus;
      issue_atomic();
    }
    return AccessResult::kPending;
  }

  if (wbuf_.size() >= cfg_.write_buffer_entries) {
    st_.wbuf_full_stalls->inc();
    pending_ = Pending::kStoreBuffer;
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    return AccessResult::kPending;
  }
  perform_store(a);
  return AccessResult::kHit;
}

void SnoopWtiCache::perform_store(const MemAccess& a) {
  if (CacheLine* l = tags_.find(tags_.block_of(a.addr))) {
    st_.store_hits->inc();
    write_line(*l, a.addr, a.size, a.value);
    tags_.touch(*l);
  } else {
    st_.store_misses->inc();
  }
  wbuf_.push_back(BufEntry{a.addr, a.size, a.value});
  start_drain();
}

void SnoopWtiCache::start_drain() {
  if (drain_in_flight_ || wbuf_.empty()) return;
  drain_in_flight_ = true;
  const BufEntry& e = wbuf_.front();
  BusTxn t;
  t.op = BusOp::kBusWriteWord;
  t.addr = e.addr;
  t.initiator = my_id_;
  t.size = e.size;
  t.data_len = e.size;
  std::memcpy(t.data.data(), &e.value, e.size);
  bus_.request(std::move(t), [this](const SnoopReply&) { on_write_done(); });
}

void SnoopWtiCache::on_write_done() {
  wbuf_.pop_front();
  drain_in_flight_ = false;
  start_drain();

  if (pending_ == Pending::kStoreBuffer) {
    MemAccess a = pending_access_;
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    perform_store(a);
    cb(0);
  } else if (pending_ == Pending::kLoadDrain && wbuf_.empty()) {
    pending_ = Pending::kLoadBus;
    issue_read();
  } else if (pending_ == Pending::kSwapDrain && wbuf_.empty()) {
    pending_ = Pending::kSwapBus;
    issue_atomic();
  } else if (pending_ == Pending::kDrainWait && wbuf_.empty()) {
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    cb(0);
  }
}

void SnoopWtiCache::issue_read() {
  BusTxn t;
  t.op = BusOp::kBusRead;
  t.addr = tags_.block_of(pending_access_.addr);
  t.initiator = my_id_;
  bus_.request(std::move(t), [this](const SnoopReply& r) {
    CCNOC_ASSERT(pending_ == Pending::kLoadBus, "unexpected bus read completion");
    CacheLine& l = tags_.victim(tags_.block_of(pending_access_.addr));
    l.block = tags_.block_of(pending_access_.addr);
    l.state = LineState::kShared;  // "Valid"
    std::memcpy(l.data.data(), r.data.data(), cfg_.block_bytes);
    tags_.touch(l);
    std::uint64_t v = read_line(l, pending_access_.addr, pending_access_.size);
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    cb(v);
  });
}

void SnoopWtiCache::issue_atomic() {
  BusTxn t;
  t.op = pending_access_.atomic == AtomicKind::kAdd ? BusOp::kBusAdd : BusOp::kBusSwap;
  t.addr = pending_access_.addr;
  t.initiator = my_id_;
  t.size = pending_access_.size;
  t.data_len = pending_access_.size;
  std::memcpy(t.data.data(), &pending_access_.value, pending_access_.size);
  bus_.request(std::move(t), [this](const SnoopReply& r) {
    CCNOC_ASSERT(pending_ == Pending::kSwapBus, "unexpected bus atomic completion");
    std::uint64_t old = 0;
    std::memcpy(&old, r.data.data(), r.data_len);
    pending_ = Pending::kNone;
    auto cb = std::move(pending_cb_);
    pending_cb_ = nullptr;
    cb(old);
  });
}

AccessResult SnoopWtiCache::drain(CompleteFn on_drained) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "drain during a pending access");
  if (wbuf_.empty()) return AccessResult::kHit;
  pending_ = Pending::kDrainWait;
  pending_cb_ = std::move(on_drained);
  return AccessResult::kPending;
}

SnoopReply SnoopWtiCache::snoop(const BusTxn& txn) {
  SnoopReply r;
  CacheLine* l = tags_.find(txn.addr & ~sim::Addr(cfg_.block_bytes - 1));
  if (l == nullptr) return r;
  r.has_copy = true;
  switch (txn.op) {
    case BusOp::kBusRead:
      break;  // read-sharing is free
    case BusOp::kBusWriteWord:
    case BusOp::kBusSwap:
    case BusOp::kBusAdd:
    case BusOp::kBusReadX:
    case BusOp::kBusUpgr:
      // Write-invalidate: any observed write kills the local copy.
      st_.snoop_invalidations->inc();
      l->state = LineState::kInvalid;
      break;
    case BusOp::kBusWriteBack:
      CCNOC_ASSERT(false, "write-back observed on a write-through bus");
  }
  return r;
}

// ----------------------------------------------------------- SnoopMesiCache

AccessResult SnoopMesiCache::access(const MemAccess& a, std::uint64_t* hit_value,
                                    CompleteFn on_complete) {
  CCNOC_ASSERT(pending_ == Pending::kNone, "snoop-MESI cache already busy");
  const sim::Addr block = tags_.block_of(a.addr);
  CacheLine* l = tags_.find(block);

  if (!a.is_store) {
    if (l != nullptr) {
      st_.load_hits->inc();
      tags_.touch(*l);
      *hit_value = read_line(*l, a.addr, a.size);
      return AccessResult::kHit;
    }
    st_.load_misses->inc();
    start_miss(a, std::move(on_complete));
    return AccessResult::kPending;
  }

  if (l != nullptr) {
    if (l->state == LineState::kModified || l->state == LineState::kExclusive) {
      // The historic write-back advantage: zero bus transactions.
      st_.store_hits_em->inc();
      l->state = LineState::kModified;
      std::uint64_t old = 0;
      if (a.is_atomic()) {
        old = read_line(*l, a.addr, a.size);
        *hit_value = old;
      }
      write_line(*l, a.addr, a.size,
                 a.atomic == AtomicKind::kAdd ? old + a.value : a.value);
      tags_.touch(*l);
      return AccessResult::kHit;
    }
    // Shared: an upgrade transaction (may retry as BusReadX if a racing
    // writer invalidates us before our grant).
    st_.store_hits_s->inc();
    pending_ = Pending::kUpgrade;
    pending_access_ = a;
    pending_cb_ = std::move(on_complete);
    pending_line_ = l;
    BusTxn t;
    t.op = BusOp::kBusUpgr;
    t.addr = block;
    t.initiator = my_id_;
    bus_.request(std::move(t), [this, block](const SnoopReply&) {
      CCNOC_ASSERT(pending_ == Pending::kUpgrade, "unexpected upgrade completion");
      CacheLine& line = *pending_line_;
      if (line.state == LineState::kShared && line.block == block) {
        finish(line);
        return;
      }
      // Lost the race: fall back to a full exclusive fill.
      st_.upgrade_retries->inc();
      pending_ = Pending::kMiss;
      issue_fill();
    });
    return AccessResult::kPending;
  }

  st_.store_misses->inc();
  start_miss(a, std::move(on_complete));
  return AccessResult::kPending;
}

void SnoopMesiCache::start_miss(const MemAccess& a, CompleteFn cb) {
  pending_access_ = a;
  pending_cb_ = std::move(cb);
  pending_ = Pending::kMiss;

  const sim::Addr block = tags_.block_of(a.addr);
  CacheLine& victim = tags_.victim(block);
  pending_line_ = &victim;
  if (victim.state == LineState::kModified) {
    // Queue the write-back ahead of the fill (FIFO bus: it lands first).
    // The line stays Modified until the write-back is granted, so snoops
    // in between still find the owner.
    st_.writebacks->inc();
    BusTxn wb;
    wb.op = BusOp::kBusWriteBack;
    wb.addr = victim.block;
    wb.initiator = my_id_;
    wb.data_len = std::uint8_t(cfg_.block_bytes);
    std::memcpy(wb.data.data(), victim.data.data(), cfg_.block_bytes);
    CacheLine* vp = &victim;
    bus_.request(std::move(wb), [vp](const SnoopReply&) {
      vp->state = LineState::kInvalid;
    });
  } else {
    victim.state = LineState::kInvalid;
  }
  issue_fill();
}

void SnoopMesiCache::issue_fill() {
  const sim::Addr block = tags_.block_of(pending_access_.addr);
  BusTxn t;
  t.op = pending_access_.is_store ? BusOp::kBusReadX : BusOp::kBusRead;
  t.addr = block;
  t.initiator = my_id_;
  bus_.request(std::move(t), [this, block](const SnoopReply& r) {
    CCNOC_ASSERT(pending_ == Pending::kMiss, "unexpected fill completion");
    CacheLine& l = *pending_line_;
    l.block = block;
    std::memcpy(l.data.data(), r.data.data(), cfg_.block_bytes);
    if (pending_access_.is_store) {
      l.state = LineState::kModified;
    } else {
      l.state = r.has_copy ? LineState::kShared : LineState::kExclusive;
    }
    finish(l);
  });
}

void SnoopMesiCache::finish(CacheLine& l) {
  std::uint64_t value = 0;
  if (pending_access_.is_store) {
    std::uint64_t old = 0;
    if (pending_access_.is_atomic()) {
      old = read_line(l, pending_access_.addr, pending_access_.size);
      value = old;
    }
    l.state = LineState::kModified;
    write_line(l, pending_access_.addr, pending_access_.size,
               pending_access_.atomic == AtomicKind::kAdd ? old + pending_access_.value
                                                          : pending_access_.value);
  } else {
    value = read_line(l, pending_access_.addr, pending_access_.size);
  }
  tags_.touch(l);
  pending_ = Pending::kNone;
  pending_line_ = nullptr;
  auto cb = std::move(pending_cb_);
  pending_cb_ = nullptr;
  cb(value);
}

SnoopReply SnoopMesiCache::snoop(const BusTxn& txn) {
  SnoopReply r;
  CacheLine* l = tags_.find(txn.addr & ~sim::Addr(cfg_.block_bytes - 1));
  if (l == nullptr) return r;
  r.has_copy = true;
  switch (txn.op) {
    case BusOp::kBusRead:
      if (l->state == LineState::kModified) {
        // Dirty owner flushes (to requester and memory) and downgrades.
        st_.snoop_flushes->inc();
        r.supplies_data = true;
        r.data_len = std::uint8_t(cfg_.block_bytes);
        std::memcpy(r.data.data(), l->data.data(), cfg_.block_bytes);
      }
      if (l->state != LineState::kInvalid) l->state = LineState::kShared;
      break;
    case BusOp::kBusReadX:
    case BusOp::kBusUpgr:
      if (l->state == LineState::kModified) {
        st_.snoop_flushes->inc();
        r.supplies_data = true;
        r.data_len = std::uint8_t(cfg_.block_bytes);
        std::memcpy(r.data.data(), l->data.data(), cfg_.block_bytes);
      }
      st_.snoop_invalidations->inc();
      l->state = LineState::kInvalid;
      break;
    case BusOp::kBusWriteBack:
      break;  // another cache's eviction: nothing to do
    case BusOp::kBusWriteWord:
    case BusOp::kBusSwap:
    case BusOp::kBusAdd:
      CCNOC_ASSERT(false, "write-through transaction on a write-back bus");
  }
  return r;
}

}  // namespace ccnoc::snoop
