#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/mesi_controller.hpp"
#include "cache/wti_controller.hpp"
#include "check/checker.hpp"
#include "mem/l2_bank.hpp"

/// \file invariants.cpp
/// The invariant walker: Checker::walk_impl audits every cache tag array
/// and every bank directory against the protocol's safety properties (see
/// checker.hpp for the rule list). In non-strict mode, blocks with an open
/// bank transaction — and bytes covered by a CPU's own write buffer, and
/// blocks parked in a write-back buffer — are exempt from the point-in-time
/// cross-checks, because those are exactly the legal transient windows.
/// Strict mode (end of run, platform quiescent) applies no exemptions.

namespace ccnoc::check {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::string line_desc(unsigned cpu, bool icache, sim::Addr block) {
  return std::string(icache ? "icache" : "dcache") + " of cpu" +
         std::to_string(cpu) + ", block " + hex(block);
}

}  // namespace

void Checker::walk_impl(bool strict) {
  const unsigned bb = block_bytes_;
  const unsigned num_cpus = unsigned(nodes_.size());

  // Blocks whose evicted dirty data is in flight to a bank: their storage is
  // legitimately stale until the write-back lands.
  std::unordered_set<sim::Addr> wb_blocks;
  for (const NodeRec& n : nodes_) {
    if (n.mesi != nullptr) {
      n.mesi->for_each_writeback([&](sim::Addr block) { wb_blocks.insert(block); });
    }
  }

  // Census of valid copies, block -> count of E/M copies + total copies,
  // for the SWMR audit after the per-line pass.
  struct Census {
    unsigned copies = 0;
    unsigned exclusive = 0;
    unsigned first_owner = 0;  ///< cpu of the first E/M copy seen
  };
  std::unordered_map<sim::Addr, Census> census;

  std::vector<std::uint8_t> mem_bytes(bb);

  for (unsigned cpu = 0; cpu < num_cpus; ++cpu) {
    const NodeRec& n = nodes_[cpu];
    if (n.d == nullptr) continue;

    // Bytes of each block covered by this CPU's own buffered stores: a WTI
    // store hit patched the local line while the bank copy updates at the
    // write-through, so those bytes legally differ until the ack.
    std::unordered_map<sim::Addr, std::vector<bool>> own_bytes;
    if (!strict && n.wti != nullptr) {
      n.wti->for_each_buffered_store([&](sim::Addr a, unsigned size, std::uint64_t) {
        for (unsigned i = 0; i < size; ++i) {
          sim::Addr byte = a + i;
          auto& mask = own_bytes[block_of(byte)];
          if (mask.empty()) mask.resize(bb, false);
          mask[unsigned(byte - block_of(byte))] = true;
        }
      });
    }

    for (int which = 0; which < 2; ++which) {
      const bool is_icache = which == 1;
      cache::CacheController* ctl = is_icache ? n.i : n.d;
      ctl->tags().for_each_line([&](const cache::CacheLine& l) {
        if (l.state == cache::LineState::kInvalid) return;
        const sim::Addr block = l.block;
        // The block's home is where its L1-facing directory (and the
        // freshest non-owned copy of its bytes) lives: the memory bank on a
        // flat platform, the address-interleaved L2 bank on a two-level one.
        mem::L2Bank* l2 =
            l2_banks_.empty() ? nullptr : l2_banks_[map_.l2_index_of(block)];
        mem::Bank& bank = l2 != nullptr ? static_cast<mem::Bank&>(*l2) : bank_of(block);
        const bool open_txn = !strict && bank.has_open_txn(block);

        // Inclusion: a valid L1 data-cache line implies a resident line in
        // its home L2 bank (the recall machinery exists to preserve this).
        // I-caches are exempt — their fetches are untracked, so the L2 may
        // evict code blocks without back-invalidating them (read-only data,
        // so the stale copy is harmless by construction).
        if (l2 != nullptr && !is_icache && !l2->resident(block) && !open_txn) {
          violation("inclusion",
                    line_desc(cpu, is_icache, block) +
                        " is valid but its home L2 bank (l2bank" +
                        std::to_string(l2->l2_index()) + ") holds no resident line");
        }

        // Write-through caches (and every I-cache) never own a line.
        const bool exclusive = l.state == cache::LineState::kExclusive ||
                               l.state == cache::LineState::kModified;
        if (exclusive && (is_icache || n.wti != nullptr)) {
          violation("wti-line-state",
                    line_desc(cpu, is_icache, block) + " is in state " +
                        cache::to_string(l.state) +
                        " but this cache may only hold I or S lines");
          return;
        }

        // I-cache fetches are deliberately untracked by the directory
        // (read-only code, `track = false`), so only data caches take part
        // in the directory cross-checks and the SWMR census.
        if (!is_icache) {
          Census& c = census[block];
          ++c.copies;
          if (exclusive) {
            ++c.exclusive;
            c.first_owner = cpu;
          }

          // A valid copy implies its presence bit (the directory may
          // over-approximate, never under-approximate). Direct-ack rounds
          // clear bits while invalidations are still in flight — but the
          // block stays transaction-locked until the requester's TxnDone.
          const mem::DirEntry e = bank.directory().lookup(block);
          if (!e.is_sharer(sim::NodeId(cpu)) && !open_txn) {
            violation("presence",
                      line_desc(cpu, is_icache, block) + " is valid (" +
                          cache::to_string(l.state) +
                          ") but its directory presence bit is clear");
          }

          // A cached E/M line implies dirty directory ownership by this cpu.
          if (exclusive && !open_txn &&
              (!e.dirty || e.owner != sim::NodeId(cpu))) {
            violation("dirty-owner",
                      line_desc(cpu, is_icache, block) + " is " +
                          cache::to_string(l.state) +
                          " but the directory does not record cpu" +
                          std::to_string(cpu) + " as dirty owner (dirty=" +
                          (e.dirty ? "1" : "0") + ", owner=" +
                          std::to_string(e.owner) + ")");
          }
        }

        // Data integrity: clean lines hold the bank's bytes.
        if (exclusive && l.state == cache::LineState::kModified) return;
        if (open_txn) return;
        if (!strict && wb_blocks.count(block) != 0) return;
        const std::vector<bool>* own = nullptr;
        if (!is_icache) {
          auto it = own_bytes.find(block);
          if (it != own_bytes.end()) own = &it->second;
        }
        bank.storage().read(block, mem_bytes.data(), bb);
        for (unsigned i = 0; i < bb; ++i) {
          if (own != nullptr && (*own)[i]) continue;
          if (l.data[i] == mem_bytes[i]) continue;
          violation("data",
                    line_desc(cpu, is_icache, block) + " (" +
                        cache::to_string(l.state) + ") disagrees with memory at " +
                        hex(block + i) + ": cache holds " + hex(l.data[i]) +
                        ", memory holds " + hex(mem_bytes[i]));
          break;  // one mismatch per line is enough signal
        }
      });
    }
  }

  // SWMR: an Exclusive/Modified copy never coexists with any other valid
  // copy. Grants are issued only after every stale sharer acked its
  // invalidation, so this holds at every instant — no transient escape.
  for (const auto& [block, c] : census) {
    if (c.exclusive == 0) continue;
    if (c.exclusive > 1 || c.copies > 1) {
      violation("swmr", "block " + hex(block) + " has " +
                            std::to_string(c.exclusive) + " E/M cop" +
                            (c.exclusive == 1 ? "y" : "ies") + " among " +
                            std::to_string(c.copies) +
                            " valid copies (first owner cpu" +
                            std::to_string(c.first_owner) + ")");
    }
  }

  // Directory-side audit of the L1-facing tier: the memory banks on a flat
  // platform, the L2 banks on a two-level one. Either way the directory
  // tracks L1 data caches under the platform protocol, so the same rules
  // apply.
  auto audit_l1_facing_dir = [&](mem::Bank& bank, const std::string& who) {
    bank.directory().for_each_entry([&](sim::Addr block, const mem::DirEntry& e) {
      if (num_cpus < 64 && (e.presence >> num_cpus) != 0) {
        violation("presence", "directory of " + who +
                                  " names a nonexistent cache for block " +
                                  hex(block) + " (presence=" + hex(e.presence) + ")");
      }
      if (write_through_) {
        // The write-through property: the next level down is always clean,
        // so the directory never records an owner.
        if (e.dirty || e.owner != sim::kInvalidNode) {
          violation("wti-dir-clean",
                    who + " directory marks block " + hex(block) +
                        " dirty under a write-through protocol");
        }
        return;
      }
      const bool open_txn = !strict && bank.has_open_txn(block);
      if (e.dirty && !open_txn) {
        if (e.owner == sim::kInvalidNode || e.owner >= num_cpus ||
            !e.is_sharer(e.owner) || e.sharer_count() != 1) {
          violation("dirty-owner",
                    who + " directory entry for block " + hex(block) +
                        " is dirty but malformed (owner=" +
                        std::to_string(e.owner) + ", presence=" +
                        hex(e.presence) + ")");
        }
      }
    });
  };

  if (l2_banks_.empty()) {
    for (unsigned b = 0; b < banks_.size(); ++b) {
      audit_l1_facing_dir(*banks_[b], "bank" + std::to_string(b));
    }
    return;
  }

  // --- two-level-only audits -------------------------------------------------
  const unsigned num_l2 = unsigned(l2_banks_.size());

  for (mem::L2Bank* l2 : l2_banks_) {
    const std::string who = "l2bank" + std::to_string(l2->l2_index());
    audit_l1_facing_dir(*l2, who);

    // Inclusion, L2 side: a directory entry naming L1 sharers on a block
    // that is not resident here means a line escaped the recall teardown.
    l2->directory().for_each_entry([&](sim::Addr block, const mem::DirEntry& e) {
      const bool open_txn = !strict && l2->has_open_txn(block);
      if (e.has_sharer() && !l2->resident(block) && !open_txn) {
        violation("inclusion",
                  who + " tracks L1 sharers for block " + hex(block) +
                      " (presence=" + hex(e.presence) +
                      ") but holds no resident line");
      }
    });

    // Per resident line: the memory tier must record this (sole) L2 bank as
    // the block's dirty owner — fills are tracked and granted Exclusive —
    // and a clean (E) line must still hold DRAM's exact bytes, since the
    // first transaction-path write dirties it to M.
    l2->for_each_line([&](sim::Addr block, proto::LineState state) {
      const bool open_txn = !strict && (l2->has_open_txn(block) ||
                                        bank_of(block).has_open_txn(block));
      const mem::DirEntry e = bank_of(block).directory().lookup(block);
      if (!open_txn &&
          (!e.dirty || e.owner != l2->node_id() || !e.is_sharer(l2->node_id()))) {
        violation("l2-tracking",
                  who + " holds block " + hex(block) +
                      " but the memory directory does not record it as the "
                      "dirty owner (dirty=" + (e.dirty ? "1" : "0") +
                      ", owner=" + std::to_string(e.owner) + ")");
      }
      if (state == proto::LineState::kModified || open_txn) return;
      std::vector<std::uint8_t> l2_bytes(bb);
      l2->storage().read(block, l2_bytes.data(), bb);
      bank_of(block).storage().read(block, mem_bytes.data(), bb);
      for (unsigned i = 0; i < bb; ++i) {
        if (l2_bytes[i] == mem_bytes[i]) continue;
        violation("freshness",
                  who + " holds block " + hex(block) + " clean (" +
                      proto::to_string(state) + ") but disagrees with memory at " +
                      hex(block + i) + ": L2 holds " + hex(l2_bytes[i]) +
                      ", memory holds " + hex(mem_bytes[i]));
        break;
      }
    });
  }

  // Memory-tier directory audit: clients are the L2 banks (write-back MESI
  // regardless of the platform protocol — see core/system.cpp), and the
  // block interleave means a tracked entry's owner can only ever be the
  // block's single home L2 node.
  for (unsigned b = 0; b < banks_.size(); ++b) {
    banks_[b]->directory().for_each_entry([&](sim::Addr block,
                                              const mem::DirEntry& e) {
      if (num_l2 < 64 && (e.presence >> num_l2) != 0) {
        violation("presence", "directory of bank" + std::to_string(b) +
                                  " names a nonexistent L2 bank for block " +
                                  hex(block) + " (presence=" + hex(e.presence) + ")");
      }
      const bool open_txn = !strict && banks_[b]->has_open_txn(block);
      if (e.dirty && !open_txn) {
        if (e.owner != map_.l2_node_of(block) || !e.is_sharer(e.owner) ||
            e.sharer_count() != 1) {
          violation("dirty-owner",
                    "bank" + std::to_string(b) + " directory entry for block " +
                        hex(block) + " is dirty but its owner is not the "
                        "block's home L2 bank (owner=" + std::to_string(e.owner) +
                        ", presence=" + hex(e.presence) + ")");
        }
      }
    });
  }
}

}  // namespace ccnoc::check
