#include "check/replay.hpp"

#include <algorithm>
#include <tuple>

namespace ccnoc::check {

ProbeRecorder::ProbeRecorder(sim::Simulator& sim, const mem::AddressMap& map,
                             Checker& chk, unsigned domains)
    : sim_(sim), map_(map), chk_(chk) {
  CCNOC_ASSERT(domains > 1, "the recorder exists only for partitioned runs");
  CCNOC_ASSERT(chk_.wants_probe(),
               "a walker-only checker records nothing to replay");
  shards_.assign(domains, Shard{});
}

void ProbeRecorder::record(sim::NodeId node, Rec rec) {
  Shard& sh = shards_[node % shards_.size()];
  if (sh.node_seq.size() <= node)
    sh.node_seq.resize(std::size_t(node) + 1, 0);
  rec.cycle = sim_.now();
  rec.node = node;
  rec.seq = sh.node_seq[node]++;
  sh.recs.push_back(rec);
}

void ProbeRecorder::load_commit(unsigned cpu, sim::Addr a, unsigned size,
                                std::uint64_t v, sim::Cycle issued) {
  if (passthrough_) return chk_.load_commit(cpu, a, size, v, issued);
  Rec r;
  r.k = Rec::K::kLoad;
  r.a = a;
  r.v = v;
  r.w = issued;
  r.cpu = std::uint16_t(cpu);
  r.size = std::uint8_t(size);
  record(sim::NodeId(cpu), r);
}

void ProbeRecorder::store_commit(unsigned cpu, sim::Addr a, unsigned size,
                                 std::uint64_t v) {
  if (passthrough_) return chk_.store_commit(cpu, a, size, v);
  Rec r;
  r.k = Rec::K::kStore;
  r.a = a;
  r.v = v;
  r.cpu = std::uint16_t(cpu);
  r.size = std::uint8_t(size);
  record(sim::NodeId(cpu), r);
}

void ProbeRecorder::atomic_commit(unsigned cpu, sim::Addr a, unsigned size,
                                  std::uint64_t returned_old,
                                  std::uint64_t operand, bool is_add) {
  if (passthrough_)
    return chk_.atomic_commit(cpu, a, size, returned_old, operand, is_add);
  Rec r;
  r.k = Rec::K::kAtomic;
  r.a = a;
  r.v = returned_old;
  r.w = operand;
  r.cpu = std::uint16_t(cpu);
  r.size = std::uint8_t(size);
  r.flag = is_add;
  record(sim::NodeId(cpu), r);
}

void ProbeRecorder::global_store(unsigned cpu, sim::Addr a, unsigned size,
                                 std::uint64_t v, bool deferred) {
  if (passthrough_) return chk_.global_store(cpu, a, size, v, deferred);
  Rec r;
  r.k = Rec::K::kGlobalStore;
  r.a = a;
  r.v = v;
  r.cpu = std::uint16_t(cpu);
  r.size = std::uint8_t(size);
  r.flag = deferred;
  record(map_.bank_node_of(a), r);
}

void ProbeRecorder::global_atomic(unsigned cpu, sim::Addr a, unsigned size,
                                  bool is_add, std::uint64_t operand) {
  if (passthrough_) return chk_.global_atomic(cpu, a, size, is_add, operand);
  Rec r;
  r.k = Rec::K::kGlobalAtomic;
  r.a = a;
  r.w = operand;
  r.cpu = std::uint16_t(cpu);
  r.size = std::uint8_t(size);
  r.flag = is_add;
  record(map_.bank_node_of(a), r);
}

void ProbeRecorder::txn_released(unsigned cpu, sim::Addr block) {
  if (passthrough_) return chk_.txn_released(cpu, block);
  Rec r;
  r.k = Rec::K::kTxnReleased;
  r.a = block;
  r.cpu = std::uint16_t(cpu);
  record(map_.bank_node_of(block), r);
}

void ProbeRecorder::backdoor_write(sim::Addr a, const void* data,
                                   unsigned len) {
  // Untimed and only fired outside the epoch loop; forward immediately so
  // program loading lands in the reference image before any recorded event.
  chk_.backdoor_write(a, data, len);
}

std::size_t ProbeRecorder::recorded() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.recs.size();
  return n;
}

void ProbeRecorder::replay() {
  CCNOC_ASSERT(!passthrough_, "replay() must run exactly once");
  std::size_t total = recorded();
  std::vector<Rec> merged;
  merged.reserve(total);
  for (Shard& sh : shards_) {
    merged.insert(merged.end(), sh.recs.begin(), sh.recs.end());
    sh.recs.clear();
  }
  // (cycle, node, seq) totally orders the stream — one worker owns each
  // node — and is identical for every domain/worker count.
  std::sort(merged.begin(), merged.end(), [](const Rec& x, const Rec& y) {
    return std::tie(x.cycle, x.node, x.seq) < std::tie(y.cycle, y.node, y.seq);
  });
  std::size_t fed = 0;
  for (const Rec& r : merged) {
    chk_.set_replay_now(r.cycle);
    switch (r.k) {
      case Rec::K::kLoad:
        chk_.load_commit(r.cpu, r.a, r.size, r.v, sim::Cycle(r.w));
        break;
      case Rec::K::kStore:
        chk_.store_commit(r.cpu, r.a, r.size, r.v);
        break;
      case Rec::K::kAtomic:
        chk_.atomic_commit(r.cpu, r.a, r.size, r.v, r.w, r.flag);
        break;
      case Rec::K::kGlobalStore:
        chk_.global_store(r.cpu, r.a, r.size, r.v, r.flag);
        break;
      case Rec::K::kGlobalAtomic:
        chk_.global_atomic(r.cpu, r.a, r.size, r.flag, r.w);
        break;
      case Rec::K::kTxnReleased:
        chk_.txn_released(r.cpu, r.a);
        break;
    }
    // Trim the oracle's byte-version history as the replay clock advances,
    // mirroring the periodic walk's gc on the serial path.
    if ((++fed & 0xfff) == 0) chk_.replay_gc();
  }
  chk_.clear_replay_now();
  shards_.clear();
  shards_.shrink_to_fit();
  passthrough_ = true;
}

}  // namespace ccnoc::check
