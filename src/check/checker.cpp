#include "check/checker.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>

#include "cache/mesi_controller.hpp"
#include "cache/wti_controller.hpp"

namespace ccnoc::check {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

Checker::Checker(sim::Simulator& sim, const mem::AddressMap& map,
                 mem::Protocol proto, const cache::CacheConfig& dcache_cfg,
                 CheckConfig cfg)
    : sim_(sim),
      map_(map),
      proto_(proto),
      cfg_(cfg),
      block_bytes_(dcache_cfg.block_bytes),
      write_through_(mem::is_write_through(proto)) {
  CCNOC_ASSERT(cfg_.enabled, "construct the checker only when checking is on");
  const bool sc_config =
      proto == mem::Protocol::kWbMesi ||
      (proto == mem::Protocol::kWti && dcache_cfg.drain_on_load_miss);
  if (cfg_.oracle && sc_config) {
    oracle_ = std::make_unique<Oracle>(proto, map.num_cpus(), block_bytes_);
  }
}

void Checker::register_node(unsigned cpu, cache::CacheController& dcache,
                            cache::CacheController& icache) {
  if (nodes_.size() <= cpu) nodes_.resize(cpu + 1);
  NodeRec& r = nodes_[cpu];
  r.d = &dcache;
  r.i = &icache;
  r.wti = dynamic_cast<const cache::WtiController*>(&dcache);
  r.mesi = dynamic_cast<const cache::MesiController*>(&dcache);
  CCNOC_ASSERT((r.wti != nullptr) != (r.mesi != nullptr),
               "data cache must be a WTI or MESI controller");
}

void Checker::register_bank(mem::Bank& bank) { banks_.push_back(&bank); }

void Checker::register_l2(mem::L2Bank& l2) { l2_banks_.push_back(&l2); }

mem::Bank& Checker::bank_of(sim::Addr a) const {
  return *banks_[map_.bank_index_of(a)];
}

void Checker::violation(const char* rule, std::string detail) {
  ++total_violations_;
  if (violations_.size() < cfg_.max_violations) {
    violations_.push_back(Violation{now(), rule, std::move(detail)});
  }
  if (cfg_.abort_on_violation) {
    std::fprintf(stderr, "[check] %s @ cycle %llu: %s\n", rule,
                 (unsigned long long)now(), violations_.back().detail.c_str());
    std::abort();
  }
}

// --- probe forwarding ------------------------------------------------------

void Checker::load_commit(unsigned cpu, sim::Addr a, unsigned size,
                          std::uint64_t v, sim::Cycle issued) {
  if (!oracle_) return;
  if (auto viol = oracle_->load_commit(cpu, a, size, v, issued, now())) {
    violation("oracle-load", std::move(*viol));
  }
}

void Checker::store_commit(unsigned cpu, sim::Addr a, unsigned size,
                           std::uint64_t v) {
  if (!oracle_) return;
  if (auto viol = oracle_->store_commit(cpu, a, size, v, now())) {
    violation("oracle-store", std::move(*viol));
  }
}

void Checker::atomic_commit(unsigned cpu, sim::Addr a, unsigned size,
                            std::uint64_t returned_old, std::uint64_t operand,
                            bool is_add) {
  if (!oracle_) return;
  if (auto viol = oracle_->atomic_commit(cpu, a, size, returned_old, operand,
                                         is_add, now())) {
    violation("oracle-atomic", std::move(*viol));
  }
}

void Checker::global_store(unsigned cpu, sim::Addr a, unsigned size,
                           std::uint64_t v, bool deferred) {
  if (!oracle_) return;
  if (auto viol = oracle_->global_store(cpu, a, size, v, deferred, now())) {
    violation("oracle-retire", std::move(*viol));
  }
}

void Checker::global_atomic(unsigned cpu, sim::Addr a, unsigned size, bool is_add,
                            std::uint64_t operand) {
  if (!oracle_) return;
  oracle_->global_atomic(cpu, a, size, is_add, operand, now());
}

void Checker::txn_released(unsigned cpu, sim::Addr block) {
  if (!oracle_) return;
  if (auto viol = oracle_->txn_released(cpu, block, now())) {
    violation("oracle-retire", std::move(*viol));
  }
}

void Checker::backdoor_write(sim::Addr a, const void* data, unsigned len) {
  if (!oracle_) return;
  oracle_->backdoor_write(a, data, len, now());
}

// --- walker entry points (walk_impl lives in invariants.cpp) ---------------

void Checker::walk() {
  ++walks_;
  if (cfg_.invariants) walk_impl(/*strict=*/false);
  if (oracle_) oracle_->gc(now(), cfg_.history_horizon);
}

void Checker::replay_gc() {
  if (oracle_) oracle_->gc(now(), cfg_.history_horizon);
}

void Checker::final_audit() {
  if (cfg_.invariants) walk_impl(/*strict=*/true);
  if (oracle_) {
    if (auto viol = oracle_->final_drain_check()) {
      violation("final-drain", std::move(*viol));
    }
  }
}

void Checker::final_image_check() {
  if (!oracle_) return;
  // Union of committed pages on both sides, in address order (deterministic
  // reporting); PagedStorage reads uncommitted pages as zero, so a page
  // committed on only one side still compares correctly.
  std::set<sim::Addr> bases;
  oracle_->ref().for_each_page(
      [&](sim::Addr base, const std::uint8_t*, unsigned) { bases.insert(base); });
  for (const mem::Bank* b : banks_) {
    b->storage().for_each_page(
        [&](sim::Addr base, const std::uint8_t*, unsigned) { bases.insert(base); });
  }

  constexpr unsigned kPage = unsigned(mem::PagedStorage::kPageBytes);
  std::vector<std::uint8_t> want(kPage), got(kPage);
  unsigned reported = 0;
  for (sim::Addr base : bases) {
    oracle_->ref().read(base, want.data(), kPage);
    bank_of(base).storage().read(base, got.data(), kPage);
    if (std::memcmp(want.data(), got.data(), kPage) == 0) continue;
    for (unsigned i = 0; i < kPage; ++i) {
      if (want[i] == got[i]) continue;
      violation("final-image",
                "final memory image diverges from the golden model at " +
                    hex(base + i) + ": memory holds " + hex(got[i]) +
                    ", golden model holds " + hex(want[i]));
      break;
    }
    if (++reported >= 8) break;  // one line per page is plenty of signal
  }
}

// --- results ---------------------------------------------------------------

std::uint64_t Checker::loads_checked() const {
  return oracle_ ? oracle_->loads_checked() : 0;
}

std::uint64_t Checker::stores_applied() const {
  return oracle_ ? oracle_->stores_applied() : 0;
}

std::string Checker::report() const {
  std::ostringstream os;
  os << total_violations_ << " coherence violation(s)";
  if (total_violations_ > violations_.size()) {
    os << " (first " << violations_.size() << " kept)";
  }
  os << ":\n";
  for (const Violation& v : violations_) {
    os << "  [" << v.rule << "] cycle " << v.cycle << ": " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace ccnoc::check
