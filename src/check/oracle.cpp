#include "check/oracle.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace ccnoc::check {

namespace {

void to_bytes(std::uint64_t v, std::uint8_t* out, unsigned size) {
  std::memcpy(out, &v, size);  // little-endian host assumed (matches PagedStorage)
}

/// Store values arrive unmasked from the CPU (ThreadOp::value) but masked
/// from the bank (memcpy of access_size bytes); normalize before matching.
std::uint64_t masked(std::uint64_t v, unsigned size) {
  return size >= 8 ? v : v & ((std::uint64_t(1) << (8 * size)) - 1);
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

Oracle::Oracle(mem::Protocol proto, unsigned num_cpus, unsigned block_bytes)
    : proto_(proto),
      block_bytes_(block_bytes),
      write_through_(mem::is_write_through(proto)),
      pending_(num_cpus),
      atomic_expected_(num_cpus) {
  CCNOC_ASSERT(proto == mem::Protocol::kWti || proto == mem::Protocol::kWbMesi,
               "oracle supports WTI and WB-MESI only");
}

void Oracle::apply(sim::Addr a, const std::uint8_t* bytes, unsigned len,
                   sim::Cycle now) {
  for (unsigned i = 0; i < len; ++i) {
    std::uint8_t cur = std::uint8_t(ref_.read_uint(a + i, 1));
    if (cur == bytes[i]) continue;  // value unchanged: no new version interval
    ref_.write_uint(a + i, bytes[i], 1);
    hist_[a + i].push_back(Version{now, bytes[i]});
  }
}

std::uint8_t Oracle::value_at(sim::Addr byte_addr, sim::Cycle t) const {
  auto it = hist_.find(byte_addr);
  if (it == hist_.end()) return std::uint8_t(ref_.read_uint(byte_addr, 1));
  const auto& vs = it->second;
  // Last version with since <= t; before the first recorded version the
  // byte held zero (GC keeps every version a live load window can reach).
  for (auto rit = vs.rbegin(); rit != vs.rend(); ++rit) {
    if (rit->since <= t) return rit->value;
  }
  return 0;
}

void Oracle::backdoor_write(sim::Addr a, const void* data, unsigned len,
                            sim::Cycle now) {
  apply(a, static_cast<const std::uint8_t*>(data), len, now);
}

std::optional<std::string> Oracle::store_commit(unsigned cpu, sim::Addr a,
                                                unsigned size, std::uint64_t v,
                                                sim::Cycle now) {
  ++stores_applied_;
  v = masked(v, size);
  std::uint8_t bytes[8];
  to_bytes(v, bytes, size);
  if (!write_through_) {
    // MESI: exclusivity is held at commit, so commit = global visibility.
    apply(a, bytes, size, now);
    return std::nullopt;
  }
  // WTI: buffered; becomes visible when the home bank retires it.
  pending_[cpu].push_back(PendingStore{a, std::uint8_t(size), false, v});
  if (pending_[cpu].size() > 4096) {
    return "cpu" + std::to_string(cpu) +
           " has >4096 unretired committed stores (write-throughs are being lost)";
  }
  return std::nullopt;
}

std::optional<std::string> Oracle::global_store(unsigned cpu, sim::Addr a,
                                                unsigned size, std::uint64_t v,
                                                bool deferred, sim::Cycle now) {
  v = masked(v, size);
  auto& q = pending_[cpu];
  auto it = std::find_if(q.begin(), q.end(), [&](const PendingStore& p) {
    return !p.deferred && p.addr == a && p.size == size && p.value == v;
  });
  if (it == q.end()) {
    return "bank retired a write cpu" + std::to_string(cpu) + " never committed: [" +
           hex(a) + " +" + std::to_string(size) + "] = " + hex(v);
  }
  if (deferred) {
    // §4.2 direct-ack round: bank storage is written while invalidations
    // are in flight, but stale copies stay readable until they are
    // delivered — all of which happens before the requester's TxnDone.
    // Visibility is therefore deferred to the matching txn_released.
    it->deferred = true;
    return std::nullopt;
  }
  std::uint8_t bytes[8];
  to_bytes(v, bytes, size);
  apply(a, bytes, size, now);
  q.erase(it);
  return std::nullopt;
}

std::optional<std::string> Oracle::txn_released(unsigned cpu, sim::Addr block,
                                                sim::Cycle now) {
  if (!write_through_) return std::nullopt;  // MESI direct upgrades: no deferral
  auto& q = pending_[cpu];
  auto it = std::find_if(q.begin(), q.end(), [&](const PendingStore& p) {
    return p.deferred && block_of(p.addr) == block_of(block);
  });
  if (it == q.end()) {
    return "TxnDone from cpu" + std::to_string(cpu) + " released block " + hex(block) +
           " with no deferred write pending";
  }
  std::uint8_t bytes[8];
  to_bytes(it->value, bytes, it->size);
  apply(it->addr, bytes, it->size, now);
  q.erase(it);
  return std::nullopt;
}

void Oracle::global_atomic(unsigned cpu, sim::Addr a, unsigned size, bool is_add,
                           std::uint64_t operand, sim::Cycle now) {
  // Bank-side RMW (WTI): snapshot the value the CPU must observe as "old",
  // then make the post-RMW value globally visible. The per-block
  // transaction lock guarantees nothing intervenes between the two.
  std::uint64_t old = ref_.read_uint(a, size);
  atomic_expected_[cpu] = old;
  std::uint64_t next = is_add ? old + operand : operand;
  if (size < 8) next &= (std::uint64_t(1) << (8 * size)) - 1;
  std::uint8_t bytes[8];
  to_bytes(next, bytes, size);
  apply(a, bytes, size, now);
}

std::optional<std::string> Oracle::atomic_commit(unsigned cpu, sim::Addr a,
                                                 unsigned size,
                                                 std::uint64_t returned_old,
                                                 std::uint64_t operand, bool is_add,
                                                 sim::Cycle now) {
  ++atomics_checked_;
  if (write_through_) {
    // Cross-check the old value the bank snapshotted at its RMW.
    if (!atomic_expected_[cpu].has_value()) {
      return "cpu" + std::to_string(cpu) +
             " committed an atomic the bank never executed at " + hex(a);
    }
    std::uint64_t expect = *atomic_expected_[cpu];
    atomic_expected_[cpu].reset();
    if (expect != returned_old) {
      return "cpu" + std::to_string(cpu) + " atomic at " + hex(a) + " returned old " +
             hex(returned_old) + ", golden model expected " + hex(expect);
    }
    return std::nullopt;
  }
  // MESI: the RMW executed locally with exclusivity held — commit is the
  // serialization point, so "old" must be the current reference value.
  std::uint64_t expect = ref_.read_uint(a, size);
  if (expect != returned_old) {
    return "cpu" + std::to_string(cpu) + " atomic at " + hex(a) + " returned old " +
           hex(returned_old) + ", golden model holds " + hex(expect);
  }
  std::uint64_t next = is_add ? returned_old + operand : operand;
  if (size < 8) next &= (std::uint64_t(1) << (8 * size)) - 1;
  std::uint8_t bytes[8];
  to_bytes(next, bytes, size);
  apply(a, bytes, size, now);
  return std::nullopt;
}

std::optional<std::string> Oracle::load_commit(unsigned cpu, sim::Addr a,
                                               unsigned size, std::uint64_t v,
                                               sim::Cycle issued, sim::Cycle now) {
  ++loads_checked_;
  std::uint8_t got[8];
  to_bytes(v, got, size);

  // Program order: bytes covered by the CPU's own unretired stores must
  // read the newest such store (forwarded through its patched local line,
  // or fetched after a drain). Oldest→newest so later stores win.
  bool covered[8] = {};
  std::uint8_t own[8] = {};
  if (write_through_) {
    for (const PendingStore& p : pending_[cpu]) {
      for (unsigned i = 0; i < size; ++i) {
        sim::Addr ba = a + i;
        if (ba >= p.addr && ba < p.addr + p.size) {
          covered[i] = true;
          own[i] = std::uint8_t(p.value >> (8 * (ba - p.addr)));
        }
      }
    }
  }
  for (unsigned i = 0; i < size; ++i) {
    if (covered[i] && own[i] != got[i]) {
      return "cpu" + std::to_string(cpu) + " load [" + hex(a) + " +" +
             std::to_string(size) + "] = " + hex(v) +
             " disagrees with its own buffered store (expected byte " +
             std::to_string(i) + " = " + hex(own[i]) + ")";
    }
  }

  // Fast path: uncovered bytes match the current reference image.
  bool all_current = true;
  for (unsigned i = 0; i < size; ++i) {
    if (!covered[i] && std::uint8_t(ref_.read_uint(a + i, 1)) != got[i]) {
      all_current = false;
      break;
    }
  }
  if (all_current) return std::nullopt;

  // Reads-from check: a single instant t in [issued, now] must exist at
  // which the reference held exactly the loaded bytes (per-byte windows
  // alone would accept a torn mix of values that never coexisted).
  std::vector<sim::Cycle> candidates{issued};
  for (unsigned i = 0; i < size; ++i) {
    if (covered[i]) continue;
    auto it = hist_.find(a + i);
    if (it == hist_.end()) continue;
    for (const Version& ver : it->second) {
      if (ver.since > issued && ver.since <= now) candidates.push_back(ver.since);
    }
  }
  for (sim::Cycle t : candidates) {
    bool match = true;
    for (unsigned i = 0; i < size; ++i) {
      if (!covered[i] && value_at(a + i, t) != got[i]) {
        match = false;
        break;
      }
    }
    if (match) return std::nullopt;
  }

  std::uint64_t cur = ref_.read_uint(a, size);
  return "cpu" + std::to_string(cpu) + " load [" + hex(a) + " +" +
         std::to_string(size) + "] = " + hex(v) +
         " matches no SC memory state in cycles [" + std::to_string(issued) + ", " +
         std::to_string(now) + "] (golden model now holds " + hex(cur) + ")";
}

std::optional<std::string> Oracle::final_drain_check() const {
  for (unsigned cpu = 0; cpu < pending_.size(); ++cpu) {
    if (!pending_[cpu].empty()) {
      const PendingStore& p = pending_[cpu].front();
      return "run ended with " + std::to_string(pending_[cpu].size()) +
             " unretired committed stores on cpu" + std::to_string(cpu) +
             " (oldest: [" + hex(p.addr) + " +" + std::to_string(p.size) + "] = " +
             hex(p.value) + ")";
    }
    if (atomic_expected_[cpu].has_value()) {
      return "run ended with an unacknowledged bank atomic on cpu" +
             std::to_string(cpu);
    }
  }
  return std::nullopt;
}

void Oracle::gc(sim::Cycle now, sim::Cycle horizon) {
  if (now <= horizon) return;
  const sim::Cycle cutoff = now - horizon;
  for (auto& [addr, vs] : hist_) {
    // Version i's interval ends at version i+1's start: drop versions whose
    // interval ended before the cutoff, always keeping the newest.
    std::size_t keep_from = 0;
    while (keep_from + 1 < vs.size() && vs[keep_from + 1].since <= cutoff) {
      ++keep_from;
    }
    if (keep_from > 0) vs.erase(vs.begin(), vs.begin() + std::ptrdiff_t(keep_from));
  }
}

}  // namespace ccnoc::check
