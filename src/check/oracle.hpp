#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/protocol.hpp"
#include "mem/storage.hpp"
#include "sim/types.hpp"

/// \file oracle.hpp
/// Golden-model reference memory for the coherence checker: a sequentially
/// consistent last-writer image of the whole address space, fed from the
/// probe hooks (see sim/probe.hpp) and cross-checked against every
/// committed load.
///
/// The model tracks, per byte, the full value timeline within a GC horizon.
/// A committed load is legal iff there exists a single instant t inside its
/// lifetime [issue, commit] at which the reference memory held exactly the
/// loaded bytes — the standard reads-from check for SC, which accommodates
/// values picked up at the bank while the response was still in flight.
///
/// Protocol-specific visibility rules (argued in EXPERIMENTS.md):
///  * WB-MESI: a store/atomic commit at the CPU happens with exclusivity
///    held, so commit IS the global-visibility point — applied immediately.
///  * WTI: a committed store is only buffered. It is applied when its home
///    bank retires it (`global_store`), or — for §4.2 direct-ack rounds,
///    where the bank writes storage while invalidations are still in
///    flight — at the requester's TxnDone (`txn_released`). Until then the
///    writer's own loads see it via a per-CPU pending-store overlay
///    (store→load forwarding through its patched local line).
///  * WTI atomics execute at the bank: the expected old value is
///    snapshotted there and checked against what the CPU later commits.
///
/// The oracle supports kWti (with drain_on_load_miss, i.e. the SC
/// configuration) and kWbMesi. kWtu patches sharer copies before the bank
/// write retires, and relaxed WTI is intentionally not SC — for those only
/// the invariant walker runs (see checker.hpp).
namespace ccnoc::check {

class Oracle {
 public:
  Oracle(mem::Protocol proto, unsigned num_cpus, unsigned block_bytes);

  // Mutators / checks. A populated return value is a violation message.
  void backdoor_write(sim::Addr a, const void* data, unsigned len, sim::Cycle now);
  std::optional<std::string> store_commit(unsigned cpu, sim::Addr a, unsigned size,
                                          std::uint64_t v, sim::Cycle now);
  std::optional<std::string> load_commit(unsigned cpu, sim::Addr a, unsigned size,
                                         std::uint64_t v, sim::Cycle issued,
                                         sim::Cycle now);
  std::optional<std::string> atomic_commit(unsigned cpu, sim::Addr a, unsigned size,
                                           std::uint64_t returned_old,
                                           std::uint64_t operand, bool is_add,
                                           sim::Cycle now);
  std::optional<std::string> global_store(unsigned cpu, sim::Addr a, unsigned size,
                                          std::uint64_t v, bool deferred,
                                          sim::Cycle now);
  void global_atomic(unsigned cpu, sim::Addr a, unsigned size, bool is_add,
                     std::uint64_t operand, sim::Cycle now);
  std::optional<std::string> txn_released(unsigned cpu, sim::Addr block,
                                          sim::Cycle now);

  /// End-of-run check: every committed store must have retired (the
  /// platform claims quiescence, so no write may still be "in flight").
  [[nodiscard]] std::optional<std::string> final_drain_check() const;

  /// The reference image (compared against bank storage after the run).
  [[nodiscard]] const mem::PagedStorage& ref() const { return ref_; }

  /// Drop byte-version history that ended before now - horizon. Every load
  /// window starts at its issue cycle, so a horizon far above the worst
  /// transaction latency loses nothing.
  void gc(sim::Cycle now, sim::Cycle horizon);

  [[nodiscard]] std::uint64_t loads_checked() const { return loads_checked_; }
  [[nodiscard]] std::uint64_t stores_applied() const { return stores_applied_; }
  [[nodiscard]] std::uint64_t atomics_checked() const { return atomics_checked_; }

 private:
  /// One value a byte held, starting at `since` (until the next version).
  struct Version {
    sim::Cycle since = 0;
    std::uint8_t value = 0;
  };

  /// A store committed by a CPU but not yet retired by its home bank.
  struct PendingStore {
    sim::Addr addr = 0;
    std::uint8_t size = 0;
    bool deferred = false;  ///< direct-ack round: retires at txn_released
    std::uint64_t value = 0;
  };

  void apply(sim::Addr a, const std::uint8_t* bytes, unsigned len, sim::Cycle now);
  [[nodiscard]] std::uint8_t value_at(sim::Addr byte_addr, sim::Cycle t) const;
  [[nodiscard]] sim::Addr block_of(sim::Addr a) const {
    return a & ~sim::Addr(block_bytes_ - 1);
  }

  mem::Protocol proto_;
  unsigned block_bytes_;
  bool write_through_;

  mem::PagedStorage ref_;  ///< current SC image
  std::unordered_map<sim::Addr, std::vector<Version>> hist_;  ///< per byte
  std::vector<std::deque<PendingStore>> pending_;             ///< per CPU (WTI)
  std::vector<std::optional<std::uint64_t>> atomic_expected_;  ///< per CPU (WTI)

  std::uint64_t loads_checked_ = 0;
  std::uint64_t stores_applied_ = 0;
  std::uint64_t atomics_checked_ = 0;
};

}  // namespace ccnoc::check
