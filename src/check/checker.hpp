#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/config.hpp"
#include "check/oracle.hpp"
#include "mem/direct_memory.hpp"
#include "mem/protocol.hpp"
#include "sim/probe.hpp"
#include "sim/simulator.hpp"

/// \file checker.hpp
/// Runtime coherence checker: the golden-model oracle (oracle.hpp) plus an
/// invariant walker that audits the platform's protocol state every N
/// cycles. The checker implements `sim::CoherenceProbe`, so when enabled it
/// is installed on the Simulator before the platform is built and receives
/// every commit / global-visibility event; when disabled nothing is
/// installed and the hot paths pay one null-pointer branch per hook (the
/// tracer cost model).
///
/// The walker audits, at every walk point (and strictly at end of run):
///  * SWMR — at most one Exclusive/Modified copy of a block exists, and it
///    never coexists with any other valid copy (MESI; strict at all times,
///    because grants are only issued after every stale copy has acked).
///  * Write-through cleanliness — WTI/WTU caches hold lines only in I or S,
///    and their directory entries are never dirty (memory is always clean).
///  * Directory/tag cross-check — a valid cached copy implies its presence
///    bit (full-map directory is an over-approximation: bits without copies
///    are legal after silent evictions, copies without bits are not); a
///    cached E/M line implies a dirty directory entry owned by that cache;
///    a dirty entry names exactly one sharer, its owner.
///  * Data integrity — clean lines (WTI/WTU S, MESI S/E, I-cache) hold the
///    same bytes as their bank's storage. Point-in-time escapes: blocks
///    with an open bank transaction, bytes covered by the CPU's own write
///    buffer (WTI store hits patch the local line before the bank write
///    retires), and blocks sitting in a write-back buffer.
///
/// Escapes apply only to the periodic walk; `final_audit()` re-runs the
/// walk with no escapes (callers must ensure quiescence first), and
/// `final_image_check()` compares the oracle's reference image against bank
/// storage page-by-page after the post-run cache flush.
namespace ccnoc::cache {
class CacheController;
class WtiController;
class MesiController;
}  // namespace ccnoc::cache

namespace ccnoc::mem {
class L2Bank;
}  // namespace ccnoc::mem

namespace ccnoc::check {

struct CheckConfig {
  bool enabled = false;      ///< master switch; off = no probe, no walker
  bool oracle = true;        ///< golden-model load/store cross-checking
  bool invariants = true;    ///< periodic invariant walker
  sim::Cycle walk_interval = 1024;  ///< cycles between invariant walks
  bool stop_on_violation = true;    ///< stop the run at the first violation
  bool abort_on_violation = false;  ///< abort() instead (for debugger runs)
  unsigned max_violations = 64;     ///< messages kept (total count unbounded)
  /// Byte-version history kept for the oracle's reads-from window check;
  /// must exceed the worst-case load latency (issue→commit) by a margin.
  sim::Cycle history_horizon = 1 << 16;
};

/// One detected violation (a property that can never hold on a correct run).
struct Violation {
  sim::Cycle cycle = 0;
  std::string rule;    ///< short rule id, e.g. "swmr", "oracle-load"
  std::string detail;  ///< human-readable diagnosis
};

class Checker final : public sim::CoherenceProbe {
 public:
  /// Must be constructed (and installed via Simulator::set_probe when
  /// `wants_probe()`) BEFORE any platform component: processors and banks
  /// cache the probe pointer in their constructors.
  ///
  /// The oracle is self-gating: it models sequential consistency, so it
  /// activates only for configurations that promise SC — kWbMesi, and kWti
  /// with drain_on_load_miss. For kWtu and relaxed kWti only the invariant
  /// walker runs.
  Checker(sim::Simulator& sim, const mem::AddressMap& map, mem::Protocol proto,
          const cache::CacheConfig& dcache_cfg, CheckConfig cfg);
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Registration, after the platform is built (walker introspection).
  void register_node(unsigned cpu, cache::CacheController& dcache,
                     cache::CacheController& icache);
  void register_bank(mem::Bank& bank);
  /// Two-level platforms also register their shared L2 banks: the walker
  /// then retargets every L1-facing cross-check at the block's home L2 bank
  /// (that is where the L1 directory lives), audits inclusion in both
  /// directions, and audits the memory tier as a MESI directory over the L2
  /// banks.
  void register_l2(mem::L2Bank& l2);

  [[nodiscard]] bool oracle_enabled() const { return oracle_ != nullptr; }
  /// True when the probe must be installed on the Simulator (oracle on);
  /// the walker alone needs no hooks.
  [[nodiscard]] bool wants_probe() const { return oracle_ != nullptr; }

  // --- sim::CoherenceProbe -------------------------------------------------
  void load_commit(unsigned cpu, sim::Addr a, unsigned size, std::uint64_t v,
                   sim::Cycle issued) override;
  void store_commit(unsigned cpu, sim::Addr a, unsigned size, std::uint64_t v) override;
  void atomic_commit(unsigned cpu, sim::Addr a, unsigned size,
                     std::uint64_t returned_old, std::uint64_t operand,
                     bool is_add) override;
  void global_store(unsigned cpu, sim::Addr a, unsigned size, std::uint64_t v,
                    bool deferred) override;
  void global_atomic(unsigned cpu, sim::Addr a, unsigned size, bool is_add,
                     std::uint64_t operand) override;
  void txn_released(unsigned cpu, sim::Addr block) override;
  void backdoor_write(sim::Addr a, const void* data, unsigned len) override;

  // --- parallel replay support (replay.hpp) ---------------------------------
  /// Pin the checker's notion of "now" to a replayed record's cycle: every
  /// oracle window and violation timestamp uses it until cleared, so a
  /// post-run replay produces the same diagnostics a live serial run would.
  void set_replay_now(sim::Cycle c) { replay_now_ = c; }
  void clear_replay_now() { replay_now_ = kNoReplayNow; }
  /// Oracle byte-version-history GC at the current (possibly replayed)
  /// clock — the replay-loop stand-in for the periodic walk's GC.
  void replay_gc();

  // --- invariant walker ----------------------------------------------------
  /// Periodic audit (point-in-time escapes for legal transients) + oracle
  /// history GC. Called from the run loop every `walk_interval` cycles.
  void walk();
  /// End-of-run strict audit (no escapes). The caller must ensure the
  /// platform is quiescent; also verifies every committed store retired.
  void final_audit();
  /// After flush_caches(): the oracle's reference image and the banks'
  /// storage must be byte-identical, page by page, in both directions.
  void final_image_check();

  // --- results -------------------------------------------------------------
  [[nodiscard]] bool ok() const { return total_violations_ == 0; }
  [[nodiscard]] bool should_stop() const {
    return cfg_.stop_on_violation && total_violations_ != 0;
  }
  [[nodiscard]] std::uint64_t violation_count() const { return total_violations_; }
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  /// Multi-line human-readable summary of the kept violations.
  [[nodiscard]] std::string report() const;

  [[nodiscard]] std::uint64_t walks() const { return walks_; }
  [[nodiscard]] std::uint64_t loads_checked() const;
  [[nodiscard]] std::uint64_t stores_applied() const;
  [[nodiscard]] const CheckConfig& config() const { return cfg_; }

 private:
  /// Walker view of one processor node. Exactly one of wti/mesi is non-null
  /// for the data cache (kWtu runs the WTI controller).
  struct NodeRec {
    cache::CacheController* d = nullptr;
    cache::CacheController* i = nullptr;
    const cache::WtiController* wti = nullptr;
    const cache::MesiController* mesi = nullptr;
  };

  static constexpr sim::Cycle kNoReplayNow = ~sim::Cycle{0};
  /// The checker clock: the simulator's unless a replay pinned it.
  [[nodiscard]] sim::Cycle now() const {
    return replay_now_ == kNoReplayNow ? sim_.now() : replay_now_;
  }

  void violation(const char* rule, std::string detail);
  void walk_impl(bool strict);
  [[nodiscard]] mem::Bank& bank_of(sim::Addr a) const;
  [[nodiscard]] sim::Addr block_of(sim::Addr a) const {
    return a & ~sim::Addr(block_bytes_ - 1);
  }

  sim::Simulator& sim_;
  const mem::AddressMap& map_;
  mem::Protocol proto_;
  CheckConfig cfg_;
  unsigned block_bytes_;
  bool write_through_;

  std::unique_ptr<Oracle> oracle_;  ///< null when gated off (see ctor)
  std::vector<NodeRec> nodes_;      ///< indexed by cpu
  std::vector<mem::Bank*> banks_;   ///< indexed by bank
  std::vector<mem::L2Bank*> l2_banks_;  ///< indexed by l2 bank; empty = flat

  sim::Cycle replay_now_ = kNoReplayNow;
  std::vector<Violation> violations_;  ///< first `max_violations` kept
  std::uint64_t total_violations_ = 0;
  std::uint64_t walks_ = 0;
};

/// Untimed-memory wrapper that mirrors every backdoor write into the
/// checker's golden model, so program loading and lock/barrier
/// initialization are part of the reference image. Reads pass through.
/// With a null checker it degrades to plain forwarding.
class MirroredMemory final : public mem::DirectMemoryIf {
 public:
  MirroredMemory(mem::DirectMemoryIf& base, Checker* checker)
      : base_(base), checker_(checker) {}

  void write(sim::Addr a, const void* data, unsigned len) override {
    base_.write(a, data, len);
    if (checker_ != nullptr) checker_->backdoor_write(a, data, len);
  }
  void read(sim::Addr a, void* out, unsigned len) const override {
    base_.read(a, out, len);
  }

 private:
  mem::DirectMemoryIf& base_;
  Checker* checker_;
};

}  // namespace ccnoc::check
