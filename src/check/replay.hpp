#pragma once

#include <cstdint>
#include <vector>

#include "check/checker.hpp"
#include "mem/address_map.hpp"
#include "sim/probe.hpp"

/// \file replay.hpp
/// Parallel-native coherence checking: a `sim::CoherenceProbe` that records
/// the probe stream into per-domain shards during a partitioned run and
/// replays it through the real Checker afterwards.
///
/// The golden-model oracle is inherently sequential — it folds every commit
/// and global-visibility event into one SC reference image — so it cannot
/// run concurrently inside domain workers. Instead of forcing checked runs
/// onto the serial engine, the recorder captures each hook as a compact
/// record stamped (cycle, recording node, per-node seq): processor commit
/// hooks execute in the CPU's node event, bank visibility hooks in the home
/// bank's node event, so each record stream is single-writer per domain.
/// After the epoch loop drains, `replay()` merges the shards, sorts by the
/// order key (a total order, identical for every domain/worker count), and
/// feeds the real Checker with its clock overridden to each record's cycle.
/// On violation-free runs the verdict is identical to the serial engine's;
/// the canonical same-cycle cross-node order can only differ from a serial
/// interleaving in which of several *legal* values a load observed, and the
/// oracle's reads-from window accepts every legal value either way.
///
/// `backdoor_write` forwards immediately: it is untimed and only fires
/// outside the epoch loop (program loading before the run, cache flushes
/// after `replay()` has switched the recorder to pass-through).
namespace ccnoc::check {

class ProbeRecorder final : public sim::CoherenceProbe {
 public:
  /// \p domains is the partition width (shard count). The recorder starts
  /// in recording mode; `replay()` flips it to pass-through forwarding.
  /// Hook timestamps come from \p sim's clock, which the parallel engine
  /// routes to the executing domain's queue.
  ProbeRecorder(sim::Simulator& sim, const mem::AddressMap& map, Checker& chk,
                unsigned domains);
  ProbeRecorder(const ProbeRecorder&) = delete;
  ProbeRecorder& operator=(const ProbeRecorder&) = delete;

  // --- sim::CoherenceProbe -------------------------------------------------
  void load_commit(unsigned cpu, sim::Addr a, unsigned size, std::uint64_t v,
                   sim::Cycle issued) override;
  void store_commit(unsigned cpu, sim::Addr a, unsigned size,
                    std::uint64_t v) override;
  void atomic_commit(unsigned cpu, sim::Addr a, unsigned size,
                     std::uint64_t returned_old, std::uint64_t operand,
                     bool is_add) override;
  void global_store(unsigned cpu, sim::Addr a, unsigned size, std::uint64_t v,
                    bool deferred) override;
  void global_atomic(unsigned cpu, sim::Addr a, unsigned size, bool is_add,
                     std::uint64_t operand) override;
  void txn_released(unsigned cpu, sim::Addr block) override;
  void backdoor_write(sim::Addr a, const void* data, unsigned len) override;

  /// Merge shards, sort by (cycle, node, seq), feed the Checker with its
  /// clock pinned to each record, then switch to pass-through mode. Call
  /// once, after the event queues drain and before Checker::final_audit().
  void replay();

  [[nodiscard]] std::size_t recorded() const;
  [[nodiscard]] bool passthrough() const { return passthrough_; }

 private:
  struct Rec {
    enum class K : std::uint8_t {
      kLoad, kStore, kAtomic, kGlobalStore, kGlobalAtomic, kTxnReleased,
    };
    sim::Cycle cycle = 0;
    std::uint64_t seq = 0;
    sim::Addr a = 0;
    std::uint64_t v = 0;  ///< value / returned_old
    std::uint64_t w = 0;  ///< operand / issue cycle
    sim::NodeId node = 0;
    std::uint16_t cpu = 0;
    std::uint8_t size = 0;
    K k{};
    bool flag = false;  ///< is_add / deferred
  };
  struct alignas(64) Shard {
    std::vector<Rec> recs;
    std::vector<std::uint64_t> node_seq;
  };

  void record(sim::NodeId node, Rec rec);

  sim::Simulator& sim_;
  const mem::AddressMap& map_;
  Checker& chk_;
  bool passthrough_ = false;
  std::vector<Shard> shards_;
};

}  // namespace ccnoc::check
