#pragma once

#include <cmath>
#include <vector>

#include "noc/network.hpp"

/// \file gmn.hpp
/// Generic Micro Network: the paper's cycle-approximate interconnect. Not a
/// set of routers but a crossbar with per-port delay FIFOs whose minimum
/// transfer delay is configured to match 2-D mesh latency, and whose port
/// serialization reproduces mesh-like contention. We model each port as a
/// busy-until reservation: a packet occupies its ingress port and its egress
/// port for its flit count, and crosses the fabric in `min_latency` cycles.

namespace ccnoc::noc {

struct GmnConfig {
  /// Zero-load fabric traversal delay in cycles. The default (set by
  /// `for_nodes`) models the average hop count of a square mesh:
  /// ceil(1.5 * sqrt(nodes)) + 3.
  sim::Cycle min_latency = 8;

  /// Depth of the internal delay FIFOs, in flits. When the backlog on a
  /// port exceeds this, additional queueing delay accrues (the paper's GMN
  /// behaves the same way: a full FIFO stalls the pipeline).
  unsigned fifo_depth = 8;

  [[nodiscard]] static GmnConfig for_nodes(std::size_t nodes) {
    GmnConfig cfg;
    cfg.min_latency =
        sim::Cycle(std::ceil(1.5 * std::sqrt(double(nodes)))) + 3;
    return cfg;
  }
};

class GmnNetwork final : public Network {
 public:
  GmnNetwork(sim::Simulator& s, std::size_t nodes, GmnConfig cfg)
      : Network(s),
        cfg_(cfg),
        ingress_free_(nodes, 0),
        egress_free_(nodes, 0),
        fifo_overflow_ctr_(&s.stats().counter("noc.fifo_overflow_cycles")) {
    // Per-port flit telemetry: each node has one ingress and one egress
    // port on the crossbar; the tracer buckets their traffic per epoch.
    for (std::size_t i = 0; i < nodes; ++i) {
      link_in_.push_back(tracer_->register_link("gmn.in." + std::to_string(i)));
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      link_out_.push_back(tracer_->register_link("gmn.out." + std::to_string(i)));
    }
    // The profiler keeps run totals per port (utilization in profile.json).
    for (std::size_t i = 0; i < nodes; ++i) {
      plink_in_.push_back(profiler_->register_link("gmn.in." + std::to_string(i)));
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      plink_out_.push_back(profiler_->register_link("gmn.out." + std::to_string(i)));
    }
  }

  GmnNetwork(sim::Simulator& s, std::size_t nodes)
      : GmnNetwork(s, nodes, GmnConfig::for_nodes(nodes)) {}

  [[nodiscard]] const GmnConfig& config() const { return cfg_; }

 protected:
  void route(Packet&& pkt) override;

 private:
  GmnConfig cfg_;
  std::vector<sim::Cycle> ingress_free_;
  std::vector<sim::Cycle> egress_free_;
  sim::Counter* fifo_overflow_ctr_;  ///< resolved once; route() is per-packet
  std::vector<unsigned> link_in_;    ///< tracer link ids, per ingress port
  std::vector<unsigned> link_out_;   ///< tracer link ids, per egress port
  std::vector<unsigned> plink_in_;   ///< profiler link ids, per ingress port
  std::vector<unsigned> plink_out_;  ///< profiler link ids, per egress port
};

}  // namespace ccnoc::noc
