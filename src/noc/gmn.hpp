#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "noc/network.hpp"

/// \file gmn.hpp
/// Generic Micro Network: the paper's cycle-approximate interconnect. Not a
/// set of routers but a crossbar with per-port delay FIFOs whose minimum
/// transfer delay is configured to match 2-D mesh latency, and whose port
/// serialization reproduces mesh-like contention. We model each port as a
/// busy-until reservation: a packet occupies its ingress port and its egress
/// port for its flit count, and crosses the fabric in `min_latency` cycles.
///
/// Routing is two-phase, split at the fabric crossing:
///
///   route()  — runs at the *source*: reserves the ingress port, computes
///              fabric_done = ingress_start + flits + min_latency, and posts
///              an egress event at fabric_done keyed by (source node,
///              per-source sequence);
///   egress() — runs at the *destination* when the packet exits the fabric:
///              reserves the egress port, accounts FIFO overflow and latency,
///              and schedules endpoint delivery.
///
/// The split is what makes the model parallelizable: phase one touches only
/// source-side state, phase two only destination-side state, and the only
/// hand-off between them is the keyed egress event — which the conservative
/// engine (sim/parallel.hpp) can route through its epoch mailbox because
/// fabric_done is always at least min_latency cycles in the future. The
/// serial build takes the identical two-phase path (posting the egress event
/// into the one global queue with the same canonical key), so both engines
/// execute the same event sequence cycle for cycle.

namespace ccnoc::noc {

struct GmnConfig {
  /// Zero-load fabric traversal delay in cycles. The default (set by
  /// `for_nodes`) models the average hop count of a square mesh:
  /// ceil(1.5 * sqrt(nodes)) + 3. Must be >= 1: it is also the conservative
  /// engine's lookahead window, and a zero-latency fabric would leave no
  /// horizon to run ahead in.
  sim::Cycle min_latency = 8;

  /// Depth of the internal delay FIFOs, in flits. When the backlog on a
  /// port exceeds this, additional queueing delay accrues (the paper's GMN
  /// behaves the same way: a full FIFO stalls the pipeline).
  unsigned fifo_depth = 8;

  [[nodiscard]] static GmnConfig for_nodes(std::size_t nodes) {
    GmnConfig cfg;
    cfg.min_latency =
        sim::Cycle(std::ceil(1.5 * std::sqrt(double(nodes)))) + 3;
    return cfg;
  }
};

class GmnNetwork final : public Network {
 public:
  /// Cross-domain post hook: (src, dst, when, per-src seq, egress callback).
  /// Installed by the parallel engine; when absent the egress event goes
  /// straight into the active queue with the same canonical key.
  using CrossPost = std::function<void(sim::NodeId, sim::NodeId, sim::Cycle,
                                       std::uint64_t, sim::EventQueue::Callback)>;

  GmnNetwork(sim::Simulator& s, std::size_t nodes, GmnConfig cfg)
      : Network(s),
        cfg_(cfg),
        ports_(nodes),
        fifo_overflow_ctr_(&s.stats().counter("noc.fifo_overflow_cycles")) {
    CCNOC_ASSERT(cfg_.min_latency >= 1, "GMN min_latency must be positive");
    // Per-port flit telemetry: each node has one ingress and one egress
    // port on the crossbar; the tracer buckets their traffic per epoch.
    for (std::size_t i = 0; i < nodes; ++i) {
      link_in_.push_back(tracer_->register_link("gmn.in." + std::to_string(i)));
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      link_out_.push_back(tracer_->register_link("gmn.out." + std::to_string(i)));
    }
    // The profiler keeps run totals per port (utilization in profile.json).
    for (std::size_t i = 0; i < nodes; ++i) {
      plink_in_.push_back(profiler_->register_link("gmn.in." + std::to_string(i)));
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      plink_out_.push_back(profiler_->register_link("gmn.out." + std::to_string(i)));
    }
  }

  GmnNetwork(sim::Simulator& s, std::size_t nodes)
      : GmnNetwork(s, nodes, GmnConfig::for_nodes(nodes)) {}

  [[nodiscard]] const GmnConfig& config() const { return cfg_; }

  void set_cross_post(CrossPost hook) { cross_post_ = std::move(hook); }

  /// Folds per-port overflow shards, then the base traffic shards.
  void finalize_stats() override;

 protected:
  void route(Packet&& pkt) override;

 private:
  void egress(sim::Cycle flits, Packet&& pkt);

  /// Per-node crossbar port state. Everything here is owned by the node's
  /// own domain: the ingress fields are written only when the node sends
  /// (an event of its domain), the egress fields only when a packet exits
  /// the fabric toward it (the egress event executes in the destination's
  /// domain). Alignment keeps neighbouring nodes — different domains under
  /// the round-robin partition — off each other's cache lines.
  struct alignas(64) PortState {
    sim::Cycle ingress_free = 0;   ///< source side: port busy-until
    std::uint64_t fabric_seq = 0;  ///< source side: canonical egress-key seq
    sim::Cycle egress_free = 0;    ///< destination side: port busy-until
    std::uint64_t overflow = 0;    ///< destination side: sharded overflow cycles
  };

  GmnConfig cfg_;
  std::vector<PortState> ports_;
  CrossPost cross_post_;             ///< set only by the parallel engine
  bool overflow_finalized_ = false;
  sim::Counter* fifo_overflow_ctr_;  ///< resolved once; egress() is per-packet
  std::vector<unsigned> link_in_;    ///< tracer link ids, per ingress port
  std::vector<unsigned> link_out_;   ///< tracer link ids, per egress port
  std::vector<unsigned> plink_in_;   ///< profiler link ids, per ingress port
  std::vector<unsigned> plink_out_;  ///< profiler link ids, per egress port
};

}  // namespace ccnoc::noc
