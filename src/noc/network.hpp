#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "noc/message.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

/// \file network.hpp
/// Abstract interconnect. Both implementations (GMN crossbar and 2-D mesh)
/// guarantee per-(source, destination) FIFO delivery order — the property
/// deterministic XY routing gives a real mesh — which the coherence
/// protocols rely on (e.g. WriteBack before FetchResponse from one cache).

namespace ccnoc::noc {

/// A message in flight, with routing and accounting metadata.
struct Packet {
  sim::NodeId src = sim::kInvalidNode;
  sim::NodeId dst = sim::kInvalidNode;
  Message msg;
  sim::Cycle sent_at = 0;
  std::uint64_t id = 0;
};

/// Something attached to a NoC port (a cache node or a memory bank node).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void deliver(const Packet& pkt) = 0;
};

class Network {
 public:
  explicit Network(sim::Simulator& s);
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register \p ep as the receiver for node \p id. Must be called for every
  /// node before the first send.
  void attach(sim::NodeId id, Endpoint& ep);

  /// Inject a message. Delivery is scheduled through the concrete
  /// interconnect model; per-flow FIFO order is preserved.
  void send(sim::NodeId src, sim::NodeId dst, const Message& msg);

  /// Switch traffic accounting to per-node shards (parallel runs): send()
  /// then writes only state owned by the source node's domain, and arrivals
  /// only state owned by the destination's, so concurrent domains never
  /// share a counter. Call before the first send; fold with
  /// finalize_stats() after the run. Totals and registry statistics come
  /// out byte-identical to the serial direct path — counters are exact and
  /// the latency sample adds whole cycles (sim::Sample::merge).
  void enable_sharded_stats(std::size_t nodes);

  /// Fold the per-node shards (node order, so the fold is canonical) into
  /// the registry and the run totals. Idempotent; a no-op when sharding was
  /// never enabled.
  virtual void finalize_stats();

  [[nodiscard]] bool sharded_stats() const { return !shards_.empty(); }

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }

  [[nodiscard]] std::size_t num_nodes() const { return endpoints_.size(); }

 protected:
  /// Concrete model: compute the delivery cycle for \p pkt (reserving
  /// whatever shared resources it occupies) and schedule delivery.
  virtual void route(Packet&& pkt) = 0;

  /// One-shot delivery path for the serial interconnects (mesh, bus):
  /// latency accounting plus the delivery event.
  void deliver_at(sim::Cycle when, Packet&& pkt);

  /// Record an arrival latency for \p dst — into its shard when sharded,
  /// the registry sample otherwise. Runs in the destination's domain.
  void record_latency(sim::NodeId dst, sim::Cycle latency);

  /// Schedule the endpoint delivery event for \p pkt at \p when in the
  /// active (destination) domain. Latency must already be recorded.
  void schedule_delivery(sim::Cycle when, Packet&& pkt);

  sim::Simulator& sim_;
  sim::Tracer* tracer_;    ///< cached; route() implementations report per-link
                           ///< flit telemetry through it
  sim::Profiler* profiler_;  ///< cached; per-line traffic attribution
  sim::LatencyObservatory* lat_;  ///< cached; per-phase transit attribution

 private:
  /// Per-node traffic shard. The send-side fields are written only by the
  /// node's own domain (a node sends from its own events); the latency
  /// sample only by arrivals, which also execute in the node's domain.
  /// Cache-line alignment keeps neighbouring nodes' shards from false
  /// sharing under round-robin node-to-domain assignment.
  struct alignas(64) NodeShard {
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::array<std::uint64_t, kNumMsgTypes> per_type{};
    sim::Sample latency;
  };

  std::vector<Endpoint*> endpoints_;
  std::vector<NodeShard> shards_;  ///< empty = serial direct accounting
  bool stats_finalized_ = false;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t next_pkt_id_ = 0;
  // Typed stat handles, resolved once at construction: send() runs once per
  // simulated packet and must not pay a string concat + map lookup each time.
  sim::Counter* bytes_ctr_ = nullptr;
  sim::Counter* packets_ctr_ = nullptr;
  std::array<sim::Counter*, kNumMsgTypes> pkt_type_ctr_{};
  sim::Sample* latency_sample_ = nullptr;
};

/// True for message types that lie on their transaction's critical path:
/// requests, data responses and completion acks. Fan-out legs (invalidates,
/// updates, fetches and their acks) run concurrently with each other and
/// are attributed as one collective phase at the convergence point instead
/// — marking each would double-count overlapping wire time.
[[nodiscard]] bool on_txn_critical_path(MsgType t);

/// Flit payload width. A 32-byte block plus header is ~10 flits.
inline constexpr unsigned kFlitBytes = 4;

[[nodiscard]] inline sim::Cycle flits_of(const Packet& pkt) {
  return (wire_bytes(pkt.msg) + kFlitBytes - 1) / kFlitBytes;
}

}  // namespace ccnoc::noc
