#pragma once

#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"

/// \file mesh.hpp
/// A real 2-D mesh with XY dimension-ordered routing and per-link
/// serialization — the interconnect the paper's GMN approximates. Used by
/// the network-model ablation (`bench_abl_network`) to check that the
/// GMN approximation does not change the study's conclusions.
///
/// Each directed link (and each injection/ejection port) is a busy-until
/// resource; a packet reserves its whole XY path at injection, queueing
/// behind earlier packets on every contended link. XY routing makes every
/// (src,dst) flow take one fixed path, so per-flow FIFO order holds.

namespace ccnoc::noc {

struct MeshConfig {
  sim::Cycle router_delay = 2;  ///< per-hop pipeline latency, cycles
};

class MeshNetwork final : public Network {
 public:
  MeshNetwork(sim::Simulator& s, std::size_t nodes, MeshConfig cfg = {});

  [[nodiscard]] const MeshTopology& topology() const { return topo_; }

 protected:
  void route(Packet&& pkt) override;

 private:
  enum Dir { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

  [[nodiscard]] std::size_t link_index(sim::NodeId node, Dir d) const {
    return std::size_t(node) * 4 + std::size_t(d);
  }

  MeshTopology topo_;
  MeshConfig cfg_;
  std::vector<sim::Cycle> link_free_;     // 4 directed links per router
  std::vector<sim::Cycle> inject_free_;   // local input port per router
  std::vector<sim::Cycle> eject_free_;    // local output port per router
  sim::Histogram* hops_hist_;             // resolved once; route() is per-packet
  std::vector<unsigned> link_inject_;     // tracer link ids, injection ports
  std::vector<unsigned> link_eject_;      // tracer link ids, ejection ports
  std::vector<unsigned> link_dir_;        // tracer link ids, parallel to link_free_
};

}  // namespace ccnoc::noc
