#include "noc/network.hpp"

#include <cstdio>

namespace ccnoc::noc {

Network::Network(sim::Simulator& s)
    : sim_(s), tracer_(&s.tracer()), profiler_(&s.profiler()) {
  auto& st = sim_.stats();
  bytes_ctr_ = &st.counter("noc.bytes");
  packets_ctr_ = &st.counter("noc.packets");
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
    pkt_type_ctr_[t] = &st.counter(std::string("noc.pkt.") + to_string(MsgType(t)));
  }
  latency_sample_ = &st.sample("noc.latency");
}

void Network::attach(sim::NodeId id, Endpoint& ep) {
  if (endpoints_.size() <= id) endpoints_.resize(id + 1, nullptr);
  CCNOC_ASSERT(endpoints_[id] == nullptr, "node attached twice");
  endpoints_[id] = &ep;
}

void Network::send(sim::NodeId src, sim::NodeId dst, const Message& msg) {
  CCNOC_ASSERT(src < endpoints_.size() && endpoints_[src] != nullptr, "unknown src node");
  CCNOC_ASSERT(dst < endpoints_.size() && endpoints_[dst] != nullptr, "unknown dst node");
  CCNOC_ASSERT(src != dst, "NoC loopback send");
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.msg = msg;
  pkt.sent_at = sim_.now();
  pkt.id = next_pkt_id_++;

  total_bytes_ += wire_bytes(msg);
  ++total_packets_;
  // Every packet is attributed to the cache line its address falls in (the
  // profiler rounds to a block), so per-line traffic sums exactly to
  // total_bytes_ / total_packets_.
  profiler_->traffic(msg.addr, wire_bytes(msg));
  bytes_ctr_->inc(wire_bytes(msg));
  packets_ctr_->inc();
  pkt_type_ctr_[std::size_t(msg.type)]->inc();

  route(std::move(pkt));
}

void Network::deliver_at(sim::Cycle when, Packet&& pkt) {
  CCNOC_ASSERT(when >= sim_.now(), "delivery in the past");
  latency_sample_->add(double(when - pkt.sent_at));
  sim_.queue().schedule_at(when, [this, p = std::move(pkt)]() mutable {
    sim_.trace("noc", [&p] {
      char line[96];
      std::snprintf(line, sizeof line, "%s %u->%u addr=0x%llx", to_string(p.msg.type),
                    unsigned(p.src), unsigned(p.dst),
                    static_cast<unsigned long long>(p.msg.addr));
      return std::string(line);
    });
    if (tracer_->full()) {
      // Delivery-time flow note inside the owning transaction's async span:
      // a miss reads request → directory → fan-out → acks in Perfetto.
      tracer_->txn_note(sim_.now(), p.msg.txn, to_string(p.msg.type), "src", p.src,
                        "dst", p.dst);
    }
    endpoints_[p.dst]->deliver(p);
  });
}

}  // namespace ccnoc::noc
