#include "noc/network.hpp"

#include <cstdio>

namespace ccnoc::noc {

bool on_txn_critical_path(MsgType t) {
  switch (t) {
    case MsgType::kReadShared:
    case MsgType::kReadExclusive:
    case MsgType::kUpgrade:
    case MsgType::kWriteWord:
    case MsgType::kAtomicSwap:
    case MsgType::kAtomicAdd:
    case MsgType::kWriteBack:
    case MsgType::kReadResponse:
    case MsgType::kWriteAck:
    case MsgType::kSwapResponse:
    case MsgType::kUpgradeAck:
    case MsgType::kWriteBackAck:
      return true;
    default:
      return false;
  }
}

Network::Network(sim::Simulator& s)
    : sim_(s), tracer_(&s.tracer()), profiler_(&s.profiler()), lat_(&s.latency()) {
  auto& st = sim_.stats();
  bytes_ctr_ = &st.counter("noc.bytes");
  packets_ctr_ = &st.counter("noc.packets");
  for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
    pkt_type_ctr_[t] = &st.counter(std::string("noc.pkt.") + to_string(MsgType(t)));
  }
  latency_sample_ = &st.sample("noc.latency");
}

void Network::attach(sim::NodeId id, Endpoint& ep) {
  if (endpoints_.size() <= id) endpoints_.resize(id + 1, nullptr);
  CCNOC_ASSERT(endpoints_[id] == nullptr, "node attached twice");
  endpoints_[id] = &ep;
}

void Network::enable_sharded_stats(std::size_t nodes) {
  CCNOC_ASSERT(total_packets_ == 0, "sharded accounting enabled mid-run");
  shards_.assign(nodes, NodeShard{});
  stats_finalized_ = false;
}

void Network::finalize_stats() {
  if (shards_.empty() || stats_finalized_) return;
  stats_finalized_ = true;
  // Node order: the fold is a canonical function of per-node totals, never
  // of the execution interleaving.
  for (const NodeShard& sh : shards_) {
    total_bytes_ += sh.bytes;
    total_packets_ += sh.packets;
    bytes_ctr_->inc(sh.bytes);
    packets_ctr_->inc(sh.packets);
    for (std::size_t t = 0; t < kNumMsgTypes; ++t) {
      if (sh.per_type[t] != 0) pkt_type_ctr_[t]->inc(sh.per_type[t]);
    }
    latency_sample_->merge(sh.latency);
  }
}

void Network::send(sim::NodeId src, sim::NodeId dst, const Message& msg) {
  CCNOC_ASSERT(src < endpoints_.size() && endpoints_[src] != nullptr, "unknown src node");
  CCNOC_ASSERT(dst < endpoints_.size() && endpoints_[dst] != nullptr, "unknown dst node");
  CCNOC_ASSERT(src != dst, "NoC loopback send");
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.msg = msg;
  pkt.sent_at = sim_.now();

  if (shards_.empty()) {
    pkt.id = next_pkt_id_++;
    total_bytes_ += wire_bytes(msg);
    ++total_packets_;
    bytes_ctr_->inc(wire_bytes(msg));
    packets_ctr_->inc();
    pkt_type_ctr_[std::size_t(msg.type)]->inc();
  } else {
    // Parallel run: only the sender's shard is touched, which the sender's
    // domain owns. The packet id is composed from (src, per-src count) so
    // it needs no global counter.
    NodeShard& sh = shards_[src];
    pkt.id = (std::uint64_t(src) << 40) | sh.packets;
    sh.bytes += wire_bytes(msg);
    ++sh.packets;
    ++sh.per_type[std::size_t(msg.type)];
  }
  // Every packet is attributed to the cache line its address falls in (the
  // profiler rounds to a block), so per-line traffic sums exactly to
  // total_bytes_ / total_packets_ in both engines — snapshot() asserts the
  // reconciliation. Under the parallel engine the hook records into the
  // sender's domain shard (same single-writer argument as NodeShard above).
  profiler_->traffic(sim_.now(), src, msg.addr, wire_bytes(msg));

  route(std::move(pkt));
}

void Network::record_latency(sim::NodeId dst, sim::Cycle latency) {
  if (shards_.empty()) {
    latency_sample_->add(double(latency));
  } else {
    shards_[dst].latency.add(double(latency));
  }
}

void Network::schedule_delivery(sim::Cycle when, Packet&& pkt) {
  sim_.schedule_at(when, [this, p = std::move(pkt)]() mutable {
    sim_.trace("noc", [&p] {
      char line[96];
      std::snprintf(line, sizeof line, "%s %u->%u addr=0x%llx", to_string(p.msg.type),
                    unsigned(p.src), unsigned(p.dst),
                    static_cast<unsigned long long>(p.msg.addr));
      return std::string(line);
    });
    if (tracer_->full()) {
      // Delivery-time flow note inside the owning transaction's async span:
      // a miss reads request → directory → fan-out → acks in Perfetto.
      // Recorded at the destination: the delivery event executes in the
      // receiving node's domain.
      tracer_->txn_note(sim_.now(), p.msg.txn, p.dst, to_string(p.msg.type),
                        "src", p.src, "dst", p.dst);
    }
    if (lat_->on()) [[unlikely]] {
      // Everything since the last boundary (ingress on the GMN, the send
      // cycle elsewhere) was fabric transit. Recorded at the destination —
      // the delivery event executes in the receiving node's domain.
      if (p.msg.txn != 0 && on_txn_critical_path(p.msg.type)) {
        lat_->mark(sim_.now(), p.msg.txn, p.dst, sim::Phase::kNocTransit,
                   sim_.now());
      }
    }
    endpoints_[p.dst]->deliver(p);
  });
}

void Network::deliver_at(sim::Cycle when, Packet&& pkt) {
  CCNOC_ASSERT(when >= sim_.now(), "delivery in the past");
  record_latency(pkt.dst, when - pkt.sent_at);
  schedule_delivery(when, std::move(pkt));
}

}  // namespace ccnoc::noc
