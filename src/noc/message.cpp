#include "noc/message.hpp"

namespace ccnoc::noc {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kReadShared: return "ReadShared";
    case MsgType::kReadExclusive: return "ReadExclusive";
    case MsgType::kUpgrade: return "Upgrade";
    case MsgType::kWriteWord: return "WriteWord";
    case MsgType::kAtomicSwap: return "AtomicSwap";
    case MsgType::kAtomicAdd: return "AtomicAdd";
    case MsgType::kSwapResponse: return "SwapResponse";
    case MsgType::kWriteBack: return "WriteBack";
    case MsgType::kReadResponse: return "ReadResponse";
    case MsgType::kUpgradeAck: return "UpgradeAck";
    case MsgType::kWriteAck: return "WriteAck";
    case MsgType::kWriteBackAck: return "WriteBackAck";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kUpdateWord: return "UpdateWord";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kFetch: return "Fetch";
    case MsgType::kFetchInv: return "FetchInv";
    case MsgType::kInvalidateAck: return "InvalidateAck";
    case MsgType::kFetchResponse: return "FetchResponse";
    case MsgType::kTxnDone: return "TxnDone";
  }
  return "?";
}

}  // namespace ccnoc::noc
