#pragma once

#include <cmath>
#include <cstdint>

#include "sim/types.hpp"

/// \file topology.hpp
/// 2-D mesh geometry helpers: node placement on the smallest near-square
/// grid and XY (dimension-ordered) routing distance.

namespace ccnoc::noc {

struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

class MeshTopology {
 public:
  explicit MeshTopology(std::size_t nodes) {
    width_ = int(std::ceil(std::sqrt(double(nodes))));
    if (width_ < 1) width_ = 1;
    height_ = int((nodes + std::size_t(width_) - 1) / std::size_t(width_));
    nodes_ = nodes;
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }

  [[nodiscard]] Coord coord_of(sim::NodeId n) const {
    return Coord{int(n) % width_, int(n) / width_};
  }

  /// Manhattan distance — the hop count of XY routing.
  [[nodiscard]] int distance(sim::NodeId a, sim::NodeId b) const {
    Coord ca = coord_of(a), cb = coord_of(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

 private:
  int width_ = 1;
  int height_ = 1;
  std::size_t nodes_ = 0;
};

}  // namespace ccnoc::noc
