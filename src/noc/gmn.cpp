#include "noc/gmn.hpp"

#include <algorithm>

#include "sim/parallel.hpp"

namespace ccnoc::noc {

void GmnNetwork::route(Packet&& pkt) {
  const sim::Cycle flits = flits_of(pkt);
  const sim::Cycle now = sim_.now();
  PortState& sp = ports_[pkt.src];

  // Ingress port: serialize behind earlier packets from the same source.
  const sim::Cycle in_start = std::max(now, sp.ingress_free);
  sp.ingress_free = in_start + flits;

  // Fabric traversal. fabric_done >= now + flits + min_latency, which is the
  // conservative engine's safety margin: an egress event posted here can
  // never land inside the epoch that posted it.
  const sim::Cycle fabric_done = in_start + flits + cfg_.min_latency;

  if (tracer_->on()) {
    // Attribute flits to the epoch in which the ingress port carries them.
    tracer_->add_link_flits(link_in_[pkt.src], in_start, flits);
  }
  if (profiler_->on()) [[unlikely]] {
    profiler_->link_flits(plink_in_[pkt.src], flits);
  }
  if (lat_->on()) [[unlikely]] {
    // Send→in_start is ingress-port queueing behind earlier packets from
    // this source. Recorded at the source — route() runs in its domain.
    if (pkt.msg.txn != 0 && on_txn_critical_path(pkt.msg.type)) {
      lat_->mark(now, pkt.msg.txn, pkt.src, sim::Phase::kNocIngress, in_start);
    }
  }

  // Hand the packet across the fabric as a keyed egress event. The key —
  // (source node, per-source sequence) — is a pure function of this node's
  // send history, so the destination queue merges same-cycle exits from
  // different sources into one canonical order no matter how the platform
  // is partitioned. Per-source sequences are monotone, which also preserves
  // per-flow FIFO order.
  const std::uint64_t seq = sp.fabric_seq++;
  const sim::NodeId src = pkt.src;
  const sim::NodeId dst = pkt.dst;
  auto arrive = [this, flits, p = std::move(pkt)]() mutable {
    egress(flits, std::move(p));
  };
  if (cross_post_) {
    cross_post_(src, dst, fabric_done, seq, std::move(arrive));
  } else {
    sim_.schedule_keyed(fabric_done, sim::cross_order_key(src, seq),
                        std::move(arrive));
  }
}

void GmnNetwork::egress(sim::Cycle flits, Packet&& pkt) {
  const sim::Cycle now = sim_.now();  // == fabric_done of this packet
  PortState& dp = ports_[pkt.dst];

  // Egress port: serialize behind earlier packets to the same destination.
  const sim::Cycle before = dp.egress_free > now ? dp.egress_free - now : 0;
  const sim::Cycle out_start = std::max(now, dp.egress_free);
  dp.egress_free = out_start + flits;
  const sim::Cycle arrival = out_start + flits;

  if (tracer_->on()) {
    tracer_->add_link_flits(link_out_[pkt.dst], out_start, flits);
  }
  if (profiler_->on()) [[unlikely]] {
    profiler_->link_flits(plink_out_[pkt.dst], flits);
  }

  // FIFO overflow pressure. The busy-until reservation already charges the
  // queueing delay; this statistic surfaces saturation: flit-cycles of
  // egress backlog beyond the FIFO's capacity (the FIFO itself plus the
  // packet currently serializing out). Each packet is charged only the NEW
  // excess it adds — the growth from `before` to `after` past the allowance
  // — never the standing backlog earlier packets were already charged for,
  // so one flit-cycle of congestion is counted exactly once.
  const sim::Cycle after = dp.egress_free - now;
  const sim::Cycle capacity = sim::Cycle(cfg_.fifo_depth) + flits;
  const sim::Cycle base = std::max(before, capacity);
  if (after > base) {
    const sim::Cycle excess = after - base;
    if (sharded_stats()) {
      dp.overflow += excess;
    } else {
      fifo_overflow_ctr_->inc(excess);
    }
  }

  record_latency(pkt.dst, arrival - pkt.sent_at);
  schedule_delivery(arrival, std::move(pkt));
}

void GmnNetwork::finalize_stats() {
  if (sharded_stats() && !overflow_finalized_) {
    overflow_finalized_ = true;
    for (const PortState& p : ports_) {
      if (p.overflow != 0) fifo_overflow_ctr_->inc(p.overflow);
    }
  }
  Network::finalize_stats();
}

}  // namespace ccnoc::noc
