#include "noc/gmn.hpp"

#include <algorithm>

namespace ccnoc::noc {

void GmnNetwork::route(Packet&& pkt) {
  const sim::Cycle flits = flits_of(pkt);
  const sim::Cycle now = sim_.now();

  // Ingress port: serialize behind earlier packets from the same source.
  sim::Cycle in_start = std::max(now, ingress_free_[pkt.src]);
  ingress_free_[pkt.src] = in_start + flits;

  // Fabric traversal.
  sim::Cycle fabric_done = in_start + flits + cfg_.min_latency;

  // Egress port: serialize behind earlier packets to the same destination.
  sim::Cycle out_start = std::max(fabric_done, egress_free_[pkt.dst]);
  egress_free_[pkt.dst] = out_start + flits;

  sim::Cycle arrival = out_start + flits;

  if (tracer_->on()) {
    // Attribute flits to the epoch in which each port actually carries them.
    tracer_->add_link_flits(link_in_[pkt.src], in_start, flits);
    tracer_->add_link_flits(link_out_[pkt.dst], out_start, flits);
  }
  if (profiler_->on()) [[unlikely]] {
    profiler_->link_flits(plink_in_[pkt.src], flits);
    profiler_->link_flits(plink_out_[pkt.dst], flits);
  }

  // Queueing is fully captured by the busy-until reservations above (a
  // packet waits behind every earlier packet on its ingress and egress
  // ports). When the backlog exceeds the configured FIFO depth the real
  // GMN would also backpressure the sender; we surface that pressure as a
  // statistic so experiments can see saturation.
  sim::Cycle backlog = egress_free_[pkt.dst] - now;
  sim::Cycle capacity = sim::Cycle(cfg_.fifo_depth) + 2 * flits + cfg_.min_latency;
  if (backlog > capacity) {
    fifo_overflow_ctr_->inc(backlog - capacity);
  }

  deliver_at(arrival, std::move(pkt));
}

}  // namespace ccnoc::noc
