#pragma once

#include "noc/network.hpp"

/// \file bus.hpp
/// A single shared bus (extension): every packet, regardless of source and
/// destination, serializes on one medium. This is the interconnect the
/// paper's related work ([4, 11, 18]) evaluated write policies on — and
/// the reason write-through was "well known in the literature to give poor
/// performances": the bus's aggregate bandwidth does not grow with the
/// node count, so per-store write-through traffic saturates it. The
/// `bench_ext_bus` study contrasts the same platforms on this bus and on
/// the NoC models, reproducing the paper's motivating argument.

namespace ccnoc::noc {

struct BusConfig {
  /// Fixed per-transaction cost (arbitration + address phase). This is the
  /// term that historically punished write-through on buses: every store
  /// is a full bus transaction no matter how small its payload.
  sim::Cycle arbitration = 8;
};

class BusNetwork final : public Network {
 public:
  BusNetwork(sim::Simulator& s, std::size_t nodes, BusConfig cfg = {})
      : Network(s), cfg_(cfg), grant_delay_sample_(&s.stats().sample("bus.grant_delay")) {
    (void)nodes;  // a bus has no per-node resources
    link_bus_ = tracer_->register_link("bus");
  }

 protected:
  void route(Packet&& pkt) override {
    // One transfer at a time: arbitration + full-packet serialization on
    // the shared medium. Global serialization trivially preserves
    // per-flow FIFO order.
    const sim::Cycle flits = flits_of(pkt);
    sim::Cycle start = std::max(sim_.now(), bus_free_);
    bus_free_ = start + cfg_.arbitration + flits;
    grant_delay_sample_->add(double(start - sim_.now()));
    if (tracer_->on()) tracer_->add_link_flits(link_bus_, start, flits);
    deliver_at(bus_free_, std::move(pkt));
  }

 private:
  BusConfig cfg_;
  sim::Cycle bus_free_ = 0;
  sim::Sample* grant_delay_sample_;  ///< resolved once; route() is per-packet
  unsigned link_bus_ = 0;            ///< tracer link id for the shared medium
};

}  // namespace ccnoc::noc
