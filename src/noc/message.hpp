#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hpp"

/// \file message.hpp
/// Coherence message vocabulary carried by NoC packets. These are the
/// protocol actions of paper §4: cache→memory requests, memory→cache
/// responses and directory-initiated commands. Both WTI and WB-MESI are
/// expressed with this one vocabulary (each protocol uses a subset).

namespace ccnoc::noc {

enum class MsgType : std::uint8_t {
  // cache → memory requests
  kReadShared,     ///< read miss: fetch a clean copy (WTI & MESI)
  kReadExclusive,  ///< MESI write-allocate: fetch block with exclusivity
  kUpgrade,        ///< MESI store hit in S: request exclusivity, no data
  kWriteWord,      ///< WTI write-through of one word (1..8 bytes)
  kAtomicSwap,     ///< WTI atomic swap at the bank (SPARC ldstub/swap-like)
  kAtomicAdd,      ///< WTI atomic fetch-and-add at the bank
  kWriteBack,      ///< MESI eviction of a Modified block (carries data)
  // memory → cache responses
  kReadResponse,    ///< block data; grant field says Shared or Exclusive
  kUpgradeAck,      ///< exclusivity granted (may carry data if copy was lost)
  kWriteAck,        ///< WTI write-through completed at the bank
  kSwapResponse,    ///< old value read by an atomic swap
  kWriteBackAck,    ///< write-back accepted; eviction buffer entry may free
  // directory → cache commands
  kInvalidate,   ///< discard your copy, then ack
  kUpdateWord,   ///< write-update: patch this word in your copy, then ack
  kFetch,        ///< owner: supply data, downgrade M→S
  kFetchInv,     ///< owner: supply data, invalidate
  // cache → memory command responses
  kInvalidateAck,
  kUpdateAck,      ///< update applied; had_copy=false reports a stale sharer
  kFetchResponse,  ///< block data from the (former) owner
  kTxnDone,        ///< requester → memory: direct-ack transaction finished,
                   ///< release the block (paper §4.2 optimization)
};

/// Number of MsgType values; keeps per-type counter tables in sync with the
/// enum (kTxnDone must stay the last enumerator).
inline constexpr std::size_t kNumMsgTypes = std::size_t(MsgType::kTxnDone) + 1;

[[nodiscard]] const char* to_string(MsgType t);

/// Exclusivity grant carried by kReadResponse.
enum class Grant : std::uint8_t {
  kShared,     ///< install in S (other sharers exist)
  kExclusive,  ///< install in E (MESI read with no other sharer)
  kModified,   ///< install directly in M (MESI write-allocate)
};

/// Maximum cache block size the inline message payload supports.
inline constexpr unsigned kMaxBlockBytes = 64;

/// One coherence message. Data travels inline (no heap) because the
/// simulator moves millions of these per run.
struct Message {
  MsgType type = MsgType::kReadShared;
  sim::Addr addr = 0;              ///< block address (word address for kWriteWord)
  sim::NodeId requester = sim::kInvalidNode;  ///< original requesting cache node
  std::uint64_t txn = 0;           ///< transaction id assigned by the requester
  Grant grant = Grant::kShared;
  std::uint8_t access_size = 0;    ///< bytes for kWriteWord (1, 2, 4 or 8)
  std::uint8_t data_len = 0;       ///< valid bytes in \p data
  std::uint8_t path_hops = 0;      ///< critical-path NoC traversals of the whole
                                   ///< transaction, filled in on responses
                                   ///< (paper Table 1 accounting)
  std::uint8_t port = 0;           ///< sub-port within the requesting node
                                   ///< (0 = D-cache, 1 = I-cache); echoed on
                                   ///< responses so the node can demux
  bool track = true;               ///< false for instruction fetches (read-only code)
  bool had_copy = true;            ///< kUpdateAck: whether the sharer still held
                                   ///< the block (false ⇒ stale presence bit)
  bool direct_ack = false;         ///< kInvalidate: acknowledge straight to
                                   ///< `requester` instead of the memory node
                                   ///< (paper §4.2's one-hop-saving optimization)
  std::uint8_t ack_count = 0;      ///< on responses: invalidation acks the
                                   ///< requester must collect before the
                                   ///< operation is globally performed
  std::array<std::uint8_t, kMaxBlockBytes> data{};

  [[nodiscard]] bool carries_data() const { return data_len != 0; }
};

/// Wire size of a message in bytes: a fixed header (command, address,
/// ids — 8 bytes, as a VCI-like command cell) plus the payload.
[[nodiscard]] inline unsigned wire_bytes(const Message& m) {
  return 8u + m.data_len;
}

}  // namespace ccnoc::noc
