#include "noc/mesh.hpp"

#include <algorithm>

namespace ccnoc::noc {

MeshNetwork::MeshNetwork(sim::Simulator& s, std::size_t nodes, MeshConfig cfg)
    : Network(s),
      topo_(nodes),
      cfg_(cfg),
      link_free_(std::size_t(topo_.width()) * std::size_t(topo_.height()) * 4, 0),
      inject_free_(nodes, 0),
      eject_free_(nodes, 0),
      hops_hist_(&s.stats().histogram("noc.mesh_hops", 32)) {
  // Telemetry links mirror the busy-until resources: injection/ejection
  // ports per node plus the four directed links of every router.
  for (std::size_t i = 0; i < nodes; ++i) {
    link_inject_.push_back(tracer_->register_link("mesh.in." + std::to_string(i)));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    link_eject_.push_back(tracer_->register_link("mesh.out." + std::to_string(i)));
  }
  static const char* kDirName[4] = {"E", "W", "N", "S"};
  std::size_t routers = std::size_t(topo_.width()) * std::size_t(topo_.height());
  for (std::size_t r = 0; r < routers; ++r) {
    for (std::size_t d = 0; d < 4; ++d) {
      link_dir_.push_back(tracer_->register_link("mesh." + std::to_string(r) + "." +
                                                 kDirName[d]));
    }
  }
}

void MeshNetwork::route(Packet&& pkt) {
  const sim::Cycle flits = flits_of(pkt);
  const Coord src = topo_.coord_of(pkt.src);
  const Coord dst = topo_.coord_of(pkt.dst);

  // Injection port.
  sim::Cycle t = std::max(sim_.now(), inject_free_[pkt.src]);
  inject_free_[pkt.src] = t + flits;
  if (tracer_->on()) tracer_->add_link_flits(link_inject_[pkt.src], t, flits);
  t += cfg_.router_delay;

  // Walk the XY path, reserving each directed link.
  Coord cur = src;
  int hop_count = 0;
  auto traverse = [&](Dir d, Coord next) {
    sim::NodeId cur_id = sim::NodeId(cur.y * topo_.width() + cur.x);
    std::size_t li = link_index(cur_id, d);
    t = std::max(t, link_free_[li]);
    link_free_[li] = t + flits;
    if (tracer_->on()) tracer_->add_link_flits(link_dir_[li], t, flits);
    t += cfg_.router_delay + 1;
    cur = next;
    ++hop_count;
  };
  while (cur.x != dst.x) {
    if (cur.x < dst.x) {
      traverse(kEast, Coord{cur.x + 1, cur.y});
    } else {
      traverse(kWest, Coord{cur.x - 1, cur.y});
    }
  }
  while (cur.y != dst.y) {
    if (cur.y < dst.y) {
      traverse(kSouth, Coord{cur.x, cur.y + 1});
    } else {
      traverse(kNorth, Coord{cur.x, cur.y - 1});
    }
  }

  // Ejection port serializes the whole packet onto the endpoint.
  t = std::max(t, eject_free_[pkt.dst]);
  eject_free_[pkt.dst] = t + flits;
  if (tracer_->on()) tracer_->add_link_flits(link_eject_[pkt.dst], t, flits);
  t += flits;

  hops_hist_->add(std::uint64_t(hop_count));
  deliver_at(t, std::move(pkt));
}

}  // namespace ccnoc::noc
