#pragma once

#include <array>
#include <string>
#include <vector>

#include "cache/cache_node.hpp"
#include "cpu/interfaces.hpp"
#include "cpu/thread.hpp"
#include "sim/simulator.hpp"

/// \file processor.hpp
/// In-order, one-instruction-per-cycle processor model (the paper's
/// SPARC-V8 stand-in). It pulls `ThreadOp`s from the running thread's
/// coroutine, charges instruction fetches through the I-cache (the program
/// counter walks the thread's code region), executes data accesses through
/// the D-cache with at most one outstanding request (sequential
/// consistency), and expands synchronization composites via the OS sync
/// library. Stall cycles are split into data-cache and instruction-cache
/// stalls — the quantity Figure 6 reports.

namespace ccnoc::cpu {

struct CpuConfig {
  bool model_ifetch = true;
  sim::Cycle min_op_cycles = 1;
};

class Processor {
 public:
  /// Core wired to any pair of caches implementing the processor-facing
  /// interface (directory controllers or snoopy-bus controllers).
  Processor(sim::Simulator& sim, cache::CacheIface& dcache, cache::CacheIface& icache,
            unsigned cpu_index, CpuConfig cfg = {});

  /// Convenience: wire to a directory-protocol cache node.
  Processor(sim::Simulator& sim, cache::CacheNode& node, unsigned cpu_index,
            CpuConfig cfg = {})
      : Processor(sim, node.dcache(), node.icache(), cpu_index, cfg) {}

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  /// Attach OS services. Optional: without a scheduler the processor runs
  /// its assigned thread to completion; without a sync library composite
  /// ops are rejected.
  void bind(SchedulerIf* sched, SyncLibrary* sync) {
    sched_ = sched;
    sync_ = sync;
  }

  /// Set the initial thread (or later, re-activate an idle processor).
  void assign_thread(ThreadContext* t) { thread_ = t; }

  /// Begin execution (schedules the first step).
  void start();

  /// Re-check the scheduler for runnable work if idle.
  void wake();

  [[nodiscard]] unsigned index() const { return cpu_; }
  [[nodiscard]] ThreadContext* current_thread() const { return thread_; }
  [[nodiscard]] bool idle() const { return thread_ == nullptr && !have_op_; }

  [[nodiscard]] std::uint64_t d_stall_cycles() const { return d_stall_; }
  [[nodiscard]] std::uint64_t i_stall_cycles() const { return i_stall_; }
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] std::uint64_t last_active_cycle() const { return last_active_; }

 private:
  void schedule_step(sim::Cycle delay);
  void step();
  bool fetch_next_op();
  void prepare_ifetch();
  void continue_ifetch();
  void execute_data();
  void resume_after_data(std::uint64_t value);
  void finish_op(sim::Cycle cost);
  void export_stats();
  void record_stall(sim::StallCat cat);
  // Cold: only reached when a coherence checker is attached.
  __attribute__((cold)) void probe_commit(std::uint64_t value);

  sim::Simulator& sim_;
  cache::CacheIface& dcache_;
  cache::CacheIface& icache_;
  unsigned cpu_;
  CpuConfig cfg_;
  std::string name_;

  SchedulerIf* sched_ = nullptr;
  SyncLibrary* sync_ = nullptr;

  ThreadContext* thread_ = nullptr;
  std::vector<ThreadProgram> service_stack_;
  bool in_scheduler_ = false;
  std::uint64_t saved_load_value_ = 0;  ///< register save across scheduler entry
  sim::Cycle next_tick_ = 0;

  ThreadOp cur_op_{};
  bool have_op_ = false;
  bool step_scheduled_ = false;
  std::vector<sim::Addr> ifetch_pending_;
  sim::Cycle wait_started_ = 0;

  std::uint64_t d_stall_ = 0;
  std::uint64_t i_stall_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t context_switches_ = 0;
  sim::Cycle last_active_ = 0;

  // Resolved once at construction; bumped on every timer tick.
  sim::Counter* scheduler_ticks_ctr_;
  // export_stats() targets, also resolved at construction: the registry map
  // must not grow while parallel domains are executing (export_stats runs
  // whenever a CPU goes idle), and lazy creation would grow it.
  std::array<sim::Counter*, 6> export_ctrs_{};
  sim::Tracer* tr_;    ///< cached; stall attribution is guarded on tr_->on()
  sim::Profiler* pf_;  ///< cached; per-line stall attribution when profiling
  sim::CoherenceProbe* probe_;  ///< cached; null unless checking is on
};

}  // namespace ccnoc::cpu
