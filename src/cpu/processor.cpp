#include "cpu/processor.hpp"

#include <algorithm>

namespace ccnoc::cpu {

Processor::Processor(sim::Simulator& sim, cache::CacheIface& dcache,
                     cache::CacheIface& icache, unsigned cpu_index, CpuConfig cfg)
    : sim_(sim),
      dcache_(dcache),
      icache_(icache),
      cpu_(cpu_index),
      cfg_(cfg),
      name_("cpu" + std::to_string(cpu_index)),
      scheduler_ticks_ctr_(&sim.stats().counter(name_ + ".scheduler_ticks")),
      tr_(&sim.tracer()),
      pf_(&sim.profiler()),
      probe_(sim.probe()) {
  tr_->set_track_name(sim::Tracer::kPidCpu, cpu_, name_);
  auto& st = sim_.stats();
  static const char* kExportKeys[] = {".d_stall_cycles",     ".i_stall_cycles",
                                      ".instructions",       ".ops",
                                      ".context_switches",   ".last_active"};
  for (std::size_t i = 0; i < export_ctrs_.size(); ++i) {
    export_ctrs_[i] = &st.counter(name_ + kExportKeys[i]);
  }
}

void Processor::start() {
  // Seed the first step into whichever queue the run needs it in: this
  // CPU's domain queue before a parallel run (the cache node id equals the
  // CPU index), the global queue otherwise — see Simulator::seed_queue.
  sim::Simulator::ExecScope scope(sim_, sim_.seed_queue(sim::NodeId(cpu_)));
  if (sched_) next_tick_ = sim_.now() + sched_->tick_period();
  schedule_step(1);
}

void Processor::wake() {
  if (thread_ != nullptr || have_op_ || step_scheduled_ || sched_ == nullptr) return;
  thread_ = sched_->next_thread(cpu_);
  if (thread_) schedule_step(1);
}

void Processor::schedule_step(sim::Cycle delay) {
  CCNOC_ASSERT(!step_scheduled_, "processor step double-scheduled");
  step_scheduled_ = true;
  sim_.schedule_in(std::max<sim::Cycle>(delay, 1), [this] {
    step_scheduled_ = false;
    step();
  });
}

void Processor::step() {
  if (!have_op_) {
    if (!fetch_next_op()) {
      export_stats();
      return;  // idle: no thread to run
    }
  }
  if (!ifetch_pending_.empty()) {
    continue_ifetch();
    return;
  }
  execute_data();
}

bool Processor::fetch_next_op() {
  while (true) {
    if (thread_ == nullptr) return false;

    // Timer tick: enter the scheduler between ops (never mid-composite).
    if (sched_ != nullptr && service_stack_.empty() && sim_.now() >= next_tick_) {
      service_stack_.push_back(sched_->tick(cpu_, *thread_));
      in_scheduler_ = true;
      // Interrupt entry saves the interrupted thread's registers: the
      // scheduler's own loads must not clobber a value the thread loaded
      // just before the tick and has not consumed yet.
      saved_load_value_ = thread_->last_load_value;
      scheduler_ticks_ctr_->inc();
    }

    if (!service_stack_.empty()) {
      ThreadProgram& g = service_stack_.back();
      if (!g.next()) {
        service_stack_.pop_back();
        if (service_stack_.empty() && in_scheduler_) {
          in_scheduler_ = false;
          thread_->last_load_value = saved_load_value_;  // register restore
          next_tick_ = sim_.now() + sched_->tick_period();
          if (sched_->should_switch(cpu_)) {
            ++context_switches_;
            // Context-switch memory barrier: the departing thread's
            // buffered stores must be globally visible before it can
            // resume (with program order intact) on another processor.
            auto res = dcache_.drain([this](std::uint64_t) {
              sched_->deschedule(cpu_, *thread_);
              thread_ = sched_->next_thread(cpu_);
              if (thread_ != nullptr) schedule_step(1);
            });
            if (res == cache::AccessResult::kPending) return false;
            sched_->deschedule(cpu_, *thread_);
            thread_ = sched_->next_thread(cpu_);
            if (thread_ == nullptr) return false;
          }
        }
        continue;
      }
      cur_op_ = g.value();
    } else {
      if (!thread_->program.next()) {
        thread_->finished = true;
        if (sched_ != nullptr) {
          sched_->thread_finished(cpu_, *thread_);
          thread_ = sched_->next_thread(cpu_);
        } else {
          thread_ = nullptr;
        }
        if (thread_ == nullptr) return false;
        continue;
      }
      cur_op_ = thread_->program.value();
    }

    switch (cur_op_.kind) {
      case OpKind::kLockAcquire:
      case OpKind::kLockRelease:
      case OpKind::kBarrier:
      case OpKind::kYield:
        CCNOC_ASSERT(sync_ != nullptr, "composite op without a sync library");
        service_stack_.push_back(sync_->expand(cur_op_, *thread_));
        continue;
      default:
        break;
    }

    have_op_ = true;
    ++ops_;
    ++thread_->ops_executed;
    instructions_ += cur_op_.icount;
    prepare_ifetch();
    return true;
  }
}

void Processor::prepare_ifetch() {
  ifetch_pending_.clear();
  if (!cfg_.model_ifetch || thread_ == nullptr || thread_->code_size == 0) return;

  const unsigned bb = icache_.config().block_bytes;
  ThreadContext& t = *thread_;
  // One full pass over the code region covers every block; cap there.
  std::uint64_t bytes =
      std::min<std::uint64_t>(std::uint64_t(cur_op_.icount) * 4, t.code_size);
  std::uint64_t pos = t.pc_off;
  sim::Addr last_block = ~sim::Addr(0);
  while (bytes > 0) {
    sim::Addr pc = t.code_base + pos;
    sim::Addr blk = pc & ~sim::Addr(bb - 1);
    if (blk != last_block) {
      ifetch_pending_.push_back(blk);
      last_block = blk;
    }
    std::uint64_t in_block = bb - (pc & (bb - 1));
    std::uint64_t step = std::min<std::uint64_t>(bytes, in_block);
    pos = (pos + step) % t.code_size;
    bytes -= step;
  }
  t.pc_off = pos;
}

void Processor::continue_ifetch() {
  while (!ifetch_pending_.empty()) {
    sim::Addr blk = ifetch_pending_.back();
    cache::MemAccess a;
    a.addr = blk;
    a.size = sim::kWordBytes;
    std::uint64_t dummy = 0;
    wait_started_ = sim_.now();
    auto res = icache_.access(a, &dummy, [this, blk](std::uint64_t) {
      const sim::Cycle delta = sim_.now() - wait_started_;
      i_stall_ += delta;
      pf_->stall(sim_.now(), cpu_, blk, delta, sim::AccessClass::kIfetch);
      if (tr_->on()) record_stall(sim::StallCat::kIfetch);
      CCNOC_ASSERT(!ifetch_pending_.empty(), "ifetch completion with empty queue");
      ifetch_pending_.pop_back();
      last_active_ = sim_.now();
      if (!ifetch_pending_.empty()) {
        continue_ifetch();
      } else {
        execute_data();
      }
    });
    if (res == cache::AccessResult::kPending) return;
    ifetch_pending_.pop_back();
  }
  execute_data();
}

void Processor::execute_data() {
  last_active_ = sim_.now();
  switch (cur_op_.kind) {
    case OpKind::kCompute:
      finish_op(std::max<sim::Cycle>(cur_op_.value, 1));
      return;
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kAtomicSwap:
    case OpKind::kAtomicAdd: {
      cache::MemAccess a;
      a.is_store = cur_op_.kind != OpKind::kLoad;
      if (cur_op_.kind == OpKind::kAtomicSwap) a.atomic = cache::AtomicKind::kSwap;
      if (cur_op_.kind == OpKind::kAtomicAdd) a.atomic = cache::AtomicKind::kAdd;
      a.addr = cur_op_.addr;
      a.size = cur_op_.size;
      a.value = cur_op_.value;
      if (a.is_store) {
        ++thread_->stores;
      } else {
        ++thread_->loads;
      }
      std::uint64_t v = 0;
      wait_started_ = sim_.now();
      auto res = dcache_.access(
          a, &v, [this](std::uint64_t val) { resume_after_data(val); });
      if (res == cache::AccessResult::kHit) {
        if (cur_op_.kind != OpKind::kStore) thread_->last_load_value = v;
        if (probe_ != nullptr) [[unlikely]] probe_commit(v);
        finish_op(std::max<sim::Cycle>(cur_op_.icount, cfg_.min_op_cycles));
      }
      return;
    }
    default:
      CCNOC_ASSERT(false, "composite op reached execute_data");
  }
}

void Processor::resume_after_data(std::uint64_t value) {
  const sim::Cycle delta = sim_.now() - wait_started_;
  d_stall_ += delta;
  if (pf_->on()) [[unlikely]] {
    // Same delta the d_stall_ counter accumulates, so the profiler's
    // per-line stall attribution reconciles with the run report exactly.
    sim::AccessClass cls = sim::AccessClass::kLoad;
    if (cur_op_.kind == OpKind::kStore) {
      cls = sim::AccessClass::kStore;
    } else if (cur_op_.kind == OpKind::kAtomicSwap ||
               cur_op_.kind == OpKind::kAtomicAdd) {
      cls = sim::AccessClass::kAtomic;
    }
    pf_->stall(sim_.now(), cpu_, cur_op_.addr, delta, cls);
  }
  if (tr_->on()) {
    sim::StallCat cat = sim::StallCat::kLoad;
    if (cur_op_.kind == OpKind::kStore) {
      cat = sim::StallCat::kStore;
    } else if (cur_op_.kind == OpKind::kAtomicSwap || cur_op_.kind == OpKind::kAtomicAdd) {
      cat = sim::StallCat::kAtomic;
    }
    record_stall(cat);
  }
  last_active_ = sim_.now();
  if (cur_op_.kind != OpKind::kStore) thread_->last_load_value = value;
  if (probe_ != nullptr) [[unlikely]] probe_commit(value);
  finish_op(std::max<sim::Cycle>(cur_op_.icount, cfg_.min_op_cycles));
}

void Processor::probe_commit(std::uint64_t value) {
  // Commit point of the current data op: the probe cross-checks it against
  // the golden model. wait_started_ is the cycle the access was issued —
  // for hits it equals now, so a load's legal value window is [issue, now].
  switch (cur_op_.kind) {
    case OpKind::kLoad:
      probe_->load_commit(cpu_, cur_op_.addr, cur_op_.size, value, wait_started_);
      break;
    case OpKind::kStore:
      probe_->store_commit(cpu_, cur_op_.addr, cur_op_.size, cur_op_.value);
      break;
    case OpKind::kAtomicSwap:
      probe_->atomic_commit(cpu_, cur_op_.addr, cur_op_.size, value, cur_op_.value,
                            /*is_add=*/false);
      break;
    case OpKind::kAtomicAdd:
      probe_->atomic_commit(cpu_, cur_op_.addr, cur_op_.size, value, cur_op_.value,
                            /*is_add=*/true);
      break;
    default:
      break;  // compute / composite ops carry no memory semantics
  }
}

void Processor::finish_op(sim::Cycle cost) {
  have_op_ = false;
  schedule_step(cost);
}

void Processor::record_stall(sim::StallCat cat) {
  // Same delta the legacy d_stall_/i_stall_ counters accumulate, so the
  // attributed breakdown reconciles with them exactly.
  sim::Cycle delta = sim_.now() - wait_started_;
  tr_->add_stall(cpu_, cat, delta);
  if (delta > 0 && tr_->full()) {
    static const char* kStallName[sim::kNumStallCats] = {"stall.load", "stall.store",
                                                         "stall.atomic", "stall.ifetch"};
    tr_->complete(wait_started_, sim_.now(), sim::NodeId(cpu_),
                  kStallName[std::size_t(cat)], sim::Tracer::kPidCpu, cpu_);
  }
}

void Processor::export_stats() {
  // Counters were resolved in the constructor: this runs every time the CPU
  // goes idle, possibly while other domains execute concurrently, and must
  // not touch the shared registry map — only this CPU's own counters.
  auto set = [&](std::size_t i, std::uint64_t v) {
    export_ctrs_[i]->reset();
    export_ctrs_[i]->inc(v);
  };
  set(0, d_stall_);
  set(1, i_stall_);
  set(2, instructions_);
  set(3, ops_);
  set(4, context_switches_);
  set(5, last_active_);
}

}  // namespace ccnoc::cpu
