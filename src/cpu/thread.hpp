#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/generator.hpp"
#include "sim/types.hpp"

/// \file thread.hpp
/// The execution-driven workload interface. A software thread is a C++20
/// coroutine that yields `ThreadOp`s — loads, stores, atomic swaps, compute
/// delays and synchronization composites. The processor model executes each
/// op against the simulated memory hierarchy; values read from simulated
/// memory come back through `ThreadContext::last_load_value`, so workload
/// code can branch on data it loaded (locks spin on real memory).

namespace ccnoc::cpu {

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kAtomicSwap,   ///< write value, old value -> last_load_value
  kAtomicAdd,    ///< add value, old value -> last_load_value (fetch-and-add)
  kCompute,      ///< pure ALU/FPU work: `cycles` cycles, no memory traffic
  kLockAcquire,  ///< composite: test-and-test-and-set spin on a lock word
  kLockRelease,  ///< composite: store 0 to the lock word
  kBarrier,      ///< composite: sense-reversing barrier on a barrier struct
  kYield,        ///< composite: voluntary scheduler entry (OS-defined)
};

struct ThreadOp {
  OpKind kind = OpKind::kCompute;
  sim::Addr addr = 0;
  std::uint8_t size = sim::kWordBytes;
  std::uint64_t value = 0;   ///< store/swap data, or compute cycle count
  std::uint32_t icount = 1;  ///< instructions this op represents (I-fetch model)

  static ThreadOp load(sim::Addr a, std::uint8_t size = sim::kWordBytes,
                       std::uint32_t icount = 1) {
    return ThreadOp{OpKind::kLoad, a, size, 0, icount};
  }
  static ThreadOp store(sim::Addr a, std::uint64_t v,
                        std::uint8_t size = sim::kWordBytes, std::uint32_t icount = 1) {
    return ThreadOp{OpKind::kStore, a, size, v, icount};
  }
  static ThreadOp atomic_swap(sim::Addr a, std::uint64_t v,
                              std::uint8_t size = sim::kWordBytes) {
    return ThreadOp{OpKind::kAtomicSwap, a, size, v, 1};
  }
  static ThreadOp atomic_add(sim::Addr a, std::uint64_t v,
                             std::uint8_t size = sim::kWordBytes) {
    return ThreadOp{OpKind::kAtomicAdd, a, size, v, 1};
  }
  static ThreadOp compute(std::uint64_t cycles) {
    return ThreadOp{OpKind::kCompute, 0, 0, cycles,
                    std::uint32_t(cycles > 0xffffffffull ? 0xffffffffull : cycles)};
  }
  static ThreadOp lock_acquire(sim::Addr lock) {
    return ThreadOp{OpKind::kLockAcquire, lock, sim::kWordBytes, 0, 1};
  }
  static ThreadOp lock_release(sim::Addr lock) {
    return ThreadOp{OpKind::kLockRelease, lock, sim::kWordBytes, 0, 1};
  }
  static ThreadOp barrier(sim::Addr bar) {
    return ThreadOp{OpKind::kBarrier, bar, sim::kWordBytes, 0, 1};
  }
};

struct ThreadContext;

/// A thread body: lazily yields the thread's dynamic operation stream.
using ThreadProgram = sim::Generator<ThreadOp>;

struct ThreadContext {
  unsigned tid = 0;
  unsigned home_cpu = 0;  ///< DS scheduling pins the thread here
  bool finished = false;

  ThreadProgram program;

  /// Value produced by the most recent kLoad / kAtomicSwap; workload
  /// coroutines read it after resuming (side-channel return value).
  std::uint64_t last_load_value = 0;

  /// Instruction-fetch model: the program counter walks this code region,
  /// wrapping at its end (a loop body). Workloads may retarget the region
  /// at phase boundaries.
  sim::Addr code_base = 0;
  std::uint64_t code_size = 4096;
  std::uint64_t pc_off = 0;

  /// Per-thread sense for each sense-reversing barrier (keyed by address).
  std::unordered_map<sim::Addr, bool> barrier_sense;

  /// Memory regions assigned by the OS layout; workloads address their
  /// stack-local data through these.
  sim::Addr stack_base = 0;
  sim::Addr local_base = 0;

  // Execution accounting (filled by the processor model).
  std::uint64_t ops_executed = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  void set_code_region(sim::Addr base, std::uint64_t size) {
    code_base = base;
    code_size = size ? size : 1;
    pc_off = 0;
  }
};

}  // namespace ccnoc::cpu
