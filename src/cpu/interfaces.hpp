#pragma once

#include "cpu/thread.hpp"
#include "sim/types.hpp"

/// \file interfaces.hpp
/// Hooks the processor model calls into the OS layer (`ccnoc::os`
/// implements both). They are defined here so `ccnoc::cpu` does not depend
/// on the OS module.

namespace ccnoc::cpu {

/// Expands composite synchronization ops (lock acquire/release, barrier)
/// into primitive-op micro-programs executed inline by the processor. The
/// expansions perform real loads/stores/swaps on simulated shared memory,
/// so synchronization generates genuine coherence traffic.
class SyncLibrary {
 public:
  virtual ~SyncLibrary() = default;
  virtual ThreadProgram expand(const ThreadOp& op, ThreadContext& ctx) = 0;
};

/// Scheduling policy. The processor invokes `tick` every `tick_period`
/// cycles of thread execution; the returned micro-program models the
/// scheduler's own memory accesses (run-queue locks and list updates — the
/// SMP-configuration contention source of paper §5.2). The functional
/// decision (continue / migrate / switch) is made by the implementation and
/// observed through `next_thread`.
class SchedulerIf {
 public:
  virtual ~SchedulerIf() = default;

  [[nodiscard]] virtual sim::Cycle tick_period() const = 0;

  /// Scheduler-entry micro-program for \p cpu. May decide to deschedule the
  /// current thread; the processor asks `next_thread` afterwards.
  virtual ThreadProgram tick(unsigned cpu, ThreadContext& current) = 0;

  /// Whether the last tick descheduled the current thread on \p cpu.
  [[nodiscard]] virtual bool should_switch(unsigned cpu) = 0;

  /// Hand the descheduled thread back to the run queue. The processor calls
  /// this only after the context-switch memory barrier (write-buffer drain)
  /// completed, so no other CPU can resume the thread with stores still in
  /// flight.
  virtual void deschedule(unsigned cpu, ThreadContext& t) = 0;

  /// Pick the next thread to run on \p cpu (nullptr = idle).
  virtual ThreadContext* next_thread(unsigned cpu) = 0;

  /// The thread running on \p cpu finished.
  virtual void thread_finished(unsigned cpu, ThreadContext& t) = 0;
};

}  // namespace ccnoc::cpu
