#include "core/fuzz.hpp"

#include <sstream>

namespace ccnoc::core {

namespace {

const char* protocol_flag(mem::Protocol p) {
  switch (p) {
    case mem::Protocol::kWti: return "wti";
    case mem::Protocol::kWbMesi: return "mesi";
    case mem::Protocol::kWtu: return "wtu";
  }
  return "?";
}

}  // namespace

std::string FuzzOptions::command_line() const {
  std::ostringstream os;
  os << "ccnoc_fuzz --seed " << seed << " --cpus " << cpus << " --arch " << arch
     << " --protocol " << protocol_flag(protocol) << " --ops " << ops;
  if (direct_ack) os << " --direct-ack";
  if (lock_every != 64) os << " --lock-every " << lock_every;
  if (barrier_every != 128) os << " --barrier-every " << barrier_every;
  if (fault == cache::CacheConfig::FaultKind::kSkipInvalidate) {
    os << " --fault skip-invalidate --fault-after " << fault_after;
  }
  if (l2_banks != 0) {
    os << " --l2-banks " << l2_banks;
    if (l2_size_bytes != 2048) os << " --l2-bytes " << l2_size_bytes;
  }
  if (parallel_domains != 0) os << " --parallel-domains " << parallel_domains;
  return os.str();
}

std::string FuzzOutcome::summary() const {
  std::ostringstream os;
  if (passed()) {
    os << "PASS (" << cycles << " cycles, " << loads_checked
       << " loads checked";
    if (engine == "parallel") os << ", parallel x" << engine_domains;
    os << ")";
    return os.str();
  }
  os << "FAIL:";
  if (!completed) os << " hung/stopped";
  if (!check_ok) os << " " << violations << " coherence violation(s)";
  if (completed && !verified) os << " functional verify failed";
  return os.str();
}

FuzzOutcome run_fuzz(const FuzzOptions& opt) {
  SystemConfig cfg = opt.arch == 2
                         ? SystemConfig::architecture2(opt.cpus, opt.protocol)
                         : SystemConfig::architecture1(opt.cpus, opt.protocol);
  cfg.seed = opt.seed;
  cfg.bank.direct_inval_ack = opt.direct_ack;
  cfg.check.enabled = true;
  cfg.check.walk_interval = opt.walk_interval;
  cfg.dcache.fault = opt.fault;
  cfg.dcache.fault_after = opt.fault_after;
  if (opt.l2_banks != 0) {
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = opt.l2_banks;
    cfg.l2.size_bytes = opt.l2_size_bytes;
  }
  if (!opt.trace_path.empty()) cfg.trace = sim::TraceMode::kFull;
  if (!opt.profile_path.empty()) cfg.profile = sim::ProfileMode::kOn;
  if (!opt.latency_path.empty()) cfg.latency = sim::LatencyMode::kOn;
  cfg.parallel_domains = opt.parallel_domains;
  cfg.heartbeat_ms = opt.heartbeat_ms;
  cfg.heartbeat_json = opt.heartbeat_json;

  apps::FuzzWorkload::Config wcfg;
  wcfg.seed = opt.seed;
  wcfg.ops_per_thread = opt.ops;
  wcfg.lock_every = opt.lock_every;
  wcfg.barrier_every = opt.barrier_every;
  apps::FuzzWorkload workload(wcfg);

  System sys(cfg);
  RunResult r = sys.run(workload, 0, opt.max_cycles);
  if (!opt.trace_path.empty()) {
    sys.simulator().tracer().write_chrome_json(opt.trace_path);
  }
  if (!opt.profile_path.empty()) {
    std::ostringstream label;
    label << "fuzz seed=" << opt.seed << " " << to_string(opt.protocol)
          << " arch" << opt.arch << " n=" << opt.cpus;
    (void)sim::write_profile_json(
        opt.profile_path, sys.simulator().profiler().snapshot(label.str()));
  }
  if (!opt.latency_path.empty()) {
    (void)sim::write_latency_json(opt.latency_path, sys.simulator().latency());
  }

  FuzzOutcome out;
  out.completed = r.completed;
  out.verified = r.verified;
  out.check_ok = r.check_ok;
  out.violations = r.check_violations;
  out.loads_checked = r.check_loads_verified;
  out.cycles = r.exec_cycles;
  out.engine = r.engine;
  out.engine_domains = r.engine_domains;
  out.report = r.check_report;
  out.exercised = sys.simulator().proto_coverage();
  return out;
}

MinimizeResult minimize_fuzz(const FuzzOptions& failing) {
  MinimizeResult m{failing, run_fuzz(failing), 1};
  if (m.outcome.passed()) return m;

  // A candidate is adopted only if it still fails, so the result always
  // reproduces — shrinking is greedy, not assumed monotonic.
  auto try_adopt = [&m](const FuzzOptions& cand) {
    ++m.runs;
    FuzzOutcome o = run_fuzz(cand);
    if (o.passed()) return false;
    m.reduced = cand;
    m.outcome = std::move(o);
    return true;
  };

  // 1. Strip workload features a debugger would rather not think about.
  if (m.reduced.barrier_every != 0) {
    FuzzOptions cand = m.reduced;
    cand.barrier_every = 0;
    try_adopt(cand);
  }
  if (m.reduced.lock_every != 0) {
    FuzzOptions cand = m.reduced;
    cand.lock_every = 0;
    try_adopt(cand);
  }
  // 1b. A two-level failure that also reproduces flat is a protocol bug,
  //     not a hierarchy bug — drop the L2 tier if the failure survives.
  if (m.reduced.l2_banks != 0) {
    FuzzOptions cand = m.reduced;
    cand.l2_banks = 0;
    try_adopt(cand);
  }

  // 2. Halve the CPU count while the failure survives (2 is the floor —
  //    coherence needs a second participant).
  while (m.reduced.cpus > 2) {
    FuzzOptions cand = m.reduced;
    cand.cpus = cand.cpus / 2 < 2 ? 2 : cand.cpus / 2;
    if (!try_adopt(cand)) break;
  }

  // 3. Binary-search the per-thread op count down to the smallest stream
  //    that still fails.
  unsigned lo = 1;
  unsigned hi = m.reduced.ops;
  while (lo < hi) {
    const unsigned mid = lo + (hi - lo) / 2;
    FuzzOptions cand = m.reduced;
    cand.ops = mid;
    if (try_adopt(cand)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return m;
}

}  // namespace ccnoc::core
