#include "core/system.hpp"

#include <algorithm>
#include <sstream>

#include "sim/heartbeat.hpp"
#include "sim/parallel.hpp"

namespace ccnoc::core {

SystemConfig SystemConfig::architecture1(unsigned n, mem::Protocol p) {
  SystemConfig c;
  c.num_cpus = n;
  c.num_banks = 2;
  c.arch = os::ArchKind::kCentralized;
  c.protocol = p;
  c.kernel.policy = os::SchedPolicy::kSmp;
  return c;
}

SystemConfig SystemConfig::architecture2(unsigned n, mem::Protocol p) {
  SystemConfig c;
  c.num_cpus = n;
  c.num_banks = n + 3;
  c.arch = os::ArchKind::kDistributed;
  c.protocol = p;
  c.kernel.policy = os::SchedPolicy::kDs;
  return c;
}

std::string SystemConfig::describe() const {
  std::ostringstream os;
  os << to_string(protocol) << " " << to_string(arch) << " n=" << num_cpus
     << " m=" << num_banks;
  if (two_level()) os << " l2=" << num_l2_banks;
  os << " " << to_string(kernel.policy)
     << (network == NetworkKind::kGmn    ? " GMN"
         : network == NetworkKind::kMesh ? " mesh"
                                         : " bus");
  return os.str();
}

namespace {
unsigned log2u(unsigned v) {
  unsigned s = 0;
  while ((1u << s) < v) ++s;
  return s;
}
}  // namespace

System::System(SystemConfig cfg)
    : cfg_(cfg),
      sim_(cfg.seed),
      // Block-granularity L2 interleave (l2_shift = log2 block size): each
      // memory-tier block then has exactly one L2 client, which is what lets
      // the memory banks keep the unmodified flat engine.
      map_(cfg.num_cpus, cfg.num_banks, 24,
           cfg.two_level() ? cfg.num_l2_banks : 0, log2u(cfg.dcache.block_bytes)) {
  // One platform-wide block size: caches and banks must agree on the
  // coherence granule.
  CCNOC_ASSERT(cfg_.dcache.block_bytes == cfg_.icache.block_bytes,
               "I/D caches must share one block size");
  CCNOC_ASSERT(cfg_.hierarchy_levels >= 1 && cfg_.hierarchy_levels <= 2,
               "hierarchy_levels must be 1 (flat) or 2 (shared L2)");
  cfg_.bank.block_bytes = cfg_.dcache.block_bytes;
  if (cfg_.two_level()) {
    CCNOC_ASSERT(cfg_.num_l2_banks >= 1 && cfg_.num_l2_banks <= 64,
                 "memory directories track L2 banks in a 64-bit presence word");
    cfg_.l2.bank.block_bytes = cfg_.dcache.block_bytes;
    // The direct-ack optimization is an L1-facing policy; it rides on the
    // platform knob so a two-level run of an optimized config stays
    // comparable to its flat counterpart.
    cfg_.l2.bank.direct_inval_ack = cfg_.bank.direct_inval_ack;
    // L1 controllers resolve hierarchy-only transitions (e.g. a WTU L1
    // acknowledging a back-invalidation) through the extension tables.
    cfg_.dcache.hierarchy = true;
    cfg_.icache.hierarchy = true;
  }

  // Tracer mode before any component is built: constructors register their
  // tracks, link slots and bank slots with it.
  sim_.tracer().set_mode(cfg_.trace);
  sim_.tracer().set_epoch_cycles(cfg_.trace_epoch);

  // Profiler too: caches, banks and the network cache `&sim.profiler()` and
  // register their bank/link slots during construction.
  sim_.profiler().set_mode(cfg_.profile);
  sim_.profiler().set_epoch_cycles(cfg_.profile_epoch);
  sim_.profiler().set_block_bytes(cfg_.dcache.block_bytes);

  // Latency observatory likewise: controllers, banks and the network cache
  // `&sim.latency()` at construction.
  sim_.latency().set_mode(cfg_.latency);
  sim_.latency().set_top_k(cfg_.latency_top_k);

  // Domain partition before any component: controllers and banks cache
  // their coverage shard (and the node-to-domain map is fixed) at
  // construction. Serial configs (0/1) leave the classic single-queue
  // layout untouched.
  if (cfg_.parallel_domains > 1) {
    CCNOC_ASSERT(cfg_.network == NetworkKind::kGmn,
                 "the parallel core requires the GMN fabric (its min_latency "
                 "is the lookahead)");
    sim_.configure_domains(
        std::min(cfg_.parallel_domains, unsigned(map_.num_nodes())));
  }

  // Checker likewise before any component: processors and banks cache the
  // probe pointer in their constructors. On partitioned runs the probe is a
  // recorder: events land in per-domain shards and are replayed through the
  // checker in canonical order after the run (check/replay.hpp), so the
  // oracle sees one deterministic stream regardless of the engine.
  if (cfg_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(sim_, map_, cfg_.protocol,
                                                cfg_.dcache, cfg_.check);
    if (checker_->wants_probe()) {
      if (sim_.num_domains() > 1) {
        recorder_ = std::make_unique<check::ProbeRecorder>(sim_, map_, *checker_,
                                                           sim_.num_domains());
        sim_.set_probe(recorder_.get());
      } else {
        sim_.set_probe(checker_.get());
      }
    }
  }

  const std::size_t nodes = map_.num_nodes();
  switch (cfg_.network) {
    case NetworkKind::kGmn: {
      // Explicit config wins; otherwise derive from the node count. The
      // GmnNetwork constructor rejects min_latency == 0 (an explicit zero
      // was historically a derive-me sentinel; now it is just invalid).
      const noc::GmnConfig g = cfg_.gmn ? *cfg_.gmn : noc::GmnConfig::for_nodes(nodes);
      net_ = std::make_unique<noc::GmnNetwork>(sim_, nodes, g);
      break;
    }
    case NetworkKind::kMesh:
      net_ = std::make_unique<noc::MeshNetwork>(sim_, nodes, cfg_.mesh);
      break;
    case NetworkKind::kBus:
      net_ = std::make_unique<noc::BusNetwork>(sim_, nodes);
      break;
  }

  // Memory tier. On a two-level platform its clients are the L2 banks, not
  // the CPUs: the directory is re-pointed at the L2 node-id range, and the
  // engine always runs flat write-back MESI — the block interleave gives
  // memory one client per block, so fills are granted Exclusive and the L1
  // protocol choice is entirely an upper-tier affair.
  mem::BankConfig mem_cfg = cfg_.bank;
  mem::Protocol mem_proto = cfg_.protocol;
  if (cfg_.two_level()) {
    mem_cfg.dir_clients = cfg_.num_l2_banks;
    mem_cfg.dir_client_base = map_.l2_node(0);
    mem_cfg.direct_inval_ack = false;  // L1-facing policy; meaningless here
    mem_proto = mem::Protocol::kWbMesi;
  }
  std::vector<mem::Bank*> bank_ptrs;
  for (unsigned b = 0; b < cfg_.num_banks; ++b) {
    banks_.push_back(
        std::make_unique<mem::Bank>(sim_, *net_, map_, b, mem_proto, mem_cfg));
    bank_ptrs.push_back(banks_.back().get());
  }
  dmem_ = std::make_unique<mem::BankedDirectMemory>(map_, std::move(bank_ptrs));

  if (cfg_.two_level()) {
    for (unsigned i = 0; i < cfg_.num_l2_banks; ++i) {
      l2_banks_.push_back(std::make_unique<mem::L2Bank>(sim_, *net_, map_, i,
                                                        cfg_.protocol, cfg_.l2));
    }
  }

  for (unsigned c = 0; c < cfg_.num_cpus; ++c) {
    nodes_.push_back(std::make_unique<cache::CacheNode>(
        sim_, *net_, map_, c, cfg_.protocol, cfg_.dcache, cfg_.icache));
    cpus_.push_back(std::make_unique<cpu::Processor>(sim_, *nodes_.back(), c, cfg_.cpu));
  }

  if (checker_) {
    for (auto& b : banks_) checker_->register_bank(*b);
    for (auto& l2 : l2_banks_) checker_->register_l2(*l2);
    for (unsigned c = 0; c < cfg_.num_cpus; ++c) {
      checker_->register_node(c, nodes_[c]->dcache(), nodes_[c]->icache());
    }
  }

  // The kernel loads programs and initializes locks/barriers through the
  // mirror, so the oracle's reference image includes the initial data.
  mirror_ = std::make_unique<check::MirroredMemory>(*dmem_, checker_.get());
  kernel_ = std::make_unique<os::Kernel>(map_, *mirror_, cfg_.arch, cfg_.kernel);
}

RunResult System::run(apps::Workload& workload, unsigned nthreads,
                      sim::Cycle max_cycles) {
  if (nthreads == 0) nthreads = cfg_.num_cpus;

  for (unsigned t = 0; t < nthreads; ++t) {
    kernel_->create_thread(/*home_cpu=*/t % cfg_.num_cpus);
  }
  workload.setup(*kernel_, nthreads);
  for (const auto& tptr : kernel_->threads()) {
    kernel_->set_program(*tptr, workload.make_program(*tptr));
  }

  std::vector<cpu::Processor*> cpu_ptrs;
  for (auto& p : cpus_) cpu_ptrs.push_back(p.get());
  // Engine choice must precede launch: Processor::start seeds each CPU's
  // first event, and it must land in the queue the chosen engine will run.
  const bool partitioned = sim_.num_domains() > 1;
  const char* block = partitioned ? parallel_block_reason(nthreads) : nullptr;
  const bool use_parallel = partitioned && block == nullptr;
  sim_.set_domain_seeding(use_parallel);
  kernel_->launch(cpu_ptrs);

  RunResult r;
  r.observers = observer_set();
  if (use_parallel) {
    r.engine = "parallel";
    r.engine_domains = sim_.num_domains();
  } else if (partitioned) {
    r.engine_fallback = block;
  }
  if (sim_.tracer().on()) {
    sim_.tracer().set_run_context(r.engine, r.engine_domains, r.engine_fallback,
                                  r.observers);
  }
  if (use_parallel) {
    r.events = run_parallel(max_cycles);
  } else if (checker_ && recorder_ == nullptr) {
    r.events = run_with_checker(max_cycles);
  } else {
    // Includes partitioned checked runs that fell back serial: the recorder
    // is already installed, so the probe stream is replayed below either
    // way and the verdict is engine-independent.
    r.events = sim_.run_to_completion(max_cycles);
  }
  // Feed the recorded probe stream through the checker in canonical
  // (cycle, node, seq) order before anything below consults the verdict.
  // Periodic invariant walks are skipped on recorded runs — the strict
  // final audit below still covers every end-state invariant.
  if (recorder_ != nullptr) recorder_->replay();
  r.completed = kernel_->all_finished();

  // Execution time = last cycle a processor retired work (the event queue
  // drain point also includes trailing protocol settle traffic).
  sim::Cycle end = 0;
  for (auto& p : cpus_) {
    end = std::max(end, p->last_active_cycle());
    r.d_stall_cycles += p->d_stall_cycles();
    r.i_stall_cycles += p->i_stall_cycles();
    r.instructions += p->instructions();
  }
  r.exec_cycles = end;
  r.noc_bytes = net_->total_bytes();
  r.noc_packets = net_->total_packets();
  if (sim_.tracer().on()) {
    r.stall_attr = sim_.tracer().stall_attr();
    r.stall_attr.resize(cfg_.num_cpus);  // CPUs that never stalled stay zero
  }
  // Embed the latency breakdown into the tracer's run report, so one
  // report_json() carries both views. latency_json is deterministic (no
  // run/engine metadata), so the embedded report stays byte-identical
  // across engines too.
  if (sim_.tracer().on() && sim_.latency().on()) {
    sim_.tracer().set_report_extra(",\"latency\":" +
                                   sim::latency_json(sim_.latency()));
  }

  // The strict end-of-run audit needs the caches intact (pre-flush) and a
  // quiescent platform; the image check runs post-flush, which deliberately
  // bypasses the oracle mirror so the comparison stays meaningful.
  if (checker_ && r.completed && quiescent()) checker_->final_audit();
  flush_caches();
  if (checker_ && r.completed) checker_->final_image_check();
  if (checker_) {
    r.check_ok = checker_->ok();
    r.check_violations = checker_->violation_count();
    r.check_loads_verified = checker_->loads_checked();
    if (!r.check_ok) r.check_report = checker_->report();
  }
  r.verified = r.completed && workload.verify(*dmem_);
  return r;
}

bool System::parallel_eligible(unsigned nthreads) const {
  return sim_.num_domains() > 1 && parallel_block_reason(nthreads) == nullptr;
}

const char* System::parallel_block_reason(unsigned nthreads) const {
  // The tracer, profiler and oracle checker are parallel-native: they
  // record into per-domain shards stamped with (cycle, node, seq) order
  // keys and merge/replay deterministically after the run, so they no
  // longer force the serial engine. What remains serial-only:
  //
  //  - trace-level logging interleaves free-form lines in execution order,
  //    which has no canonical merge;
  //  - a walker-only checker (no probe) audits invariants on a platform
  //    that is quiescent *between events*, which only the sequenced core
  //    guarantees;
  //  - oversubscription migrates threads through the shared scheduler
  //    queues mid-run and couples domains. With at most one thread per CPU
  //    those queues stay empty.
  if (sim_.logger().level() != sim::LogLevel::None) return "trace-logging";
  if (checker_ != nullptr && !checker_->wants_probe()) return "walker-only-checker";
  if (nthreads > cfg_.num_cpus) return "oversubscribed";
  return nullptr;
}

std::string System::observer_set() const {
  std::string s;
  auto add = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (sim_.tracer().on()) add(sim_.tracer().full() ? "trace" : "metrics");
  if (sim_.profiler().on()) add("profile");
  if (sim_.latency().on()) add("latency");
  if (checker_ != nullptr) add("check");
  if (sim_.logger().level() != sim::LogLevel::None) add("log");
  return s.empty() ? std::string("none") : s;
}

std::uint64_t System::run_parallel(sim::Cycle max_cycles) {
  auto* gmn = static_cast<noc::GmnNetwork*>(net_.get());

  // Everything scheduled so far went through Processor::start, which seeds
  // each CPU's first step directly into its own domain queue; the global
  // queue must be empty or those events would never execute.
  CCNOC_ASSERT(sim_.queue().empty(), "parallel run with events in the serial queue");

  sim::ParallelConfig pc;
  pc.domains = sim_.num_domains();
  pc.lookahead = gmn->config().min_latency;
  pc.workers = cfg_.parallel_workers;
  sim::ParallelEngine engine(sim_, pc);

  net_->enable_sharded_stats(map_.num_nodes());
  sim_.tracer().begin_sharded(pc.domains);
  sim_.profiler().begin_sharded(pc.domains);
  sim_.latency().begin_sharded(pc.domains);
  gmn->set_cross_post([&engine](sim::NodeId src, sim::NodeId dst, sim::Cycle when,
                                std::uint64_t seq, sim::EventQueue::Callback cb) {
    engine.post(src, dst, when, seq, std::move(cb));
  });

  // Live telemetry: a wall-clock sampler thread off the workers reads the
  // engine's relaxed progress counters. Barrier-wait timing costs two clock
  // reads per worker per barrier, so it is only armed when someone listens.
  sim::HeartbeatConfig hc;
  hc.interval_ms = cfg_.heartbeat_ms;
  hc.json_path = cfg_.heartbeat_json;
  sim::Heartbeat hb(hc, [&engine] {
    sim::Heartbeat::Sample s;
    s.engine = "parallel";
    const sim::ParallelEngine::ProgressSnapshot p = engine.progress();
    s.epochs = p.epochs;
    s.domains.reserve(p.domains.size());
    for (std::size_t d = 0; d < p.domains.size(); ++d) {
      s.domains.push_back({unsigned(d), p.domains[d].cycle, p.domains[d].events,
                           p.domains[d].mailbox});
    }
    s.workers.reserve(p.worker_barrier_wait_ns.size());
    for (std::size_t w = 0; w < p.worker_barrier_wait_ns.size(); ++w) {
      s.workers.push_back({unsigned(w), p.worker_barrier_wait_ns[w]});
    }
    return s;
  });
  if (hb.enabled()) engine.enable_progress_timing();
  hb.start();

  const sim::Cycle limit = max_cycles;  // all domain clocks start at zero
  const std::uint64_t events = engine.run(limit);

  hb.stop();
  gmn->set_cross_post({});
  net_->finalize_stats();
  sim_.tracer().finalize_sharded();
  sim_.profiler().finalize_sharded();
  sim_.latency().finalize_sharded();
  return events;
}

std::uint64_t System::run_with_checker(sim::Cycle max_cycles) {
  // Same event sequence as run_to_completion — the walker only *reads*
  // platform state between events — chunked so invariants are audited every
  // walk_interval cycles. EventQueue::run advances now to the chunk limit
  // even when idle, so the loop always makes progress.
  const sim::Cycle limit =
      max_cycles == ~sim::Cycle{0} ? max_cycles : sim_.now() + max_cycles;
  const sim::Cycle interval = std::max<sim::Cycle>(cfg_.check.walk_interval, 1);
  std::uint64_t events = 0;
  while (true) {
    events += sim_.queue().run(std::min(limit, sim_.now() + interval));
    checker_->walk();
    if (checker_->should_stop()) break;
    if (sim_.queue().empty() || sim_.now() >= limit) break;
  }
  return events;
}

void System::flush_caches() {
  if (l2_banks_.empty()) {
    for (auto& n : nodes_) {
      n->dcache().flush_dirty([this](sim::Addr a, const void* data, unsigned len) {
        dmem_->write(a, data, len);
      });
    }
    return;
  }
  // Two-level: dirty L1 lines collapse into their home L2 bank first
  // (inclusion guarantees the line is resident there), then dirty L2 lines
  // land in DRAM — the same path a timed write-back would take.
  for (auto& n : nodes_) {
    n->dcache().flush_dirty([this](sim::Addr a, const void* data, unsigned len) {
      l2_banks_[map_.l2_index_of(a)]->absorb_l1_flush(
          a, static_cast<const std::uint8_t*>(data), len);
    });
  }
  for (auto& l2 : l2_banks_) {
    l2->flush_dirty([this](sim::Addr a, const void* data, unsigned len) {
      dmem_->write(a, data, len);
    });
  }
}

bool System::quiescent() const {
  for (const auto& n : nodes_) {
    if (!n->idle()) return false;
  }
  for (const auto& b : banks_) {
    if (!b->idle()) return false;
  }
  for (const auto& l2 : l2_banks_) {
    if (!l2->idle()) return false;
  }
  return true;
}

RunResult run_paper_config(unsigned arch, mem::Protocol proto, unsigned n,
                           apps::Workload& workload, sim::Cycle max_cycles) {
  CCNOC_ASSERT(arch == 1 || arch == 2, "paper defines architectures 1 and 2");
  SystemConfig cfg = arch == 1 ? SystemConfig::architecture1(n, proto)
                               : SystemConfig::architecture2(n, proto);
  System sys(cfg);
  return sys.run(workload, 0, max_cycles);
}

}  // namespace ccnoc::core
