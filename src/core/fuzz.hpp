#pragma once

#include <string>

#include "apps/fuzz.hpp"
#include "core/system.hpp"
#include "proto/coverage.hpp"

/// \file fuzz.hpp
/// The protocol fuzzer harness: one seeded FuzzWorkload run on a full
/// checked platform, and a failing-run minimizer. Everything is a pure
/// function of FuzzOptions, so a failure prints as a replayable command
/// line (tools/fuzz_main.cpp) and shrinks deterministically.
///
/// A run FAILS when any of these is false:
///  - the workload completed before the cycle guard,
///  - the functional oracle verified (done tokens + lock counter),
///  - the coherence checker (golden-model oracle + invariant walker)
///    recorded zero violations.
///
/// `fault` injects a deliberate protocol bug (cache/config.hpp) to prove
/// the checker catches real coherence violations — the fuzzer's own
/// regression test, and the recipe for reproducing historic bugs.

namespace ccnoc::core {

struct FuzzOptions {
  std::uint64_t seed = 1;
  unsigned cpus = 4;
  unsigned arch = 1;  ///< paper architecture 1 (centralized) or 2 (distributed)
  mem::Protocol protocol = mem::Protocol::kWti;
  bool direct_ack = false;  ///< §4.2 direct invalidation acknowledgements
  unsigned ops = 400;       ///< ops per thread
  unsigned lock_every = 64;
  unsigned barrier_every = 128;
  cache::CacheConfig::FaultKind fault = cache::CacheConfig::FaultKind::kNone;
  unsigned fault_after = 0;
  /// Two-level platform: 0 = flat (the default), N > 0 = private L1s in
  /// front of N shared L2 banks (SystemConfig::hierarchy_levels = 2). The
  /// L2 data array is shrunk to l2_size_bytes so capacity recalls — the
  /// hierarchy's raciest machinery — fire under fuzzing, not just fills.
  unsigned l2_banks = 0;
  unsigned l2_size_bytes = 2048;
  sim::Cycle max_cycles = 50'000'000;
  sim::Cycle walk_interval = 1024;
  /// When non-empty, record a full Chrome/Perfetto trace of the run here.
  std::string trace_path;
  /// When non-empty, write a line-granularity sharing profile of the run
  /// here (same schema as tools/ccnoc_profile; see EXPERIMENTS.md).
  std::string profile_path;
  /// When non-empty, write a per-phase latency breakdown of the run here
  /// (same schema as tools/ccnoc_latency; see EXPERIMENTS.md).
  std::string latency_path;
  /// Domain partition to build the platform with (SystemConfig::
  /// parallel_domains). Coherence checking is parallel-native — the probe
  /// stream is recorded per domain and replayed through the checker in
  /// canonical order — so a partitioned fuzz run genuinely takes the
  /// parallel engine, and its verdict and every outcome field must still be
  /// identical to the serial reference.
  unsigned parallel_domains = 0;
  /// Live telemetry passthrough (SystemConfig::heartbeat_*): progress
  /// heartbeats every heartbeat_ms, optionally streamed as JSONL.
  unsigned heartbeat_ms = 0;
  std::string heartbeat_json;

  /// The equivalent tools/ccnoc_fuzz invocation (minus --trace/--minimize).
  [[nodiscard]] std::string command_line() const;
};

struct FuzzOutcome {
  bool completed = false;
  bool verified = false;
  bool check_ok = true;
  std::uint64_t violations = 0;
  std::uint64_t loads_checked = 0;
  sim::Cycle cycles = 0;
  std::string engine;           ///< engine actually used ("serial"/"parallel")
  unsigned engine_domains = 1;  ///< RunResult::engine_domains
  std::string report;  ///< checker violation report; empty when clean
  /// Declarative table rows (proto/tables.hpp) this run's controllers and
  /// bank took. Reconciled against the model checker's explored set: every
  /// row the fuzzer exercises must be reachable in the abstract model.
  proto::CoverageSet exercised;

  [[nodiscard]] bool passed() const { return completed && verified && check_ok; }
  [[nodiscard]] std::string summary() const;
};

/// Build the checked platform for \p opt, run the seeded workload, report.
FuzzOutcome run_fuzz(const FuzzOptions& opt);

struct MinimizeResult {
  FuzzOptions reduced;  ///< smallest configuration still failing
  FuzzOutcome outcome;  ///< the failure at `reduced`
  unsigned runs = 0;    ///< reduction attempts executed
};

/// Shrink a failing configuration: drop barriers and locks if the failure
/// survives, halve the CPU count while it still fails, then binary-search
/// the per-thread op count down to the smallest failing stream. Each
/// candidate is re-run from scratch (determinism makes this sound). If
/// \p failing actually passes, returns it unchanged after one run.
MinimizeResult minimize_fuzz(const FuzzOptions& failing);

}  // namespace ccnoc::core
