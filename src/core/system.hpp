#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "cache/cache_node.hpp"
#include "check/checker.hpp"
#include "check/replay.hpp"
#include "cpu/processor.hpp"
#include "mem/address_map.hpp"
#include "mem/bank.hpp"
#include "mem/direct_memory.hpp"
#include "mem/l2_bank.hpp"
#include "noc/bus.hpp"
#include "noc/gmn.hpp"
#include "noc/mesh.hpp"
#include "os/kernel.hpp"
#include "sim/simulator.hpp"

/// \file system.hpp
/// Platform builder and experiment runner. A `System` wires the paper's
/// modelled architecture (paper Figure 3): n SPARC-like processors with
/// 4 KB I/D caches sharing one NoC port each, m memory banks with full-map
/// directories, a GMN (or real mesh) interconnect, and the lightweight OS.
/// `run()` executes one workload to completion and collects the metrics the
/// paper's figures report.

namespace ccnoc::core {

enum class NetworkKind {
  kGmn,   ///< the paper's cycle-approximate crossbar (default)
  kMesh,  ///< real 2-D mesh with XY routing
  kBus,   ///< single shared bus (the related-work baseline interconnect)
};

struct SystemConfig {
  unsigned num_cpus = 4;
  unsigned num_banks = 2;
  os::ArchKind arch = os::ArchKind::kCentralized;
  mem::Protocol protocol = mem::Protocol::kWti;
  NetworkKind network = NetworkKind::kGmn;

  cache::CacheConfig dcache{};
  cache::CacheConfig icache{};
  mem::BankConfig bank{};

  /// Memory-hierarchy depth (ROADMAP direction 2). 1 = the paper's flat
  /// platform — the default, preserved bit-exactly. 2 = the per-CPU caches
  /// become private L1s in front of `num_l2_banks` address-interleaved
  /// shared L2 banks (mem/l2_bank.hpp): each L2 bank inclusively tracks its
  /// L1 sharers, and the memory directory tracks the L2 banks (under the
  /// flat write-back MESI engine regardless of the L1 protocol — the
  /// block-granularity interleave gives memory exactly one client per
  /// block). `l2` sets the L2 banks' geometry and service timing.
  unsigned hierarchy_levels = 1;
  unsigned num_l2_banks = 4;
  mem::L2BankConfig l2{};
  [[nodiscard]] bool two_level() const { return hierarchy_levels >= 2; }
  /// GMN fabric parameters (used when network == kGmn). Disengaged = derive
  /// from the node count via GmnConfig::for_nodes. An explicitly supplied
  /// config is used as-is and must have min_latency >= 1 — there is no
  /// longer a magic zero sentinel, so a zero can only be a mistake and is
  /// rejected at construction instead of silently re-derived.
  std::optional<noc::GmnConfig> gmn;
  noc::MeshConfig mesh{};
  os::KernelConfig kernel{};
  cpu::CpuConfig cpu{};
  std::uint64_t seed = 1;

  /// Observability (see sim/tracer.hpp): kOff costs nothing, kMetrics keeps
  /// aggregates for the run report, kFull additionally records the Chrome
  /// trace event log. Set before construction; components register their
  /// tracks and telemetry slots in their constructors.
  sim::TraceMode trace = sim::TraceMode::kOff;
  sim::Cycle trace_epoch = 1024;  ///< epoch length for per-link/bank series

  /// Line-granularity sharing & contention profiling (see sim/profile.hpp):
  /// kOff costs one predicted branch per hook, kOn attributes traffic,
  /// invalidations, stalls and bank queueing to cache lines. Same
  /// set-before-construction contract as the tracer mode.
  sim::ProfileMode profile = sim::ProfileMode::kOff;
  sim::Cycle profile_epoch = 1024;  ///< epoch length for sharing-set series

  /// Per-transaction latency phase attribution (see sim/latency.hpp): kOff
  /// costs one predicted branch per hook, kOn decomposes every coherence
  /// transaction into queueing/service/fan-out phases with HDR tail
  /// histograms and a worst-offender table. Same set-before-construction
  /// contract as the tracer mode.
  sim::LatencyMode latency = sim::LatencyMode::kOff;
  unsigned latency_top_k = 16;  ///< worst-offender table size in latency.json

  /// Coherence checking (see check/checker.hpp): off by default, in which
  /// case no probe is installed and the hot paths pay one null-pointer
  /// branch per hook. Set before construction, like the tracer mode.
  check::CheckConfig check{};

  /// Conservative parallel simulation (see sim/parallel.hpp). 0 or 1 =
  /// classic serial core. >1 = partition the platform's NoC nodes into this
  /// many domains (clamped to the node count) and run them on worker
  /// threads under the GMN min_latency lookahead. Requires network == kGmn.
  /// Results are byte-identical to serial for any domain/worker count. The
  /// observers are parallel-native — tracing, profiling and oracle-backed
  /// coherence checking record into per-domain shards and merge
  /// deterministically — so only trace-level logging, a walker-only
  /// checker, or oversubscribed thread scheduling still fall back to the
  /// serial engine (RunResult::engine_fallback names the reason).
  unsigned parallel_domains = 0;
  /// Worker threads for the parallel engine. 0 = one per domain, capped at
  /// the hardware concurrency (or the CCNOC_PARALLEL_WORKERS environment
  /// variable). Purely a throughput knob — never affects results.
  unsigned parallel_workers = 0;

  /// Live run telemetry (sim/heartbeat.hpp): 0 disables. When the parallel
  /// engine runs, a wall-clock sampler thread reports per-domain progress
  /// (cycle, events, mailbox depth, barrier wait) every heartbeat_ms as a
  /// stderr one-liner and, when heartbeat_json is set, as a
  /// ccnoc-heartbeat-v1 JSONL stream.
  unsigned heartbeat_ms = 0;
  std::string heartbeat_json;

  /// Paper architecture 1: 2 banks, centralized layout, SMP scheduler.
  static SystemConfig architecture1(unsigned n, mem::Protocol p);
  /// Paper architecture 2: n+3 banks, distributed layout, DS scheduler.
  static SystemConfig architecture2(unsigned n, mem::Protocol p);

  [[nodiscard]] std::string describe() const;
};

/// Everything the paper's evaluation plots, for one run.
struct RunResult {
  bool completed = false;  ///< finished before the cycle guard
  bool verified = false;   ///< golden host-side replay matched
  sim::Cycle exec_cycles = 0;
  std::uint64_t noc_bytes = 0;
  std::uint64_t noc_packets = 0;
  std::uint64_t instructions = 0;
  std::uint64_t d_stall_cycles = 0;
  std::uint64_t i_stall_cycles = 0;
  std::uint64_t events = 0;
  /// Domains the engine actually ran with: 1 = serial core (including
  /// fallback), >1 = the conservative parallel engine. Every other field is
  /// independent of this one — that is the engine's determinism contract,
  /// and what the equivalence tests pin.
  unsigned engine_domains = 1;
  /// Engine actually used: "serial" or "parallel".
  std::string engine = "serial";
  /// When a partitioned config still ran serial, the reason (e.g.
  /// "trace-logging", "walker-only-checker", "oversubscribed"); empty
  /// otherwise.
  std::string engine_fallback;
  /// Active observer set, comma-joined ("trace,profile,check"), or "none".
  std::string observers = "none";

  /// Per-CPU stall attribution (load/store/atomic/ifetch). Populated only
  /// when the run was traced (SystemConfig::trace != kOff); the category
  /// sums reconcile exactly with d_stall_cycles / i_stall_cycles.
  std::vector<sim::CpuStallAttr> stall_attr;

  /// Coherence-checker results (meaningful only when SystemConfig::check
  /// was enabled; check_ok stays true on unchecked runs).
  bool check_ok = true;
  std::uint64_t check_violations = 0;
  std::uint64_t check_loads_verified = 0;  ///< loads cross-checked vs the oracle
  std::string check_report;                ///< empty when clean

  [[nodiscard]] double exec_megacycles() const { return double(exec_cycles) / 1e6; }
  /// Figure 6 quantity: data-cache stall cycles as a share of execution.
  [[nodiscard]] double d_stall_pct(unsigned num_cpus) const {
    return exec_cycles == 0
               ? 0.0
               : 100.0 * double(d_stall_cycles) / (double(exec_cycles) * num_cpus);
  }
  [[nodiscard]] double i_stall_pct(unsigned num_cpus) const {
    return exec_cycles == 0
               ? 0.0
               : 100.0 * double(i_stall_cycles) / (double(exec_cycles) * num_cpus);
  }
};

class System {
 public:
  explicit System(SystemConfig cfg);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Run \p workload with \p nthreads threads (0 = one per CPU) to
  /// completion, bounded by \p max_cycles. One run per System instance.
  RunResult run(apps::Workload& workload, unsigned nthreads = 0,
                sim::Cycle max_cycles = 4'000'000'000ull);

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] noc::Network& network() { return *net_; }
  [[nodiscard]] mem::DirectMemoryIf& memory() { return *mirror_; }
  [[nodiscard]] os::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] cpu::Processor& processor(unsigned i) { return *cpus_.at(i); }
  [[nodiscard]] cache::CacheNode& cache_node(unsigned i) { return *nodes_.at(i); }
  [[nodiscard]] mem::Bank& bank(unsigned i) { return *banks_.at(i); }
  /// Shared L2 bank \p i (two-level platforms only).
  [[nodiscard]] mem::L2Bank& l2_bank(unsigned i) { return *l2_banks_.at(i); }
  [[nodiscard]] unsigned num_l2_banks() const { return unsigned(l2_banks_.size()); }
  [[nodiscard]] const mem::AddressMap& address_map() const { return map_; }
  /// The coherence checker, or nullptr when checking is off.
  [[nodiscard]] check::Checker* checker() { return checker_.get(); }

  /// Untimed flush of every Modified line into the banks (needed before
  /// verifying a write-back run).
  void flush_caches();

  /// True when every cache and bank has no in-flight transaction.
  [[nodiscard]] bool quiescent() const;

  /// True when run() will use the parallel engine for a \p nthreads-thread
  /// workload: domains were configured and nothing forces the serial core.
  [[nodiscard]] bool parallel_eligible(unsigned nthreads) const;
  /// Why a partitioned run would still take the serial engine, or nullptr
  /// when the parallel engine is usable. Meaningful only when domains were
  /// configured; the reason string lands in RunResult::engine_fallback and
  /// the schema-v1 run report.
  [[nodiscard]] const char* parallel_block_reason(unsigned nthreads) const;
  /// Comma-joined active observer set ("trace,profile,check,log" subset),
  /// "none" when every observer is off.
  [[nodiscard]] std::string observer_set() const;

 private:
  /// Event-pump for a checked run: interleaves queue chunks with invariant
  /// walks without perturbing the event sequence. Returns events executed.
  std::uint64_t run_with_checker(sim::Cycle max_cycles);

  /// Conservative parallel run (sim/parallel.hpp): sharded statistics,
  /// cross-domain posts through the epoch mailbox. Returns events executed.
  std::uint64_t run_parallel(sim::Cycle max_cycles);

  SystemConfig cfg_;
  sim::Simulator sim_;
  mem::AddressMap map_;
  std::unique_ptr<check::Checker> checker_;  ///< built first: hooks are cached
  /// Installed as the Simulator probe instead of the checker on partitioned
  /// checked runs: records the probe stream, replayed before final_audit().
  std::unique_ptr<check::ProbeRecorder> recorder_;
  std::unique_ptr<noc::Network> net_;
  std::vector<std::unique_ptr<mem::Bank>> banks_;
  std::vector<std::unique_ptr<mem::L2Bank>> l2_banks_;  ///< empty when flat
  std::vector<std::unique_ptr<cache::CacheNode>> nodes_;
  std::vector<std::unique_ptr<cpu::Processor>> cpus_;
  std::unique_ptr<mem::BankedDirectMemory> dmem_;
  std::unique_ptr<check::MirroredMemory> mirror_;  ///< backdoor, oracle-mirrored
  std::unique_ptr<os::Kernel> kernel_;
};

/// Convenience one-shot: build the paper platform for (arch, protocol, n),
/// run the workload, return the result.
RunResult run_paper_config(unsigned arch, mem::Protocol proto, unsigned n,
                           apps::Workload& workload,
                           sim::Cycle max_cycles = 4'000'000'000ull);

}  // namespace ccnoc::core
