#pragma once

#include <memory>
#include <vector>

#include "cpu/processor.hpp"
#include "os/layout.hpp"
#include "os/scheduler.hpp"
#include "os/sync.hpp"

/// \file kernel.hpp
/// The lightweight OS model (paper ref [14]): thread lifecycle, the memory
/// layout policy, POSIX-like synchronization objects and one of the two
/// scheduling configurations. `Kernel` is the single object workloads and
/// the platform builder talk to.

namespace ccnoc::os {

enum class SchedPolicy { kSmp, kDs };

[[nodiscard]] inline const char* to_string(SchedPolicy p) {
  return p == SchedPolicy::kSmp ? "SMP" : "DS";
}

struct KernelConfig {
  SchedPolicy policy = SchedPolicy::kSmp;
  SchedulerConfig sched{};
  SyncConfig sync{};
  std::uint64_t stack_bytes = 4096;  ///< per-thread stack/local region
  std::uint64_t seed = 42;
};

class Kernel {
 public:
  Kernel(const mem::AddressMap& map, mem::DirectMemoryIf& dm, ArchKind arch,
         KernelConfig cfg);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Create a thread context pinned (for DS) to \p home_cpu, with its stack
  /// placed by the layout policy. The program is attached separately, after
  /// the workload has allocated its data.
  cpu::ThreadContext& create_thread(unsigned home_cpu);

  void set_program(cpu::ThreadContext& t, cpu::ThreadProgram program) {
    t.program = std::move(program);
  }

  /// Allocate and initialize a mutex in shared memory.
  sim::Addr create_lock();

  /// Allocate and initialize a barrier for \p nthreads in shared memory.
  sim::Addr create_barrier(unsigned nthreads);

  /// Bind scheduler + sync library to the processors, hand out initial
  /// threads and start execution.
  void launch(const std::vector<cpu::Processor*>& cpus);

  [[nodiscard]] MemoryLayout& layout() { return layout_; }
  [[nodiscard]] SyncLib& sync_lib() { return sync_; }
  [[nodiscard]] cpu::SchedulerIf& scheduler();
  [[nodiscard]] mem::DirectMemoryIf& memory() { return dm_; }
  [[nodiscard]] const std::vector<std::unique_ptr<cpu::ThreadContext>>& threads() const {
    return threads_;
  }
  [[nodiscard]] bool all_finished() const;
  [[nodiscard]] SchedPolicy policy() const { return cfg_.policy; }
  [[nodiscard]] std::uint64_t migrations() const {
    return smp_ ? smp_->migrations() : 0;
  }

 private:
  const mem::AddressMap& map_;
  mem::DirectMemoryIf& dm_;
  KernelConfig cfg_;
  MemoryLayout layout_;
  SyncLib sync_;
  std::unique_ptr<SmpScheduler> smp_;
  std::unique_ptr<DsScheduler> ds_;
  std::vector<std::unique_ptr<cpu::ThreadContext>> threads_;
};

}  // namespace ccnoc::os
