#include "os/sync.hpp"

namespace ccnoc::os {

using cpu::OpKind;
using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

ThreadProgram lock_acquire_program(sim::Addr lock, ThreadContext& ctx,
                                   sim::Cycle backoff) {
  while (true) {
    co_yield ThreadOp::atomic_swap(lock, 1);
    if (ctx.last_load_value == 0) co_return;  // acquired
    // Test-and-test-and-set: spin on plain loads (cache-local once the
    // block is installed) until the lock looks free, then retry the swap.
    do {
      co_yield ThreadOp::compute(backoff);
      co_yield ThreadOp::load(lock);
    } while (ctx.last_load_value != 0);
  }
}

ThreadProgram lock_release_program(sim::Addr lock) {
  co_yield ThreadOp::store(lock, 0);
}

ThreadProgram barrier_wait_program(sim::Addr bar, ThreadContext& ctx,
                                   sim::Cycle backoff) {
  const bool local = !ctx.barrier_sense[bar];
  ctx.barrier_sense[bar] = local;

  co_yield ThreadOp::load(bar + BarrierLayout::kTotal);
  const std::uint64_t total = ctx.last_load_value;
  CCNOC_ASSERT(total > 0, "barrier used before initialization");

  // Announce arrival with one atomic fetch-and-add. The atomic is fully
  // ordered after the thread's earlier stores (WTI drains its write buffer
  // first; MESI holds exclusivity), so work preceding the barrier is
  // globally visible before the arrival counts.
  co_yield ThreadOp::atomic_add(bar + BarrierLayout::kCount, 1);
  const std::uint64_t arrived = ctx.last_load_value + 1;

  if (arrived == total) {
    // Last arrival: reset the counter, then flip the shared sense. The
    // reset is ordered before the flip, so early arrivals of the next
    // round (which wait for the flip) always see a reset counter.
    co_yield ThreadOp::store(bar + BarrierLayout::kCount, 0);
    co_yield ThreadOp::store(bar + BarrierLayout::kSense, local ? 1 : 0);
  } else {
    do {
      co_yield ThreadOp::compute(backoff);
      co_yield ThreadOp::load(bar + BarrierLayout::kSense);
    } while ((ctx.last_load_value != 0) != local);
  }
}

namespace {
ThreadProgram empty_program() { co_return; }
}  // namespace

ThreadProgram SyncLib::expand(const ThreadOp& op, ThreadContext& ctx) {
  switch (op.kind) {
    case OpKind::kLockAcquire:
      return lock_acquire_program(op.addr, ctx, cfg_.spin_backoff);
    case OpKind::kLockRelease:
      return lock_release_program(op.addr);
    case OpKind::kBarrier:
      return barrier_wait_program(op.addr, ctx, cfg_.spin_backoff);
    case OpKind::kYield:
      return empty_program();  // voluntary reschedule point; no traffic
    default:
      CCNOC_ASSERT(false, "not a composite op");
  }
  return {};
}

}  // namespace ccnoc::os
