#include "os/kernel.hpp"

namespace ccnoc::os {

Kernel::Kernel(const mem::AddressMap& map, mem::DirectMemoryIf& dm, ArchKind arch,
               KernelConfig cfg)
    : map_(map), dm_(dm), cfg_(cfg), layout_(map, arch), sync_(cfg.sync) {
  if (cfg_.policy == SchedPolicy::kSmp) {
    smp_ = std::make_unique<SmpScheduler>(layout_, dm_, map.num_cpus(), cfg_.sched,
                                          cfg_.seed);
  } else {
    ds_ = std::make_unique<DsScheduler>(layout_, dm_, map.num_cpus(), cfg_.sched);
  }
}

cpu::SchedulerIf& Kernel::scheduler() {
  if (smp_) return *smp_;
  return *ds_;
}

cpu::ThreadContext& Kernel::create_thread(unsigned home_cpu) {
  auto t = std::make_unique<cpu::ThreadContext>();
  t->tid = unsigned(threads_.size());
  t->home_cpu = home_cpu;
  t->stack_base = layout_.alloc_local(t->tid, cfg_.stack_bytes);
  t->local_base = t->stack_base;
  threads_.push_back(std::move(t));
  return *threads_.back();
}

sim::Addr Kernel::create_lock() {
  sim::Addr a = layout_.alloc_shared(4, 4);
  SyncLib::init_lock(dm_, a);
  return a;
}

sim::Addr Kernel::create_barrier(unsigned nthreads) {
  sim::Addr a = layout_.alloc_shared(BarrierLayout::kBytes, 32);
  SyncLib::init_barrier(dm_, a, nthreads);
  return a;
}

void Kernel::launch(const std::vector<cpu::Processor*>& cpus) {
  CCNOC_ASSERT(cpus.size() == map_.num_cpus(), "processor count mismatch");
  for (cpu::Processor* p : cpus) p->bind(&scheduler(), &sync_);

  if (cfg_.policy == SchedPolicy::kSmp) {
    // First-come first-served: the first n threads start on the n CPUs,
    // the rest wait in the global queue (and may run anywhere).
    std::size_t next = 0;
    for (cpu::Processor* p : cpus) {
      if (next < threads_.size()) p->assign_thread(threads_[next++].get());
    }
    for (; next < threads_.size(); ++next) smp_->enqueue(*threads_[next]);
  } else {
    std::vector<bool> cpu_busy(cpus.size(), false);
    for (auto& t : threads_) {
      CCNOC_ASSERT(t->home_cpu < cpus.size(), "thread pinned to unknown CPU");
      if (!cpu_busy[t->home_cpu]) {
        cpus[t->home_cpu]->assign_thread(t.get());
        cpu_busy[t->home_cpu] = true;
      } else {
        ds_->enqueue(*t);
      }
    }
  }
  for (cpu::Processor* p : cpus) p->start();
}

bool Kernel::all_finished() const {
  for (const auto& t : threads_) {
    if (!t->finished) return false;
  }
  return true;
}

}  // namespace ccnoc::os
