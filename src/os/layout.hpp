#pragma once

#include <vector>

#include "mem/address_map.hpp"

/// \file layout.hpp
/// Memory layout policy (paper §5.2 "Memory layout"):
///
/// * Architecture 1 (centralized, 2 banks, SMP kernel): every shared and
///   local datum, thread stacks and kernel structures live in bank 0 —
///   maximal contention on one bank; code lives in bank 1.
/// * Architecture 2 (distributed, n+3 banks, DS kernel): thread i's stack
///   and local data live in its dedicated bank i; shared static/dynamic
///   data spread round-robin over all banks ("spread as fairly as possible
///   the accesses to all memory banks"); kernel per-CPU schedulers live in
///   the per-CPU banks; code lives in shared bank n.

namespace ccnoc::os {

enum class ArchKind {
  kCentralized,  ///< the paper's architecture 1
  kDistributed,  ///< the paper's architecture 2
};

[[nodiscard]] inline const char* to_string(ArchKind a) {
  return a == ArchKind::kCentralized ? "arch1-centralized" : "arch2-distributed";
}

class MemoryLayout {
 public:
  MemoryLayout(const mem::AddressMap& map, ArchKind arch);

  /// Bump-allocate \p size bytes in \p bank, aligned to \p align.
  sim::Addr alloc_in_bank(unsigned bank, std::uint64_t size, unsigned align = 32);

  /// Shared data (application-visible). Arch 2 round-robins whole
  /// allocations across all banks, so chunked allocations (e.g. one grid
  /// row per call) spread accesses over the die as the paper does.
  sim::Addr alloc_shared(std::uint64_t size, unsigned align = 32);

  /// Thread-private data (stacks, local arrays) of thread \p tid.
  sim::Addr alloc_local(unsigned tid, std::uint64_t size, unsigned align = 32);

  /// Kernel/scheduler structures. Pass the owning CPU for per-CPU
  /// structures (arch 2) or any value for the global ones (arch 1).
  sim::Addr alloc_kernel(unsigned cpu, std::uint64_t size, unsigned align = 32);

  /// Read-only code segments (never tracked by the directory).
  sim::Addr alloc_code(std::uint64_t size, unsigned align = 32);

  [[nodiscard]] ArchKind arch() const { return arch_; }
  [[nodiscard]] const mem::AddressMap& map() const { return map_; }

  /// Bytes allocated in \p bank so far (tests / reports).
  [[nodiscard]] std::uint64_t used_in_bank(unsigned bank) const;

 private:
  const mem::AddressMap& map_;
  ArchKind arch_;
  std::vector<std::uint64_t> cursor_;  // per-bank offset from bank base
  unsigned shared_rr_ = 0;
};

}  // namespace ccnoc::os
