#pragma once

#include "cpu/interfaces.hpp"
#include "mem/direct_memory.hpp"
#include "sim/types.hpp"

/// \file sync.hpp
/// Synchronization primitives of the lightweight POSIX-like OS (paper ref
/// [14]), implemented as micro-programs of real loads/stores/atomic swaps
/// over simulated shared memory, so locks and barriers produce genuine
/// coherence traffic under both protocols.
///
/// * Locks: test-and-test-and-set spin locks with a small constant backoff
///   (spinning reads hit locally until an invalidation arrives).
/// * Barriers: sense-reversing centralized barriers; the barrier struct is
///   four words: [lock][count][sense][total].

namespace ccnoc::os {

struct SyncConfig {
  sim::Cycle spin_backoff = 20;  ///< pause between spin probes
};

/// Word offsets inside a barrier struct.
struct BarrierLayout {
  static constexpr sim::Addr kLock = 0;
  static constexpr sim::Addr kCount = 4;
  static constexpr sim::Addr kSense = 8;
  static constexpr sim::Addr kTotal = 12;
  static constexpr std::uint64_t kBytes = 16;
};

/// Micro-program: acquire the test-and-test-and-set lock at \p lock.
cpu::ThreadProgram lock_acquire_program(sim::Addr lock, cpu::ThreadContext& ctx,
                                        sim::Cycle backoff);

/// Micro-program: release the lock at \p lock (store 0).
cpu::ThreadProgram lock_release_program(sim::Addr lock);

/// Micro-program: sense-reversing barrier wait at \p bar.
cpu::ThreadProgram barrier_wait_program(sim::Addr bar, cpu::ThreadContext& ctx,
                                        sim::Cycle backoff);

/// Composite-op expander handed to the processors.
class SyncLib final : public cpu::SyncLibrary {
 public:
  explicit SyncLib(SyncConfig cfg = {}) : cfg_(cfg) {}

  cpu::ThreadProgram expand(const cpu::ThreadOp& op, cpu::ThreadContext& ctx) override;

  /// Initialize a lock word in memory (released).
  static void init_lock(mem::DirectMemoryIf& dm, sim::Addr lock) {
    dm.write_u32(lock, 0);
  }

  /// Initialize a barrier struct for \p nthreads participants.
  static void init_barrier(mem::DirectMemoryIf& dm, sim::Addr bar, unsigned nthreads) {
    dm.write_u32(bar + BarrierLayout::kLock, 0);
    dm.write_u32(bar + BarrierLayout::kCount, 0);
    dm.write_u32(bar + BarrierLayout::kSense, 0);
    dm.write_u32(bar + BarrierLayout::kTotal, nthreads);
  }

  [[nodiscard]] const SyncConfig& config() const { return cfg_; }

 private:
  SyncConfig cfg_;
};

}  // namespace ccnoc::os
