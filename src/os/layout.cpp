#include "os/layout.hpp"

namespace ccnoc::os {

MemoryLayout::MemoryLayout(const mem::AddressMap& map, ArchKind arch)
    : map_(map), arch_(arch), cursor_(map.num_banks(), 64) {
  // Cursors start at offset 64: the first block of each bank is reserved so
  // that no valid allocation sits at a bank's base address.
  if (arch_ == ArchKind::kCentralized) {
    CCNOC_ASSERT(map.num_banks() >= 2, "architecture 1 needs 2 banks");
  } else {
    CCNOC_ASSERT(map.num_banks() >= map.num_cpus() + 1,
                 "architecture 2 needs a bank per CPU plus shared banks");
  }
}

sim::Addr MemoryLayout::alloc_in_bank(unsigned bank, std::uint64_t size, unsigned align) {
  CCNOC_ASSERT(bank < map_.num_banks(), "allocation in unknown bank");
  CCNOC_ASSERT(align != 0 && (align & (align - 1)) == 0, "alignment not a power of two");
  std::uint64_t& cur = cursor_[bank];
  cur = (cur + align - 1) & ~std::uint64_t(align - 1);
  CCNOC_ASSERT(cur + size <= map_.bank_region_bytes(), "bank region exhausted");
  sim::Addr a = map_.bank_base(bank) + cur;
  cur += size;
  return a;
}

sim::Addr MemoryLayout::alloc_shared(std::uint64_t size, unsigned align) {
  if (arch_ == ArchKind::kCentralized) return alloc_in_bank(0, size, align);
  // Architecture 2 spreads shared data over *all* banks ("spread as fairly
  // as possible the accesses to all memory banks", paper §5.2) — chunked
  // allocations (grid rows, molecule records) round-robin across the die.
  unsigned bank = shared_rr_++ % map_.num_banks();
  return alloc_in_bank(bank, size, align);
}

sim::Addr MemoryLayout::alloc_local(unsigned tid, std::uint64_t size, unsigned align) {
  if (arch_ == ArchKind::kCentralized) return alloc_in_bank(0, size, align);
  return alloc_in_bank(tid % map_.num_cpus(), size, align);
}

sim::Addr MemoryLayout::alloc_kernel(unsigned cpu, std::uint64_t size, unsigned align) {
  if (arch_ == ArchKind::kCentralized) return alloc_in_bank(0, size, align);
  return alloc_in_bank(cpu % map_.num_cpus(), size, align);
}

sim::Addr MemoryLayout::alloc_code(std::uint64_t size, unsigned align) {
  if (arch_ == ArchKind::kCentralized) return alloc_in_bank(1, size, align);
  return alloc_in_bank(map_.num_cpus(), size, align);
}

std::uint64_t MemoryLayout::used_in_bank(unsigned bank) const {
  CCNOC_ASSERT(bank < map_.num_banks(), "unknown bank");
  return cursor_[bank] - 64;
}

}  // namespace ccnoc::os
