#pragma once

#include <deque>
#include <vector>

#include "cpu/interfaces.hpp"
#include "os/layout.hpp"
#include "os/sync.hpp"
#include "sim/rng.hpp"

/// \file scheduler.hpp
/// The two scheduler configurations of the paper's lightweight OS (§5.2):
///
/// * `SmpScheduler` — symmetric scheduling: one global run queue protected
///   by one lock, both living in shared memory (bank 0 on architecture 1).
///   Every timer tick the CPU takes the lock and walks the queue words;
///   with some probability the running task migrates (it is swapped with a
///   queued task, landing later on another CPU with a cold cache). The
///   centralized structure is a real contention point, as the paper notes.
/// * `DsScheduler` — decentralized scheduling: per-CPU run queues in
///   per-CPU memory banks, tasks pinned to their home CPU, ticks touch only
///   local structures. No migration.
///
/// Functional bookkeeping (which ThreadContext runs where) is host-side;
/// the *memory traffic* of scheduling — lock acquisition and queue-word
/// reads/writes — is executed for real through the caches.

namespace ccnoc::os {

struct SchedulerConfig {
  /// Timer-tick period. A 1 ms tick on a ~100 MHz embedded core is ~100k
  /// cycles; shorter periods turn the SMP global scheduler lock into a
  /// permanent convoy on large platforms.
  sim::Cycle tick_period = 100000;
  unsigned queue_words = 8;      ///< run-queue words touched per tick
  double migrate_prob = 0.25;    ///< SMP: per-tick migration probability
  sim::Cycle spin_backoff = 20;  ///< scheduler-lock spin pause
};

class SmpScheduler final : public cpu::SchedulerIf {
 public:
  SmpScheduler(MemoryLayout& layout, mem::DirectMemoryIf& dm, unsigned num_cpus,
               SchedulerConfig cfg, std::uint64_t seed);

  [[nodiscard]] sim::Cycle tick_period() const override { return cfg_.tick_period; }
  cpu::ThreadProgram tick(unsigned cpu, cpu::ThreadContext& current) override;
  [[nodiscard]] bool should_switch(unsigned cpu) override;
  void deschedule(unsigned cpu, cpu::ThreadContext& t) override;
  cpu::ThreadContext* next_thread(unsigned cpu) override;
  void thread_finished(unsigned cpu, cpu::ThreadContext& t) override;

  /// Seed the global ready queue with not-yet-running threads.
  void enqueue(cpu::ThreadContext& t) { ready_.push_back(&t); }

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

 private:
  SchedulerConfig cfg_;
  sim::Rng rng_;
  sim::Addr area_;  ///< [lock][queue words...] in shared memory
  std::deque<cpu::ThreadContext*> ready_;
  std::vector<bool> switch_flag_;
  std::uint64_t migrations_ = 0;
};

class DsScheduler final : public cpu::SchedulerIf {
 public:
  DsScheduler(MemoryLayout& layout, mem::DirectMemoryIf& dm, unsigned num_cpus,
              SchedulerConfig cfg);

  [[nodiscard]] sim::Cycle tick_period() const override { return cfg_.tick_period; }
  cpu::ThreadProgram tick(unsigned cpu, cpu::ThreadContext& current) override;
  [[nodiscard]] bool should_switch(unsigned cpu) override { (void)cpu; return false; }
  void deschedule(unsigned cpu, cpu::ThreadContext& t) override { enqueue(t); (void)cpu; }
  cpu::ThreadContext* next_thread(unsigned cpu) override;
  void thread_finished(unsigned cpu, cpu::ThreadContext& t) override;

  /// Queue a thread on its home CPU's local run queue.
  void enqueue(cpu::ThreadContext& t) { ready_[t.home_cpu].push_back(&t); }

 private:
  SchedulerConfig cfg_;
  std::vector<sim::Addr> areas_;  ///< per-CPU [lock][queue words...]
  std::vector<std::deque<cpu::ThreadContext*>> ready_;
};

}  // namespace ccnoc::os
