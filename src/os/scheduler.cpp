#include "os/scheduler.hpp"

namespace ccnoc::os {

using cpu::ThreadContext;
using cpu::ThreadOp;
using cpu::ThreadProgram;

namespace {

/// The memory traffic of one scheduler entry: take the run-queue lock,
/// read-modify-write the queue words, release. Shared by both policies;
/// only the location of \p area differs (global vs per-CPU bank).
ThreadProgram scheduler_entry_program(sim::Addr area, ThreadContext& ctx,
                                      unsigned queue_words, sim::Cycle backoff) {
  // Acquire the run-queue lock (test-and-test-and-set).
  while (true) {
    co_yield ThreadOp::atomic_swap(area, 1);
    if (ctx.last_load_value == 0) break;
    do {
      co_yield ThreadOp::compute(backoff);
      co_yield ThreadOp::load(area);
    } while (ctx.last_load_value != 0);
  }
  // Walk the queue: read and update each word (list pointers, counters).
  for (unsigned i = 1; i <= queue_words; ++i) {
    co_yield ThreadOp::load(area + 4 * i);
    co_yield ThreadOp::store(area + 4 * i, ctx.last_load_value + 1);
  }
  co_yield ThreadOp::store(area, 0);  // release
}

}  // namespace

SmpScheduler::SmpScheduler(MemoryLayout& layout, mem::DirectMemoryIf& dm,
                           unsigned num_cpus, SchedulerConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), switch_flag_(num_cpus, false) {
  area_ = layout.alloc_kernel(0, 4 * (cfg.queue_words + 1));
  for (unsigned i = 0; i <= cfg.queue_words; ++i) dm.write_u32(area_ + 4 * i, 0);
}

ThreadProgram SmpScheduler::tick(unsigned cpu, ThreadContext& current) {
  // Functional decision, made up front; the returned program models the
  // memory traffic of the queue manipulation. The descheduled thread is
  // requeued later, via deschedule(), once its write buffer drained.
  if (!ready_.empty() && rng_.next_bool(cfg_.migrate_prob)) {
    switch_flag_[cpu] = true;
    ++migrations_;
  }
  return scheduler_entry_program(area_, current, cfg_.queue_words, cfg_.spin_backoff);
}

void SmpScheduler::deschedule(unsigned cpu, ThreadContext& t) {
  (void)cpu;
  ready_.push_back(&t);
}

bool SmpScheduler::should_switch(unsigned cpu) {
  bool f = switch_flag_[cpu];
  switch_flag_[cpu] = false;
  return f;
}

ThreadContext* SmpScheduler::next_thread(unsigned cpu) {
  (void)cpu;
  if (ready_.empty()) return nullptr;
  ThreadContext* t = ready_.front();
  ready_.pop_front();
  return t;
}

void SmpScheduler::thread_finished(unsigned cpu, ThreadContext& t) {
  (void)cpu;
  (void)t;  // terminated threads are not requeued
}

DsScheduler::DsScheduler(MemoryLayout& layout, mem::DirectMemoryIf& dm,
                         unsigned num_cpus, SchedulerConfig cfg)
    : cfg_(cfg), ready_(num_cpus) {
  areas_.reserve(num_cpus);
  for (unsigned c = 0; c < num_cpus; ++c) {
    sim::Addr a = layout.alloc_kernel(c, 4 * (cfg.queue_words + 1));
    for (unsigned i = 0; i <= cfg.queue_words; ++i) dm.write_u32(a + 4 * i, 0);
    areas_.push_back(a);
  }
}

ThreadProgram DsScheduler::tick(unsigned cpu, ThreadContext& current) {
  return scheduler_entry_program(areas_[cpu], current, cfg_.queue_words,
                                 cfg_.spin_backoff);
}

ThreadContext* DsScheduler::next_thread(unsigned cpu) {
  auto& q = ready_[cpu];
  if (q.empty()) return nullptr;
  ThreadContext* t = q.front();
  q.pop_front();
  return t;
}

void DsScheduler::thread_finished(unsigned cpu, ThreadContext& t) {
  (void)cpu;
  (void)t;
}

}  // namespace ccnoc::os
