#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic xorshift64* generator. The simulator never uses
/// std::random_device or global state: every random decision flows from the
/// platform seed, so runs replay bit-identically.
///
/// Seeding contract (relied on by the fuzzer's replay/minimize loop and by
/// tests/sim/rng_test.cpp's golden constants — changing any of this is a
/// breaking change to every recorded seed):
///  - Rng(s) and Rng(s') produce identical streams iff s == s', with the
///    single exception that seed 0 aliases seed 1 (xorshift has no zero
///    state; the constructor substitutes 1).
///  - The stream is a pure function of the seed: no global state, no
///    entropy, no time. The same seed replays the same stream on every
///    platform and build.
///  - next_below/next_double/next_bool each consume exactly one next_u64
///    draw — except next_below(0), which returns 0 without drawing — so
///    consumers that mix draw kinds stay in lockstep across replays.
///  - The algorithm is frozen: xorshift64* with shifts 12/25/27 and
///    multiplier 0x2545f4914f6cdd1d (Vigna 2016).

namespace ccnoc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform value in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound ? next_u64() % bound : 0;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return double(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace ccnoc::sim
