#include "sim/profile.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

namespace ccnoc::sim {

const char* to_string(SharingPattern p) {
  switch (p) {
    case SharingPattern::kUntouched: return "untouched";
    case SharingPattern::kCode: return "code";
    case SharingPattern::kPrivate: return "private";
    case SharingPattern::kReadShared: return "read_shared";
    case SharingPattern::kFalseShared: return "false_shared";
    case SharingPattern::kMigratory: return "migratory";
    case SharingPattern::kProducerConsumer: return "producer_consumer";
    case SharingPattern::kReadWriteShared: return "read_write_shared";
  }
  return "?";
}

const char* to_string(AccessClass c) {
  switch (c) {
    case AccessClass::kLoad: return "load";
    case AccessClass::kStore: return "store";
    case AccessClass::kAtomic: return "atomic";
    case AccessClass::kIfetch: return "ifetch";
  }
  return "?";
}

unsigned ProfileSnapshot::Line::num_readers() const {
  return unsigned(std::popcount(readers_mask));
}
unsigned ProfileSnapshot::Line::num_writers() const {
  return unsigned(std::popcount(writers_mask));
}

std::vector<const ProfileSnapshot::Line*> ProfileSnapshot::hottest(
    std::size_t n) const {
  std::vector<const Line*> out;
  out.reserve(lines.size());
  for (const Line& l : lines) out.push_back(&l);
  std::sort(out.begin(), out.end(), [](const Line* a, const Line* b) {
    if (a->traffic_bytes != b->traffic_bytes)
      return a->traffic_bytes > b->traffic_bytes;
    return a->block < b->block;
  });
  if (n && out.size() > n) out.resize(n);
  return out;
}

std::vector<const ProfileSnapshot::Line*> ProfileSnapshot::top_false_shared(
    std::size_t n) const {
  std::vector<const Line*> out;
  for (const Line& l : lines)
    if (l.pattern == SharingPattern::kFalseShared) out.push_back(&l);
  std::sort(out.begin(), out.end(), [](const Line* a, const Line* b) {
    if (a->traffic_bytes != b->traffic_bytes)
      return a->traffic_bytes > b->traffic_bytes;
    return a->block < b->block;
  });
  if (n && out.size() > n) out.resize(n);
  return out;
}

const ProfileSnapshot::Line* ProfileSnapshot::find(Addr block) const {
  for (const Line& l : lines)
    if (l.block == block) return &l;
  return nullptr;
}

void Profiler::set_block_bytes(unsigned bb) {
  CCNOC_ASSERT(bb >= kWordBytes && (bb & (bb - 1)) == 0 &&
                   bb / kWordBytes <= kMaxWordSlots,
               "profiler block size must be a power of two, at most 64 B");
  block_bytes_ = bb;
  word_slots_ = bb / kWordBytes;
}

void Profiler::touch_epoch(LineState& l, Cycle now) const {
  Cycle e = now / epoch_;
  if (l.cur_epoch == e) return;
  fold_epoch(l);
  l.cur_epoch = e;
}

void Profiler::fold_epoch(LineState& l) {
  if (l.cur_epoch == ~Cycle{0}) return;
  std::uint64_t touched = l.epoch_readers | l.epoch_writers;
  if (touched != 0) {
    ++l.epochs_active;
    if (std::popcount(touched) > 1) {
      ++l.epochs_shared;
      if (l.epoch_writers != 0) ++l.epochs_rw_shared;
    }
  }
  l.epoch_readers = 0;
  l.epoch_writers = 0;
}

// --- sharded recording -------------------------------------------------

void Profiler::record(NodeId node, Op op) {
  Shard& sh = shards_[node % shards_.size()];
  if (sh.node_seq.size() <= node)
    sh.node_seq.resize(std::size_t(node) + 1, 0);
  op.node = node;
  op.seq = sh.node_seq[node]++;
  sh.ops.push_back(op);
}

void Profiler::begin_sharded(unsigned domains) {
  CCNOC_ASSERT(!sharded_, "profiler sharding re-entered without finalize");
  if (!on() || domains <= 1) return;
  shards_.assign(domains, Shard{});
  for (Shard& sh : shards_) sh.link_flits.assign(links_.size(), 0);
  sharded_ = true;
}

void Profiler::finalize_sharded() {
  if (!sharded_) return;
  sharded_ = false;
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.ops.size();
  std::vector<Op> merged;
  merged.reserve(total);
  for (Shard& sh : shards_) {
    merged.insert(merged.end(), sh.ops.begin(), sh.ops.end());
    sh.ops.clear();
  }
  // (cycle, node, seq) is a total order over the merged records — one
  // worker owns each node, so per-node seq breaks every remaining tie —
  // and it is the canonical serial order: cross-node same-cycle folds are
  // commutative, so replay lands on the exact serial profiler state.
  std::sort(merged.begin(), merged.end(), [](const Op& a, const Op& b) {
    return std::tie(a.cycle, a.node, a.seq) < std::tie(b.cycle, b.node, b.seq);
  });
  for (const Op& op : merged) {
    switch (op.k) {
      case Op::K::kAccess:
        apply_access(op.cycle, op.node, op.addr, op.x, op.cls);
        break;
      case Op::K::kMiss:
        apply_miss(op.cycle, op.node, op.addr);
        break;
      case Op::K::kInvalRecv:
        apply_invalidate_recv(op.cycle, op.node, op.addr, op.flag);
        break;
      case Op::K::kUpdateRecv:
        apply_update_recv(op.cycle, op.addr);
        break;
      case Op::K::kWbufStall:
        apply_wbuf_stall(op.cycle, op.addr);
        break;
      case Op::K::kFanout:
        apply_fanout(op.cycle, op.addr, op.x);
        break;
      case Op::K::kDirWidth:
        apply_dir_width(op.addr, op.x);
        break;
      case Op::K::kBankEnq:
        apply_bank_enqueue(op.cycle, op.x, op.addr, std::size_t(op.a));
        break;
      case Op::K::kBankDeq:
        apply_bank_dequeue(op.cycle, op.x, op.addr, std::size_t(op.a));
        break;
      case Op::K::kStall:
        apply_stall(op.cycle, op.addr, Cycle(op.a), op.cls);
        break;
      case Op::K::kTraffic:
        apply_traffic(op.addr, op.x);
        break;
    }
  }
  for (const Shard& sh : shards_)
    for (std::size_t i = 0; i < sh.link_flits.size(); ++i)
      links_[i].flits += sh.link_flits[i];
  shards_.clear();
  shards_.shrink_to_fit();
}

// --- hook slow paths ---------------------------------------------------

void Profiler::access_slow(Cycle now, unsigned cpu, Addr addr, unsigned size,
                           AccessClass cls) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kAccess;
    op.cycle = now;
    op.addr = addr;
    op.x = size;
    op.cls = cls;
    record(NodeId(cpu), op);
    return;
  }
  apply_access(now, cpu, addr, size, cls);
}

void Profiler::apply_access(Cycle now, unsigned cpu, Addr addr, unsigned size,
                            AccessClass cls) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  const std::uint64_t bit = 1ull << (cpu & 63);
  if (cls == AccessClass::kIfetch) {
    ++l.ifetches;
    return;  // code lines never join the data-sharing masks
  }
  const unsigned off = unsigned(addr & (block_bytes_ - 1));
  unsigned w0 = off / kWordBytes;
  unsigned w1 = size ? (off + size - 1) / kWordBytes : w0;
  if (w1 >= word_slots_) w1 = word_slots_ - 1;
  const bool reads = cls != AccessClass::kStore;
  const bool writes = cls != AccessClass::kLoad;
  if (reads) {
    l.readers_mask |= bit;
    l.epoch_readers |= bit;
    for (unsigned w = w0; w <= w1; ++w) l.word_readers[w] |= bit;
  }
  if (writes) {
    l.writers_mask |= bit;
    l.epoch_writers |= bit;
    for (unsigned w = w0; w <= w1; ++w) l.word_writers[w] |= bit;
  }
  switch (cls) {
    case AccessClass::kLoad: ++l.reads; break;
    case AccessClass::kStore: ++l.writes; break;
    case AccessClass::kAtomic: ++l.atomics; break;
    case AccessClass::kIfetch: break;
  }
}

void Profiler::miss_slow(Cycle now, unsigned cpu, Addr addr) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kMiss;
    op.cycle = now;
    op.addr = addr;
    record(NodeId(cpu), op);
    return;
  }
  apply_miss(now, cpu, addr);
}

void Profiler::apply_miss(Cycle now, unsigned cpu, Addr addr) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  ++l.misses;
  const std::uint64_t bit = 1ull << (cpu & 63);
  if (l.inval_pending & bit) {
    // This CPU held the line, was invalidated off it, and is now fetching
    // it again: one invalidation ping-pong.
    ++l.ping_pongs;
    l.inval_pending &= ~bit;
  }
}

void Profiler::invalidate_recv_slow(Cycle now, unsigned cpu, Addr addr,
                                    bool had_copy) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kInvalRecv;
    op.cycle = now;
    op.addr = addr;
    op.flag = had_copy;
    record(NodeId(cpu), op);
    return;
  }
  apply_invalidate_recv(now, cpu, addr, had_copy);
}

void Profiler::apply_invalidate_recv(Cycle now, unsigned cpu, Addr addr,
                                     bool had_copy) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  ++l.invalidations;
  if (had_copy) l.inval_pending |= 1ull << (cpu & 63);
}

void Profiler::update_recv_slow(Cycle now, unsigned cpu, Addr addr) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kUpdateRecv;
    op.cycle = now;
    op.addr = addr;
    record(NodeId(cpu), op);
    return;
  }
  apply_update_recv(now, addr);
}

void Profiler::apply_update_recv(Cycle now, Addr addr) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  ++l.updates;
}

void Profiler::wbuf_stall_slow(Cycle now, unsigned cpu, Addr addr) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kWbufStall;
    op.cycle = now;
    op.addr = addr;
    record(NodeId(cpu), op);
    return;
  }
  apply_wbuf_stall(now, addr);
}

void Profiler::apply_wbuf_stall(Cycle now, Addr addr) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  ++l.wbuf_stalls;
}

void Profiler::fanout_slow(Cycle now, NodeId node, Addr addr,
                           unsigned targets) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kFanout;
    op.cycle = now;
    op.addr = addr;
    op.x = targets;
    record(node, op);
    return;
  }
  apply_fanout(now, addr, targets);
}

void Profiler::apply_fanout(Cycle now, Addr addr, unsigned targets) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  ++l.fanout_rounds;
  l.fanout_total += targets;
  l.fanout_max = std::max<std::uint64_t>(l.fanout_max, targets);
}

void Profiler::dir_width_slow(NodeId node, Addr addr, unsigned sharers) {
  if (sharded_) {
    // The directory has no clock; cycle-0 records sort ahead of everything,
    // which is sound because the only state touched is a running maximum.
    Op op;
    op.k = Op::K::kDirWidth;
    op.addr = addr;
    op.x = sharers;
    record(node, op);
    return;
  }
  apply_dir_width(addr, sharers);
}

void Profiler::apply_dir_width(Addr addr, unsigned sharers) {
  LineState& l = line(addr);
  l.dir_max_sharers = std::max(l.dir_max_sharers, sharers);
}

unsigned Profiler::register_bank(std::string name, NodeId node, unsigned level) {
  if (!on()) return kInvalidId;
  banks_.push_back(BankState{});
  banks_.back().name = std::move(name);
  banks_.back().level = level;
  bank_nodes_.push_back(node);
  return unsigned(banks_.size() - 1);
}

void Profiler::bank_enqueue_slow(Cycle now, unsigned bank, Addr addr,
                                 std::size_t depth) {
  if (bank >= banks_.size()) return;
  if (sharded_) {
    Op op;
    op.k = Op::K::kBankEnq;
    op.cycle = now;
    op.addr = addr;
    op.a = depth;
    op.x = bank;
    record(bank_nodes_[bank], op);
    return;
  }
  apply_bank_enqueue(now, bank, addr, depth);
}

void Profiler::apply_bank_enqueue(Cycle now, unsigned bank, Addr addr,
                                  std::size_t depth) {
  BankState& b = banks_[bank];
  // Close the previous constant-depth interval: the queue held depth-1
  // requests from last_change until now (this request just joined).
  b.occupancy_integral += std::uint64_t(depth - 1) * (now - b.last_change);
  b.last_change = now;
  ++b.conflicts;
  b.max_depth = std::max<std::uint64_t>(b.max_depth, depth);
  std::size_t e = std::size_t(now / epoch_);
  if (b.max_depth_per_epoch.size() <= e) b.max_depth_per_epoch.resize(e + 1);
  b.max_depth_per_epoch[e] =
      std::max<std::uint64_t>(b.max_depth_per_epoch[e], depth);
  Addr blk = block_of(addr);
  b.arrivals[blk].push_back(now);
  LineState& l = lines_[blk];
  touch_epoch(l, now);
  ++l.bank_waits;
}

void Profiler::bank_dequeue_slow(Cycle now, unsigned bank, Addr addr,
                                 std::size_t depth) {
  if (bank >= banks_.size()) return;
  if (sharded_) {
    Op op;
    op.k = Op::K::kBankDeq;
    op.cycle = now;
    op.addr = addr;
    op.a = depth;
    op.x = bank;
    record(bank_nodes_[bank], op);
    return;
  }
  apply_bank_dequeue(now, bank, addr, depth);
}

void Profiler::apply_bank_dequeue(Cycle now, unsigned bank, Addr addr,
                                  std::size_t depth) {
  BankState& b = banks_[bank];
  b.occupancy_integral += std::uint64_t(depth + 1) * (now - b.last_change);
  b.last_change = now;
  std::size_t e = std::size_t(now / epoch_);
  if (b.max_depth_per_epoch.size() <= e) b.max_depth_per_epoch.resize(e + 1);
  b.max_depth_per_epoch[e] =
      std::max<std::uint64_t>(b.max_depth_per_epoch[e], depth);
  Addr blk = block_of(addr);
  auto it = b.arrivals.find(blk);
  if (it == b.arrivals.end() || it->second.empty()) return;
  // Per-block transactions drain in arrival order, so the departing
  // request is the oldest arrival on this block.
  Cycle wait = now - it->second.front();
  it->second.pop_front();
  if (it->second.empty()) b.arrivals.erase(it);
  b.wait_cycles += wait;
  LineState& l = lines_[blk];
  touch_epoch(l, now);
  l.bank_wait_cycles += wait;
}

void Profiler::stall_slow(Cycle now, unsigned cpu, Addr addr, Cycle cycles,
                          AccessClass cls) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kStall;
    op.cycle = now;
    op.addr = addr;
    op.a = cycles;
    op.cls = cls;
    record(NodeId(cpu), op);
    return;
  }
  apply_stall(now, addr, cycles, cls);
}

void Profiler::apply_stall(Cycle now, Addr addr, Cycle cycles,
                           AccessClass cls) {
  LineState& l = line(addr);
  touch_epoch(l, now);
  l.stall_cycles += cycles;
  stalls_by_class_[unsigned(cls) & 3] += cycles;
}

void Profiler::traffic_slow(Cycle now, NodeId src, Addr addr, unsigned bytes) {
  if (sharded_) {
    Op op;
    op.k = Op::K::kTraffic;
    op.cycle = now;
    op.addr = addr;
    op.x = bytes;
    record(src, op);
    return;
  }
  apply_traffic(addr, bytes);
}

void Profiler::apply_traffic(Addr addr, unsigned bytes) {
  LineState& l = line(addr);
  l.traffic_bytes += bytes;
  ++l.packets;
  total_traffic_bytes_ += bytes;
  ++total_packets_;
}

unsigned Profiler::register_link(std::string name) {
  if (!on()) return kInvalidId;
  links_.push_back(LinkState{std::move(name), 0});
  return unsigned(links_.size() - 1);
}

void Profiler::link_flits_slow(unsigned link, std::uint64_t flits) {
  if (link >= links_.size()) return;
  if (sharded_) {
    // Pure per-link sums: accumulate in the executing domain's shard and
    // fold elementwise at finalize — no record stream needed.
    shards_[link % shards_.size()].link_flits[link] += flits;
    return;
  }
  links_[link].flits += flits;
}

SharingPattern Profiler::classify(const LineState& l) const {
  const bool data = (l.reads | l.writes | l.atomics) != 0;
  if (!data) {
    return l.ifetches ? SharingPattern::kCode : SharingPattern::kUntouched;
  }
  const std::uint64_t cpus = l.readers_mask | l.writers_mask;
  if (std::popcount(cpus) <= 1) return SharingPattern::kPrivate;
  if (l.writers_mask == 0) return SharingPattern::kReadShared;
  bool word_conflict = false;
  for (unsigned w = 0; w < word_slots_; ++w) {
    if (l.word_writers[w] != 0 &&
        std::popcount(l.word_readers[w] | l.word_writers[w]) >= 2) {
      word_conflict = true;
      break;
    }
  }
  if (!word_conflict) return SharingPattern::kFalseShared;
  if ((l.readers_mask & l.writers_mask) == 0)
    return SharingPattern::kProducerConsumer;
  if (l.readers_mask == l.writers_mask) return SharingPattern::kMigratory;
  return SharingPattern::kReadWriteShared;
}

ProfileSnapshot Profiler::snapshot(std::string label) const {
  CCNOC_ASSERT(!sharded_,
               "snapshot while sharded: finalize_sharded() must run first");
  ProfileSnapshot s;
  s.label = std::move(label);
  s.block_bytes = block_bytes_;
  s.epoch_cycles = epoch_;
  s.total_traffic_bytes = total_traffic_bytes_;
  s.total_packets = total_packets_;
  s.stalls_by_class = stalls_by_class_;
  s.lines.reserve(lines_.size());
  std::uint64_t line_bytes = 0, line_packets = 0;
  for (const auto& [block, state] : lines_) {
    LineState l = state;   // fold the still-open epoch on a copy
    fold_epoch(l);
    ProfileSnapshot::Line out;
    out.block = block;
    out.pattern = classify(l);
    out.reads = l.reads;
    out.writes = l.writes;
    out.atomics = l.atomics;
    out.ifetches = l.ifetches;
    out.readers_mask = l.readers_mask;
    out.writers_mask = l.writers_mask;
    out.misses = l.misses;
    out.invalidations = l.invalidations;
    out.updates = l.updates;
    out.ping_pongs = l.ping_pongs;
    out.fanout_rounds = l.fanout_rounds;
    out.fanout_total = l.fanout_total;
    out.fanout_max = l.fanout_max;
    out.wbuf_stalls = l.wbuf_stalls;
    out.stall_cycles = l.stall_cycles;
    out.traffic_bytes = l.traffic_bytes;
    out.packets = l.packets;
    out.bank_waits = l.bank_waits;
    out.bank_wait_cycles = l.bank_wait_cycles;
    out.epochs_active = l.epochs_active;
    out.epochs_shared = l.epochs_shared;
    out.epochs_rw_shared = l.epochs_rw_shared;
    out.dir_max_sharers = l.dir_max_sharers;
    line_bytes += out.traffic_bytes;
    line_packets += out.packets;
    s.lines.push_back(out);
  }
  // Per-line traffic attribution must reconcile exactly with the totals in
  // both engines: every accepted packet lands on exactly one block.
  CCNOC_ASSERT(line_bytes == total_traffic_bytes_ &&
                   line_packets == total_packets_,
               "per-line traffic must sum to the NoC totals");
  std::sort(s.lines.begin(), s.lines.end(),
            [](const ProfileSnapshot::Line& a, const ProfileSnapshot::Line& b) {
              return a.block < b.block;
            });
  for (const ProfileSnapshot::Line& l : s.lines) {
    auto& p = s.patterns[unsigned(l.pattern)];
    ++p.lines;
    p.accesses += l.reads + l.writes + l.atomics + l.ifetches;
    p.traffic_bytes += l.traffic_bytes;
    p.stall_cycles += l.stall_cycles;
    p.invalidations += l.invalidations;
    p.ping_pongs += l.ping_pongs;
    s.total_stall_cycles += l.stall_cycles;
  }
  s.banks.reserve(banks_.size());
  for (const BankState& b : banks_) {
    ProfileSnapshot::Bank out;
    out.name = b.name;
    out.level = b.level;
    out.conflicts = b.conflicts;
    out.wait_cycles = b.wait_cycles;
    out.occupancy_integral = b.occupancy_integral;
    out.max_depth = b.max_depth;
    out.max_depth_per_epoch = b.max_depth_per_epoch;
    s.banks.push_back(std::move(out));
  }
  s.links.reserve(links_.size());
  for (const LinkState& lk : links_)
    s.links.push_back(ProfileSnapshot::Link{lk.name, lk.flits});
  return s;
}

}  // namespace ccnoc::sim
