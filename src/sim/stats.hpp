#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

/// \file stats.hpp
/// Lightweight statistics primitives: named counters, scalar samples and
/// fixed-bucket histograms, grouped in a registry so a whole platform's
/// metrics can be dumped or queried by name after a run.

namespace ccnoc::sim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming scalar statistic (count / sum / min / max / mean).
class Sample {
 public:
  void add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = Sample{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Histogram over integral values with unit-width buckets up to a cap;
/// overflow values are accumulated in the last bucket. At least one bucket
/// always exists (a zero-bucket histogram would make add() index out of
/// bounds), so every value degenerates into the overflow bucket at size 1.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 64) : buckets_(buckets == 0 ? 1 : buckets, 0) {}

  void add(std::uint64_t v) {
    ++total_;
    sum_ += v;
    std::size_t b = std::min<std::uint64_t>(v, buckets_.size() - 1);
    ++buckets_[b];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double mean() const { return total_ ? double(sum_) / double(total_) : 0.0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Name → statistic registry. Objects are created on first use; references
/// remain stable for the registry's lifetime (node-based map), so components
/// resolve their statistics ONCE at construction and keep typed handles
/// (`Counter*` / `Sample*` / `Histogram*`) instead of paying a string
/// concatenation plus map lookup on every simulated event.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Sample& sample(const std::string& name) { return samples_[name]; }

  /// \p buckets: bucket count on first use; 0 means "whatever width the
  /// histogram has" (default 64 on creation). Two call sites asking for the
  /// same name with different explicit widths is a bug — the second caller
  /// would silently get wrong-width buckets — and throws.
  Histogram& histogram(const std::string& name, std::size_t buckets = 0) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{buckets == 0 ? 64 : buckets}).first;
    } else {
      CCNOC_ASSERT(buckets == 0 || buckets == it->second.num_buckets(),
                   "histogram '" + name + "' re-requested with a different bucket count");
    }
    return it->second;
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Sample>& samples() const { return samples_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Human-readable dump of every statistic, one per line.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Sample> samples_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ccnoc::sim
