#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

/// \file stats.hpp
/// Lightweight statistics primitives: named counters, scalar samples and
/// fixed-bucket histograms, grouped in a registry so a whole platform's
/// metrics can be dumped or queried by name after a run.

namespace ccnoc::sim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming scalar statistic (count / sum / min / max / mean) with a cheap
/// bucketed quantile estimate: every value also lands in one of 64
/// power-of-two buckets, so percentile() answers "p50/p90/p99 of millions
/// of cycle latencies" in O(1) memory with at most 2x relative error.
class Sample {
 public:
  static constexpr std::size_t kQuantileBuckets = 64;

  void add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++buckets_[bucket_of(v)];
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  /// Smallest value added so far; 0.0 (not +inf) while the sample is empty.
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  /// Largest value added so far; 0.0 (not -inf) while the sample is empty.
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Estimated p-quantile (p in [0,1]) from the power-of-two buckets: the
  /// upper edge of the bucket where the cumulative count first reaches
  /// ceil(p * count), clamped to the exact observed [min, max]. Designed
  /// for non-negative measurements (cycles, depths); values below 1 share
  /// bucket 0. Returns 0.0 while empty.
  [[nodiscard]] double percentile(double p) const {
    if (count_ == 0) return 0.0;
    double want = std::max(1.0, std::ceil(p * double(count_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kQuantileBuckets; ++b) {
      seen += buckets_[b];
      if (double(seen) >= want) {
        double edge = b == 0 ? 1.0 : double(std::uint64_t(1) << b);
        return std::min(std::max(edge, min()), max());
      }
    }
    return max();
  }

  void reset() { *this = Sample{}; }

  /// Fold \p other into this sample. Exact for integer-valued samples
  /// (cycle latencies, queue depths): integral doubles add without rounding
  /// below 2^53, so a set of per-node shards folded in node order yields
  /// byte-identical count/sum/min/max/buckets to one chronologically filled
  /// sample — the property the parallel core's sharded NoC statistics
  /// depend on (see noc/network.hpp).
  void merge(const Sample& other) {
    if (other.count_ == 0) return;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t b = 0; b < kQuantileBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

 private:
  /// Bucket b>0 holds values in [2^(b-1), 2^b); bucket 0 holds v < 1.
  static std::size_t bucket_of(double v) {
    if (!(v >= 1.0)) return 0;  // also catches NaN
    int e = std::ilogb(v);
    return std::min<std::size_t>(std::size_t(e) + 1, kQuantileBuckets - 1);
  }

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
  std::array<std::uint64_t, kQuantileBuckets> buckets_{};
};

/// Histogram over integral values with unit-width buckets up to a cap;
/// overflow values still accumulate in the last bucket (so totals and the
/// per-bucket series keep their historical meaning) but are additionally
/// counted explicitly, so a saturated last bucket is distinguishable from a
/// real one. At least one bucket always exists (a zero-bucket histogram
/// would make add() index out of bounds), so every value degenerates into
/// the overflow bucket at size 1.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 64) : buckets_(buckets == 0 ? 1 : buckets, 0) {}

  void add(std::uint64_t v) {
    ++total_;
    sum_ += v;
    if (v >= buckets_.size()) [[unlikely]] ++overflow_;
    std::size_t b = std::min<std::uint64_t>(v, buckets_.size() - 1);
    ++buckets_[b];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const { return total_ ? double(sum_) / double(total_) : 0.0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  /// Values that exceeded the bucket range and were folded into the last
  /// bucket. bucket(num_buckets()-1) - overflow() is the last bucket's
  /// genuine (in-range) population.
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Name → statistic registry. Objects are created on first use; references
/// remain stable for the registry's lifetime (node-based map), so components
/// resolve their statistics ONCE at construction and keep typed handles
/// (`Counter*` / `Sample*` / `Histogram*`) instead of paying a string
/// concatenation plus map lookup on every simulated event.
class StatsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Sample& sample(const std::string& name) { return samples_[name]; }

  /// \p buckets: bucket count on first use; 0 means "whatever width the
  /// histogram has" (default 64 on creation). Two call sites asking for the
  /// same name with different explicit widths is a bug — the second caller
  /// would silently get wrong-width buckets — and throws.
  Histogram& histogram(const std::string& name, std::size_t buckets = 0) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{buckets == 0 ? 64 : buckets}).first;
    } else {
      CCNOC_ASSERT(buckets == 0 || buckets == it->second.num_buckets(),
                   "histogram '" + name + "' re-requested with a different bucket count");
    }
    return it->second;
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Sample>& samples() const { return samples_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Human-readable dump of every statistic, one per line.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Sample> samples_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ccnoc::sim
