#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "sim/profile.hpp"

namespace ccnoc::sim {

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void hex_block(std::ostringstream& os, Addr block) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"0x%llx\"",
                static_cast<unsigned long long>(block));
  os << buf;
}

void emit_line(std::ostringstream& os, const ProfileSnapshot::Line& l) {
  os << "{\"block\":";
  hex_block(os, l.block);
  os << ",\"pattern\":\"" << to_string(l.pattern) << '"'
     << ",\"readers\":" << l.num_readers()
     << ",\"writers\":" << l.num_writers()
     << ",\"reads\":" << l.reads << ",\"writes\":" << l.writes
     << ",\"atomics\":" << l.atomics << ",\"ifetches\":" << l.ifetches
     << ",\"misses\":" << l.misses
     << ",\"invalidations\":" << l.invalidations
     << ",\"updates\":" << l.updates << ",\"ping_pongs\":" << l.ping_pongs
     << ",\"fanout_rounds\":" << l.fanout_rounds
     << ",\"fanout_total\":" << l.fanout_total
     << ",\"fanout_max\":" << l.fanout_max
     << ",\"dir_max_sharers\":" << l.dir_max_sharers
     << ",\"wbuf_stalls\":" << l.wbuf_stalls
     << ",\"stall_cycles\":" << l.stall_cycles
     << ",\"traffic_bytes\":" << l.traffic_bytes
     << ",\"packets\":" << l.packets << ",\"bank_waits\":" << l.bank_waits
     << ",\"bank_wait_cycles\":" << l.bank_wait_cycles
     << ",\"epochs_active\":" << l.epochs_active
     << ",\"epochs_shared\":" << l.epochs_shared
     << ",\"epochs_rw_shared\":" << l.epochs_rw_shared << '}';
}

// ---- HTML helpers ------------------------------------------------------

void html_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '&': os << "&amp;"; break;
      case '"': os << "&quot;"; break;
      default: os << c;
    }
  }
}

// White → amber → red ramp on a log scale, so one megahot line doesn't
// wash out the rest of the address space.
void heat_color(std::ostringstream& os, std::uint64_t v, std::uint64_t max) {
  double h = 0.0;
  if (max > 0 && v > 0)
    h = std::log1p(double(v)) / std::log1p(double(max));
  int r = 255;
  int g = 245 - int(h * 160.0);
  int b = 235 - int(h * 235.0);
  char buf[48];
  std::snprintf(buf, sizeof buf, "rgb(%d,%d,%d)", r, g, b);
  os << buf;
}

const char* pattern_css(SharingPattern p) {
  switch (p) {
    case SharingPattern::kFalseShared: return "fs";
    case SharingPattern::kReadWriteShared: return "rw";
    case SharingPattern::kMigratory: return "mg";
    case SharingPattern::kProducerConsumer: return "pc";
    default: return "ok";
  }
}

void emit_heatmap(std::ostringstream& os, const ProfileSnapshot& s,
                  const std::vector<Addr>& blocks) {
  std::uint64_t max_traffic = 0;
  std::map<Addr, const ProfileSnapshot::Line*> by_block;
  for (const auto& l : s.lines) {
    by_block[l.block] = &l;
    max_traffic = std::max(max_traffic, l.traffic_bytes);
  }
  os << "<div class=heatrow><span class=heatlabel>";
  html_escape(os, s.label);
  os << "</span><div class=heat>";
  constexpr std::size_t kMaxCells = 2048;
  std::size_t shown = 0;
  for (Addr blk : blocks) {
    if (shown++ >= kMaxCells) break;
    auto it = by_block.find(blk);
    const ProfileSnapshot::Line* l =
        it == by_block.end() ? nullptr : it->second;
    os << "<i style=\"background:";
    heat_color(os, l ? l->traffic_bytes : 0, max_traffic);
    os << "\" title=\"";
    char buf[64];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(blk));
    os << buf;
    if (l) {
      os << " " << to_string(l->pattern) << " traffic=" << l->traffic_bytes
         << "B inv=" << l->invalidations << " stall=" << l->stall_cycles;
    }
    os << "\"></i>";
  }
  os << "</div></div>\n";
  if (blocks.size() > kMaxCells) {
    os << "<p class=note>heatmap truncated to first " << kMaxCells << " of "
       << blocks.size() << " lines</p>\n";
  }
}

void emit_pattern_table(std::ostringstream& os, const ProfileSnapshot& a,
                        const ProfileSnapshot* b) {
  os << "<table><tr><th>pattern</th><th>lines</th><th>accesses</th>"
        "<th>traffic B</th><th>stall cyc</th><th>invals</th>"
        "<th>ping-pongs</th>";
  if (b)
    os << "<th>lines</th><th>accesses</th><th>traffic B</th>"
          "<th>stall cyc</th><th>invals</th><th>ping-pongs</th>";
  os << "</tr>\n";
  if (b) {
    os << "<tr><td></td><td colspan=6 class=grp>";
    html_escape(os, a.label);
    os << "</td><td colspan=6 class=grp>";
    html_escape(os, b->label);
    os << "</td></tr>\n";
  }
  for (unsigned p = 0; p < kNumSharingPatterns; ++p) {
    const auto& pa = a.patterns[p];
    const ProfileSnapshot::PatternTotal* pb = b ? &b->patterns[p] : nullptr;
    if (pa.lines == 0 && (!pb || pb->lines == 0)) continue;
    os << "<tr class=" << pattern_css(SharingPattern(p)) << "><td>"
       << to_string(SharingPattern(p)) << "</td><td>" << pa.lines
       << "</td><td>" << pa.accesses << "</td><td>" << pa.traffic_bytes
       << "</td><td>" << pa.stall_cycles << "</td><td>" << pa.invalidations
       << "</td><td>" << pa.ping_pongs << "</td>";
    if (pb) {
      os << "<td>" << pb->lines << "</td><td>" << pb->accesses << "</td><td>"
         << pb->traffic_bytes << "</td><td>" << pb->stall_cycles
         << "</td><td>" << pb->invalidations << "</td><td>" << pb->ping_pongs
         << "</td>";
    }
    os << "</tr>\n";
  }
  os << "</table>\n";
}

void emit_top_table(std::ostringstream& os, const ProfileSnapshot& s,
                    std::size_t top_n) {
  os << "<h3>Hottest lines — ";
  html_escape(os, s.label);
  os << "</h3>\n<table><tr><th>block</th><th>pattern</th><th>R/W cpus</th>"
        "<th>reads</th><th>writes</th><th>misses</th><th>invals</th>"
        "<th>ping-pongs</th><th>fan-out max</th><th>traffic B</th>"
        "<th>stall cyc</th><th>bank waits</th></tr>\n";
  for (const auto* l : s.hottest(top_n)) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(l->block));
    os << "<tr class=" << pattern_css(l->pattern) << "><td>" << buf
       << "</td><td>" << to_string(l->pattern) << "</td><td>"
       << l->num_readers() << "/" << l->num_writers() << "</td><td>"
       << l->reads << "</td><td>" << l->writes << "</td><td>" << l->misses
       << "</td><td>" << l->invalidations << "</td><td>" << l->ping_pongs
       << "</td><td>" << l->fanout_max << "</td><td>" << l->traffic_bytes
       << "</td><td>" << l->stall_cycles << "</td><td>" << l->bank_waits
       << "</td></tr>\n";
  }
  os << "</table>\n";
}

void emit_bank_table(std::ostringstream& os, const ProfileSnapshot& s) {
  if (s.banks.empty()) return;
  os << "<h3>Bank queues — ";
  html_escape(os, s.label);
  os << "</h3>\n<table><tr><th>bank</th><th>tier</th><th>conflicts</th>"
        "<th>wait cyc</th><th>&int;Q dt</th><th>max depth</th></tr>\n";
  for (const auto& b : s.banks) {
    os << "<tr><td>";
    html_escape(os, b.name);
    os << "</td><td>" << (b.level == 0 ? "mem" : "L2");
    os << "</td><td>" << b.conflicts << "</td><td>" << b.wait_cycles
       << "</td><td>" << b.occupancy_integral << "</td><td>" << b.max_depth
       << "</td></tr>\n";
  }
  os << "</table>\n";
}

}  // namespace

std::string profile_json(const ProfileSnapshot& s, std::size_t top_n) {
  std::ostringstream os;
  os << "{\n\"schema_version\":1,\n\"kind\":\"ccnoc-profile\",\n\"label\":";
  json_escape(os, s.label);
  os << ",\n\"block_bytes\":" << s.block_bytes
     << ",\n\"epoch_cycles\":" << s.epoch_cycles << ",\n\"totals\":{"
     << "\"lines\":" << s.lines.size()
     << ",\"traffic_bytes\":" << s.total_traffic_bytes
     << ",\"packets\":" << s.total_packets
     << ",\"stall_cycles\":" << s.total_stall_cycles
     << ",\"stalls_by_class\":{";
  for (unsigned c = 0; c < 4; ++c) {
    if (c) os << ',';
    os << '"' << to_string(AccessClass(c)) << "\":" << s.stalls_by_class[c];
  }
  os << "}},\n\"patterns\":[";
  bool first = true;
  for (unsigned p = 0; p < kNumSharingPatterns; ++p) {
    const auto& pt = s.patterns[p];
    if (pt.lines == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "\n{\"pattern\":\"" << to_string(SharingPattern(p))
       << "\",\"lines\":" << pt.lines << ",\"accesses\":" << pt.accesses
       << ",\"traffic_bytes\":" << pt.traffic_bytes
       << ",\"stall_cycles\":" << pt.stall_cycles
       << ",\"invalidations\":" << pt.invalidations
       << ",\"ping_pongs\":" << pt.ping_pongs << '}';
  }
  os << "],\n\"lines\":[";
  first = true;
  for (const auto* l : s.hottest(top_n)) {
    if (!first) os << ',';
    first = false;
    os << '\n';
    emit_line(os, *l);
  }
  os << "],\n\"banks\":[";
  first = true;
  for (const auto& b : s.banks) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    json_escape(os, b.name);
    os << ",\"level\":" << b.level << ",\"conflicts\":" << b.conflicts
       << ",\"wait_cycles\":" << b.wait_cycles
       << ",\"occupancy_integral\":" << b.occupancy_integral
       << ",\"max_depth\":" << b.max_depth << ",\"max_depth_per_epoch\":[";
    for (std::size_t i = 0; i < b.max_depth_per_epoch.size(); ++i) {
      if (i) os << ',';
      os << b.max_depth_per_epoch[i];
    }
    os << "]}";
  }
  os << "],\n\"links\":[";
  first = true;
  for (const auto& lk : s.links) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    json_escape(os, lk.name);
    os << ",\"flits\":" << lk.flits << '}';
  }
  os << "]\n}\n";
  return os.str();
}

bool write_profile_json(const std::string& path, const ProfileSnapshot& s,
                        std::size_t top_n) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << profile_json(s, top_n);
  return bool(f);
}

std::string profile_html(const std::string& title, const ProfileSnapshot& a,
                         const ProfileSnapshot* b, std::size_t top_n) {
  std::ostringstream os;
  os << "<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>";
  html_escape(os, title);
  os << "</title>\n<style>\n"
        "body{font:14px/1.4 sans-serif;margin:24px;color:#222}\n"
        "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
        "h3{font-size:14px;margin-bottom:6px}\n"
        "table{border-collapse:collapse;margin:8px 0}\n"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:right;"
        "font-variant-numeric:tabular-nums}\n"
        "th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}\n"
        ".grp{text-align:center;background:#fafafa;font-style:italic}\n"
        ".fs td{background:#fff0f0}.rw td{background:#fff8ee}\n"
        ".mg td{background:#f4f0ff}.pc td{background:#eef6ff}\n"
        ".heat{display:inline-block;vertical-align:middle;max-width:90%}\n"
        ".heat i{display:inline-block;width:9px;height:14px;margin:0;"
        "border-right:1px solid #fff}\n"
        ".heatrow{margin:4px 0;white-space:nowrap}\n"
        ".heatlabel{display:inline-block;width:120px;font-weight:bold}\n"
        ".note{color:#777;font-size:12px}\n"
        "</style></head><body>\n<h1>";
  html_escape(os, title);
  os << "</h1>\n<p class=note>ccnoc sharing &amp; contention profile — "
        "block "
     << a.block_bytes << " B, epoch " << a.epoch_cycles
     << " cycles. Cell color = per-line NoC traffic (log scale); row "
        "highlight marks false (red) / true (amber) read-write sharing.</p>\n";

  // One address axis shared by both snapshots so the heatmaps line up.
  std::map<Addr, bool> axis;
  for (const auto& l : a.lines) axis[l.block] = true;
  if (b)
    for (const auto& l : b->lines) axis[l.block] = true;
  std::vector<Addr> blocks;
  blocks.reserve(axis.size());
  for (const auto& [blk, _] : axis) blocks.push_back(blk);

  os << "<h2>Address-space heatmap</h2>\n";
  emit_heatmap(os, a, blocks);
  if (b) emit_heatmap(os, *b, blocks);

  os << "<h2>Sharing-pattern breakdown</h2>\n";
  emit_pattern_table(os, a, b);

  os << "<h2>Hot lines</h2>\n";
  emit_top_table(os, a, top_n);
  if (b) emit_top_table(os, *b, top_n);

  if (b) {
    os << "<h2>Per-line diff (top by traffic delta)</h2>\n"
          "<table><tr><th>block</th><th>pattern ";
    html_escape(os, a.label);
    os << "</th><th>pattern ";
    html_escape(os, b->label);
    os << "</th><th>traffic A</th><th>traffic B</th><th>&Delta;</th>"
          "<th>invals A</th><th>invals B</th><th>stall A</th>"
          "<th>stall B</th></tr>\n";
    struct Row {
      Addr block;
      const ProfileSnapshot::Line* la;
      const ProfileSnapshot::Line* lb;
      std::uint64_t delta;
    };
    std::vector<Row> rows;
    for (Addr blk : blocks) {
      const auto* la = a.find(blk);
      const auto* lb = b->find(blk);
      std::uint64_t ta = la ? la->traffic_bytes : 0;
      std::uint64_t tb = lb ? lb->traffic_bytes : 0;
      rows.push_back(Row{blk, la, lb, ta > tb ? ta - tb : tb - ta});
    }
    std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
      if (x.delta != y.delta) return x.delta > y.delta;
      return x.block < y.block;
    });
    if (rows.size() > top_n) rows.resize(top_n);
    for (const Row& r : rows) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(r.block));
      std::uint64_t ta = r.la ? r.la->traffic_bytes : 0;
      std::uint64_t tb = r.lb ? r.lb->traffic_bytes : 0;
      os << "<tr><td>" << buf << "</td><td>"
         << (r.la ? to_string(r.la->pattern) : "-") << "</td><td>"
         << (r.lb ? to_string(r.lb->pattern) : "-") << "</td><td>" << ta
         << "</td><td>" << tb << "</td><td>"
         << (ta >= tb ? "+" : "-") << r.delta << "</td><td>"
         << (r.la ? r.la->invalidations : 0) << "</td><td>"
         << (r.lb ? r.lb->invalidations : 0) << "</td><td>"
         << (r.la ? r.la->stall_cycles : 0) << "</td><td>"
         << (r.lb ? r.lb->stall_cycles : 0) << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  os << "<h2>Bank contention</h2>\n";
  emit_bank_table(os, a);
  if (b) emit_bank_table(os, *b);

  os << "</body></html>\n";
  return os.str();
}

bool write_profile_html(const std::string& path, const std::string& title,
                        const ProfileSnapshot& a, const ProfileSnapshot* b,
                        std::size_t top_n) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << profile_html(title, a, b, top_n);
  return bool(f);
}

}  // namespace ccnoc::sim
