#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

/// \file types.hpp
/// Fundamental scalar types shared by every ccnoc module, plus the
/// invariant-checking macro used throughout the simulator.

namespace ccnoc::sim {

/// Simulation time, in clock cycles. The whole platform is modelled in a
/// single clock domain, as in the paper's CABA platforms.
using Cycle = std::uint64_t;

/// Physical byte address in the simulated platform's memory map.
using Addr = std::uint64_t;

/// Identifier of a NoC node (a cache+processor node or a memory bank node).
using NodeId = std::uint16_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffff;

/// Word size of the modelled SPARC-V8-like processor, in bytes.
inline constexpr unsigned kWordBytes = 4;

[[noreturn]] void assertion_failure(const char* expr, const char* file, int line,
                                    const std::string& msg);

}  // namespace ccnoc::sim

/// Invariant check that stays on in release builds: the simulator's
/// correctness claims (coherence, SC, protocol hop counts) rest on these.
#define CCNOC_ASSERT(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::ccnoc::sim::assertion_failure(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                        \
  } while (false)
