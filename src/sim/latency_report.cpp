#include <cstdio>
#include <sstream>

#include "sim/latency.hpp"

/// \file latency_report.cpp
/// Deterministic schema-v1 JSON emitter for the latency observatory.
/// Contains no run/engine metadata on purpose: serial and parallel runs of
/// the same platform must emit byte-identical latency.json (the
/// ParallelEquivalence suite pins this), so everything here is a pure
/// function of the merged observatory state.

namespace ccnoc::sim {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void emit_phases(std::ostringstream& os, const PhaseCycles& ph) {
  os << "{";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (p != 0) os << ",";
    os << "\"" << to_string(Phase(p)) << "\":" << ph[p];
  }
  os << "}";
}

std::uint64_t phase_total(const PhaseCycles& ph) {
  std::uint64_t t = 0;
  for (std::uint64_t c : ph) t += c;
  return t;
}

Phase dominant_of(const PhaseCycles& ph) {
  std::size_t best = 0;
  for (std::size_t p = 1; p < kNumPhases; ++p) {
    if (ph[p] > ph[best]) best = p;
  }
  return Phase(best);
}

bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}

}  // namespace

std::string latency_json(const LatencyObservatory& lat) {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"kind\":\"ccnoc-latency\"";

  os << ",\"phases\":[";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    if (p != 0) os << ",";
    os << "\"" << to_string(Phase(p)) << "\"";
  }
  os << "]";

  os << ",\"transactions\":{";
  bool first = true;
  PhaseCycles overall{};
  std::uint64_t total_count = 0;
  for (const auto& [kind, k] : lat.kinds()) {
    if (!first) os << ",";
    first = false;
    total_count += k.count;
    for (std::size_t p = 0; p < kNumPhases; ++p) overall[p] += k.phases[p];
    os << "\"" << kind << "\":{\"count\":" << k.count
       << ",\"cycles\":" << k.total.sum()
       << ",\"mean\":" << fmt_double(k.total.mean())
       << ",\"min\":" << k.total.min() << ",\"max\":" << k.total.max()
       << ",\"p50\":" << k.total.percentile(0.50)
       << ",\"p90\":" << k.total.percentile(0.90)
       << ",\"p99\":" << k.total.percentile(0.99)
       << ",\"p999\":" << k.total.percentile(0.999)
       << ",\"dominant_phase\":\"" << to_string(k.dominant()) << "\""
       << ",\"phases\":";
    emit_phases(os, k.phases);
    os << "}";
  }
  os << "}";

  os << ",\"nodes\":[";
  first = true;
  for (const auto& [node, ph] : lat.node_phases()) {
    if (!first) os << ",";
    first = false;
    os << "{\"node\":" << node << ",\"cycles\":" << phase_total(ph)
       << ",\"dominant_phase\":\"" << to_string(dominant_of(ph)) << "\""
       << ",\"phases\":";
    emit_phases(os, ph);
    os << "}";
  }
  os << "]";

  os << ",\"worst\":[";
  first = true;
  for (const auto& o : lat.worst()) {
    if (!first) os << ",";
    first = false;
    os << "{\"txn\":" << o.txn << ",\"kind\":\"" << o.kind
       << "\",\"begin\":" << o.begin << ",\"end\":" << o.end
       << ",\"latency\":" << o.latency() << ",\"phases\":";
    emit_phases(os, o.phases);
    os << "}";
  }
  os << "]";

  os << ",\"summary\":{\"transactions\":" << total_count
     << ",\"cycles\":" << phase_total(overall) << ",\"dominant_phase\":\""
     << to_string(dominant_of(overall)) << "\",\"phases\":";
  emit_phases(os, overall);
  os << "}}\n";
  return os.str();
}

bool write_latency_json(const std::string& path, const LatencyObservatory& lat) {
  return write_string(path, latency_json(lat));
}

}  // namespace ccnoc::sim
