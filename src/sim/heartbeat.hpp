#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/types.hpp"

/// \file heartbeat.hpp
/// Live run telemetry: a wall-clock sampler thread that periodically
/// snapshots run progress — off the simulation/worker threads — and emits
/// one line per beat to stderr and, optionally, to a JSONL stream
/// (`--heartbeat-json` on the bench and fuzz CLIs). Long sweeps and fuzz
/// campaigns become observable while running instead of only post-mortem.
///
/// The sampler callback is supplied by the run driver (core::System wires
/// it to ParallelEngine::progress()); the heartbeat owns the thread and the
/// output channels and never touches simulation state itself.
///
/// JSON schema (`ccnoc-heartbeat-v1`), one object per line:
///   {"schema":"ccnoc-heartbeat-v1","wall_ms":N,"engine":"parallel",
///    "epochs":N,
///    "domains":[{"domain":0,"cycle":N,"events":N,"mailbox":N},...],
///    "workers":[{"worker":0,"barrier_wait_ms":X.XXX},...]}
/// `mailbox` is the number of cross-domain arrivals the domain drained at
/// its most recent epoch barrier; `barrier_wait_ms` is the worker's
/// cumulative time spent waiting at barriers. A final beat is always
/// emitted at stop(), so even sub-interval runs leave one sample.
namespace ccnoc::sim {

struct HeartbeatConfig {
  unsigned interval_ms = 0;    ///< sampling period; 0 disables the heartbeat
  std::string json_path;       ///< JSONL stream path; empty = stderr only
  bool stderr_lines = true;    ///< human-readable one-liners on stderr
};

class Heartbeat {
 public:
  /// One progress snapshot. The driver's sampler fills everything except
  /// `wall_ms`, which the heartbeat stamps from its own start time.
  struct Sample {
    struct Domain {
      unsigned domain = 0;
      Cycle cycle = 0;
      std::uint64_t events = 0;
      std::uint64_t mailbox = 0;
    };
    struct Worker {
      unsigned worker = 0;
      std::uint64_t barrier_wait_ns = 0;
    };
    std::uint64_t wall_ms = 0;
    std::uint64_t epochs = 0;
    std::string engine = "parallel";
    std::vector<Domain> domains;
    std::vector<Worker> workers;
  };
  using Sampler = std::function<Sample()>;

  /// A disabled config (interval_ms == 0) constructs an inert heartbeat:
  /// start()/stop() are no-ops and no thread is spawned.
  Heartbeat(HeartbeatConfig cfg, Sampler sampler);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start();
  /// Emit one final beat, then join the sampler thread. Idempotent.
  void stop();
  [[nodiscard]] bool enabled() const { return cfg_.interval_ms != 0; }
  [[nodiscard]] std::uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }

  /// One `ccnoc-heartbeat-v1` JSONL line (no trailing newline).
  static std::string to_json(const Sample& s);
  /// The human-readable stderr one-liner (no trailing newline).
  static std::string to_stderr_line(const Sample& s);

 private:
  void loop();
  void beat();

  HeartbeatConfig cfg_;
  Sampler sampler_;
  std::FILE* json_ = nullptr;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<std::uint64_t> beats_{0};
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace ccnoc::sim
