#include "sim/heartbeat.hpp"

#include <algorithm>
#include <sstream>

namespace ccnoc::sim {

Heartbeat::Heartbeat(HeartbeatConfig cfg, Sampler sampler)
    : cfg_(std::move(cfg)), sampler_(std::move(sampler)) {}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::start() {
  if (!enabled() || started_) return;
  started_ = true;
  stopping_ = false;
  start_time_ = std::chrono::steady_clock::now();
  if (!cfg_.json_path.empty()) {
    json_ = std::fopen(cfg_.json_path.c_str(), "w");
    if (json_ == nullptr) {
      std::fprintf(stderr, "[heartbeat] cannot open %s; JSON stream disabled\n",
                   cfg_.json_path.c_str());
    }
  }
  thread_ = std::thread([this] { loop(); });
}

void Heartbeat::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  beat();  // final sample: even sub-interval runs leave one beat behind
  if (json_ != nullptr) {
    std::fclose(json_);
    json_ = nullptr;
  }
  started_ = false;
}

void Heartbeat::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(cfg_.interval_ms),
                     [this] { return stopping_; })) {
      return;  // final beat is emitted by stop(), after the join
    }
    lock.unlock();
    beat();
    lock.lock();
  }
}

void Heartbeat::beat() {
  Sample s = sampler_();
  s.wall_ms = std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - start_time_)
                                .count());
  beats_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.stderr_lines) {
    std::string line = to_stderr_line(s);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (json_ != nullptr) {
    std::string line = to_json(s);
    std::fprintf(json_, "%s\n", line.c_str());
    std::fflush(json_);
  }
}

std::string Heartbeat::to_json(const Sample& s) {
  std::ostringstream os;
  os << "{\"schema\":\"ccnoc-heartbeat-v1\",\"wall_ms\":" << s.wall_ms
     << ",\"engine\":\"" << s.engine << "\",\"epochs\":" << s.epochs
     << ",\"domains\":[";
  for (std::size_t i = 0; i < s.domains.size(); ++i) {
    const Sample::Domain& d = s.domains[i];
    if (i) os << ",";
    os << "{\"domain\":" << d.domain << ",\"cycle\":" << d.cycle
       << ",\"events\":" << d.events << ",\"mailbox\":" << d.mailbox << "}";
  }
  os << "],\"workers\":[";
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const Sample::Worker& w = s.workers[i];
    if (i) os << ",";
    // Millisecond resolution with fixed 3 decimals keeps the line compact
    // and locale-independent.
    std::uint64_t us = w.barrier_wait_ns / 1000;
    os << "{\"worker\":" << w.worker << ",\"barrier_wait_ms\":" << us / 1000
       << "." << char('0' + us / 100 % 10) << char('0' + us / 10 % 10)
       << char('0' + us % 10) << "}";
  }
  os << "]}";
  return os.str();
}

std::string Heartbeat::to_stderr_line(const Sample& s) {
  Cycle lo = ~Cycle{0}, hi = 0;
  std::uint64_t events = 0, mailbox = 0;
  for (const Sample::Domain& d : s.domains) {
    lo = std::min(lo, d.cycle);
    hi = std::max(hi, d.cycle);
    events += d.events;
    mailbox += d.mailbox;
  }
  if (s.domains.empty()) lo = 0;
  std::uint64_t wait_ns = 0;
  for (const Sample::Worker& w : s.workers) wait_ns += w.barrier_wait_ns;
  std::ostringstream os;
  os << "[heartbeat] t=" << s.wall_ms / 1000 << "." << s.wall_ms / 100 % 10
     << s.wall_ms / 10 % 10 << s.wall_ms % 10 << "s " << s.engine << " epochs="
     << s.epochs << " cycle=" << lo;
  if (hi != lo) os << ".." << hi;
  os << " events=" << events << " mailbox=" << mailbox
     << " barrier_wait=" << wait_ns / 1000000 << "ms";
  return os.str();
}

}  // namespace ccnoc::sim
