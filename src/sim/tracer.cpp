#include "sim/tracer.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ccnoc::sim {

namespace {

/// Fixed-notation double formatting so report output is byte-identical
/// across runs and platforms (no locale, no %g exponent edge cases).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void Tracer::txn_begin_slow(Cycle now, std::uint64_t txn, const char* kind,
                       std::uint32_t node, Addr addr) {
  if (!on()) return;
  open_.emplace(txn, OpenSpan{kind, now});
  if (!full()) return;
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = kind;
  e.ph = 'b';
  e.pid = kPidCache;
  e.tid = node;
  e.arg_names[0] = "addr";
  e.args[0] = addr;
  events_.push_back(e);
}

void Tracer::txn_note_slow(Cycle now, std::uint64_t txn, const char* what,
                      const char* arg_name, std::uint64_t arg, const char* arg_name2,
                      std::uint64_t arg2) {
  if (!full()) return;
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = what;
  e.ph = 'n';
  e.pid = kPidCache;
  e.tid = 0;
  e.arg_names[0] = arg_name;
  e.args[0] = arg;
  e.arg_names[1] = arg_name2;
  e.args[1] = arg2;
  events_.push_back(e);
}

void Tracer::txn_end_slow(Cycle now, std::uint64_t txn, unsigned hops) {
  if (!on()) return;
  auto it = open_.find(txn);
  if (it == open_.end()) return;  // span was opened before tracing was enabled
  const OpenSpan span = it->second;
  open_.erase(it);
  KindStats& k = kinds_[span.kind];
  ++k.count;
  k.hops_total += hops;
  k.latency.add(double(now - span.begin));
  if (!full()) return;
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = span.kind;
  e.ph = 'e';
  e.pid = kPidCache;
  e.tid = 0;
  e.arg_names[0] = "hops";
  e.args[0] = hops;
  events_.push_back(e);
}

void Tracer::complete_slow(Cycle start, Cycle end, const char* name, std::uint32_t pid,
                      std::uint32_t tid) {
  if (!full()) return;
  Event e;
  e.ts = start;
  e.dur = end - start;
  e.name = name;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  events_.push_back(e);
}

void Tracer::instant_slow(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
                     const char* arg_name, std::uint64_t arg) {
  if (!full()) return;
  Event e;
  e.ts = now;
  e.name = name;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.arg_names[0] = arg_name;
  e.args[0] = arg;
  events_.push_back(e);
}

void Tracer::counter_slow(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
                     std::uint64_t value) {
  if (!full()) return;
  Event e;
  e.ts = now;
  e.name = name;
  e.ph = 'C';
  e.pid = pid;
  e.tid = tid;
  e.arg_names[0] = "value";
  e.args[0] = value;
  events_.push_back(e);
}

void Tracer::set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name) {
  if (!full()) return;  // names only appear in the Chrome export
  track_names_[{pid, tid}] = std::move(name);
}

void Tracer::add_stall_slow(unsigned cpu, StallCat cat, Cycle cycles) {
  if (!on()) return;
  if (stalls_.size() <= cpu) stalls_.resize(cpu + 1);
  stalls_[cpu].cycles[std::size_t(cat)] += cycles;
}

unsigned Tracer::register_link(std::string name) {
  if (!on()) return ~0u;
  links_.push_back(LinkTelemetry{std::move(name), {}});
  return unsigned(links_.size() - 1);
}

void Tracer::add_link_flits_slow(unsigned link, Cycle now, std::uint64_t flits) {
  if (link >= links_.size()) return;  // registered before tracing was enabled
  auto& epochs = links_[link].flits_per_epoch;
  std::size_t e = epoch_of(now);
  if (epochs.size() <= e) epochs.resize(e + 1, 0);
  epochs[e] += flits;
}

unsigned Tracer::register_bank(std::string name) {
  if (!on()) return ~0u;
  banks_.push_back(BankTelemetry{std::move(name), {}});
  return unsigned(banks_.size() - 1);
}

void Tracer::bank_queue_depth_slow(unsigned bank, Cycle now, std::size_t depth) {
  if (bank >= banks_.size()) return;  // registered before tracing was enabled
  auto& epochs = banks_[bank].max_depth_per_epoch;
  std::size_t e = epoch_of(now);
  if (epochs.size() <= e) epochs.resize(e + 1, 0);
  epochs[e] = std::max<std::uint64_t>(epochs[e], depth);
  counter(now, "queue_depth", kPidBank, std::uint32_t(bank), depth);
}

std::string Tracer::chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  static const char* kPidNames[] = {nullptr, "cpu", "cache", "bank", "noc"};
  for (std::uint32_t pid : {kPidCpu, kPidCache, kPidBank, kPidNoc}) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << kPidNames[pid] << "\"}}";
  }
  for (const auto& [key, name] : track_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"" << name << "\"}}";
  }

  for (const Event& e : events_) {
    sep();
    os << "{\"name\":\"" << e.name << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    if (e.ph == 'b' || e.ph == 'e' || e.ph == 'n') {
      // Async events pair on (cat, id) in Perfetto.
      os << ",\"cat\":\"txn\",\"id\":" << e.id;
    }
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    bool have_args = e.arg_names[0] != nullptr || e.arg_names[1] != nullptr ||
                     e.ph == 'C';
    if (have_args) {
      os << ",\"args\":{";
      bool afirst = true;
      for (int a = 0; a < 2; ++a) {
        if (e.arg_names[a] == nullptr) continue;
        if (!afirst) os << ",";
        afirst = false;
        os << "\"" << e.arg_names[a] << "\":" << e.args[a];
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

std::string Tracer::report_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"epoch_cycles\":" << epoch_;

  os << ",\"transactions\":{";
  bool first = true;
  for (const auto& [kind, k] : kinds_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << kind << "\":{\"count\":" << k.count
       << ",\"hops_total\":" << k.hops_total
       << ",\"latency\":{\"mean\":" << fmt_double(k.latency.mean())
       << ",\"min\":" << fmt_double(k.latency.min())
       << ",\"max\":" << fmt_double(k.latency.max())
       << ",\"p50\":" << fmt_double(k.latency.percentile(0.50))
       << ",\"p90\":" << fmt_double(k.latency.percentile(0.90))
       << ",\"p99\":" << fmt_double(k.latency.percentile(0.99)) << "}}";
  }
  os << "}";

  os << ",\"stalls\":[";
  for (std::size_t c = 0; c < stalls_.size(); ++c) {
    if (c != 0) os << ",";
    const CpuStallAttr& s = stalls_[c];
    os << "{\"cpu\":" << c << ",\"load\":" << s.of(StallCat::kLoad)
       << ",\"store\":" << s.of(StallCat::kStore)
       << ",\"atomic\":" << s.of(StallCat::kAtomic)
       << ",\"ifetch\":" << s.of(StallCat::kIfetch) << "}";
  }
  os << "]";

  auto emit_series = [&](const char* key, const std::vector<std::uint64_t>& v) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) os << ",";
      os << v[i];
    }
    os << "]";
  };

  os << ",\"links\":[";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":\"" << links_[i].name << "\"";
    emit_series("flits_per_epoch", links_[i].flits_per_epoch);
    os << "}";
  }
  os << "]";

  os << ",\"banks\":[";
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":\"" << banks_[i].name << "\"";
    emit_series("max_queue_depth_per_epoch", banks_[i].max_depth_per_epoch);
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

namespace {
bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool Tracer::write_chrome_json(const std::string& path) const {
  return write_string(path, chrome_json());
}

bool Tracer::write_report(const std::string& path) const {
  return write_string(path, report_json());
}

}  // namespace ccnoc::sim
