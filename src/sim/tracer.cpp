#include "sim/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace ccnoc::sim {

namespace {

/// Fixed-notation double formatting so report output is byte-identical
/// across runs and platforms (no locale, no %g exponent edge cases).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

// --- sharded recording -------------------------------------------------------

void Tracer::begin_sharded(unsigned domains) {
  CCNOC_ASSERT(!sharded_, "tracer sharding entered twice");
  if (!on() || domains <= 1) return;
  shards_.assign(domains, Shard{});
  for (Shard& sh : shards_) {
    sh.link_flits.resize(links_.size());
  }
  sharded_ = true;
}

void Tracer::record(NodeId node, Op op) {
  Shard& sh = shards_[node % shards_.size()];
  if (sh.node_seq.size() <= node) sh.node_seq.resize(node + 1, 0);
  op.node = node;
  op.seq = sh.node_seq[node]++;
  sh.ops.push_back(op);
}

void Tracer::finalize_sharded() {
  if (!sharded_) return;
  sharded_ = false;

  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.ops.size();
  std::vector<Op> ops;
  ops.reserve(total);
  for (Shard& sh : shards_) {
    ops.insert(ops.end(), sh.ops.begin(), sh.ops.end());
  }
  // (cycle, node, seq) is a total order: seq is per-node monotone, so no two
  // records compare equal and the sort needs no stability.
  std::sort(ops.begin(), ops.end(), [](const Op& x, const Op& y) {
    return std::tie(x.cycle, x.node, x.seq) < std::tie(y.cycle, y.node, y.seq);
  });
  for (const Op& op : ops) {
    switch (op.k) {
      case Op::K::kTxnBegin:
        apply_txn_begin(op.cycle, op.id, op.name, op.node, op.tid, Addr(op.a));
        break;
      case Op::K::kTxnNote:
        apply_txn_note(op.cycle, op.id, op.node, op.name, op.an0, op.a, op.an1, op.b);
        break;
      case Op::K::kTxnEnd:
        apply_txn_end(op.cycle, op.id, op.node, unsigned(op.a));
        break;
      case Op::K::kComplete:
        apply_complete(op.cycle, Cycle(op.a), op.node, op.name, op.pid, op.tid);
        break;
      case Op::K::kInstant:
        apply_instant(op.cycle, op.node, op.name, op.pid, op.tid, op.an0, op.a);
        break;
      case Op::K::kCounter:
        apply_counter(op.cycle, op.node, op.name, op.pid, op.tid, op.a);
        break;
      case Op::K::kBankDepth:
        apply_bank_depth(op.cycle, unsigned(op.id), std::size_t(op.a));
        break;
    }
  }

  // Scalar accumulators fold in domain order; every one is a plain sum, so
  // the fold order cannot matter — the fixed order is for determinism of
  // any future non-commutative addition.
  for (const Shard& sh : shards_) {
    if (stalls_.size() < sh.stalls.size()) stalls_.resize(sh.stalls.size());
    for (std::size_t c = 0; c < sh.stalls.size(); ++c) {
      for (std::size_t i = 0; i < kNumStallCats; ++i) {
        stalls_[c].cycles[i] += sh.stalls[c].cycles[i];
      }
    }
    for (std::size_t l = 0; l < sh.link_flits.size(); ++l) {
      const auto& src = sh.link_flits[l];
      auto& dst = links_[l].flits_per_epoch;
      if (dst.size() < src.size()) dst.resize(src.size(), 0);
      for (std::size_t e = 0; e < src.size(); ++e) dst[e] += src[e];
    }
  }
  shards_.clear();
}

void Tracer::set_run_context(std::string engine, unsigned domains,
                             std::string fallback_reason, std::string observers) {
  run_engine_ = std::move(engine);
  run_domains_ = domains;
  run_fallback_ = std::move(fallback_reason);
  run_observers_ = std::move(observers);
}

// --- event emission ----------------------------------------------------------

void Tracer::push_event(NodeId node, Event e) {
  if (event_seq_.size() <= node) event_seq_.resize(node + 1, 0);
  e.node = node;
  e.seq = event_seq_[node]++;
  events_.push_back(e);
}

// --- hook slow paths ---------------------------------------------------------

void Tracer::txn_begin_slow(Cycle now, std::uint64_t txn, const char* kind,
                            NodeId node, std::uint32_t tid, Addr addr) {
  if (!on()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kTxnBegin;
    op.id = txn;
    op.name = kind;
    op.tid = tid;
    op.a = addr;
    record(node, op);
    return;
  }
  apply_txn_begin(now, txn, kind, node, tid, addr);
}

void Tracer::apply_txn_begin(Cycle now, std::uint64_t txn, const char* kind,
                             NodeId node, std::uint32_t tid, Addr addr) {
  open_.emplace(txn, OpenSpan{kind, now});
  if (!full()) return;
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = kind;
  e.ph = 'b';
  e.pid = kPidCache;
  e.tid = tid;
  e.arg_names[0] = "addr";
  e.args[0] = addr;
  push_event(node, e);
}

void Tracer::txn_note_slow(Cycle now, std::uint64_t txn, NodeId node,
                           const char* what, const char* arg_name,
                           std::uint64_t arg, const char* arg_name2,
                           std::uint64_t arg2) {
  if (!full()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kTxnNote;
    op.id = txn;
    op.name = what;
    op.an0 = arg_name;
    op.a = arg;
    op.an1 = arg_name2;
    op.b = arg2;
    record(node, op);
    return;
  }
  apply_txn_note(now, txn, node, what, arg_name, arg, arg_name2, arg2);
}

void Tracer::apply_txn_note(Cycle now, std::uint64_t txn, NodeId node,
                            const char* what, const char* an0, std::uint64_t a,
                            const char* an1, std::uint64_t b) {
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = what;
  e.ph = 'n';
  e.pid = kPidCache;
  e.tid = 0;
  e.arg_names[0] = an0;
  e.args[0] = a;
  e.arg_names[1] = an1;
  e.args[1] = b;
  push_event(node, e);
}

void Tracer::txn_end_slow(Cycle now, std::uint64_t txn, NodeId node, unsigned hops) {
  if (!on()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kTxnEnd;
    op.id = txn;
    op.a = hops;
    record(node, op);
    return;
  }
  apply_txn_end(now, txn, node, hops);
}

void Tracer::apply_txn_end(Cycle now, std::uint64_t txn, NodeId node, unsigned hops) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;  // span was opened before tracing was enabled
  const OpenSpan span = it->second;
  open_.erase(it);
  KindStats& k = kinds_[span.kind];
  ++k.count;
  k.hops_total += hops;
  k.latency.add(double(now - span.begin));
  if (!full()) return;
  Event e;
  e.ts = now;
  e.id = txn;
  e.name = span.kind;
  e.ph = 'e';
  e.pid = kPidCache;
  e.tid = 0;
  e.arg_names[0] = "hops";
  e.args[0] = hops;
  push_event(node, e);
}

void Tracer::complete_slow(Cycle start, Cycle end, NodeId node, const char* name,
                           std::uint32_t pid, std::uint32_t tid) {
  if (!full()) return;
  if (sharded_) {
    Op op;
    op.cycle = start;
    op.k = Op::K::kComplete;
    op.a = end;
    op.name = name;
    op.pid = pid;
    op.tid = tid;
    record(node, op);
    return;
  }
  apply_complete(start, end, node, name, pid, tid);
}

void Tracer::apply_complete(Cycle start, Cycle end, NodeId node, const char* name,
                            std::uint32_t pid, std::uint32_t tid) {
  Event e;
  e.ts = start;
  e.dur = end - start;
  e.name = name;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  push_event(node, e);
}

void Tracer::instant_slow(Cycle now, NodeId node, const char* name,
                          std::uint32_t pid, std::uint32_t tid,
                          const char* arg_name, std::uint64_t arg) {
  if (!full()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kInstant;
    op.name = name;
    op.pid = pid;
    op.tid = tid;
    op.an0 = arg_name;
    op.a = arg;
    record(node, op);
    return;
  }
  apply_instant(now, node, name, pid, tid, arg_name, arg);
}

void Tracer::apply_instant(Cycle now, NodeId node, const char* name,
                           std::uint32_t pid, std::uint32_t tid, const char* an0,
                           std::uint64_t a) {
  Event e;
  e.ts = now;
  e.name = name;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.arg_names[0] = an0;
  e.args[0] = a;
  push_event(node, e);
}

void Tracer::counter_slow(Cycle now, NodeId node, const char* name,
                          std::uint32_t pid, std::uint32_t tid,
                          std::uint64_t value) {
  if (!full()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kCounter;
    op.name = name;
    op.pid = pid;
    op.tid = tid;
    op.a = value;
    record(node, op);
    return;
  }
  apply_counter(now, node, name, pid, tid, value);
}

void Tracer::apply_counter(Cycle now, NodeId node, const char* name,
                           std::uint32_t pid, std::uint32_t tid,
                           std::uint64_t value) {
  Event e;
  e.ts = now;
  e.name = name;
  e.ph = 'C';
  e.pid = pid;
  e.tid = tid;
  e.arg_names[0] = "value";
  e.args[0] = value;
  push_event(node, e);
}

void Tracer::set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name) {
  if (!full()) return;  // names only appear in the Chrome export
  track_names_[{pid, tid}] = std::move(name);
}

void Tracer::add_stall_slow(unsigned cpu, StallCat cat, Cycle cycles) {
  if (!on()) return;
  // Pure per-CPU sums: accumulate in the recording domain's shard and fold
  // elementwise at finalize — cheaper than one record per stall and exact.
  auto& stalls = sharded_ ? shards_[cpu % shards_.size()].stalls : stalls_;
  if (stalls.size() <= cpu) stalls.resize(cpu + 1);
  stalls[cpu].cycles[std::size_t(cat)] += cycles;
}

unsigned Tracer::register_link(std::string name) {
  if (!on()) return ~0u;
  links_.push_back(LinkTelemetry{std::move(name), {}});
  return unsigned(links_.size() - 1);
}

void Tracer::add_link_flits_slow(unsigned link, Cycle now, std::uint64_t flits) {
  if (link >= links_.size()) return;  // registered before tracing was enabled
  // Per-epoch sums, keyed only by simulated time: like add_stall, these
  // fold exactly, so a link accumulates in its caller's shard. A link is
  // only ever fed from one node (src-side ingress or dst-side egress), so
  // each series has a single writer.
  std::size_t e = epoch_of(now);
  if (sharded_) {
    // The NoC calls this from the event of the link's owning node; shard by
    // link owner via the caller's domain — the link index itself is stable,
    // so any shard works for a sum. Use the link id to spread, not to key.
    auto& epochs = shards_[link % shards_.size()].link_flits[link];
    if (epochs.size() <= e) epochs.resize(e + 1, 0);
    epochs[e] += flits;
    return;
  }
  auto& epochs = links_[link].flits_per_epoch;
  if (epochs.size() <= e) epochs.resize(e + 1, 0);
  epochs[e] += flits;
}

unsigned Tracer::register_bank(std::string name, NodeId node) {
  if (!on()) return ~0u;
  banks_.push_back(BankTelemetry{std::move(name), {}});
  bank_nodes_.push_back(node);
  return unsigned(banks_.size() - 1);
}

void Tracer::bank_queue_depth_slow(unsigned bank, Cycle now, std::size_t depth) {
  if (bank >= banks_.size()) return;  // registered before tracing was enabled
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kBankDepth;
    op.id = bank;
    op.a = depth;
    record(bank_nodes_[bank], op);
    return;
  }
  apply_bank_depth(now, bank, depth);
}

void Tracer::apply_bank_depth(Cycle now, unsigned bank, std::size_t depth) {
  auto& epochs = banks_[bank].max_depth_per_epoch;
  std::size_t e = epoch_of(now);
  if (epochs.size() <= e) epochs.resize(e + 1, 0);
  epochs[e] = std::max<std::uint64_t>(epochs[e], depth);
  if (full()) {
    apply_counter(now, bank_nodes_[bank], "queue_depth", kPidBank,
                  std::uint32_t(bank), depth);
  }
}

// --- export ------------------------------------------------------------------

std::string Tracer::chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  static const char* kPidNames[] = {nullptr, "cpu", "cache", "bank", "noc"};
  for (std::uint32_t pid : {kPidCpu, kPidCache, kPidBank, kPidNoc}) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << kPidNames[pid] << "\"}}";
  }
  for (const auto& [key, name] : track_names_) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"" << name << "\"}}";
  }

  // Canonical export order: (ts, node, seq). Per-node sequence numbers are
  // assigned in per-node recording order, which both engines preserve, so
  // the sorted export is byte-identical whichever engine produced the log.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(), [](const Event* x, const Event* y) {
    return std::tie(x->ts, x->node, x->seq) < std::tie(y->ts, y->node, y->seq);
  });

  for (const Event* ep : ordered) {
    const Event& e = *ep;
    sep();
    os << "{\"name\":\"" << e.name << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    if (e.ph == 'b' || e.ph == 'e' || e.ph == 'n') {
      // Async events pair on (cat, id) in Perfetto.
      os << ",\"cat\":\"txn\",\"id\":" << e.id;
    }
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    bool have_args = e.arg_names[0] != nullptr || e.arg_names[1] != nullptr ||
                     e.ph == 'C';
    if (have_args) {
      os << ",\"args\":{";
      bool afirst = true;
      for (int a = 0; a < 2; ++a) {
        if (e.arg_names[a] == nullptr) continue;
        if (!afirst) os << ",";
        afirst = false;
        os << "\"" << e.arg_names[a] << "\":" << e.args[a];
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

std::string Tracer::report_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"epoch_cycles\":" << epoch_;

  os << ",\"run\":{\"engine\":\"" << run_engine_
     << "\",\"domains\":" << run_domains_ << ",\"fallback_reason\":\""
     << run_fallback_ << "\",\"observers\":\"" << run_observers_ << "\"}";

  os << ",\"transactions\":{";
  bool first = true;
  for (const auto& [kind, k] : kinds_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << kind << "\":{\"count\":" << k.count
       << ",\"hops_total\":" << k.hops_total
       << ",\"latency\":{\"mean\":" << fmt_double(k.latency.mean())
       << ",\"min\":" << fmt_double(k.latency.min())
       << ",\"max\":" << fmt_double(k.latency.max())
       << ",\"p50\":" << fmt_double(k.latency.percentile(0.50))
       << ",\"p90\":" << fmt_double(k.latency.percentile(0.90))
       << ",\"p99\":" << fmt_double(k.latency.percentile(0.99)) << "}}";
  }
  os << "}";

  os << ",\"stalls\":[";
  for (std::size_t c = 0; c < stalls_.size(); ++c) {
    if (c != 0) os << ",";
    const CpuStallAttr& s = stalls_[c];
    os << "{\"cpu\":" << c << ",\"load\":" << s.of(StallCat::kLoad)
       << ",\"store\":" << s.of(StallCat::kStore)
       << ",\"atomic\":" << s.of(StallCat::kAtomic)
       << ",\"ifetch\":" << s.of(StallCat::kIfetch) << "}";
  }
  os << "]";

  auto emit_series = [&](const char* key, const std::vector<std::uint64_t>& v) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) os << ",";
      os << v[i];
    }
    os << "]";
  };

  os << ",\"links\":[";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":\"" << links_[i].name << "\"";
    emit_series("flits_per_epoch", links_[i].flits_per_epoch);
    os << "}";
  }
  os << "]";

  os << ",\"banks\":[";
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":\"" << banks_[i].name << "\"";
    emit_series("max_queue_depth_per_epoch", banks_[i].max_depth_per_epoch);
    os << "}";
  }
  os << "]" << report_extra_ << "}\n";
  return os.str();
}

namespace {
bool write_string(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool Tracer::write_chrome_json(const std::string& path) const {
  return write_string(path, chrome_json());
}

bool Tracer::write_report(const std::string& path) const {
  return write_string(path, report_json());
}

}  // namespace ccnoc::sim
