#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace ccnoc::sim {

// Line-granularity sharing & contention profiler.
//
// The profiler attributes coherence traffic, invalidations, stalls and bank
// queueing to individual cache lines, classifies each line's access pattern
// (private, read-shared, migratory, producer/consumer, true vs. false
// sharing) from per-CPU and per-word access masks, and snapshots the result
// into a deterministic schema-v1 profile (see profile_report.cpp for the
// JSON/HTML emitters).
//
// Cost discipline mirrors sim::Tracer exactly: every hook is an inline
// mode check — one predicted branch when off — in front of a cold,
// out-of-line slow path. Components cache `&sim.profiler()` at construction
// and never re-check availability. The mode must be set before components
// are built (System does this) so registration hooks see the final mode.
//
// Parallel runs: like the tracer, the profiler is parallel-native. Every
// hook names (directly or via a registered bank/link) the NoC node whose
// event is executing; under the parallel engine the hook appends a compact
// record to that node's domain shard, stamped (cycle, node, per-node seq),
// and finalize_sharded() replays the sorted stream through the serial
// accounting. The canonical replay order reproduces the serial profiler
// state exactly: every cross-node same-cycle fold is commutative (sums,
// OR-masks, maxima), per-CPU causal chains (invalidate → re-miss ping-pong
// accounting) are keyed by the CPU that owns the node, and per-bank FIFOs
// are fed only from the bank's own node.
enum class ProfileMode : std::uint8_t {
  kOff = 0,  // hooks compile to a single predicted branch; zero allocations
  kOn = 1,   // full per-line accounting
};

// What kind of access a hook is reporting. Atomics count as both a read and
// a write for sharing classification.
enum class AccessClass : std::uint8_t {
  kLoad = 0,
  kStore = 1,
  kAtomic = 2,
  kIfetch = 3,
};

// Classification of a line's lifetime access pattern, decided at snapshot
// time from the accumulated masks. Ordering is stable: it is the emission
// order in profile.json and must not be reshuffled (schema v1).
enum class SharingPattern : std::uint8_t {
  kUntouched = 0,        // line seen only via coherence side effects
  kCode = 1,             // instruction fetches only
  kPrivate = 2,          // one CPU ever touched it
  kReadShared = 3,       // multiple CPUs, no writer
  kFalseShared = 4,      // multiple CPUs, no word touched by >1 CPU
  kMigratory = 5,        // every sharer both reads and writes (token-style)
  kProducerConsumer = 6, // writers and readers are disjoint CPU sets
  kReadWriteShared = 7,  // genuinely contended read/write sharing
};
inline constexpr unsigned kNumSharingPatterns = 8;
const char* to_string(SharingPattern p);
const char* to_string(AccessClass c);

// Immutable copy of the profiler state, safe to keep after the System dies.
// `lines` is sorted by block address; banks/links are in registration order;
// all of this makes profile_json() byte-deterministic.
struct ProfileSnapshot {
  struct Line {
    Addr block = 0;
    SharingPattern pattern = SharingPattern::kUntouched;
    std::uint64_t reads = 0, writes = 0, atomics = 0, ifetches = 0;
    std::uint64_t readers_mask = 0, writers_mask = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0, updates = 0, ping_pongs = 0;
    std::uint64_t fanout_rounds = 0, fanout_total = 0, fanout_max = 0;
    std::uint64_t wbuf_stalls = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t traffic_bytes = 0, packets = 0;
    std::uint64_t bank_waits = 0, bank_wait_cycles = 0;
    std::uint64_t epochs_active = 0, epochs_shared = 0, epochs_rw_shared = 0;
    unsigned dir_max_sharers = 0;

    [[nodiscard]] unsigned num_readers() const;
    [[nodiscard]] unsigned num_writers() const;
  };
  struct Bank {
    std::string name;
    unsigned level = 0;  // 0 = memory tier, 1 = shared L2 tier (two-level)
    std::uint64_t conflicts = 0;       // requests that had to queue
    std::uint64_t wait_cycles = 0;     // sum of per-request queue waits
    std::uint64_t occupancy_integral = 0;  // cycle-weighted queue depth
    std::uint64_t max_depth = 0;
    std::vector<std::uint64_t> max_depth_per_epoch;
  };
  struct Link {
    std::string name;
    std::uint64_t flits = 0;
  };
  struct PatternTotal {
    std::uint64_t lines = 0;
    std::uint64_t accesses = 0;
    std::uint64_t traffic_bytes = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t ping_pongs = 0;
  };

  std::string label;
  unsigned block_bytes = 32;
  Cycle epoch_cycles = 1024;
  std::vector<Line> lines;
  std::vector<Bank> banks;
  std::vector<Link> links;
  std::array<PatternTotal, kNumSharingPatterns> patterns{};
  std::uint64_t total_traffic_bytes = 0, total_packets = 0;
  std::uint64_t total_stall_cycles = 0;
  std::array<std::uint64_t, 4> stalls_by_class{};  // indexed by AccessClass

  // Lines ranked by traffic (ties broken by address), capped at n.
  [[nodiscard]] std::vector<const Line*> hottest(std::size_t n) const;
  // Falsely-shared lines ranked the same way.
  [[nodiscard]] std::vector<const Line*> top_false_shared(std::size_t n) const;
  [[nodiscard]] const Line* find(Addr block) const;
};

class Profiler {
 public:
  static constexpr unsigned kInvalidId = ~0u;
  // Enough word slots for the largest block any config uses (64 B / 4 B).
  static constexpr unsigned kMaxWordSlots = 16;

  void set_mode(ProfileMode m) { mode_ = m; }
  [[nodiscard]] ProfileMode mode() const { return mode_; }
  [[nodiscard]] bool on() const { return mode_ != ProfileMode::kOff; }

  // Both must be set before the first hook fires; System wires them from
  // the config before any component is constructed.
  void set_epoch_cycles(Cycle epoch) { epoch_ = epoch ? epoch : 1; }
  [[nodiscard]] Cycle epoch_cycles() const { return epoch_; }
  void set_block_bytes(unsigned bb);
  [[nodiscard]] unsigned block_bytes() const { return block_bytes_; }

  [[nodiscard]] Addr block_of(Addr a) const { return a & ~Addr(block_bytes_ - 1); }

  // --- cache-side hooks -----------------------------------------------
  // `cpu` doubles as the recording NoC node: CPU i's cache controllers live
  // on NoC node i, and every one of these hooks executes in that node's
  // event, which is what makes the sharded recording single-writer.
  // Demand access as seen at the L1 (hit or miss), before any state change.
  void access(Cycle now, unsigned cpu, Addr addr, unsigned size,
              AccessClass cls) {
    if (on()) [[unlikely]] access_slow(now, cpu, addr, size, cls);
  }
  // Demand miss that starts a bank transaction (closes a ping-pong if this
  // CPU was invalidated off the line earlier).
  void miss(Cycle now, unsigned cpu, Addr addr) {
    if (on()) [[unlikely]] miss_slow(now, cpu, addr);
  }
  void invalidate_recv(Cycle now, unsigned cpu, Addr addr, bool had_copy) {
    if (on()) [[unlikely]] invalidate_recv_slow(now, cpu, addr, had_copy);
  }
  void update_recv(Cycle now, unsigned cpu, Addr addr) {
    if (on()) [[unlikely]] update_recv_slow(now, cpu, addr);
  }
  // Write-buffer retire pressure: a request stalled on buffer capacity or
  // on a drain.
  void wbuf_stall(Cycle now, unsigned cpu, Addr addr) {
    if (on()) [[unlikely]] wbuf_stall_slow(now, cpu, addr);
  }

  // --- directory / bank hooks -----------------------------------------
  // One invalidation/update round sent to `targets` sharers by the bank on
  // NoC node `node` (the recording/order key).
  void fanout(Cycle now, NodeId node, Addr addr, unsigned targets) {
    if (on()) [[unlikely]] fanout_slow(now, node, addr, targets);
  }
  // Sharer-set width observed by the directory after an insert; `node` is
  // the directory's bank node. The directory has no clock, so these record
  // at cycle 0 — sound because the only state they touch is a maximum.
  void dir_width(NodeId node, Addr addr, unsigned sharers) {
    if (on()) [[unlikely]] dir_width_slow(node, addr, sharers);
  }
  // `node` is the bank's NoC node; the queue hooks shard and order by it.
  // `level` attributes the queue to a hierarchy tier in the report
  // (0 = memory, 1 = shared L2), so two-level runs can tell which tier a
  // hot queue belongs to.
  unsigned register_bank(std::string name, NodeId node, unsigned level = 0);
  void bank_enqueue(Cycle now, unsigned bank, Addr addr, std::size_t depth) {
    if (on()) [[unlikely]] bank_enqueue_slow(now, bank, addr, depth);
  }
  void bank_dequeue(Cycle now, unsigned bank, Addr addr, std::size_t depth) {
    if (on()) [[unlikely]] bank_dequeue_slow(now, bank, addr, depth);
  }

  // --- CPU / NoC hooks -------------------------------------------------
  // Stall attribution: `cycles` is the exact delta the processor adds to
  // d_stall_/i_stall_, so per-line stalls reconcile with the run report.
  void stall(Cycle now, unsigned cpu, Addr addr, Cycle cycles,
             AccessClass cls) {
    if (on()) [[unlikely]] stall_slow(now, cpu, addr, cycles, cls);
  }
  // Every packet the network accepts, recorded in the source node's event;
  // `bytes` is the wire size, `addr` is rounded to a block internally so
  // totals reconcile with noc.bytes.
  void traffic(Cycle now, NodeId src, Addr addr, unsigned bytes) {
    if (on()) [[unlikely]] traffic_slow(now, src, addr, bytes);
  }
  unsigned register_link(std::string name);
  void link_flits(unsigned link, std::uint64_t flits) {
    if (on()) [[unlikely]] link_flits_slow(link, flits);
  }

  // --- parallel-engine sharding ----------------------------------------
  // Same contract as Tracer::begin_sharded/finalize_sharded: enter sharded
  // recording right before the parallel engine starts, merge-and-replay
  // right after it drains.
  void begin_sharded(unsigned domains);
  void finalize_sharded();
  [[nodiscard]] bool sharded() const { return sharded_; }

  // --- inspection -------------------------------------------------------
  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }
  [[nodiscard]] ProfileSnapshot snapshot(std::string label) const;

 private:
  struct LineState {
    std::uint64_t reads = 0, writes = 0, atomics = 0, ifetches = 0;
    std::uint64_t readers_mask = 0, writers_mask = 0;
    std::array<std::uint64_t, kMaxWordSlots> word_readers{};
    std::array<std::uint64_t, kMaxWordSlots> word_writers{};
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0, updates = 0, ping_pongs = 0;
    std::uint64_t inval_pending = 0;  // CPUs invalidated while holding a copy
    std::uint64_t fanout_rounds = 0, fanout_total = 0, fanout_max = 0;
    std::uint64_t wbuf_stalls = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t traffic_bytes = 0, packets = 0;
    std::uint64_t bank_waits = 0, bank_wait_cycles = 0;
    unsigned dir_max_sharers = 0;
    // Per-epoch reader/writer sets, folded into the epochs_* tallies when
    // the line is next touched in a later epoch (or at snapshot time).
    Cycle cur_epoch = ~Cycle{0};
    std::uint64_t epoch_readers = 0, epoch_writers = 0;
    std::uint64_t epochs_active = 0, epochs_shared = 0, epochs_rw_shared = 0;
  };
  struct BankState {
    std::string name;
    unsigned level = 0;  ///< hierarchy tier (0 = memory, 1 = shared L2)
    std::uint64_t conflicts = 0;
    std::uint64_t wait_cycles = 0;
    std::uint64_t occupancy_integral = 0;
    std::uint64_t max_depth = 0;
    std::size_t depth = 0;
    Cycle last_change = 0;
    std::vector<std::uint64_t> max_depth_per_epoch;
    // FIFO of enqueue timestamps per block: bank transactions on one block
    // complete in arrival order, so front() is the departing request.
    std::unordered_map<Addr, std::deque<Cycle>> arrivals;
  };
  struct LinkState {
    std::string name;
    std::uint64_t flits = 0;
  };

  /// One sharded hook record; the merged stream sorts by (cycle, node, seq)
  /// and replays through the serial slow paths.
  struct Op {
    enum class K : std::uint8_t {
      kAccess, kMiss, kInvalRecv, kUpdateRecv, kWbufStall,
      kFanout, kDirWidth, kBankEnq, kBankDeq, kStall, kTraffic,
    };
    Cycle cycle = 0;        ///< primary order key
    std::uint64_t seq = 0;  ///< per-node record sequence (tertiary key)
    Addr addr = 0;
    std::uint64_t a = 0;    ///< stall cycles / queue depth
    NodeId node = 0;        ///< recording node (secondary key); cpu for CPU hooks
    std::uint32_t x = 0;    ///< size / targets / sharers / bank id / bytes
    K k{};
    AccessClass cls = AccessClass::kLoad;
    bool flag = false;      ///< invalidate_recv had_copy
  };
  struct alignas(64) Shard {
    std::vector<Op> ops;
    std::vector<std::uint64_t> node_seq;
    std::vector<std::uint64_t> link_flits;  ///< pure sums; folded elementwise
  };

  __attribute__((cold)) void access_slow(Cycle now, unsigned cpu, Addr addr,
                                         unsigned size, AccessClass cls);
  __attribute__((cold)) void miss_slow(Cycle now, unsigned cpu, Addr addr);
  __attribute__((cold)) void invalidate_recv_slow(Cycle now, unsigned cpu,
                                                  Addr addr, bool had_copy);
  __attribute__((cold)) void update_recv_slow(Cycle now, unsigned cpu,
                                              Addr addr);
  __attribute__((cold)) void wbuf_stall_slow(Cycle now, unsigned cpu,
                                             Addr addr);
  __attribute__((cold)) void fanout_slow(Cycle now, NodeId node, Addr addr,
                                         unsigned targets);
  __attribute__((cold)) void dir_width_slow(NodeId node, Addr addr,
                                            unsigned sharers);
  __attribute__((cold)) void bank_enqueue_slow(Cycle now, unsigned bank,
                                               Addr addr, std::size_t depth);
  __attribute__((cold)) void bank_dequeue_slow(Cycle now, unsigned bank,
                                               Addr addr, std::size_t depth);
  __attribute__((cold)) void stall_slow(Cycle now, unsigned cpu, Addr addr,
                                        Cycle cycles, AccessClass cls);
  __attribute__((cold)) void traffic_slow(Cycle now, NodeId src, Addr addr,
                                          unsigned bytes);
  __attribute__((cold)) void link_flits_slow(unsigned link,
                                             std::uint64_t flits);

  void record(NodeId node, Op op);

  // Direct accounting, shared between the serial path and the replay.
  void apply_access(Cycle now, unsigned cpu, Addr addr, unsigned size,
                    AccessClass cls);
  void apply_miss(Cycle now, unsigned cpu, Addr addr);
  void apply_invalidate_recv(Cycle now, unsigned cpu, Addr addr, bool had_copy);
  void apply_update_recv(Cycle now, Addr addr);
  void apply_wbuf_stall(Cycle now, Addr addr);
  void apply_fanout(Cycle now, Addr addr, unsigned targets);
  void apply_dir_width(Addr addr, unsigned sharers);
  void apply_bank_enqueue(Cycle now, unsigned bank, Addr addr, std::size_t depth);
  void apply_bank_dequeue(Cycle now, unsigned bank, Addr addr, std::size_t depth);
  void apply_stall(Cycle now, Addr addr, Cycle cycles, AccessClass cls);
  void apply_traffic(Addr addr, unsigned bytes);

  LineState& line(Addr addr) { return lines_[block_of(addr)]; }
  void touch_epoch(LineState& l, Cycle now) const;
  static void fold_epoch(LineState& l);
  [[nodiscard]] SharingPattern classify(const LineState& l) const;

  ProfileMode mode_ = ProfileMode::kOff;
  Cycle epoch_ = 1024;
  unsigned block_bytes_ = 32;
  unsigned word_slots_ = 8;
  std::unordered_map<Addr, LineState> lines_;
  std::vector<BankState> banks_;
  std::vector<NodeId> bank_nodes_;  ///< owner NoC node per registered bank
  std::vector<LinkState> links_;
  std::array<std::uint64_t, 4> stalls_by_class_{};
  std::uint64_t total_traffic_bytes_ = 0, total_packets_ = 0;

  bool sharded_ = false;
  std::vector<Shard> shards_;
};

// --- report emitters (profile_report.cpp) ------------------------------
// Deterministic schema-v1 JSON. `top_n` caps the per-line table; 0 = all.
std::string profile_json(const ProfileSnapshot& s, std::size_t top_n = 0);
bool write_profile_json(const std::string& path, const ProfileSnapshot& s,
                        std::size_t top_n = 0);
// Self-contained single-file HTML report. Pass `b` for a side-by-side
// WTI-vs-MESI (or any A/B) diff; nullptr renders a single-run report.
std::string profile_html(const std::string& title, const ProfileSnapshot& a,
                         const ProfileSnapshot* b = nullptr,
                         std::size_t top_n = 32);
bool write_profile_html(const std::string& path, const std::string& title,
                        const ProfileSnapshot& a,
                        const ProfileSnapshot* b = nullptr,
                        std::size_t top_n = 32);

}  // namespace ccnoc::sim
