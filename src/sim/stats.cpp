#include "sim/stats.hpp"

#include <sstream>

namespace ccnoc::sim {

std::string StatsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, s] : samples_) {
    os << name << " : n=" << s.count() << " mean=" << s.mean() << " min=" << s.min()
       << " max=" << s.max() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " : n=" << h.total() << " mean=" << h.mean()
       << " overflow=" << h.overflow() << "\n";
  }
  return os.str();
}

}  // namespace ccnoc::sim
