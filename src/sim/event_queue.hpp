#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

/// \file event_queue.hpp
/// Deterministic discrete-event queue. Events scheduled for the same cycle
/// fire in insertion order (a monotonically increasing sequence number breaks
/// ties), so a given configuration and seed always replays identically.

namespace ccnoc::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule \p cb to run \p delay cycles after the current time.
  void schedule_in(Cycle delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Schedule \p cb at absolute cycle \p when (must not be in the past).
  void schedule_at(Cycle when, Callback cb);

  /// Run the next event (advancing time to its timestamp).
  /// Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or \p limit cycles elapse.
  /// Returns the number of events executed.
  std::uint64_t run(Cycle limit = ~Cycle{0});

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Timestamp of the next event; queue must be non-empty.
  [[nodiscard]] Cycle next_event_at() const { return heap_.front().when; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // An explicit binary heap (std::push_heap/std::pop_heap over a vector)
  // rather than std::priority_queue: pop_heap moves the minimum to the back
  // of the vector, where the callback can be moved out without the
  // const_cast that priority_queue::top() would force.
  std::vector<Event> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ccnoc::sim
