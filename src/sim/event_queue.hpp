#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

/// \file event_queue.hpp
/// Deterministic discrete-event queue. Every event carries an explicit
/// 64-bit order key that breaks same-cycle ties, so a given configuration
/// and seed always replays identically — and, crucially for the parallel
/// core (sim/parallel.hpp), the order of two same-cycle events never
/// depends on which queue they were inserted into or when:
///
///  - locally scheduled events (schedule_in / schedule_at) get an order key
///    of `kLocalOrder | seq` (bit 63 set, seq = per-queue insertion count),
///    preserving the classic insertion-order tiebreak;
///  - cross-domain events (NoC fabric arrivals) are inserted with
///    schedule_keyed() and a caller-provided canonical key (bit 63 clear,
///    derived from the sending node and its per-node sequence number), so
///    they sort identically no matter how the platform is partitioned into
///    domains — and always ahead of same-cycle local events.

namespace ccnoc::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Order-key bit marking locally scheduled events. Keys passed to
  /// schedule_keyed() must keep this bit clear so canonical cross-domain
  /// events sort ahead of same-cycle local ones in every partition.
  static constexpr std::uint64_t kLocalOrder = std::uint64_t{1} << 63;

  /// Schedule \p cb to run \p delay cycles after the current time.
  void schedule_in(Cycle delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Schedule \p cb at absolute cycle \p when. Scheduling in the past is a
  /// contract violation (it would silently time-travel and corrupt replay
  /// determinism) and raises a checked error: CCNOC_ASSERT stays armed in
  /// release builds and surfaces as std::logic_error, which a parallel
  /// sweep (sim/sweep.hpp) rethrows from the offending job.
  void schedule_at(Cycle when, Callback cb);

  /// Schedule \p cb at absolute cycle \p when with an explicit canonical
  /// order key (bit 63 must be clear; keys at one cycle must be unique).
  /// Used for cross-domain NoC arrivals, whose tiebreak order must be a
  /// pure function of (cycle, sending node, per-node sequence) rather than
  /// of insertion interleaving.
  void schedule_keyed(Cycle when, std::uint64_t key, Callback cb);

  /// Run the next event (advancing time to its timestamp).
  /// Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or \p limit cycles elapse.
  /// Returns the number of events executed.
  std::uint64_t run(Cycle limit = ~Cycle{0});

  /// Run every event strictly before \p horizon, leaving `now()` at the
  /// last executed event (no idle advance). The conservative parallel
  /// engine steps each domain queue with this: events at or beyond the
  /// epoch horizon may still be reordered against in-flight cross-domain
  /// arrivals and must not execute yet. Returns the events executed.
  std::uint64_t run_before(Cycle horizon);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Timestamp of the next event; queue must be non-empty.
  [[nodiscard]] Cycle next_event_at() const { return heap_.front().when; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t order;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.order > b.order;
    }
  };

  void push(Cycle when, std::uint64_t order, Callback cb);

  // An explicit binary heap (std::push_heap/std::pop_heap over a vector)
  // rather than std::priority_queue: pop_heap moves the minimum to the back
  // of the vector, where the callback can be moved out without the
  // const_cast that priority_queue::top() would force.
  std::vector<Event> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ccnoc::sim
