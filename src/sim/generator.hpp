#pragma once

#include <coroutine>
#include <exception>
#include <utility>

/// \file generator.hpp
/// Minimal C++20 generator coroutine. Workloads (`ccnoc::apps`) are written
/// as ordinary nested-loop code that `co_yield`s one ThreadOp at a time; the
/// processor model pulls ops lazily and resumes the coroutine when each
/// memory access completes. Values read from simulated memory travel back
/// through the thread context (side channel), keeping the promise type tiny.

namespace ccnoc::sim {

template <typename T>
class Generator {
 public:
  struct promise_type {
    T value{};
    std::exception_ptr exception;

    Generator get_return_object() {
      return Generator{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(T v) {
      value = std::move(v);
      return {};
    }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Generator() = default;
  explicit Generator(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Generator(Generator&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Generator& operator=(Generator&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;
  ~Generator() { destroy(); }

  /// Advance to the next yield. Returns false when the coroutine finished.
  bool next() {
    if (!handle_ || handle_.done()) return false;
    handle_.resume();
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    return !handle_.done();
  }

  /// Most recently yielded value. Only valid after next() returned true.
  [[nodiscard]] const T& value() const { return handle_.promise().value; }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = nullptr;
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ccnoc::sim
