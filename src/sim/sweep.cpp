#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace ccnoc::sim {

unsigned default_sweep_threads() {
  if (const char* env = std::getenv("CCNOC_SWEEP_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return unsigned(v);
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads > 0 ? threads : default_sweep_threads()) {}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const unsigned workers = unsigned(std::min<std::size_t>(threads_, n));

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // On failure, keep the exception of the lowest-indexed failing job: which
  // point fails must not depend on thread scheduling.
  std::mutex err_mutex;
  std::size_t err_index = n;
  std::exception_ptr err;

  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();

  if (err) std::rethrow_exception(err);
}

}  // namespace ccnoc::sim
