#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

/// \file tracer.hpp
/// Structured observability for the simulated platform: per-transaction
/// lifecycle spans (a coherence transaction followed request → hop →
/// directory → invalidation fan-out → ack), instantaneous events
/// (invalidations, write-buffer drains, directory state changes) and
/// time-resolved telemetry (per-link flit utilization per epoch, per-bank
/// queue depth, per-CPU stall attribution).
///
/// Output formats:
///  * Chrome trace-event JSON (write_chrome_json) — loads in Perfetto or
///    chrome://tracing; transactions are async spans keyed by their
///    globally-unique id, components are process/thread tracks.
///  * A machine-readable run report (write_report) — latency percentiles
///    per transaction kind (bucketed quantile estimator), per-epoch link
///    flits, per-epoch bank queue depth maxima and stall attribution.
///
/// Cost model: with mode kOff every recording call is one predictable
/// branch on a cached pointer — no allocation, no string work (verified by
/// bench_micro). kMetrics keeps only O(kinds + links + epochs) aggregates;
/// kFull additionally appends one fixed-size struct per event for the
/// Chrome export. All state is derived from simulation time, so two
/// identical runs produce byte-identical output.

namespace ccnoc::sim {

enum class TraceMode : std::uint8_t {
  kOff = 0,      ///< recording calls are a single branch; no state accrues
  kMetrics = 1,  ///< aggregates only (report JSON); no per-event storage
  kFull = 2,     ///< aggregates + full event log (Chrome trace JSON)
};

/// Data-side stall categories a CPU can be blocked on (plus instruction
/// fetch). Attributed at the same site that bumps the legacy stall
/// counters, so the two accountings reconcile exactly.
enum class StallCat : std::uint8_t { kLoad = 0, kStore = 1, kAtomic = 2, kIfetch = 3 };
inline constexpr std::size_t kNumStallCats = 4;

struct CpuStallAttr {
  std::uint64_t cycles[kNumStallCats] = {0, 0, 0, 0};
  [[nodiscard]] std::uint64_t of(StallCat c) const { return cycles[std::size_t(c)]; }
  /// Data-side stall total (everything except instruction fetch).
  [[nodiscard]] std::uint64_t data_total() const {
    return cycles[0] + cycles[1] + cycles[2];
  }
};

class Tracer {
 public:
  /// Track (pid) constants for the Chrome export: one "process" per
  /// component class, threads are component instances.
  static constexpr std::uint32_t kPidCpu = 1;
  static constexpr std::uint32_t kPidCache = 2;
  static constexpr std::uint32_t kPidBank = 3;
  static constexpr std::uint32_t kPidNoc = 4;

  /// One recorded Chrome event (kFull mode). Names are static strings —
  /// recording never copies or allocates.
  struct Event {
    Cycle ts = 0;
    Cycle dur = 0;               ///< 'X' (complete) events only
    std::uint64_t id = 0;        ///< async ('b'/'e'/'n') events: transaction id
    std::uint64_t args[2] = {0, 0};
    const char* arg_names[2] = {nullptr, nullptr};
    const char* name = nullptr;
    char ph = 'i';               ///< 'b','e','n','i','X','C'
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };

  void set_mode(TraceMode m) { mode_ = m; }
  [[nodiscard]] TraceMode mode() const { return mode_; }
  [[nodiscard]] bool on() const { return mode_ != TraceMode::kOff; }
  [[nodiscard]] bool full() const { return mode_ == TraceMode::kFull; }

  /// Epoch length for time-resolved telemetry (link flits, queue depths).
  void set_epoch_cycles(Cycle e) { epoch_ = e == 0 ? 1 : e; }
  [[nodiscard]] Cycle epoch_cycles() const { return epoch_; }

  /// Globally-unique, monotonically allocated transaction ids. Allocation
  /// is independent of the trace mode so ids mean the same thing whether or
  /// not a run is being traced.
  std::uint64_t alloc_txn() { return ++txn_seq_; }

  // --- transaction lifecycle ------------------------------------------------
  //
  // The recording entry points below are inline mode checks in front of
  // out-of-line slow paths: with mode kOff a call site costs one predictable
  // branch and never sets up the out-of-line call (bench_micro guards this).

  /// Open a span for transaction \p txn of static \p kind (e.g.
  /// "wti.load_miss") issued by \p node for \p addr.
  void txn_begin(Cycle now, std::uint64_t txn, const char* kind, std::uint32_t node,
                 Addr addr) {
    if (on()) [[unlikely]] txn_begin_slow(now, txn, kind, node, addr);
  }
  /// Instantaneous note inside an open span (fan-out counts, phase changes,
  /// NoC deliveries). Safe to call for txns without an open span (e.g.
  /// ifetch traffic when only the data side is being followed).
  void txn_note(Cycle now, std::uint64_t txn, const char* what, const char* arg_name,
                std::uint64_t arg, const char* arg_name2 = nullptr,
                std::uint64_t arg2 = 0) {
    if (full()) [[unlikely]] txn_note_slow(now, txn, what, arg_name, arg, arg_name2, arg2);
  }
  /// Close the span: records latency into the per-kind estimator and the
  /// response's critical-path hop count (paper Table 1 accounting).
  void txn_end(Cycle now, std::uint64_t txn, unsigned hops) {
    if (on()) [[unlikely]] txn_end_slow(now, txn, hops);
  }

  // --- generic Chrome events (recorded in kFull mode only) ------------------

  void complete(Cycle start, Cycle end, const char* name, std::uint32_t pid,
                std::uint32_t tid) {
    if (full()) [[unlikely]] complete_slow(start, end, name, pid, tid);
  }
  void instant(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
               const char* arg_name = nullptr, std::uint64_t arg = 0) {
    if (full()) [[unlikely]] instant_slow(now, name, pid, tid, arg_name, arg);
  }
  void counter(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
               std::uint64_t value) {
    if (full()) [[unlikely]] counter_slow(now, name, pid, tid, value);
  }

  /// Human-readable name for a (pid, tid) track in the Chrome export.
  /// Construction-time only; a no-op unless the event log is being kept
  /// (kFull), so untraced platforms pay nothing for naming.
  void set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  // --- CPU stall attribution ------------------------------------------------

  void add_stall(unsigned cpu, StallCat cat, Cycle cycles) {
    if (on()) [[unlikely]] add_stall_slow(cpu, cat, cycles);
  }
  [[nodiscard]] const std::vector<CpuStallAttr>& stall_attr() const { return stalls_; }

  // --- NoC link telemetry ---------------------------------------------------

  /// Register one directed link (or port); returns its id. Construction-time
  /// only. When tracing is off (the mode is fixed before components build)
  /// this returns a sentinel the accumulators treat as "not tracked", so an
  /// untraced platform allocates no telemetry state at all.
  unsigned register_link(std::string name);
  void add_link_flits(unsigned link, Cycle now, std::uint64_t flits) {
    if (on()) [[unlikely]] add_link_flits_slow(link, now, flits);
  }

  // --- bank queue telemetry -------------------------------------------------

  unsigned register_bank(std::string name);
  void bank_queue_depth(unsigned bank, Cycle now, std::size_t depth) {
    if (on()) [[unlikely]] bank_queue_depth_slow(bank, now, depth);
  }

  // --- inspection (tests, in-process consumers) -----------------------------

  struct KindStats {
    std::uint64_t count = 0;
    std::uint64_t hops_total = 0;
    Sample latency;  ///< cycles from txn_begin to txn_end
  };

  struct LinkTelemetry {
    std::string name;
    std::vector<std::uint64_t> flits_per_epoch;
  };
  struct BankTelemetry {
    std::string name;
    std::vector<std::uint64_t> max_depth_per_epoch;
  };

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t open_span_count() const { return open_.size(); }
  [[nodiscard]] const std::map<std::string, KindStats>& txn_stats() const {
    return kinds_;
  }
  /// Per-link / per-bank epoch series (registration order). The profiler
  /// records the same quantities at the same call sites; the reconcile
  /// tests hold the two layers to exact agreement.
  [[nodiscard]] const std::vector<LinkTelemetry>& link_telemetry() const {
    return links_;
  }
  [[nodiscard]] const std::vector<BankTelemetry>& bank_telemetry() const {
    return banks_;
  }

  // --- export ---------------------------------------------------------------

  /// Chrome trace-event JSON (object form, with metadata). Deterministic.
  [[nodiscard]] std::string chrome_json() const;
  /// Machine-readable run report (schema in EXPERIMENTS.md).
  [[nodiscard]] std::string report_json() const;

  /// Write helpers; return false (with a message on stderr) on I/O failure.
  bool write_chrome_json(const std::string& path) const;
  bool write_report(const std::string& path) const;

 private:
  // Cold: only reached when tracing is enabled; keeps untraced hot paths dense.
  __attribute__((cold)) void txn_begin_slow(Cycle now, std::uint64_t txn, const char* kind,
                      std::uint32_t node, Addr addr);
  __attribute__((cold)) void txn_note_slow(Cycle now, std::uint64_t txn, const char* what,
                     const char* arg_name, std::uint64_t arg, const char* arg_name2,
                     std::uint64_t arg2);
  __attribute__((cold)) void txn_end_slow(Cycle now, std::uint64_t txn, unsigned hops);
  __attribute__((cold)) void complete_slow(Cycle start, Cycle end, const char* name, std::uint32_t pid,
                     std::uint32_t tid);
  __attribute__((cold)) void instant_slow(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
                    const char* arg_name, std::uint64_t arg);
  __attribute__((cold)) void counter_slow(Cycle now, const char* name, std::uint32_t pid, std::uint32_t tid,
                    std::uint64_t value);
  __attribute__((cold)) void add_stall_slow(unsigned cpu, StallCat cat, Cycle cycles);
  __attribute__((cold)) void add_link_flits_slow(unsigned link, Cycle now, std::uint64_t flits);
  __attribute__((cold)) void bank_queue_depth_slow(unsigned bank, Cycle now, std::size_t depth);

  struct OpenSpan {
    const char* kind = nullptr;
    Cycle begin = 0;
  };
  [[nodiscard]] std::size_t epoch_of(Cycle now) const { return std::size_t(now / epoch_); }

  TraceMode mode_ = TraceMode::kOff;
  Cycle epoch_ = 1024;
  std::uint64_t txn_seq_ = 0;

  std::vector<Event> events_;
  std::unordered_map<std::uint64_t, OpenSpan> open_;
  std::map<std::string, KindStats> kinds_;
  std::vector<CpuStallAttr> stalls_;
  std::vector<LinkTelemetry> links_;
  std::vector<BankTelemetry> banks_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names_;
};

}  // namespace ccnoc::sim
