#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

/// \file tracer.hpp
/// Structured observability for the simulated platform: per-transaction
/// lifecycle spans (a coherence transaction followed request → hop →
/// directory → invalidation fan-out → ack), instantaneous events
/// (invalidations, write-buffer drains, directory state changes) and
/// time-resolved telemetry (per-link flit utilization per epoch, per-bank
/// queue depth, per-CPU stall attribution).
///
/// Output formats:
///  * Chrome trace-event JSON (write_chrome_json) — loads in Perfetto or
///    chrome://tracing; transactions are async spans keyed by their
///    globally-unique id, components are process/thread tracks.
///  * A machine-readable run report (write_report) — latency percentiles
///    per transaction kind (bucketed quantile estimator), per-epoch link
///    flits, per-epoch bank queue depth maxima and stall attribution.
///
/// Cost model: with mode kOff every recording call is one predictable
/// branch on a cached pointer — no allocation, no string work (verified by
/// bench_micro). kMetrics keeps only O(kinds + links + epochs) aggregates;
/// kFull additionally appends one fixed-size struct per event for the
/// Chrome export. All state is derived from simulation time, so two
/// identical runs produce byte-identical output.
///
/// Parallel runs (sim/parallel.hpp): the tracer is parallel-native. Every
/// recording hook names the NoC node whose event is executing — the node
/// the parallel engine maps to exactly one domain, and therefore exactly
/// one worker thread. Under the parallel engine each hook appends a
/// fixed-size record to its domain's shard (the Network::NodeShard
/// pattern), stamped with a canonical order key
///
///     (cycle, recording node, per-node sequence number)
///
/// and finalize_sharded() sorts the merged record stream by that key and
/// replays it through the exact serial aggregation code. Per-node record
/// order is partition-invariant (one worker owns a domain, the node→domain
/// map is fixed), cross-node dependent records are ≥ 1 cycle apart (NoC
/// latency), and every same-cycle cross-node fold is commutative (sums,
/// maxima, OR-masks, integral Sample::add) — so trace JSON and the run
/// report are byte-identical to the serial reference for any domain or
/// worker count. High-rate scalar hooks (add_stall, add_link_flits) skip
/// the record stream entirely and accumulate per-shard sums merged
/// elementwise, which is exact for the same commutativity reason.

namespace ccnoc::sim {

enum class TraceMode : std::uint8_t {
  kOff = 0,      ///< recording calls are a single branch; no state accrues
  kMetrics = 1,  ///< aggregates only (report JSON); no per-event storage
  kFull = 2,     ///< aggregates + full event log (Chrome trace JSON)
};

/// Data-side stall categories a CPU can be blocked on (plus instruction
/// fetch). Attributed at the same site that bumps the legacy stall
/// counters, so the two accountings reconcile exactly.
enum class StallCat : std::uint8_t { kLoad = 0, kStore = 1, kAtomic = 2, kIfetch = 3 };
inline constexpr std::size_t kNumStallCats = 4;

struct CpuStallAttr {
  std::uint64_t cycles[kNumStallCats] = {0, 0, 0, 0};
  [[nodiscard]] std::uint64_t of(StallCat c) const { return cycles[std::size_t(c)]; }
  /// Data-side stall total (everything except instruction fetch).
  [[nodiscard]] std::uint64_t data_total() const {
    return cycles[0] + cycles[1] + cycles[2];
  }
};

class Tracer {
 public:
  /// Track (pid) constants for the Chrome export: one "process" per
  /// component class, threads are component instances.
  static constexpr std::uint32_t kPidCpu = 1;
  static constexpr std::uint32_t kPidCache = 2;
  static constexpr std::uint32_t kPidBank = 3;
  static constexpr std::uint32_t kPidNoc = 4;

  /// One recorded Chrome event (kFull mode). Names are static strings —
  /// recording never copies or allocates. `node`/`seq` are the canonical
  /// order stamp (recording NoC node, per-node event sequence); they are
  /// not emitted in the JSON but define the export order, which makes the
  /// Chrome output independent of the engine that produced it.
  struct Event {
    Cycle ts = 0;
    Cycle dur = 0;               ///< 'X' (complete) events only
    std::uint64_t id = 0;        ///< async ('b'/'e'/'n') events: transaction id
    std::uint64_t seq = 0;       ///< per-node event sequence (order stamp)
    std::uint64_t args[2] = {0, 0};
    const char* arg_names[2] = {nullptr, nullptr};
    const char* name = nullptr;
    char ph = 'i';               ///< 'b','e','n','i','X','C'
    NodeId node = 0;             ///< recording NoC node (order stamp)
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };

  void set_mode(TraceMode m) { mode_ = m; }
  [[nodiscard]] TraceMode mode() const { return mode_; }
  [[nodiscard]] bool on() const { return mode_ != TraceMode::kOff; }
  [[nodiscard]] bool full() const { return mode_ == TraceMode::kFull; }

  /// Epoch length for time-resolved telemetry (link flits, queue depths).
  void set_epoch_cycles(Cycle e) { epoch_ = e == 0 ? 1 : e; }
  [[nodiscard]] Cycle epoch_cycles() const { return epoch_; }

  /// Globally-unique, monotonically allocated transaction ids. Allocation
  /// is independent of the trace mode so ids mean the same thing whether or
  /// not a run is being traced.
  std::uint64_t alloc_txn() { return ++txn_seq_; }

  // --- transaction lifecycle ------------------------------------------------
  //
  // The recording entry points below are inline mode checks in front of
  // out-of-line slow paths: with mode kOff a call site costs one predictable
  // branch and never sets up the out-of-line call (bench_micro guards this).
  //
  // `node` is always the NoC node whose event is executing the call — the
  // sharding/order key — which for a span need not be the node that opened
  // it (e.g. a MESI fetch-invalidate response closes the *requester's* span
  // from the owner's node).

  /// Open a span for transaction \p txn of static \p kind (e.g.
  /// "wti.load_miss") issued by controller track \p tid on NoC node \p node
  /// for \p addr.
  void txn_begin(Cycle now, std::uint64_t txn, const char* kind, NodeId node,
                 std::uint32_t tid, Addr addr) {
    if (on()) [[unlikely]] txn_begin_slow(now, txn, kind, node, tid, addr);
  }
  /// Instantaneous note inside an open span (fan-out counts, phase changes,
  /// NoC deliveries). Safe to call for txns without an open span (e.g.
  /// ifetch traffic when only the data side is being followed).
  void txn_note(Cycle now, std::uint64_t txn, NodeId node, const char* what,
                const char* arg_name, std::uint64_t arg,
                const char* arg_name2 = nullptr, std::uint64_t arg2 = 0) {
    if (full()) [[unlikely]]
      txn_note_slow(now, txn, node, what, arg_name, arg, arg_name2, arg2);
  }
  /// Close the span: records latency into the per-kind estimator and the
  /// response's critical-path hop count (paper Table 1 accounting).
  void txn_end(Cycle now, std::uint64_t txn, NodeId node, unsigned hops) {
    if (on()) [[unlikely]] txn_end_slow(now, txn, node, hops);
  }

  // --- generic Chrome events (recorded in kFull mode only) ------------------

  void complete(Cycle start, Cycle end, NodeId node, const char* name,
                std::uint32_t pid, std::uint32_t tid) {
    if (full()) [[unlikely]] complete_slow(start, end, node, name, pid, tid);
  }
  void instant(Cycle now, NodeId node, const char* name, std::uint32_t pid,
               std::uint32_t tid, const char* arg_name = nullptr,
               std::uint64_t arg = 0) {
    if (full()) [[unlikely]] instant_slow(now, node, name, pid, tid, arg_name, arg);
  }
  void counter(Cycle now, NodeId node, const char* name, std::uint32_t pid,
               std::uint32_t tid, std::uint64_t value) {
    if (full()) [[unlikely]] counter_slow(now, node, name, pid, tid, value);
  }

  /// Human-readable name for a (pid, tid) track in the Chrome export.
  /// Construction-time only; a no-op unless the event log is being kept
  /// (kFull), so untraced platforms pay nothing for naming.
  void set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  // --- CPU stall attribution ------------------------------------------------

  void add_stall(unsigned cpu, StallCat cat, Cycle cycles) {
    if (on()) [[unlikely]] add_stall_slow(cpu, cat, cycles);
  }
  [[nodiscard]] const std::vector<CpuStallAttr>& stall_attr() const { return stalls_; }

  // --- NoC link telemetry ---------------------------------------------------

  /// Register one directed link (or port); returns its id. Construction-time
  /// only. When tracing is off (the mode is fixed before components build)
  /// this returns a sentinel the accumulators treat as "not tracked", so an
  /// untraced platform allocates no telemetry state at all.
  unsigned register_link(std::string name);
  void add_link_flits(unsigned link, Cycle now, std::uint64_t flits) {
    if (on()) [[unlikely]] add_link_flits_slow(link, now, flits);
  }

  // --- bank queue telemetry -------------------------------------------------

  /// \p node is the bank's NoC node — the order/shard key for the depth
  /// samples it emits.
  unsigned register_bank(std::string name, NodeId node);
  void bank_queue_depth(unsigned bank, Cycle now, std::size_t depth) {
    if (on()) [[unlikely]] bank_queue_depth_slow(bank, now, depth);
  }

  // --- parallel-engine sharding ---------------------------------------------

  /// Enter sharded recording for a parallel run over \p domains domains
  /// (node → domain is node % domains, matching Simulator::domain_of).
  /// Until finalize_sharded(), hooks append order-stamped records to their
  /// domain's shard instead of touching shared aggregate state. Call after
  /// all components are built and registered, immediately before the engine
  /// starts; nothing may call hooks from outside a domain in between.
  void begin_sharded(unsigned domains);
  /// Merge all shards deterministically: sort records by (cycle, node,
  /// per-node seq), replay them through the serial aggregation paths, fold
  /// the scalar accumulators in domain order, and return to direct-apply
  /// recording.
  void finalize_sharded();
  [[nodiscard]] bool sharded() const { return sharded_; }

  /// Run-context block for the report JSON (schema v1 "run" object): the
  /// engine actually used, its domain count, why a partitioned platform
  /// fell back to the serial engine (empty otherwise), and the active
  /// observer set. Set by the runner once the engine choice is made.
  void set_run_context(std::string engine, unsigned domains,
                       std::string fallback_reason, std::string observers);

  /// Extra top-level JSON members appended verbatim to report_json() before
  /// its closing brace (e.g. `,"latency":{...}` from the latency
  /// observatory). Empty (the default) leaves the report byte-identical to
  /// its historical form. Set by the runner after the run completes.
  void set_report_extra(std::string json_fragment) {
    report_extra_ = std::move(json_fragment);
  }

  // --- inspection (tests, in-process consumers) -----------------------------

  struct KindStats {
    std::uint64_t count = 0;
    std::uint64_t hops_total = 0;
    Sample latency;  ///< cycles from txn_begin to txn_end
  };

  struct LinkTelemetry {
    std::string name;
    std::vector<std::uint64_t> flits_per_epoch;
  };
  struct BankTelemetry {
    std::string name;
    std::vector<std::uint64_t> max_depth_per_epoch;
  };

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t open_span_count() const { return open_.size(); }
  [[nodiscard]] const std::map<std::string, KindStats>& txn_stats() const {
    return kinds_;
  }
  /// Per-link / per-bank epoch series (registration order). The profiler
  /// records the same quantities at the same call sites; the reconcile
  /// tests hold the two layers to exact agreement.
  [[nodiscard]] const std::vector<LinkTelemetry>& link_telemetry() const {
    return links_;
  }
  [[nodiscard]] const std::vector<BankTelemetry>& bank_telemetry() const {
    return banks_;
  }

  // --- export ---------------------------------------------------------------

  /// Chrome trace-event JSON (object form, with metadata). Events are
  /// emitted in canonical (ts, node, seq) order, so the export is
  /// byte-identical between the serial and parallel engines. Deterministic.
  [[nodiscard]] std::string chrome_json() const;
  /// Machine-readable run report (schema in EXPERIMENTS.md).
  [[nodiscard]] std::string report_json() const;

  /// Write helpers; return false (with a message on stderr) on I/O failure.
  bool write_chrome_json(const std::string& path) const;
  bool write_report(const std::string& path) const;

 private:
  // Cold: only reached when tracing is enabled; keeps untraced hot paths dense.
  __attribute__((cold)) void txn_begin_slow(Cycle now, std::uint64_t txn, const char* kind,
                      NodeId node, std::uint32_t tid, Addr addr);
  __attribute__((cold)) void txn_note_slow(Cycle now, std::uint64_t txn, NodeId node,
                     const char* what, const char* arg_name, std::uint64_t arg,
                     const char* arg_name2, std::uint64_t arg2);
  __attribute__((cold)) void txn_end_slow(Cycle now, std::uint64_t txn, NodeId node,
                                          unsigned hops);
  __attribute__((cold)) void complete_slow(Cycle start, Cycle end, NodeId node,
                     const char* name, std::uint32_t pid, std::uint32_t tid);
  __attribute__((cold)) void instant_slow(Cycle now, NodeId node, const char* name,
                    std::uint32_t pid, std::uint32_t tid, const char* arg_name,
                    std::uint64_t arg);
  __attribute__((cold)) void counter_slow(Cycle now, NodeId node, const char* name,
                    std::uint32_t pid, std::uint32_t tid, std::uint64_t value);
  __attribute__((cold)) void add_stall_slow(unsigned cpu, StallCat cat, Cycle cycles);
  __attribute__((cold)) void add_link_flits_slow(unsigned link, Cycle now, std::uint64_t flits);
  __attribute__((cold)) void bank_queue_depth_slow(unsigned bank, Cycle now, std::size_t depth);

  struct OpenSpan {
    const char* kind = nullptr;
    Cycle begin = 0;
  };

  /// One sharded hook record. Sorting the merged stream by
  /// (cycle, node, seq) — all three deterministic functions of the
  /// simulated platform — defines the canonical replay order.
  struct Op {
    enum class K : std::uint8_t {
      kTxnBegin, kTxnNote, kTxnEnd, kComplete, kInstant, kCounter, kBankDepth,
    };
    Cycle cycle = 0;         ///< primary order key (op-defining cycle)
    std::uint64_t seq = 0;   ///< per-node record sequence (tertiary key)
    std::uint64_t id = 0;    ///< txn id / bank id
    std::uint64_t a = 0, b = 0;
    const char* name = nullptr;
    const char* an0 = nullptr;
    const char* an1 = nullptr;
    NodeId node = 0;         ///< recording node (secondary key)
    K k{};
    std::uint32_t pid = 0, tid = 0;
  };

  /// Per-domain recording shard. Aligned so concurrently appending domains
  /// never share a cache line (the Network::NodeShard discipline).
  struct alignas(64) Shard {
    std::vector<Op> ops;
    std::vector<std::uint64_t> node_seq;  ///< per-node record counters
    std::vector<CpuStallAttr> stalls;     ///< add_stall accumulator
    std::vector<std::vector<std::uint64_t>> link_flits;  ///< per-link epoch sums
  };

  /// Append \p op to the shard owning \p node, stamping the order key.
  void record(NodeId node, Op op);

  // Direct-apply paths: shared verbatim between the serial engine and the
  // post-run replay, so both produce identical state by construction.
  void apply_txn_begin(Cycle now, std::uint64_t txn, const char* kind, NodeId node,
                       std::uint32_t tid, Addr addr);
  void apply_txn_note(Cycle now, std::uint64_t txn, NodeId node, const char* what,
                      const char* an0, std::uint64_t a, const char* an1,
                      std::uint64_t b);
  void apply_txn_end(Cycle now, std::uint64_t txn, NodeId node, unsigned hops);
  void apply_complete(Cycle start, Cycle end, NodeId node, const char* name,
                      std::uint32_t pid, std::uint32_t tid);
  void apply_instant(Cycle now, NodeId node, const char* name, std::uint32_t pid,
                     std::uint32_t tid, const char* an0, std::uint64_t a);
  void apply_counter(Cycle now, NodeId node, const char* name, std::uint32_t pid,
                     std::uint32_t tid, std::uint64_t value);
  void apply_bank_depth(Cycle now, unsigned bank, std::size_t depth);

  /// Stamp and push one Chrome event for \p node: per-node event sequence
  /// numbers make (ts, node, seq) a total order over the log.
  void push_event(NodeId node, Event e);

  [[nodiscard]] std::size_t epoch_of(Cycle now) const { return std::size_t(now / epoch_); }

  TraceMode mode_ = TraceMode::kOff;
  Cycle epoch_ = 1024;
  std::uint64_t txn_seq_ = 0;

  std::vector<Event> events_;
  std::unordered_map<std::uint64_t, OpenSpan> open_;
  std::map<std::string, KindStats> kinds_;
  std::vector<CpuStallAttr> stalls_;
  std::vector<LinkTelemetry> links_;
  std::vector<BankTelemetry> banks_;
  std::vector<NodeId> bank_nodes_;  ///< owner NoC node per registered bank
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names_;
  std::vector<std::uint64_t> event_seq_;  ///< per-node Chrome event counters

  bool sharded_ = false;
  std::vector<Shard> shards_;

  std::string run_engine_ = "serial";
  unsigned run_domains_ = 1;
  std::string run_fallback_;
  std::string run_observers_;
  std::string report_extra_;
};

}  // namespace ccnoc::sim
