#include "sim/types.hpp"

#include <stdexcept>

namespace ccnoc::sim {

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::string what = std::string("CCNOC_ASSERT failed: ") + expr + " at " + file +
                     ":" + std::to_string(line) + " — " + msg;
  throw std::logic_error(what);
}

}  // namespace ccnoc::sim
