#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

/// \file parallel.hpp
/// Conservative parallel discrete-event engine over the domain partition of
/// a Simulator (simulator.hpp). The platform is split into independently
/// steppable domains — each NoC node (cache tile or memory bank) maps to
/// one — and the GMN fabric's `min_latency` becomes the lookahead horizon:
///
///   epoch:  M = min over all domains of the next event time
///           every domain may execute all events with  when < M + L
///
/// which is safe because the only cross-domain traffic is NoC fabric
/// arrivals, and a packet injected at time t >= M reaches its destination's
/// domain no earlier than t + flits + L > M + L (the flits term is the
/// ingress serialization; L is the fabric-crossing floor). Cross-domain
/// arrivals are exchanged through a sharded mailbox at an epoch barrier and
/// inserted with a canonical (cycle, source node, per-source sequence)
/// order key, so the merged event order — and therefore every statistic and
/// output — is a pure function of the configuration and seed, byte-identical
/// for any domain count and worker count, including the serial reference.
///
/// Determinism argument (why domains may run an epoch unsynchronized):
///  - every component schedules only events for its own node; the only
///    cross-node channel is Network::send, which the engine intercepts at
///    the fabric-crossing point;
///  - same-cycle events of *different* nodes commute: each touches only its
///    node's state plus commutative sinks (per-node statistic shards folded
///    in node order, per-domain coverage shards OR-folded);
///  - same-cycle events of the *same* node are ordered by keys that do not
///    depend on the partition (canonical keys for fabric arrivals, which
///    always sort first; per-queue insertion order for local events, whose
///    relative order per node is reproduced in every partition).

namespace ccnoc::sim {

/// Canonical order key for a fabric arrival: source node then per-source
/// sequence. Bit 63 stays clear, so arrivals sort ahead of same-cycle local
/// events (EventQueue::kLocalOrder) in every partition.
[[nodiscard]] inline std::uint64_t cross_order_key(NodeId src, std::uint64_t seq) {
  CCNOC_ASSERT(seq < (std::uint64_t{1} << 40), "per-source NoC sequence overflow");
  return (std::uint64_t(src) + 1) << 40 | seq;
}

/// Sense-reversing spin barrier. The epoch loop synchronizes a handful of
/// workers hundreds of thousands of times per run (epochs are only
/// min_latency cycles long), which is exactly the regime where futex-parking
/// primitives lose to a bounded spin; the spin yields after a short burst so
/// oversubscribed hosts still make progress. An optional abort flag lets a
/// failing worker release everyone instead of deadlocking the barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties, const std::atomic<bool>* abort = nullptr)
      : parties_(parties), abort_(abort) {}

  /// \p sense is the caller's thread-local phase flag (start false).
  void arrive_and_wait(bool& sense);

 private:
  const unsigned parties_;
  const std::atomic<bool>* abort_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<bool> phase_{false};
};

struct ParallelConfig {
  unsigned domains = 1;   ///< domain count; must match the Simulator's partition
  Cycle lookahead = 1;    ///< epoch window length; the GMN min_latency. >= 1.
  unsigned workers = 0;   ///< worker threads; 0 = min(domains, hardware or the
                          ///< CCNOC_PARALLEL_WORKERS environment variable)
};

/// Epoch-barrier engine. One instance drives one run; the NoC posts its
/// fabric crossings through post() (installed as the network's cross-domain
/// hook by core::System) and the engine delivers them into the destination
/// domain's queue at the next barrier, ordered by canonical key.
class ParallelEngine {
 public:
  ParallelEngine(Simulator& sim, ParallelConfig cfg);

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Post a fabric arrival: run \p cb at \p when in the domain owning
  /// \p dst, ordered by cross_order_key(\p src, \p seq). Must be called
  /// from an executing event of the domain owning \p src (worker-owned
  /// outbox cells make the post lock-free).
  void post(NodeId src, NodeId dst, Cycle when, std::uint64_t seq,
            EventQueue::Callback cb);

  /// Run the partitioned platform to completion (all queues and mailboxes
  /// empty) or until the next epoch base would pass \p limit (events at
  /// exactly \p limit still execute, matching EventQueue::run). Returns the
  /// number of events executed across all domains.
  std::uint64_t run(Cycle limit = ~Cycle{0});

  // --- live-progress publication (sim::Heartbeat) --------------------------
  /// Point-in-time copy of the engine's progress counters, safe to take
  /// from any thread while the epoch loop runs (relaxed atomics; the values
  /// are telemetry, not synchronization).
  struct ProgressSnapshot {
    struct Domain {
      Cycle cycle = 0;              ///< domain clock after its last epoch
      std::uint64_t events = 0;     ///< events drained by the domain queue
      std::uint64_t mailbox = 0;    ///< crossings drained at the last barrier
    };
    std::uint64_t epochs = 0;
    std::vector<Domain> domains;
    std::vector<std::uint64_t> worker_barrier_wait_ns;  ///< cumulative
  };
  /// Turn on barrier-wait timing (two clock reads per barrier per worker).
  /// The cycle/event/mailbox counters are always published — they are one
  /// relaxed store per domain per epoch. Call before run().
  void enable_progress_timing() { progress_timing_ = true; }
  [[nodiscard]] ProgressSnapshot progress() const;

 private:
  struct Crossing {
    Cycle when = 0;
    std::uint64_t key = 0;
    EventQueue::Callback cb;
  };
  /// One outbox cell per (source domain, destination domain) pair; only the
  /// worker executing the source domain appends, only the worker owning the
  /// destination domain drains (after a barrier), so cells need no locks.
  /// Padded out so two workers never write the same cache line.
  struct alignas(64) Cell {
    std::vector<Crossing> recs;
  };
  struct alignas(64) WorkerMin {
    std::atomic<Cycle> t{~Cycle{0}};
  };
  struct alignas(64) DomainProgress {
    std::atomic<Cycle> cycle{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<std::uint64_t> mailbox{0};
  };
  struct alignas(64) WorkerWait {
    std::atomic<std::uint64_t> ns{0};
  };

  void worker_loop(unsigned w);
  std::size_t drain_into(unsigned domain);

  Simulator& sim_;
  ParallelConfig cfg_;
  unsigned workers_;
  std::vector<Cell> cells_;  ///< [src_domain * domains + dst_domain]
  std::atomic<bool> aborted_{false};
  SpinBarrier barrier_;
  std::unique_ptr<WorkerMin[]> worker_min_;
  std::unique_ptr<DomainProgress[]> progress_;
  std::unique_ptr<WorkerWait[]> worker_wait_;
  std::atomic<std::uint64_t> epochs_{0};
  bool progress_timing_ = false;
  Cycle limit_ = ~Cycle{0};
  std::mutex error_mu_;
  std::exception_ptr error_;  ///< first worker failure, rethrown from run()
};

}  // namespace ccnoc::sim
