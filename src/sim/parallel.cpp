#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace ccnoc::sim {

namespace {

unsigned default_parallel_workers(unsigned domains) {
  if (const char* env = std::getenv("CCNOC_PARALLEL_WORKERS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return std::min(unsigned(v), domains);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(hw, domains);
}

}  // namespace

void SpinBarrier::arrive_and_wait(bool& sense) {
  const bool my = !sense;
  sense = my;
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    phase_.store(my, std::memory_order_release);
    return;
  }
  unsigned spins = 0;
  while (phase_.load(std::memory_order_acquire) != my) {
    if (abort_ != nullptr && abort_->load(std::memory_order_acquire)) return;
    if (++spins > 4096) std::this_thread::yield();
  }
}

ParallelEngine::ParallelEngine(Simulator& sim, ParallelConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      workers_(cfg.workers != 0 ? std::min(cfg.workers, cfg.domains)
                                : default_parallel_workers(cfg.domains)),
      cells_(std::size_t(cfg.domains) * cfg.domains),
      barrier_(workers_, &aborted_),
      worker_min_(std::make_unique<WorkerMin[]>(workers_)),
      progress_(std::make_unique<DomainProgress[]>(cfg.domains)),
      worker_wait_(std::make_unique<WorkerWait[]>(workers_)) {
  CCNOC_ASSERT(cfg_.domains >= 1, "parallel engine needs at least one domain");
  CCNOC_ASSERT(cfg_.domains == sim.num_domains(),
               "engine domain count does not match the Simulator partition");
  // A zero lookahead would make every epoch empty: a packet could arrive in
  // the very cycle it was sent, so no domain could safely run ahead at all.
  CCNOC_ASSERT(cfg_.lookahead >= 1, "conservative lookahead must be positive");
}

void ParallelEngine::post(NodeId src, NodeId dst, Cycle when, std::uint64_t seq,
                          EventQueue::Callback cb) {
  const unsigned s = sim_.domain_of(src);
  const unsigned d = sim_.domain_of(dst);
  cells_[std::size_t(s) * cfg_.domains + d].recs.push_back(
      Crossing{when, cross_order_key(src, seq), std::move(cb)});
}

std::size_t ParallelEngine::drain_into(unsigned domain) {
  EventQueue& q = sim_.domain_queue(domain);
  std::size_t drained = 0;
  for (unsigned s = 0; s < cfg_.domains; ++s) {
    Cell& c = cells_[std::size_t(s) * cfg_.domains + domain];
    // Insertion order is irrelevant: the queue orders by (cycle, canonical
    // key), and keys are unique, so any arrival interleaving merges to the
    // same execution order.
    for (Crossing& r : c.recs) q.schedule_keyed(r.when, r.key, std::move(r.cb));
    drained += c.recs.size();
    c.recs.clear();
  }
  return drained;
}

ParallelEngine::ProgressSnapshot ParallelEngine::progress() const {
  ProgressSnapshot s;
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.domains.resize(cfg_.domains);
  for (unsigned d = 0; d < cfg_.domains; ++d) {
    s.domains[d].cycle = progress_[d].cycle.load(std::memory_order_relaxed);
    s.domains[d].events = progress_[d].events.load(std::memory_order_relaxed);
    s.domains[d].mailbox = progress_[d].mailbox.load(std::memory_order_relaxed);
  }
  s.worker_barrier_wait_ns.resize(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    s.worker_barrier_wait_ns[w] =
        worker_wait_[w].ns.load(std::memory_order_relaxed);
  }
  return s;
}

void ParallelEngine::worker_loop(unsigned w) {
  using SteadyClock = std::chrono::steady_clock;
  bool sense = false;
  // Barrier-wait attribution is the one progress counter that costs clock
  // reads on the epoch loop, so it only runs when a heartbeat asked for it.
  const auto timed_barrier = [&] {
    if (!progress_timing_) {
      barrier_.arrive_and_wait(sense);
      return;
    }
    const auto t0 = SteadyClock::now();
    barrier_.arrive_and_wait(sense);
    const auto dt = SteadyClock::now() - t0;
    worker_wait_[w].ns.fetch_add(
        std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()),
        std::memory_order_relaxed);
  };
  while (true) {
    // Barrier A: every worker finished executing (and posting) the previous
    // epoch, so the mailbox cells targeting our domains are complete.
    timed_barrier();
    if (aborted_.load(std::memory_order_acquire)) return;

    Cycle mine = ~Cycle{0};
    for (unsigned d = w; d < cfg_.domains; d += workers_) {
      const std::size_t drained = drain_into(d);
      progress_[d].mailbox.store(drained, std::memory_order_relaxed);
      const EventQueue& q = sim_.domain_queue(d);
      if (!q.empty()) mine = std::min(mine, q.next_event_at());
    }
    worker_min_[w].t.store(mine, std::memory_order_release);

    // Barrier B: all minima published; every worker derives the same epoch
    // base M and horizon, so the stop decision needs no leader.
    timed_barrier();
    if (aborted_.load(std::memory_order_acquire)) return;

    Cycle m = ~Cycle{0};
    for (unsigned i = 0; i < workers_; ++i) {
      m = std::min(m, worker_min_[i].t.load(std::memory_order_acquire));
    }
    if (m == ~Cycle{0} || m > limit_) return;  // drained, or past the cycle guard
    if (w == 0) epochs_.fetch_add(1, std::memory_order_relaxed);

    Cycle horizon = m + cfg_.lookahead;  // execute when < horizon
    if (limit_ != ~Cycle{0}) horizon = std::min(horizon, limit_ + 1);
    for (unsigned d = w; d < cfg_.domains; d += workers_) {
      EventQueue& q = sim_.domain_queue(d);
      Simulator::ExecScope scope(sim_, q);
      q.run_before(horizon);
      progress_[d].cycle.store(q.now(), std::memory_order_relaxed);
      progress_[d].events.store(q.executed(), std::memory_order_relaxed);
    }
  }
}

std::uint64_t ParallelEngine::run(Cycle limit) {
  limit_ = limit;
  if (workers_ <= 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      pool.emplace_back([this, w] {
        try {
          worker_loop(w);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!error_) error_ = std::current_exception();
          }
          // Release every worker spinning at a barrier, then bail.
          aborted_.store(true, std::memory_order_release);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (error_) std::rethrow_exception(error_);
  }
  std::uint64_t executed = 0;
  for (unsigned d = 0; d < cfg_.domains; ++d) {
    executed += sim_.domain_queue(d).executed();
  }
  return executed;
}

}  // namespace ccnoc::sim
