#include "sim/latency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <tuple>

namespace ccnoc::sim {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kWbufWait: return "wbuf_wait";
    case Phase::kNocIngress: return "noc_ingress";
    case Phase::kNocTransit: return "noc_transit";
    case Phase::kBankQueue: return "bank_queue";
    case Phase::kDirService: return "dir_service";
    case Phase::kFanoutAcks: return "fanout_acks";
    case Phase::kOwnerFetch: return "owner_fetch";
    case Phase::kRetry: return "retry";
    case Phase::kL2Fill: return "l2_fill";
    case Phase::kL2Recall: return "l2_recall";
    case Phase::kFinish: return "finish";
  }
  return "?";
}

// --- LogHistogram ------------------------------------------------------------

namespace {
/// Sub-bucket precision: 2^kSubBits buckets per power of two above the
/// linear range, i.e. relative quantization error ≤ 2^-kSubBits.
constexpr unsigned kSubBits = 5;
constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;  // 32
}  // namespace

std::size_t LogHistogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return std::size_t(v);
  // exp = position of the MSB (≥ kSubBits); group g ≥ 1 spans [2^exp, 2^(exp+1))
  // with kSub equal-width sub-buckets. Continuous with the linear range:
  // g == 1 has width-1 sub-buckets, so bucket_of(v) == v up to 2*kSub.
  const unsigned exp = 63u - unsigned(std::countl_zero(v));
  const unsigned g = exp - kSubBits + 1;
  const std::uint64_t sub = (v >> (exp - kSubBits)) & (kSub - 1);
  return std::size_t((std::uint64_t(g) << kSubBits) + sub);
}

std::uint64_t LogHistogram::bucket_upper_edge(std::size_t b) {
  if (b < kSub) return std::uint64_t(b);
  const std::uint64_t g = std::uint64_t(b) >> kSubBits;
  const std::uint64_t sub = std::uint64_t(b) & (kSub - 1);
  const std::uint64_t width = std::uint64_t{1} << (g - 1);
  const std::uint64_t low = (kSub + sub) << (g - 1);
  return low + width - 1;
}

void LogHistogram::add(std::uint64_t v) {
  const std::size_t b = bucket_of(v);
  if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void LogHistogram::merge(const LogHistogram& o) {
  if (o.count_ == 0) return;
  if (buckets_.size() < o.buckets_.size()) buckets_.resize(o.buckets_.size(), 0);
  for (std::size_t b = 0; b < o.buckets_.size(); ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  // Rank convention shared with Sample::percentile: the ceil(p·count)-th
  // smallest observation (1-based), never below the first.
  const double want = std::max(1.0, std::ceil(p * double(count_)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cum += buckets_[b];
    if (double(cum) >= want) {
      return std::min(std::max(bucket_upper_edge(b), min()), max_);
    }
  }
  return max_;
}

// --- sharded recording -------------------------------------------------------

void LatencyObservatory::begin_sharded(unsigned domains) {
  CCNOC_ASSERT(!sharded_, "latency sharding entered twice");
  if (!on() || domains <= 1) return;
  shards_.assign(domains, Shard{});
  sharded_ = true;
}

void LatencyObservatory::record(NodeId node, Op op) {
  Shard& sh = shards_[node % shards_.size()];
  if (sh.node_seq.size() <= node) sh.node_seq.resize(node + 1, 0);
  op.node = node;
  op.seq = sh.node_seq[node]++;
  sh.ops.push_back(op);
}

void LatencyObservatory::finalize_sharded() {
  if (!sharded_) return;
  sharded_ = false;

  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.ops.size();
  std::vector<Op> ops;
  ops.reserve(total);
  for (Shard& sh : shards_) {
    ops.insert(ops.end(), sh.ops.begin(), sh.ops.end());
  }
  // (cycle, node, seq) is a total order: seq is per-node monotone, so no two
  // records compare equal and the sort needs no stability.
  std::sort(ops.begin(), ops.end(), [](const Op& x, const Op& y) {
    return std::tie(x.cycle, x.node, x.seq) < std::tie(y.cycle, y.node, y.seq);
  });
  for (const Op& op : ops) {
    switch (op.k) {
      case Op::K::kBegin:
        apply_begin(op.cycle, op.txn, op.kind, op.node);
        break;
      case Op::K::kMark:
        apply_mark(op.txn, op.node, op.ph, op.boundary);
        break;
      case Op::K::kEnd:
        apply_end(op.cycle, op.txn, op.node);
        break;
    }
  }
  shards_.clear();
}

// --- hook slow paths ---------------------------------------------------------

void LatencyObservatory::begin_slow(Cycle now, std::uint64_t txn,
                                    const char* kind, NodeId node) {
  if (!on()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kBegin;
    op.txn = txn;
    op.kind = kind;
    record(node, op);
    return;
  }
  apply_begin(now, txn, kind, node);
}

void LatencyObservatory::mark_slow(Cycle now, std::uint64_t txn, NodeId node,
                                   Phase ph, Cycle boundary) {
  if (!on()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kMark;
    op.txn = txn;
    op.ph = ph;
    op.boundary = boundary;
    record(node, op);
    return;
  }
  apply_mark(txn, node, ph, boundary);
}

void LatencyObservatory::end_slow(Cycle now, std::uint64_t txn, NodeId node) {
  if (!on()) return;
  if (sharded_) {
    Op op;
    op.cycle = now;
    op.k = Op::K::kEnd;
    op.txn = txn;
    record(node, op);
    return;
  }
  apply_end(now, txn, node);
}

// --- direct-apply paths ------------------------------------------------------

void LatencyObservatory::apply_begin(Cycle now, std::uint64_t txn,
                                     const char* kind, NodeId node) {
  (void)node;
  open_.emplace(txn, OpenTxn{kind, now, now, {}});
}

void LatencyObservatory::apply_mark(std::uint64_t txn, NodeId node, Phase ph,
                                    Cycle boundary) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;  // opened before the observatory was enabled
  OpenTxn& t = it->second;
  // Clamp monotone: a boundary computed before an earlier mark's (e.g. a
  // service completion stamped at enqueue time) never rolls attribution
  // back, it just contributes zero. Telescoping is preserved exactly.
  const Cycle b = std::max(boundary, t.last);
  const std::uint64_t dur = b - t.last;
  t.last = b;
  t.phases[std::size_t(ph)] += dur;
  if (dur != 0) node_phases_[node][std::size_t(ph)] += dur;
}

void LatencyObservatory::apply_end(Cycle now, std::uint64_t txn, NodeId node) {
  auto it = open_.find(txn);
  if (it == open_.end()) return;
  OpenTxn t = it->second;
  open_.erase(it);
  // The residual from the last boundary to completion is the finish phase;
  // clamping end to the boundary keeps phase sums ≡ whole-span exact even
  // if a mark stamped a (future) boundary past the completion cycle.
  const Cycle end = std::max(now, t.last);
  const std::uint64_t finish = end - t.last;
  t.phases[std::size_t(Phase::kFinish)] += finish;
  if (finish != 0) node_phases_[node][std::size_t(Phase::kFinish)] += finish;

  KindStats& k = kinds_[t.kind];
  ++k.count;
  k.total.add(end - t.begin);
  for (std::size_t p = 0; p < kNumPhases; ++p) k.phases[p] += t.phases[p];
  note_offender(txn, t, end);
}

void LatencyObservatory::note_offender(std::uint64_t txn, const OpenTxn& t,
                                       Cycle end) {
  if (top_k_ == 0) return;
  Offender o;
  o.txn = txn;
  o.kind = t.kind;
  o.begin = t.begin;
  o.end = end;
  o.phases = t.phases;
  auto worse = [](const Offender& a, const Offender& b) {
    return a.latency() != b.latency() ? a.latency() > b.latency()
                                      : a.txn < b.txn;
  };
  if (worst_.size() >= top_k_ && !worse(o, worst_.back())) return;
  worst_.insert(std::lower_bound(worst_.begin(), worst_.end(), o, worse), o);
  if (worst_.size() > top_k_) worst_.pop_back();
}

Phase LatencyObservatory::KindStats::dominant() const {
  std::size_t best = 0;
  for (std::size_t p = 1; p < kNumPhases; ++p) {
    if (phases[p] > phases[best]) best = p;
  }
  return Phase(best);
}

}  // namespace ccnoc::sim
