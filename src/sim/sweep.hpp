#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

/// \file sweep.hpp
/// Parallel sweep runner. A paper sweep evaluates many independent
/// (application, architecture, protocol, size) points; each point builds and
/// runs its own Simulator, so there is no shared mutable state between
/// points and they are embarrassingly parallel. SweepRunner fans the points
/// across a thread pool and returns results ordered by submission index —
/// the merge is deterministic no matter which worker finished first, so a
/// parallel sweep is byte-identical to a serial one.

namespace ccnoc::sim {

/// Worker-thread count used when the caller does not specify one: the
/// CCNOC_SWEEP_THREADS environment variable if set (clamped to >= 1), else
/// the hardware concurrency, else 1.
[[nodiscard]] unsigned default_sweep_threads();

class SweepRunner {
 public:
  /// \p threads == 0 selects default_sweep_threads().
  explicit SweepRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run every job and return their results indexed exactly like \p jobs.
  /// Jobs are claimed dynamically (an atomic cursor) so long points do not
  /// serialize behind short ones, but each result lands at its submission
  /// index. If any jobs throw, the exception of the lowest-indexed failing
  /// job is rethrown after every worker has finished.
  ///
  /// With one thread (or one job) everything runs inline on the calling
  /// thread — the serial reference path.
  template <typename T>
  std::vector<T> run(const std::vector<std::function<T()>>& jobs) {
    std::vector<T> results(jobs.size());
    run_indexed(jobs.size(), [&](std::size_t i) { results[i] = jobs[i](); });
    return results;
  }

  /// Index-based variant: invokes \p body(i) for i in [0, n) across the
  /// pool. The caller supplies its own (pre-sized) result storage; \p body
  /// must only touch state owned by point i.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  unsigned threads_;
};

}  // namespace ccnoc::sim
