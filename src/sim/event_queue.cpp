#include "sim/event_queue.hpp"

#include <algorithm>

namespace ccnoc::sim {

void EventQueue::push(Cycle when, std::uint64_t order, Callback cb) {
  CCNOC_ASSERT(when >= now_, "event scheduled in the past");
  heap_.push_back(Event{when, order, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_at(Cycle when, Callback cb) {
  push(when, kLocalOrder | next_seq_++, std::move(cb));
}

void EventQueue::schedule_keyed(Cycle when, std::uint64_t key, Callback cb) {
  CCNOC_ASSERT((key & kLocalOrder) == 0, "canonical order key has bit 63 set");
  push(when, key, std::move(cb));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // pop_heap moves the earliest event to the back, where it can be moved
  // out safely before shrinking the vector.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.when;
  ++executed_;
  ev.cb();
  return true;
}

std::uint64_t EventQueue::run(Cycle limit) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().when <= limit) {
    step();
    ++n;
  }
  if (now_ < limit && limit != ~Cycle{0}) now_ = limit;
  return n;
}

std::uint64_t EventQueue::run_before(Cycle horizon) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().when < horizon) {
    step();
    ++n;
  }
  return n;
}

}  // namespace ccnoc::sim
