#include "sim/event_queue.hpp"

namespace ccnoc::sim {

void EventQueue::schedule_at(Cycle when, Callback cb) {
  CCNOC_ASSERT(when >= now_, "event scheduled in the past");
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ++executed_;
  ev.cb();
  return true;
}

std::uint64_t EventQueue::run(Cycle limit) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().when <= limit) {
    step();
    ++n;
  }
  if (now_ < limit && limit != ~Cycle{0}) now_ = limit;
  return n;
}

}  // namespace ccnoc::sim
