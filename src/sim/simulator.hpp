#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "proto/coverage.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "sim/log.hpp"
#include "sim/probe.hpp"
#include "sim/profile.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "sim/types.hpp"

/// \file simulator.hpp
/// The shared simulation context handed to every component: the event queue,
/// the statistics registry, the logger, the tracer and the platform RNG.
/// Owning all five in one object makes a platform instance fully
/// self-contained, so several platforms (e.g. a WTI run and a MESI run) can
/// coexist in one process.
///
/// Domains: the conservative parallel core (sim/parallel.hpp) partitions a
/// platform into independently steppable domains, each with its own
/// EventQueue, mapped from NoC node ids round-robin. Components never name a
/// queue — they call schedule_in()/schedule_at()/now(), which route to the
/// queue of the domain currently executing (a thread-local execution scope
/// the engine establishes around each domain's event batch). Outside any
/// scope — the single-threaded reference path, unit tests, the checker's
/// chunked pump — the calls fall through to the classic global queue, so
/// serial code needs no guards.

namespace ccnoc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventQueue& queue() { return queue_; }
  StatsRegistry& stats() { return stats_; }
  Logger& logger() { return logger_; }
  [[nodiscard]] const Logger& logger() const { return logger_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  LatencyObservatory& latency() { return latency_; }
  const LatencyObservatory& latency() const { return latency_; }
  Rng& rng() { return rng_; }

  // --- domain partition (parallel core) ------------------------------------

  /// Split the platform into \p n independently steppable domains. Must be
  /// called before components are built (they cache their coverage shard at
  /// construction) and at most once. n <= 1 keeps the serial layout: one
  /// global queue, one coverage bitmap, nothing else changes.
  void configure_domains(unsigned n) {
    CCNOC_ASSERT(domain_queues_.empty(), "domains configured twice");
    if (n <= 1) return;
    domain_queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i) domain_queues_.push_back(std::make_unique<EventQueue>());
    coverage_shards_.resize(n);
  }

  [[nodiscard]] unsigned num_domains() const {
    return domain_queues_.empty() ? 1 : unsigned(domain_queues_.size());
  }
  /// Domain owning NoC node \p node (round-robin over cache and bank nodes).
  [[nodiscard]] unsigned domain_of(NodeId node) const {
    return domain_queues_.empty() ? 0 : node % unsigned(domain_queues_.size());
  }
  /// Queue of domain \p d; d == 0 aliases the global/serial queue only when
  /// no domains were configured.
  EventQueue& domain_queue(unsigned d) {
    if (domain_queues_.empty()) return queue_;
    return *domain_queues_.at(d);
  }

  /// Pre-run seeding switch. A parallel run wants each component's initial
  /// event in its own domain queue; a serial run (including the sequenced
  /// fallback of a domain-partitioned platform, e.g. when tracing is on)
  /// needs everything in the global queue or it would never execute. The
  /// runner flips this right before launching the workload, once it knows
  /// which engine the run will use.
  void set_domain_seeding(bool on) { seed_domains_ = on; }
  /// Queue that pre-run seed events for \p node belong in under the current
  /// seeding switch.
  EventQueue& seed_queue(NodeId node) {
    return seed_domains_ ? domain_queue(domain_of(node)) : queue_;
  }

  /// RAII execution scope: while alive on this thread, now()/schedule_*()
  /// on \p sim route to \p q. The parallel engine wraps each domain's event
  /// batch in one; nothing else ever creates these.
  class ExecScope {
   public:
    ExecScope(Simulator& sim, EventQueue& q) : prev_(tls()) { tls() = {&sim, &q}; }
    ~ExecScope() { tls() = prev_; }
    ExecScope(const ExecScope&) = delete;
    ExecScope& operator=(const ExecScope&) = delete;

   private:
    friend class Simulator;
    struct Binding {
      Simulator* sim = nullptr;
      EventQueue* q = nullptr;
    };
    static Binding& tls() {
      static thread_local Binding b;
      return b;
    }
    Binding prev_;
  };

  /// The queue events on this thread are currently executing from: the
  /// active domain's inside an ExecScope, the global queue otherwise.
  EventQueue& active_queue() {
    const ExecScope::Binding& b = ExecScope::tls();
    return b.sim == this ? *b.q : queue_;
  }
  [[nodiscard]] const EventQueue& active_queue() const {
    const ExecScope::Binding& b = ExecScope::tls();
    return b.sim == this ? *b.q : queue_;
  }

  // --- protocol coverage ----------------------------------------------------

  /// Transition-coverage shard for components on NoC node \p node. With no
  /// domain partition this is the platform bitmap itself; with one, each
  /// domain records into its own shard so concurrent domains never share a
  /// cache line, and proto_coverage() folds them on demand.
  proto::CoverageSet& proto_coverage_shard(NodeId node) {
    if (coverage_shards_.empty()) return coverage_;
    return coverage_shards_[domain_of(node)];
  }

  /// Transition-coverage bitmap over the declarative protocol tables
  /// (proto/tables.hpp), folded over all domain shards. Per-platform, so
  /// parallel sweeps never share it.
  [[nodiscard]] proto::CoverageSet proto_coverage() const {
    proto::CoverageSet merged = coverage_;
    for (const auto& s : coverage_shards_) merged.merge(s);
    return merged;
  }

  /// Coherence-checking probe (null when checking is off). Components cache
  /// this pointer at construction, so it must be set before the platform is
  /// built — the same contract as the tracer mode.
  void set_probe(CoherenceProbe* p) { probe_ = p; }
  [[nodiscard]] CoherenceProbe* probe() const { return probe_; }

  [[nodiscard]] Cycle now() const { return active_queue().now(); }

  void schedule_in(Cycle delay, EventQueue::Callback cb) {
    active_queue().schedule_in(delay, std::move(cb));
  }
  void schedule_at(Cycle when, EventQueue::Callback cb) {
    active_queue().schedule_at(when, std::move(cb));
  }
  /// Canonically keyed insert into the active queue (see
  /// EventQueue::schedule_keyed) — the NoC fabric-arrival path.
  void schedule_keyed(Cycle when, std::uint64_t key, EventQueue::Callback cb) {
    active_queue().schedule_keyed(when, key, std::move(cb));
  }

  /// Drain the event queue, stopping after \p max_cycles as a hang guard.
  /// Returns the number of events executed.
  std::uint64_t run_to_completion(Cycle max_cycles = ~Cycle{0}) {
    return queue_.run(max_cycles == ~Cycle{0} ? max_cycles : queue_.now() + max_cycles);
  }

  /// Leveled logging with lazy message construction: the factory callable
  /// is only invoked when the level is enabled, so a LogLevel::None run
  /// pays one branch per call site and performs no string work. Call as
  ///   sim.trace("noc", [&] { return format_something(); });
  template <typename F>
  void trace(const char* component, F&& make_msg) {
    if (logger_.enabled(LogLevel::Trace)) logger_.emit(now(), component, make_msg());
  }
  template <typename F>
  void debug(const char* component, F&& make_msg) {
    if (logger_.enabled(LogLevel::Debug)) logger_.emit(now(), component, make_msg());
  }

 private:
  EventQueue queue_;
  // unique_ptr elements keep queue addresses stable and give each domain's
  // heap its own allocation (no false sharing between domain headers).
  std::vector<std::unique_ptr<EventQueue>> domain_queues_;
  StatsRegistry stats_;
  Logger logger_;
  Tracer tracer_;
  Profiler profiler_;
  LatencyObservatory latency_;
  Rng rng_;
  proto::CoverageSet coverage_;
  std::vector<proto::CoverageSet> coverage_shards_;
  CoherenceProbe* probe_ = nullptr;
  bool seed_domains_ = false;
};

}  // namespace ccnoc::sim
