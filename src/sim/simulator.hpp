#pragma once

#include <cstdint>

#include "proto/coverage.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/probe.hpp"
#include "sim/profile.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "sim/types.hpp"

/// \file simulator.hpp
/// The shared simulation context handed to every component: the event queue,
/// the statistics registry, the logger, the tracer and the platform RNG.
/// Owning all five in one object makes a platform instance fully
/// self-contained, so several platforms (e.g. a WTI run and a MESI run) can
/// coexist in one process.

namespace ccnoc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventQueue& queue() { return queue_; }
  StatsRegistry& stats() { return stats_; }
  Logger& logger() { return logger_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  Rng& rng() { return rng_; }

  /// Transition-coverage bitmap over the declarative protocol tables
  /// (proto/tables.hpp). Per-platform, so parallel sweeps never share it.
  proto::CoverageSet& proto_coverage() { return coverage_; }
  [[nodiscard]] const proto::CoverageSet& proto_coverage() const { return coverage_; }

  /// Coherence-checking probe (null when checking is off). Components cache
  /// this pointer at construction, so it must be set before the platform is
  /// built — the same contract as the tracer mode.
  void set_probe(CoherenceProbe* p) { probe_ = p; }
  [[nodiscard]] CoherenceProbe* probe() const { return probe_; }

  /// Platform-wide monotonically allocated transaction id (see Tracer).
  std::uint64_t alloc_txn() { return tracer_.alloc_txn(); }

  [[nodiscard]] Cycle now() const { return queue_.now(); }

  void schedule_in(Cycle delay, EventQueue::Callback cb) {
    queue_.schedule_in(delay, std::move(cb));
  }

  /// Drain the event queue, stopping after \p max_cycles as a hang guard.
  /// Returns the number of events executed.
  std::uint64_t run_to_completion(Cycle max_cycles = ~Cycle{0}) {
    return queue_.run(max_cycles == ~Cycle{0} ? max_cycles : queue_.now() + max_cycles);
  }

  /// Leveled logging with lazy message construction: the factory callable
  /// is only invoked when the level is enabled, so a LogLevel::None run
  /// pays one branch per call site and performs no string work. Call as
  ///   sim.trace("noc", [&] { return format_something(); });
  template <typename F>
  void trace(const char* component, F&& make_msg) {
    if (logger_.enabled(LogLevel::Trace)) logger_.emit(now(), component, make_msg());
  }
  template <typename F>
  void debug(const char* component, F&& make_msg) {
    if (logger_.enabled(LogLevel::Debug)) logger_.emit(now(), component, make_msg());
  }

 private:
  EventQueue queue_;
  StatsRegistry stats_;
  Logger logger_;
  Tracer tracer_;
  Profiler profiler_;
  Rng rng_;
  proto::CoverageSet coverage_;
  CoherenceProbe* probe_ = nullptr;
};

}  // namespace ccnoc::sim
