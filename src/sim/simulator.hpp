#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

/// \file simulator.hpp
/// The shared simulation context handed to every component: the event queue,
/// the statistics registry, the logger and the platform RNG. Owning all four
/// in one object makes a platform instance fully self-contained, so several
/// platforms (e.g. a WTI run and a MESI run) can coexist in one process.

namespace ccnoc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventQueue& queue() { return queue_; }
  StatsRegistry& stats() { return stats_; }
  Logger& logger() { return logger_; }
  Rng& rng() { return rng_; }

  [[nodiscard]] Cycle now() const { return queue_.now(); }

  void schedule_in(Cycle delay, EventQueue::Callback cb) {
    queue_.schedule_in(delay, std::move(cb));
  }

  /// Drain the event queue, stopping after \p max_cycles as a hang guard.
  /// Returns the number of events executed.
  std::uint64_t run_to_completion(Cycle max_cycles = ~Cycle{0}) {
    return queue_.run(max_cycles == ~Cycle{0} ? max_cycles : queue_.now() + max_cycles);
  }

  void trace(const std::string& component, const std::string& msg) {
    if (logger_.enabled(LogLevel::Trace)) logger_.emit(now(), component, msg);
  }
  void debug(const std::string& component, const std::string& msg) {
    if (logger_.enabled(LogLevel::Debug)) logger_.emit(now(), component, msg);
  }

 private:
  EventQueue queue_;
  StatsRegistry stats_;
  Logger logger_;
  Rng rng_;
};

}  // namespace ccnoc::sim
