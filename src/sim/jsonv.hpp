#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ccnoc::sim {

// Minimal dependency-free JSON value, just enough to read back the JSON
// this project emits (bench MetricLog output, paper-sweep output,
// profile.json) for baseline comparison. Numbers are held as double, which
// is exact for the integral counters we compare (they fit in 53 bits).
struct Jsonv {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Jsonv> array;
  std::vector<std::pair<std::string, Jsonv>> object;  // insertion order

  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Jsonv* get(const std::string& key) const;
};

// Parses `text`; on failure returns false and sets `err` to a short
// message with an offset.
bool jsonv_parse(const std::string& text, Jsonv& out, std::string& err);

// Convenience: slurp a file and parse it.
bool jsonv_parse_file(const std::string& path, Jsonv& out, std::string& err);

}  // namespace ccnoc::sim
