#include "sim/log.hpp"

#include <cstdio>

namespace ccnoc::sim {

void Logger::emit(Cycle now, const std::string& component, const std::string& msg) const {
  std::ostringstream os;
  os << "[" << now << "] " << component << ": " << msg;
  if (sink_) {
    sink_(os.str());
  } else {
    std::fprintf(stderr, "%s\n", os.str().c_str());
  }
}

}  // namespace ccnoc::sim
