#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

/// \file latency.hpp
/// The latency observatory: streaming per-transaction *phase attribution*.
///
/// The tracer records how long every coherence transaction took; this layer
/// records where the cycles went. Each traced transaction is decomposed into
/// non-overlapping phases — write-buffer wait, NoC ingress queueing, fabric
/// transit, bank queue wait, directory service, invalidation fan-out + ack
/// collection, owner fetch, retry rounds and (two-level platforms) L2 fill /
/// recall — via *telescoping marks*: every instrumentation point attributes
/// the interval [last boundary, new boundary] to one phase and advances the
/// boundary, and txn_end() attributes the residual to kFinish. Phase
/// durations therefore sum EXACTLY to the whole-span latency for every
/// transaction, by construction (the reconcile tests assert it per txn).
///
/// Whole-span latencies feed per-kind log-bucketed HDR-style histograms
/// (LogHistogram: ≤ ~3% relative error at any magnitude, exact below 32
/// cycles) replacing the tracer's fixed-bucket estimator for tail analysis;
/// phase sums aggregate per kind and per recording node (per CPU, per bank);
/// and a bounded top-K table keeps the slowest transactions with their full
/// phase breakdown and replayable txn ids.
///
/// Cost model and parallel story mirror sim::Tracer exactly: every hook is
/// one predicted branch on a cached pointer when off; under the parallel
/// engine hooks append order-stamped records — (cycle, recording node,
/// per-node seq) — to per-domain shards, and finalize_sharded() sorts the
/// merged stream and replays it through the serial apply paths, so
/// latency.json is byte-identical between engines. Marks for unknown txn
/// ids are silent no-ops (same contract as tracer notes), and boundaries
/// are clamped monotone so attribution never goes negative.

namespace ccnoc::sim {

enum class LatencyMode : std::uint8_t {
  kOff = 0,  ///< hooks are a single predicted branch; zero allocations
  kOn = 1,   ///< full phase attribution
};

/// Where a transaction's cycles can go. Ordering is stable: it is the
/// emission order in latency.json (schema v1) and must not be reshuffled.
enum class Phase : std::uint8_t {
  kWbufWait = 0,   ///< waiting on write-buffer drain / writeback slot
  kNocIngress = 1, ///< source-port serialization before entering the fabric
  kNocTransit = 2, ///< fabric flight + egress serialization, per hop
  kBankQueue = 3,  ///< queued behind the bank port or a busy block
  kDirService = 4, ///< directory lookup + storage service latency
  kFanoutAcks = 5, ///< invalidation/update fan-out until the last ack
  kOwnerFetch = 6, ///< waiting for a dirty owner's fetch response
  kRetry = 7,      ///< deferred rounds re-launched later (L2 fill retries)
  kL2Fill = 8,     ///< blocked behind a shared-L2 fill (two-level mode)
  kL2Recall = 9,   ///< blocked behind a shared-L2 victim recall
  kFinish = 10,    ///< residual: last boundary to completion at the requester
};
inline constexpr unsigned kNumPhases = 11;
using PhaseCycles = std::array<std::uint64_t, kNumPhases>;
const char* to_string(Phase p);

/// Log-bucketed histogram over unsigned cycle counts, HDR-style: exact for
/// values < 32, then 32 sub-buckets per power of two (≤ 1/32 relative
/// error), covering the full 64-bit range — nothing ever saturates or
/// folds. Percentile ranks follow Sample's convention (want the
/// ceil(p·count)-th smallest, clamped into [min, max]), so the two
/// estimators are comparable where both exist.
class LogHistogram {
 public:
  void add(std::uint64_t v);
  void merge(const LogHistogram& o);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : double(sum_) / double(count_);
  }
  [[nodiscard]] std::uint64_t percentile(double p) const;

  /// Bucket mapping, exposed for the accuracy golden tests.
  static std::size_t bucket_of(std::uint64_t v);
  static std::uint64_t bucket_upper_edge(std::size_t b);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

class LatencyObservatory {
 public:
  void set_mode(LatencyMode m) { mode_ = m; }
  [[nodiscard]] LatencyMode mode() const { return mode_; }
  [[nodiscard]] bool on() const { return mode_ != LatencyMode::kOff; }

  /// Worst-offender table size. Construction-time only (System wires it from
  /// the config before the run starts).
  void set_top_k(unsigned k) { top_k_ = k; }
  [[nodiscard]] unsigned top_k() const { return top_k_; }

  // --- transaction lifecycle hooks ------------------------------------------
  //
  // `node` is always the NoC node whose event is executing the call — the
  // sharding/order key. Kinds are static strings (same contract as the
  // tracer). A mark attributes [last, max(boundary, last)] to `ph` and
  // advances the boundary; marks and ends for unknown txns are no-ops.

  void txn_begin(Cycle now, std::uint64_t txn, const char* kind, NodeId node) {
    if (on()) [[unlikely]] begin_slow(now, txn, kind, node);
  }
  void mark(Cycle now, std::uint64_t txn, NodeId node, Phase ph,
            Cycle boundary) {
    if (on()) [[unlikely]] mark_slow(now, txn, node, ph, boundary);
  }
  void txn_end(Cycle now, std::uint64_t txn, NodeId node) {
    if (on()) [[unlikely]] end_slow(now, txn, node);
  }

  // --- parallel-engine sharding ---------------------------------------------
  // Same contract as Tracer::begin_sharded/finalize_sharded.
  void begin_sharded(unsigned domains);
  void finalize_sharded();
  [[nodiscard]] bool sharded() const { return sharded_; }

  // --- inspection -----------------------------------------------------------

  struct KindStats {
    std::uint64_t count = 0;
    LogHistogram total;   ///< whole-span latency per completed transaction
    PhaseCycles phases{}; ///< phase sums over completed transactions
    [[nodiscard]] Phase dominant() const;
  };
  /// One worst-offender entry: a completed transaction with its full phase
  /// breakdown. `txn` is the globally-unique id the trace uses, so a slow
  /// transaction can be chased into the Chrome export.
  struct Offender {
    std::uint64_t txn = 0;
    const char* kind = nullptr;
    Cycle begin = 0;
    Cycle end = 0;
    PhaseCycles phases{};
    [[nodiscard]] Cycle latency() const { return end - begin; }
  };

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] const std::map<std::string, KindStats>& kinds() const {
    return kinds_;
  }
  /// Phase sums attributed to each recording node (CPU cache nodes collect
  /// wbuf/ingress/finish, bank nodes collect queue/service/fan-out), for the
  /// per-CPU / per-bank critical-path summary.
  [[nodiscard]] const std::map<NodeId, PhaseCycles>& node_phases() const {
    return node_phases_;
  }
  /// Slowest completed transactions, sorted (latency desc, txn id asc),
  /// capped at top_k().
  [[nodiscard]] const std::vector<Offender>& worst() const { return worst_; }

 private:
  __attribute__((cold)) void begin_slow(Cycle now, std::uint64_t txn,
                                        const char* kind, NodeId node);
  __attribute__((cold)) void mark_slow(Cycle now, std::uint64_t txn,
                                       NodeId node, Phase ph, Cycle boundary);
  __attribute__((cold)) void end_slow(Cycle now, std::uint64_t txn,
                                      NodeId node);

  struct OpenTxn {
    const char* kind = nullptr;
    Cycle begin = 0;
    Cycle last = 0;  ///< telescoping boundary: everything before is attributed
    PhaseCycles phases{};
  };

  /// One sharded hook record; the merged stream sorts by (cycle, node, seq)
  /// and replays through the serial apply paths.
  struct Op {
    enum class K : std::uint8_t { kBegin, kMark, kEnd };
    Cycle cycle = 0;         ///< primary order key
    std::uint64_t seq = 0;   ///< per-node record sequence (tertiary key)
    std::uint64_t txn = 0;
    Cycle boundary = 0;
    const char* kind = nullptr;
    NodeId node = 0;         ///< recording node (secondary key)
    K k{};
    Phase ph{};
  };
  struct alignas(64) Shard {
    std::vector<Op> ops;
    std::vector<std::uint64_t> node_seq;
  };

  void record(NodeId node, Op op);

  // Direct-apply paths, shared between the serial engine and the replay.
  void apply_begin(Cycle now, std::uint64_t txn, const char* kind, NodeId node);
  void apply_mark(std::uint64_t txn, NodeId node, Phase ph, Cycle boundary);
  void apply_end(Cycle now, std::uint64_t txn, NodeId node);

  void note_offender(std::uint64_t txn, const OpenTxn& t, Cycle end);

  LatencyMode mode_ = LatencyMode::kOff;
  unsigned top_k_ = 16;

  std::unordered_map<std::uint64_t, OpenTxn> open_;
  std::map<std::string, KindStats> kinds_;
  std::map<NodeId, PhaseCycles> node_phases_;
  std::vector<Offender> worst_;

  bool sharded_ = false;
  std::vector<Shard> shards_;
};

// --- report emitters (latency_report.cpp) ----------------------------------
// Deterministic schema-v1 JSON: per-kind HDR percentiles + phase breakdown +
// dominant phase, per-node phase sums, the top-K worst-offender table and a
// whole-run critical-path summary. Contains no engine/run metadata by
// design — serial and parallel runs of one platform emit identical bytes.
std::string latency_json(const LatencyObservatory& lat);
bool write_latency_json(const std::string& path, const LatencyObservatory& lat);

}  // namespace ccnoc::sim
