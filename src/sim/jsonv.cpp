#include "sim/jsonv.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ccnoc::sim {

const Jsonv* Jsonv::get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    std::ostringstream os;
    os << what << " at offset " << pos;
    err = os.str();
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < s.size()) {
      char c = s[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= s.size()) break;
        char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > s.size()) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Only BMP code points; enough for our own emitters.
            if (cp < 0x80) {
              out += char(cp);
            } else if (cp < 0x800) {
              out += char(0xc0 | (cp >> 6));
              out += char(0x80 | (cp & 0x3f));
            } else {
              out += char(0xe0 | (cp >> 12));
              out += char(0x80 | ((cp >> 6) & 0x3f));
              out += char(0x80 | (cp & 0x3f));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Jsonv& out) {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    char c = s[pos];
    if (c == '{') {
      ++pos;
      out.type = Jsonv::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        Jsonv v;
        if (!parse_value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.type = Jsonv::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Jsonv v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = Jsonv::Type::kString;
      return parse_string(out.string);
    }
    if (s.compare(pos, 4, "true") == 0) {
      out.type = Jsonv::Type::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out.type = Jsonv::Type::kBool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      out.type = Jsonv::Type::kNull;
      pos += 4;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = s.c_str() + pos;
      char* end = nullptr;
      double v = std::strtod(start, &end);
      if (end == start) return fail("bad number");
      out.type = Jsonv::Type::kNumber;
      out.number = v;
      pos += std::size_t(end - start);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool jsonv_parse(const std::string& text, Jsonv& out, std::string& err) {
  Parser p{text, 0, std::string()};
  out = Jsonv{};
  if (!p.parse_value(out)) {
    err = p.err;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    err = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

bool jsonv_parse_file(const std::string& path, Jsonv& out, std::string& err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return jsonv_parse(ss.str(), out, err);
}

}  // namespace ccnoc::sim
