#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/types.hpp"

/// \file log.hpp
/// Minimal leveled tracing. Disabled by default; examples and debugging turn
/// it on to watch protocol transactions flow through the platform. The sink
/// is pluggable so tests can capture trace output.

namespace ccnoc::sim {

enum class LogLevel : int { None = 0, Info = 1, Debug = 2, Trace = 3 };

class Logger {
 public:
  using Sink = std::function<void(const std::string&)>;

  void set_level(LogLevel lvl) { level_ = lvl; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] bool enabled(LogLevel lvl) const { return int(lvl) <= int(level_); }

  void emit(Cycle now, const std::string& component, const std::string& msg) const;

 private:
  LogLevel level_ = LogLevel::None;
  Sink sink_;
};

}  // namespace ccnoc::sim
