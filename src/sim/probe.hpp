#pragma once

#include <cstdint>

#include "sim/types.hpp"

/// \file probe.hpp
/// Coherence-checking hook interface. Components on the hot path (the
/// processor's commit points, the bank's global-visibility points) hold a
/// cached `CoherenceProbe*` that is null when checking is off, so an
/// unchecked run pays exactly one predictable branch per call site — the
/// same cost model as the tracer (see tracer.hpp). The concrete
/// implementation lives in `src/check/` (golden-model oracle + invariant
/// walker); this header stays dependency-free so cpu/ and mem/ can feed it
/// without a layering cycle.
///
/// Hook placement encodes where sequential consistency orders each access
/// (DESIGN.md §5, EXPERIMENTS.md "Correctness checking"):
///
///  * `load_commit` / `store_commit` / `atomic_commit` fire at the
///    processor's data-port completion points.
///  * Under WB-MESI a store commit *is* the global-visibility point
///    (exclusivity is held), so the oracle applies it immediately.
///  * Under WTI a committed store is only buffered; it becomes globally
///    visible at its home bank once every foreign copy is invalidated —
///    `global_store` fires there. In the paper §4.2 direct-ack mode the
///    bank writes its storage early but keeps the block transaction-locked
///    until the requester's TxnDone, so visibility is deferred to
///    `txn_released`.
///  * WTI atomics execute at the bank; `global_atomic` fires at the RMW
///    point and the later `atomic_commit` cross-checks the returned old
///    value against the oracle's snapshot.

namespace ccnoc::sim {

class CoherenceProbe {
 public:
  virtual ~CoherenceProbe() = default;

  // --- processor data-port commit points (cpu/processor.cpp) ---------------
  /// \p issued is the cycle the access left the processor (wait_started_);
  /// the legal value window for a load spans [issued, now].
  virtual void load_commit(unsigned cpu, Addr a, unsigned size, std::uint64_t v,
                           Cycle issued) = 0;
  virtual void store_commit(unsigned cpu, Addr a, unsigned size, std::uint64_t v) = 0;
  virtual void atomic_commit(unsigned cpu, Addr a, unsigned size,
                             std::uint64_t returned_old, std::uint64_t operand,
                             bool is_add) = 0;

  // --- bank global-visibility points (mem/bank.cpp) ------------------------
  /// A write-through became globally visible at its home bank (all foreign
  /// copies invalidated / updated). \p deferred marks a §4.2 direct-ack
  /// round: the block stays transaction-locked and visibility completes at
  /// the matching `txn_released`.
  virtual void global_store(unsigned cpu, Addr a, unsigned size, std::uint64_t v,
                            bool deferred) = 0;
  /// A bank-side atomic RMW executed. Called before the bank mutates its
  /// storage; the oracle snapshots the expected old value for \p cpu's
  /// in-flight atomic and applies the post-RMW value.
  virtual void global_atomic(unsigned cpu, Addr a, unsigned size, bool is_add,
                             std::uint64_t operand) = 0;
  /// The requester's TxnDone released a direct-ack block lock on \p block.
  virtual void txn_released(unsigned cpu, Addr block) = 0;

  // --- untimed backdoor (program loading, lock/barrier initialization) -----
  virtual void backdoor_write(Addr a, const void* data, unsigned len) = 0;
};

}  // namespace ccnoc::sim
