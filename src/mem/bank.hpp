#pragma once

#include <deque>
#include <unordered_map>

#include "mem/address_map.hpp"
#include "mem/directory.hpp"
#include "mem/protocol.hpp"
#include "mem/storage.hpp"
#include "noc/network.hpp"
#include "proto/tables.hpp"
#include "sim/simulator.hpp"

/// \file bank.hpp
/// A main-memory bank node: byte storage + Censier–Feautrier directory +
/// the memory-side half of the coherence protocol (paper §4.2). Matching
/// the paper's implementation, every coherence transfer is routed through
/// the memory node — there are no cache-to-cache shortcuts — and requests
/// to the same block are serialized by a per-block transaction table.
///
/// Timing: every request passes through the bank's single service port
/// (busy-until reservation), which is what creates the memory-bank
/// contention the paper studies on architecture 1.
///
/// The same engine serves both tiers of a two-level platform: the shared
/// L2 banks (L2Bank, l2_bank.hpp) subclass it — directory clients are the
/// private L1s — and the memory banks keep using it directly with their
/// directory re-pointed at the L2 bank nodes (dir_clients/dir_client_base
/// below). The protected surface is exactly what the L2 subclass layers
/// its fill/recall machinery on.

namespace ccnoc::mem {

struct BankConfig {
  sim::Cycle block_service = 8;  ///< latency of a block read/write + directory
  sim::Cycle word_service = 2;   ///< latency of a word write + directory
  /// Pipelining: a new request may start this many cycles after the
  /// previous one (VCI memories accept back-to-back cells); bank
  /// *throughput* is 1/initiation_interval while each request still takes
  /// its full service latency.
  sim::Cycle initiation_interval = 2;
  unsigned block_bytes = 32;

  /// Paper §4.2's suggested optimization: sharers acknowledge
  /// invalidations directly to the requesting cache ("leveraging the
  /// memory node and saving one hop transfer"). The requester collects
  /// the acks and releases the block with a TxnDone, so per-block
  /// serialization — and with it sequential consistency — is preserved.
  /// Applies to WTI write-through rounds and MESI upgrades.
  bool direct_inval_ack = false;

  /// Directory client set. 0 clients = the platform's CPUs starting at node
  /// 0 (the flat default). The memory tier of a two-level platform instead
  /// tracks the L2 bank nodes: num_l2_banks clients based at the first L2
  /// node id.
  unsigned dir_clients = 0;
  sim::NodeId dir_client_base = 0;
};

class Bank : public noc::Endpoint {
 public:
  Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
       unsigned bank_index, Protocol proto, BankConfig cfg = {});
  ~Bank() override = default;

  void deliver(const noc::Packet& pkt) override;

  /// Direct storage access for program loading and result verification
  /// (zero simulated cost; never used during timed execution by the CPUs).
  PagedStorage& storage() { return storage_; }
  const PagedStorage& storage() const { return storage_; }

  [[nodiscard]] const Directory& directory() const { return dir_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_; }
  [[nodiscard]] const BankConfig& config() const { return cfg_; }

  /// True when no transaction is in flight and nothing is queued — used by
  /// tests to check quiescence.
  [[nodiscard]] bool idle() const { return txns_.empty() && waiting_.empty(); }

  /// True while a coherence transaction is open on \p block (including a
  /// direct-ack round held until its TxnDone). The invariant walker uses
  /// this to exempt blocks in legal transient states from its point-in-time
  /// directory/data cross-checks.
  [[nodiscard]] bool has_open_txn(sim::Addr block) const {
    return txns_.count(block_of(block)) != 0;
  }

 protected:
  /// Role constructor shared by the memory tier and the L2 subclass:
  /// \p node and \p name identify the endpoint explicitly instead of being
  /// derived from a memory-bank index, \p tid is the slot on the tracer's
  /// "bank" track (memory banks use their bank index; L2 banks follow).
  Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
       sim::NodeId node, const std::string& name, std::uint32_t tid,
       Protocol proto, BankConfig cfg);

  struct Txn {
    noc::Message req;
    sim::NodeId src = sim::kInvalidNode;
    unsigned pending_acks = 0;
    bool waiting_data = false;
    sim::NodeId data_from = sim::kInvalidNode;
    bool had_inval_round = false;
    bool had_fetch_round = false;
    bool direct_mode = false;   ///< acks flow to the requester; block frees
                                ///< on its TxnDone
    unsigned direct_acks = 0;   ///< ack count reported to the requester
  };

  void enqueue_request(const noc::Packet& pkt);
  void start_service(noc::Message req, sim::NodeId src);
  void process_request(sim::Addr block);

  void process_read_shared(Txn& t);
  void process_read_exclusive(Txn& t);
  void process_upgrade(Txn& t);
  void process_write_word(Txn& t);

  void handle_write_back(const noc::Packet& pkt);
  void handle_invalidate_ack(const noc::Packet& pkt);
  void handle_update_ack(const noc::Packet& pkt);
  void handle_fetch_response(const noc::Packet& pkt);
  void handle_txn_done(const noc::Packet& pkt);

  void on_acks_complete(sim::Addr block, Txn& t);
  void on_data_arrived(sim::Addr block, Txn& t, const noc::Message& data_msg);

  void send_invalidations(sim::Addr block, Txn& t, sim::NodeId except);
  void send_updates(sim::Addr block, Txn& t, sim::NodeId except);
  void request_fetch(sim::Addr block, Txn& t, noc::MsgType fetch_type);

  void respond(const Txn& t, noc::Message&& m, unsigned path_hops);
  /// Virtual so the L2 bank can intercept the moment a block unlocks: a
  /// freed block whose waiters target a no-longer-resident line must refill
  /// before the base implementation may start the next request.
  virtual void complete_txn(sim::Addr block);

  /// Called after every transaction-path write to \p block's bytes in
  /// storage_ (write-through words, atomics, absorbed write-backs and fetch
  /// data). The L2 bank overrides it to dirty its own line state; the
  /// memory tier's DRAM has no line state, so the default is a no-op.
  virtual void on_storage_write(sim::Addr block) { (void)block; }

  [[nodiscard]] sim::Addr block_of(sim::Addr a) const {
    return a & ~sim::Addr(cfg_.block_bytes - 1);
  }
  void read_block(sim::Addr block, noc::Message& m) const;

  // Directory mutations that change a block's ownership class, wrapped so
  // the trace shows the directory state machine alongside the messages.
  void dir_set_exclusive(sim::Addr block, sim::NodeId owner);
  void dir_clear_dirty(sim::Addr block);

  /// Abstract directory state of \p block (proto/tables.hpp vocabulary).
  [[nodiscard]] proto::DirState dstate(sim::Addr block) const {
    DirEntry e = dir_.lookup(block);
    return proto::dir_state(e.has_sharer(), e.dirty);
  }
  /// Validate a directory mutation cluster against the protocol's
  /// declarative table: (before, ev, current state) must be a declared row.
  /// The L2 bank installs its hierarchy extension table as xtbl_, so recall
  /// rows resolve; flat banks leave it null and behave exactly as before.
  void dir_event(sim::Addr block, proto::DirState before, proto::DirEvent ev) {
    proto::apply_dir(ptbl_, xtbl_, *cov_, before, ev, dstate(block));
  }

  sim::Simulator& sim_;
  noc::Network& net_;
  const AddressMap& map_;
  Protocol proto_;
  BankConfig cfg_;
  sim::NodeId node_;

  PagedStorage storage_;
  Directory dir_;
  sim::Cycle port_free_ = 0;

  std::unordered_map<sim::Addr, Txn> txns_;  // key: block address
  std::unordered_map<sim::Addr, std::deque<noc::Packet>> waiting_;
  std::size_t waiting_count_ = 0;  ///< total queued packets across blocks

  // Cold: only reached when a coherence checker is attached.
  __attribute__((cold)) void probe_global_store(const Txn& t);
  __attribute__((cold)) void probe_global_atomic(const Txn& t);

  const proto::ProtocolTable& ptbl_;  ///< this protocol's transition table
  const proto::ProtocolTable* xtbl_ = nullptr;  ///< hierarchy extension (L2)
  proto::CoverageSet* cov_;           ///< the platform's coverage bitmap
  sim::Tracer* tr_;            ///< cached; guarded on tr_->on() / tr_->full()
  sim::CoherenceProbe* probe_; ///< cached; null unless checking is on
  sim::Profiler* pf_;          ///< cached; one predicted branch per hook when off
  sim::LatencyObservatory* lat_;  ///< cached; same one-branch-when-off discipline
  unsigned trace_bank_id_ = 0;  ///< tracer telemetry slot for this bank
  unsigned profile_bank_id_ = 0;  ///< profiler queue slot for this bank
  std::uint32_t bank_tid_ = 0;  ///< thread id on the "bank" trace track

  /// Typed stat handles ("bank<i>.*"), resolved once at construction so the
  /// per-request paths never rebuild the prefixed name or search the
  /// registry (registry references are stable for its lifetime).
  struct Stats {
    sim::Counter* requests;
    sim::Counter* block_conflicts;
    sim::Counter* busy_cycles;
    sim::Counter* upgrade_races;
    sim::Counter* updates_sent;
    sim::Counter* stale_update_targets;
    sim::Counter* invalidations_sent;
    sim::Counter* fetches_sent;
    sim::Counter* stale_fetch_responses;
    sim::Counter* writebacks;
    sim::Sample* queue_delay;
  };
  Stats st_;
};

}  // namespace ccnoc::mem
