#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/types.hpp"

/// \file storage.hpp
/// Bit-accurate, demand-paged byte storage backing a memory bank. Pages are
/// allocated lazily and read as zero until first written, so a bank can own
/// a large address region without committing host memory.

namespace ccnoc::mem {

class PagedStorage {
 public:
  static constexpr unsigned kPageShift = 12;
  static constexpr sim::Addr kPageBytes = sim::Addr(1) << kPageShift;

  /// Read \p len bytes at absolute address \p a into \p out.
  void read(sim::Addr a, void* out, unsigned len) const {
    auto* dst = static_cast<std::uint8_t*>(out);
    while (len > 0) {
      sim::Addr page = a >> kPageShift;
      unsigned off = unsigned(a & (kPageBytes - 1));
      unsigned chunk = std::min<unsigned>(len, unsigned(kPageBytes) - off);
      auto it = pages_.find(page);
      if (it == pages_.end()) {
        std::memset(dst, 0, chunk);
      } else {
        std::memcpy(dst, it->second->data() + off, chunk);
      }
      a += chunk;
      dst += chunk;
      len -= chunk;
    }
  }

  /// Write \p len bytes at absolute address \p a.
  void write(sim::Addr a, const void* in, unsigned len) {
    const auto* src = static_cast<const std::uint8_t*>(in);
    while (len > 0) {
      sim::Addr page = a >> kPageShift;
      unsigned off = unsigned(a & (kPageBytes - 1));
      unsigned chunk = std::min<unsigned>(len, unsigned(kPageBytes) - off);
      std::memcpy(page_for(page).data() + off, src, chunk);
      a += chunk;
      src += chunk;
      len -= chunk;
    }
  }

  [[nodiscard]] std::uint64_t read_uint(sim::Addr a, unsigned len) const {
    CCNOC_ASSERT(len <= 8, "scalar read > 8 bytes");
    std::uint64_t v = 0;
    read(a, &v, len);  // little-endian host assumed (x86-64 / aarch64 LE)
    return v;
  }

  void write_uint(sim::Addr a, std::uint64_t v, unsigned len) {
    CCNOC_ASSERT(len <= 8, "scalar write > 8 bytes");
    write(a, &v, len);
  }

  [[nodiscard]] std::size_t committed_pages() const { return pages_.size(); }

  /// Visit every committed page as (base_address, bytes, len). Iteration
  /// order is unspecified; callers needing determinism must sort by base.
  template <typename Fn>
  void for_each_page(Fn&& fn) const {
    for (const auto& [page, data] : pages_) {
      fn(page << kPageShift, data->data(), unsigned(kPageBytes));
    }
  }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  Page& page_for(sim::Addr page) {
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      it = pages_.emplace(page, std::make_unique<Page>()).first;
      it->second->fill(0);
    }
    return *it->second;
  }

  std::unordered_map<sim::Addr, std::unique_ptr<Page>> pages_;
};

}  // namespace ccnoc::mem
