#pragma once

#include <cstdint>

#include "sim/types.hpp"

/// \file address_map.hpp
/// Physical address map of the platform. Each memory bank owns one
/// fixed-size, power-of-two region of the address space; an address's bank
/// index is simply its high bits. Cache nodes are numbered 0..n-1 and bank
/// nodes n..n+m-1 on the NoC, as in the paper's modelled architectures.

namespace ccnoc::mem {

class AddressMap {
 public:
  /// \param num_cpus   number of processor/cache nodes (NoC ids 0..n-1)
  /// \param num_banks  number of memory bank nodes (NoC ids n..n+m-1)
  /// \param bank_shift log2 of the per-bank region size (default 16 MB)
  AddressMap(unsigned num_cpus, unsigned num_banks, unsigned bank_shift = 24)
      : num_cpus_(num_cpus), num_banks_(num_banks), bank_shift_(bank_shift) {}

  [[nodiscard]] unsigned num_cpus() const { return num_cpus_; }
  [[nodiscard]] unsigned num_banks() const { return num_banks_; }
  [[nodiscard]] unsigned num_nodes() const { return num_cpus_ + num_banks_; }

  [[nodiscard]] sim::Addr bank_region_bytes() const { return sim::Addr(1) << bank_shift_; }

  [[nodiscard]] unsigned bank_index_of(sim::Addr a) const {
    auto idx = unsigned(a >> bank_shift_);
    CCNOC_ASSERT(idx < num_banks_, "address outside mapped banks");
    return idx;
  }

  [[nodiscard]] sim::NodeId cache_node(unsigned cpu) const {
    CCNOC_ASSERT(cpu < num_cpus_, "bad cpu index");
    return sim::NodeId(cpu);
  }

  [[nodiscard]] sim::NodeId bank_node(unsigned bank) const {
    CCNOC_ASSERT(bank < num_banks_, "bad bank index");
    return sim::NodeId(num_cpus_ + bank);
  }

  [[nodiscard]] sim::NodeId bank_node_of(sim::Addr a) const {
    return bank_node(bank_index_of(a));
  }

  [[nodiscard]] sim::Addr bank_base(unsigned bank) const {
    CCNOC_ASSERT(bank < num_banks_, "bad bank index");
    return sim::Addr(bank) << bank_shift_;
  }

  [[nodiscard]] bool is_cache_node(sim::NodeId n) const { return n < num_cpus_; }
  [[nodiscard]] bool is_bank_node(sim::NodeId n) const {
    return n >= num_cpus_ && n < num_cpus_ + num_banks_;
  }

 private:
  unsigned num_cpus_;
  unsigned num_banks_;
  unsigned bank_shift_;
};

}  // namespace ccnoc::mem
