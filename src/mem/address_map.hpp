#pragma once

#include <cstdint>

#include "sim/types.hpp"

/// \file address_map.hpp
/// Physical address map of the platform. Each memory bank owns one
/// fixed-size, power-of-two region of the address space; an address's bank
/// index is simply its high bits. Cache nodes are numbered 0..n-1 and bank
/// nodes n..n+m-1 on the NoC, as in the paper's modelled architectures.
///
/// Two-level hierarchy (hierarchy_levels=2): a tier of shared L2 bank nodes
/// is appended AFTER the memory banks (NoC ids n+m..n+m+k-1), so every flat
/// node id is unchanged. L2 banks are address-interleaved at block
/// granularity — consecutive blocks map to consecutive L2 banks — and
/// `home_node_of()` names the node a cache request must be sent to: the
/// block's home L2 bank when the tier exists, its memory bank otherwise.

namespace ccnoc::mem {

class AddressMap {
 public:
  /// \param num_cpus     number of processor/cache nodes (NoC ids 0..n-1)
  /// \param num_banks    number of memory bank nodes (NoC ids n..n+m-1)
  /// \param bank_shift   log2 of the per-bank region size (default 16 MB)
  /// \param num_l2_banks shared L2 bank nodes (0 = single-level platform)
  /// \param l2_shift     log2 of the L2 interleave granule (the block size)
  AddressMap(unsigned num_cpus, unsigned num_banks, unsigned bank_shift = 24,
             unsigned num_l2_banks = 0, unsigned l2_shift = 5)
      : num_cpus_(num_cpus),
        num_banks_(num_banks),
        bank_shift_(bank_shift),
        num_l2_banks_(num_l2_banks),
        l2_shift_(l2_shift) {}

  [[nodiscard]] unsigned num_cpus() const { return num_cpus_; }
  [[nodiscard]] unsigned num_banks() const { return num_banks_; }
  [[nodiscard]] unsigned num_l2_banks() const { return num_l2_banks_; }
  [[nodiscard]] bool two_level() const { return num_l2_banks_ != 0; }
  [[nodiscard]] unsigned num_nodes() const {
    return num_cpus_ + num_banks_ + num_l2_banks_;
  }

  [[nodiscard]] sim::Addr bank_region_bytes() const { return sim::Addr(1) << bank_shift_; }

  [[nodiscard]] unsigned bank_index_of(sim::Addr a) const {
    auto idx = unsigned(a >> bank_shift_);
    CCNOC_ASSERT(idx < num_banks_, "address outside mapped banks");
    return idx;
  }

  [[nodiscard]] sim::NodeId cache_node(unsigned cpu) const {
    CCNOC_ASSERT(cpu < num_cpus_, "bad cpu index");
    return sim::NodeId(cpu);
  }

  [[nodiscard]] sim::NodeId bank_node(unsigned bank) const {
    CCNOC_ASSERT(bank < num_banks_, "bad bank index");
    return sim::NodeId(num_cpus_ + bank);
  }

  [[nodiscard]] sim::NodeId bank_node_of(sim::Addr a) const {
    return bank_node(bank_index_of(a));
  }

  [[nodiscard]] sim::Addr bank_base(unsigned bank) const {
    CCNOC_ASSERT(bank < num_banks_, "bad bank index");
    return sim::Addr(bank) << bank_shift_;
  }

  [[nodiscard]] bool is_cache_node(sim::NodeId n) const { return n < num_cpus_; }
  [[nodiscard]] bool is_bank_node(sim::NodeId n) const {
    return n >= num_cpus_ && n < num_cpus_ + num_banks_;
  }
  [[nodiscard]] bool is_l2_node(sim::NodeId n) const {
    return n >= num_cpus_ + num_banks_ && n < num_nodes();
  }

  // --- shared L2 tier (two-level platforms only) ---------------------------
  [[nodiscard]] unsigned l2_index_of(sim::Addr a) const {
    CCNOC_ASSERT(num_l2_banks_ != 0, "no L2 tier in this platform");
    return unsigned(a >> l2_shift_) % num_l2_banks_;
  }

  [[nodiscard]] sim::NodeId l2_node(unsigned l2) const {
    CCNOC_ASSERT(l2 < num_l2_banks_, "bad L2 bank index");
    return sim::NodeId(num_cpus_ + num_banks_ + l2);
  }

  [[nodiscard]] sim::NodeId l2_node_of(sim::Addr a) const {
    return l2_node(l2_index_of(a));
  }

  /// Where an L1 request for \p a must be sent: the home L2 bank in a
  /// two-level platform, the memory bank otherwise. In a single-level map
  /// this is exactly bank_node_of(), so flat platforms are bit-identical.
  [[nodiscard]] sim::NodeId home_node_of(sim::Addr a) const {
    return num_l2_banks_ != 0 ? l2_node_of(a) : bank_node_of(a);
  }

 private:
  unsigned num_cpus_;
  unsigned num_banks_;
  unsigned bank_shift_;
  unsigned num_l2_banks_;
  unsigned l2_shift_;
};

}  // namespace ccnoc::mem
