#pragma once

#include <array>
#include <map>
#include <vector>

#include "mem/bank.hpp"

/// \file l2_bank.hpp
/// A banked shared L2 node of a two-level platform (ROADMAP direction 2):
/// private L1s in front of address-interleaved L2 banks in front of the
/// memory banks. The L2 bank IS the coherence home for the blocks it is
/// interleaved onto — it inherits the whole memory-side protocol engine
/// from mem::Bank, with its Censier–Feautrier directory tracking the L1s —
/// and layers two things on top:
///
///  * a finite, set-associative data array: a request for a non-resident
///    block first *fills* the line from the block's memory bank (granted
///    Exclusive — the block-granularity interleave makes this L2 bank the
///    memory's only client for the block, so the flat MESI memory engine
///    serves the upper tier unchanged), and a fill into a full set first
///    *recalls* the victim — back-invalidating its L1 sharers (Invalidate)
///    or pulling the data from its L1 owner (FetchInv) — before the victim
///    is evicted (silently when clean, with a WriteBack when the L2 copy is
///    newer than DRAM). Recalls are what keep the hierarchy inclusive.
///
///  * an L2 line state per resident block (E from the fill, dirtied to M by
///    any transaction-path byte write via the on_storage_write hook), so
///    write-through traffic stops at the shared L2: DRAM is updated only
///    when a dirty line is evicted or flushed.
///
/// Every new transition is a declared row: the L2 line FSM and the recall
/// completion events resolve through proto::l2_table_for() (falling back
/// from the flat table), so the hierarchy is covered by the same
/// declarative tables the exhaustive model checker verifies.
///
/// Fills and recalls occupy the block's transaction slot (txns_), which is
/// exactly the serialization the base engine already enforces: L1 requests
/// arriving meanwhile queue behind them and are serviced in order once the
/// line is resident.

namespace ccnoc::mem {

struct L2BankConfig {
  BankConfig bank;  ///< service timing, block size, direct-ack policy

  /// Data-array geometry per L2 bank. The default (16 KB, 4-way) is four
  /// L1s' worth of capacity — small enough that directed tests can force
  /// recalls without heroics.
  unsigned size_bytes = 16384;
  unsigned ways = 4;

  [[nodiscard]] unsigned num_sets() const {
    return size_bytes / bank.block_bytes / ways;
  }
};

class L2Bank final : public Bank {
 public:
  L2Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
         unsigned l2_index, Protocol proto, L2BankConfig cfg = {});

  void deliver(const noc::Packet& pkt) override;

  [[nodiscard]] unsigned l2_index() const { return l2_index_; }
  [[nodiscard]] const L2BankConfig& l2_config() const { return l2cfg_; }

  [[nodiscard]] bool resident(sim::Addr block) const {
    return lines_.count(block_of(block)) != 0;
  }
  /// Line state of \p block (kInvalid when not resident).
  [[nodiscard]] proto::LineState line_state(sim::Addr block) const {
    auto it = lines_.find(block_of(block));
    return it == lines_.end() ? proto::LineState::kInvalid : it->second;
  }
  /// True while \p block's victim recall is in flight (invariant-walker
  /// escape: the L1-facing directory is legitimately mid-teardown).
  [[nodiscard]] bool has_open_recall(sim::Addr block) const {
    return recalls_.count(block_of(block)) != 0;
  }

  /// Visit every resident line as (block, state), in deterministic
  /// (set, insertion) order.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const auto& set : sets_)
      for (sim::Addr block : set) fn(block, lines_.at(block));
  }

  /// Untimed post-run flush: copy Modified L2 lines back via \p write so
  /// the memory image is complete for verification (stage two of the
  /// System's hierarchical flush; stage one is absorb_l1_flush below).
  template <typename WriteFn>
  void flush_dirty(WriteFn&& write) const {
    std::array<std::uint8_t, noc::kMaxBlockBytes> buf;
    for (const auto& set : sets_) {
      for (sim::Addr block : set) {
        if (lines_.at(block) != proto::LineState::kModified) continue;
        storage_.read(block, buf.data(), cfg_.block_bytes);
        write(block, buf.data(), cfg_.block_bytes);
      }
    }
  }

  /// Untimed absorption of an L1's flushed Modified line. Inclusion makes
  /// the line resident here by construction; its bytes land in L2 storage
  /// and the line is dirty from DRAM's point of view. Like the L1 flush
  /// itself this is outside the timed protocol, so no FSM row fires.
  void absorb_l1_flush(sim::Addr block, const std::uint8_t* data, unsigned len);

 protected:
  void complete_txn(sim::Addr block) override;
  void on_storage_write(sim::Addr block) override;

 private:
  /// A fill in flight (or deferred on a victim recall): the block's txn
  /// slot is held from start_fill until the ReadResponse installs the line.
  struct Fill {
    std::uint64_t txn = 0;
    bool requested = false;  ///< ReadShared sent to the memory bank
    bool deferred = false;   ///< at least one launch attempt was blocked
  };
  /// A victim recall in flight: the victim's txn slot is held until every
  /// L1 ack (or the owner's data) arrived and the line is evicted.
  struct Recall {
    std::uint64_t txn = 0;
    unsigned pending_acks = 0;              ///< Invalidate flavour
    bool waiting_data = false;              ///< FetchInv flavour
    sim::NodeId owner = sim::kInvalidNode;  ///< FetchInv target
  };

  [[nodiscard]] unsigned set_of(sim::Addr block) const {
    return unsigned((block / cfg_.block_bytes) / map_.num_l2_banks()) %
           l2cfg_.num_sets();
  }
  /// Unique ids for bank-originated transactions (fills, recalls, write-
  /// backs); the L2 node id keys a namespace disjoint from every CPU's.
  [[nodiscard]] std::uint64_t next_l2_txn() {
    return (std::uint64_t(node_) * 2 + 1) << 40 | ++l2_seq_;
  }
  void l2_fsm(sim::Addr block, proto::CacheEvent ev);

  void start_fill(sim::Addr block);
  void try_launch_fill(sim::Addr block, Fill& f);
  void retry_deferred_fills();
  void handle_fill_response(const noc::Packet& pkt);

  void start_recall(sim::Addr victim);
  void recall_invalidate_ack(const noc::Packet& pkt);
  void recall_fetch_response(const noc::Packet& pkt);
  void recall_write_back(const noc::Packet& pkt);
  void absorb_recall_data(sim::Addr block, Recall& r, const noc::Message& msg);
  void finish_recall(sim::Addr block);
  void evict_line(sim::Addr block);

  unsigned l2_index_;
  L2BankConfig l2cfg_;
  std::uint64_t l2_seq_ = 0;
  bool retrying_ = false;  ///< re-entrancy guard for retry_deferred_fills

  std::unordered_map<sim::Addr, proto::LineState> lines_;
  std::vector<std::vector<sim::Addr>> sets_;  ///< resident blocks, in order
  // Ordered maps: deferred-fill retry and teardown must iterate in a
  // platform-independent order.
  std::map<sim::Addr, Fill> fills_;
  std::map<sim::Addr, Recall> recalls_;

  struct L2Stats {
    sim::Counter* fills;
    sim::Counter* recalls;
    sim::Counter* recall_invals;
    sim::Counter* recall_fetches;
    sim::Counter* evictions_clean;
    sim::Counter* evictions_dirty;
  };
  L2Stats l2st_;
};

}  // namespace ccnoc::mem
