#pragma once

/// \file protocol.hpp
/// The two write policies compared by the paper.

namespace ccnoc::mem {

enum class Protocol {
  kWti,     ///< write-through + write-invalidate (V/I caches, clean memory)
  kWbMesi,  ///< write-back MESI (Illinois-style) + write-invalidate
  kWtu,     ///< write-through + write-update (extension: the paper's §2
            ///< "other" hardware-protocol category — sharers' copies are
            ///< patched in place instead of invalidated)
};

[[nodiscard]] inline const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kWti: return "WTI";
    case Protocol::kWbMesi: return "WB-MESI";
    case Protocol::kWtu: return "WTU";
  }
  return "?";
}

/// Both write-through flavours use the same cache-side controller.
[[nodiscard]] inline bool is_write_through(Protocol p) {
  return p == Protocol::kWti || p == Protocol::kWtu;
}

}  // namespace ccnoc::mem
