#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/profile.hpp"
#include "sim/types.hpp"

/// \file directory.hpp
/// Censier–Feautrier full-map directory (paper §1, ref [5]): one presence
/// bit per cache plus a dirty flag per memory block. With at most 64
/// processors (the paper's largest platform) the presence vector fits one
/// 64-bit word. Entries are stored sparsely — blocks never cached have no
/// entry — which keeps the host-memory footprint proportional to the
/// touched working set.
///
/// Clients are identified by NoC node id. A directory whose clients start
/// at a nonzero node id (the memory tier of a two-level platform tracks L2
/// bank nodes, which sit above every CPU and memory-bank id) passes that
/// first id as \p client_base: presence bit i then stands for node
/// base + i, so the vector never wastes bits on nodes that cannot be
/// clients and 64 real clients always fit.

namespace ccnoc::mem {

struct DirEntry {
  std::uint64_t presence = 0;  ///< bit i set ⇔ client (base + i) may hold a copy
  bool dirty = false;          ///< an owner holds the block in E or M
  sim::NodeId owner = sim::kInvalidNode;
  sim::NodeId base = 0;  ///< node id of presence bit 0 (owning Directory's)

  [[nodiscard]] bool has_sharer() const { return presence != 0; }
  [[nodiscard]] unsigned sharer_count() const { return unsigned(__builtin_popcountll(presence)); }
  [[nodiscard]] bool is_sharer(sim::NodeId c) const {
    return c >= base && ((presence >> (c - base)) & 1);
  }
};

class Directory {
 public:
  explicit Directory(unsigned num_caches, sim::NodeId client_base = 0)
      : num_caches_(num_caches), base_(client_base) {
    CCNOC_ASSERT(num_caches <= 64, "full-map directory supports up to 64 caches");
  }

  /// Entry lookup; returns an all-clear entry for untouched blocks.
  [[nodiscard]] DirEntry lookup(sim::Addr block) const {
    auto it = entries_.find(block);
    return it == entries_.end() ? DirEntry{} : it->second;
  }

  /// Sharing profiler attachment (null when profiling is off, mirroring the
  /// probe pattern: the common path pays one null-pointer branch). \p node
  /// is the owning bank's NoC node, the profiler's recording/order key.
  void set_profiler(sim::Profiler* p, sim::NodeId node) {
    pf_ = p;
    node_ = node;
  }

  void add_sharer(sim::Addr block, sim::NodeId c) {
    check(c);
    auto& e = entries_[block];
    e.base = base_;
    e.presence |= std::uint64_t(1) << (c - base_);
    if (pf_ != nullptr) [[unlikely]]
      pf_->dir_width(node_, block, e.sharer_count());
  }

  void remove_sharer(sim::Addr block, sim::NodeId c) {
    check(c);
    auto it = entries_.find(block);
    if (it == entries_.end()) return;
    it->second.presence &= ~(std::uint64_t(1) << (c - base_));
    if (it->second.owner == c) {
      it->second.owner = sim::kInvalidNode;
      it->second.dirty = false;
    }
    gc(it);
  }

  /// Grant exclusive ownership: sole presence bit + dirty flag. Used when a
  /// MESI cache is given E or M (E may silently become M, so the directory
  /// conservatively treats both as "must fetch from owner").
  void set_exclusive(sim::Addr block, sim::NodeId c) {
    check(c);
    auto& e = entries_[block];
    e.base = base_;
    e.presence = std::uint64_t(1) << (c - base_);
    e.dirty = true;
    e.owner = c;
    if (pf_ != nullptr) [[unlikely]] pf_->dir_width(node_, block, 1);
  }

  /// Owner downgraded (M→S after a Fetch): memory now clean, owner remains
  /// a sharer.
  void clear_dirty(sim::Addr block) {
    auto it = entries_.find(block);
    if (it == entries_.end()) return;
    it->second.dirty = false;
    it->second.owner = sim::kInvalidNode;
  }

  /// Drop every presence bit except (optionally) \p keep. Ownership state
  /// survives only when the kept sharer IS the current owner (e.g. an owner
  /// re-securing exclusivity on its own line); clearing it in that case
  /// would silently forget who must be fetched from.
  void clear_all_except(sim::Addr block, sim::NodeId keep = sim::kInvalidNode) {
    auto it = entries_.find(block);
    if (it == entries_.end()) return;
    std::uint64_t mask = (keep == sim::kInvalidNode)
                             ? 0
                             : (it->second.presence & (std::uint64_t(1) << (keep - base_)));
    it->second.presence = mask;
    if (mask == 0 || it->second.owner != keep) {
      it->second.dirty = false;
      it->second.owner = sim::kInvalidNode;
    }
    gc(it);
  }

  /// Sharer node ids, excluding \p except.
  [[nodiscard]] std::vector<sim::NodeId> sharers(sim::Addr block,
                                                 sim::NodeId except = sim::kInvalidNode) const {
    std::vector<sim::NodeId> out;
    auto it = entries_.find(block);
    if (it == entries_.end()) return out;
    std::uint64_t bits = it->second.presence;
    if (except != sim::kInvalidNode) bits &= ~(std::uint64_t(1) << (except - base_));
    while (bits) {
      unsigned c = unsigned(__builtin_ctzll(bits));
      out.push_back(sim::NodeId(c) + base_);
      bits &= bits - 1;
    }
    return out;
  }

  [[nodiscard]] std::size_t tracked_blocks() const { return entries_.size(); }

  /// Visit every tracked entry as (block, entry). Iteration order is
  /// unspecified; the invariant walker sorts its findings itself.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [block, e] : entries_) fn(block, e);
  }

 private:
  void check(sim::NodeId c) const {
    CCNOC_ASSERT(c >= base_ && unsigned(c - base_) < num_caches_,
                 "cache id out of range");
  }

  void gc(std::unordered_map<sim::Addr, DirEntry>::iterator it) {
    if (it->second.presence == 0 && !it->second.dirty) entries_.erase(it);
  }

  unsigned num_caches_;
  sim::NodeId base_ = 0;  ///< node id of presence bit 0
  sim::Profiler* pf_ = nullptr;
  sim::NodeId node_ = 0;  ///< owning bank's NoC node (profiler order key)
  std::unordered_map<sim::Addr, DirEntry> entries_;
};

}  // namespace ccnoc::mem
