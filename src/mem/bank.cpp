#include "mem/bank.hpp"

#include <algorithm>
#include <cstring>

namespace ccnoc::mem {

using noc::Grant;
using noc::Message;
using noc::MsgType;

Bank::Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
           unsigned bank_index, Protocol proto, BankConfig cfg)
    : Bank(sim, net, map, map.bank_node(bank_index),
           "bank" + std::to_string(bank_index), bank_index, proto, cfg) {}

Bank::Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
           sim::NodeId node, const std::string& name, std::uint32_t tid,
           Protocol proto, BankConfig cfg)
    : sim_(sim),
      net_(net),
      map_(map),
      proto_(proto),
      cfg_(cfg),
      node_(node),
      dir_(cfg.dir_clients != 0 ? cfg.dir_clients : map.num_cpus(),
           cfg.dir_client_base),
      ptbl_(proto::table_for(proto)),
      cov_(&sim.proto_coverage_shard(node_)),
      tr_(&sim.tracer()),
      probe_(sim.probe()),
      pf_(&sim.profiler()),
      lat_(&sim.latency()),
      bank_tid_(tid) {
  CCNOC_ASSERT((cfg_.block_bytes & (cfg_.block_bytes - 1)) == 0,
               "block size must be a power of two");
  CCNOC_ASSERT(cfg_.block_bytes <= noc::kMaxBlockBytes, "block too large for messages");
  net_.attach(node_, *this);

  const std::string prefix = name + ".";
  auto& reg = sim_.stats();
  st_.requests = &reg.counter(prefix + "requests");
  st_.block_conflicts = &reg.counter(prefix + "block_conflicts");
  st_.busy_cycles = &reg.counter(prefix + "busy_cycles");
  st_.upgrade_races = &reg.counter(prefix + "upgrade_races");
  st_.updates_sent = &reg.counter(prefix + "updates_sent");
  st_.stale_update_targets = &reg.counter(prefix + "stale_update_targets");
  st_.invalidations_sent = &reg.counter(prefix + "invalidations_sent");
  st_.fetches_sent = &reg.counter(prefix + "fetches_sent");
  st_.stale_fetch_responses = &reg.counter(prefix + "stale_fetch_responses");
  st_.writebacks = &reg.counter(prefix + "writebacks");
  st_.queue_delay = &reg.sample(prefix + "queue_delay");

  std::string bank_name = name;
  trace_bank_id_ = tr_->register_bank(bank_name, node_);
  profile_bank_id_ =
      pf_->register_bank(bank_name, node_, map_.is_l2_node(node_) ? 1u : 0u);
  if (pf_->on()) dir_.set_profiler(pf_, node_);
  tr_->set_track_name(sim::Tracer::kPidBank, bank_tid_, std::move(bank_name));
}

void Bank::deliver(const noc::Packet& pkt) {
  switch (pkt.msg.type) {
    case MsgType::kReadShared:
    case MsgType::kReadExclusive:
    case MsgType::kUpgrade:
    case MsgType::kWriteWord:
    case MsgType::kAtomicSwap:
    case MsgType::kAtomicAdd:
      enqueue_request(pkt);
      break;
    case MsgType::kWriteBack:
      handle_write_back(pkt);
      break;
    case MsgType::kInvalidateAck:
      handle_invalidate_ack(pkt);
      break;
    case MsgType::kUpdateAck:
      handle_update_ack(pkt);
      break;
    case MsgType::kFetchResponse:
      handle_fetch_response(pkt);
      break;
    case MsgType::kTxnDone:
      handle_txn_done(pkt);
      break;
    default:
      CCNOC_ASSERT(false, std::string("bank received unexpected message ") +
                              to_string(pkt.msg.type));
  }
}

void Bank::enqueue_request(const noc::Packet& pkt) {
  st_.requests->inc();
  const sim::Addr block = block_of(pkt.msg.addr);
  if (txns_.count(block) != 0) {
    // Block busy: serialize behind the active transaction.
    waiting_[block].push_back(pkt);
    st_.block_conflicts->inc();
    ++waiting_count_;
    pf_->bank_enqueue(sim_.now(), profile_bank_id_, block, waiting_count_);
    if (tr_->on()) {
      tr_->bank_queue_depth(trace_bank_id_, sim_.now(), waiting_count_);
      tr_->txn_note(sim_.now(), pkt.msg.txn, node_, "bank_queued", "block", block);
    }
    return;
  }
  start_service(pkt.msg, pkt.src);
}

void Bank::start_service(Message req, sim::NodeId src) {
  const sim::Addr block = block_of(req.addr);
  auto [it, fresh] = txns_.emplace(block, Txn{});
  CCNOC_ASSERT(fresh, "transaction already active on block");
  it->second.req = std::move(req);
  it->second.src = src;

  const MsgType rt = it->second.req.type;
  sim::Cycle service = (rt == MsgType::kWriteWord || rt == MsgType::kAtomicSwap ||
                        rt == MsgType::kAtomicAdd || rt == MsgType::kUpgrade)
                           ? cfg_.word_service
                           : cfg_.block_service;
  // The bank pipeline accepts a request every initiation_interval cycles;
  // each request completes after its full service latency.
  sim::Cycle start = std::max(sim_.now(), port_free_);
  port_free_ = start + cfg_.initiation_interval;
  st_.busy_cycles->inc(cfg_.initiation_interval);
  st_.queue_delay->add(double(start - sim_.now()));
  // Phase attribution: arrival→start is pipeline-port queueing, then the
  // directory/storage access itself. Both boundaries are known now.
  lat_->mark(sim_.now(), it->second.req.txn, node_, sim::Phase::kBankQueue, start);
  lat_->mark(sim_.now(), it->second.req.txn, node_, sim::Phase::kDirService,
             start + service);
  // Service occupancy on the bank's trace track, one slice per request.
  tr_->complete(start, start + service, node_, to_string(rt),
                sim::Tracer::kPidBank, bank_tid_);
  sim_.schedule_at(start + service, [this, block] { process_request(block); });
}

void Bank::process_request(sim::Addr block) {
  auto it = txns_.find(block);
  CCNOC_ASSERT(it != txns_.end(), "service completed for vanished transaction");
  Txn& t = it->second;
  switch (t.req.type) {
    case MsgType::kReadShared: process_read_shared(t); break;
    case MsgType::kReadExclusive: process_read_exclusive(t); break;
    case MsgType::kUpgrade: process_upgrade(t); break;
    case MsgType::kWriteWord:
    case MsgType::kAtomicSwap:
    case MsgType::kAtomicAdd: process_write_word(t); break;
    default: CCNOC_ASSERT(false, "bad transaction kind");
  }
}

void Bank::read_block(sim::Addr block, Message& m) const {
  m.data_len = std::uint8_t(cfg_.block_bytes);
  storage_.read(block, m.data.data(), cfg_.block_bytes);
}

void Bank::process_read_shared(Txn& t) {
  const sim::Addr block = block_of(t.req.addr);
  DirEntry e = dir_.lookup(block);

  if (t.req.track && e.dirty && e.owner == t.src) {
    // The requester is the recorded owner yet misses: it silently evicted a
    // clean Exclusive copy (a Modified one would have written back first,
    // and per-flow FIFO order delivers that write-back before this read).
    // Untracked reads must NOT take this shortcut: an instruction fetch
    // from the owner's node says nothing about the dcache's copy, which may
    // still be live (or still in flight to the node) — fetch from it instead.
    proto::DirState before = dstate(block);
    dir_.remove_sharer(block, t.src);
    dir_event(block, before, proto::DirEvent::kSharerDrop);
    e = dir_.lookup(block);
  }
  if (e.dirty) {
    // Foreign cache holds E/M: 4-hop path through the memory node (paper
    // §4.2 read-request decomposition).
    request_fetch(block, t, MsgType::kFetch);
    return;
  }

  Message resp;
  resp.type = MsgType::kReadResponse;
  resp.addr = block;
  resp.txn = t.req.txn;
  read_block(block, resp);

  proto::DirState before = dstate(block);
  if (!t.req.track) {
    // Instruction fetch: read-only code, not tracked by the directory.
    resp.grant = Grant::kShared;
  } else if (proto_ == Protocol::kWbMesi && !e.has_sharer()) {
    // Sole reader: grant Exclusive. The cache may silently modify, so the
    // directory conservatively records an owner.
    resp.grant = Grant::kExclusive;
    dir_set_exclusive(block, t.src);
  } else {
    resp.grant = Grant::kShared;
    dir_.add_sharer(block, t.src);
  }
  dir_event(block, before,
            t.req.track ? proto::DirEvent::kReadShared : proto::DirEvent::kReadUntracked);
  respond(t, std::move(resp), 2);
  complete_txn(block);
}

void Bank::process_read_exclusive(Txn& t) {
  CCNOC_ASSERT(proto_ == Protocol::kWbMesi, "ReadExclusive in a WTI platform");
  const sim::Addr block = block_of(t.req.addr);
  DirEntry e = dir_.lookup(block);

  if (e.dirty && e.owner != t.src) {
    request_fetch(block, t, MsgType::kFetchInv);
    return;
  }
  // A stale presence bit for the requester (silent clean eviction followed
  // by a miss) must not trigger a self-invalidation.
  auto targets = dir_.sharers(block, t.src);
  if (!targets.empty()) {
    send_invalidations(block, t, t.src);
    return;
  }
  on_acks_complete(block, t);
}

void Bank::process_upgrade(Txn& t) {
  CCNOC_ASSERT(proto_ == Protocol::kWbMesi, "Upgrade in a WTI platform");
  const sim::Addr block = block_of(t.req.addr);
  DirEntry e = dir_.lookup(block);

  if (!e.is_sharer(t.src)) {
    // The requester lost its copy to a racing invalidation while the
    // upgrade was in flight: fall back to a full write-allocate (the
    // acknowledgement will carry data).
    st_.upgrade_races->inc();
    if (e.dirty && e.owner != t.src) {
      request_fetch(block, t, MsgType::kFetchInv);
      return;
    }
  }
  auto targets = dir_.sharers(block, t.src);
  if (!targets.empty()) {
    send_invalidations(block, t, t.src);
    return;
  }
  on_acks_complete(block, t);
}

void Bank::process_write_word(Txn& t) {
  CCNOC_ASSERT(is_write_through(proto_), "WriteWord in a MESI platform");
  const sim::Addr block = block_of(t.req.addr);
  // An atomic invalidates the requester's own copy too (the cache dropped
  // it locally when issuing the operation).
  sim::NodeId except = t.req.type == MsgType::kWriteWord ? t.src : sim::kInvalidNode;
  auto targets = dir_.sharers(block, except);
  if (!targets.empty()) {
    if (proto_ == Protocol::kWtu) {
      // Write-update: patch every foreign copy in place (paper §2's other
      // protocol category) instead of destroying it.
      send_updates(block, t, except);
    } else {
      // Invalidate every foreign copy before the write becomes visible
      // (write-invalidate, paper §2).
      send_invalidations(block, t, except);
    }
    return;
  }
  on_acks_complete(block, t);
}

void Bank::send_updates(sim::Addr block, Txn& t, sim::NodeId except) {
  auto targets = dir_.sharers(block, except);
  CCNOC_ASSERT(!targets.empty(), "update round with no targets");
  pf_->fanout(sim_.now(), node_, block, unsigned(targets.size()));
  t.pending_acks = unsigned(targets.size());
  t.had_inval_round = true;  // same critical-path hop accounting as invalidations

  // The value every copy must end up with: the written word, or the
  // post-RMW result for atomics. The block is transaction-locked, so the
  // storage word cannot change before the acknowledgements return.
  std::uint64_t final = 0;
  std::memcpy(&final, t.req.data.data(), t.req.access_size);
  if (t.req.type == MsgType::kAtomicAdd) {
    final += storage_.read_uint(t.req.addr, t.req.access_size);
  }

  tr_->txn_note(sim_.now(), t.req.txn, node_, "update_fanout", "targets",
                targets.size());
  for (sim::NodeId c : targets) {
    Message u;
    u.type = MsgType::kUpdateWord;
    u.addr = t.req.addr;
    u.access_size = t.req.access_size;
    u.data_len = t.req.access_size;
    std::memcpy(u.data.data(), &final, t.req.access_size);
    u.txn = t.req.txn;
    u.requester = t.src;
    net_.send(node_, c, u);
  }
  st_.updates_sent->inc(targets.size());
}

void Bank::handle_update_ack(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  auto it = txns_.find(block);
  CCNOC_ASSERT(it != txns_.end(), "stray UpdateAck");
  Txn& t = it->second;
  CCNOC_ASSERT(t.pending_acks > 0, "unexpected UpdateAck");
  if (!pkt.msg.had_copy) {
    // Stale presence bit (the sharer silently evicted): stop updating it.
    proto::DirState before = dstate(block);
    dir_.remove_sharer(block, pkt.src);
    dir_event(block, before, proto::DirEvent::kSharerDrop);
    st_.stale_update_targets->inc();
  }
  if (--t.pending_acks == 0) on_acks_complete(block, t);
}

void Bank::send_invalidations(sim::Addr block, Txn& t, sim::NodeId except) {
  auto targets = dir_.sharers(block, except);
  CCNOC_ASSERT(!targets.empty(), "invalidation round with no targets");
  pf_->fanout(sim_.now(), node_, block, unsigned(targets.size()));
  // Direct-ack mode applies to rounds the requester itself triggered (its
  // own writes/upgrades); data-bearing allocations keep the memory-collected
  // flow.
  const bool direct =
      cfg_.direct_inval_ack && (t.req.type == MsgType::kWriteWord ||
                                t.req.type == MsgType::kUpgrade);
  t.had_inval_round = true;
  if (direct) {
    t.direct_mode = true;
    t.direct_acks = unsigned(targets.size());
  } else {
    t.pending_acks = unsigned(targets.size());
  }
  tr_->txn_note(sim_.now(), t.req.txn, node_, "inval_fanout", "targets",
                targets.size(), "direct", direct ? 1 : 0);
  for (sim::NodeId c : targets) {
    Message inv;
    inv.type = MsgType::kInvalidate;
    inv.addr = block;
    inv.txn = t.req.txn;
    inv.requester = t.src;
    inv.direct_ack = direct;
    net_.send(node_, c, inv);
    if (direct) {
      // Direct-ack mode removes the sharer at send time: the ack will go to
      // the requester, so the bank will not hear it.
      proto::DirState before = dstate(block);
      dir_.remove_sharer(block, c);
      dir_event(block, before, proto::DirEvent::kSharerDrop);
    }
  }
  st_.invalidations_sent->inc(targets.size());
  if (direct) {
    // Respond now (the requester completes once the acks reach *it*) and
    // hold the block until its TxnDone releases it.
    on_acks_complete(block, t);
  }
}

void Bank::request_fetch(sim::Addr block, Txn& t, MsgType fetch_type) {
  DirEntry e = dir_.lookup(block);
  CCNOC_ASSERT(e.dirty && e.owner != sim::kInvalidNode, "fetch without dirty owner");
  t.waiting_data = true;
  t.data_from = e.owner;
  t.had_fetch_round = true;
  tr_->txn_note(sim_.now(), t.req.txn, node_, "fetch_owner", "owner", e.owner);
  Message f;
  f.type = fetch_type;
  f.addr = block;
  f.txn = t.req.txn;
  f.requester = t.src;
  net_.send(node_, e.owner, f);
  st_.fetches_sent->inc();
}

void Bank::handle_invalidate_ack(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  auto it = txns_.find(block);
  CCNOC_ASSERT(it != txns_.end(), "stray InvalidateAck");
  Txn& t = it->second;
  CCNOC_ASSERT(t.pending_acks > 0, "unexpected InvalidateAck");
  proto::DirState before = dstate(block);
  dir_.remove_sharer(block, pkt.src);
  dir_event(block, before, proto::DirEvent::kSharerDrop);
  if (--t.pending_acks == 0) on_acks_complete(block, t);
}

void Bank::handle_fetch_response(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  auto it = txns_.find(block);
  if (it == txns_.end() || !it->second.waiting_data || it->second.data_from != pkt.src ||
      it->second.req.txn != pkt.msg.txn) {
    // The owner's WriteBack raced ahead of the Fetch and already satisfied
    // this transaction; the duplicate data is dropped. The txn check guards
    // the subtler race where that dangling response only arrives after a
    // NEWER transaction has started fetching from the same cache — without
    // it, the stale data would be accepted as current (found by ccnoc_model).
    st_.stale_fetch_responses->inc();
    return;
  }
  on_data_arrived(block, it->second, pkt.msg);
}

void Bank::handle_write_back(const noc::Packet& pkt) {
  CCNOC_ASSERT(proto_ == Protocol::kWbMesi, "WriteBack in a WTI platform");
  const sim::Addr block = block_of(pkt.msg.addr);
  st_.writebacks->inc();

  // The write-back occupies one pipeline slot like any block write.
  sim::Cycle start = std::max(sim_.now(), port_free_);
  port_free_ = start + cfg_.initiation_interval;
  st_.busy_cycles->inc(cfg_.initiation_interval);

  auto it = txns_.find(block);
  if (it != txns_.end() && it->second.waiting_data && it->second.data_from == pkt.src) {
    // The fetch we sent (or are about to send) crossed this write-back in
    // flight: accept the write-back as the fetch data.
    Message ack;
    ack.type = MsgType::kWriteBackAck;
    ack.addr = block;
    ack.txn = pkt.msg.txn;
    ack.port = pkt.msg.port;
    net_.send(node_, pkt.src, ack);
    proto::DirState before = dstate(block);
    dir_.remove_sharer(block, pkt.src);
    dir_event(block, before, proto::DirEvent::kWriteBack);
    on_data_arrived(block, it->second, pkt.msg);
    return;
  }

  CCNOC_ASSERT(pkt.msg.data_len == cfg_.block_bytes, "short write-back");
  storage_.write(block, pkt.msg.data.data(), cfg_.block_bytes);
  on_storage_write(block);
  proto::DirState before = dstate(block);
  dir_.remove_sharer(block, pkt.src);
  dir_event(block, before, proto::DirEvent::kWriteBack);
  Message ack;
  ack.type = MsgType::kWriteBackAck;
  ack.addr = block;
  ack.txn = pkt.msg.txn;
  ack.port = pkt.msg.port;
  ack.path_hops = 2;
  net_.send(node_, pkt.src, ack);
}

void Bank::on_data_arrived(sim::Addr block, Txn& t, const Message& data_msg) {
  // Time since the last boundary (end of directory service) was spent
  // fetching the block from its dirty owner.
  lat_->mark(sim_.now(), t.req.txn, node_, sim::Phase::kOwnerFetch, sim_.now());
  if (data_msg.data_len != 0) {
    CCNOC_ASSERT(data_msg.data_len == cfg_.block_bytes, "short fetch data");
    storage_.write(block, data_msg.data.data(), cfg_.block_bytes);
    on_storage_write(block);
  }
  // data_len == 0: the owner had silently evicted a clean Exclusive copy,
  // so the memory copy is already current.
  t.waiting_data = false;

  proto::DirState before = dstate(block);
  proto::DirEvent ev = proto::DirEvent::kReadShared;
  switch (t.req.type) {
    case MsgType::kReadShared: {
      // Owner downgraded M→S; memory clean again; requester becomes sharer.
      dir_clear_dirty(block);
      if (t.req.track) dir_.add_sharer(block, t.src);
      if (!t.req.track) ev = proto::DirEvent::kReadUntracked;
      Message resp;
      resp.type = MsgType::kReadResponse;
      resp.addr = block;
      resp.txn = t.req.txn;
      resp.grant = Grant::kShared;
      read_block(block, resp);
      respond(t, std::move(resp), 4);
      break;
    }
    case MsgType::kReadExclusive:
    case MsgType::kUpgrade: {
      // Former owner invalidated; requester takes exclusive ownership.
      dir_.clear_all_except(block);
      dir_set_exclusive(block, t.src);
      ev = t.req.type == MsgType::kReadExclusive ? proto::DirEvent::kReadExclusive
                                                 : proto::DirEvent::kUpgrade;
      Message resp;
      resp.type = t.req.type == MsgType::kReadExclusive ? MsgType::kReadResponse
                                                        : MsgType::kUpgradeAck;
      resp.addr = block;
      resp.txn = t.req.txn;
      resp.grant = Grant::kModified;
      read_block(block, resp);
      respond(t, std::move(resp), 4);
      break;
    }
    default:
      CCNOC_ASSERT(false, "data arrived for a non-fetching transaction");
  }
  dir_event(block, before, ev);
  complete_txn(block);
}

void Bank::on_acks_complete(sim::Addr block, Txn& t) {
  // Bank-collected rounds converge here; direct-ack rounds converge at the
  // requester, which attributes the fan-out phase itself.
  if (t.had_inval_round && !t.direct_mode) {
    lat_->mark(sim_.now(), t.req.txn, node_, sim::Phase::kFanoutAcks, sim_.now());
  }
  // Direct-ack rounds shorten the critical path to 3 hops: request,
  // invalidate, ack-to-requester (the response overlaps the invalidations).
  unsigned hops = t.had_inval_round ? (t.direct_mode ? 3 : 4) : 2;
  if (t.had_inval_round) {
    tr_->txn_note(sim_.now(), t.req.txn, node_, "acks_complete", "hops", hops);
  }
  proto::DirState before = dstate(block);
  proto::DirEvent ev = proto::DirEvent::kReadExclusive;
  switch (t.req.type) {
    case MsgType::kWriteWord: {
      storage_.write(t.req.addr, t.req.data.data(), t.req.access_size);
      on_storage_write(block);
      if (probe_ != nullptr) [[unlikely]] probe_global_store(t);
      // Invalidate flavour: foreign copies are gone; the writer keeps its
      // (updated) copy if it had one. Update flavour: every copy was
      // patched in place and stays registered.
      if (proto_ != Protocol::kWtu) dir_.clear_all_except(block, t.src);
      ev = proto_ == Protocol::kWtu ? proto::DirEvent::kWriteUpdate
                                    : proto::DirEvent::kWriteThrough;
      Message ack;
      ack.type = MsgType::kWriteAck;
      ack.addr = t.req.addr;
      ack.txn = t.req.txn;
      respond(t, std::move(ack), hops);
      break;
    }
    case MsgType::kAtomicSwap:
    case MsgType::kAtomicAdd: {
      // Read-modify-write performed atomically at the bank (the WTI
      // equivalent of SPARC ldstub/swap, plus fetch-and-add).
      if (probe_ != nullptr) [[unlikely]] probe_global_atomic(t);
      Message resp;
      resp.type = MsgType::kSwapResponse;
      resp.addr = t.req.addr;
      resp.txn = t.req.txn;
      resp.data_len = t.req.access_size;
      storage_.read(t.req.addr, resp.data.data(), t.req.access_size);
      if (t.req.type == MsgType::kAtomicAdd) {
        std::uint64_t old = storage_.read_uint(t.req.addr, t.req.access_size);
        std::uint64_t operand = 0;
        std::memcpy(&operand, t.req.data.data(), t.req.access_size);
        storage_.write_uint(t.req.addr, old + operand, t.req.access_size);
      } else {
        storage_.write(t.req.addr, t.req.data.data(), t.req.access_size);
      }
      on_storage_write(block);
      if (proto_ == Protocol::kWtu) {
        // Sharers were patched with the post-RMW value; only the requester
        // dropped its copy when issuing the atomic.
        dir_.remove_sharer(block, t.src);
      } else {
        dir_.clear_all_except(block);
      }
      ev = proto::DirEvent::kAtomic;
      respond(t, std::move(resp), hops);
      break;
    }
    case MsgType::kReadExclusive: {
      dir_.clear_all_except(block);
      dir_set_exclusive(block, t.src);
      Message resp;
      resp.type = MsgType::kReadResponse;
      resp.addr = block;
      resp.txn = t.req.txn;
      resp.grant = Grant::kModified;
      read_block(block, resp);
      respond(t, std::move(resp), hops);
      break;
    }
    case MsgType::kUpgrade: {
      bool lost_copy = !dir_.lookup(block).is_sharer(t.src);
      dir_.clear_all_except(block);
      dir_set_exclusive(block, t.src);
      ev = proto::DirEvent::kUpgrade;
      Message resp;
      resp.type = MsgType::kUpgradeAck;
      resp.addr = block;
      resp.txn = t.req.txn;
      resp.grant = Grant::kModified;
      if (lost_copy) read_block(block, resp);  // re-supply the lost data
      respond(t, std::move(resp), hops);
      break;
    }
    default:
      CCNOC_ASSERT(false, "acks completed for a non-invalidating transaction");
  }
  dir_event(block, before, ev);
  if (t.direct_mode) return;  // block stays serialized until TxnDone
  complete_txn(block);
}

void Bank::handle_txn_done(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  auto it = txns_.find(block);
  CCNOC_ASSERT(it != txns_.end() && it->second.direct_mode, "stray TxnDone");
  CCNOC_ASSERT(it->second.src == pkt.src, "TxnDone from a non-requester");
  if (probe_ != nullptr) [[unlikely]] probe_->txn_released(unsigned(pkt.src), block);
  complete_txn(block);
}

void Bank::probe_global_store(const Txn& t) {
  std::uint64_t v = 0;
  std::memcpy(&v, t.req.data.data(), t.req.access_size);
  // In a §4.2 direct-ack round the block stays locked until the requester's
  // TxnDone; the oracle defers the write's visibility to that release.
  probe_->global_store(unsigned(t.src), t.req.addr, t.req.access_size, v,
                       t.direct_mode);
}

void Bank::probe_global_atomic(const Txn& t) {
  std::uint64_t operand = 0;
  std::memcpy(&operand, t.req.data.data(), t.req.access_size);
  probe_->global_atomic(unsigned(t.src), t.req.addr, t.req.access_size,
                        t.req.type == MsgType::kAtomicAdd, operand);
}

void Bank::respond(const Txn& t, Message&& m, unsigned path_hops) {
  m.requester = t.src;
  m.port = t.req.port;
  m.path_hops = std::uint8_t(path_hops);
  m.ack_count = std::uint8_t(t.direct_acks);
  net_.send(node_, t.src, m);
}

void Bank::complete_txn(sim::Addr block) {
  txns_.erase(block);
  auto wit = waiting_.find(block);
  if (wit == waiting_.end()) return;
  noc::Packet next = wit->second.front();
  wit->second.pop_front();
  if (wit->second.empty()) waiting_.erase(wit);
  --waiting_count_;
  pf_->bank_dequeue(sim_.now(), profile_bank_id_, block, waiting_count_);
  if (tr_->on()) tr_->bank_queue_depth(trace_bank_id_, sim_.now(), waiting_count_);
  start_service(next.msg, next.src);
}

void Bank::dir_set_exclusive(sim::Addr block, sim::NodeId owner) {
  dir_.set_exclusive(block, owner);
  tr_->instant(sim_.now(), node_, "dir.set_exclusive", sim::Tracer::kPidBank,
               bank_tid_, "owner", owner);
}

void Bank::dir_clear_dirty(sim::Addr block) {
  dir_.clear_dirty(block);
  tr_->instant(sim_.now(), node_, "dir.clear_dirty", sim::Tracer::kPidBank,
               bank_tid_, "addr", block);
}

}  // namespace ccnoc::mem
