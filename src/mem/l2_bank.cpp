#include "mem/l2_bank.hpp"

#include <algorithm>
#include <cstring>

namespace ccnoc::mem {

using noc::Grant;
using noc::Message;
using noc::MsgType;

L2Bank::L2Bank(sim::Simulator& sim, noc::Network& net, const AddressMap& map,
               unsigned l2_index, Protocol proto, L2BankConfig cfg)
    : Bank(sim, net, map, map.l2_node(l2_index),
           "l2bank" + std::to_string(l2_index),
           // Memory banks occupy trace-track slots 0..num_banks-1.
           std::uint32_t(map.num_banks() + l2_index), proto, cfg.bank),
      l2_index_(l2_index),
      l2cfg_(cfg),
      sets_(cfg.num_sets()) {
  CCNOC_ASSERT(cfg.num_sets() >= 1, "L2 bank smaller than one set");
  CCNOC_ASSERT(cfg.ways >= 1, "L2 bank needs at least one way");
  xtbl_ = &proto::l2_table_for(proto);

  const std::string prefix = "l2bank" + std::to_string(l2_index) + ".";
  auto& reg = sim_.stats();
  l2st_.fills = &reg.counter(prefix + "fills");
  l2st_.recalls = &reg.counter(prefix + "recalls");
  l2st_.recall_invals = &reg.counter(prefix + "recall_invals");
  l2st_.recall_fetches = &reg.counter(prefix + "recall_fetches");
  l2st_.evictions_clean = &reg.counter(prefix + "evictions_clean");
  l2st_.evictions_dirty = &reg.counter(prefix + "evictions_dirty");
}

void L2Bank::deliver(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  switch (pkt.msg.type) {
    case MsgType::kReadShared:
    case MsgType::kReadExclusive:
    case MsgType::kUpgrade:
    case MsgType::kWriteWord:
    case MsgType::kAtomicSwap:
    case MsgType::kAtomicAdd:
      // A request for a non-resident, unlocked block opens a fill first;
      // the base engine then queues the request behind the fill's txn slot
      // and services it once the line is installed.
      if (!resident(block) && txns_.count(block) == 0) start_fill(block);
      break;
    case MsgType::kReadResponse:
      handle_fill_response(pkt);
      return;
    case MsgType::kWriteBackAck:
      // The memory bank acknowledged one of our eviction write-backs;
      // nothing is held on it (the line was already torn down).
      lat_->txn_end(sim_.now(), pkt.msg.txn, node_);
      return;
    case MsgType::kInvalidateAck:
      if (recalls_.count(block) != 0) {
        recall_invalidate_ack(pkt);
        return;
      }
      break;
    case MsgType::kFetchResponse:
      if (recalls_.count(block) != 0) {
        recall_fetch_response(pkt);
        return;
      }
      break;
    case MsgType::kWriteBack:
      if (recalls_.count(block) != 0) {
        recall_write_back(pkt);
        return;
      }
      break;
    default:
      break;
  }
  Bank::deliver(pkt);
}

void L2Bank::l2_fsm(sim::Addr block, proto::CacheEvent ev) {
  auto it = lines_.find(block);
  CCNOC_ASSERT(it != lines_.end(), "L2 line FSM on a non-resident block");
  it->second = proto::apply_cache(ptbl_, xtbl_, *cov_, it->second, ev);
}

void L2Bank::on_storage_write(sim::Addr block) {
  // Any transaction-path byte write leaves the L2 copy newer than DRAM:
  // the fill's Exclusive line dirties to Modified (and Modified stays).
  l2_fsm(block, proto::CacheEvent::kStoreHit);
}

// --- fills ----------------------------------------------------------------

void L2Bank::start_fill(sim::Addr block) {
  auto [it, fresh] = txns_.emplace(block, Txn{});
  CCNOC_ASSERT(fresh, "fill started on a busy block");
  // Synthetic lock entry: never routed through start_service, so the
  // request fields stay inert; src marks it as bank-originated.
  it->second.src = node_;
  Fill& f = fills_[block];
  f.txn = next_l2_txn();
  l2st_.fills->inc();
  lat_->txn_begin(sim_.now(), f.txn, "l2.fill", node_);
  if (tr_->on()) {
    tr_->txn_note(sim_.now(), f.txn, node_, "l2_fill_start", "block", block);
  }
  try_launch_fill(block, f);
}

void L2Bank::try_launch_fill(sim::Addr block, Fill& f) {
  while (!f.requested) {
    auto& set = sets_[set_of(block)];
    if (set.size() < l2cfg_.ways) {
      f.requested = true;
      // A fill that waited out a recall (or a busy set) charges that wait
      // to the retry phase; an immediate launch marks a zero-width span.
      if (f.deferred) {
        lat_->mark(sim_.now(), f.txn, node_, sim::Phase::kRetry, sim_.now());
      }
      Message m;
      m.type = MsgType::kReadShared;
      m.addr = block;
      m.txn = f.txn;
      m.requester = node_;
      m.track = true;  // the memory directory must record us (grants E)
      net_.send(node_, map_.bank_node_of(block), m);
      return;
    }
    // Set full: recall a victim. One recall at a time per set keeps the
    // replacement deterministic; its completion retries deferred fills.
    for (sim::Addr v : set) {
      if (recalls_.count(v) != 0) {
        f.deferred = true;
        return;
      }
    }
    sim::Addr victim = 0;
    bool found = false;
    for (sim::Addr v : set) {
      if (txns_.count(v) != 0) continue;  // a busy line cannot be recalled
      victim = v;
      found = true;
      break;
    }
    // Every way is transaction-busy; a later completion retries this fill.
    if (!found) {
      f.deferred = true;
      return;
    }
    start_recall(victim);
    // A recall with no live L1 copies completes synchronously (its nested
    // complete_txn may even have launched this very fill — the f.requested
    // loop condition covers that); loop to re-check the freed way. An
    // in-flight recall retries us at its completion instead.
    if (recalls_.count(victim) != 0) {
      f.deferred = true;
      return;
    }
  }
}

void L2Bank::retry_deferred_fills() {
  if (retrying_) return;
  retrying_ = true;
  for (auto& [block, f] : fills_) try_launch_fill(block, f);
  retrying_ = false;
}

void L2Bank::handle_fill_response(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  auto fit = fills_.find(block);
  CCNOC_ASSERT(fit != fills_.end() && fit->second.requested &&
                   pkt.msg.txn == fit->second.txn,
               "stray fill response");
  // The block-granularity interleave makes this bank the memory's sole
  // client for the block, so a tracked read is always granted Exclusive.
  CCNOC_ASSERT(pkt.msg.grant == Grant::kExclusive, "fill granted non-exclusive");
  CCNOC_ASSERT(pkt.msg.data_len == cfg_.block_bytes, "short fill data");
  storage_.write(block, pkt.msg.data.data(), cfg_.block_bytes);
  auto [lit, fresh] = lines_.emplace(block, proto::LineState::kInvalid);
  CCNOC_ASSERT(fresh, "fill for an already-resident line");
  lit->second = proto::apply_cache(ptbl_, xtbl_, *cov_, lit->second,
                                   proto::CacheEvent::kFillExclusive);
  sets_[set_of(block)].push_back(block);
  fills_.erase(fit);
  if (tr_->on()) {
    tr_->txn_note(sim_.now(), pkt.msg.txn, node_, "l2_fill_done", "block", block);
  }
  lat_->txn_end(sim_.now(), pkt.msg.txn, node_);
  if (lat_->on()) [[unlikely]] {
    // The L1 transactions queued behind this fill spent the interval since
    // their last boundary waiting for the line to arrive from memory.
    if (auto wit = waiting_.find(block); wit != waiting_.end()) {
      for (const noc::Packet& p : wit->second) {
        lat_->mark(sim_.now(), p.msg.txn, node_, sim::Phase::kL2Fill, sim_.now());
      }
    }
  }
  complete_txn(block);  // unlock: queued L1 requests now run against the line
}

// --- recalls (back-invalidation) ------------------------------------------

void L2Bank::start_recall(sim::Addr victim) {
  auto [it, fresh] = txns_.emplace(victim, Txn{});
  CCNOC_ASSERT(fresh, "recall started on a busy block");
  it->second.src = node_;
  Recall& r = recalls_[victim];
  r.txn = next_l2_txn();
  l2st_.recalls->inc();
  lat_->txn_begin(sim_.now(), r.txn, "l2.recall", node_);
  if (tr_->on()) {
    tr_->txn_note(sim_.now(), r.txn, node_, "l2_recall_start", "block", victim);
  }

  DirEntry e = dir_.lookup(victim);
  if (e.dirty) {
    // An L1 owner (MESI) holds the only fresh copy: pull it back before the
    // line leaves the L2.
    r.waiting_data = true;
    r.owner = e.owner;
    Message f;
    f.type = MsgType::kFetchInv;
    f.addr = victim;
    f.txn = r.txn;
    f.requester = node_;
    net_.send(node_, e.owner, f);
    l2st_.recall_fetches->inc();
    st_.fetches_sent->inc();
    return;
  }
  auto targets = dir_.sharers(victim);
  if (targets.empty()) {
    finish_recall(victim);
    return;
  }
  r.pending_acks = unsigned(targets.size());
  l2st_.recall_invals->inc(targets.size());
  st_.invalidations_sent->inc(targets.size());
  pf_->fanout(sim_.now(), node_, victim, unsigned(targets.size()));
  for (sim::NodeId c : targets) {
    Message inv;
    inv.type = MsgType::kInvalidate;
    inv.addr = victim;
    inv.txn = r.txn;
    inv.requester = node_;
    inv.direct_ack = false;  // recall acks always return to this bank
    net_.send(node_, c, inv);
  }
}

void L2Bank::recall_invalidate_ack(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  Recall& r = recalls_.at(block);
  CCNOC_ASSERT(r.pending_acks > 0, "unexpected recall InvalidateAck");
  proto::DirState before = dstate(block);
  dir_.remove_sharer(block, pkt.src);
  dir_event(block, before, proto::DirEvent::kSharerDrop);
  if (--r.pending_acks == 0) {
    // The back-invalidation fan-out converged: everything since the recall
    // opened was ack collection.
    lat_->mark(sim_.now(), r.txn, node_, sim::Phase::kFanoutAcks, sim_.now());
    finish_recall(block);
  }
}

void L2Bank::recall_fetch_response(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  Recall& r = recalls_.at(block);
  if (!r.waiting_data || pkt.src != r.owner || pkt.msg.txn != r.txn) {
    // The owner's spontaneous WriteBack crossed our FetchInv and already
    // satisfied the recall; drop the dangling response.
    st_.stale_fetch_responses->inc();
    return;
  }
  absorb_recall_data(block, r, pkt.msg);
}

void L2Bank::recall_write_back(const noc::Packet& pkt) {
  const sim::Addr block = block_of(pkt.msg.addr);
  Recall& r = recalls_.at(block);
  CCNOC_ASSERT(r.waiting_data && pkt.src == r.owner,
               "write-back from a non-owner during a recall");
  st_.writebacks->inc();
  // The owner evicted on its own while our FetchInv was in flight: accept
  // the write-back as the recall data and acknowledge it like the flat
  // engine's crossing branch does.
  Message ack;
  ack.type = MsgType::kWriteBackAck;
  ack.addr = block;
  ack.txn = pkt.msg.txn;
  ack.port = pkt.msg.port;
  net_.send(node_, pkt.src, ack);
  absorb_recall_data(block, r, pkt.msg);
}

void L2Bank::absorb_recall_data(sim::Addr block, Recall& r,
                                const Message& msg) {
  if (msg.data_len != 0) {
    CCNOC_ASSERT(msg.data_len == cfg_.block_bytes, "short recall data");
    storage_.write(block, msg.data.data(), cfg_.block_bytes);
    on_storage_write(block);  // the L2 copy is now newer than DRAM
  }
  // data_len == 0: the owner silently evicted a clean Exclusive copy, so
  // the L2 copy is already current.
  r.waiting_data = false;
  lat_->mark(sim_.now(), r.txn, node_, sim::Phase::kOwnerFetch, sim_.now());
  finish_recall(block);
}

void L2Bank::finish_recall(sim::Addr block) {
  // The completion point of the back-invalidation: every ack is in (each
  // fired its flat SharerDrop row) or the owner's data was absorbed. A
  // lingering owner registration collapses here so the Owned->Uncached
  // recall row is the one that fires.
  proto::DirState before = dstate(block);
  dir_.clear_all_except(block);
  dir_event(block, before, proto::DirEvent::kRecall);
  if (tr_->on()) {
    tr_->txn_note(sim_.now(), recalls_.at(block).txn, node_, "l2_recall_done",
                  "block", block);
  }
  lat_->txn_end(sim_.now(), recalls_.at(block).txn, node_);
  if (lat_->on()) [[unlikely]] {
    // L1 transactions queued behind the victim waited for this recall.
    if (auto wit = waiting_.find(block); wit != waiting_.end()) {
      for (const noc::Packet& p : wit->second) {
        lat_->mark(sim_.now(), p.msg.txn, node_, sim::Phase::kL2Recall, sim_.now());
      }
    }
  }
  evict_line(block);
}

void L2Bank::evict_line(sim::Addr block) {
  auto lit = lines_.find(block);
  CCNOC_ASSERT(lit != lines_.end(), "evicting a non-resident line");
  const bool dirty = lit->second == proto::LineState::kModified;
  l2_fsm(block, dirty ? proto::CacheEvent::kEvictDirty : proto::CacheEvent::kEvict);
  lines_.erase(block);
  auto& set = sets_[set_of(block)];
  set.erase(std::find(set.begin(), set.end(), block));
  recalls_.erase(block);
  (dirty ? l2st_.evictions_dirty : l2st_.evictions_clean)->inc();
  if (dirty) {
    // Inclusive write-back collapse: the line absorbed write-through words
    // and/or L1 write-backs; DRAM sees one block write at eviction time.
    Message wb;
    wb.type = MsgType::kWriteBack;
    wb.addr = block;
    wb.txn = next_l2_txn();
    lat_->txn_begin(sim_.now(), wb.txn, "l2.writeback", node_);
    wb.requester = node_;
    wb.data_len = std::uint8_t(cfg_.block_bytes);
    storage_.read(block, wb.data.data(), cfg_.block_bytes);
    net_.send(node_, map_.bank_node_of(block), wb);
  }
  complete_txn(block);
}

// --- unlock ---------------------------------------------------------------

void L2Bank::complete_txn(sim::Addr block) {
  txns_.erase(block);
  if (!resident(block)) {
    auto wit = waiting_.find(block);
    if (wit != waiting_.end() && !wit->second.empty()) {
      // The block unlocked but the line is gone (a recall evicted it) and
      // L1 requests are still queued: refill before serving them.
      start_fill(block);
      retry_deferred_fills();
      return;
    }
  }
  Bank::complete_txn(block);
  retry_deferred_fills();
}

void L2Bank::absorb_l1_flush(sim::Addr block, const std::uint8_t* data,
                             unsigned len) {
  CCNOC_ASSERT(resident(block), "L1 flushed a line the L2 does not hold");
  storage_.write(block, data, len);
  // Untimed post-run bookkeeping, outside the protocol tables (like the L1
  // flush itself): DRAM no longer matches this line.
  lines_[block] = proto::LineState::kModified;  // ccnoc-lint: allow(proto-table-discipline)
}

}  // namespace ccnoc::mem
