#pragma once

#include <cstring>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/bank.hpp"

/// \file direct_memory.hpp
/// Untimed backdoor into the banks' storage, used for program loading
/// (initial data, lock/barrier words) and post-run result verification.
/// Never used on a timed path — the CPUs only reach memory through the
/// caches and the NoC.

namespace ccnoc::mem {

class DirectMemoryIf {
 public:
  virtual ~DirectMemoryIf() = default;
  virtual void write(sim::Addr a, const void* data, unsigned len) = 0;
  virtual void read(sim::Addr a, void* out, unsigned len) const = 0;

  void write_u32(sim::Addr a, std::uint32_t v) { write(a, &v, 4); }
  void write_u64(sim::Addr a, std::uint64_t v) { write(a, &v, 8); }
  void write_f64(sim::Addr a, double v) { write(a, &v, 8); }
  [[nodiscard]] std::uint32_t read_u32(sim::Addr a) const {
    std::uint32_t v = 0;
    read(a, &v, 4);
    return v;
  }
  [[nodiscard]] std::uint64_t read_u64(sim::Addr a) const {
    std::uint64_t v = 0;
    read(a, &v, 8);
    return v;
  }
  [[nodiscard]] double read_f64(sim::Addr a) const {
    double v = 0;
    read(a, &v, 8);
    return v;
  }
};

/// DirectMemoryIf over the platform's banks.
class BankedDirectMemory final : public DirectMemoryIf {
 public:
  BankedDirectMemory(const AddressMap& map, std::vector<Bank*> banks)
      : map_(map), banks_(std::move(banks)) {
    CCNOC_ASSERT(banks_.size() == map_.num_banks(), "bank list size mismatch");
  }

  void write(sim::Addr a, const void* data, unsigned len) override {
    // Writes may span bank boundaries only if the caller allocated across
    // banks, which the layout never does; keep it strict.
    banks_[map_.bank_index_of(a)]->storage().write(a, data, len);
  }

  void read(sim::Addr a, void* out, unsigned len) const override {
    banks_[map_.bank_index_of(a)]->storage().read(a, out, len);
  }

 private:
  const AddressMap& map_;
  std::vector<Bank*> banks_;
};

}  // namespace ccnoc::mem
