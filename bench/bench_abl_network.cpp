// Ablation A1: does the paper's cycle-approximate GMN interconnect change
// the study's conclusion versus a real 2-D mesh with XY routing and
// per-link contention? The paper argues it does not ("no major impact …
// since it is used for all configurations"); this bench checks that the
// WTI/MESI ratio is stable across the two network models.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

core::RunResult run_net(core::NetworkKind net, unsigned arch, mem::Protocol proto,
                        unsigned n) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, proto)
                                     : core::SystemConfig::architecture2(n, proto);
  cfg.network = net;
  core::System sys(cfg);
  auto app = bench::make_app("ocean");
  return sys.run(*app);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Ablation: GMN crossbar vs real 2-D mesh (Ocean, arch 2) ===\n");
  std::printf("%6s %12s %12s %12s %12s %14s\n", "n", "GMN WTI", "GMN MESI",
              "mesh WTI", "mesh MESI", "ratio drift");
  for (unsigned n : {4u, 16u, 32u}) {
    auto gw = run_net(core::NetworkKind::kGmn, 2, mem::Protocol::kWti, n);
    auto gm = run_net(core::NetworkKind::kGmn, 2, mem::Protocol::kWbMesi, n);
    auto mw = run_net(core::NetworkKind::kMesh, 2, mem::Protocol::kWti, n);
    auto mm = run_net(core::NetworkKind::kMesh, 2, mem::Protocol::kWbMesi, n);
    double rg = double(gw.exec_cycles) / double(gm.exec_cycles);
    double rm = double(mw.exec_cycles) / double(mm.exec_cycles);
    std::printf("%6u %11.2fM %11.2fM %11.2fM %11.2fM %13.1f%%\n", n,
                gw.exec_megacycles(), gm.exec_megacycles(), mw.exec_megacycles(),
                mm.exec_megacycles(), 100.0 * (rm - rg) / rg);
    log.add("n" + std::to_string(n),
            {{"n", double(n)},
             {"gmn_wti_cycles", double(gw.exec_cycles)},
             {"gmn_mesi_cycles", double(gm.exec_cycles)},
             {"mesh_wti_cycles", double(mw.exec_cycles)},
             {"mesh_mesi_cycles", double(mm.exec_cycles)},
             {"ratio_drift_pct", 100.0 * (rm - rg) / rg}});
  }

  std::printf("\n(ratio drift = change of the WTI/MESI execution-time ratio when\n"
              " swapping the interconnect model; small drift = the GMN\n"
              " approximation does not bias the comparison)\n");
  return bench::finish_metric_bench(opt, "abl_network", log);
}
