// Figure 6 reproduction: percentage of execution time the processors spend
// stalled on data-cache accesses (including write-buffer-full and blocking
// upgrade/allocate stalls).
//
// Paper observations to reproduce in shape: the two protocols stall about
// the same; architecture 1 stalls far more than architecture 2; at 64
// processors on architecture 1 the stall share approaches ~70%.
//
// The sweep runs with TraceMode::kMetrics so the tracer attributes every
// stalled cycle to a category (load / store / atomic / ifetch); the
// attribution is cross-checked against the legacy aggregate counters —
// both are recorded at the same resume sites, so they must agree exactly.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

/// Sum one stall category across all CPUs of a run.
std::uint64_t attr_sum(const core::RunResult& r, sim::StallCat c) {
  std::uint64_t total = 0;
  for (const sim::CpuStallAttr& a : r.stall_attr) total += a.of(c);
  return total;
}

/// Exact reconciliation: tracer attribution vs the legacy counters.
bool reconcile(const bench::PaperRun& run) {
  const core::RunResult& r = run.result;
  std::uint64_t data = attr_sum(r, sim::StallCat::kLoad) +
                       attr_sum(r, sim::StallCat::kStore) +
                       attr_sum(r, sim::StallCat::kAtomic);
  std::uint64_t ifetch = attr_sum(r, sim::StallCat::kIfetch);
  if (data == r.d_stall_cycles && ifetch == r.i_stall_cycles) return true;
  std::fprintf(stderr,
               "RECONCILE FAILED: %s %s arch%u n=%u: attributed data=%llu "
               "(legacy %llu), ifetch=%llu (legacy %llu)\n",
               run.app.c_str(), to_string(run.proto), run.arch, run.n,
               static_cast<unsigned long long>(data),
               static_cast<unsigned long long>(r.d_stall_cycles),
               static_cast<unsigned long long>(ifetch),
               static_cast<unsigned long long>(r.i_stall_cycles));
  return false;
}

/// Share of the total data stall going to one category, in percent.
double cat_pct(const core::RunResult& r, sim::StallCat c) {
  return r.d_stall_cycles == 0
             ? 0.0
             : 100.0 * double(attr_sum(r, c)) / double(r.d_stall_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  const auto specs = bench::paper_grid(bench::sweep_sizes());
  const auto runs = bench::run_sweep(specs, opt.threads, sim::TraceMode::kMetrics,
                                     opt.want_profile() ? sim::ProfileMode::kOn
                                                        : sim::ProfileMode::kOff);

  std::printf("=== Figure 6: data-cache stall cycles (%% of execution) ===\n");
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const bench::PaperRun& wti = runs[i];
    const bench::PaperRun& mesi = runs[i + 1];
    if (i == 0 || wti.app != runs[i - 2].app || wti.arch != runs[i - 2].arch) {
      std::printf("\n%s — %s\n", wti.app.c_str(), bench::arch_label(wti.arch));
      std::printf("%6s %12s %12s\n", "n", "WTI [%]", "MESI [%]");
    }
    std::printf("%6u %11.1f%% %11.1f%%\n", wti.n, wti.result.d_stall_pct(wti.n),
                mesi.result.d_stall_pct(mesi.n));
  }

  std::printf("\n=== Stall attribution (share of data-stall cycles) ===\n");
  std::printf("%-6s %5s %9s %3s %9s %9s %9s\n", "app", "arch", "proto", "n",
              "load", "store", "atomic");
  bool ok = true;
  for (const bench::PaperRun& run : runs) {
    ok = reconcile(run) && ok;
    std::printf("%-6s %5u %9s %3u %8.1f%% %8.1f%% %8.1f%%\n", run.app.c_str(),
                run.arch, to_string(run.proto), run.n,
                cat_pct(run.result, sim::StallCat::kLoad),
                cat_pct(run.result, sim::StallCat::kStore),
                cat_pct(run.result, sim::StallCat::kAtomic));
  }
  if (!ok) {
    std::fprintf(stderr, "stall attribution does not match legacy counters\n");
    return 1;
  }
  std::printf("attribution reconciles exactly with legacy stall counters "
              "(%zu runs)\n", runs.size());

  return bench::finish_paper_bench(opt, "fig6_stalls", runs);
}
