// Figure 6 reproduction: percentage of execution time the processors spend
// stalled on data-cache accesses (including write-buffer-full and blocking
// upgrade/allocate stalls).
//
// Paper observations to reproduce in shape: the two protocols stall about
// the same; architecture 1 stalls far more than architecture 2; at 64
// processors on architecture 1 the stall share approaches ~70%.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  const auto specs = bench::paper_grid(bench::sweep_sizes());
  const auto runs = bench::run_sweep(specs, opt.threads);

  std::printf("=== Figure 6: data-cache stall cycles (%% of execution) ===\n");
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const bench::PaperRun& wti = runs[i];
    const bench::PaperRun& mesi = runs[i + 1];
    if (i == 0 || wti.app != runs[i - 2].app || wti.arch != runs[i - 2].arch) {
      std::printf("\n%s — %s\n", wti.app.c_str(), bench::arch_label(wti.arch));
      std::printf("%6s %12s %12s\n", "n", "WTI [%]", "MESI [%]");
    }
    std::printf("%6u %11.1f%% %11.1f%%\n", wti.n, wti.result.d_stall_pct(wti.n),
                mesi.result.d_stall_pct(mesi.n));
  }

  if (!opt.json_path.empty() &&
      !bench::write_paper_json(opt.json_path, "fig6_stalls", runs)) {
    return 1;
  }
  return 0;
}
