// Figure 6 reproduction: percentage of execution time the processors spend
// stalled on data-cache accesses (including write-buffer-full and blocking
// upgrade/allocate stalls).
//
// Paper observations to reproduce in shape: the two protocols stall about
// the same; architecture 1 stalls far more than architecture 2; at 64
// processors on architecture 1 the stall share approaches ~70%.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main() {
  std::printf("=== Figure 6: data-cache stall cycles (%% of execution) ===\n");
  for (const char* app : {"ocean", "water"}) {
    for (unsigned arch : {1u, 2u}) {
      std::printf("\n%s — %s\n", app, bench::arch_label(arch));
      std::printf("%6s %12s %12s\n", "n", "WTI [%]", "MESI [%]");
      for (unsigned n : bench::sweep_sizes()) {
        auto wti = bench::run_point(app, arch, mem::Protocol::kWti, n);
        auto mesi = bench::run_point(app, arch, mem::Protocol::kWbMesi, n);
        std::printf("%6u %11.1f%% %11.1f%%\n", n, wti.result.d_stall_pct(n),
                    mesi.result.d_stall_pct(n));
      }
    }
  }
  return 0;
}
