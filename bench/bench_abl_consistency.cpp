// Ablation A5: memory-consistency strictness of the WTI write buffer. The
// paper uses sequential consistency "for the sake of simplicity" and notes
// the comparison "remains valid with a weaker model as the one used in
// commercial designs". Our SC implementation drains the write buffer
// before servicing a load miss; relaxing that (processor-consistency /
// TSO-flavoured: loads may bypass buffered writes to other addresses)
// removes the drain stalls. This sweep measures how much performance SC
// costs WTI — i.e. how much headroom a weaker model would add.
//
// NOTE: the relaxed mode keeps per-location coherence but weakens
// cross-location ordering; flag-handoff idioms are no longer guaranteed,
// so only data-race-free (lock/barrier) workloads run here.

#include <cstdio>

#include "apps/ocean.hpp"
#include "apps/micro.hpp"
#include "bench_io.hpp"
#include "paper_sweep.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

core::RunResult run(bool strict_sc, unsigned arch, unsigned n, bool ocean) {
  core::SystemConfig cfg = arch == 1
                               ? core::SystemConfig::architecture1(n, mem::Protocol::kWti)
                               : core::SystemConfig::architecture2(n, mem::Protocol::kWti);
  cfg.dcache.drain_on_load_miss = strict_sc;
  core::System sys(cfg);
  if (ocean) {
    apps::Ocean::Config oc;
    oc.rows_per_thread = 2;
    oc.iterations = 2;
    apps::Ocean w(oc);
    return sys.run(w);
  }
  apps::HotCounter w(120);
  return sys.run(w);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Ablation: SC drain-on-load-miss vs relaxed WTI ordering ===\n");
  for (bool ocean : {true, false}) {
    std::printf("\n%s\n", ocean ? "Ocean (barrier-synchronized)" : "Hot counter (lock-synchronized)");
    std::printf("%6s %6s %14s %14s %10s\n", "arch", "n", "SC [Kcyc]", "relaxed [Kcyc]",
                "speedup");
    for (unsigned arch : {1u, 2u}) {
      for (unsigned n : {4u, 16u}) {
        auto sc = run(true, arch, n, ocean);
        auto rx = run(false, arch, n, ocean);
        std::printf("%6u %6u %14.1f %14.1f %9.2fx%s\n", arch, n,
                    double(sc.exec_cycles) / 1e3, double(rx.exec_cycles) / 1e3,
                    double(sc.exec_cycles) / double(rx.exec_cycles),
                    (sc.verified && rx.verified) ? "" : " [UNVERIFIED]");
        log.add(std::string(ocean ? "ocean" : "hot_counter") + "_arch" +
                    std::to_string(arch) + "_n" + std::to_string(n),
                {{"arch", double(arch)},
                 {"n", double(n)},
                 {"sc_cycles", double(sc.exec_cycles)},
                 {"relaxed_cycles", double(rx.exec_cycles)},
                 {"verified", (sc.verified && rx.verified) ? 1.0 : 0.0}});
      }
    }
  }

  std::printf(
      "\n(speedup > 1: cycles the strict drain costs. The paper's claim that\n"
      " the comparison remains valid under a weaker model holds if the gain\n"
      " is modest and similar across architectures.)\n");
  return bench::finish_metric_bench(opt, "abl_consistency", log);
}
