// Figure 4 reproduction: execution time in megacycles for Ocean and Water,
// on both architectures, both write policies, n ∈ {4, 16, 32, 64}.
//
// The paper's observations this bench should reproduce in shape:
//   * SMP/architecture 1: WTI ≈ WB-MESI up to 32 CPUs; above 32 the
//     centralized banks favour WB ("centralized better than WTI").
//   * DS/architecture 2: faster overall (up to ~30% on Ocean), WTI
//     competitive with WB throughout ("distributed: WTI viable").
//   * Water: the two protocols perform the same.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main() {
  std::printf("=== Figure 4: execution time (megacycles) ===\n");
  for (const char* app : {"ocean", "water"}) {
    for (unsigned arch : {1u, 2u}) {
      std::printf("\n%s — %s\n", app, bench::arch_label(arch));
      std::printf("%6s %14s %14s %10s\n", "n", "WTI [Mcyc]", "MESI [Mcyc]",
                  "WTI/MESI");
      for (unsigned n : bench::sweep_sizes()) {
        auto wti = bench::run_point(app, arch, mem::Protocol::kWti, n);
        auto mesi = bench::run_point(app, arch, mem::Protocol::kWbMesi, n);
        double ratio = mesi.result.exec_cycles == 0
                           ? 0.0
                           : double(wti.result.exec_cycles) /
                                 double(mesi.result.exec_cycles);
        std::printf("%6u %14.3f %14.3f %9.2fx%s%s\n", n,
                    wti.result.exec_megacycles(), mesi.result.exec_megacycles(),
                    ratio, wti.result.verified ? "" : "  [WTI UNVERIFIED]",
                    mesi.result.verified ? "" : "  [MESI UNVERIFIED]");
      }
    }
  }
  return 0;
}
