// Figure 4 reproduction: execution time in megacycles for Ocean and Water,
// on both architectures, both write policies, n ∈ {4, 16, 32, 64}.
//
// The paper's observations this bench should reproduce in shape:
//   * SMP/architecture 1: WTI ≈ WB-MESI up to 32 CPUs; above 32 the
//     centralized banks favour WB ("centralized better than WTI").
//   * DS/architecture 2: faster overall (up to ~30% on Ocean), WTI
//     competitive with WB throughout ("distributed: WTI viable").
//   * Water: the two protocols perform the same.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  const auto specs = bench::paper_grid(bench::sweep_sizes());
  const auto runs = bench::run_sweep(specs, opt.threads, sim::TraceMode::kOff,
                                     opt.want_profile() ? sim::ProfileMode::kOn
                                                        : sim::ProfileMode::kOff);

  std::printf("=== Figure 4: execution time (megacycles) ===\n");
  // paper_grid keeps the WTI/MESI pair for each (app, arch, n) adjacent.
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const bench::PaperRun& wti = runs[i];
    const bench::PaperRun& mesi = runs[i + 1];
    if (i == 0 || wti.app != runs[i - 2].app || wti.arch != runs[i - 2].arch) {
      std::printf("\n%s — %s\n", wti.app.c_str(), bench::arch_label(wti.arch));
      std::printf("%6s %14s %14s %10s\n", "n", "WTI [Mcyc]", "MESI [Mcyc]",
                  "WTI/MESI");
    }
    double ratio = mesi.result.exec_cycles == 0
                       ? 0.0
                       : double(wti.result.exec_cycles) /
                             double(mesi.result.exec_cycles);
    std::printf("%6u %14.3f %14.3f %9.2fx%s%s\n", wti.n,
                wti.result.exec_megacycles(), mesi.result.exec_megacycles(),
                ratio, wti.result.verified ? "" : "  [WTI UNVERIFIED]",
                mesi.result.verified ? "" : "  [MESI UNVERIFIED]");
  }

  return bench::finish_paper_bench(opt, "fig4_exec_time", runs);
}
