// Extension (the paper's declared future work, §7): best-case / worst-case
// comparison of the two write policies.
//
//   * Best case for a write policy: thread-private working sets with good
//     locality and no sharing (UniformRandom with 100% local accesses) —
//     write-back pays nothing after the first allocate, write-through pays
//     one word per store forever.
//   * Worst case: every thread hammers one lock-protected shared counter
//     (HotCounter) — the block migrates on every critical section, the
//     pathological pattern for both protocols.
//
// Together these bracket the Figure 4 applications, which sit in between.

#include <cstdio>

#include "apps/micro.hpp"
#include "bench_io.hpp"
#include "paper_sweep.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

core::RunResult run(apps::Workload& w, mem::Protocol p, unsigned n) {
  core::SystemConfig cfg = core::SystemConfig::architecture2(n, p);
  core::System sys(cfg);
  return sys.run(w);
}

void table(const char* title, const char* key, bench::MetricLog& log,
           const std::function<core::RunResult(mem::Protocol, unsigned)>& go) {
  std::printf("\n%s\n", title);
  std::printf("%6s %14s %14s %10s %16s %16s\n", "n", "WTI [Kcyc]", "MESI [Kcyc]",
              "WTI/MESI", "WTI [bytes]", "MESI [bytes]");
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    auto w = go(mem::Protocol::kWti, n);
    auto m = go(mem::Protocol::kWbMesi, n);
    std::printf("%6u %14.1f %14.1f %9.2fx %16llu %16llu%s\n", n,
                double(w.exec_cycles) / 1e3, double(m.exec_cycles) / 1e3,
                double(w.exec_cycles) / double(m.exec_cycles),
                static_cast<unsigned long long>(w.noc_bytes),
                static_cast<unsigned long long>(m.noc_bytes),
                (w.verified && m.verified) ? "" : " [UNVERIFIED]");
    log.add(std::string(key) + "_n" + std::to_string(n),
            {{"n", double(n)},
             {"wti_cycles", double(w.exec_cycles)},
             {"mesi_cycles", double(m.exec_cycles)},
             {"wti_noc_bytes", double(w.noc_bytes)},
             {"mesi_noc_bytes", double(m.noc_bytes)},
             {"verified", (w.verified && m.verified) ? 1.0 : 0.0}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Extension: best-case / worst-case write-policy comparison ===\n");

  table("Best case for write-back: private data, write-heavy, high reuse",
        "private_write_heavy", log, [](mem::Protocol p, unsigned n) {
          apps::UniformRandom::Config c;
          c.ops_per_thread = 1500;
          c.local_fraction = 1.0;  // no sharing at all
          c.store_fraction = 0.5;
          c.compute_between = 2;
          apps::UniformRandom w(c);
          return run(w, p, n);
        });

  table("Worst case: one lock-protected counter shared by every thread",
        "hot_counter", log, [](mem::Protocol p, unsigned n) {
          apps::HotCounter w(150);
          return run(w, p, n);
        });

  table("Mixed: 40% local / 60% shared random traffic",
        "mixed_random", log, [](mem::Protocol p, unsigned n) {
          apps::UniformRandom::Config c;
          c.ops_per_thread = 1500;
          c.local_fraction = 0.4;
          c.store_fraction = 0.3;
          apps::UniformRandom w(c);
          return run(w, p, n);
        });

  std::printf(
      "\nReading: private write-heavy working sets are write-back's best case\n"
      "(write-through keeps paying per-store words); migratory shared data is\n"
      "hard for both; the paper's applications fall between the extremes,\n"
      "which is why Figure 4 shows near-parity.\n");

  return bench::finish_metric_bench(opt, "ext_bestworst", log);
}
