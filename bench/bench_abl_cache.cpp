// Ablation A3: cache geometry. The paper fixes 4 KB direct-mapped caches
// with 32-byte blocks; this sweep varies size, block size and
// associativity for both protocols to show where the WTI/MESI comparison
// is sensitive to cache geometry.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

core::RunResult run_geom(mem::Protocol p, unsigned size, unsigned block, unsigned ways) {
  core::SystemConfig cfg = core::SystemConfig::architecture2(8, p);
  cfg.dcache.size_bytes = size;
  cfg.dcache.block_bytes = block;
  cfg.dcache.ways = ways;
  cfg.icache.size_bytes = size;
  cfg.icache.block_bytes = block;
  cfg.icache.ways = ways;
  core::System sys(cfg);
  auto app = bench::make_app("ocean");
  return sys.run(*app);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Ablation: cache geometry (Ocean, arch 2, n=8) ===\n");
  std::printf("%8s %8s %6s %14s %14s %10s\n", "size", "block", "ways", "WTI [Mcyc]",
              "MESI [Mcyc]", "WTI/MESI");

  struct Geom {
    unsigned size, block, ways;
  };
  const Geom geoms[] = {
      {1024, 32, 1}, {2048, 32, 1}, {4096, 32, 1},  {8192, 32, 1}, {16384, 32, 1},
      {4096, 16, 1}, {4096, 64, 1}, {4096, 32, 2},  {4096, 32, 4},
  };
  for (const Geom& g : geoms) {
    auto w = run_geom(mem::Protocol::kWti, g.size, g.block, g.ways);
    auto m = run_geom(mem::Protocol::kWbMesi, g.size, g.block, g.ways);
    std::printf("%8u %8u %6u %14.3f %14.3f %9.2fx%s%s\n", g.size, g.block, g.ways,
                w.exec_megacycles(), m.exec_megacycles(),
                double(w.exec_cycles) / double(m.exec_cycles),
                w.verified ? "" : " [WTI!]", m.verified ? "" : " [MESI!]");
    log.add("size" + std::to_string(g.size) + "_block" + std::to_string(g.block) +
                "_ways" + std::to_string(g.ways),
            {{"size_bytes", double(g.size)},
             {"block_bytes", double(g.block)},
             {"ways", double(g.ways)},
             {"wti_cycles", double(w.exec_cycles)},
             {"mesi_cycles", double(m.exec_cycles)},
             {"verified", (w.verified && m.verified) ? 1.0 : 0.0}});
  }

  return bench::finish_metric_bench(opt, "abl_cache", log);
}
