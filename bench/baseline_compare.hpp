#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_io.hpp"
#include "sim/jsonv.hpp"

/// Baseline regression checking for the BENCH_*.json records.
///
/// A baseline is a previously committed BENCH_*.json (bench/baselines/).
/// Points are matched by "label", or by the (app, arch, protocol, n) tuple
/// for the paper-grid records, and every shared numeric field is compared:
///
///   * deterministic fields (cycles, bytes, packets, hops, ...) must agree
///     within --tolerance percent — default 0, i.e. exactly: the simulator
///     is deterministic, so these are machine-independent;
///   * host-performance fields (events_per_sec, wall_seconds, anything
///     ending in "_ratio") are inherently noisy and are only compared when
///     --perf-tolerance is non-negative.
///
/// Points present in only one record are reported but do not fail the
/// compare (sweeps legitimately grow), missing fields likewise.

namespace ccnoc::bench {

/// Host-speed fields: excluded from the exact compare, gated separately.
inline bool is_perf_field(const std::string& key) {
  if (key.find("per_sec") != std::string::npos) return true;
  if (key.find("wall_seconds") != std::string::npos) return true;
  if (key.size() > 6 && key.compare(key.size() - 6, 6, "_ratio") == 0) return true;
  return false;
}

namespace detail {

/// Identity of one point: the label, or the paper-grid tuple.
inline std::string point_key(const sim::Jsonv& pt) {
  if (const sim::Jsonv* l = pt.get("label"); l != nullptr && l->is_string())
    return l->string;
  std::string key;
  for (const char* part : {"app", "arch", "protocol", "n"}) {
    const sim::Jsonv* v = pt.get(part);
    if (v == nullptr) continue;
    if (!key.empty()) key += '/';
    if (v->is_string()) key += v->string;
    else if (v->is_number()) key += std::to_string(std::int64_t(v->number));
  }
  return key;
}

inline bool within(double cur, double base, double tol_pct) {
  const double eps = 1e-12;
  return std::fabs(cur - base) <=
         (tol_pct / 100.0) * std::max(std::fabs(base), eps) + eps;
}

inline const sim::Jsonv* find_point(const sim::Jsonv& points, const std::string& key) {
  if (!points.is_array()) return nullptr;
  for (const sim::Jsonv& p : points.array)
    if (point_key(p) == key) return &p;
  return nullptr;
}

}  // namespace detail

/// Compare the freshly written record at \p current_path against
/// \p baseline_path. Returns true when no compared field regressed.
inline bool compare_with_baseline(const std::string& current_path,
                                  const std::string& baseline_path,
                                  double tolerance_pct, double perf_tolerance_pct) {
  sim::Jsonv cur, base;
  std::string err;
  if (!sim::jsonv_parse_file(current_path, cur, err)) {
    std::fprintf(stderr, "baseline compare: %s: %s\n", current_path.c_str(),
                 err.c_str());
    return false;
  }
  if (!sim::jsonv_parse_file(baseline_path, base, err)) {
    std::fprintf(stderr, "baseline compare: %s: %s\n", baseline_path.c_str(),
                 err.c_str());
    return false;
  }
  const sim::Jsonv* cur_pts = cur.get("points");
  const sim::Jsonv* base_pts = base.get("points");
  if (cur_pts == nullptr || base_pts == nullptr || !cur_pts->is_array() ||
      !base_pts->is_array()) {
    std::fprintf(stderr, "baseline compare: missing \"points\" array\n");
    return false;
  }

  unsigned compared = 0, skipped_points = 0, failures = 0;
  for (const sim::Jsonv& bp : base_pts->array) {
    const std::string key = detail::point_key(bp);
    const sim::Jsonv* cp = detail::find_point(*cur_pts, key);
    if (cp == nullptr) {
      std::fprintf(stderr, "baseline compare: point \"%s\" missing from %s\n",
                   key.c_str(), current_path.c_str());
      ++skipped_points;
      continue;
    }
    for (const auto& [field, bv] : bp.object) {
      if (!bv.is_number()) continue;
      const sim::Jsonv* cv = cp->get(field);
      if (cv == nullptr || !cv->is_number()) continue;
      const bool perf = is_perf_field(field);
      if (perf && perf_tolerance_pct < 0) continue;
      const double tol = perf ? perf_tolerance_pct : tolerance_pct;
      ++compared;
      if (!detail::within(cv->number, bv.number, tol)) {
        std::fprintf(stderr,
                     "REGRESSION: %s.%s: %.9g (baseline %.9g, tolerance %g%%)\n",
                     key.c_str(), field.c_str(), cv->number, bv.number, tol);
        ++failures;
      }
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "baseline compare FAILED: %u field(s) regressed vs %s\n",
                 failures, baseline_path.c_str());
    return false;
  }
  std::printf("baseline compare OK: %u fields within tolerance vs %s%s\n",
              compared, baseline_path.c_str(),
              skipped_points != 0 ? " (some baseline points absent)" : "");
  return true;
}

/// Shared bench epilogue: when --baseline was given, the record written to
/// --json is checked against it. Returns the process exit code contribution
/// (0 = pass). Requires --json when --baseline is used.
inline int run_baseline_check(const BenchOptions& opt) {
  if (opt.baseline_path.empty()) return 0;
  if (opt.json_path.empty()) {
    std::fprintf(stderr, "--baseline requires --json\n");
    return 2;
  }
  return compare_with_baseline(opt.json_path, opt.baseline_path, opt.tolerance,
                               opt.perf_tolerance)
             ? 0
             : 1;
}

}  // namespace ccnoc::bench
