// Extension: three-way write-policy comparison. The paper (§2) divides
// hardware protocols into write-update and write-invalidate and studies
// only the latter; this bench adds the directory-based write-through-
// update protocol (WTU) next to the paper's WTI and WB-MESI on the same
// platforms, showing where patching copies in place beats destroying them
// (producer/consumer-style sharing) and where it loses (update storms to
// actively-written data nobody re-reads).

#include <cstdio>

#include "apps/micro.hpp"
#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

core::RunResult run3(apps::Workload& w, mem::Protocol p, unsigned arch, unsigned n) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, p)
                                     : core::SystemConfig::architecture2(n, p);
  core::System sys(cfg);
  return sys.run(w);
}

void print_row(bench::MetricLog& log, const char* label, const char* key,
               core::RunResult wti, core::RunResult wtu, core::RunResult mesi) {
  std::printf("%-26s %10.1f %10.1f %10.1f | %12llu %12llu %12llu%s\n", label,
              double(wti.exec_cycles) / 1e3, double(wtu.exec_cycles) / 1e3,
              double(mesi.exec_cycles) / 1e3,
              static_cast<unsigned long long>(wti.noc_bytes),
              static_cast<unsigned long long>(wtu.noc_bytes),
              static_cast<unsigned long long>(mesi.noc_bytes),
              (wti.verified && wtu.verified && mesi.verified) ? "" : " [UNVERIFIED]");
  log.add(key, {{"wti_cycles", double(wti.exec_cycles)},
                {"wtu_cycles", double(wtu.exec_cycles)},
                {"mesi_cycles", double(mesi.exec_cycles)},
                {"wti_noc_bytes", double(wti.noc_bytes)},
                {"wtu_noc_bytes", double(wtu.noc_bytes)},
                {"mesi_noc_bytes", double(mesi.noc_bytes)},
                {"verified",
                 (wti.verified && wtu.verified && mesi.verified) ? 1.0 : 0.0}});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;
  const unsigned n = 8;
  std::printf("=== Extension: write-update (WTU) vs the paper's protocols ===\n");
  std::printf("architecture 2, n=%u\n\n", n);
  std::printf("%-26s %10s %10s %10s | %12s %12s %12s\n", "workload", "WTI[Kc]",
              "WTU[Kc]", "MESI[Kc]", "WTI bytes", "WTU bytes", "MESI bytes");

  {
    apps::ProducerConsumer a(60, 6), b(60, 6), c(60, 6);
    print_row(log, "producer-consumer", "producer_consumer",
              run3(a, mem::Protocol::kWti, 2, n),
              run3(b, mem::Protocol::kWtu, 2, n),
              run3(c, mem::Protocol::kWbMesi, 2, n));
  }
  {
    apps::HotCounter a(120), b(120), c(120);
    print_row(log, "hot counter (locks)", "hot_counter",
              run3(a, mem::Protocol::kWti, 2, n),
              run3(b, mem::Protocol::kWtu, 2, n),
              run3(c, mem::Protocol::kWbMesi, 2, n));
  }
  {
    auto mk = [] {
      apps::UniformRandom::Config c;
      c.ops_per_thread = 1200;
      c.local_fraction = 0.2;
      c.store_fraction = 0.5;
      return apps::UniformRandom(c);
    };
    auto a = mk(), b = mk(), c = mk();
    print_row(log, "shared random, write-heavy", "shared_random_write_heavy",
              run3(a, mem::Protocol::kWti, 2, n),
              run3(b, mem::Protocol::kWtu, 2, n),
              run3(c, mem::Protocol::kWbMesi, 2, n));
  }
  {
    auto mk = [] {
      apps::Ocean::Config oc;
      oc.rows_per_thread = 2;
      oc.iterations = 2;
      return apps::Ocean(oc);
    };
    auto a = mk(), b = mk(), c = mk();
    print_row(log, "ocean", "ocean", run3(a, mem::Protocol::kWti, 2, n),
              run3(b, mem::Protocol::kWtu, 2, n),
              run3(c, mem::Protocol::kWbMesi, 2, n));
  }

  std::printf(
      "\nReading: WTU shines when consumers re-read produced values (their\n"
      "copies are patched, spins never refetch); it pays for updating copies\n"
      "that are never read again. The paper's choice of write-invalidate\n"
      "(\"the most commonly used and surely the best in our context\") holds\n"
      "for the application workloads, while the sharing microbenchmarks show\n"
      "the update niche.\n");

  return bench::finish_metric_bench(opt, "ext_update", log);
}
