// Extension: the paper's motivating argument, probed. Related work
// ([4, 11, 18]) found write-through-invalidate clearly inferior on
// bus-based multiprocessors; the paper argues the NoC changes the
// trade-off. This bench runs the same Ocean problem with the same
// *directory* protocols on a single shared bus and on the GMN NoC.
//
// Measured outcome worth reading carefully: with a directory protocol the
// WTI/MESI ratio is nearly the same on both interconnects — both policies
// pay directory messages, so the bus hurts them alike. The historical
// write-through penalty on buses came from *snoopy* write-back, where a
// local write costs zero bus transactions; i.e. it is the pairing of
// write-back with snooping — not the bus itself — that made write-through
// look bad, which is precisely the paper's §1 argument for re-evaluating
// write-through once a directory/NoC organization is adopted.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

core::RunResult run_on(core::NetworkKind net, mem::Protocol p, unsigned n) {
  core::SystemConfig cfg = core::SystemConfig::architecture2(n, p);
  cfg.network = net;
  core::System sys(cfg);
  auto app = bench::make_app("ocean");
  return sys.run(*app);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Extension: bus vs NoC — why the paper re-evaluates WT ===\n");
  std::printf("Ocean, architecture 2 layout, directory protocols on both fabrics.\n");
  std::printf("With a directory, the WTI/MESI ratio barely moves between bus and\n");
  std::printf("NoC — the historical WT penalty belonged to snoopy write-back's\n");
  std::printf("free local writes, not to the shared medium per se.\n\n");
  std::printf("%6s | %12s %12s %10s | %12s %12s %10s\n", "n", "bus WTI", "bus MESI",
              "ratio", "NoC WTI", "NoC MESI", "ratio");
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    auto bw = run_on(core::NetworkKind::kBus, mem::Protocol::kWti, n);
    auto bm = run_on(core::NetworkKind::kBus, mem::Protocol::kWbMesi, n);
    auto nw = run_on(core::NetworkKind::kGmn, mem::Protocol::kWti, n);
    auto nm = run_on(core::NetworkKind::kGmn, mem::Protocol::kWbMesi, n);
    std::printf("%6u | %11.1fK %11.1fK %9.2fx | %11.1fK %11.1fK %9.2fx%s\n", n,
                double(bw.exec_cycles) / 1e3, double(bm.exec_cycles) / 1e3,
                double(bw.exec_cycles) / double(bm.exec_cycles),
                double(nw.exec_cycles) / 1e3, double(nm.exec_cycles) / 1e3,
                double(nw.exec_cycles) / double(nm.exec_cycles),
                (bw.verified && bm.verified && nw.verified && nm.verified)
                    ? ""
                    : " [UNVERIFIED]");
    log.add("n" + std::to_string(n),
            {{"n", double(n)},
             {"bus_wti_cycles", double(bw.exec_cycles)},
             {"bus_mesi_cycles", double(bm.exec_cycles)},
             {"noc_wti_cycles", double(nw.exec_cycles)},
             {"noc_mesi_cycles", double(nm.exec_cycles)},
             {"verified",
              (bw.verified && bm.verified && nw.verified && nm.verified) ? 1.0
                                                                         : 0.0}});
  }

  return bench::finish_metric_bench(opt, "ext_bus", log);
}
