// Extension: the paper's full historical argument, measured end-to-end.
//
// Related work ([4, 11, 18]) showed write-through-invalidate losing to
// write-back on *snooping buses*; the paper claims the directory/NoC
// organization changes that. This bench runs the same Ocean problem on
// (a) the classic snooping bus with snoopy WTI vs snoopy MESI, and
// (b) the paper's directory/NoC platform with WTI vs WB-MESI,
// and prints the WT/WB execution-time ratio for each organization.
// Expected shape: ratio well above 1 on the snooping bus (write-back's
// zero-cost local writes win) and near 1 on the NoC — the paper's thesis.

#include <cstdio>

#include "paper_sweep.hpp"
#include "snoop/system.hpp"

using namespace ccnoc;

namespace {

core::RunResult run_snoop(snoop::SnoopProtocol p, unsigned n) {
  snoop::SnoopSystemConfig cfg;
  cfg.num_cpus = n;
  cfg.protocol = p;
  snoop::SnoopSystem sys(cfg);
  auto app = bench::make_app("ocean");
  return sys.run(*app);
}

core::RunResult run_noc(mem::Protocol p, unsigned n) {
  core::SystemConfig cfg = core::SystemConfig::architecture2(n, p);
  core::System sys(cfg);
  auto app = bench::make_app("ocean");
  return sys.run(*app);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Extension: snooping bus vs directory NoC (Ocean) ===\n");
  std::printf("WT/WB execution-time ratio per organization (>1 = write-through\n");
  std::printf("loses). The classic bus result should appear on the left, the\n");
  std::printf("paper's near-parity on the right.\n\n");
  std::printf("%4s | %12s %12s %8s | %12s %12s %8s\n", "n", "snoopWTI",
              "snoopMESI", "WT/WB", "NoC WTI", "NoC MESI", "WT/WB");
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    auto sw = run_snoop(snoop::SnoopProtocol::kWti, n);
    auto sm = run_snoop(snoop::SnoopProtocol::kMesi, n);
    auto nw = run_noc(mem::Protocol::kWti, n);
    auto nm = run_noc(mem::Protocol::kWbMesi, n);
    std::printf("%4u | %11.1fK %11.1fK %7.2fx | %11.1fK %11.1fK %7.2fx%s\n", n,
                double(sw.exec_cycles) / 1e3, double(sm.exec_cycles) / 1e3,
                double(sw.exec_cycles) / double(sm.exec_cycles),
                double(nw.exec_cycles) / 1e3, double(nm.exec_cycles) / 1e3,
                double(nw.exec_cycles) / double(nm.exec_cycles),
                (sw.verified && sm.verified && nw.verified && nm.verified)
                    ? ""
                    : " [UNVERIFIED]");
    log.add("n" + std::to_string(n),
            {{"n", double(n)},
             {"snoop_wti_cycles", double(sw.exec_cycles)},
             {"snoop_mesi_cycles", double(sm.exec_cycles)},
             {"noc_wti_cycles", double(nw.exec_cycles)},
             {"noc_mesi_cycles", double(nm.exec_cycles)},
             {"verified",
              (sw.verified && sm.verified && nw.verified && nm.verified) ? 1.0
                                                                         : 0.0}});
  }
  std::printf("\nBus traffic (transactions), Ocean n=8:\n");
  auto sw = run_snoop(snoop::SnoopProtocol::kWti, 8);
  auto sm = run_snoop(snoop::SnoopProtocol::kMesi, 8);
  std::printf("  snoop-WTI : %8llu txns, %8llu bytes\n",
              static_cast<unsigned long long>(sw.noc_packets),
              static_cast<unsigned long long>(sw.noc_bytes));
  std::printf("  snoop-MESI: %8llu txns, %8llu bytes\n",
              static_cast<unsigned long long>(sm.noc_packets),
              static_cast<unsigned long long>(sm.noc_bytes));
  log.add("bus_traffic_n8",
          {{"snoop_wti_txns", double(sw.noc_packets)},
           {"snoop_wti_bytes", double(sw.noc_bytes)},
           {"snoop_mesi_txns", double(sm.noc_packets)},
           {"snoop_mesi_bytes", double(sm.noc_bytes)}});

  return bench::finish_metric_bench(opt, "ext_snoop", log);
}
