// Ablation A6: the paper's §4.2 suggested protocol optimization —
// invalidation acknowledgements routed directly to the requesting cache
// (3-hop instead of 4-hop rounds). The paper deliberately left it out
// ("our implementations were done with identical behaviors … leading to a
// fair comparison") but notes it "can often be applied on both protocols";
// this sweep measures what it would have bought each protocol.

#include <cstdio>

#include "apps/micro.hpp"
#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

core::RunResult run(mem::Protocol p, unsigned n, bool direct, bool ocean) {
  core::SystemConfig cfg = core::SystemConfig::architecture2(n, p);
  cfg.bank.direct_inval_ack = direct;
  core::System sys(cfg);
  if (ocean) {
    auto app = bench::make_app("ocean");
    return sys.run(*app);
  }
  apps::HotCounter w(150);
  return sys.run(w);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions cli = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Ablation: direct invalidation acks (paper §4.2) ===\n");
  for (bool ocean : {true, false}) {
    std::printf("\n%s\n", ocean ? "Ocean" : "Hot counter (upgrade/invalidate heavy)");
    std::printf("%-8s %4s %14s %14s %10s\n", "proto", "n", "base [Kcyc]",
                "direct [Kcyc]", "speedup");
    for (mem::Protocol p : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
      for (unsigned n : {4u, 8u, 16u}) {
        auto base = run(p, n, false, ocean);
        auto opt = run(p, n, true, ocean);
        std::printf("%-8s %4u %14.1f %14.1f %9.2fx%s\n", to_string(p), n,
                    double(base.exec_cycles) / 1e3, double(opt.exec_cycles) / 1e3,
                    double(base.exec_cycles) / double(opt.exec_cycles),
                    (base.verified && opt.verified) ? "" : " [UNVERIFIED]");
        log.add(std::string(ocean ? "ocean" : "hot_counter") + "_" + to_string(p) +
                    "_n" + std::to_string(n),
                {{"n", double(n)},
                 {"base_cycles", double(base.exec_cycles)},
                 {"direct_cycles", double(opt.exec_cycles)},
                 {"verified", (base.verified && opt.verified) ? 1.0 : 0.0}});
      }
    }
  }

  std::printf(
      "\n(The gain lands where invalidation rounds sit on the critical path:\n"
      " MESI upgrades of contended blocks and WTI writes to shared data.)\n");
  return bench::finish_metric_bench(cli, "abl_directack", log);
}
