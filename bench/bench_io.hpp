#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

/// Shared command-line and JSON-output plumbing for the bench binaries.
///
/// Every bench accepts:
///   --json <path>           write a machine-readable BENCH_*.json record
///   --threads <n>           worker threads for the sweep (default: all cores,
///                           or the CCNOC_SWEEP_THREADS environment variable)
///   --serial                force the single-threaded reference path
///   --profile <path>        write a line-granularity sharing profile
///                           (schema in EXPERIMENTS.md, "Sharing profiling")
///   --profile-html <path>   write the self-contained HTML heatmap report
///   --baseline <path>       compare --json output against a committed
///                           baseline record; exit 1 on regression
///   --tolerance <pct>       allowed relative drift for deterministic fields
///                           in the baseline compare (default 0 = exact)
///   --perf-tolerance <pct>  also compare host-speed fields (events_per_sec,
///                           wall_seconds, *_ratio) within this drift;
///                           negative (default) skips them entirely
///   --parallel-domains <n>  run the measured platforms on the conservative
///                           parallel core with n domains (0 = serial core);
///                           results are byte-identical either way
///   --heartbeat <ms>        live progress heartbeat on stderr every <ms>
///   --heartbeat-json <path> stream heartbeats as ccnoc-heartbeat-v1 JSONL
///
/// The JSON schema is documented in EXPERIMENTS.md ("JSON bench output").

namespace ccnoc::bench {

struct BenchOptions {
  std::string json_path;          ///< empty = no JSON output
  unsigned threads = 0;           ///< 0 = SweepRunner default
  bool serial = false;
  std::string profile_path;       ///< empty = no sharing profile
  std::string profile_html_path;  ///< empty = no HTML report
  std::string baseline_path;      ///< empty = no baseline compare
  double tolerance = 0.0;         ///< % drift allowed on deterministic fields
  double perf_tolerance = -1.0;   ///< % drift on perf fields; <0 = skip them
  unsigned parallel_domains = 0;  ///< SystemConfig::parallel_domains for runs
  unsigned heartbeat_ms = 0;      ///< SystemConfig::heartbeat_ms passthrough
  std::string heartbeat_json;     ///< SystemConfig::heartbeat_json passthrough

  /// Any profile output requested? (drives ProfileMode for the runs)
  [[nodiscard]] bool want_profile() const {
    return !profile_path.empty() || !profile_html_path.empty();
  }
};

inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) opt.threads = unsigned(v);
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      opt.serial = true;
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      opt.profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-html") == 0 && i + 1 < argc) {
      opt.profile_html_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opt.baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      opt.tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--perf-tolerance") == 0 && i + 1 < argc) {
      opt.perf_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--parallel-domains") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) opt.parallel_domains = unsigned(v);
    } else if (std::strcmp(argv[i], "--heartbeat") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) opt.heartbeat_ms = unsigned(v);
    } else if (std::strcmp(argv[i], "--heartbeat-json") == 0 && i + 1 < argc) {
      opt.heartbeat_json = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--json <path>] [--threads <n>] [--serial]\n"
                  "          [--profile <path>] [--profile-html <path>]\n"
                  "          [--baseline <path>] [--tolerance <pct>]\n"
                  "          [--perf-tolerance <pct>] [--parallel-domains <n>]\n"
                  "          [--heartbeat <ms>] [--heartbeat-json <path>]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.serial) opt.threads = 1;
  return opt;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal JSON emitter: enough structure for the flat bench records
/// (objects, arrays, string/number/bool fields) without a dependency.
/// Comma placement is tracked with one flag: anything that completes a
/// value (a field, end_object, end_array) marks the next sibling as needing
/// a separator.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { sep(); open('{'); }
  void begin_object(const std::string& key) { key_of(key); open('{'); }
  void end_object() { done('}'); }
  void begin_array(const std::string& key) { key_of(key); open('['); }
  void end_array() { done(']'); }

  void field(const std::string& key, const std::string& v) {
    key_of(key);
    std::fprintf(f_, "\"%s\"", json_escape(v).c_str());
    need_comma_ = true;
  }
  void field(const std::string& key, const char* v) { field(key, std::string(v)); }
  void field(const std::string& key, std::uint64_t v) {
    key_of(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
    need_comma_ = true;
  }
  void field(const std::string& key, unsigned v) {
    field(key, static_cast<std::uint64_t>(v));
  }
  void field(const std::string& key, double v) {
    key_of(key);
    std::fprintf(f_, "%.9g", v);
    need_comma_ = true;
  }
  void field(const std::string& key, bool v) {
    key_of(key);
    std::fputs(v ? "true" : "false", f_);
    need_comma_ = true;
  }

 private:
  void sep() {
    if (need_comma_) std::fputc(',', f_);
    need_comma_ = false;
  }
  void key_of(const std::string& key) {
    sep();
    std::fprintf(f_, "\"%s\":", json_escape(key).c_str());
  }
  void open(char c) {
    std::fputc(c, f_);
    need_comma_ = false;
  }
  void done(char c) {
    std::fputc(c, f_);
    need_comma_ = true;
  }

  std::FILE* f_;
  bool need_comma_ = false;
};

/// Row-oriented JSON record for the bespoke (non-grid) benches: each row is
/// one measured configuration with a label and named numeric metrics, saved
/// in the order the bench printed it. Wall time is measured from
/// construction to write().
class MetricLog {
 public:
  MetricLog() : t0_(std::chrono::steady_clock::now()) {}

  void add(const std::string& label,
           std::initializer_list<std::pair<const char*, double>> values) {
    rows_.push_back({label, {values.begin(), values.end()}});
  }

  /// Write the BENCH_*.json record (schema in EXPERIMENTS.md); returns
  /// false (with a message on stderr) if the file can't be opened.
  [[nodiscard]] bool write(const std::string& path,
                           const std::string& bench_name) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0_).count();
    JsonWriter w(f);
    w.begin_object();
    w.field("bench", bench_name);
    w.field("schema_version", std::uint64_t{1});
    w.begin_array("points");
    for (const Row& r : rows_) {
      w.begin_object();
      w.field("label", r.label);
      for (const auto& [key, v] : r.values) {
        // Counters arrive as doubles; keep exact integers integral in the
        // output instead of rounding them through %g.
        if (v >= 0 && v == std::floor(v) && v < 9.007199254740992e15) {
          w.field(key, std::uint64_t(v));
        } else {
          w.field(key, v);
        }
      }
      w.end_object();
    }
    w.end_array();
    w.begin_object("totals");
    w.field("points", std::uint64_t(rows_.size()));
    w.field("wall_seconds", wall);
    w.end_object();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s (%zu points)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> values;
  };
  std::chrono::steady_clock::time_point t0_;
  std::vector<Row> rows_;
};

}  // namespace ccnoc::bench
