// Ablation A2: WTI write-buffer depth. The paper fixes it at 8 words
// (Table 2); this sweep shows how the choice moves execution time and the
// write-buffer-full stall count — i.e. how much of WTI's "non-blocking"
// advantage the buffer provides. Measured on a store-burst workload
// (Ocean's store rate is too low to pressure the buffer) and on Ocean for
// reference.

#include <cstdio>

#include "apps/micro.hpp"
#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

void sweep(const char* label, const char* key, bench::MetricLog& log,
           const std::function<core::RunResult(core::System&)>& go) {
  std::printf("\n%s\n", label);
  std::printf("%8s %14s %16s %18s\n", "entries", "exec [Kcyc]", "full stalls",
              "d-stall [%]");
  for (unsigned depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::SystemConfig cfg = core::SystemConfig::architecture1(8, mem::Protocol::kWti);
    cfg.dcache.write_buffer_entries = depth;
    core::System sys(cfg);
    auto r = go(sys);
    std::uint64_t stalls = 0;
    for (unsigned c = 0; c < 8; ++c) {
      stalls += sys.simulator().stats().counter_value(
          "cpu" + std::to_string(c) + ".dcache.wbuf_full_stalls");
    }
    std::printf("%8u %14.1f %16llu %17.1f%%%s\n", depth, double(r.exec_cycles) / 1e3,
                static_cast<unsigned long long>(stalls), r.d_stall_pct(8),
                r.verified ? "" : "  [UNVERIFIED]");
    log.add(std::string(key) + "_depth" + std::to_string(depth),
            {{"depth", double(depth)},
             {"exec_cycles", double(r.exec_cycles)},
             {"wbuf_full_stalls", double(stalls)},
             {"d_stall_pct", r.d_stall_pct(8)},
             {"verified", r.verified ? 1.0 : 0.0}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;

  std::printf("=== Ablation: WTI write-buffer depth (arch 1, n=8) ===\n");

  sweep("Store burst (70%% stores, back-to-back)", "store_burst", log,
        [](core::System& sys) {
    apps::UniformRandom::Config c;
    c.ops_per_thread = 1200;
    c.store_fraction = 0.7;
    c.local_fraction = 0.3;
    c.compute_between = 0;  // no gaps: the buffer must absorb the burst
    apps::UniformRandom w(c);
    return sys.run(w);
  });

  sweep("Ocean (paper workload, moderate store rate)", "ocean", log,
        [](core::System& sys) {
    auto app = bench::make_app("ocean");
    return sys.run(*app);
  });

  return bench::finish_metric_bench(opt, "abl_wbuf", log);
}
