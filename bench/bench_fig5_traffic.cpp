// Figure 5 reproduction: total NoC traffic in bytes over a complete run.
//
// Paper observation to reproduce in shape: traffic is of the same order of
// magnitude for both protocols, with no consistent winner — write-through's
// per-store words roughly balance write-back's block allocations and
// write-backs.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  const auto specs = bench::paper_grid(bench::sweep_sizes());
  const auto runs = bench::run_sweep(specs, opt.threads, sim::TraceMode::kOff,
                                     opt.want_profile() ? sim::ProfileMode::kOn
                                                        : sim::ProfileMode::kOff);

  std::printf("=== Figure 5: total NoC traffic (bytes) ===\n");
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const bench::PaperRun& wti = runs[i];
    const bench::PaperRun& mesi = runs[i + 1];
    if (i == 0 || wti.app != runs[i - 2].app || wti.arch != runs[i - 2].arch) {
      std::printf("\n%s — %s\n", wti.app.c_str(), bench::arch_label(wti.arch));
      std::printf("%6s %16s %16s %10s\n", "n", "WTI [bytes]", "MESI [bytes]",
                  "WTI/MESI");
    }
    double ratio = mesi.result.noc_bytes == 0
                       ? 0.0
                       : double(wti.result.noc_bytes) / double(mesi.result.noc_bytes);
    std::printf("%6u %16llu %16llu %9.2fx\n", wti.n,
                static_cast<unsigned long long>(wti.result.noc_bytes),
                static_cast<unsigned long long>(mesi.result.noc_bytes), ratio);
  }

  return bench::finish_paper_bench(opt, "fig5_traffic", runs);
}
