// Figure 5 reproduction: total NoC traffic in bytes over a complete run.
//
// Paper observation to reproduce in shape: traffic is of the same order of
// magnitude for both protocols, with no consistent winner — write-through's
// per-store words roughly balance write-back's block allocations and
// write-backs.

#include <cstdio>

#include "paper_sweep.hpp"

using namespace ccnoc;

int main() {
  std::printf("=== Figure 5: total NoC traffic (bytes) ===\n");
  for (const char* app : {"ocean", "water"}) {
    for (unsigned arch : {1u, 2u}) {
      std::printf("\n%s — %s\n", app, bench::arch_label(arch));
      std::printf("%6s %16s %16s %10s\n", "n", "WTI [bytes]", "MESI [bytes]",
                  "WTI/MESI");
      for (unsigned n : bench::sweep_sizes()) {
        auto wti = bench::run_point(app, arch, mem::Protocol::kWti, n);
        auto mesi = bench::run_point(app, arch, mem::Protocol::kWbMesi, n);
        double ratio = mesi.result.noc_bytes == 0
                           ? 0.0
                           : double(wti.result.noc_bytes) / double(mesi.result.noc_bytes);
        std::printf("%6u %16llu %16llu %9.2fx\n", n,
                    static_cast<unsigned long long>(wti.result.noc_bytes),
                    static_cast<unsigned long long>(mesi.result.noc_bytes), ratio);
      }
    }
  }
  return 0;
}
