#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "baseline_compare.hpp"
#include "bench_io.hpp"
#include "core/system.hpp"
#include "sim/profile.hpp"
#include "sim/sweep.hpp"

/// Shared harness for the paper-reproduction benches (Figures 4/5/6): one
/// run of Ocean or Water on a paper platform (architecture × protocol × n),
/// with the workload scaled the same way the paper scales it (constant
/// work per processor: Ocean's grid dimension and Water's molecule count
/// follow the processor count) but at a size that simulates in seconds.
///
/// Every sweep point owns its whole Simulator, so points are independent
/// and `run_sweep` fans them across a sim::SweepRunner thread pool; results
/// come back ordered by point index, making the parallel sweep's output
/// byte-identical to the serial one.
///
/// Set CCNOC_BENCH_SCALE=small to shrink the sweep (n ≤ 16) for smoke runs.

namespace ccnoc::bench {

inline std::unique_ptr<apps::Workload> make_app(const std::string& name) {
  if (name == "ocean") {
    apps::Ocean::Config c;
    c.rows_per_thread = 2;   // grid = 2n+2 (paper: 4n+2; same scaling law)
    c.iterations = 2;
    c.compute_per_cell = 8;
    return std::make_unique<apps::Ocean>(c);
  }
  if (name == "water") {
    apps::Water::Config c;   // paper molecule rule: 27 (n ≤ 16) / 64
    c.steps = 2;
    return std::make_unique<apps::Water>(c);
  }
  CCNOC_ASSERT(false, "unknown benchmark app " + name);
  return nullptr;
}

/// One sweep point: which platform and workload to run.
struct SweepSpec {
  std::string app;
  unsigned arch = 1;
  mem::Protocol proto = mem::Protocol::kWti;
  unsigned n = 4;
};

struct PaperRun {
  std::string app;
  unsigned arch = 1;
  mem::Protocol proto = mem::Protocol::kWti;
  unsigned n = 4;
  core::RunResult result;
  double wall_seconds = 0.0;  ///< host time spent simulating this point
  sim::ProfileSnapshot profile;  ///< empty unless the point ran with kOn
};

/// "ocean wti arch1 n=4" — the label used in profile.json and the reports.
inline std::string point_label(const std::string& app, unsigned arch,
                               mem::Protocol proto, unsigned n) {
  return app + " " + to_string(proto) + " arch" + std::to_string(arch) +
         " n=" + std::to_string(n);
}

inline PaperRun run_point(const std::string& app, unsigned arch, mem::Protocol proto,
                          unsigned n, sim::TraceMode trace = sim::TraceMode::kOff,
                          sim::ProfileMode profile = sim::ProfileMode::kOff) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, proto)
                                     : core::SystemConfig::architecture2(n, proto);
  cfg.trace = trace;
  cfg.profile = profile;
  core::System sys(cfg);
  auto workload = make_app(app);
  auto t0 = std::chrono::steady_clock::now();
  PaperRun pr{app, arch, proto, n, sys.run(*workload), 0.0, {}};
  pr.wall_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0).count();
  if (profile == sim::ProfileMode::kOn) {
    pr.profile = sys.simulator().profiler().snapshot(point_label(app, arch, proto, n));
  }
  if (!pr.result.verified) {
    std::fprintf(stderr, "WARNING: %s %s arch%u n=%u failed verification!\n",
                 app.c_str(), to_string(proto), arch, n);
  }
  return pr;
}

/// Run every spec (each on its own Simulator) across \p threads workers
/// (0 = default pool size); results are indexed exactly like \p specs.
inline std::vector<PaperRun> run_sweep(const std::vector<SweepSpec>& specs,
                                       unsigned threads = 0,
                                       sim::TraceMode trace = sim::TraceMode::kOff,
                                       sim::ProfileMode profile = sim::ProfileMode::kOff) {
  std::vector<PaperRun> out(specs.size());
  sim::SweepRunner runner(threads);
  runner.run_indexed(specs.size(), [&](std::size_t i) {
    const SweepSpec& s = specs[i];
    out[i] = run_point(s.app, s.arch, s.proto, s.n, trace, profile);
  });
  return out;
}

/// The standard paper grid: {ocean, water} × {arch 1, 2} × sweep_sizes()
/// × {WTI, WB-MESI}, in the order the figure tables print it. Points at a
/// fixed (app, arch, n) are adjacent: WTI first, then MESI.
inline std::vector<SweepSpec> paper_grid(const std::vector<unsigned>& sizes) {
  std::vector<SweepSpec> specs;
  for (const char* app : {"ocean", "water"}) {
    for (unsigned arch : {1u, 2u}) {
      for (unsigned n : sizes) {
        specs.push_back({app, arch, mem::Protocol::kWti, n});
        specs.push_back({app, arch, mem::Protocol::kWbMesi, n});
      }
    }
  }
  return specs;
}

inline std::vector<unsigned> sweep_sizes() {
  const char* scale = std::getenv("CCNOC_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") return {4, 16};
  return {4, 16, 32, 64};  // the paper's platform sizes
}

inline const char* arch_label(unsigned arch) {
  return arch == 1 ? "architecture 1 (SMP, 2 banks)" : "architecture 2 (DS, n+3 banks)";
}

/// Emit the shared BENCH_*.json record (schema in EXPERIMENTS.md) for a
/// completed sweep. Returns false (with a message) if the file can't be
/// opened.
inline bool write_paper_json(const std::string& path, const std::string& bench_name,
                             const std::vector<PaperRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  double wall = 0.0;
  std::uint64_t events = 0;
  for (const PaperRun& r : runs) {
    wall += r.wall_seconds;
    events += r.result.events;
  }

  JsonWriter w(f);
  w.begin_object();
  w.field("bench", bench_name);
  w.field("schema_version", std::uint64_t{1});
  w.begin_array("points");
  for (const PaperRun& r : runs) {
    w.begin_object();
    w.field("app", r.app);
    w.field("arch", r.arch);
    w.field("protocol", to_string(r.proto));
    w.field("n", r.n);
    w.field("exec_cycles", std::uint64_t(r.result.exec_cycles));
    w.field("noc_bytes", r.result.noc_bytes);
    w.field("noc_packets", r.result.noc_packets);
    w.field("instructions", r.result.instructions);
    w.field("d_stall_cycles", r.result.d_stall_cycles);
    w.field("i_stall_cycles", r.result.i_stall_cycles);
    w.field("events", r.result.events);
    w.field("wall_seconds", r.wall_seconds);
    w.field("events_per_sec",
            r.wall_seconds > 0 ? double(r.result.events) / r.wall_seconds : 0.0);
    w.field("verified", r.result.verified);
    w.end_object();
  }
  w.end_array();
  w.begin_object("totals");
  w.field("points", std::uint64_t(runs.size()));
  w.field("events", events);
  w.field("wall_seconds", wall);
  w.field("events_per_sec", wall > 0 ? double(events) / wall : 0.0);
  w.end_object();
  w.end_object();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s (%zu points)\n", path.c_str(), runs.size());
  return true;
}

/// Multi-config profile record for a sweep: one ccnoc-profile object per
/// point, wrapped in a "profiles" array (kind: ccnoc-profile-sweep). Each
/// inner object is exactly what write_profile_json would emit for that
/// point, so downstream tooling can treat the elements uniformly.
inline bool write_sweep_profiles(const std::string& path,
                                 const std::string& bench_name,
                                 const std::vector<PaperRun>& runs,
                                 std::size_t top_n = 0) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"schema_version\":1,\"kind\":\"ccnoc-profile-sweep\","
                  "\"bench\":\"%s\",\"profiles\":[", bench_name.c_str());
  bool first = true;
  for (const PaperRun& r : runs) {
    if (r.profile.label.empty()) continue;  // point ran with profiling off
    if (!first) std::fputc(',', f);
    first = false;
    std::fputs(sim::profile_json(r.profile, top_n).c_str(), f);
  }
  std::fputs("]}\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// The showcase pair for a sweep's HTML report: the adjacent WTI/MESI pair
/// at the largest n (ties go to the earliest group, i.e. ocean arch1).
/// Returns {nullptr, nullptr} when no adjacent protocol pair exists.
inline std::pair<const PaperRun*, const PaperRun*> pick_diff_pair(
    const std::vector<PaperRun>& runs) {
  const PaperRun* a = nullptr;
  const PaperRun* b = nullptr;
  for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
    const PaperRun& w = runs[i];
    const PaperRun& m = runs[i + 1];
    if (w.app != m.app || w.arch != m.arch || w.n != m.n) continue;
    if (w.proto == m.proto) continue;
    if (a == nullptr || w.n > a->n) {
      a = &w;
      b = &m;
    }
  }
  return {a, b};
}

/// Shared epilogue for the paper-grid benches: BENCH json, sweep profiles,
/// HTML diff report, baseline compare. Returns the process exit code.
inline int finish_paper_bench(const BenchOptions& opt, const std::string& bench_name,
                              const std::vector<PaperRun>& runs) {
  if (!opt.json_path.empty() && !write_paper_json(opt.json_path, bench_name, runs))
    return 1;
  if (!opt.profile_path.empty() &&
      !write_sweep_profiles(opt.profile_path, bench_name, runs))
    return 1;
  if (!opt.profile_html_path.empty()) {
    auto [a, b] = pick_diff_pair(runs);
    if (a == nullptr || a->profile.label.empty()) {
      std::fprintf(stderr, "no profiled WTI/MESI pair for --profile-html\n");
      return 1;
    }
    if (!sim::write_profile_html(opt.profile_html_path,
                                 bench_name + ": " + a->profile.label + " vs " +
                                     b->profile.label,
                                 a->profile, &b->profile))
      return 1;
    std::printf("wrote %s\n", opt.profile_html_path.c_str());
  }
  return run_baseline_check(opt);
}

/// Reference profile pair for the benches that don't sweep the paper grid
/// (table1, ablations, extensions): 4-CPU Ocean on architecture 1, WTI vs
/// WB-MESI — the same pair the examples and docs use.
inline bool write_reference_profiles(const BenchOptions& opt) {
  PaperRun wti = run_point("ocean", 1, mem::Protocol::kWti, 4,
                           sim::TraceMode::kOff, sim::ProfileMode::kOn);
  PaperRun mesi = run_point("ocean", 1, mem::Protocol::kWbMesi, 4,
                            sim::TraceMode::kOff, sim::ProfileMode::kOn);
  if (!opt.profile_path.empty()) {
    if (!write_sweep_profiles(opt.profile_path, "reference_ocean_arch1_n4",
                              {wti, mesi}))
      return false;
  }
  if (!opt.profile_html_path.empty()) {
    if (!sim::write_profile_html(opt.profile_html_path,
                                 wti.profile.label + " vs " + mesi.profile.label,
                                 wti.profile, &mesi.profile))
      return false;
    std::printf("wrote %s\n", opt.profile_html_path.c_str());
  }
  return true;
}

/// Shared epilogue for the MetricLog benches: BENCH json, the reference
/// profile pair when profiling was requested, baseline compare.
inline int finish_metric_bench(const BenchOptions& opt, const std::string& bench_name,
                               const MetricLog& log) {
  if (!opt.json_path.empty() && !log.write(opt.json_path, bench_name)) return 1;
  if (opt.want_profile() && !write_reference_profiles(opt)) return 1;
  return run_baseline_check(opt);
}

}  // namespace ccnoc::bench
