#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "core/system.hpp"

/// Shared harness for the paper-reproduction benches (Figures 4/5/6): one
/// run of Ocean or Water on a paper platform (architecture × protocol × n),
/// with the workload scaled the same way the paper scales it (constant
/// work per processor: Ocean's grid dimension and Water's molecule count
/// follow the processor count) but at a size that simulates in seconds.
///
/// Set CCNOC_BENCH_SCALE=small to shrink the sweep (n ≤ 16) for smoke runs.

namespace ccnoc::bench {

inline std::unique_ptr<apps::Workload> make_app(const std::string& name) {
  if (name == "ocean") {
    apps::Ocean::Config c;
    c.rows_per_thread = 2;   // grid = 2n+2 (paper: 4n+2; same scaling law)
    c.iterations = 2;
    c.compute_per_cell = 8;
    return std::make_unique<apps::Ocean>(c);
  }
  if (name == "water") {
    apps::Water::Config c;   // paper molecule rule: 27 (n ≤ 16) / 64
    c.steps = 2;
    return std::make_unique<apps::Water>(c);
  }
  CCNOC_ASSERT(false, "unknown benchmark app " + name);
  return nullptr;
}

struct PaperRun {
  std::string app;
  unsigned arch = 1;
  mem::Protocol proto = mem::Protocol::kWti;
  unsigned n = 4;
  core::RunResult result;
};

inline PaperRun run_point(const std::string& app, unsigned arch, mem::Protocol proto,
                          unsigned n) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, proto)
                                     : core::SystemConfig::architecture2(n, proto);
  core::System sys(cfg);
  auto workload = make_app(app);
  PaperRun pr{app, arch, proto, n, sys.run(*workload)};
  if (!pr.result.verified) {
    std::fprintf(stderr, "WARNING: %s %s arch%u n=%u failed verification!\n",
                 app.c_str(), to_string(proto), arch, n);
  }
  return pr;
}

inline std::vector<unsigned> sweep_sizes() {
  const char* scale = std::getenv("CCNOC_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") return {4, 16};
  return {4, 16, 32, 64};  // the paper's platform sizes
}

inline const char* arch_label(unsigned arch) {
  return arch == 1 ? "architecture 1 (SMP, 2 banks)" : "architecture 2 (DS, n+3 banks)";
}

}  // namespace ccnoc::bench
