#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "bench_io.hpp"
#include "core/system.hpp"
#include "sim/sweep.hpp"

/// Shared harness for the paper-reproduction benches (Figures 4/5/6): one
/// run of Ocean or Water on a paper platform (architecture × protocol × n),
/// with the workload scaled the same way the paper scales it (constant
/// work per processor: Ocean's grid dimension and Water's molecule count
/// follow the processor count) but at a size that simulates in seconds.
///
/// Every sweep point owns its whole Simulator, so points are independent
/// and `run_sweep` fans them across a sim::SweepRunner thread pool; results
/// come back ordered by point index, making the parallel sweep's output
/// byte-identical to the serial one.
///
/// Set CCNOC_BENCH_SCALE=small to shrink the sweep (n ≤ 16) for smoke runs.

namespace ccnoc::bench {

inline std::unique_ptr<apps::Workload> make_app(const std::string& name) {
  if (name == "ocean") {
    apps::Ocean::Config c;
    c.rows_per_thread = 2;   // grid = 2n+2 (paper: 4n+2; same scaling law)
    c.iterations = 2;
    c.compute_per_cell = 8;
    return std::make_unique<apps::Ocean>(c);
  }
  if (name == "water") {
    apps::Water::Config c;   // paper molecule rule: 27 (n ≤ 16) / 64
    c.steps = 2;
    return std::make_unique<apps::Water>(c);
  }
  CCNOC_ASSERT(false, "unknown benchmark app " + name);
  return nullptr;
}

/// One sweep point: which platform and workload to run.
struct SweepSpec {
  std::string app;
  unsigned arch = 1;
  mem::Protocol proto = mem::Protocol::kWti;
  unsigned n = 4;
};

struct PaperRun {
  std::string app;
  unsigned arch = 1;
  mem::Protocol proto = mem::Protocol::kWti;
  unsigned n = 4;
  core::RunResult result;
  double wall_seconds = 0.0;  ///< host time spent simulating this point
};

inline PaperRun run_point(const std::string& app, unsigned arch, mem::Protocol proto,
                          unsigned n, sim::TraceMode trace = sim::TraceMode::kOff) {
  core::SystemConfig cfg = arch == 1 ? core::SystemConfig::architecture1(n, proto)
                                     : core::SystemConfig::architecture2(n, proto);
  cfg.trace = trace;
  core::System sys(cfg);
  auto workload = make_app(app);
  auto t0 = std::chrono::steady_clock::now();
  PaperRun pr{app, arch, proto, n, sys.run(*workload), 0.0};
  pr.wall_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0).count();
  if (!pr.result.verified) {
    std::fprintf(stderr, "WARNING: %s %s arch%u n=%u failed verification!\n",
                 app.c_str(), to_string(proto), arch, n);
  }
  return pr;
}

/// Run every spec (each on its own Simulator) across \p threads workers
/// (0 = default pool size); results are indexed exactly like \p specs.
inline std::vector<PaperRun> run_sweep(const std::vector<SweepSpec>& specs,
                                       unsigned threads = 0,
                                       sim::TraceMode trace = sim::TraceMode::kOff) {
  std::vector<PaperRun> out(specs.size());
  sim::SweepRunner runner(threads);
  runner.run_indexed(specs.size(), [&](std::size_t i) {
    const SweepSpec& s = specs[i];
    out[i] = run_point(s.app, s.arch, s.proto, s.n, trace);
  });
  return out;
}

/// The standard paper grid: {ocean, water} × {arch 1, 2} × sweep_sizes()
/// × {WTI, WB-MESI}, in the order the figure tables print it. Points at a
/// fixed (app, arch, n) are adjacent: WTI first, then MESI.
inline std::vector<SweepSpec> paper_grid(const std::vector<unsigned>& sizes) {
  std::vector<SweepSpec> specs;
  for (const char* app : {"ocean", "water"}) {
    for (unsigned arch : {1u, 2u}) {
      for (unsigned n : sizes) {
        specs.push_back({app, arch, mem::Protocol::kWti, n});
        specs.push_back({app, arch, mem::Protocol::kWbMesi, n});
      }
    }
  }
  return specs;
}

inline std::vector<unsigned> sweep_sizes() {
  const char* scale = std::getenv("CCNOC_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") return {4, 16};
  return {4, 16, 32, 64};  // the paper's platform sizes
}

inline const char* arch_label(unsigned arch) {
  return arch == 1 ? "architecture 1 (SMP, 2 banks)" : "architecture 2 (DS, n+3 banks)";
}

/// Emit the shared BENCH_*.json record (schema in EXPERIMENTS.md) for a
/// completed sweep. Returns false (with a message) if the file can't be
/// opened.
inline bool write_paper_json(const std::string& path, const std::string& bench_name,
                             const std::vector<PaperRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  double wall = 0.0;
  std::uint64_t events = 0;
  for (const PaperRun& r : runs) {
    wall += r.wall_seconds;
    events += r.result.events;
  }

  JsonWriter w(f);
  w.begin_object();
  w.field("bench", bench_name);
  w.field("schema_version", std::uint64_t{1});
  w.begin_array("points");
  for (const PaperRun& r : runs) {
    w.begin_object();
    w.field("app", r.app);
    w.field("arch", r.arch);
    w.field("protocol", to_string(r.proto));
    w.field("n", r.n);
    w.field("exec_cycles", std::uint64_t(r.result.exec_cycles));
    w.field("noc_bytes", r.result.noc_bytes);
    w.field("noc_packets", r.result.noc_packets);
    w.field("instructions", r.result.instructions);
    w.field("d_stall_cycles", r.result.d_stall_cycles);
    w.field("i_stall_cycles", r.result.i_stall_cycles);
    w.field("events", r.result.events);
    w.field("wall_seconds", r.wall_seconds);
    w.field("events_per_sec",
            r.wall_seconds > 0 ? double(r.result.events) / r.wall_seconds : 0.0);
    w.field("verified", r.result.verified);
    w.end_object();
  }
  w.end_array();
  w.begin_object("totals");
  w.field("points", std::uint64_t(runs.size()));
  w.field("events", events);
  w.field("wall_seconds", wall);
  w.field("events_per_sec", wall > 0 ? double(events) / wall : 0.0);
  w.end_object();
  w.end_object();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s (%zu points)\n", path.c_str(), runs.size());
  return true;
}

}  // namespace ccnoc::bench
