// Microbenchmarks (google-benchmark) for the simulator's hot primitives:
// event-queue throughput, interconnect injection, cache hit path, directory
// operations and full small-platform runs. These bound the host-side cost
// of the CABA simulation itself, not the simulated platform's performance.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "apps/micro.hpp"
#include "bench_io.hpp"
#include "cache/cache_node.hpp"
#include "paper_sweep.hpp"
#include "core/system.hpp"
#include "mem/bank.hpp"
#include "mem/directory.hpp"
#include "noc/gmn.hpp"
#include "sim/event_queue.hpp"

using namespace ccnoc;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule_in(sim::Cycle(i % 97 + 1), [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

static void BM_EventQueueSelfChaining(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t count = 0;
    const std::uint64_t target = std::uint64_t(state.range(0));
    std::function<void()> chain = [&] {
      if (++count < target) q.schedule_in(1, chain);
    };
    q.schedule_in(1, chain);
    q.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueSelfChaining)->Arg(4096);

namespace {
struct NullEndpoint final : noc::Endpoint {
  void deliver(const noc::Packet&) override {}
};
}  // namespace

static void BM_GmnInjection(benchmark::State& state) {
  sim::Simulator sim;
  noc::GmnNetwork net(sim, 16);
  std::vector<std::unique_ptr<NullEndpoint>> eps;
  for (sim::NodeId i = 0; i < 16; ++i) {
    eps.push_back(std::make_unique<NullEndpoint>());
    net.attach(i, *eps.back());
  }
  noc::Message m;
  m.type = noc::MsgType::kReadShared;
  std::uint64_t i = 0;
  for (auto _ : state) {
    net.send(sim::NodeId(i % 15), 15, m);
    ++i;
    if (i % 1024 == 0) sim.run_to_completion();
  }
  sim.run_to_completion();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmnInjection);

static void BM_CacheHitPath(benchmark::State& state) {
  sim::Simulator sim;
  mem::AddressMap map(1, 1);
  noc::GmnNetwork net(sim, map.num_nodes());
  mem::Bank bank(sim, net, map, 0, mem::Protocol::kWbMesi);
  cache::CacheNode node(sim, net, map, 0, mem::Protocol::kWbMesi,
                        cache::CacheConfig{}, cache::CacheConfig{});
  // Warm one block.
  cache::MemAccess a;
  a.addr = 0x100;
  a.size = 4;
  std::uint64_t v = 0;
  node.dcache().access(a, &v, [](std::uint64_t) {});
  sim.run_to_completion();
  for (auto _ : state) {
    auto res = node.dcache().access(a, &v, [](std::uint64_t) {});
    benchmark::DoNotOptimize(res);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitPath);

static void BM_DirectoryOps(benchmark::State& state) {
  mem::Directory dir(64);
  std::uint64_t i = 0;
  for (auto _ : state) {
    sim::Addr block = (i % 4096) * 32;
    dir.add_sharer(block, sim::NodeId(i % 64));
    benchmark::DoNotOptimize(dir.lookup(block));
    if (i % 7 == 0) dir.clear_all_except(block);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryOps);

static void BM_FullPlatformHotCounter(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig cfg = core::SystemConfig::architecture2(
        unsigned(state.range(0)), mem::Protocol::kWbMesi);
    core::System sys(cfg);
    apps::HotCounter w(20);
    auto r = sys.run(w);
    if (!r.verified) state.SkipWithError("verification failed");
    state.counters["sim_cycles"] = double(r.exec_cycles);
    state.counters["sim_events"] = double(r.events);
  }
}
BENCHMARK(BM_FullPlatformHotCounter)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

namespace {

struct ObsRun {
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  double wall = 0.0;
  bool verified = true;

  [[nodiscard]] double events_per_sec() const {
    return wall > 0 ? double(events) / wall : 0.0;
  }
};

/// Repeated full-platform HotCounter runs under one observability setting.
ObsRun measure_hot_counter(unsigned n, int reps, sim::TraceMode trace,
                           sim::ProfileMode profile,
                           sim::LatencyMode latency = sim::LatencyMode::kOff) {
  ObsRun out;
  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    core::SystemConfig cfg =
        core::SystemConfig::architecture2(n, mem::Protocol::kWbMesi);
    cfg.trace = trace;
    cfg.profile = profile;
    cfg.latency = latency;
    core::System sys(cfg);
    apps::HotCounter w(20);
    auto r = sys.run(w);
    out.events += r.events;
    out.cycles += r.exec_cycles;
    out.verified = out.verified && r.verified;
  }
  out.wall = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): we pull our own flags out of
// argv before google-benchmark parses it, and after the suite we take the
// canonical kernel-speed measurement — simulated events per host second on
// full small platforms — for the BENCH_micro.json record, plus the
// observability cost model: the same workload under tracer/profiler modes,
// with mode/off throughput ratios the CI guardrail checks.
int main(int argc, char** argv) {
  bench::BenchOptions opt;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      opt.profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-html") == 0 && i + 1 < argc) {
      opt.profile_html_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opt.baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      opt.tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--perf-tolerance") == 0 && i + 1 < argc) {
      opt.perf_tolerance = std::strtod(argv[++i], nullptr);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = int(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (opt.json_path.empty() && !opt.want_profile()) return 0;

  bench::MetricLog log;
  for (unsigned n : {4u, 16u}) {
    const int reps = 5;
    ObsRun r = measure_hot_counter(n, reps, sim::TraceMode::kOff,
                                   sim::ProfileMode::kOff);
    log.add("full_platform_hot_counter_n" + std::to_string(n),
            {{"n", double(n)},
             {"reps", double(reps)},
             {"sim_cycles", double(r.cycles)},
             {"events", double(r.events)},
             {"wall_seconds", r.wall},
             {"events_per_sec", r.events_per_sec()},
             {"verified", r.verified ? 1.0 : 0.0}});
  }

  // Observability cost model: each mode's throughput relative to off. The
  // simulated outcome (cycles, events) must be identical in every mode —
  // that is checked here, not just in the tests — while the *_ratio fields
  // quantify the host-side cost and feed the CI overhead guardrail.
  {
    const unsigned n = 4;
    const int reps = 5;
    ObsRun off = measure_hot_counter(n, reps, sim::TraceMode::kOff,
                                     sim::ProfileMode::kOff);
    ObsRun metrics = measure_hot_counter(n, reps, sim::TraceMode::kMetrics,
                                         sim::ProfileMode::kOff);
    ObsRun full = measure_hot_counter(n, reps, sim::TraceMode::kFull,
                                      sim::ProfileMode::kOff);
    ObsRun prof = measure_hot_counter(n, reps, sim::TraceMode::kOff,
                                      sim::ProfileMode::kOn);
    ObsRun lat = measure_hot_counter(n, reps, sim::TraceMode::kOff,
                                     sim::ProfileMode::kOff,
                                     sim::LatencyMode::kOn);
    bool same = true;
    for (const ObsRun* m : {&metrics, &full, &prof, &lat}) {
      same = same && m->cycles == off.cycles && m->events == off.events;
    }
    if (!same) {
      std::fprintf(stderr,
                   "observability modes changed the simulated outcome!\n");
      return 1;
    }
    auto ratio = [&](const ObsRun& m) {
      return off.events_per_sec() > 0 ? m.events_per_sec() / off.events_per_sec()
                                      : 0.0;
    };
    log.add("observability_modes_n4",
            {{"n", double(n)},
             {"reps", double(reps)},
             {"sim_cycles", double(off.cycles)},
             {"off_events_per_sec", off.events_per_sec()},
             {"metrics_events_per_sec", metrics.events_per_sec()},
             {"full_events_per_sec", full.events_per_sec()},
             {"profile_events_per_sec", prof.events_per_sec()},
             {"latency_events_per_sec", lat.events_per_sec()},
             {"metrics_ratio", ratio(metrics)},
             {"full_ratio", ratio(full)},
             {"profile_ratio", ratio(prof)},
             {"latency_ratio", ratio(lat)},
             {"verified", (off.verified && prof.verified) ? 1.0 : 0.0}});
  }

  return bench::finish_metric_bench(opt, "micro", log);
}
