// Two-level hierarchy bench: the flat paper platform vs private L1s in
// front of banked shared L2s, per write policy. The L2 tier is where the
// paper's central tension moves: write-through traffic that used to cross
// the NoC to DRAM on every store now stops at the shared L2 bank (DRAM sees
// only dirty-line evictions), while MESI pays the extra hop on misses. The
// table reports simulated execution time, NoC traffic and the L2's own
// activity (fills, capacity recalls, dirty write-backs to DRAM) for the
// default 16 KB banks and for deliberately tiny 2 KB banks, where recalls
// dominate and inclusion back-invalidations eat into the L1s.
//
// Every reported field is simulated and deterministic, so CI holds the
// committed baseline (bench/baselines/BENCH_hierarchy.json) at exact
// tolerance; only wall_seconds is host-speed.

#include <cstdio>
#include <string>

#include "paper_sweep.hpp"

using namespace ccnoc;

namespace {

struct HierRun {
  core::RunResult r;
  std::uint64_t fills = 0;
  std::uint64_t recalls = 0;
  std::uint64_t recall_invals = 0;
  std::uint64_t recall_fetches = 0;
  std::uint64_t evictions_dirty = 0;
};

HierRun run_one(mem::Protocol p, unsigned cpus, unsigned l2_banks,
                unsigned l2_bytes) {
  core::SystemConfig cfg = core::SystemConfig::architecture1(cpus, p);
  if (l2_banks != 0) {
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = l2_banks;
    cfg.l2.size_bytes = l2_bytes;
  }
  core::System sys(cfg);
  auto app = bench::make_app("ocean");
  HierRun out;
  out.r = sys.run(*app);
  for (unsigned i = 0; i < l2_banks; ++i) {
    const std::string prefix = "l2bank" + std::to_string(i) + ".";
    auto& st = sys.simulator().stats();
    out.fills += st.counter_value(prefix + "fills");
    out.recalls += st.counter_value(prefix + "recalls");
    out.recall_invals += st.counter_value(prefix + "recall_invals");
    out.recall_fetches += st.counter_value(prefix + "recall_fetches");
    out.evictions_dirty += st.counter_value(prefix + "evictions_dirty");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  bench::MetricLog log;
  const unsigned cpus = 8;

  std::printf("=== Two-level hierarchy (Ocean, arch 1, n=%u) ===\n", cpus);
  std::printf("%7s %14s %12s %12s %8s %8s %10s\n", "proto", "config",
              "Mcycles", "NoC MB", "fills", "recalls", "dirty-evs");

  struct Config {
    const char* label;
    unsigned l2_banks;
    unsigned l2_bytes;
  };
  const Config configs[] = {
      {"flat", 0, 0},
      {"l2x2_16k", 2, 16384},
      {"l2x4_16k", 4, 16384},
      {"l2x2_2k", 2, 2048},  // capacity-starved: recalls on the hot path
  };

  for (mem::Protocol p :
       {mem::Protocol::kWti, mem::Protocol::kWbMesi, mem::Protocol::kWtu}) {
    for (const Config& c : configs) {
      HierRun h = run_one(p, cpus, c.l2_banks, c.l2_bytes);
      std::printf("%7s %14s %12.3f %12.3f %8llu %8llu %10llu%s\n",
                  mem::to_string(p), c.label, h.r.exec_megacycles(),
                  double(h.r.noc_bytes) / 1e6,
                  (unsigned long long)h.fills, (unsigned long long)h.recalls,
                  (unsigned long long)h.evictions_dirty,
                  h.r.verified ? "" : " [VERIFY FAILED]");
      log.add(std::string(mem::to_string(p)) + "_" + c.label,
              {{"l2_banks", double(c.l2_banks)},
               {"l2_bytes", double(c.l2_bytes)},
               {"cycles", double(h.r.exec_cycles)},
               {"noc_bytes", double(h.r.noc_bytes)},
               {"noc_packets", double(h.r.noc_packets)},
               {"l2_fills", double(h.fills)},
               {"l2_recalls", double(h.recalls)},
               {"l2_recall_invals", double(h.recall_invals)},
               {"l2_recall_fetches", double(h.recall_fetches)},
               {"l2_evictions_dirty", double(h.evictions_dirty)},
               {"verified", h.r.verified ? 1.0 : 0.0}});
    }
  }

  std::printf(
      "\n(Write-through traffic terminates at the shared L2: DRAM is touched\n"
      " only by dirty-line evictions, so WTI/WTU shed most of their memory-\n"
      " side NoC traffic, while MESI pays the extra tier on its miss path.)\n");
  return bench::finish_metric_bench(opt, "hierarchy", log);
}
