// Parallel-core throughput: the 64-CPU Ocean acceptance configuration run
// on the serial reference and on the conservative parallel engine at
// several domain counts (see EXPERIMENTS.md, "Parallel simulation" and
// "Parallel observability").
//
// Two things are measured per row:
//   * identity — every deterministic field (events, exec_cycles, noc_bytes,
//     noc_packets) must equal the serial row's, for any domain count; a
//     mismatch fails the bench immediately, baseline or not;
//   * throughput — events_per_sec and the speedup ratio over the serial
//     row, which are host-speed fields and only baseline-compared under
//     --perf-tolerance.
//
// The obs-* rows repeat the sweep with full tracing AND profiling on: the
// observers are parallel-native, so these rows must stay on the parallel
// engine, match the bare rows on every deterministic field, and produce
// trace/profile JSON byte-identical to the observed serial row (compared
// in-process, enforced on every invocation). Their events_per_sec lands in
// the same baseline record, so --perf-tolerance also guards the overhead
// of traced/profiled parallel runs.
//
// --parallel-domains is ignored here (the bench sweeps domain counts
// itself); --threads/--serial are irrelevant since each row is one run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/ocean.hpp"
#include "baseline_compare.hpp"
#include "bench_io.hpp"
#include "core/system.hpp"
#include "sim/profile.hpp"

using namespace ccnoc;

namespace {

struct Row {
  std::string label;
  core::RunResult r;
  double wall = 0.0;    ///< seconds
  std::string chrome;   ///< observed rows: full Chrome trace JSON
  std::string profile;  ///< observed rows: schema-v1 profile JSON
};

Row run_row(const bench::BenchOptions& opt, unsigned domains,
            bool observed = false) {
  core::SystemConfig cfg =
      core::SystemConfig::architecture1(64, mem::Protocol::kWbMesi);
  cfg.parallel_domains = domains;
  cfg.heartbeat_ms = opt.heartbeat_ms;
  cfg.heartbeat_json = opt.heartbeat_json;
  if (observed) {
    cfg.trace = sim::TraceMode::kFull;
    cfg.profile = sim::ProfileMode::kOn;
  }
  core::System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  const auto t0 = std::chrono::steady_clock::now();
  Row row;
  row.r = sys.run(w);
  row.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.label = domains == 0 ? "serial" : "domains=" + std::to_string(domains);
  if (observed) {
    row.label = "obs-" + row.label;
    row.chrome = sys.simulator().tracer().chrome_json();
    row.profile =
        sim::profile_json(sys.simulator().profiler().snapshot("bench"));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);

  std::vector<Row> rows;
  rows.push_back(run_row(opt, 0));
  for (unsigned domains : {2u, 4u, 8u, 16u})
    rows.push_back(run_row(opt, domains));
  const std::size_t first_obs = rows.size();
  rows.push_back(run_row(opt, 0, /*observed=*/true));
  for (unsigned domains : {4u, 16u}) rows.push_back(run_row(opt, domains, true));
  const Row& serial = rows.front();
  const Row& obs_serial = rows[first_obs];

  std::printf("=== Parallel core: 64-CPU Ocean (WB-MESI, arch 1) ===\n");
  std::printf("%-12s %9s %12s %12s %14s %8s\n", "engine", "domains", "events",
              "Mcycles", "events/sec", "speedup");
  bench::MetricLog log;
  bool identical = true;
  for (const Row& row : rows) {
    const double evps = row.wall > 0 ? double(row.r.events) / row.wall : 0.0;
    const double speedup = row.wall > 0 ? serial.wall / row.wall : 0.0;
    std::printf("%-12s %9u %12llu %12.3f %14.0f %7.2fx%s\n", row.label.c_str(),
                row.r.engine_domains,
                static_cast<unsigned long long>(row.r.events),
                row.r.exec_megacycles(), evps, speedup,
                row.r.verified ? "" : "  [UNVERIFIED]");
    // The determinism contract, enforced on every invocation: the parallel
    // engine may only be faster, never different — and the observers may
    // not perturb the simulation either.
    if (row.r.events != serial.r.events ||
        row.r.exec_cycles != serial.r.exec_cycles ||
        row.r.noc_bytes != serial.r.noc_bytes ||
        row.r.noc_packets != serial.r.noc_packets) {
      std::fprintf(stderr, "IDENTITY VIOLATION: %s differs from serial\n",
                   row.label.c_str());
      identical = false;
    }
    // Observed parallel rows must additionally merge to byte-identical
    // observer artifacts.
    if (!row.chrome.empty() && &row != &obs_serial &&
        (row.chrome != obs_serial.chrome || row.profile != obs_serial.profile)) {
      std::fprintf(stderr,
                   "OBSERVER MERGE VIOLATION: %s artifacts differ from %s\n",
                   row.label.c_str(), obs_serial.label.c_str());
      identical = false;
    }
    if (!row.chrome.empty() && row.label != "obs-serial" &&
        row.r.engine != "parallel") {
      std::fprintf(stderr, "%s fell back to the serial engine (%s)\n",
                   row.label.c_str(), row.r.engine_fallback.c_str());
      identical = false;
    }
    log.add(row.label, {{"engine_domains", double(row.r.engine_domains)},
                        {"events", double(row.r.events)},
                        {"exec_cycles", double(row.r.exec_cycles)},
                        {"noc_bytes", double(row.r.noc_bytes)},
                        {"noc_packets", double(row.r.noc_packets)},
                        {"events_per_sec", evps},
                        {"speedup_ratio", speedup}});
  }
  if (!identical) return 1;

  if (!opt.json_path.empty() && !log.write(opt.json_path, "parallel")) return 1;
  return bench::run_baseline_check(opt);
}
