// Parallel-core throughput: the 64-CPU Ocean acceptance configuration run
// on the serial reference and on the conservative parallel engine at
// several domain counts (see EXPERIMENTS.md, "Parallel simulation").
//
// Two things are measured per row:
//   * identity — every deterministic field (events, exec_cycles, noc_bytes,
//     noc_packets) must equal the serial row's, for any domain count; a
//     mismatch fails the bench immediately, baseline or not;
//   * throughput — events_per_sec and the speedup ratio over the serial
//     row, which are host-speed fields and only baseline-compared under
//     --perf-tolerance.
//
// --parallel-domains is ignored here (the bench sweeps domain counts
// itself); --threads/--serial are irrelevant since each row is one run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/ocean.hpp"
#include "baseline_compare.hpp"
#include "bench_io.hpp"
#include "core/system.hpp"

using namespace ccnoc;

namespace {

struct Row {
  std::string label;
  core::RunResult r;
  double wall = 0.0;  ///< seconds
};

Row run_row(unsigned domains) {
  core::SystemConfig cfg =
      core::SystemConfig::architecture1(64, mem::Protocol::kWbMesi);
  cfg.parallel_domains = domains;
  core::System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  const auto t0 = std::chrono::steady_clock::now();
  Row row;
  row.r = sys.run(w);
  row.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.label = domains == 0 ? "serial" : "domains=" + std::to_string(domains);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);

  std::vector<Row> rows;
  rows.push_back(run_row(0));
  for (unsigned domains : {2u, 4u, 8u, 16u}) rows.push_back(run_row(domains));
  const Row& serial = rows.front();

  std::printf("=== Parallel core: 64-CPU Ocean (WB-MESI, arch 1) ===\n");
  std::printf("%-12s %9s %12s %12s %14s %8s\n", "engine", "domains", "events",
              "Mcycles", "events/sec", "speedup");
  bench::MetricLog log;
  bool identical = true;
  for (const Row& row : rows) {
    const double evps = row.wall > 0 ? double(row.r.events) / row.wall : 0.0;
    const double speedup = row.wall > 0 ? serial.wall / row.wall : 0.0;
    std::printf("%-12s %9u %12llu %12.3f %14.0f %7.2fx%s\n", row.label.c_str(),
                row.r.engine_domains,
                static_cast<unsigned long long>(row.r.events),
                row.r.exec_megacycles(), evps, speedup,
                row.r.verified ? "" : "  [UNVERIFIED]");
    // The determinism contract, enforced on every invocation: the parallel
    // engine may only be faster, never different.
    if (row.r.events != serial.r.events ||
        row.r.exec_cycles != serial.r.exec_cycles ||
        row.r.noc_bytes != serial.r.noc_bytes ||
        row.r.noc_packets != serial.r.noc_packets) {
      std::fprintf(stderr, "IDENTITY VIOLATION: %s differs from serial\n",
                   row.label.c_str());
      identical = false;
    }
    log.add(row.label, {{"engine_domains", double(row.r.engine_domains)},
                        {"events", double(row.r.events)},
                        {"exec_cycles", double(row.r.exec_cycles)},
                        {"noc_bytes", double(row.r.noc_bytes)},
                        {"noc_packets", double(row.r.noc_packets)},
                        {"events_per_sec", evps},
                        {"speedup_ratio", speedup}});
  }
  if (!identical) return 1;

  if (!opt.json_path.empty() && !log.write(opt.json_path, "parallel")) return 1;
  return bench::run_baseline_check(opt);
}
