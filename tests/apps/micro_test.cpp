#include "apps/micro.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

/// The microworkloads' functional oracles, swept across protocol ×
/// architecture × processor count — the platform-level coherence and
/// sequential-consistency property suite.

namespace ccnoc::apps {
namespace {

struct Param {
  mem::Protocol proto;
  unsigned arch;
  unsigned cpus;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(info.param.proto == mem::Protocol::kWti ? "WTI" : "MESI") +
         "_arch" + std::to_string(info.param.arch) + "_n" +
         std::to_string(info.param.cpus);
}

class MicroSweep : public ::testing::TestWithParam<Param> {};

TEST_P(MicroSweep, HotCounterExact) {
  HotCounter w(60);
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST_P(MicroSweep, ProducerConsumerSeesNoStaleData) {
  ProducerConsumer w(25, 6);
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST_P(MicroSweep, UniformRandomCompletes) {
  UniformRandom::Config c;
  c.ops_per_thread = 400;
  UniformRandom w(c);
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.noc_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, MicroSweep,
    ::testing::Values(Param{mem::Protocol::kWti, 1, 2}, Param{mem::Protocol::kWti, 1, 4},
                      Param{mem::Protocol::kWti, 2, 4}, Param{mem::Protocol::kWti, 2, 8},
                      Param{mem::Protocol::kWbMesi, 1, 2},
                      Param{mem::Protocol::kWbMesi, 1, 4},
                      Param{mem::Protocol::kWbMesi, 2, 4},
                      Param{mem::Protocol::kWbMesi, 2, 8}),
    param_name);

TEST(PingPongTest, BlockBouncesBetweenTwoCaches) {
  for (mem::Protocol p : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
    PingPong w(40);
    auto r = core::run_paper_config(2, p, 2, w);
    EXPECT_TRUE(r.verified) << to_string(p);
  }
}

TEST(HotCounterTest, SingleThreadDegenerateCase) {
  HotCounter w(100);
  auto r = core::run_paper_config(2, mem::Protocol::kWbMesi, 1, w);
  EXPECT_TRUE(r.verified);
}

TEST(MicroWorkloads, TrafficScalesWithContention) {
  // More threads on one counter → more coherence traffic per increment.
  HotCounter w2(50), w8(50);
  auto r2 = core::run_paper_config(2, mem::Protocol::kWbMesi, 2, w2);
  auto r8 = core::run_paper_config(2, mem::Protocol::kWbMesi, 8, w8);
  ASSERT_TRUE(r2.verified);
  ASSERT_TRUE(r8.verified);
  EXPECT_GT(r8.noc_bytes, r2.noc_bytes);
}

}  // namespace
}  // namespace ccnoc::apps
