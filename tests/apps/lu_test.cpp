#include "apps/lu.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "snoop/system.hpp"

namespace ccnoc::apps {
namespace {

Lu::Config small() {
  Lu::Config c;
  c.matrix_dim = 16;
  c.block_dim = 4;
  c.compute_per_flop = 2;
  return c;
}

struct Param {
  mem::Protocol proto;
  unsigned arch;
  unsigned cpus;
};

class LuSweep : public ::testing::TestWithParam<Param> {};

TEST_P(LuSweep, FactorizationBitExact) {
  Lu w(small());
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, LuSweep,
    ::testing::Values(Param{mem::Protocol::kWti, 1, 2}, Param{mem::Protocol::kWti, 2, 4},
                      Param{mem::Protocol::kWbMesi, 1, 2},
                      Param{mem::Protocol::kWbMesi, 2, 4},
                      Param{mem::Protocol::kWtu, 2, 4},
                      Param{mem::Protocol::kWbMesi, 2, 8}),
    [](const ::testing::TestParamInfo<Param>& ti) {
      std::string p = to_string(ti.param.proto);
      if (p == "WB-MESI") p = "MESI";
      return p + "_arch" + std::to_string(ti.param.arch) + "_n" +
             std::to_string(ti.param.cpus);
    });

TEST(LuTest, SingleThreadMatchesGolden) {
  Lu w(small());
  auto r = core::run_paper_config(2, mem::Protocol::kWbMesi, 1, w);
  EXPECT_TRUE(r.verified);
}

TEST(LuTest, LargerMatrixStillExact) {
  Lu::Config c;
  c.matrix_dim = 24;
  c.block_dim = 4;
  c.compute_per_flop = 1;
  Lu w(c);
  auto r = core::run_paper_config(2, mem::Protocol::kWti, 4, w);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(w.num_blocks(), 6u);
}

TEST(LuTest, RunsOnTheSnoopingBusToo) {
  for (snoop::SnoopProtocol p : {snoop::SnoopProtocol::kWti, snoop::SnoopProtocol::kMesi}) {
    snoop::SnoopSystemConfig cfg;
    cfg.num_cpus = 4;
    cfg.protocol = p;
    snoop::SnoopSystem sys(cfg);
    Lu w(small());
    EXPECT_TRUE(sys.run(w).verified) << to_string(p);
  }
}

TEST(LuTest, RejectsMismatchedBlocking) {
  Lu::Config c;
  c.matrix_dim = 10;
  c.block_dim = 4;
  EXPECT_THROW(Lu w(c), std::logic_error);
}

}  // namespace
}  // namespace ccnoc::apps
