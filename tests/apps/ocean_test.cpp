#include "apps/ocean.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccnoc::apps {
namespace {

Ocean::Config small() {
  Ocean::Config c;
  c.rows_per_thread = 2;
  c.iterations = 2;
  c.compute_per_cell = 4;
  return c;
}

struct Param {
  mem::Protocol proto;
  unsigned arch;
  unsigned cpus;
};

class OceanSweep : public ::testing::TestWithParam<Param> {};

TEST_P(OceanSweep, BitExactAgainstGoldenReplay) {
  Ocean w(small());
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, OceanSweep,
    ::testing::Values(Param{mem::Protocol::kWti, 1, 2}, Param{mem::Protocol::kWti, 2, 4},
                      Param{mem::Protocol::kWbMesi, 1, 2},
                      Param{mem::Protocol::kWbMesi, 2, 4},
                      Param{mem::Protocol::kWti, 1, 8},
                      Param{mem::Protocol::kWbMesi, 2, 8}),
    [](const ::testing::TestParamInfo<Param>& ti) {
      return std::string(ti.param.proto == mem::Protocol::kWti ? "WTI" : "MESI") +
             "_arch" + std::to_string(ti.param.arch) + "_n" +
             std::to_string(ti.param.cpus);
    });

TEST(OceanTest, GridDimensionFollowsThreadCount) {
  Ocean::Config c;
  c.rows_per_thread = 4;
  Ocean w(c);
  core::SystemConfig cfg = core::SystemConfig::architecture2(4, mem::Protocol::kWbMesi);
  core::System sys(cfg);
  sys.run(w);
  EXPECT_EQ(w.dim(), 18u);  // 4*4 + 2
}

TEST(OceanTest, SingleThreadMatchesGolden) {
  Ocean w(small());
  auto r = core::run_paper_config(2, mem::Protocol::kWbMesi, 1, w);
  EXPECT_TRUE(r.verified);
}

TEST(OceanTest, MoreIterationsMoreWork) {
  Ocean::Config c1 = small(), c3 = small();
  c3.iterations = 4;
  Ocean w1(c1), w3(c3);
  auto r1 = core::run_paper_config(2, mem::Protocol::kWbMesi, 4, w1);
  auto r3 = core::run_paper_config(2, mem::Protocol::kWbMesi, 4, w3);
  ASSERT_TRUE(r1.verified);
  ASSERT_TRUE(r3.verified);
  EXPECT_GT(r3.exec_cycles, r1.exec_cycles);
  EXPECT_GT(r3.instructions, r1.instructions);
}

TEST(OceanTest, ResultIndependentOfProtocol) {
  // Both protocols must compute the same grid (the golden check already
  // implies it; this asserts it directly on a sample of cells).
  Ocean w1(small()), w2(small());
  core::System s1(core::SystemConfig::architecture2(4, mem::Protocol::kWti));
  core::System s2(core::SystemConfig::architecture2(4, mem::Protocol::kWbMesi));
  ASSERT_TRUE(s1.run(w1).verified);
  ASSERT_TRUE(s2.run(w2).verified);
}

}  // namespace
}  // namespace ccnoc::apps
