#include "apps/water.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccnoc::apps {
namespace {

Water::Config small() {
  Water::Config c;
  c.molecules = 12;
  c.steps = 2;
  c.force_compute = 4;
  return c;
}

struct Param {
  mem::Protocol proto;
  unsigned arch;
  unsigned cpus;
};

class WaterSweep : public ::testing::TestWithParam<Param> {};

TEST_P(WaterSweep, BitExactAgainstGoldenReplay) {
  Water w(small());
  auto r = core::run_paper_config(GetParam().arch, GetParam().proto, GetParam().cpus, w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, WaterSweep,
    ::testing::Values(Param{mem::Protocol::kWti, 1, 2}, Param{mem::Protocol::kWti, 2, 4},
                      Param{mem::Protocol::kWbMesi, 1, 2},
                      Param{mem::Protocol::kWbMesi, 2, 4},
                      Param{mem::Protocol::kWti, 2, 8},
                      Param{mem::Protocol::kWbMesi, 1, 8}),
    [](const ::testing::TestParamInfo<Param>& ti) {
      return std::string(ti.param.proto == mem::Protocol::kWti ? "WTI" : "MESI") +
             "_arch" + std::to_string(ti.param.arch) + "_n" +
             std::to_string(ti.param.cpus);
    });

TEST(WaterTest, PaperMoleculeCountRule) {
  Water w{Water::Config{}};
  core::SystemConfig cfg = core::SystemConfig::architecture2(4, mem::Protocol::kWbMesi);
  core::System sys(cfg);
  ASSERT_TRUE(sys.run(w).verified);
  EXPECT_EQ(w.molecule_count(), 27u);  // ≤16 CPUs → 27 molecules

  Water w2{Water::Config{}};
  core::SystemConfig cfg2 = core::SystemConfig::architecture2(32, mem::Protocol::kWbMesi);
  cfg2.kernel.sched.tick_period = 50000;
  core::System sys2(cfg2);
  ASSERT_TRUE(sys2.run(w2).verified);
  EXPECT_EQ(w2.molecule_count(), 64u);  // >16 CPUs → 64 molecules
}

TEST(WaterTest, FixedPointForcesCommute) {
  // The same problem partitioned differently (2 vs 8 threads) must land on
  // bit-identical positions: fixed-point accumulation is order-free.
  Water w2(small()), w8(small());
  ASSERT_TRUE(core::run_paper_config(2, mem::Protocol::kWbMesi, 2, w2).verified);
  ASSERT_TRUE(core::run_paper_config(2, mem::Protocol::kWbMesi, 8, w8).verified);
  // Both verified against the same golden → identical results.
}

TEST(WaterTest, PairForceIsAntisymmetricByConstruction) {
  double a[3] = {0.0, 0.0, 0.0};
  double b[3] = {1.0, 2.0, 3.0};
  std::int64_t fab[3], fba[3];
  Water::pair_force(a, b, fab);
  Water::pair_force(b, a, fba);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(fab[i], -fba[i]);
}

TEST(WaterTest, LockStripingHandlesManyMolecules) {
  Water::Config c = small();
  c.molecules = 40;
  c.num_locks = 4;  // heavy striping contention
  Water w(c);
  auto r = core::run_paper_config(1, mem::Protocol::kWti, 4, w);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace ccnoc::apps
