#include "apps/trace.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccnoc::apps {
namespace {

TEST(TraceParse, AcceptsTheDocumentedFormat) {
  const char* text = R"(
# two threads handing a value through memory
0 S 100 4 42
0 B
1 B
1 L 100 4
1 S 200 4 7
0 C 25
)";
  TracePlayer p = TracePlayer::parse(text, 2);
  EXPECT_EQ(p.records(0), 3u);
  EXPECT_EQ(p.records(1), 3u);
}

TEST(TraceParse, RejectsBadInput) {
  EXPECT_THROW(TracePlayer::parse("5 L 100 4\n", 2), std::logic_error);  // bad tid
  EXPECT_THROW(TracePlayer::parse("0 X 100 4\n", 2), std::logic_error);  // bad op
  EXPECT_THROW(TracePlayer::parse("0 S 100 4\n", 2), std::logic_error);  // no value
}

TEST(TracePlayback, LastWriterOracleHolds) {
  const char* text = R"(
0 S 0 4 1
0 S 0 4 2
0 S 40 8 123456789
1 S 80 4 5
1 L 0 4
)";
  for (mem::Protocol proto : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
    TracePlayer p = TracePlayer::parse(text, 2);
    core::System sys(core::SystemConfig::architecture2(2, proto));
    auto r = sys.run(p, 2);
    EXPECT_TRUE(r.completed) << to_string(proto);
    EXPECT_TRUE(r.verified) << to_string(proto);
  }
}

TEST(TracePlayback, BarriersSynchronizeThreads) {
  // Thread 1 reads what thread 0 wrote before the barrier; since word 0x100
  // has a single writer, the oracle pins its final value.
  const char* text = R"(
0 S 100 4 77
0 B
1 B
1 L 100 4
)";
  TracePlayer p = TracePlayer::parse(text, 2);
  core::System sys(core::SystemConfig::architecture1(2, mem::Protocol::kWti));
  auto r = sys.run(p, 2);
  EXPECT_TRUE(r.verified);
}

struct Param {
  mem::Protocol proto;
  unsigned arch;
  unsigned cpus;
};

class SyntheticTraceSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SyntheticTraceSweep, RandomTraceVerifies) {
  TracePlayer p = TracePlayer::synthetic(GetParam().cpus, /*ops=*/400,
                                         /*region_words=*/512,
                                         /*store_fraction=*/0.4, /*seed=*/11);
  core::SystemConfig cfg = GetParam().arch == 1
                               ? core::SystemConfig::architecture1(GetParam().cpus,
                                                                   GetParam().proto)
                               : core::SystemConfig::architecture2(GetParam().cpus,
                                                                   GetParam().proto);
  core::System sys(cfg);
  auto r = sys.run(p, GetParam().cpus);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.noc_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, SyntheticTraceSweep,
    ::testing::Values(Param{mem::Protocol::kWti, 1, 4}, Param{mem::Protocol::kWti, 2, 8},
                      Param{mem::Protocol::kWbMesi, 1, 4},
                      Param{mem::Protocol::kWbMesi, 2, 8},
                      Param{mem::Protocol::kWtu, 2, 4}),
    [](const ::testing::TestParamInfo<Param>& ti) {
      return std::string(to_string(ti.param.proto) == std::string("WB-MESI")
                             ? "MESI"
                             : to_string(ti.param.proto)) +
             "_arch" + std::to_string(ti.param.arch) + "_n" +
             std::to_string(ti.param.cpus);
    });

TEST(SyntheticTrace, SameSeedSameTrace) {
  TracePlayer a = TracePlayer::synthetic(4, 100, 256, 0.3, 5);
  TracePlayer b = TracePlayer::synthetic(4, 100, 256, 0.3, 5);
  for (unsigned t = 0; t < 4; ++t) EXPECT_EQ(a.records(t), b.records(t));
}

}  // namespace
}  // namespace ccnoc::apps
