#pragma once

#include <utility>
#include <vector>

#include "noc/network.hpp"
#include "sim/simulator.hpp"

/// Shared helpers for the unit tests.

namespace ccnoc::test {

/// NoC endpoint that records every delivered packet with its arrival cycle.
class CapturingEndpoint final : public noc::Endpoint {
 public:
  explicit CapturingEndpoint(sim::Simulator& s) : sim_(s) {}

  void deliver(const noc::Packet& pkt) override {
    received.emplace_back(sim_.now(), pkt);
  }

  [[nodiscard]] std::size_t count() const { return received.size(); }
  [[nodiscard]] sim::Cycle arrival(std::size_t i) const { return received.at(i).first; }
  [[nodiscard]] const noc::Packet& packet(std::size_t i) const {
    return received.at(i).second;
  }

  std::vector<std::pair<sim::Cycle, noc::Packet>> received;

 private:
  sim::Simulator& sim_;
};

/// A small request message of the given type.
inline noc::Message make_msg(noc::MsgType t, sim::Addr addr,
                             std::uint8_t data_len = 0) {
  noc::Message m;
  m.type = t;
  m.addr = addr;
  m.data_len = data_len;
  return m;
}

}  // namespace ccnoc::test
