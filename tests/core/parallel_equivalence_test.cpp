#include <gtest/gtest.h>

#include <string>

#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "core/fuzz.hpp"
#include "core/system.hpp"
#include "sim/profile.hpp"

/// The conservative parallel core's contract (EXPERIMENTS.md, "Parallel
/// simulation"): for any domain count and worker count, every statistic and
/// observer output is byte-identical to the serial reference. These tests
/// pin that contract end-to-end on full platform runs — workloads, seeds
/// and partitions chosen to cross domain boundaries heavily — plus the
/// sequenced-fallback and degenerate-partition edges.

namespace ccnoc::core {
namespace {

struct Capture {
  RunResult r;
  std::string stats;     ///< full StatsRegistry::to_string() dump
  unsigned coverage = 0; ///< protocol transition-coverage population
};

/// Every field of RunResult except engine_domains must match; engine_domains
/// is asserted separately so a test cannot pass because the parallel path
/// silently never ran.
void expect_identical(const Capture& a, const Capture& b) {
  EXPECT_EQ(a.r.completed, b.r.completed);
  EXPECT_EQ(a.r.verified, b.r.verified);
  EXPECT_EQ(a.r.exec_cycles, b.r.exec_cycles);
  EXPECT_EQ(a.r.noc_bytes, b.r.noc_bytes);
  EXPECT_EQ(a.r.noc_packets, b.r.noc_packets);
  EXPECT_EQ(a.r.instructions, b.r.instructions);
  EXPECT_EQ(a.r.d_stall_cycles, b.r.d_stall_cycles);
  EXPECT_EQ(a.r.i_stall_cycles, b.r.i_stall_cycles);
  EXPECT_EQ(a.r.events, b.r.events);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.stats, b.stats);  // byte-for-byte, every counter and sample
}

Capture run_ocean(unsigned cpus, std::uint64_t seed, unsigned domains,
                  unsigned workers = 0, unsigned rows = 2, unsigned iters = 2) {
  SystemConfig cfg = SystemConfig::architecture1(cpus, mem::Protocol::kWbMesi);
  cfg.seed = seed;
  cfg.kernel.seed = seed;
  cfg.parallel_domains = domains;
  cfg.parallel_workers = workers;
  System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = rows;
  oc.iterations = iters;
  apps::Ocean w(oc);
  Capture c;
  c.r = sys.run(w);
  c.stats = sys.simulator().stats().to_string();
  c.coverage = sys.simulator().proto_coverage().count();
  return c;
}

Capture run_water(unsigned cpus, std::uint64_t seed, unsigned domains) {
  SystemConfig cfg = SystemConfig::architecture2(cpus, mem::Protocol::kWbMesi);
  cfg.seed = seed;
  cfg.kernel.seed = seed;
  cfg.parallel_domains = domains;
  System sys(cfg);
  apps::Water::Config wc;
  wc.steps = 1;
  apps::Water w(wc);
  Capture c;
  c.r = sys.run(w);
  c.stats = sys.simulator().stats().to_string();
  c.coverage = sys.simulator().proto_coverage().count();
  return c;
}

TEST(ParallelEquivalence, OceanMatchesSerialAcrossDomainCounts) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const Capture serial = run_ocean(4, seed, 0);
    ASSERT_TRUE(serial.r.verified) << "seed " << seed;
    EXPECT_EQ(serial.r.engine_domains, 1u);
    for (unsigned domains : {2u, 4u, 6u}) {
      const Capture par = run_ocean(4, seed, domains);
      EXPECT_EQ(par.r.engine_domains, domains)
          << "parallel path did not run (seed " << seed << ")";
      expect_identical(serial, par);
    }
  }
}

TEST(ParallelEquivalence, DomainCountIsClampedToTheNodeCount) {
  // architecture1(4) has 4 caches + 2 banks = 6 NoC nodes; asking for 7
  // domains must clamp to 6, not leave empty domains (or worse, crash).
  const Capture serial = run_ocean(4, 3, 0);
  const Capture par = run_ocean(4, 3, 7);
  EXPECT_EQ(par.r.engine_domains, 6u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, ExplicitWorkerThreadsDoNotChangeResults) {
  // Force a real thread pool even on a small host: workers is purely a
  // throughput knob, so the schedule must not move by a single cycle.
  const Capture serial = run_ocean(4, 11, 0);
  const Capture par = run_ocean(4, 11, 4, /*workers=*/4);
  EXPECT_EQ(par.r.engine_domains, 4u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, SingleDomainPartitionDegeneratesToSerial) {
  // parallel_domains = 1 is, by definition, the serial core.
  const Capture serial = run_ocean(4, 5, 0);
  const Capture one = run_ocean(4, 5, 1);
  EXPECT_EQ(one.r.engine_domains, 1u);
  expect_identical(serial, one);
}

TEST(ParallelEquivalence, WaterOnDistributedArchMatchesSerial) {
  const Capture serial = run_water(16, 9, 0);
  ASSERT_TRUE(serial.r.verified);
  const Capture par = run_water(16, 9, 4);
  EXPECT_EQ(par.r.engine_domains, 4u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, LargePlatformManyDomainsMatchesSerial) {
  // The acceptance configuration: 64 CPUs, kept small per-thread so the
  // unit suite stays fast. 16 domains puts four nodes in each.
  const Capture serial = run_ocean(64, 2, 0, 0, /*rows=*/1, /*iters=*/1);
  ASSERT_TRUE(serial.r.verified);
  const Capture par = run_ocean(64, 2, 16, 0, /*rows=*/1, /*iters=*/1);
  EXPECT_EQ(par.r.engine_domains, 16u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, TracedRunsFallBackSequencedWithIdenticalOutput) {
  // Tracing and profiling are sequenced observers: a domain-partitioned
  // platform must fall back to the serial engine (engine_domains == 1) and
  // produce byte-identical trace and profile JSON.
  auto traced = [](unsigned domains) {
    SystemConfig cfg = SystemConfig::architecture1(4, mem::Protocol::kWbMesi);
    cfg.seed = 13;
    cfg.kernel.seed = 13;
    cfg.trace = sim::TraceMode::kFull;
    cfg.profile = sim::ProfileMode::kOn;
    cfg.parallel_domains = domains;
    System sys(cfg);
    apps::Ocean::Config oc;
    oc.rows_per_thread = 2;
    oc.iterations = 2;
    apps::Ocean w(oc);
    RunResult r = sys.run(w);
    return std::tuple<unsigned, std::string, std::string>(
        r.engine_domains, sys.simulator().tracer().chrome_json(),
        sim::profile_json(sys.simulator().profiler().snapshot("eq")));
  };
  const auto [dom_serial, trace_serial, prof_serial] = traced(0);
  const auto [dom_par, trace_par, prof_par] = traced(4);
  EXPECT_EQ(dom_serial, 1u);
  EXPECT_EQ(dom_par, 1u);  // sequenced fallback engaged
  EXPECT_EQ(trace_serial, trace_par);
  EXPECT_EQ(prof_serial, prof_par);
}

TEST(ParallelEquivalence, CheckedFuzzRunsAreUnchangedByPartitioning) {
  // Fuzz runs are always coherence-checked and therefore sequenced, but the
  // partition still reshapes construction (coverage shards, seeding
  // eligibility) — none of which may change a single outcome field.
  FuzzOptions opt;
  opt.seed = 21;
  opt.ops = 120;
  const FuzzOutcome serial = run_fuzz(opt);
  opt.parallel_domains = 4;
  const FuzzOutcome par = run_fuzz(opt);
  EXPECT_TRUE(serial.passed());
  EXPECT_EQ(serial.passed(), par.passed());
  EXPECT_EQ(serial.cycles, par.cycles);
  EXPECT_EQ(serial.loads_checked, par.loads_checked);
  EXPECT_EQ(serial.violations, par.violations);
  EXPECT_EQ(serial.exercised.count(), par.exercised.count());
}

TEST(ParallelEquivalence, NonGmnNetworkRejectsDomainPartitioning) {
  SystemConfig cfg = SystemConfig::architecture1(4, mem::Protocol::kWbMesi);
  cfg.network = NetworkKind::kMesh;
  cfg.parallel_domains = 4;
  EXPECT_THROW(System sys(cfg), std::logic_error);
}

}  // namespace
}  // namespace ccnoc::core
