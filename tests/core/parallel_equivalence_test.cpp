#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "core/fuzz.hpp"
#include "core/system.hpp"
#include "sim/jsonv.hpp"
#include "sim/latency.hpp"
#include "sim/profile.hpp"

/// The conservative parallel core's contract (EXPERIMENTS.md, "Parallel
/// simulation" and "Parallel observability"): for any domain count and
/// worker count, every statistic and every observer artifact — trace JSON,
/// run report, profile JSON, HTML report, checker verdict — is
/// byte-identical to the serial reference. These tests pin that contract
/// end-to-end on full platform runs — workloads, seeds and partitions
/// chosen to cross domain boundaries heavily — plus the remaining
/// serial-fallback and degenerate-partition edges.

namespace ccnoc::core {
namespace {

struct Capture {
  RunResult r;
  std::string stats;     ///< full StatsRegistry::to_string() dump
  unsigned coverage = 0; ///< protocol transition-coverage population
};

/// Every field of RunResult except engine_domains must match; engine_domains
/// is asserted separately so a test cannot pass because the parallel path
/// silently never ran.
void expect_identical(const Capture& a, const Capture& b) {
  EXPECT_EQ(a.r.completed, b.r.completed);
  EXPECT_EQ(a.r.verified, b.r.verified);
  EXPECT_EQ(a.r.exec_cycles, b.r.exec_cycles);
  EXPECT_EQ(a.r.noc_bytes, b.r.noc_bytes);
  EXPECT_EQ(a.r.noc_packets, b.r.noc_packets);
  EXPECT_EQ(a.r.instructions, b.r.instructions);
  EXPECT_EQ(a.r.d_stall_cycles, b.r.d_stall_cycles);
  EXPECT_EQ(a.r.i_stall_cycles, b.r.i_stall_cycles);
  EXPECT_EQ(a.r.events, b.r.events);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.stats, b.stats);  // byte-for-byte, every counter and sample
}

Capture run_ocean(unsigned cpus, std::uint64_t seed, unsigned domains,
                  unsigned workers = 0, unsigned rows = 2, unsigned iters = 2,
                  unsigned l2_banks = 0, mem::Protocol proto = mem::Protocol::kWbMesi) {
  SystemConfig cfg = SystemConfig::architecture1(cpus, proto);
  cfg.seed = seed;
  cfg.kernel.seed = seed;
  cfg.parallel_domains = domains;
  cfg.parallel_workers = workers;
  if (l2_banks != 0) {
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = l2_banks;
    cfg.l2.size_bytes = 512;  // tiny: domain boundaries meet recalls
  }
  System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = rows;
  oc.iterations = iters;
  apps::Ocean w(oc);
  Capture c;
  c.r = sys.run(w);
  c.stats = sys.simulator().stats().to_string();
  c.coverage = sys.simulator().proto_coverage().count();
  return c;
}

Capture run_water(unsigned cpus, std::uint64_t seed, unsigned domains) {
  SystemConfig cfg = SystemConfig::architecture2(cpus, mem::Protocol::kWbMesi);
  cfg.seed = seed;
  cfg.kernel.seed = seed;
  cfg.parallel_domains = domains;
  System sys(cfg);
  apps::Water::Config wc;
  wc.steps = 1;
  apps::Water w(wc);
  Capture c;
  c.r = sys.run(w);
  c.stats = sys.simulator().stats().to_string();
  c.coverage = sys.simulator().proto_coverage().count();
  return c;
}

TEST(ParallelEquivalence, OceanMatchesSerialAcrossDomainCounts) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const Capture serial = run_ocean(4, seed, 0);
    ASSERT_TRUE(serial.r.verified) << "seed " << seed;
    EXPECT_EQ(serial.r.engine_domains, 1u);
    for (unsigned domains : {2u, 4u, 6u}) {
      const Capture par = run_ocean(4, seed, domains);
      EXPECT_EQ(par.r.engine_domains, domains)
          << "parallel path did not run (seed " << seed << ")";
      expect_identical(serial, par);
    }
  }
}

TEST(ParallelEquivalence, DomainCountIsClampedToTheNodeCount) {
  // architecture1(4) has 4 caches + 2 banks = 6 NoC nodes; asking for 7
  // domains must clamp to 6, not leave empty domains (or worse, crash).
  const Capture serial = run_ocean(4, 3, 0);
  const Capture par = run_ocean(4, 3, 7);
  EXPECT_EQ(par.r.engine_domains, 6u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, ExplicitWorkerThreadsDoNotChangeResults) {
  // Force a real thread pool even on a small host: workers is purely a
  // throughput knob, so the schedule must not move by a single cycle.
  const Capture serial = run_ocean(4, 11, 0);
  const Capture par = run_ocean(4, 11, 4, /*workers=*/4);
  EXPECT_EQ(par.r.engine_domains, 4u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, SingleDomainPartitionDegeneratesToSerial) {
  // parallel_domains = 1 is, by definition, the serial core.
  const Capture serial = run_ocean(4, 5, 0);
  const Capture one = run_ocean(4, 5, 1);
  EXPECT_EQ(one.r.engine_domains, 1u);
  expect_identical(serial, one);
}

TEST(ParallelEquivalence, WaterOnDistributedArchMatchesSerial) {
  const Capture serial = run_water(16, 9, 0);
  ASSERT_TRUE(serial.r.verified);
  const Capture par = run_water(16, 9, 4);
  EXPECT_EQ(par.r.engine_domains, 4u);
  expect_identical(serial, par);
}

TEST(ParallelEquivalence, LargePlatformManyDomainsMatchesSerial) {
  // The acceptance configuration: 64 CPUs, kept small per-thread so the
  // unit suite stays fast. 16 domains puts four nodes in each.
  const Capture serial = run_ocean(64, 2, 0, 0, /*rows=*/1, /*iters=*/1);
  ASSERT_TRUE(serial.r.verified);
  const Capture par = run_ocean(64, 2, 16, 0, /*rows=*/1, /*iters=*/1);
  EXPECT_EQ(par.r.engine_domains, 16u);
  expect_identical(serial, par);
}

// --- two-level hierarchy --------------------------------------------------
//
// The banked L2 tier adds NoC nodes (each L2 bank is its own endpoint) and
// new cross-node flows — L1->L2 requests, L2->memory fills and eviction
// write-backs, recall invalidations cutting back across domains. Domain
// partitioning must not move any of it by a cycle: a two-level parallel run
// is held byte-identical to the two-level SERIAL reference (the flat-vs-
// two-level image equivalence is hierarchy_test.cpp's job).

TEST(ParallelEquivalence, TwoLevelHierarchyMatchesSerialAcrossDomainCounts) {
  for (mem::Protocol proto :
       {mem::Protocol::kWti, mem::Protocol::kWbMesi, mem::Protocol::kWtu}) {
    const Capture serial =
        run_ocean(4, 7, 0, 0, 2, 2, /*l2_banks=*/2, proto);
    ASSERT_TRUE(serial.r.verified) << mem::to_string(proto);
    EXPECT_EQ(serial.r.engine_domains, 1u);
    for (unsigned domains : {2u, 4u}) {
      const Capture par =
          run_ocean(4, 7, domains, 0, 2, 2, /*l2_banks=*/2, proto);
      EXPECT_EQ(par.r.engine_domains, domains)
          << "parallel path did not run (" << mem::to_string(proto) << ")";
      expect_identical(serial, par);
    }
  }
}

TEST(ParallelEquivalence, TwoLevelCheckedFuzzMatchesSerial) {
  // A coherence-checked two-level fuzz run through the parallel engine:
  // the probe recorder now also streams the L2 banks' recall teardowns,
  // and the replayed verdict must not depend on the partition.
  FuzzOptions opt;
  opt.seed = 19;
  opt.ops = 120;
  opt.protocol = mem::Protocol::kWbMesi;
  opt.l2_banks = 2;
  const FuzzOutcome serial = run_fuzz(opt);
  ASSERT_TRUE(serial.passed()) << serial.summary();
  EXPECT_EQ(serial.engine, "serial");
  opt.parallel_domains = 4;
  const FuzzOutcome par = run_fuzz(opt);
  EXPECT_EQ(par.engine, "parallel");
  EXPECT_TRUE(par.passed()) << par.summary();
  EXPECT_EQ(serial.cycles, par.cycles);
  EXPECT_EQ(serial.loads_checked, par.loads_checked);
  EXPECT_EQ(serial.exercised.count(), par.exercised.count());
}

// --- observer-on equivalence ---------------------------------------------
//
// The observers are parallel-native: tracer, profiler and coherence probe
// record into per-domain shards stamped with (cycle, node, seq) order keys
// and merge deterministically after the run. Every observer artifact —
// Chrome trace JSON, schema-v1 run report, profile JSON, the HTML report
// built from it — must be BYTE-identical between the serial and parallel
// engines at any domain and worker count. Only the report's "run" context
// object differs by design (it names the engine), so it is stripped before
// the byte compare and asserted separately.

struct ObservedCapture {
  RunResult r;
  std::string stats;
  std::string chrome;   ///< full Chrome/Perfetto trace JSON
  std::string report;   ///< schema-v1 run report, "run" object stripped
  std::string profile;  ///< schema-v1 profile JSON
  std::string html;     ///< HTML report (heatmap inputs and all)
  std::string latency;  ///< schema-v1 latency.json (empty when not enabled)
};

std::string strip_run_object(std::string j) {
  const std::size_t at = j.find(",\"run\":{");
  EXPECT_NE(at, std::string::npos);
  const std::size_t end = j.find('}', at);
  j.erase(at, end - at + 1);
  return j;
}

ObservedCapture run_observed(unsigned cpus, std::uint64_t seed, unsigned domains,
                             unsigned workers = 0, unsigned rows = 1,
                             unsigned iters = 1, bool latency = false,
                             unsigned l2_banks = 0) {
  SystemConfig cfg = SystemConfig::architecture1(cpus, mem::Protocol::kWbMesi);
  cfg.seed = seed;
  cfg.kernel.seed = seed;
  cfg.trace = sim::TraceMode::kFull;
  cfg.profile = sim::ProfileMode::kOn;
  if (latency) cfg.latency = sim::LatencyMode::kOn;
  cfg.parallel_domains = domains;
  cfg.parallel_workers = workers;
  if (l2_banks != 0) {
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = l2_banks;
    cfg.l2.size_bytes = 512;  // tiny: recalls cut across domain boundaries
  }
  System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = rows;
  oc.iterations = iters;
  apps::Ocean w(oc);
  ObservedCapture c;
  c.r = sys.run(w);
  c.stats = sys.simulator().stats().to_string();
  c.chrome = sys.simulator().tracer().chrome_json();
  c.report = strip_run_object(sys.simulator().tracer().report_json());
  const sim::ProfileSnapshot snap = sys.simulator().profiler().snapshot("eq");
  c.profile = sim::profile_json(snap);
  c.html = sim::profile_html("eq", snap);
  if (latency) c.latency = sim::latency_json(sys.simulator().latency());
  return c;
}

void expect_observed_identical(const ObservedCapture& serial,
                               const ObservedCapture& par) {
  EXPECT_EQ(serial.stats, par.stats);
  EXPECT_EQ(serial.chrome, par.chrome);
  EXPECT_EQ(serial.report, par.report);
  EXPECT_EQ(serial.profile, par.profile);
  EXPECT_EQ(serial.html, par.html);
  EXPECT_EQ(serial.latency, par.latency);  // byte-for-byte, full latency.json
}

TEST(ParallelEquivalence, TracedProfiledRunsEngageParallelWithIdenticalOutput) {
  for (std::uint64_t seed : {13ull, 29ull}) {
    const ObservedCapture serial =
        run_observed(4, seed, 0, 0, /*rows=*/2, /*iters=*/2);
    ASSERT_TRUE(serial.r.verified);
    EXPECT_EQ(serial.r.engine, "serial");
    EXPECT_EQ(serial.r.observers, "trace,profile");
    for (unsigned domains : {2u, 4u, 6u}) {
      const ObservedCapture par =
          run_observed(4, seed, domains, 0, /*rows=*/2, /*iters=*/2);
      EXPECT_EQ(par.r.engine, "parallel")
          << "observers forced a fallback (seed " << seed << "): "
          << par.r.engine_fallback;
      EXPECT_EQ(par.r.engine_domains, domains);
      expect_observed_identical(serial, par);
    }
  }
}

TEST(ParallelEquivalence, ObserverOutputUnchangedByWorkerPoolSize) {
  const ObservedCapture serial = run_observed(4, 17, 0, 0, 2, 2);
  for (unsigned workers : {1u, 2u, 4u}) {
    const ObservedCapture par = run_observed(4, 17, 4, workers, 2, 2);
    EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, ObserversOnMediumPlatformMatchSerial) {
  const ObservedCapture serial = run_observed(16, 3, 0);
  ASSERT_TRUE(serial.r.verified);
  for (unsigned domains : {4u, 8u}) {
    const ObservedCapture par = run_observed(16, 3, domains);
    EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, ObserversOnLargePlatformMatchSerial) {
  // The acceptance configuration: 64 CPUs with full tracing + profiling,
  // merged from 16 domain shards.
  const ObservedCapture serial = run_observed(64, 2, 0);
  ASSERT_TRUE(serial.r.verified);
  const ObservedCapture par = run_observed(64, 2, 16);
  EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
  EXPECT_EQ(par.r.engine_domains, 16u);
  expect_observed_identical(serial, par);
}

// --- latency-observatory equivalence -------------------------------------
//
// The latency observatory is the third parallel-native observer: hooks
// append (cycle, node, seq)-stamped records to per-domain shards and the
// merge replays them in canonical order, so latency.json — phase sums, HDR
// percentiles, worst-offender table — is byte-identical between engines.
// These rows pin the ISSUE's acceptance matrix: 4, 16 and 64 CPUs.

TEST(ParallelEquivalence, LatencyJsonByteIdenticalAcrossDomainCounts) {
  const ObservedCapture serial =
      run_observed(4, 13, 0, 0, 2, 2, /*latency=*/true);
  ASSERT_TRUE(serial.r.verified);
  ASSERT_FALSE(serial.latency.empty());
  EXPECT_EQ(serial.r.observers, "trace,profile,latency");
  for (unsigned domains : {2u, 4u, 6u}) {
    const ObservedCapture par =
        run_observed(4, 13, domains, 0, 2, 2, /*latency=*/true);
    EXPECT_EQ(par.r.engine, "parallel")
        << "latency observer forced a fallback: " << par.r.engine_fallback;
    EXPECT_EQ(par.r.engine_domains, domains);
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, LatencyJsonUnchangedByWorkerPoolSize) {
  const ObservedCapture serial =
      run_observed(4, 17, 0, 0, 2, 2, /*latency=*/true);
  for (unsigned workers : {2u, 4u}) {
    const ObservedCapture par =
        run_observed(4, 17, 4, workers, 2, 2, /*latency=*/true);
    EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, LatencyOnMediumPlatformMatchesSerial) {
  const ObservedCapture serial = run_observed(16, 3, 0, 0, 1, 1, true);
  ASSERT_TRUE(serial.r.verified);
  for (unsigned domains : {4u, 8u}) {
    const ObservedCapture par = run_observed(16, 3, domains, 0, 1, 1, true);
    EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, LatencyOnLargePlatformMatchesSerial) {
  // The acceptance configuration: 64 CPUs with trace + profile + latency
  // all on, merged from 16 domain shards.
  const ObservedCapture serial = run_observed(64, 2, 0, 0, 1, 1, true);
  ASSERT_TRUE(serial.r.verified);
  const ObservedCapture par = run_observed(64, 2, 16, 0, 1, 1, true);
  EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
  EXPECT_EQ(par.r.engine_domains, 16u);
  expect_observed_identical(serial, par);
}

TEST(ParallelEquivalence, LatencyOnTwoLevelHierarchyMatchesSerial) {
  // L2 fills, recalls and eviction write-backs open latency transactions on
  // the L2 banks' own NoC nodes; recall invalidations cut across domains.
  const ObservedCapture serial =
      run_observed(4, 7, 0, 0, 2, 2, /*latency=*/true, /*l2_banks=*/2);
  ASSERT_TRUE(serial.r.verified);
  for (unsigned domains : {2u, 4u}) {
    const ObservedCapture par =
        run_observed(4, 7, domains, 0, 2, 2, /*latency=*/true, /*l2_banks=*/2);
    EXPECT_EQ(par.r.engine, "parallel") << par.r.engine_fallback;
    expect_observed_identical(serial, par);
  }
}

TEST(ParallelEquivalence, TraceLevelLoggingStillFallsBackSerial) {
  // Free-form log lines interleave in execution order, which has no
  // canonical merge: the one observer that still forces the serial engine,
  // and the run report must say why.
  SystemConfig cfg = SystemConfig::architecture1(4, mem::Protocol::kWbMesi);
  cfg.seed = 13;
  cfg.kernel.seed = 13;
  cfg.parallel_domains = 4;
  System sys(cfg);
  sys.simulator().logger().set_level(sim::LogLevel::Trace);
  sys.simulator().logger().set_sink([](const std::string&) {});
  apps::Ocean::Config oc;
  oc.rows_per_thread = 1;
  oc.iterations = 1;
  apps::Ocean w(oc);
  RunResult r = sys.run(w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.engine, "serial");
  EXPECT_EQ(r.engine_domains, 1u);
  EXPECT_EQ(r.engine_fallback, "trace-logging");
}

TEST(ParallelEquivalence, CheckedRunsEngageParallelWithIdenticalVerdict) {
  // Coherence checking is parallel-native: the probe stream is recorded per
  // domain and replayed through the oracle in canonical order, so a checked
  // partitioned run genuinely takes the parallel engine and must reach the
  // same verdict, load count and statistics as the serial reference.
  FuzzOptions opt;
  opt.seed = 21;
  opt.ops = 120;
  const FuzzOutcome serial = run_fuzz(opt);
  opt.parallel_domains = 4;
  const FuzzOutcome par = run_fuzz(opt);
  EXPECT_TRUE(serial.passed());
  EXPECT_EQ(serial.engine, "serial");
  EXPECT_EQ(par.engine, "parallel");
  EXPECT_EQ(par.engine_domains, 4u);
  EXPECT_EQ(serial.passed(), par.passed());
  EXPECT_EQ(serial.cycles, par.cycles);
  EXPECT_EQ(serial.loads_checked, par.loads_checked);
  EXPECT_EQ(serial.violations, par.violations);
  EXPECT_EQ(serial.exercised.count(), par.exercised.count());
}

TEST(ParallelEquivalence, CheckedRunsAcrossSeedsAndDomainCounts) {
  for (std::uint64_t seed : {5ull, 33ull}) {
    FuzzOptions opt;
    opt.seed = seed;
    opt.ops = 100;
    opt.protocol = mem::Protocol::kWbMesi;
    const FuzzOutcome serial = run_fuzz(opt);
    ASSERT_TRUE(serial.passed()) << "seed " << seed;
    for (unsigned domains : {2u, 6u}) {
      opt.parallel_domains = domains;
      const FuzzOutcome par = run_fuzz(opt);
      EXPECT_EQ(par.engine, "parallel") << "seed " << seed;
      EXPECT_TRUE(par.passed()) << "seed " << seed << " domains " << domains;
      EXPECT_EQ(serial.cycles, par.cycles);
      EXPECT_EQ(serial.loads_checked, par.loads_checked);
    }
  }
}

TEST(ParallelEquivalence, HeartbeatStreamsValidJsonl) {
  const std::string path = ::testing::TempDir() + "ccnoc_heartbeat_test.jsonl";
  SystemConfig cfg = SystemConfig::architecture1(4, mem::Protocol::kWbMesi);
  cfg.seed = 13;
  cfg.kernel.seed = 13;
  cfg.parallel_domains = 4;
  cfg.heartbeat_ms = 1;
  cfg.heartbeat_json = path;
  System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  RunResult r = sys.run(w);
  EXPECT_EQ(r.engine, "parallel") << r.engine_fallback;
  EXPECT_TRUE(r.verified);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line;
  unsigned beats = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++beats;
    sim::Jsonv v;
    std::string err;
    ASSERT_TRUE(sim::jsonv_parse(line, v, err)) << err << "\n" << line;
    ASSERT_NE(v.get("schema"), nullptr);
    EXPECT_EQ(v.get("schema")->string, "ccnoc-heartbeat-v1");
    ASSERT_NE(v.get("domains"), nullptr);
    EXPECT_EQ(v.get("domains")->array.size(), 4u);
    ASSERT_NE(v.get("workers"), nullptr);
    ASSERT_NE(v.get("epochs"), nullptr);
  }
  // stop() always emits one final beat, even on sub-millisecond runs.
  EXPECT_GE(beats, 1u);
  std::remove(path.c_str());
}

TEST(ParallelEquivalence, NonGmnNetworkRejectsDomainPartitioning) {
  SystemConfig cfg = SystemConfig::architecture1(4, mem::Protocol::kWbMesi);
  cfg.network = NetworkKind::kMesh;
  cfg.parallel_domains = 4;
  EXPECT_THROW(System sys(cfg), std::logic_error);
}

}  // namespace
}  // namespace ccnoc::core
