#include <gtest/gtest.h>

#include "apps/micro.hpp"
#include "apps/ocean.hpp"
#include "apps/water.hpp"
#include "core/system.hpp"

/// Whole-platform property sweep: every workload with a functional oracle
/// must verify on every (protocol × architecture × network) combination,
/// and the headline metrics must be sane. This is the closest thing the
/// repository has to the paper's full-application CABA runs, in miniature.

namespace ccnoc::core {
namespace {

struct Platform {
  mem::Protocol proto;
  unsigned arch;
  NetworkKind net;
};

std::string platform_name(const ::testing::TestParamInfo<Platform>& info) {
  return std::string(info.param.proto == mem::Protocol::kWti ? "WTI" : "MESI") +
         "_arch" + std::to_string(info.param.arch) +
         (info.param.net == NetworkKind::kGmn ? "_gmn" : "_mesh");
}

class PlatformSweep : public ::testing::TestWithParam<Platform> {
 protected:
  SystemConfig make_config(unsigned n) const {
    SystemConfig cfg = GetParam().arch == 1
                           ? SystemConfig::architecture1(n, GetParam().proto)
                           : SystemConfig::architecture2(n, GetParam().proto);
    cfg.network = GetParam().net;
    return cfg;
  }
};

TEST_P(PlatformSweep, OceanVerifiesBitExact) {
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  System sys(make_config(4));
  auto r = sys.run(w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST_P(PlatformSweep, WaterVerifiesBitExact) {
  apps::Water::Config wc;
  wc.molecules = 10;
  wc.steps = 2;
  apps::Water w(wc);
  System sys(make_config(4));
  auto r = sys.run(w);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
}

TEST_P(PlatformSweep, SequentialConsistencyHandoff) {
  apps::ProducerConsumer w(20, 4);
  System sys(make_config(4));
  auto r = sys.run(w);
  EXPECT_TRUE(r.verified);
}

TEST_P(PlatformSweep, StallPercentagesAreWithinBounds) {
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean w(oc);
  System sys(make_config(4));
  auto r = sys.run(w);
  ASSERT_TRUE(r.verified);
  EXPECT_GT(r.d_stall_pct(4), 0.0);
  EXPECT_LT(r.d_stall_pct(4), 100.0);
  EXPECT_GE(r.i_stall_pct(4), 0.0);
  EXPECT_LT(r.i_stall_pct(4), 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, PlatformSweep,
    ::testing::Values(Platform{mem::Protocol::kWti, 1, NetworkKind::kGmn},
                      Platform{mem::Protocol::kWti, 2, NetworkKind::kGmn},
                      Platform{mem::Protocol::kWbMesi, 1, NetworkKind::kGmn},
                      Platform{mem::Protocol::kWbMesi, 2, NetworkKind::kGmn},
                      Platform{mem::Protocol::kWti, 2, NetworkKind::kMesh},
                      Platform{mem::Protocol::kWbMesi, 2, NetworkKind::kMesh}),
    platform_name);

TEST(Integration, ScalingToSixteenCpus) {
  for (mem::Protocol p : {mem::Protocol::kWti, mem::Protocol::kWbMesi}) {
    apps::Ocean::Config oc;
    oc.rows_per_thread = 1;
    oc.iterations = 1;
    apps::Ocean w(oc);
    auto r = run_paper_config(2, p, 16, w);
    EXPECT_TRUE(r.verified) << to_string(p);
  }
}

TEST(Integration, WtiMemoryIsAlwaysCleanAfterQuiesce) {
  // Write-through: after the platform settles, no cache holds a Modified
  // line (main memory always has clean copies — the protocol's invariant).
  System sys(SystemConfig::architecture1(4, mem::Protocol::kWti));
  apps::UniformRandom::Config uc;
  uc.ops_per_thread = 300;
  uc.store_fraction = 0.5;
  apps::UniformRandom w(uc);
  auto r = sys.run(w);
  ASSERT_TRUE(r.completed);
  for (unsigned c = 0; c < 4; ++c) {
    sys.cache_node(c).dcache().tags().for_each_line([](const cache::CacheLine& l) {
      EXPECT_NE(l.state, cache::LineState::kModified);
      EXPECT_NE(l.state, cache::LineState::kExclusive);
    });
  }
}

TEST(Integration, ProtocolsAgreeOnResults) {
  // The same Ocean problem must produce identical memory images under both
  // protocols (each verified against the same golden replay).
  apps::Ocean::Config oc;
  oc.rows_per_thread = 3;
  oc.iterations = 3;
  apps::Ocean wa(oc), wb(oc);
  auto ra = run_paper_config(1, mem::Protocol::kWti, 4, wa);
  auto rb = run_paper_config(1, mem::Protocol::kWbMesi, 4, wb);
  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rb.verified);
}

TEST(Integration, TrafficAccountingMatchesNetworkTotals) {
  System sys(SystemConfig::architecture2(4, mem::Protocol::kWbMesi));
  apps::HotCounter w(50);
  auto r = sys.run(w);
  EXPECT_EQ(r.noc_bytes, sys.network().total_bytes());
  EXPECT_EQ(r.noc_bytes, sys.simulator().stats().counter_value("noc.bytes"));
}

}  // namespace
}  // namespace ccnoc::core
