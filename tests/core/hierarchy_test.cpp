#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "apps/micro.hpp"
#include "apps/ocean.hpp"
#include "core/system.hpp"

/// Two-level hierarchy tests. The banked shared L2 is a performance
/// structure, not a semantic one: for any data-deterministic workload the
/// final memory image of a two-level run must be BIT-IDENTICAL to the flat
/// run of the same protocol, for every protocol and every L2 bank count. A
/// single differing byte means the hierarchy lost or misordered a write.
///
/// The directed back-invalidation tests then force the recall machinery —
/// an L2 bank small enough that fills evict lines with live L1 copies — and
/// run under the full coherence checker, whose strict final audit includes
/// the inclusion invariants (every valid L1 line resident in its home L2
/// bank, L2 sharer vectors matching actual L1 states).

namespace ccnoc::core {
namespace {

using Image = std::map<sim::Addr, std::vector<std::uint8_t>>;

/// Scheduler ticks are wall-clock-driven: their count — and with it the
/// run-queue word values — depends on how long the run takes, which
/// legitimately differs between a flat and a two-level platform. Disable
/// them so every remaining byte is program data and must match exactly.
void disable_ticks(SystemConfig& cfg) {
  cfg.kernel.sched.tick_period = sim::Cycle(1) << 40;
}

template <typename MakeWorkload>
Image run_and_snapshot(mem::Protocol proto, unsigned cpus, unsigned l2_banks,
                       MakeWorkload&& make) {
  SystemConfig cfg = SystemConfig::architecture1(cpus, proto);
  disable_ticks(cfg);
  if (l2_banks != 0) {
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = l2_banks;
  }
  System sys(cfg);
  auto workload = make();
  RunResult r = sys.run(*workload, 0, 200'000'000ull);
  EXPECT_TRUE(r.completed) << "workload hung under " << mem::to_string(proto)
                           << " with " << l2_banks << " L2 banks";
  EXPECT_TRUE(r.verified) << "functional oracle failed under "
                          << mem::to_string(proto) << " with " << l2_banks
                          << " L2 banks";
  Image img;
  for (unsigned b = 0; b < cfg.num_banks; ++b) {
    sys.bank(b).storage().for_each_page(
        [&](sim::Addr base, const std::uint8_t* data, unsigned len) {
          img[base].assign(data, data + len);
        });
  }
  return img;
}

void expect_identical(const Image& a, const Image& b, const char* pa,
                      const std::string& pb) {
  auto all_zero = [](const std::vector<std::uint8_t>& page) {
    for (std::uint8_t v : page) {
      if (v != 0) return false;
    }
    return true;
  };
  Image::const_iterator ia = a.begin();
  Image::const_iterator ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      EXPECT_TRUE(all_zero(ia->second))
          << pa << " wrote page 0x" << std::hex << ia->first << " but " << pb
          << " never touched it";
      ++ia;
      continue;
    }
    if (ia == a.end() || ib->first < ia->first) {
      EXPECT_TRUE(all_zero(ib->second))
          << pb << " wrote page 0x" << std::hex << ib->first << " but " << pa
          << " never touched it";
      ++ib;
      continue;
    }
    ASSERT_EQ(ia->second.size(), ib->second.size());
    if (std::memcmp(ia->second.data(), ib->second.data(),
                    ia->second.size()) != 0) {
      for (std::size_t i = 0; i < ia->second.size(); ++i) {
        ASSERT_EQ(ia->second[i], ib->second[i])
            << pa << " and " << pb << " diverge at address 0x" << std::hex
            << (ia->first + i);
      }
    }
    ++ia;
    ++ib;
  }
}

/// The satellite matrix: flat vs two-level final images for every protocol
/// at this CPU count, across 2/4/8 L2 banks.
template <typename MakeWorkload>
void diff_flat_vs_two_level(unsigned cpus, MakeWorkload&& make) {
  for (mem::Protocol proto :
       {mem::Protocol::kWti, mem::Protocol::kWbMesi, mem::Protocol::kWtu}) {
    Image flat = run_and_snapshot(proto, cpus, 0, make);
    for (unsigned l2 : {2u, 4u, 8u}) {
      Image two = run_and_snapshot(proto, cpus, l2, make);
      expect_identical(flat, two, "flat",
                       std::string(mem::to_string(proto)) + "+L2x" +
                           std::to_string(l2));
    }
  }
}

TEST(HierarchyDiff, FourCpuImagesMatchFlatAcrossL2BankCounts) {
  diff_flat_vs_two_level(4, [] { return std::make_unique<apps::HotCounter>(40); });
}

TEST(HierarchyDiff, SixteenCpuImagesMatchFlatAcrossL2BankCounts) {
  diff_flat_vs_two_level(16, [] { return std::make_unique<apps::HotCounter>(12); });
}

TEST(HierarchyDiff, SixtyFourCpuImagesMatchFlatAcrossL2BankCounts) {
  diff_flat_vs_two_level(64, [] { return std::make_unique<apps::HotCounter>(4); });
}

TEST(HierarchyDiff, ProducerConsumerImagesMatchFlat) {
  diff_flat_vs_two_level(4, [] {
    return std::make_unique<apps::ProducerConsumer>(24, 6);
  });
}

// A wide-footprint workload through a deliberately tiny L2, so the diff
// also covers the recall/refill path (capacity evictions with live L1
// copies) rather than only the steady-state fill path.
TEST(HierarchyDiff, OceanThroughTinyL2MatchesFlat) {
  for (mem::Protocol proto :
       {mem::Protocol::kWti, mem::Protocol::kWbMesi, mem::Protocol::kWtu}) {
    auto make = [] {
      apps::Ocean::Config oc;
      oc.rows_per_thread = 2;
      oc.iterations = 2;
      return std::make_unique<apps::Ocean>(oc);
    };
    Image flat = run_and_snapshot(proto, 4, 0, make);
    SystemConfig cfg = SystemConfig::architecture1(4, proto);
    disable_ticks(cfg);
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = 2;
    cfg.l2.size_bytes = 512;  // 4 sets x 4 ways of 32 B: forces recalls
    System sys(cfg);
    auto workload = make();
    RunResult r = sys.run(*workload, 0, 200'000'000ull);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.verified);
    Image two;
    for (unsigned b = 0; b < cfg.num_banks; ++b) {
      sys.bank(b).storage().for_each_page(
          [&](sim::Addr base, const std::uint8_t* data, unsigned len) {
            two[base].assign(data, data + len);
          });
    }
    expect_identical(flat, two, "flat",
                     std::string(mem::to_string(proto)) + "+tinyL2");
    std::uint64_t recalls = 0;
    for (unsigned i = 0; i < cfg.num_l2_banks; ++i) {
      recalls += sys.simulator().stats().counter_value(
          "l2bank" + std::to_string(i) + ".recalls");
    }
    EXPECT_GT(recalls, 0u) << "tiny L2 never recalled a line under "
                           << mem::to_string(proto);
  }
}

// --- directed back-invalidation --------------------------------------------

struct BackInvalRun {
  std::uint64_t recalls = 0;
  std::uint64_t recall_invals = 0;
  std::uint64_t recall_fetches = 0;
  std::uint64_t evictions_dirty = 0;
};

/// Ocean through a tiny L2 under the full coherence checker: every recall
/// teardown (back-invalidation of S copies, data pull from an M owner) is
/// audited by the periodic invariant walks and the strict final audit,
/// which in a two-level run include both inclusion directions.
BackInvalRun run_back_inval(mem::Protocol proto, unsigned l2_size_bytes) {
  SystemConfig cfg = SystemConfig::architecture1(4, proto);
  cfg.hierarchy_levels = 2;
  cfg.num_l2_banks = 2;
  cfg.l2.size_bytes = l2_size_bytes;
  cfg.check.enabled = true;
  cfg.check.walk_interval = 256;
  System sys(cfg);
  apps::Ocean::Config oc;
  oc.rows_per_thread = 2;
  oc.iterations = 2;
  apps::Ocean workload(oc);
  RunResult r = sys.run(workload, 0, 200'000'000ull);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.check_ok) << r.check_report;
  BackInvalRun out;
  for (unsigned i = 0; i < cfg.num_l2_banks; ++i) {
    const std::string p = "l2bank" + std::to_string(i) + ".";
    auto& st = sys.simulator().stats();
    out.recalls += st.counter_value(p + "recalls");
    out.recall_invals += st.counter_value(p + "recall_invals");
    out.recall_fetches += st.counter_value(p + "recall_fetches");
    out.evictions_dirty += st.counter_value(p + "evictions_dirty");
  }
  return out;
}

TEST(HierarchyBackInval, WtiRecallsInvalidateSharedL1Copies) {
  BackInvalRun r = run_back_inval(mem::Protocol::kWti, 512);
  EXPECT_GT(r.recalls, 0u);
  // Write-through L1s only ever hold S copies, so every back-invalidation
  // is the Invalidate flavour; there is no M owner to pull data from.
  EXPECT_GT(r.recall_invals, 0u);
  EXPECT_EQ(r.recall_fetches, 0u);
  // Write-through traffic dirties the L2 lines, so capacity evictions must
  // write back to DRAM.
  EXPECT_GT(r.evictions_dirty, 0u);
}

TEST(HierarchyBackInval, WtuRecallsInvalidateSharedL1Copies) {
  BackInvalRun r = run_back_inval(mem::Protocol::kWtu, 512);
  EXPECT_GT(r.recalls, 0u);
  EXPECT_GT(r.recall_invals, 0u);
  EXPECT_EQ(r.recall_fetches, 0u);
}

TEST(HierarchyBackInval, MesiRecallsFetchModifiedL1Lines) {
  BackInvalRun r = run_back_inval(mem::Protocol::kWbMesi, 512);
  EXPECT_GT(r.recalls, 0u);
  // An Ocean sweep leaves both S copies (read-shared boundary rows) and
  // M/E owners (each thread's own rows) in the L1s, so both recall
  // flavours must appear.
  EXPECT_GT(r.recall_fetches, 0u);
}

TEST(HierarchyChecked, AllProtocolsPassTheCheckerWithDefaultL2) {
  for (mem::Protocol proto :
       {mem::Protocol::kWti, mem::Protocol::kWbMesi, mem::Protocol::kWtu}) {
    SystemConfig cfg = SystemConfig::architecture1(4, proto);
    cfg.hierarchy_levels = 2;
    cfg.num_l2_banks = 4;
    cfg.check.enabled = true;
    System sys(cfg);
    apps::HotCounter workload(60);
    RunResult r = sys.run(workload, 0, 200'000'000ull);
    EXPECT_TRUE(r.completed) << mem::to_string(proto);
    EXPECT_TRUE(r.verified) << mem::to_string(proto);
    EXPECT_TRUE(r.check_ok) << mem::to_string(proto) << "\n" << r.check_report;
  }
}

}  // namespace
}  // namespace ccnoc::core
