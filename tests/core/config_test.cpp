#include <gtest/gtest.h>

#include "core/system.hpp"

/// Table 2: the simulated platform characteristics.

namespace ccnoc::core {
namespace {

TEST(Table2, Architecture1Preset) {
  for (unsigned n : {4u, 16u, 32u, 64u}) {
    SystemConfig c = SystemConfig::architecture1(n, mem::Protocol::kWti);
    EXPECT_EQ(c.num_cpus, n);
    EXPECT_EQ(c.num_banks, 2u);  // m = 2
    EXPECT_EQ(c.arch, os::ArchKind::kCentralized);
    EXPECT_EQ(c.kernel.policy, os::SchedPolicy::kSmp);
  }
}

TEST(Table2, Architecture2Preset) {
  for (unsigned n : {4u, 16u, 32u, 64u}) {
    SystemConfig c = SystemConfig::architecture2(n, mem::Protocol::kWbMesi);
    EXPECT_EQ(c.num_banks, n + 3);  // m = n + 3
    EXPECT_EQ(c.arch, os::ArchKind::kDistributed);
    EXPECT_EQ(c.kernel.policy, os::SchedPolicy::kDs);
  }
}

TEST(Table2, CacheGeometryDefaults) {
  SystemConfig c = SystemConfig::architecture1(4, mem::Protocol::kWti);
  EXPECT_EQ(c.dcache.size_bytes, 4096u);       // 4 KB data cache
  EXPECT_EQ(c.icache.size_bytes, 4096u);       // 4 KB instruction cache
  EXPECT_EQ(c.dcache.block_bytes, 32u);        // 32-byte blocks
  EXPECT_EQ(c.dcache.ways, 1u);                // direct-mapped
  EXPECT_EQ(c.dcache.write_buffer_entries, 8u);  // 8-word write buffer
}

TEST(Table2, NocLatencyGrowsWithPlatformSize) {
  SystemConfig c4 = SystemConfig::architecture2(4, mem::Protocol::kWti);
  SystemConfig c64 = SystemConfig::architecture2(64, mem::Protocol::kWti);
  auto l4 = noc::GmnConfig::for_nodes(c4.num_cpus + c4.num_banks);
  auto l64 = noc::GmnConfig::for_nodes(c64.num_cpus + c64.num_banks);
  EXPECT_LT(l4.min_latency, l64.min_latency);  // mesh latency ∝ √n
}

TEST(Table2, DescribeMentionsEveryKnob) {
  SystemConfig c = SystemConfig::architecture1(16, mem::Protocol::kWbMesi);
  std::string d = c.describe();
  EXPECT_NE(d.find("WB-MESI"), std::string::npos);
  EXPECT_NE(d.find("n=16"), std::string::npos);
  EXPECT_NE(d.find("m=2"), std::string::npos);
  EXPECT_NE(d.find("SMP"), std::string::npos);
}

TEST(GmnConfigField, UnsetConfigDerivesFromTheNodeCount) {
  // SystemConfig::gmn is an optional, not a zero-sentinel: leaving it
  // disengaged derives the fabric parameters from the platform size.
  SystemConfig c = SystemConfig::architecture1(4, mem::Protocol::kWti);
  ASSERT_FALSE(c.gmn.has_value());
  System sys(c);
  const auto& net = static_cast<noc::GmnNetwork&>(sys.network());
  EXPECT_EQ(net.config().min_latency,
            noc::GmnConfig::for_nodes(c.num_cpus + c.num_banks).min_latency);
}

TEST(GmnConfigField, ExplicitConfigIsUsedVerbatim) {
  SystemConfig c = SystemConfig::architecture1(4, mem::Protocol::kWti);
  noc::GmnConfig g;
  g.min_latency = 23;
  g.fifo_depth = 5;
  c.gmn = g;
  System sys(c);
  const auto& net = static_cast<noc::GmnNetwork&>(sys.network());
  EXPECT_EQ(net.config().min_latency, 23u);
  EXPECT_EQ(net.config().fifo_depth, 5u);
}

TEST(GmnConfigField, ZeroMinLatencyIsRejectedNotRederived) {
  // Historically min_latency == 0 silently meant "derive me"; a genuine
  // zero (no fabric-crossing floor) was unrepresentable and a config bug
  // could hide behind the sentinel. Now it is a checked error.
  SystemConfig c = SystemConfig::architecture1(4, mem::Protocol::kWti);
  noc::GmnConfig g;
  g.min_latency = 0;
  c.gmn = g;
  EXPECT_THROW(System sys(c), std::logic_error);
}

TEST(RunResultTest, DerivedMetrics) {
  RunResult r;
  r.exec_cycles = 2'000'000;
  r.d_stall_cycles = 4'000'000;  // over 4 CPUs
  EXPECT_DOUBLE_EQ(r.exec_megacycles(), 2.0);
  EXPECT_DOUBLE_EQ(r.d_stall_pct(4), 50.0);
  RunResult zero;
  EXPECT_DOUBLE_EQ(zero.d_stall_pct(4), 0.0);
}

}  // namespace
}  // namespace ccnoc::core
