#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "apps/micro.hpp"
#include "apps/ocean.hpp"
#include "core/system.hpp"

/// Protocol differential test: the paper's write policies are performance
/// alternatives, not semantic ones. For any data-deterministic workload
/// (every race ordered by locks/flags/barriers), the final memory image
/// after flushing must be BIT-IDENTICAL under WTI, WB-MESI and WTU — same
/// bytes at same addresses, including kernel structures (released locks,
/// settled barriers) and untouched-page structure. A single differing byte
/// means one protocol lost or misordered a write the other retired.

namespace ccnoc::core {
namespace {

/// Full post-run memory image: every committed page across every bank,
/// keyed by base address. System::run already flushed dirty lines.
using Image = std::map<sim::Addr, std::vector<std::uint8_t>>;

template <typename MakeWorkload>
Image run_and_snapshot(mem::Protocol proto, unsigned cpus,
                       MakeWorkload&& make) {
  SystemConfig cfg = SystemConfig::architecture1(cpus, proto);
  System sys(cfg);
  auto workload = make();
  RunResult r = sys.run(*workload, 0, 200'000'000ull);
  EXPECT_TRUE(r.completed) << "workload hung under " << mem::to_string(proto);
  EXPECT_TRUE(r.verified) << "functional oracle failed under "
                          << mem::to_string(proto);
  Image img;
  for (unsigned b = 0; b < cfg.num_banks; ++b) {
    sys.bank(b).storage().for_each_page(
        [&](sim::Addr base, const std::uint8_t* data, unsigned len) {
          img[base].assign(data, data + len);
        });
  }
  return img;
}

void expect_identical(const Image& a, const Image& b, const char* pa,
                      const char* pb) {
  // Compare the union of pages; a page only one side committed must be
  // all-zero on that side (committing zeroes is not a semantic difference).
  Image::const_iterator ia = a.begin();
  Image::const_iterator ib = b.begin();
  auto all_zero = [](const std::vector<std::uint8_t>& page) {
    for (std::uint8_t v : page) {
      if (v != 0) return false;
    }
    return true;
  };
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      EXPECT_TRUE(all_zero(ia->second))
          << pa << " wrote page 0x" << std::hex << ia->first << " but " << pb
          << " never touched it";
      ++ia;
      continue;
    }
    if (ia == a.end() || ib->first < ia->first) {
      EXPECT_TRUE(all_zero(ib->second))
          << pb << " wrote page 0x" << std::hex << ib->first << " but " << pa
          << " never touched it";
      ++ib;
      continue;
    }
    ASSERT_EQ(ia->second.size(), ib->second.size());
    if (std::memcmp(ia->second.data(), ib->second.data(), ia->second.size()) !=
        0) {
      for (std::size_t i = 0; i < ia->second.size(); ++i) {
        ASSERT_EQ(ia->second[i], ib->second[i])
            << pa << " and " << pb << " diverge at address 0x" << std::hex
            << (ia->first + i);
      }
    }
    ++ia;
    ++ib;
  }
}

template <typename MakeWorkload>
void diff_all_protocols(unsigned cpus, MakeWorkload&& make) {
  Image wti = run_and_snapshot(mem::Protocol::kWti, cpus, make);
  Image mesi = run_and_snapshot(mem::Protocol::kWbMesi, cpus, make);
  Image wtu = run_and_snapshot(mem::Protocol::kWtu, cpus, make);
  expect_identical(wti, mesi, "WTI", "WB-MESI");
  expect_identical(wti, wtu, "WTI", "WTU");
}

TEST(ProtocolDiff, HotCounterImagesAreBitIdentical) {
  diff_all_protocols(4, [] { return std::make_unique<apps::HotCounter>(100); });
}

TEST(ProtocolDiff, ProducerConsumerImagesAreBitIdentical) {
  diff_all_protocols(4, [] {
    return std::make_unique<apps::ProducerConsumer>(30, 6);
  });
}

TEST(ProtocolDiff, PingPongImagesAreBitIdentical) {
  diff_all_protocols(2, [] { return std::make_unique<apps::PingPong>(60); });
}

TEST(ProtocolDiff, OceanFourCpuImagesAreBitIdentical) {
  diff_all_protocols(4, [] {
    apps::Ocean::Config oc;
    oc.rows_per_thread = 2;
    oc.iterations = 2;
    return std::make_unique<apps::Ocean>(oc);
  });
}

}  // namespace
}  // namespace ccnoc::core
