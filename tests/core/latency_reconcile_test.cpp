#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/ocean.hpp"
#include "core/system.hpp"
#include "sim/jsonv.hpp"
#include "sim/latency.hpp"

/// The latency observatory decomposes every traced transaction into
/// telescoping phases, so on any run the books must balance EXACTLY:
///  - per transaction, phase durations sum to the whole-span latency;
///  - per phase, the per-kind aggregation equals the per-node aggregation
///    (the same marks, folded two ways);
///  - per kind, the observatory's population matches the tracer's span
///    population (same call sites, same transactions).
/// This is the acceptance gate for the observability layer — a traced,
/// latency-attributed 4-CPU Ocean run that reconciles to the cycle under
/// both protocols and on the two-level platform.

namespace ccnoc::core {
namespace {

class LatencyReconcile : public ::testing::Test {
 protected:
  static constexpr unsigned kCpus = 4;

  RunResult run(System& sys) {
    apps::Ocean::Config oc;
    oc.rows_per_thread = 2;
    oc.iterations = 2;
    oc.compute_per_cell = 8;
    apps::Ocean workload(oc);
    RunResult r = sys.run(workload);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verified);
    return r;
  }

  static SystemConfig config(mem::Protocol proto) {
    SystemConfig cfg = SystemConfig::architecture1(kCpus, proto);
    cfg.trace = sim::TraceMode::kFull;
    cfg.latency = sim::LatencyMode::kOn;
    // Unbounded worst-offender table: every completed transaction lands in
    // worst(), so the per-transaction telescoping sum is checked for ALL of
    // them, not a sample.
    cfg.latency_top_k = 1u << 20;
    return cfg;
  }

  /// The protocol-independent books: telescoping, two-way fold equality,
  /// tracer population reconciliation.
  static void expect_reconciles(System& sys) {
    const sim::LatencyObservatory& lat = sys.simulator().latency();
    EXPECT_EQ(lat.open_count(), 0u) << "unclosed transactions";

    // Every completed transaction: phase sum ≡ whole span, exactly.
    std::uint64_t txns = 0;
    for (const auto& o : lat.worst()) {
      std::uint64_t phase_sum = 0;
      for (std::uint64_t p : o.phases) phase_sum += p;
      ASSERT_EQ(phase_sum, o.latency())
          << o.kind << " txn " << o.txn << " leaks cycles";
      ++txns;
    }

    // Kind-side totals: histogram mass == phase mass, counts == table rows.
    std::uint64_t kind_count = 0;
    sim::PhaseCycles by_kind{};
    for (const auto& [kind, k] : lat.kinds()) {
      EXPECT_GT(k.count, 0u) << kind;
      EXPECT_EQ(k.total.count(), k.count) << kind;
      kind_count += k.count;
      std::uint64_t phase_sum = 0;
      for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
        by_kind[p] += k.phases[p];
        phase_sum += k.phases[p];
      }
      EXPECT_EQ(phase_sum, k.total.sum()) << kind;
    }
    EXPECT_EQ(txns, kind_count) << "worst-offender table dropped transactions";

    // Node-side fold of the very same marks must agree phase by phase.
    sim::PhaseCycles by_node{};
    for (const auto& [node, ph] : lat.node_phases()) {
      for (std::size_t p = 0; p < sim::kNumPhases; ++p) by_node[p] += ph[p];
    }
    for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
      EXPECT_EQ(by_kind[p], by_node[p]) << sim::to_string(sim::Phase(p));
    }

    // The observatory opens a transaction everywhere the tracer opens a
    // span (same call sites), so the populations must match kind for kind.
    // The L2 tier's internal fills/recalls/write-backs are latency-only —
    // they have no tracer span — and are the one permitted asymmetry.
    const sim::Tracer& tr = sys.simulator().tracer();
    for (const auto& [kind, s] : tr.txn_stats()) {
      ASSERT_EQ(lat.kinds().count(kind), 1u) << kind;
      EXPECT_EQ(lat.kinds().at(kind).count, s.count) << kind;
    }
    for (const auto& [kind, k] : lat.kinds()) {
      if (tr.txn_stats().count(kind) == 0) {
        EXPECT_EQ(kind.rfind("l2.", 0), 0u)
            << kind << " is untracked by the tracer but not an L2-tier kind";
      }
    }
  }
};

TEST_F(LatencyReconcile, WtiPhasesTelescopeAndMatchTracer) {
  System sys(config(mem::Protocol::kWti));
  run(sys);
  expect_reconciles(sys);
  const auto& kinds = sys.simulator().latency().kinds();
  ASSERT_EQ(kinds.count("wti.load_miss"), 1u);
  ASSERT_EQ(kinds.count("wti.write_through"), 1u);
  ASSERT_EQ(kinds.count("ifetch_miss"), 1u);
  // A WTI load miss crosses the fabric and is serviced by a directory bank;
  // a run where those phases never register means dead instrumentation.
  const auto& lm = kinds.at("wti.load_miss");
  EXPECT_GT(lm.phases[std::size_t(sim::Phase::kNocTransit)], 0u);
  EXPECT_GT(lm.phases[std::size_t(sim::Phase::kDirService)], 0u);
}

TEST_F(LatencyReconcile, MesiPhasesTelescopeAndMatchTracer) {
  System sys(config(mem::Protocol::kWbMesi));
  run(sys);
  expect_reconciles(sys);
  const auto& kinds = sys.simulator().latency().kinds();
  ASSERT_EQ(kinds.count("mesi.read_miss"), 1u);
  ASSERT_EQ(kinds.count("mesi.write_miss"), 1u);
  ASSERT_EQ(kinds.count("mesi.upgrade"), 1u);
  ASSERT_EQ(kinds.count("mesi.writeback"), 1u);
  // Ocean shares rows between neighbours, so upgrades must spend cycles
  // collecting invalidation acknowledgements somewhere in the run.
  EXPECT_GT(kinds.at("mesi.upgrade").phases[std::size_t(sim::Phase::kFanoutAcks)],
            0u);
}

TEST_F(LatencyReconcile, TwoLevelHierarchyAddsL2PhasesAndStillReconciles) {
  SystemConfig cfg = config(mem::Protocol::kWbMesi);
  cfg.hierarchy_levels = 2;
  cfg.num_l2_banks = 2;
  cfg.l2.size_bytes = 512;  // tiny: capacity recalls fire, not just fills
  System sys(cfg);
  run(sys);
  expect_reconciles(sys);
  const auto& kinds = sys.simulator().latency().kinds();
  ASSERT_EQ(kinds.count("l2.fill"), 1u);
  EXPECT_GT(kinds.at("l2.fill").count, 0u);
  // L1 misses that queue behind a shared-L2 fill must show up in the
  // dedicated hierarchy phases of the overall summary.
  sim::PhaseCycles overall{};
  for (const auto& [kind, k] : kinds) {
    for (std::size_t p = 0; p < sim::kNumPhases; ++p) overall[p] += k.phases[p];
  }
  EXPECT_GT(overall[std::size_t(sim::Phase::kL2Fill)], 0u);
}

TEST_F(LatencyReconcile, ReportJsonEmbedsLatencyObjectWhenBothObserversOn) {
  System sys(config(mem::Protocol::kWti));
  run(sys);
  const std::string report = sys.simulator().tracer().report_json();
  EXPECT_NE(report.find(",\"latency\":{\"schema_version\":1,"
                        "\"kind\":\"ccnoc-latency\""),
            std::string::npos);
  sim::Jsonv v;
  std::string err;
  ASSERT_TRUE(sim::jsonv_parse(report, v, err)) << err;
  const sim::Jsonv* lat = v.get("latency");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->get("summary"), nullptr);
  ASSERT_NE(lat->get("summary")->get("transactions"), nullptr);
  EXPECT_GT(lat->get("summary")->get("transactions")->number, 0.0);
  // The standalone emitter and the embedded object are the same bytes.
  EXPECT_NE(report.find(sim::latency_json(sys.simulator().latency())
                            .substr(0, 60)),
            std::string::npos);
}

TEST_F(LatencyReconcile, OffModeIsZeroPerturbation) {
  // The observatory off is the default; turning it on must not move the
  // simulation by a cycle or a byte — only observe it. Stats are compared
  // as a full registry dump, the strongest no-perturbation check we have.
  SystemConfig off_cfg = SystemConfig::architecture1(kCpus, mem::Protocol::kWbMesi);
  SystemConfig on_cfg = off_cfg;
  on_cfg.latency = sim::LatencyMode::kOn;

  System off_sys(off_cfg);
  System on_sys(on_cfg);
  RunResult off_r = run(off_sys);
  RunResult on_r = run(on_sys);

  EXPECT_EQ(off_r.observers, "none");
  EXPECT_EQ(on_r.observers, "latency");
  EXPECT_EQ(off_r.exec_cycles, on_r.exec_cycles);
  EXPECT_EQ(off_r.noc_bytes, on_r.noc_bytes);
  EXPECT_EQ(off_r.noc_packets, on_r.noc_packets);
  EXPECT_EQ(off_r.instructions, on_r.instructions);
  EXPECT_EQ(off_sys.simulator().stats().to_string(),
            on_sys.simulator().stats().to_string());

  const sim::LatencyObservatory& off_lat = off_sys.simulator().latency();
  EXPECT_EQ(off_lat.open_count(), 0u);
  EXPECT_TRUE(off_lat.kinds().empty());
  EXPECT_TRUE(off_lat.node_phases().empty());
  EXPECT_TRUE(off_lat.worst().empty());
  EXPECT_GT(on_sys.simulator().latency().kinds().size(), 0u);
}

}  // namespace
}  // namespace ccnoc::core
